//! Spawns the real `mist-cli` binary and checks the `--trace`/`--metrics`
//! surface: exit code, JSON output schema, and the emitted Chrome trace.

use std::process::Command;

use serde_json::Value;

fn get<'a>(v: &'a Value, key: &str) -> Option<&'a Value> {
    match v {
        Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
        _ => None,
    }
}

#[test]
fn cli_tune_writes_trace_and_metrics() {
    let trace_path =
        std::env::temp_dir().join(format!("mist_cli_trace_{}.json", std::process::id()));
    let out = Command::new(env!("CARGO_BIN_EXE_mist-cli"))
        .args([
            "tune",
            "--model",
            "gpt3-1.3b",
            "--platform",
            "l4",
            "--gpus",
            "2",
            "--batch",
            "8",
            "--seed",
            "7",
            "--execute",
            "--json",
            "--metrics",
            "--trace",
        ])
        .arg(&trace_path)
        .output()
        .expect("spawn mist-cli");
    assert!(
        out.status.success(),
        "mist-cli failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );

    // The --json report carries the new telemetry section and the (now
    // integer) configs_evaluated counter.
    let report: Value =
        serde_json::from_str(&String::from_utf8_lossy(&out.stdout)).expect("valid JSON report");
    assert_eq!(get(&report, "feasible"), Some(&Value::Bool(true)));
    let evaluated = get(&report, "configs_evaluated")
        .and_then(Value::as_i64)
        .expect("configs_evaluated");
    assert!(evaluated > 0);
    let telemetry = get(&report, "telemetry").expect("telemetry section");
    let counters = get(telemetry, "counters").expect("counters");
    let from_counter = get(counters, "tuner.configs_evaluated")
        .and_then(Value::as_i64)
        .expect("tuner.configs_evaluated counter");
    assert_eq!(from_counter, evaluated);
    // Calibration runs before tune(); with --metrics the CLI reports the
    // whole session, so the interference fit must show up too.
    assert!(get(counters, "interference.fit.iterations").is_some());

    // The trace file must hold both producers: the tuner phase timeline
    // (pid 0) and the simulated pipeline Gantt (stage processes).
    let trace_text = std::fs::read_to_string(&trace_path).expect("trace file written");
    std::fs::remove_file(&trace_path).ok();
    let trace: Value = serde_json::from_str(&trace_text).expect("trace is valid JSON");
    let Some(Value::Array(events)) = get(&trace, "traceEvents") else {
        panic!("traceEvents array missing");
    };
    let process_names: Vec<&str> = events
        .iter()
        .filter(|e| get(e, "name") == Some(&Value::Str("process_name".into())))
        .filter_map(|e| get(e, "args"))
        .filter_map(|a| match get(a, "name") {
            Some(Value::Str(s)) => Some(s.as_str()),
            _ => None,
        })
        .collect();
    assert!(process_names.contains(&"mist-tuner"), "{process_names:?}");
    assert!(process_names.contains(&"stage 0"), "{process_names:?}");
}

/// With 8 worker threads, every tuner span in the Chrome trace must
/// still form one tree: the pool propagates the spawner's span into
/// each worker task, so no span may reference a parent that was never
/// recorded (zero orphans), and parent chains must terminate at a root.
#[test]
fn trace_at_eight_threads_has_no_orphaned_spans() {
    let trace_path =
        std::env::temp_dir().join(format!("mist_cli_orphans_{}.json", std::process::id()));
    let out = Command::new(env!("CARGO_BIN_EXE_mist-cli"))
        .args([
            "tune",
            "--model",
            "gpt3-1.3b",
            "--platform",
            "l4",
            "--gpus",
            "4",
            "--batch",
            "16",
            "--seed",
            "7",
            "--threads",
            "8",
            "--json",
            "--trace",
        ])
        .arg(&trace_path)
        .output()
        .expect("spawn mist-cli");
    assert!(
        out.status.success(),
        "mist-cli failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let trace_text = std::fs::read_to_string(&trace_path).expect("trace file written");
    std::fs::remove_file(&trace_path).ok();
    let trace: Value = serde_json::from_str(&trace_text).expect("trace is valid JSON");
    let Some(Value::Array(events)) = get(&trace, "traceEvents") else {
        panic!("traceEvents array missing");
    };

    // Tuner spans are the B events carrying span_id/parent args (the
    // simulator Gantt slices have neither and are not part of the tree).
    let mut ids = std::collections::BTreeSet::new();
    let mut edges: Vec<(i64, i64)> = Vec::new();
    for e in events {
        if get(e, "ph") != Some(&Value::Str("B".into())) {
            continue;
        }
        let Some(args) = get(e, "args") else { continue };
        let Some(id) = get(args, "span_id").and_then(Value::as_i64) else {
            continue;
        };
        let parent = get(args, "parent").and_then(Value::as_i64).expect("parent");
        ids.insert(id);
        edges.push((id, parent));
    }
    assert!(edges.len() > 10, "expected a real span tree, got {edges:?}");
    let mut parented = 0;
    for (id, parent) in &edges {
        if *parent == 0 {
            continue;
        }
        parented += 1;
        assert!(
            ids.contains(parent),
            "span {id} references parent {parent} that was never recorded"
        );
    }
    assert!(parented > 0, "no span has a parent — propagation broken");
}
