//! Spawns the real `mist-cli` binary as a daemon over a Unix socket and
//! drives the cold → exact-hit → warm-start → shutdown lifecycle with
//! `mist-cli query`.

use std::io::{BufRead, BufReader};
use std::process::{Child, Command, Stdio};

use serde_json::Value;

fn get<'a>(v: &'a Value, key: &str) -> Option<&'a Value> {
    match v {
        Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
        _ => None,
    }
}

/// Kills the daemon if the test panics before the clean shutdown.
struct DaemonGuard(Child);

impl Drop for DaemonGuard {
    fn drop(&mut self) {
        self.0.kill().ok();
        self.0.wait().ok();
    }
}

fn query(socket: &str, extra: &[&str]) -> (Value, bool) {
    let out = Command::new(env!("CARGO_BIN_EXE_mist-cli"))
        .args(["query", "--connect", socket])
        .args(extra)
        .output()
        .expect("spawn mist-cli query");
    let stdout = String::from_utf8_lossy(&out.stdout);
    let value = serde_json::from_str(stdout.trim()).unwrap_or_else(|e| {
        panic!(
            "query response must be JSON ({e}): {stdout}\nstderr: {}",
            String::from_utf8_lossy(&out.stderr)
        )
    });
    (value, out.status.success())
}

fn plan_query(socket: &str, batch: &str, extra: &[&str]) -> Value {
    let mut args = vec![
        "--model",
        "gpt3-1.3b",
        "--gpus",
        "2",
        "--batch",
        batch,
        "--max-grad-accum",
        "8",
    ];
    args.extend_from_slice(extra);
    let (value, ok) = query(socket, &args);
    assert!(ok, "plan query failed: {value:?}");
    value
}

fn work_field<'a>(v: &'a Value, key: &str) -> &'a Value {
    get(v, "work")
        .and_then(|w| get(w, key))
        .unwrap_or_else(|| panic!("response must carry work.{key}: {v:?}"))
}

fn result_json(v: &Value) -> String {
    serde_json::to_string(get(v, "result").expect("result field")).unwrap()
}

#[test]
fn daemon_cold_hit_warm_lifecycle() {
    let dir = std::env::temp_dir().join(format!("mist-cli-serve-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let socket = dir.join("planner.sock").display().to_string();
    let cache = dir.join("plans.jsonl").display().to_string();

    let mut child = Command::new(env!("CARGO_BIN_EXE_mist-cli"))
        .args([
            "serve",
            "--listen",
            &socket,
            "--cache",
            &cache,
            "--threads",
            "2",
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn()
        .expect("spawn mist-cli serve");
    let stdout = child.stdout.take().expect("captured stdout");
    let mut guard = DaemonGuard(child);

    // The daemon announces readiness; no polling needed.
    let mut ready = String::new();
    BufReader::new(stdout).read_line(&mut ready).unwrap();
    assert!(ready.starts_with("READY "), "unexpected banner: {ready}");

    let (pong, ok) = query(&socket, &["--ping"]);
    assert!(ok);
    assert_eq!(get(&pong, "pong"), Some(&Value::Bool(true)));

    let cold = plan_query(&socket, "8", &[]);
    assert_eq!(work_field(&cold, "source"), &Value::Str("cold".into()));

    let hit = plan_query(&socket, "8", &[]);
    assert_eq!(work_field(&hit, "source"), &Value::Str("hit".into()));
    assert_eq!(
        result_json(&cold),
        result_json(&hit),
        "exact hit must return the cold result byte-for-byte"
    );

    let warm = plan_query(&socket, "16", &[]);
    assert_eq!(work_field(&warm, "source"), &Value::Str("warm".into()));

    let bypass = plan_query(&socket, "16", &["--no-cache"]);
    assert_eq!(work_field(&bypass, "source"), &Value::Str("cold".into()));
    assert_eq!(
        result_json(&warm),
        result_json(&bypass),
        "warm-start result must be byte-identical to a cold tune"
    );
    let configs = |v: &Value| work_field(v, "configs_evaluated").as_i64().unwrap();
    assert!(
        configs(&warm) < configs(&bypass),
        "warm ({}) must evaluate strictly fewer configs than cold ({})",
        configs(&warm),
        configs(&bypass)
    );

    let (stats, ok) = query(&socket, &["--stats"]);
    assert!(ok);
    let counters = get(&stats, "cache").expect("cache counters");
    assert_eq!(get(counters, "hits"), Some(&Value::Int(1)));
    assert_eq!(get(counters, "warm_starts"), Some(&Value::Int(1)));
    assert_eq!(get(counters, "entries"), Some(&Value::Int(2)));

    // Malformed queries error without killing the daemon, and a bad
    // plan request exits nonzero.
    let (err, ok) = query(
        &socket,
        &["--model", "gpt3-1.3b", "--gpus", "12", "--batch", "8"],
    );
    assert!(!ok, "gpus=12 is not a valid cluster shape");
    assert_eq!(get(&err, "ok"), Some(&Value::Bool(false)));

    let (bye, ok) = query(&socket, &["--shutdown"]);
    assert!(ok);
    assert_eq!(get(&bye, "shutdown"), Some(&Value::Bool(true)));
    let status = guard.0.wait().expect("daemon exits after shutdown");
    assert!(status.success(), "daemon must exit cleanly: {status:?}");

    // The persisted cache survives a restart: a fresh daemon answers the
    // original query as an exact hit.
    let mut child = Command::new(env!("CARGO_BIN_EXE_mist-cli"))
        .args([
            "serve",
            "--listen",
            &socket,
            "--cache",
            &cache,
            "--threads",
            "2",
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn()
        .expect("respawn mist-cli serve");
    let stdout = child.stdout.take().expect("captured stdout");
    let mut guard = DaemonGuard(child);
    let mut ready = String::new();
    BufReader::new(stdout).read_line(&mut ready).unwrap();
    assert!(ready.starts_with("READY "), "unexpected banner: {ready}");

    let rehit = plan_query(&socket, "8", &[]);
    assert_eq!(work_field(&rehit, "source"), &Value::Str("hit".into()));
    assert_eq!(
        result_json(&cold),
        result_json(&rehit),
        "cache reload must preserve results byte-for-byte"
    );

    query(&socket, &["--shutdown"]);
    guard.0.wait().expect("daemon exits after shutdown");
    std::fs::remove_dir_all(&dir).ok();
}
