//! End-to-end provenance: spawns the real `mist-cli` binary to tune
//! GPT-3 6.7B with `--journal`, then drives `explain` over the journal
//! and checks the digest's core promises — every enumerated
//! configuration attributed to exactly one outcome, ≥3 runner-up plans
//! each carrying its killing constraint, the self-time tree agreeing
//! with the tuner's own phase timers, and zero orphaned spans — plus
//! that enabling the journal does not perturb the tuning result.

use std::process::Command;

use serde_json::Value;

fn get<'a>(v: &'a Value, key: &str) -> Option<&'a Value> {
    match v {
        Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
        _ => None,
    }
}

fn u64_of(v: &Value, key: &str) -> u64 {
    get(v, key)
        .and_then(Value::as_i64)
        .unwrap_or_else(|| panic!("missing u64 `{key}`")) as u64
}

fn f64_of(v: &Value, key: &str) -> f64 {
    get(v, key)
        .and_then(Value::as_f64)
        .unwrap_or_else(|| panic!("missing f64 `{key}`"))
}

fn tune_args(journal: Option<&std::path::Path>) -> Vec<String> {
    let mut args: Vec<String> = [
        "tune",
        "--model",
        "gpt3-6.7b",
        "--platform",
        "l4",
        "--gpus",
        "8",
        "--batch",
        "16",
        "--seed",
        "7",
        "--threads",
        "8",
        "--json",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    if let Some(path) = journal {
        args.push("--journal".into());
        args.push(path.to_str().unwrap().into());
    }
    args
}

fn run_cli(args: &[String]) -> String {
    let out = Command::new(env!("CARGO_BIN_EXE_mist-cli"))
        .args(args)
        .output()
        .expect("spawn mist-cli");
    assert!(
        out.status.success(),
        "mist-cli {:?} failed: {}",
        args.first(),
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("utf8 stdout")
}

#[test]
fn explain_digest_accounts_every_config_and_names_killing_constraints() {
    let journal_path =
        std::env::temp_dir().join(format!("mist_cli_explain_{}.jsonl", std::process::id()));
    let tune_out = run_cli(&tune_args(Some(&journal_path)));
    let tune_json: Value = serde_json::from_str(&tune_out).expect("tune emits JSON");
    let configs_evaluated = u64_of(&tune_json, "configs_evaluated");

    let digest_out = run_cli(&[
        "explain".into(),
        "--json".into(),
        journal_path.to_str().unwrap().into(),
    ]);
    std::fs::remove_file(&journal_path).ok();
    let digest: Value = serde_json::from_str(&digest_out).expect("explain emits JSON");

    // Coverage: every enumerated configuration lands in exactly one
    // bucket, and the journal's enumeration agrees with the tuner's own
    // configs_evaluated count.
    let cov = get(&digest, "coverage").expect("coverage");
    assert_eq!(get(cov, "accounted"), Some(&Value::Bool(true)));
    let enumerated = u64_of(cov, "enumerated");
    assert_eq!(enumerated, configs_evaluated);
    assert_eq!(
        enumerated,
        u64_of(cov, "oom") + u64_of(cov, "nonfinite") + u64_of(cov, "feasible")
    );
    assert_eq!(
        u64_of(cov, "feasible"),
        u64_of(cov, "survived") + u64_of(cov, "dominated")
    );

    // Outer candidates partition the same way.
    let outer = get(&digest, "outer").expect("outer");
    assert_eq!(
        u64_of(outer, "candidates"),
        u64_of(outer, "incumbents")
            + u64_of(outer, "dominated")
            + u64_of(outer, "out_of_budget")
            + u64_of(outer, "infeasible")
    );

    // Runner-ups: at least 3, each with a killing constraint naming the
    // incumbent-derived cutoff or dominance relation.
    let Some(Value::Array(runner_ups)) = get(&digest, "runner_ups") else {
        panic!("runner_ups array missing");
    };
    assert!(
        runner_ups.len() >= 3,
        "expected >=3 runner-up plans, got {}",
        runner_ups.len()
    );
    for r in runner_ups {
        let constraint = match get(r, "killing_constraint") {
            Some(Value::Str(s)) => s,
            other => panic!("killing_constraint missing: {other:?}"),
        };
        assert!(
            constraint.contains("incumbent") || constraint.contains("cutoff"),
            "constraint must name what killed the plan: {constraint}"
        );
    }

    // Zero orphaned spans at --threads 8: parent propagation across the
    // pool keeps every span rooted.
    let spans = get(&digest, "spans").expect("spans");
    assert!(u64_of(spans, "total") > 0);
    assert_eq!(u64_of(spans, "orphans"), 0, "orphaned spans in journal");

    // Self-time tree vs the tuner's own phase timers, within 1%: the
    // intra.sweep spans bracket exactly the intra_secs windows and
    // inter.solve brackets inter_secs.
    let timing = get(&digest, "timing").expect("timing");
    let totals = get(timing, "span_totals").expect("span_totals");
    for (phase, span_name) in [("intra_secs", "intra.sweep"), ("inter_secs", "inter.solve")] {
        let stat = f64_of(timing, phase);
        let span_total = f64_of(totals, span_name);
        let tol = (stat * 0.01).max(1e-3);
        assert!(
            (stat - span_total).abs() <= tol,
            "{phase} = {stat} vs {span_name} spans = {span_total} (tol {tol})"
        );
    }

    // Nothing fell out of the ring.
    assert_eq!(u64_of(get(&digest, "journal").unwrap(), "dropped"), 0);
}

#[test]
fn journal_does_not_perturb_the_tune_outcome() {
    let journal_path =
        std::env::temp_dir().join(format!("mist_cli_noperturb_{}.jsonl", std::process::id()));
    let with_journal = run_cli(&tune_args(Some(&journal_path)));
    std::fs::remove_file(&journal_path).ok();
    let without_journal = run_cli(&tune_args(None));

    let strip = |text: &str| -> String {
        let mut v: Value = serde_json::from_str(text).expect("tune JSON");
        if let Value::Object(fields) = &mut v {
            fields.retain(|(k, _)| k != "tuning_seconds");
        }
        serde_json::to_string_pretty(&v).unwrap()
    };
    assert_eq!(
        strip(&with_journal),
        strip(&without_journal),
        "--journal changed the tuning result"
    );
}

#[test]
fn explain_digests_an_outcome_file_from_aggregate_counters() {
    let out_path =
        std::env::temp_dir().join(format!("mist_cli_outcome_{}.json", std::process::id()));
    let mut args = tune_args(None);
    args.push("--metrics".into());
    std::fs::write(&out_path, run_cli(&args)).expect("write outcome file");

    let digest_out = run_cli(&[
        "explain".into(),
        "--json".into(),
        out_path.to_str().unwrap().into(),
    ]);
    std::fs::remove_file(&out_path).ok();
    let digest: Value = serde_json::from_str(&digest_out).expect("explain emits JSON");
    assert_eq!(get(&digest, "source"), Some(&Value::Str("outcome".into())));
    let cov = get(&digest, "coverage").expect("coverage");
    assert_eq!(get(cov, "accounted"), Some(&Value::Bool(true)));
    assert!(u64_of(cov, "enumerated") > 0);
}

#[test]
fn explain_rejects_garbage_and_missing_files() {
    let out = Command::new(env!("CARGO_BIN_EXE_mist-cli"))
        .args(["explain", "/nonexistent/journal.jsonl"])
        .output()
        .expect("spawn mist-cli");
    assert_eq!(out.status.code(), Some(2));

    let path = std::env::temp_dir().join(format!("mist_cli_garbage_{}.json", std::process::id()));
    std::fs::write(&path, "{\"feasible\": true}").unwrap();
    let out = Command::new(env!("CARGO_BIN_EXE_mist-cli"))
        .args(["explain", path.to_str().unwrap()])
        .output()
        .expect("spawn mist-cli");
    std::fs::remove_file(&path).ok();
    assert_eq!(
        out.status.code(),
        Some(2),
        "no-telemetry outcome must error"
    );
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("telemetry"),
        "error should point at --metrics/--journal"
    );
}
