//! Spawns the real `mist-cli` binary in `lint-ir` mode and pins its
//! JSON report for the GPT-3 6.7B preset against a golden snapshot: the
//! fused stage programs must stay statically clean (no unit mismatches,
//! every root provably finite and non-negative, no dead code) over the
//! full `mist` search space.
//!
//! Regenerate the snapshot after an intentional cost-model change with:
//!
//! ```text
//! cargo run -p mist --bin mist-cli -- lint-ir --model gpt3-6.7b --json \
//!   > crates/core/tests/golden/lint_ir_gpt3_6p7b.json
//! ```

use std::process::Command;

use serde_json::Value;

const GOLDEN: &str = include_str!("golden/lint_ir_gpt3_6p7b.json");

fn get<'a>(v: &'a Value, key: &str) -> Option<&'a Value> {
    match v {
        Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
        _ => None,
    }
}

#[test]
fn cli_lint_ir_matches_golden_snapshot() {
    let out = Command::new(env!("CARGO_BIN_EXE_mist-cli"))
        .args(["lint-ir", "--model", "gpt3-6.7b", "--json"])
        .output()
        .expect("spawn mist-cli");
    assert!(
        out.status.success(),
        "lint-ir exited nonzero: {}",
        String::from_utf8_lossy(&out.stderr)
    );

    let report: Value =
        serde_json::from_str(&String::from_utf8_lossy(&out.stdout)).expect("valid JSON report");
    let golden: Value = serde_json::from_str(GOLDEN).expect("valid golden JSON");
    assert_eq!(
        report, golden,
        "lint-ir report drifted from the golden snapshot; if the change \
         is intentional, regenerate it (see the header of this test)"
    );

    // Belt and braces beyond pure snapshot equality: the acceptance bar
    // is zero error-severity diagnostics over all 8 probe programs.
    assert_eq!(
        get(&report, "errors").and_then(Value::as_i64),
        Some(0),
        "error-severity diagnostics in lint-ir report"
    );
    let Some(Value::Array(models)) = get(&report, "models") else {
        panic!("models array missing");
    };
    let programs = get(&models[0], "programs").expect("programs");
    let Value::Array(programs) = programs else {
        panic!("programs is not an array");
    };
    assert_eq!(programs.len(), 8);

    // The per-sweep specialized residuals ride along in the report: all
    // corner groups lint clean and the issue's acceptance bar of an
    // average residual under 60 instructions holds.
    let avg = get(&models[0], "avg_specialized_instrs")
        .and_then(Value::as_f64)
        .expect("avg_specialized_instrs");
    assert!(avg < 60.0, "avg specialized residual {avg} instrs");
    let Some(Value::Array(specialized)) = get(&models[0], "specialized") else {
        panic!("specialized array missing");
    };
    assert_eq!(specialized.len(), 8);
    for s in specialized {
        let report = get(s, "report").expect("specialized report");
        assert_eq!(get(report, "errors").and_then(Value::as_i64), Some(0));
        assert_eq!(get(report, "warnings").and_then(Value::as_i64), Some(0));
        let instrs = get(s, "instructions").and_then(Value::as_i64).unwrap();
        let original = get(s, "original_instructions")
            .and_then(Value::as_i64)
            .unwrap();
        assert!(
            instrs < original,
            "residual must shrink: {instrs} vs {original}"
        );
    }
}

#[test]
fn cli_lint_ir_rejects_unknown_options() {
    let out = Command::new(env!("CARGO_BIN_EXE_mist-cli"))
        .args(["lint-ir", "--bogus"])
        .output()
        .expect("spawn mist-cli");
    assert_eq!(out.status.code(), Some(2));
}
