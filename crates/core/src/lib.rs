//! # Mist — memory-parallelism co-optimization for distributed LLM training
//!
//! A from-scratch Rust reproduction of *Mist: Efficient Distributed
//! Training of Large Language Models via Memory-Parallelism
//! Co-Optimization* (Zhu et al., EuroSys 2025).
//!
//! Mist automatically finds the best *joint* configuration of parallelism
//! (data / tensor / pipeline, micro-batching, gradient accumulation) and
//! every GPU-memory-footprint optimization (activation checkpointing,
//! ZeRO-1/2/3, weight/gradient/optimizer-state/activation offloading) for
//! training a transformer on a GPU cluster. Three ideas make the search
//! tractable and accurate:
//!
//! 1. **Overlap-centric scheduling** with an interference model for
//!    concurrently running compute/NCCL/D2H/H2D kernels,
//! 2. **Symbolic performance analysis** — trace once, compile cost
//!    expressions to tapes, evaluate thousands of configurations by
//!    batched value substitution,
//! 3. **Imbalance-aware hierarchical tuning** — intra-stage Pareto
//!    frontiers of (stable time, first/last-microbatch delta) feeding an
//!    inter-stage MILP.
//!
//! Real GPUs are replaced by a calibrated analytic hardware model plus a
//! discrete-event cluster simulator (see `DESIGN.md` for the substitution
//! map). The end-to-end flow:
//!
//! ```
//! use mist::{MistSession, Platform, presets};
//!
//! let model = presets::gpt3(presets::ModelSize::B1_3, 2048,
//!                           presets::AttentionImpl::Flash);
//! let session = MistSession::builder(model, Platform::GcpL4, 2).build();
//! let outcome = session.tune(8).expect("feasible plan");
//! let measured = session.execute(&outcome);
//! assert!(measured.iteration_time > 0.0);
//! println!("{:.1} samples/s", measured.throughput(8));
//! ```

pub mod cli;
mod explain;
mod lint;
mod report;
mod session;

pub use lint::{lint_model, ModelLint};
pub use report::{AccuracyReport, AccuracySample};
pub use session::{MistSession, SessionBuilder};

pub use mist_baselines::Baseline;
pub use mist_graph::{
    StageAnalyzer, StageCandidate, StageConfigValues, StagePoint, StageRole, StageTapes,
};
pub use mist_hardware::{ClusterSpec, DeviceMesh, GpuSpec, OpCostDb, Platform, GIB};
pub use mist_interference::{fit as fit_interference, InterferenceModel};
pub use mist_schedule::{
    averaged_objective, mist_objective, overlap_template, stable_only_objective, stage_times,
    IterationSchedule, StagePlan, StageStreams, TrainingPlan,
};
pub use mist_sim::{benchmark_interference, simulate, GroundTruth, SimReport, TaskKind};
pub use mist_telemetry as telemetry;
pub use mist_tuner::{CkptMode, SearchSpace, TuneOutcome, Tuner};

/// Model presets (GPT-3 / LLaMa / Falcon at Table 4 sizes).
pub mod presets {
    pub use mist_models::{
        falcon, gpt3, gpt3_with_layers, llama, AttentionImpl, Family, ModelSize, ModelSpec,
        ModelStats,
    };
}
