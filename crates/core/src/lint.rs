//! The `mist-cli lint-ir` command: drives the `mist-irlint` static
//! analyzer over the fused stage programs the symbolic compiler emits.
//!
//! For each model preset the driver builds a 4-GPU probe candidate in
//! every pipeline role, compiles the full 22-root stage program plus the
//! 2-root memory pair, and lints both against the declared stage units
//! ([`mist_graph::stage_unit_registry`]) and the symbol domains of the
//! chosen search space (`SearchSpace::symbol_domains`). A clean run
//! proves — statically, before any tuning sweep — that every cost root
//! is dimensionally consistent, finite, and non-negative over the whole
//! space.

use mist_graph::{stage_unit_registry, StageAnalyzer, StageCandidate, StageRole};
use mist_hardware::{ClusterSpec, DeviceMesh, OpCostDb, Platform};
use mist_irlint::LintReport;
use mist_models::ModelSpec;
use mist_tuner::SearchSpace;

/// Lint reports for every probe program of one model preset.
#[derive(Debug)]
pub struct ModelLint {
    /// The preset's name (e.g. `gpt3-6.7b`).
    pub model: String,
    /// One report per `(role, program)` pair, in role order with the
    /// fused 22-root program before the memory pair.
    pub reports: Vec<LintReport>,
}

impl ModelLint {
    /// Total error-severity diagnostics across all reports.
    pub fn error_count(&self) -> usize {
        self.reports.iter().map(LintReport::error_count).sum()
    }

    /// Total warning-severity diagnostics across all reports.
    pub fn warning_count(&self) -> usize {
        self.reports.iter().map(LintReport::warning_count).sum()
    }

    /// Total info-severity diagnostics across all reports.
    pub fn info_count(&self) -> usize {
        self.reports.iter().map(LintReport::info_count).sum()
    }
}

/// Lints the stage programs of `model` over `space`'s symbol domains.
///
/// The probe cluster is a single 4-GPU node of the given platform with a
/// `dp=2, tp=2` mesh split — large enough to exercise every collective
/// (all-gather, reduce, P2P) in the compiled expressions; the lint
/// verdict is about the *structure* of the programs, which does not
/// change with the candidate's scale.
pub fn lint_model(model: &ModelSpec, platform: Platform, space: &SearchSpace) -> ModelLint {
    let cluster = ClusterSpec::for_gpu_count(platform, 4);
    let db = OpCostDb::new(cluster.gpu.clone());
    let analyzer = StageAnalyzer::new(model, &cluster, &db);
    let registry = stage_unit_registry();
    let domains = space.symbol_domains(model);
    let mut reports = Vec::new();
    for role in [
        StageRole::First,
        StageRole::Middle,
        StageRole::Last,
        StageRole::Only,
    ] {
        let tapes = analyzer.analyze(&StageCandidate {
            mesh: DeviceMesh::new(1, 4),
            dp: 2,
            tp: 2,
            micro_batch: 2,
            role,
        });
        let tag = match role {
            StageRole::First => "first",
            StageRole::Middle => "middle",
            StageRole::Last => "last",
            StageRole::Only => "only",
        };
        for (program, kind) in [(&tapes.program, "stage"), (&tapes.mem_pair, "mem_pair")] {
            reports.push(mist_irlint::lint_program(
                program,
                &registry,
                &domains,
                &format!("{}/{tag}/{kind}", model.name),
            ));
        }
    }
    ModelLint {
        model: model.name.clone(),
        reports,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mist_models::{gpt3, AttentionImpl, ModelSize};

    #[test]
    fn preset_lints_clean_over_the_mist_space() {
        let model = gpt3(ModelSize::B1_3, 2048, AttentionImpl::Flash);
        let lint = lint_model(&model, Platform::GcpL4, &SearchSpace::mist());
        assert_eq!(lint.reports.len(), 8);
        assert_eq!(lint.error_count(), 0, "{:#?}", lint.reports);
        assert_eq!(lint.warning_count(), 0, "{:#?}", lint.reports);
    }
}
