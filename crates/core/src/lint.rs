//! The `mist-cli lint-ir` command: drives the `mist-irlint` static
//! analyzer over the fused stage programs the symbolic compiler emits.
//!
//! For each model preset the driver builds a 4-GPU probe candidate in
//! every pipeline role, compiles the full 22-root stage program plus the
//! 2-root memory pair, and lints both against the declared stage units
//! ([`mist_graph::stage_unit_registry`]) and the symbol domains of the
//! chosen search space (`SearchSpace::symbol_domains`). A clean run
//! proves — statically, before any tuning sweep — that every cost root
//! is dimensionally consistent, finite, and non-negative over the whole
//! space.

use mist_graph::{
    stage_unit_registry, sweep_frozen_symbols, StageAnalyzer, StageCandidate, StageRole,
};
use mist_hardware::{ClusterSpec, DeviceMesh, OpCostDb, Platform};
use mist_irlint::LintReport;
use mist_models::ModelSpec;
use mist_symbolic::specialize_with_stats;
use mist_tuner::{CkptMode, SearchSpace};

/// Lint verdict of one per-sweep specialized residual program.
#[derive(Debug)]
pub struct SpecializedLint {
    /// `model/role/specialized[...]` label of the residual.
    pub report: LintReport,
    /// Residual instruction count after specialization.
    pub instructions: usize,
    /// Instruction count of the original fused program.
    pub original_instructions: usize,
}

/// Lint reports for every probe program of one model preset.
#[derive(Debug)]
pub struct ModelLint {
    /// The preset's name (e.g. `gpt3-6.7b`).
    pub model: String,
    /// One report per `(role, program)` pair, in role order with the
    /// fused 22-root program before the memory pair.
    pub reports: Vec<LintReport>,
    /// Reports for the specialized residuals the tuner actually sweeps:
    /// per role, the corner `(zero, offload)` groups of the space.
    pub specialized: Vec<SpecializedLint>,
}

impl ModelLint {
    /// Total error-severity diagnostics across all reports (fused and
    /// specialized).
    pub fn error_count(&self) -> usize {
        self.all_reports().map(LintReport::error_count).sum()
    }

    /// Total warning-severity diagnostics across all reports.
    pub fn warning_count(&self) -> usize {
        self.all_reports().map(LintReport::warning_count).sum()
    }

    /// Total info-severity diagnostics across all reports.
    pub fn info_count(&self) -> usize {
        self.all_reports().map(LintReport::info_count).sum()
    }

    /// Mean instruction count of the specialized residuals (`NaN` when
    /// none were produced).
    pub fn avg_specialized_instrs(&self) -> f64 {
        let n = self.specialized.len();
        let total: usize = self.specialized.iter().map(|s| s.instructions).sum();
        total as f64 / n as f64
    }

    fn all_reports(&self) -> impl Iterator<Item = &LintReport> {
        self.reports
            .iter()
            .chain(self.specialized.iter().map(|s| &s.report))
    }
}

/// Lints the stage programs of `model` over `space`'s symbol domains.
///
/// The probe cluster is a single 4-GPU node of the given platform with a
/// `dp=2, tp=2` mesh split — large enough to exercise every collective
/// (all-gather, reduce, P2P) in the compiled expressions; the lint
/// verdict is about the *structure* of the programs, which does not
/// change with the candidate's scale.
pub fn lint_model(model: &ModelSpec, platform: Platform, space: &SearchSpace) -> ModelLint {
    let cluster = ClusterSpec::for_gpu_count(platform, 4);
    let db = OpCostDb::new(cluster.gpu.clone());
    let analyzer = StageAnalyzer::new(model, &cluster, &db);
    let registry = stage_unit_registry();
    let domains = space.symbol_domains(model);
    // Corner `(zero, offload)` groups of the sweep: the all-off first
    // combo and the most aggressive one. Every group the tuner freezes
    // lies between these in how much of the program survives.
    let zeros = space.zero_levels();
    let combos = space.offload_combos();
    let mut groups: Vec<(u8, [f64; 4])> = vec![(zeros[0], combos[0])];
    let corner = (
        *zeros.last().expect("non-empty"),
        *combos.last().expect("non-empty"),
    );
    if corner != groups[0] {
        groups.push(corner);
    }
    let frozen_ckpt = match space.ckpt {
        CkptMode::None => Some(0),
        CkptMode::Full | CkptMode::Tuned => None,
    };
    let mut reports = Vec::new();
    let mut specialized = Vec::new();
    for role in [
        StageRole::First,
        StageRole::Middle,
        StageRole::Last,
        StageRole::Only,
    ] {
        let tapes = analyzer.analyze(&StageCandidate {
            mesh: DeviceMesh::new(1, 4),
            dp: 2,
            tp: 2,
            micro_batch: 2,
            role,
        });
        let tag = match role {
            StageRole::First => "first",
            StageRole::Middle => "middle",
            StageRole::Last => "last",
            StageRole::Only => "only",
        };
        for (program, kind) in [(&tapes.program, "stage"), (&tapes.mem_pair, "mem_pair")] {
            reports.push(mist_irlint::lint_program(
                program,
                &registry,
                &domains,
                &format!("{}/{tag}/{kind}", model.name),
            ));
        }
        // The residuals the tuner sweeps: freeze each corner group (with
        // the sweep-domain interval facts) and re-lint — the
        // specialization pass must not manufacture unit mismatches,
        // unprovable bounds or dead code at any corner of the space.
        let facts = mist_irlint::sweep_facts(&tapes.program, &domains);
        for &(z, off) in &groups {
            let frozen = sweep_frozen_symbols(z, off, 1, frozen_ckpt);
            let (residual, stats) = specialize_with_stats(&tapes.program, &frozen, &facts);
            let label = format!(
                "{}/{tag}/specialized[zero={z},off={:.2},{:.2},{:.2},{:.2}]",
                model.name, off[0], off[1], off[2], off[3]
            );
            specialized.push(SpecializedLint {
                report: mist_irlint::lint_program(&residual, &registry, &domains, &label),
                instructions: stats.specialized_instrs,
                original_instructions: stats.original_instrs,
            });
        }
    }
    ModelLint {
        model: model.name.clone(),
        reports,
        specialized,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mist_models::{gpt3, AttentionImpl, ModelSize};

    #[test]
    fn preset_lints_clean_over_the_mist_space() {
        let model = gpt3(ModelSize::B1_3, 2048, AttentionImpl::Flash);
        let lint = lint_model(&model, Platform::GcpL4, &SearchSpace::mist());
        assert_eq!(lint.reports.len(), 8);
        assert_eq!(lint.error_count(), 0, "{:#?}", lint.reports);
        assert_eq!(lint.warning_count(), 0, "{:#?}", lint.reports);
    }

    #[test]
    fn specialized_residuals_lint_clean_and_shrink() {
        let model = gpt3(ModelSize::B1_3, 2048, AttentionImpl::Flash);
        for space in [SearchSpace::mist(), SearchSpace::megatron()] {
            let lint = lint_model(&model, Platform::GcpL4, &space);
            // 4 roles × 2 corner groups (megatron has a single offload
            // combo but two ZeRO levels, so still two corners).
            assert_eq!(lint.specialized.len(), 8, "space {}", space.name);
            for s in &lint.specialized {
                assert!(s.report.is_clean(), "space {}: {}", space.name, s.report);
                assert!(
                    s.instructions < s.original_instructions,
                    "space {}: {} must shrink ({} -> {})",
                    space.name,
                    s.report.program,
                    s.original_instructions,
                    s.instructions
                );
            }
            assert!(
                lint.avg_specialized_instrs() < 60.0,
                "space {}: avg {} instrs",
                space.name,
                lint.avg_specialized_instrs()
            );
        }
    }
}
