//! `mist-cli` — tune and execute distributed-training plans from the
//! command line.
//!
//! ```bash
//! mist-cli tune --model gpt3-6.7b --platform l4 --gpus 8 --batch 128
//! mist-cli tune --model llama-13b --platform a100 --gpus 16 --batch 256 \
//!          --space megatron --execute --json
//! mist-cli tune --model gpt3-1.3b --platform l4 --gpus 4 --batch 32 \
//!          --execute --trace out.json --metrics
//! mist-cli models          # list model presets
//! mist-cli spaces          # list search-space presets
//! ```
//!
//! All the logic lives in [`mist::cli`] so integration tests can drive it
//! in-process.

use std::process::ExitCode;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    ExitCode::from(mist::cli::run(&argv))
}
