//! The end-to-end Mist session: calibrate → tune → execute.

use mist_graph::StageAnalyzer;
use mist_hardware::{ClusterSpec, OpCostDb, Platform};
use mist_interference::{fit, InterferenceModel};
use mist_models::ModelSpec;
use mist_schedule::IterationSchedule;
use mist_sim::{benchmark_interference, simulate, GroundTruth, SimReport};
use mist_tuner::{SearchSpace, TuneOutcome, Tuner};

use crate::report::{AccuracyReport, AccuracySample};

/// Builder for a [`MistSession`].
pub struct SessionBuilder {
    model: ModelSpec,
    cluster: ClusterSpec,
    space: SearchSpace,
    fit_interference: bool,
    calibration_samples: usize,
    max_grad_accum: u32,
    seed: u64,
    mono_prune: bool,
    compiled_eval: bool,
}

impl SessionBuilder {
    /// Chooses the search space (defaults to full Mist).
    pub fn space(mut self, space: SearchSpace) -> Self {
        self.space = space;
        self
    }

    /// Disables the interference-fitting calibration pass (the tuner then
    /// uses the platform's prior factors).
    pub fn skip_interference_fit(mut self) -> Self {
        self.fit_interference = false;
        self
    }

    /// Caps the gradient-accumulation sweep.
    pub fn max_grad_accum(mut self, cap: u32) -> Self {
        self.max_grad_accum = cap;
        self
    }

    /// Seeds the calibration benchmarks.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Enables or disables the tuner's proof-licensed monotone pruning
    /// (on by default; results are byte-identical either way).
    pub fn monotone_prune(mut self, enabled: bool) -> Self {
        self.mono_prune = enabled;
        self
    }

    /// Enables or disables the tuner's compiled evaluation backend —
    /// superinstruction-fused, direct-threaded kernels and the
    /// memory-first filtered sweep (on by default; results are
    /// byte-identical either way).
    pub fn compiled_eval(mut self, enabled: bool) -> Self {
        self.compiled_eval = enabled;
        self
    }

    /// Number of concurrent-kernel mixes benchmarked during calibration.
    pub fn calibration_samples(mut self, n: usize) -> Self {
        assert!(n > 0);
        self.calibration_samples = n;
        self
    }

    /// Calibrates and builds the session.
    pub fn build(self) -> MistSession {
        let db = OpCostDb::new(self.cluster.gpu.clone());
        let prior = match self.cluster.platform {
            Platform::GcpL4 => InterferenceModel::pcie_defaults(),
            Platform::AwsA100 => InterferenceModel::nvlink_defaults(),
        };
        // The data-driven calibration loop of §5.2.2: benchmark concurrent
        // kernel mixes on the target (here: the simulator's hidden law),
        // then fit the slowdown factors.
        let interference = if self.fit_interference {
            let _span =
                mist_telemetry::span!("session.calibrate", samples = self.calibration_samples);
            let samples =
                benchmark_interference(self.cluster.platform, self.calibration_samples, self.seed);
            fit(&prior, &samples, 3000, self.seed ^ 0x5EED).0
        } else {
            prior
        };
        MistSession {
            model: self.model,
            cluster: self.cluster,
            db,
            space: self.space,
            interference,
            max_grad_accum: self.max_grad_accum,
            mono_prune: self.mono_prune,
            compiled_eval: self.compiled_eval,
        }
    }
}

/// A tuned-and-executable Mist deployment for one model on one cluster.
pub struct MistSession {
    model: ModelSpec,
    cluster: ClusterSpec,
    db: OpCostDb,
    space: SearchSpace,
    interference: InterferenceModel,
    max_grad_accum: u32,
    mono_prune: bool,
    compiled_eval: bool,
}

impl MistSession {
    /// Starts building a session for `total_gpus` GPUs of `platform`
    /// (Table 3 shapes).
    pub fn builder(model: ModelSpec, platform: Platform, total_gpus: u32) -> SessionBuilder {
        Self::builder_with_cluster(model, ClusterSpec::for_gpu_count(platform, total_gpus))
    }

    /// Builder from an explicit cluster spec.
    pub fn builder_with_cluster(model: ModelSpec, cluster: ClusterSpec) -> SessionBuilder {
        SessionBuilder {
            model,
            cluster,
            space: SearchSpace::mist(),
            fit_interference: true,
            calibration_samples: 400,
            max_grad_accum: 256,
            seed: 0xAB5EED,
            mono_prune: true,
            compiled_eval: true,
        }
    }

    /// The model being tuned.
    pub fn model(&self) -> &ModelSpec {
        &self.model
    }

    /// The cluster being targeted.
    pub fn cluster(&self) -> &ClusterSpec {
        &self.cluster
    }

    /// The calibrated interference model.
    pub fn interference(&self) -> &InterferenceModel {
        &self.interference
    }

    /// The operator-cost database.
    pub fn cost_db(&self) -> &OpCostDb {
        &self.db
    }

    /// The active search space.
    pub fn space(&self) -> &SearchSpace {
        &self.space
    }

    /// Runs Mist's hierarchical auto-tuner for a global batch size.
    pub fn tune(&self, global_batch: u64) -> Option<TuneOutcome> {
        Tuner::new(
            &self.model,
            &self.cluster,
            &self.db,
            &self.space,
            &self.interference,
        )
        .with_max_grad_accum(self.max_grad_accum)
        .with_monotone_prune(self.mono_prune)
        .with_compiled_eval(self.compiled_eval)
        .tune(global_batch)
    }

    /// Executes a tuned plan on the discrete-event cluster simulator and
    /// returns the *measured* report.
    pub fn execute(&self, outcome: &TuneOutcome) -> SimReport {
        let schedule =
            IterationSchedule::from_points(outcome.plan.grad_accum, &outcome.stage_points);
        simulate(&schedule, &GroundTruth::for_platform(self.cluster.platform))
    }

    /// Executes an arbitrary plan (re-analyzing its stages first).
    pub fn execute_plan(&self, plan: &mist_schedule::TrainingPlan) -> SimReport {
        let analyzer = StageAnalyzer::new(&self.model, &self.cluster, &self.db);
        let tapes: Vec<_> = plan
            .stages
            .iter()
            .map(|s| analyzer.analyze(&s.candidate))
            .collect();
        let schedule = IterationSchedule::from_plan(plan, &tapes);
        simulate(&schedule, &GroundTruth::for_platform(self.cluster.platform))
    }

    /// Prediction-accuracy study (§6.6): tunes plans across several batch
    /// sizes, compares the analyzer's predicted iteration time and peak
    /// memory against the simulator's measurements.
    pub fn accuracy_report(&self, batch_sizes: &[u64]) -> AccuracyReport {
        let mut samples = Vec::new();
        for &b in batch_sizes {
            let Some(outcome) = self.tune(b) else {
                continue;
            };
            let measured = self.execute(&outcome);
            let predicted_mem = outcome
                .stage_points
                .iter()
                .map(|p| p.mem_fwd.max(p.mem_bwd))
                .fold(0.0, f64::max);
            let measured_mem = measured.stage_peak_mem.iter().cloned().fold(0.0, f64::max);
            samples.push(AccuracySample {
                global_batch: b,
                predicted_time: outcome.predicted_iteration,
                measured_time: measured.iteration_time,
                predicted_mem,
                measured_mem,
            });
        }
        AccuracyReport::from_samples(samples)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mist_models::{gpt3, AttentionImpl, ModelSize};

    fn small_session() -> MistSession {
        let model = gpt3(ModelSize::B1_3, 2048, AttentionImpl::Flash);
        MistSession::builder(model, Platform::GcpL4, 2)
            .max_grad_accum(8)
            .build()
    }

    #[test]
    fn tune_and_execute_round_trip() {
        let session = small_session();
        let outcome = session.tune(8).expect("feasible plan");
        let report = session.execute(&outcome);
        assert!(report.iteration_time > 0.0);
        // The measured time should be in the ballpark of the prediction
        // (the §6.6 study quantifies this precisely).
        let rel =
            (report.iteration_time - outcome.predicted_iteration).abs() / report.iteration_time;
        assert!(rel < 0.35, "prediction off by {:.1}%", rel * 100.0);
        // Memory must fit the GPU.
        for &m in &report.stage_peak_mem {
            assert!(m <= session.cluster().gpu.memory_bytes * 1.05);
        }
    }

    #[test]
    fn execute_plan_matches_execute_points() {
        let session = small_session();
        let outcome = session.tune(8).unwrap();
        let a = session.execute(&outcome);
        let b = session.execute_plan(&outcome.plan);
        let rel = (a.iteration_time - b.iteration_time).abs() / a.iteration_time;
        assert!(rel < 1e-9, "point-lowering and plan-lowering must agree");
    }

    #[test]
    fn fitted_interference_differs_from_prior() {
        let session = small_session();
        let prior = InterferenceModel::pcie_defaults();
        assert_ne!(
            session.interference(),
            &prior,
            "calibration must adjust factors"
        );
    }

    #[test]
    fn accuracy_report_has_small_errors() {
        let session = small_session();
        let report = session.accuracy_report(&[4, 8]);
        assert!(report.samples.len() == 2);
        assert!(
            report.mean_time_error < 0.25,
            "mean runtime error {:.1}%",
            report.mean_time_error * 100.0
        );
        assert!(
            report.mean_mem_error < 0.10,
            "mean memory error {:.1}%",
            report.mean_mem_error * 100.0
        );
    }
}
