//! `mist-cli explain` — turn a tuning run's provenance into a digest.
//!
//! Input is either a decision-journal JSONL file (written by
//! `mist-cli tune --journal <FILE>`) or a `tune --json` outcome file.
//! The journal gives the full story: search-space coverage with every
//! enumerated configuration attributed to exactly one outcome, a
//! rejection-reason histogram, the incumbent's evolution, the top-k
//! runner-up plans with the constraint that killed each one, per-solve
//! DP statistics, MILP node tallies, specializer cache behavior and a
//! self-time tree reconstructed from span parentage. An outcome file
//! only carries the aggregate counters, so its digest is the aggregate
//! subset.
//!
//! All wall-clock-derived values live under the single `timing` key of
//! the JSON digest so deterministic golden comparisons can strip one
//! subtree (`scripts/golden_diff.py`).

use std::collections::{BTreeMap, HashMap};

use mist_telemetry::{JournalEvent, JournalRecord, MilpNodeKind, OuterOutcome, SpanRecord};
use mist_tuner::TuneStats;
use serde::{Deserialize as _, Serialize as _, Value};

/// How many runner-up plans the digest keeps.
pub const DEFAULT_TOP_K: usize = 5;

// --- journal file writing --------------------------------------------------

/// Writes a self-contained journal file: a header line, the tuning
/// stats, one line per completed span, one line per journal record and
/// a trailer with ring statistics. Drains the global journal.
pub(crate) fn write_journal_file(
    path: &str,
    header: Value,
    stats: &TuneStats,
    spans: &[SpanRecord],
) -> Result<(), String> {
    let journal = mist_telemetry::global_journal();
    let dropped = journal.dropped();
    let records = journal.drain();
    let mut out = String::new();
    out.push_str(&serde_json::to_string(&serde_json::json!({ "header": header })).unwrap());
    out.push('\n');
    out.push_str(
        &serde_json::to_string(&serde_json::json!({ "stats": stats.to_value() })).unwrap(),
    );
    out.push('\n');
    for s in spans {
        let line = serde_json::json!({
            "span": serde_json::json!({
                "id": s.id,
                "parent": s.parent,
                "name": s.name,
                "tid": s.tid,
                "start_us": s.start_us,
                "dur_us": s.dur_us,
            })
        });
        out.push_str(&serde_json::to_string(&line).unwrap());
        out.push('\n');
    }
    for r in &records {
        out.push_str(&format!("{{\"record\":{}}}\n", r.to_jsonl()));
    }
    let trailer = serde_json::json!({
        "journal": serde_json::json!({
            "records": records.len() as u64,
            "dropped": dropped,
        })
    });
    out.push_str(&serde_json::to_string(&trailer).unwrap());
    out.push('\n');
    std::fs::write(path, out).map_err(|e| format!("cannot write journal to {path}: {e}"))
}

// --- parsing ---------------------------------------------------------------

fn get<'a>(v: &'a Value, key: &str) -> Option<&'a Value> {
    match v {
        Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
        _ => None,
    }
}

fn get_u64(v: &Value, key: &str) -> u64 {
    get(v, key).and_then(Value::as_i64).unwrap_or(0) as u64
}

fn get_f64(v: &Value, key: &str) -> f64 {
    get(v, key).and_then(Value::as_f64).unwrap_or(0.0)
}

fn get_str<'a>(v: &'a Value, key: &str) -> Option<&'a str> {
    match get(v, key) {
        Some(Value::Str(s)) => Some(s.as_str()),
        _ => None,
    }
}

/// One completed span as read back from a journal file.
struct SpanLite {
    id: u64,
    parent: u64,
    name: String,
    dur_us: f64,
}

/// A parsed journal file.
struct JournalFile {
    header: Value,
    stats: Option<TuneStats>,
    spans: Vec<SpanLite>,
    records: Vec<JournalRecord>,
    dropped: u64,
}

fn parse_journal(text: &str, path: &str) -> Result<JournalFile, String> {
    let mut jf = JournalFile {
        header: Value::Null,
        stats: None,
        spans: Vec::new(),
        records: Vec::new(),
        dropped: 0,
    };
    for (ln, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let v: Value = serde_json::from_str(line)
            .map_err(|e| format!("{path}:{}: bad JSONL line: {e}", ln + 1))?;
        if let Some(h) = get(&v, "header") {
            jf.header = h.clone();
        } else if let Some(s) = get(&v, "stats") {
            jf.stats = TuneStats::from_value(s).ok();
        } else if let Some(s) = get(&v, "span") {
            jf.spans.push(SpanLite {
                id: get_u64(s, "id"),
                parent: get_u64(s, "parent"),
                name: get_str(s, "name").unwrap_or("?").to_owned(),
                dur_us: get_f64(s, "dur_us"),
            });
        } else if let Some(r) = get(&v, "record") {
            let rec = JournalRecord::from_value(r)
                .map_err(|e| format!("{path}:{}: bad journal record: {e}", ln + 1))?;
            jf.records.push(rec);
        } else if let Some(t) = get(&v, "journal") {
            jf.dropped = get_u64(t, "dropped");
        }
    }
    jf.records.sort_by_key(|r| r.seq);
    Ok(jf)
}

// --- digest ----------------------------------------------------------------

#[derive(Default)]
struct Tallies {
    // Intra-stage row coverage (summed over FrontierSummary events).
    enumerated: u64,
    oom: u64,
    nonfinite: u64,
    feasible: u64,
    survived: u64,
    dominated: u64,
    mono_pruned: u64,
    frontier_size_max: u64,
    // Outer-loop candidate fates.
    outer_total: u64,
    outer_incumbent: u64,
    outer_dominated: u64,
    outer_out_of_budget: u64,
    outer_infeasible: u64,
    // Inter-stage DP.
    dp_states: u64,
    bound_pruned: u64,
    // MILP branch-and-bound nodes.
    milp_open: u64,
    milp_pruned: u64,
    milp_incumbent: u64,
    // Specializer cache.
    spec_hits: u64,
    spec_misses: u64,
    spec_original_sum: u64,
    spec_residual_sum: u64,
}

/// One runner-up plan with the constraint that killed it.
struct RunnerUp {
    grad_accum: u32,
    stages: u32,
    /// Selector (exact) or DP lower bound — whichever is known.
    score: f64,
    exact: bool,
    objective: Option<f64>,
    layers: Vec<u32>,
    incumbent: Option<f64>,
    constraint: String,
}

struct Digest {
    source: &'static str,
    run: Value,
    tallies: Tallies,
    frontiers: Vec<Value>,
    evolution: Vec<Value>,
    runner_ups: Vec<RunnerUp>,
    dp_solves: Vec<Value>,
    prune_events: Vec<Value>,
    cert_checks: Vec<Value>,
    span_count: u64,
    orphans: u64,
    dropped: u64,
    stats: Option<TuneStats>,
    /// (path, count, total_s, self_s), path components joined by '/'.
    self_time: Vec<(String, u64, f64, f64)>,
    /// Total seconds per span name.
    span_totals: BTreeMap<String, f64>,
}

fn fmt_s(v: f64) -> String {
    format!("{v:.6}s")
}

/// Canonical sort key for a frontier digest: worker-emitted events
/// arrive in scheduling order, this restores a thread-count-independent
/// ordering.
type FrontierKey = (u32, u32, u32, String, u32, u32);

fn digest_journal(jf: &JournalFile, top: usize) -> Digest {
    let mut t = Tallies::default();
    let mut frontiers: Vec<(FrontierKey, Value)> = Vec::new();
    let mut evolution = Vec::new();
    let mut dp_solves = Vec::new();
    let mut runners: Vec<RunnerUp> = Vec::new();
    let mut prune_events = Vec::new();
    let mut cert_checks = Vec::new();

    for r in &jf.records {
        match &r.event {
            JournalEvent::FrontierSummary {
                mesh_nodes,
                mesh_gpus,
                role,
                inflight,
                grad_accum,
                max_layers,
                enumerated,
                oom,
                nonfinite,
                feasible,
                survived,
                dominated,
                mono_pruned,
                sizes,
            } => {
                t.enumerated += enumerated;
                t.oom += oom;
                t.nonfinite += nonfinite;
                t.feasible += feasible;
                t.survived += survived;
                t.dominated += dominated;
                t.mono_pruned += mono_pruned;
                let max_size = sizes.iter().copied().max().unwrap_or(0) as u64;
                t.frontier_size_max = t.frontier_size_max.max(max_size);
                frontiers.push((
                    (
                        *grad_accum,
                        *mesh_nodes,
                        *mesh_gpus,
                        role.clone(),
                        *inflight,
                        *max_layers,
                    ),
                    serde_json::json!({
                        "grad_accum": grad_accum,
                        "mesh": format!("{mesh_nodes}x{mesh_gpus}"),
                        "role": role,
                        "inflight": inflight,
                        "max_layers": max_layers,
                        "enumerated": enumerated,
                        "oom": oom,
                        "nonfinite": nonfinite,
                        "feasible": feasible,
                        "survived": survived,
                        "dominated": dominated,
                        "mono_pruned": mono_pruned,
                        "max_frontier_size": max_size,
                    }),
                ));
            }
            JournalEvent::OuterCandidate {
                grad_accum,
                stages,
                outcome,
                selector,
                objective,
                layers,
                incumbent,
                bound,
            } => {
                t.outer_total += 1;
                match outcome {
                    OuterOutcome::Incumbent => t.outer_incumbent += 1,
                    OuterOutcome::Dominated => t.outer_dominated += 1,
                    OuterOutcome::OutOfBudget => t.outer_out_of_budget += 1,
                    OuterOutcome::Infeasible => t.outer_infeasible += 1,
                }
                let lost = matches!(outcome, OuterOutcome::Dominated | OuterOutcome::OutOfBudget);
                if !lost {
                    continue;
                }
                let (score, exact) = match (selector, bound) {
                    (Some(s), _) => (*s, true),
                    (None, Some(b)) => (*b, false),
                    (None, None) => continue,
                };
                let inc = incumbent.unwrap_or(f64::INFINITY);
                let constraint = match (outcome, exact) {
                    (OuterOutcome::Dominated, _) => {
                        format!("selector {} >= incumbent {}", fmt_s(score), fmt_s(inc))
                    }
                    (_, true) => format!(
                        "selector {} >= cutoff {} (incumbent at solve time)",
                        fmt_s(score),
                        fmt_s(inc)
                    ),
                    (_, false) => format!(
                        "DP lower bound {} >= cutoff {} (search truncated)",
                        fmt_s(score),
                        fmt_s(inc)
                    ),
                };
                runners.push(RunnerUp {
                    grad_accum: *grad_accum,
                    stages: *stages,
                    score,
                    exact,
                    objective: *objective,
                    layers: layers.clone(),
                    incumbent: *incumbent,
                    constraint,
                });
            }
            JournalEvent::Incumbent {
                grad_accum,
                stages,
                selector,
                objective,
            } => {
                evolution.push(serde_json::json!({
                    "grad_accum": grad_accum,
                    "stages": stages,
                    "selector": selector,
                    "objective": objective,
                }));
            }
            JournalEvent::DpSummary {
                stages,
                grad_accum,
                states,
                bound_pruned,
                result,
            } => {
                t.dp_states += states;
                t.bound_pruned += bound_pruned;
                dp_solves.push(serde_json::json!({
                    "stages": stages,
                    "grad_accum": grad_accum,
                    "states": states,
                    "bound_pruned": bound_pruned,
                    "result": result,
                }));
            }
            JournalEvent::MilpNode { kind, .. } => match kind {
                MilpNodeKind::Open => t.milp_open += 1,
                MilpNodeKind::Pruned => t.milp_pruned += 1,
                MilpNodeKind::Incumbent => t.milp_incumbent += 1,
            },
            JournalEvent::SpecializeCache {
                hit,
                original,
                residual,
                ..
            } => {
                if *hit {
                    t.spec_hits += 1;
                } else {
                    t.spec_misses += 1;
                    t.spec_original_sum += *original as u64;
                    t.spec_residual_sum += *residual as u64;
                }
            }
            JournalEvent::MonotonePrune {
                mesh_nodes,
                mesh_gpus,
                role,
                inflight,
                floor,
                layers,
                rows,
            } => {
                prune_events.push(serde_json::json!({
                    "mesh": format!("{mesh_nodes}x{mesh_gpus}"),
                    "role": role,
                    "inflight": inflight,
                    "floor": floor,
                    "layers": layers.clone(),
                    "rows": rows,
                }));
            }
            JournalEvent::CertCheck {
                phase,
                stages,
                ok,
                failures,
            } => {
                cert_checks.push(serde_json::json!({
                    "phase": phase,
                    "stages": stages,
                    "ok": ok,
                    "failures": failures.clone(),
                }));
            }
        }
    }

    // Worker-emitted events arrive in scheduling order; sort the frontier
    // list canonically so the digest is thread-count-independent.
    frontiers.sort_by(|a, b| a.0.cmp(&b.0));
    // Runner-ups: best (smallest score) first, deterministic tie-break.
    runners.sort_by(|a, b| {
        a.score
            .total_cmp(&b.score)
            .then(a.grad_accum.cmp(&b.grad_accum))
            .then(a.stages.cmp(&b.stages))
    });
    runners.truncate(top);

    // Self-time tree from span parentage.
    let by_id: HashMap<u64, usize> = jf.spans.iter().map(|s| (s.id, usize::MAX)).collect();
    let mut by_id = by_id; // id -> index
    for (i, s) in jf.spans.iter().enumerate() {
        by_id.insert(s.id, i);
    }
    let mut child_us = vec![0.0f64; jf.spans.len()];
    let mut orphans = 0u64;
    for s in &jf.spans {
        if s.parent == 0 {
            continue;
        }
        match by_id.get(&s.parent) {
            Some(&pi) => child_us[pi] += s.dur_us,
            None => orphans += 1,
        }
    }
    let path_of = |mut i: usize| -> Vec<String> {
        let mut parts = vec![jf.spans[i].name.clone()];
        let mut hops = 0;
        while jf.spans[i].parent != 0 && hops < 64 {
            match by_id.get(&jf.spans[i].parent) {
                Some(&pi) => {
                    parts.push(jf.spans[pi].name.clone());
                    i = pi;
                }
                None => break,
            }
            hops += 1;
        }
        parts.reverse();
        parts
    };
    let mut agg: BTreeMap<Vec<String>, (u64, f64, f64)> = BTreeMap::new();
    let mut span_totals: BTreeMap<String, f64> = BTreeMap::new();
    for (i, s) in jf.spans.iter().enumerate() {
        let e = agg.entry(path_of(i)).or_insert((0, 0.0, 0.0));
        e.0 += 1;
        e.1 += s.dur_us;
        e.2 += (s.dur_us - child_us[i]).max(0.0);
        *span_totals.entry(s.name.clone()).or_insert(0.0) += s.dur_us / 1e6;
    }
    let self_time: Vec<(String, u64, f64, f64)> = agg
        .into_iter()
        .map(|(path, (count, total, selfd))| (path.join("/"), count, total / 1e6, selfd / 1e6))
        .collect();

    Digest {
        source: "journal",
        run: jf.header.clone(),
        tallies: t,
        frontiers: frontiers.into_iter().map(|(_, v)| v).collect(),
        evolution,
        runner_ups: runners,
        dp_solves,
        prune_events,
        cert_checks,
        span_count: jf.spans.len() as u64,
        orphans,
        dropped: jf.dropped,
        stats: jf.stats,
        self_time,
        span_totals,
    }
}

/// Aggregate-only digest from a `tune --json` outcome file (requires the
/// `telemetry` section, i.e. `--metrics`).
fn digest_outcome(v: &Value) -> Result<Digest, String> {
    let telemetry = get(v, "telemetry").ok_or_else(|| {
        "outcome file has no `telemetry` section; re-run `mist-cli tune` with \
         --metrics --json, or use --journal for full provenance"
            .to_string()
    })?;
    let counters = get(telemetry, "counters").cloned().unwrap_or(Value::Null);
    let gauges = get(telemetry, "gauges").cloned().unwrap_or(Value::Null);
    let c = |k: &str| get_u64(&counters, k);
    let mut t = Tallies {
        // The evaluated-configs counter excludes proof-pruned rows;
        // adding them back restores the full enumeration so one
        // accounting identity covers both digest sources.
        enumerated: c("tuner.configs_evaluated") + c("tuner.rejections.mono_pruned"),
        mono_pruned: c("tuner.rejections.mono_pruned"),
        oom: c("tuner.rejections.oom"),
        nonfinite: c("tuner.rejections.nonfinite"),
        dominated: c("tuner.rejections.dominated"),
        outer_total: c("tuner.outer_candidates"),
        outer_out_of_budget: c("tuner.rejections.out_of_budget"),
        bound_pruned: c("tuner.rejections.bound_pruned"),
        dp_states: c("inter.dp_states"),
        spec_hits: c("specializer.cache_hits"),
        spec_misses: c("specializer.cache_misses"),
        frontier_size_max: get_f64(&gauges, "frontier.size") as u64,
        ..Tallies::default()
    };
    t.feasible = t
        .enumerated
        .saturating_sub(t.oom + t.nonfinite + t.mono_pruned);
    t.survived = t.feasible.saturating_sub(t.dominated);
    let run = serde_json::json!({
        "model": get_str(v, "model").unwrap_or("?"),
        "space": get_str(v, "space").unwrap_or("?"),
    });
    Ok(Digest {
        source: "outcome",
        run,
        tallies: t,
        frontiers: Vec::new(),
        evolution: Vec::new(),
        runner_ups: Vec::new(),
        dp_solves: Vec::new(),
        prune_events: Vec::new(),
        cert_checks: Vec::new(),
        span_count: 0,
        orphans: 0,
        dropped: 0,
        stats: None,
        self_time: Vec::new(),
        span_totals: BTreeMap::new(),
    })
}

// --- rendering -------------------------------------------------------------

fn digest_to_json(d: &Digest) -> Value {
    let t = &d.tallies;
    let accounted = t.enumerated == t.oom + t.nonfinite + t.feasible + t.mono_pruned
        && t.feasible == t.survived + t.dominated;
    let runner_ups: Vec<Value> = d
        .runner_ups
        .iter()
        .enumerate()
        .map(|(i, r)| {
            serde_json::json!({
                "rank": (i + 1) as u64,
                "grad_accum": r.grad_accum,
                "stages": r.stages,
                "selector": if r.exact { Value::Float(r.score) } else { Value::Null },
                "bound": if r.exact { Value::Null } else { Value::Float(r.score) },
                "objective": r.objective,
                "layers": r.layers.clone(),
                "incumbent": r.incumbent,
                "killing_constraint": r.constraint.clone(),
            })
        })
        .collect();
    let self_time: Vec<Value> = d
        .self_time
        .iter()
        .map(|(path, count, total, selfd)| {
            serde_json::json!({
                "path": path.clone(),
                "count": count,
                "total_s": total,
                "self_s": selfd,
            })
        })
        .collect();
    let span_totals = Value::Object(
        d.span_totals
            .iter()
            .map(|(k, v)| (k.clone(), Value::Float(*v)))
            .collect(),
    );
    let timing = match &d.stats {
        Some(s) => serde_json::json!({
            "elapsed_secs": s.elapsed_secs,
            "intra_secs": s.intra_secs,
            "inter_secs": s.inter_secs,
            "span_totals": span_totals,
            "self_time": self_time,
        }),
        None => serde_json::json!({
            "span_totals": span_totals,
            "self_time": self_time,
        }),
    };
    serde_json::json!({
        "source": d.source,
        "run": d.run.clone(),
        "coverage": serde_json::json!({
            "enumerated": t.enumerated,
            "oom": t.oom,
            "nonfinite": t.nonfinite,
            "feasible": t.feasible,
            "survived": t.survived,
            "dominated": t.dominated,
            "mono_pruned": t.mono_pruned,
            "accounted": accounted,
        }),
        "rejections": serde_json::json!({
            "oom": t.oom,
            "nonfinite": t.nonfinite,
            "dominated": t.dominated,
            "out_of_budget": t.outer_out_of_budget,
            "bound_pruned": t.bound_pruned,
            "mono_pruned": t.mono_pruned,
        }),
        "outer": serde_json::json!({
            "candidates": t.outer_total,
            "incumbents": t.outer_incumbent,
            "dominated": t.outer_dominated,
            "out_of_budget": t.outer_out_of_budget,
            "infeasible": t.outer_infeasible,
        }),
        "frontier_evolution": Value::Array(d.evolution.clone()),
        "frontiers": Value::Array(d.frontiers.clone()),
        "max_frontier_size": t.frontier_size_max,
        "runner_ups": Value::Array(runner_ups),
        "dp": serde_json::json!({
            "states": t.dp_states,
            "bound_pruned": t.bound_pruned,
            "solves": Value::Array(d.dp_solves.clone()),
        }),
        "pruning": serde_json::json!({
            "mono_pruned": t.mono_pruned,
            "floors": Value::Array(d.prune_events.clone()),
        }),
        "certificates": Value::Array(d.cert_checks.clone()),
        "milp": serde_json::json!({
            "open": t.milp_open,
            "pruned": t.milp_pruned,
            "incumbents": t.milp_incumbent,
        }),
        "specializer": serde_json::json!({
            "hits": t.spec_hits,
            "misses": t.spec_misses,
            "original_instrs": t.spec_original_sum,
            "residual_instrs": t.spec_residual_sum,
        }),
        "spans": serde_json::json!({ "total": d.span_count, "orphans": d.orphans }),
        "journal": serde_json::json!({ "dropped": d.dropped }),
        "timing": timing,
    })
}

fn pct(part: u64, whole: u64) -> f64 {
    if whole == 0 {
        0.0
    } else {
        100.0 * part as f64 / whole as f64
    }
}

fn render_text(d: &Digest) -> String {
    let t = &d.tallies;
    let mut out = String::new();
    let mut line = |s: String| {
        out.push_str(&s);
        out.push('\n');
    };
    line(format!(
        "source: {} ({} {})",
        d.source,
        get_str(&d.run, "model").unwrap_or("?"),
        get_str(&d.run, "space").unwrap_or("?"),
    ));
    line(String::new());
    line("coverage (intra-stage rows):".into());
    line(format!("  enumerated   {:>12}", t.enumerated));
    line(format!(
        "    oom        {:>12}  ({:.1}%)",
        t.oom,
        pct(t.oom, t.enumerated)
    ));
    line(format!(
        "    nonfinite  {:>12}  ({:.1}%)",
        t.nonfinite,
        pct(t.nonfinite, t.enumerated)
    ));
    line(format!(
        "    pruned     {:>12}  ({:.1}%, proof-licensed monotone skips)",
        t.mono_pruned,
        pct(t.mono_pruned, t.enumerated)
    ));
    line(format!(
        "    feasible   {:>12}  ({:.1}%)",
        t.feasible,
        pct(t.feasible, t.enumerated)
    ));
    line(format!("      survived  {:>11}", t.survived));
    line(format!("      dominated {:>11}", t.dominated));
    let accounted = t.enumerated == t.oom + t.nonfinite + t.feasible + t.mono_pruned
        && t.feasible == t.survived + t.dominated;
    line(format!(
        "  accounted: {}",
        if accounted {
            "yes (every row attributed to exactly one outcome)"
        } else {
            "NO — counts do not add up"
        }
    ));
    line(String::new());
    line(format!(
        "outer candidates: {} ({} incumbent, {} dominated, {} out-of-budget, {} infeasible)",
        t.outer_total,
        t.outer_incumbent,
        t.outer_dominated,
        t.outer_out_of_budget,
        t.outer_infeasible
    ));
    if !d.evolution.is_empty() {
        line("incumbent evolution:".into());
        for e in &d.evolution {
            line(format!(
                "  G={:<3} S={:<2} selector {}  objective {}",
                get_u64(e, "grad_accum"),
                get_u64(e, "stages"),
                fmt_s(get_f64(e, "selector")),
                fmt_s(get_f64(e, "objective")),
            ));
        }
    }
    if !d.runner_ups.is_empty() {
        line(String::new());
        line(format!("top {} runner-up plans:", d.runner_ups.len()));
        for (i, r) in d.runner_ups.iter().enumerate() {
            let layers = if r.layers.is_empty() {
                String::new()
            } else {
                format!(
                    "  layers [{}]",
                    r.layers
                        .iter()
                        .map(|l| l.to_string())
                        .collect::<Vec<_>>()
                        .join(",")
                )
            };
            line(format!(
                "  #{}: G={:<3} S={:<2} {}{}",
                i + 1,
                r.grad_accum,
                r.stages,
                r.constraint,
                layers
            ));
        }
    }
    line(String::new());
    line(format!(
        "inter-stage DP: {} states, {} bound-pruned transitions, {} solves",
        t.dp_states,
        t.bound_pruned,
        d.dp_solves.len()
    ));
    if t.milp_open + t.milp_pruned + t.milp_incumbent > 0 {
        line(format!(
            "milp nodes: {} open, {} pruned, {} incumbents",
            t.milp_open, t.milp_pruned, t.milp_incumbent
        ));
    }
    line(format!(
        "specializer: {} hits, {} misses ({:.1}% hit rate), residual {}/{} instrs on misses",
        t.spec_hits,
        t.spec_misses,
        pct(t.spec_hits, t.spec_hits + t.spec_misses),
        t.spec_residual_sum,
        t.spec_original_sum
    ));
    line(format!("max frontier size: {}", t.frontier_size_max));
    if !d.cert_checks.is_empty() {
        let ok = d
            .cert_checks
            .iter()
            .filter(|c| get(c, "ok") == Some(&Value::Bool(true)))
            .count();
        line(format!(
            "plan certificates: {}/{} checks passed",
            ok,
            d.cert_checks.len()
        ));
        for c in &d.cert_checks {
            if get(c, "ok") != Some(&Value::Bool(true)) {
                line(format!(
                    "  FAILED ({}): {}",
                    get_str(c, "phase").unwrap_or("?"),
                    serde_json::to_string(get(c, "failures").unwrap_or(&Value::Null))
                        .unwrap_or_default()
                ));
            }
        }
    }
    if d.span_count > 0 {
        line(String::new());
        line(format!(
            "spans: {} recorded, {} orphaned",
            d.span_count, d.orphans
        ));
        line("self-time (total / self, seconds):".into());
        for (path, count, total, selfd) in &d.self_time {
            let depth = path.matches('/').count();
            let name = path.rsplit('/').next().unwrap_or(path);
            line(format!(
                "  {:indent$}{name:<20} {total:>9.3} / {selfd:>8.3}  ({count}x)",
                "",
                indent = depth * 2
            ));
        }
        if let Some(s) = &d.stats {
            line(format!(
                "phase totals: intra {:.3}s (spans {:.3}s), inter {:.3}s (spans {:.3}s), elapsed {:.3}s",
                s.intra_secs,
                d.span_totals.get("intra.sweep").copied().unwrap_or(0.0),
                s.inter_secs,
                d.span_totals.get("inter.solve").copied().unwrap_or(0.0),
                s.elapsed_secs
            ));
        }
    }
    if d.dropped > 0 {
        line(format!(
            "WARNING: {} journal records dropped (ring full) — counts are partial",
            d.dropped
        ));
    }
    out
}

/// Runs `mist-cli explain` on `path`.
pub(crate) fn run_explain(path: &str, json: bool, top: usize) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let first = text.lines().find(|l| !l.trim().is_empty()).unwrap_or("");
    let digest = if first.starts_with("{\"header\"") || first.starts_with("{\"record\"") {
        digest_journal(&parse_journal(&text, path)?, top)
    } else {
        let v: Value =
            serde_json::from_str(&text).map_err(|e| format!("{path}: not valid JSON: {e}"))?;
        digest_outcome(&v)?
    };
    if json {
        println!(
            "{}",
            serde_json::to_string_pretty(&digest_to_json(&digest)).map_err(|e| e.to_string())?
        );
    } else {
        print!("{}", render_text(&digest));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(seq: u64, event: JournalEvent) -> String {
        let r = JournalRecord {
            seq,
            span: 0,
            event,
        };
        format!("{{\"record\":{}}}", r.to_jsonl())
    }

    fn sample_journal() -> String {
        let mut lines = vec![
            r#"{"header":{"version":1,"model":"gpt3-1.3b","space":"mist"}}"#.to_owned(),
            r#"{"stats":{"configs_evaluated":10,"milp_solves":1,"outer_candidates":2,"elapsed_secs":1.0,"intra_secs":0.6,"inter_secs":0.1}}"#.to_owned(),
            r#"{"span":{"id":1,"parent":0,"name":"tuner.tune","tid":0,"start_us":0.0,"dur_us":100.0}}"#.to_owned(),
            r#"{"span":{"id":2,"parent":1,"name":"tuner.outer","tid":0,"start_us":1.0,"dur_us":60.0}}"#.to_owned(),
        ];
        lines.push(record(
            0,
            JournalEvent::FrontierSummary {
                mesh_nodes: 1,
                mesh_gpus: 4,
                role: "Only".into(),
                inflight: 1,
                grad_accum: 4,
                max_layers: 8,
                enumerated: 100,
                oom: 28,
                nonfinite: 0,
                feasible: 70,
                survived: 20,
                dominated: 50,
                mono_pruned: 2,
                sizes: vec![2, 2, 3, 3, 3, 3, 2, 2],
            },
        ));
        lines.push(record(
            1,
            JournalEvent::OuterCandidate {
                grad_accum: 4,
                stages: 1,
                outcome: OuterOutcome::Incumbent,
                selector: Some(1.0),
                objective: Some(1.0),
                layers: vec![8],
                incumbent: None,
                bound: None,
            },
        ));
        lines.push(record(
            2,
            JournalEvent::Incumbent {
                grad_accum: 4,
                stages: 1,
                selector: 1.0,
                objective: 1.0,
            },
        ));
        lines.push(record(
            3,
            JournalEvent::OuterCandidate {
                grad_accum: 4,
                stages: 2,
                outcome: OuterOutcome::Dominated,
                selector: Some(1.5),
                objective: Some(1.4),
                layers: vec![4, 4],
                incumbent: Some(1.0),
                bound: None,
            },
        ));
        lines.push(r#"{"journal":{"records":4,"dropped":0}}"#.to_owned());
        lines.join("\n")
    }

    #[test]
    fn journal_digest_accounts_every_row() {
        let jf = parse_journal(&sample_journal(), "test").unwrap();
        let d = digest_journal(&jf, DEFAULT_TOP_K);
        assert_eq!(d.tallies.enumerated, 100);
        assert_eq!(
            d.tallies.enumerated,
            d.tallies.oom + d.tallies.nonfinite + d.tallies.feasible + d.tallies.mono_pruned
        );
        assert_eq!(d.tallies.feasible, d.tallies.survived + d.tallies.dominated);
        assert_eq!(d.tallies.outer_total, 2);
        assert_eq!(d.tallies.outer_incumbent, 1);
        assert_eq!(d.runner_ups.len(), 1);
        assert!(d.runner_ups[0].constraint.contains("incumbent"));
        assert_eq!(d.orphans, 0);
        assert_eq!(d.span_count, 2);
        // Self-time: outer nests under tune, so tune's self is 40us.
        let tune = d
            .self_time
            .iter()
            .find(|(p, ..)| p == "tuner.tune")
            .unwrap();
        assert!((tune.3 - 40e-6).abs() < 1e-12);
    }

    #[test]
    fn digest_json_is_valid_and_has_timing_subtree() {
        let jf = parse_journal(&sample_journal(), "test").unwrap();
        let d = digest_journal(&jf, DEFAULT_TOP_K);
        let v = digest_to_json(&d);
        assert!(get(&v, "timing").is_some());
        assert_eq!(
            get(get(&v, "coverage").unwrap(), "accounted"),
            Some(&Value::Bool(true))
        );
        // Round-trips through the serializer.
        let text = serde_json::to_string_pretty(&v).unwrap();
        let back: Value = serde_json::from_str(&text).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn orphaned_spans_are_counted() {
        let text = r#"{"header":{"model":"m","space":"s"}}
{"span":{"id":5,"parent":99,"name":"lost","tid":1,"start_us":0.0,"dur_us":1.0}}"#;
        let jf = parse_journal(text, "test").unwrap();
        let d = digest_journal(&jf, DEFAULT_TOP_K);
        assert_eq!(d.orphans, 1);
    }

    #[test]
    fn text_rendering_mentions_key_sections() {
        let jf = parse_journal(&sample_journal(), "test").unwrap();
        let d = digest_journal(&jf, DEFAULT_TOP_K);
        let text = render_text(&d);
        assert!(text.contains("coverage"));
        assert!(text.contains("accounted: yes"));
        assert!(text.contains("runner-up"));
        assert!(text.contains("incumbent evolution"));
    }
}
