//! Implementation of the `mist-cli` binary.
//!
//! Lives in the library (rather than the binary) so integration tests
//! can drive the full command path in-process; `src/bin/mist-cli.rs` is
//! a thin shim around [`run`].

use mist_telemetry::TraceBuilder;

use crate::presets::{falcon, gpt3, llama, AttentionImpl, ModelSize, ModelSpec};
use crate::{Baseline, MistSession, Platform, SearchSpace};

use mist_irlint::{LintReport, Severity};

/// The `mist-cli` help text.
pub fn usage() -> &'static str {
    "mist-cli — memory-parallelism co-optimization for LLM training

USAGE:
    mist-cli tune --model <NAME> --platform <l4|a100> --gpus <N> --batch <B>
                  [--space <mist|mist-fine|megatron|deepspeed|aceso|alpa|uniform>]
                  [--seq <LEN>] [--seed <N>] [--threads <N>] [--no-flash]
                  [--no-mono-prune] [--no-compiled-eval] [--execute]
                  [--trace <FILE>] [--metrics]
                  [--json] [--journal <FILE>]
    mist-cli explain [--json] [--top <K>] <FILE>
    mist-cli lint-ir [--model <NAME>] [--platform <l4|a100>]
                     [--space <mist|mist-fine|megatron|deepspeed|aceso|alpa|uniform>]
                     [--seq <LEN>] [--no-flash] [--json]
    mist-cli verify-plan [--model <NAME>] [--platform <l4|a100>] [--gpus <N>]
                         [--batch <B>] [--space <NAME>] [--seq <LEN>]
                         [--no-flash] [--budget-gib <GIB>]
                         [--max-grad-accum <N>] [--max-outer-candidates <N>]
                         [--threads <N>] [--json]
    mist-cli serve --listen <ADDR> [--cache <FILE>] [--threads <N>]
    mist-cli query --connect <ADDR> [--model <NAME> --gpus <N> --batch <B>]
                   [--platform <l4|a100>] [--space <NAME>] [--seq <LEN>]
                   [--budget-gib <GIB>] [--qos <interactive|exhaustive>]
                   [--no-cache] [--no-flash] [--seed <N>]
                   [--max-grad-accum <N>] [--ping] [--stats] [--shutdown]
    mist-cli models
    mist-cli spaces
    mist-cli help

MODEL NAMES:
    <family>-<size> with family in {gpt3, llama, falcon} and size in
    {1.3b, 2.6b, 6.7b, 13b, 22b, 40b}, e.g. gpt3-6.7b, llama-13b.

OPTIONS:
    --seq <LEN>    sequence length (default: 2048 on L4, 4096 on A100)
    --seed <N>     seed for the interference-calibration benchmarks
                   (default: 0xAB5EED; changes the fitted model, not the
                   search itself)
    --threads <N>  worker threads for the tuner's parallel phases
                   (default: the machine's available parallelism; results
                   are byte-identical at any value, only wall-clock
                   changes)
    --no-flash     use standard attention instead of FlashAttention
    --no-mono-prune
                   disable the proof-licensed monotone pruning of
                   provably-OOM sweep rows (results are byte-identical
                   either way; this exists to demonstrate that)
    --no-compiled-eval
                   evaluate sweeps through the chunked interpreter
                   instead of the compiled direct-threaded backend with
                   its memory-first filtered sweep (results are
                   byte-identical either way; this exists to demonstrate
                   that)
    --execute      run the tuned plan on the cluster simulator and report
                   the measured throughput
    --trace <FILE> write a Chrome Trace Event JSON (open in Perfetto or
                   chrome://tracing): the tuner's phase timeline, plus the
                   simulated per-stage/per-stream pipeline Gantt when
                   --execute is given
    --metrics      report collected telemetry counters/gauges (a text
                   table, or a `telemetry` section with --json)
    --json         emit machine-readable JSON instead of text
    --journal <FILE>
                   record the tuner's decision journal (candidate
                   rejections, Pareto frontier summaries, DP/MILP
                   pruning, specializer cache traffic) plus the span
                   timeline as JSONL, for `mist-cli explain`

EXPLAIN:
    Digests a decision journal (from tune --journal) or a tune --json
    outcome file: search-space coverage with every enumerated
    configuration attributed to exactly one outcome, a rejection-reason
    histogram, incumbent evolution, the top-k runner-up plans with the
    constraint that killed each one, and a self-time tree from span
    parentage. --top <K> keeps K runner-ups (default 5); --json emits
    the digest as JSON (all wall-clock values under the `timing` key).

LINT-IR:
    Statically verifies the fused symbolic stage programs with the
    `mist-irlint` analyzer: unit consistency, interval bounds (every cost
    root provably finite and non-negative over the search space's symbol
    domains), and dead code. Without --model it sweeps every preset.
    Exit code 1 if any error-severity diagnostic is found.

VERIFY-PLAN:
    Tunes a plan and then re-derives its certificate through the
    `mist-irlint` interval framework, independently of the tuner's
    batched sweeps: each chosen stage is re-analyzed from scratch, its
    roots are bounded with every search symbol pinned to the chosen
    configuration, the bounds must contain the reported stage point and
    prove peak memory fits the budget, and the Eq. 1 objective must be
    reproduced. Without --model it sweeps every preset.
    --max-outer-candidates caps the tuner's outer loop (a deterministic
    work bound, same knob as interactive QoS). Exit code 1 if any
    certificate check fails.

SERVE / QUERY:
    serve runs the planner as a resident daemon speaking line-delimited
    JSON over TCP (--listen host:port) or a Unix socket (--listen
    /path/to.sock). Plans are cached content-addressed: an exact repeat
    query is answered from the cache, and a query differing only in
    global batch, node count, memory budget or grad-accum cap
    warm-starts the tuner from cached per-stage Pareto frontiers —
    byte-identical results, strictly fewer configurations evaluated.
    --cache <FILE> persists the cache as JSONL across restarts. The
    daemon prints `READY <addr>` on stdout once it is accepting.

    query sends one request and prints the one-line JSON response:
    either a plan query (--model/--gpus/--batch, plus --qos interactive
    for a deterministically bounded search, --budget-gib to cap per-GPU
    memory, --no-cache to bypass the cache read *and* write,
    --max-grad-accum, --seed) or a control command (--ping, --stats,
    --shutdown). Exit code 1 if the daemon answered with ok=false."
}

fn parse_model(name: &str, seq: u64, flash: bool) -> Result<ModelSpec, String> {
    let attn = if flash {
        AttentionImpl::Flash
    } else {
        AttentionImpl::Standard
    };
    let (family, size) = name
        .split_once('-')
        .ok_or_else(|| format!("bad model name `{name}` (expected family-size)"))?;
    let size = match size.to_ascii_lowercase().as_str() {
        "1.3b" => ModelSize::B1_3,
        "2.6b" | "2.7b" => ModelSize::B2_6,
        "6.7b" | "7b" => ModelSize::B6_7,
        "13b" => ModelSize::B13,
        "22b" => ModelSize::B22,
        "40b" => ModelSize::B40,
        other => return Err(format!("unknown model size `{other}`")),
    };
    match family.to_ascii_lowercase().as_str() {
        "gpt3" | "gpt" => Ok(gpt3(size, seq, attn)),
        "llama" => Ok(llama(size, seq, attn)),
        "falcon" => Ok(falcon(size, seq, attn)),
        other => Err(format!("unknown model family `{other}`")),
    }
}

fn parse_space(name: &str) -> Result<SearchSpace, String> {
    match name.to_ascii_lowercase().as_str() {
        "mist" => Ok(SearchSpace::mist()),
        "mist-fine" => Ok(SearchSpace::mist_fine()),
        "megatron" | "megatron-lm" => Ok(Baseline::MegatronLM.space()),
        "deepspeed" => Ok(Baseline::DeepSpeed.space()),
        "aceso" => Ok(Baseline::Aceso.space()),
        "alpa" => Ok(Baseline::Alpa.space()),
        "uniform" => Ok(Baseline::UniformHeuristic.space()),
        other => Err(format!("unknown search space `{other}`")),
    }
}

struct Args {
    model: String,
    platform: Platform,
    gpus: u32,
    batch: u64,
    space: SearchSpace,
    seq: Option<u64>,
    seed: Option<u64>,
    threads: Option<usize>,
    flash: bool,
    execute: bool,
    trace: Option<String>,
    metrics: bool,
    json: bool,
    journal: Option<String>,
    mono_prune: bool,
    compiled_eval: bool,
}

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut args = Args {
        model: String::new(),
        platform: Platform::GcpL4,
        gpus: 0,
        batch: 0,
        space: SearchSpace::mist(),
        seq: None,
        seed: None,
        threads: None,
        flash: true,
        execute: false,
        trace: None,
        metrics: false,
        json: false,
        journal: None,
        mono_prune: true,
        compiled_eval: true,
    };
    let mut it = argv.iter();
    let need = |it: &mut std::slice::Iter<String>, flag: &str| -> Result<String, String> {
        it.next()
            .cloned()
            .ok_or_else(|| format!("{flag} requires a value"))
    };
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--model" => args.model = need(&mut it, "--model")?,
            "--platform" => {
                args.platform = match need(&mut it, "--platform")?.to_ascii_lowercase().as_str() {
                    "l4" | "gcp" => Platform::GcpL4,
                    "a100" | "aws" => Platform::AwsA100,
                    other => return Err(format!("unknown platform `{other}` (l4|a100)")),
                }
            }
            "--gpus" => {
                args.gpus = need(&mut it, "--gpus")?
                    .parse()
                    .map_err(|_| "--gpus expects a positive integer".to_string())?
            }
            "--batch" => {
                args.batch = need(&mut it, "--batch")?
                    .parse()
                    .map_err(|_| "--batch expects a positive integer".to_string())?
            }
            "--space" => args.space = parse_space(&need(&mut it, "--space")?)?,
            "--seq" => {
                args.seq = Some(
                    need(&mut it, "--seq")?
                        .parse()
                        .map_err(|_| "--seq expects a positive integer".to_string())?,
                )
            }
            "--seed" => {
                args.seed = Some(
                    need(&mut it, "--seed")?
                        .parse()
                        .map_err(|_| "--seed expects a non-negative integer".to_string())?,
                )
            }
            "--threads" => {
                let n: usize = need(&mut it, "--threads")?
                    .parse()
                    .map_err(|_| "--threads expects a positive integer".to_string())?;
                if n == 0 {
                    return Err("--threads must be at least 1".into());
                }
                args.threads = Some(n);
            }
            "--no-flash" => args.flash = false,
            "--no-mono-prune" => args.mono_prune = false,
            "--no-compiled-eval" => args.compiled_eval = false,
            "--execute" => args.execute = true,
            "--trace" => args.trace = Some(need(&mut it, "--trace")?),
            "--metrics" => args.metrics = true,
            "--json" => args.json = true,
            "--journal" => args.journal = Some(need(&mut it, "--journal")?),
            other => return Err(format!("unknown option `{other}`")),
        }
    }
    if args.model.is_empty() {
        return Err("--model is required".into());
    }
    if args.gpus == 0 {
        return Err("--gpus is required".into());
    }
    if args.batch == 0 {
        return Err("--batch is required".into());
    }
    if args.seq == Some(0) {
        return Err("--seq must be positive".into());
    }
    if args.gpus > 8 && !args.gpus.is_multiple_of(8) {
        return Err(format!(
            "--gpus {} is not a Table-3 cluster shape (1-8, or a multiple of 8)",
            args.gpus
        ));
    }
    Ok(args)
}

fn run_tune(args: Args) -> Result<(), String> {
    // Telemetry must be on before the session is built so the
    // calibration pass (benchmark + interference fit) is captured too,
    // and before the pool is resized so `pool.workers` is recorded.
    let collector = mist_telemetry::global();
    let telemetry_on = args.trace.is_some() || args.metrics || args.journal.is_some();
    if telemetry_on {
        collector.reset();
        collector.enable();
    }
    let journal = mist_telemetry::global_journal();
    if args.journal.is_some() {
        journal.reset();
        journal.enable();
    }
    if let Some(n) = args.threads {
        mist_pool::set_global_threads(n);
    }
    let result = run_tune_inner(&args, telemetry_on);
    if args.journal.is_some() {
        journal.disable();
    }
    if telemetry_on {
        collector.disable();
    }
    result
}

fn run_tune_inner(args: &Args, telemetry_on: bool) -> Result<(), String> {
    let collector = mist_telemetry::global();
    let seq = args.seq.unwrap_or(match args.platform {
        Platform::GcpL4 => 2048,
        Platform::AwsA100 => 4096,
    });
    let model = parse_model(&args.model, seq, args.flash)?;
    let mut builder = MistSession::builder(model.clone(), args.platform, args.gpus)
        .space(args.space.clone())
        .monotone_prune(args.mono_prune)
        .compiled_eval(args.compiled_eval);
    if let Some(seed) = args.seed {
        builder = builder.seed(seed);
    }
    let session = builder.build();
    let Some(outcome) = session.tune(args.batch) else {
        if args.json {
            println!("{{\"feasible\": false}}");
        } else {
            eprintln!(
                "no feasible plan: {} does not fit {} GPUs in the `{}` space \
                 (try a larger cluster or the full `mist` space)",
                model.name, args.gpus, args.space.name
            );
        }
        return Err("infeasible".into());
    };

    let measured = if args.execute {
        Some(session.execute(&outcome))
    } else {
        None
    };

    // Spans are harvested once, after tune *and* execute, so both the
    // tuner phase timeline and the simulator's own spans are complete;
    // the trace and the journal share the same harvest.
    let spans = if args.trace.is_some() || args.journal.is_some() {
        collector.take_spans()
    } else {
        Vec::new()
    };
    if let Some(path) = &args.trace {
        let mut trace = TraceBuilder::new();
        trace.process_name(0, "mist-tuner");
        trace.add_spans(0, &spans);
        if let Some(m) = &measured {
            m.export_chrome_trace(&mut trace, 1);
        }
        std::fs::write(path, trace.to_json())
            .map_err(|e| format!("cannot write trace to {path}: {e}"))?;
    }
    if let Some(path) = &args.journal {
        let header = serde_json::json!({
            "version": 1u64,
            "model": model.name,
            "space": args.space.name,
            "platform": match args.platform {
                Platform::GcpL4 => "l4",
                Platform::AwsA100 => "a100",
            },
            "gpus": args.gpus,
            "batch": args.batch,
            "seq": seq,
        });
        crate::explain::write_journal_file(path, header, &outcome.stats, &spans)?;
    }
    let metrics_snapshot = if telemetry_on {
        collector.snapshot()
    } else {
        outcome.telemetry.clone()
    };

    if args.json {
        let plan_json = serde_json::to_value(&outcome.plan).map_err(|e| e.to_string())?;
        let mut out = serde_json::json!({
            "feasible": true,
            "model": model.name,
            "space": args.space.name,
            "predicted_iteration_s": outcome.predicted_iteration,
            "predicted_throughput": outcome.predicted_throughput,
            "tuning_seconds": outcome.stats.elapsed_secs,
            "configs_evaluated": outcome.stats.configs_evaluated,
            "measured_iteration_s": measured.as_ref().map(|m| m.iteration_time),
            "measured_throughput": measured.as_ref().map(|m| m.throughput(args.batch)),
            "plan": plan_json,
        });
        if args.metrics {
            if let serde_json::Value::Object(fields) = &mut out {
                fields.push((
                    "telemetry".to_owned(),
                    serde_json::to_value(&metrics_snapshot).map_err(|e| e.to_string())?,
                ));
            }
        }
        println!(
            "{}",
            serde_json::to_string_pretty(&out).map_err(|e| e.to_string())?
        );
        return Ok(());
    }

    println!(
        "model:  {} (seq {seq}, {})",
        model.name,
        if args.flash {
            "FlashAttention"
        } else {
            "standard attention"
        }
    );
    println!("space:  {}", args.space.name);
    println!(
        "plan:   G={}  S={}  ({} configs evaluated in {:.2}s)",
        outcome.plan.grad_accum,
        outcome.plan.num_stages(),
        outcome.stats.configs_evaluated,
        outcome.stats.elapsed_secs
    );
    for (i, st) in outcome.plan.stages.iter().enumerate() {
        let c = &st.config;
        println!(
            "  stage {i}: {:>2} layers  dp={} tp={} b={}  ZeRO-{}  ckpt={}  \
             wo={} go={} oo={} ao={}",
            c.layers,
            st.candidate.dp,
            st.candidate.tp,
            st.candidate.micro_batch,
            c.zero,
            c.ckpt,
            c.wo,
            c.go,
            c.oo,
            c.ao
        );
    }
    println!(
        "predicted: {:.3} s/iteration  ({:.2} samples/s)",
        outcome.predicted_iteration, outcome.predicted_throughput
    );
    if let Some(m) = &measured {
        println!(
            "measured:  {:.3} s/iteration  ({:.2} samples/s, {:.0}% bubbles, peak {:.1} GiB)",
            m.iteration_time,
            m.throughput(args.batch),
            m.bubble_fraction() * 100.0,
            m.stage_peak_mem.iter().cloned().fold(0.0, f64::max) / crate::GIB
        );
    }
    if args.metrics {
        println!("telemetry:");
        for line in metrics_snapshot.text_table().lines() {
            println!("  {line}");
        }
    }
    if let Some(path) = &args.trace {
        println!("trace:  {path} (open in https://ui.perfetto.dev)");
    }
    if let Some(path) = &args.journal {
        println!("journal: {path} (digest with `mist-cli explain {path}`)");
    }
    Ok(())
}

struct ExplainArgs {
    file: String,
    json: bool,
    top: usize,
}

fn parse_explain_args(argv: &[String]) -> Result<ExplainArgs, String> {
    let mut args = ExplainArgs {
        file: String::new(),
        json: false,
        top: crate::explain::DEFAULT_TOP_K,
    };
    let mut it = argv.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--json" => args.json = true,
            "--top" => {
                let k: usize = it
                    .next()
                    .ok_or_else(|| "--top requires a value".to_string())?
                    .parse()
                    .map_err(|_| "--top expects a positive integer".to_string())?;
                if k == 0 {
                    return Err("--top must be at least 1".into());
                }
                args.top = k;
            }
            other if other.starts_with("--") => return Err(format!("unknown option `{other}`")),
            path => {
                if !args.file.is_empty() {
                    return Err("explain takes exactly one file".into());
                }
                args.file = path.to_owned();
            }
        }
    }
    if args.file.is_empty() {
        return Err("explain requires a journal or outcome file".into());
    }
    Ok(args)
}

struct LintArgs {
    model: Option<String>,
    platform: Platform,
    space: SearchSpace,
    seq: Option<u64>,
    flash: bool,
    json: bool,
}

fn parse_lint_args(argv: &[String]) -> Result<LintArgs, String> {
    let mut args = LintArgs {
        model: None,
        platform: Platform::GcpL4,
        space: SearchSpace::mist(),
        seq: None,
        flash: true,
        json: false,
    };
    let mut it = argv.iter();
    let need = |it: &mut std::slice::Iter<String>, flag: &str| -> Result<String, String> {
        it.next()
            .cloned()
            .ok_or_else(|| format!("{flag} requires a value"))
    };
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--model" => args.model = Some(need(&mut it, "--model")?),
            "--platform" => {
                args.platform = match need(&mut it, "--platform")?.to_ascii_lowercase().as_str() {
                    "l4" | "gcp" => Platform::GcpL4,
                    "a100" | "aws" => Platform::AwsA100,
                    other => return Err(format!("unknown platform `{other}` (l4|a100)")),
                }
            }
            "--space" => args.space = parse_space(&need(&mut it, "--space")?)?,
            "--seq" => {
                let seq: u64 = need(&mut it, "--seq")?
                    .parse()
                    .map_err(|_| "--seq expects a positive integer".to_string())?;
                if seq == 0 {
                    return Err("--seq must be positive".into());
                }
                args.seq = Some(seq);
            }
            "--no-flash" => args.flash = false,
            "--json" => args.json = true,
            other => return Err(format!("unknown option `{other}`")),
        }
    }
    Ok(args)
}

fn lint_report_json(report: &LintReport) -> serde_json::Value {
    let diagnostics: Vec<serde_json::Value> = report
        .diagnostics
        .iter()
        .map(|d| {
            serde_json::json!({
                "severity": d.severity.to_string(),
                "analysis": d.analysis.to_string(),
                "code": d.code,
                "slot": d.slot,
                "root": d.root,
                "message": d.message,
            })
        })
        .collect();
    serde_json::json!({
        "program": report.program,
        "errors": report.error_count(),
        "warnings": report.warning_count(),
        "info": report.info_count(),
        "diagnostics": diagnostics,
    })
}

/// Runs `lint-ir`; `Ok(true)` means no error-severity diagnostics.
fn run_lint_ir(args: LintArgs) -> Result<bool, String> {
    let seq = args.seq.unwrap_or(match args.platform {
        Platform::GcpL4 => 2048,
        Platform::AwsA100 => 4096,
    });
    let models: Vec<ModelSpec> = match &args.model {
        Some(name) => vec![parse_model(name, seq, args.flash)?],
        None => {
            let mut all = Vec::new();
            for family in ["gpt3", "llama", "falcon"] {
                for size in ["1.3b", "2.6b", "6.7b", "13b", "22b", "40b"] {
                    all.push(parse_model(&format!("{family}-{size}"), seq, args.flash)?);
                }
            }
            all
        }
    };

    let lints: Vec<crate::ModelLint> = models
        .iter()
        .map(|m| crate::lint_model(m, args.platform, &args.space))
        .collect();
    let (errors, warnings, info) = lints.iter().fold((0, 0, 0), |(e, w, i), l| {
        (
            e + l.error_count(),
            w + l.warning_count(),
            i + l.info_count(),
        )
    });

    if args.json {
        let models_json: Vec<serde_json::Value> = lints
            .iter()
            .map(|l| {
                serde_json::json!({
                    "model": l.model,
                    "errors": l.error_count(),
                    "warnings": l.warning_count(),
                    "info": l.info_count(),
                    "programs": l.reports.iter().map(lint_report_json)
                        .collect::<Vec<_>>(),
                    "avg_specialized_instrs": l.avg_specialized_instrs(),
                    "specialized": l.specialized.iter().map(|s| {
                        serde_json::json!({
                            "instructions": s.instructions,
                            "original_instructions": s.original_instructions,
                            "report": lint_report_json(&s.report),
                        })
                    }).collect::<Vec<_>>(),
                })
            })
            .collect();
        let out = serde_json::json!({
            "schema_version": 2u64,
            "space": args.space.name,
            "errors": errors,
            "warnings": warnings,
            "info": info,
            "models": models_json,
        });
        println!(
            "{}",
            serde_json::to_string_pretty(&out).map_err(|e| e.to_string())?
        );
        return Ok(errors == 0);
    }

    println!("space:  {}  (seq {seq})", args.space.name);
    for lint in &lints {
        println!(
            "{}: {} programs ({} specialized, avg {:.1} instrs), {} error(s), {} warning(s), {} info",
            lint.model,
            lint.reports.len(),
            lint.specialized.len(),
            lint.avg_specialized_instrs(),
            lint.error_count(),
            lint.warning_count(),
            lint.info_count()
        );
        // Severity-sorted within each report already; errors and warnings
        // are worth a line each, info stays in the counts.
        for report in &lint.reports {
            for d in report
                .diagnostics
                .iter()
                .filter(|d| d.severity != Severity::Info)
            {
                println!("  {}: {d}", report.program);
            }
        }
        for s in &lint.specialized {
            for d in s
                .report
                .diagnostics
                .iter()
                .filter(|d| d.severity != Severity::Info)
            {
                println!("  {}: {d}", s.report.program);
            }
        }
    }
    println!(
        "lint-ir: {} model(s), {} programs (+{} specialized residuals), {errors} error(s), {warnings} warning(s), {info} info",
        lints.len(),
        lints.iter().map(|l| l.reports.len()).sum::<usize>(),
        lints.iter().map(|l| l.specialized.len()).sum::<usize>(),
    );
    Ok(errors == 0)
}

struct VerifyArgs {
    model: Option<String>,
    platform: Platform,
    gpus: u32,
    batch: u64,
    space: SearchSpace,
    seq: Option<u64>,
    flash: bool,
    budget_gib: Option<f64>,
    max_grad_accum: u32,
    max_outer: Option<u32>,
    threads: Option<usize>,
    json: bool,
}

fn parse_verify_args(argv: &[String]) -> Result<VerifyArgs, String> {
    let mut args = VerifyArgs {
        model: None,
        platform: Platform::GcpL4,
        gpus: 4,
        batch: 8,
        space: SearchSpace::mist(),
        seq: None,
        flash: true,
        budget_gib: None,
        max_grad_accum: 8,
        max_outer: None,
        threads: None,
        json: false,
    };
    let mut it = argv.iter();
    let need = |it: &mut std::slice::Iter<String>, flag: &str| -> Result<String, String> {
        it.next()
            .cloned()
            .ok_or_else(|| format!("{flag} requires a value"))
    };
    let pos_int = |s: String, flag: &str| -> Result<u64, String> {
        match s.parse() {
            Ok(n) if n > 0 => Ok(n),
            _ => Err(format!("{flag} expects a positive integer")),
        }
    };
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--model" => args.model = Some(need(&mut it, "--model")?),
            "--platform" => {
                args.platform = match need(&mut it, "--platform")?.to_ascii_lowercase().as_str() {
                    "l4" | "gcp" => Platform::GcpL4,
                    "a100" | "aws" => Platform::AwsA100,
                    other => return Err(format!("unknown platform `{other}` (l4|a100)")),
                }
            }
            "--gpus" => args.gpus = pos_int(need(&mut it, "--gpus")?, "--gpus")? as u32,
            "--batch" => args.batch = pos_int(need(&mut it, "--batch")?, "--batch")?,
            "--space" => args.space = parse_space(&need(&mut it, "--space")?)?,
            "--seq" => args.seq = Some(pos_int(need(&mut it, "--seq")?, "--seq")?),
            "--no-flash" => args.flash = false,
            "--budget-gib" => {
                let gib: f64 = need(&mut it, "--budget-gib")?
                    .parse()
                    .map_err(|_| "--budget-gib expects a number".to_string())?;
                if gib <= 0.0 {
                    return Err("--budget-gib must be positive".into());
                }
                args.budget_gib = Some(gib);
            }
            "--max-grad-accum" => {
                args.max_grad_accum =
                    pos_int(need(&mut it, "--max-grad-accum")?, "--max-grad-accum")? as u32
            }
            "--max-outer-candidates" => {
                args.max_outer = Some(pos_int(
                    need(&mut it, "--max-outer-candidates")?,
                    "--max-outer-candidates",
                )? as u32)
            }
            "--threads" => {
                args.threads = Some(pos_int(need(&mut it, "--threads")?, "--threads")? as usize)
            }
            "--json" => args.json = true,
            other => return Err(format!("unknown option `{other}`")),
        }
    }
    if args.gpus > 8 && !args.gpus.is_multiple_of(8) {
        return Err(format!(
            "--gpus {} is not a Table-3 cluster shape (1-8, or a multiple of 8)",
            args.gpus
        ));
    }
    Ok(args)
}

/// Runs `verify-plan`; `Ok(true)` means every preset's plan certified.
fn run_verify_plan(args: VerifyArgs) -> Result<bool, String> {
    use mist_hardware::{ClusterSpec, OpCostDb, GIB};

    if let Some(n) = args.threads {
        mist_pool::set_global_threads(n);
    }
    let seq = args.seq.unwrap_or(match args.platform {
        Platform::GcpL4 => 2048,
        Platform::AwsA100 => 4096,
    });
    let models: Vec<ModelSpec> = match &args.model {
        Some(name) => vec![parse_model(name, seq, args.flash)?],
        None => {
            let mut all = Vec::new();
            for family in ["gpt3", "llama", "falcon"] {
                for size in ["1.3b", "2.6b", "6.7b", "13b", "22b", "40b"] {
                    all.push(parse_model(&format!("{family}-{size}"), seq, args.flash)?);
                }
            }
            all
        }
    };
    let cluster = ClusterSpec::for_gpu_count(args.platform, args.gpus);
    let budget = match args.budget_gib {
        Some(gib) => gib * GIB,
        None => cluster.gpu.memory_bytes,
    };
    // One calibration for the whole sweep — identical to what a
    // `MistSession` with default seed would fit for this platform.
    let interference = {
        let prior = match args.platform {
            Platform::GcpL4 => mist_interference::InterferenceModel::pcie_defaults(),
            Platform::AwsA100 => mist_interference::InterferenceModel::nvlink_defaults(),
        };
        let samples = mist_sim::benchmark_interference(args.platform, 400, 0xAB5EED);
        mist_interference::fit(&prior, &samples, 3000, 0xAB5EED ^ 0x5EED).0
    };
    let db = OpCostDb::new(cluster.gpu.clone());

    let mut failed = 0u32;
    let mut models_json = Vec::new();
    for model in &models {
        let mut tuner = mist_tuner::Tuner::new(model, &cluster, &db, &args.space, &interference)
            .with_max_grad_accum(args.max_grad_accum)
            .with_budget(budget);
        if let Some(cap) = args.max_outer {
            tuner = tuner.with_max_outer_candidates(cap);
        }
        let Some(outcome) = tuner.tune(args.batch) else {
            failed += 1;
            if args.json {
                models_json.push(serde_json::json!({
                    "model": model.name,
                    "feasible": false,
                    "certified": false,
                    "failures": ["no feasible plan to certify"],
                }));
            } else {
                println!("{}: FAILED — no feasible plan to certify", model.name);
            }
            continue;
        };
        let report = mist_tuner::certify_plan(
            model,
            &cluster,
            &db,
            &interference,
            &outcome.plan,
            &outcome.stage_points,
            outcome.predicted_iteration,
            budget,
            args.space.overlap_aware,
            "verify",
        );
        let embedded_ok = report.certificate == outcome.certificate;
        let ok = report.ok() && embedded_ok;
        if !ok {
            failed += 1;
        }
        let mut failures = report.failures.clone();
        if !embedded_ok {
            failures.push("embedded certificate disagrees with re-derivation".into());
        }
        if args.json {
            models_json.push(serde_json::json!({
                "model": model.name,
                "feasible": true,
                "certified": ok,
                "stages": outcome.plan.num_stages(),
                "grad_accum": outcome.plan.grad_accum,
                "objective_s": report.certificate.objective,
                "peak_mem_hi": report
                    .certificate
                    .stages
                    .iter()
                    .map(|s| s.mem_fwd.hi.max(s.mem_bwd.hi))
                    .fold(0.0, f64::max),
                "failures": failures,
            }));
        } else if ok {
            let peak = report
                .certificate
                .stages
                .iter()
                .map(|s| s.mem_fwd.hi.max(s.mem_bwd.hi))
                .fold(0.0, f64::max);
            println!(
                "{}: certified (S={} G={}, {} roots checked, peak mem {:.1}/{:.1} GiB)",
                model.name,
                outcome.plan.num_stages(),
                outcome.plan.grad_accum,
                report
                    .certificate
                    .stages
                    .iter()
                    .map(|s| s.roots_checked)
                    .sum::<u32>(),
                peak / GIB,
                budget / GIB,
            );
        } else {
            println!("{}: FAILED", model.name);
            for f in &failures {
                println!("  {f}");
            }
        }
    }

    if args.json {
        let out = serde_json::json!({
            "schema_version": 1u64,
            "space": args.space.name,
            "gpus": args.gpus,
            "batch": args.batch,
            "budget_bytes": budget,
            "failed": failed,
            "models": models_json,
        });
        println!(
            "{}",
            serde_json::to_string_pretty(&out).map_err(|e| e.to_string())?
        );
    } else {
        println!("verify-plan: {} model(s), {} failed", models.len(), failed);
    }
    Ok(failed == 0)
}

/// Runs the CLI on already-split arguments (excluding the program name)
/// and returns the process exit code.
struct ServeArgs {
    listen: String,
    cache: Option<String>,
    threads: Option<usize>,
}

fn parse_serve_args(argv: &[String]) -> Result<ServeArgs, String> {
    let mut args = ServeArgs {
        listen: String::new(),
        cache: None,
        threads: None,
    };
    let mut it = argv.iter();
    let need = |it: &mut std::slice::Iter<String>, flag: &str| -> Result<String, String> {
        it.next()
            .cloned()
            .ok_or_else(|| format!("{flag} requires a value"))
    };
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--listen" => args.listen = need(&mut it, "--listen")?,
            "--cache" => args.cache = Some(need(&mut it, "--cache")?),
            "--threads" => {
                let n: usize = need(&mut it, "--threads")?
                    .parse()
                    .map_err(|_| "--threads expects a positive integer".to_string())?;
                if n == 0 {
                    return Err("--threads must be at least 1".into());
                }
                args.threads = Some(n);
            }
            other => return Err(format!("unknown option `{other}`")),
        }
    }
    if args.listen.is_empty() {
        return Err("serve requires --listen".into());
    }
    Ok(args)
}

fn run_serve(args: &ServeArgs) -> Result<(), String> {
    if let Some(n) = args.threads {
        mist_pool::set_global_threads(n);
    }
    let cache = match &args.cache {
        Some(path) => mist_service::PlanCache::open(path)
            .map_err(|e| format!("cannot open cache {path}: {e}"))?,
        None => mist_service::PlanCache::in_memory(),
    };
    let server = mist_service::Server::bind(&args.listen, mist_service::PlannerService::new(cache))
        .map_err(|e| format!("cannot bind {}: {e}", args.listen))?;
    // Scripts wait for this line before sending their first query.
    println!("READY {}", server.local_addr());
    use std::io::Write as _;
    std::io::stdout().flush().ok();
    server.run().map_err(|e| format!("serve failed: {e}"))
}

struct QueryArgs {
    connect: String,
    line: String,
}

fn parse_query_args(argv: &[String]) -> Result<QueryArgs, String> {
    let mut connect = String::new();
    let mut control: Option<&str> = None;
    let mut req = mist_service::PlanRequest::default();
    let mut has_plan_field = false;
    let mut it = argv.iter();
    let need = |it: &mut std::slice::Iter<String>, flag: &str| -> Result<String, String> {
        it.next()
            .cloned()
            .ok_or_else(|| format!("{flag} requires a value"))
    };
    let int = |s: String, flag: &str| -> Result<u64, String> {
        s.parse().map_err(|_| format!("{flag} expects an integer"))
    };
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--connect" => connect = need(&mut it, "--connect")?,
            "--ping" => control = Some("ping"),
            "--stats" => control = Some("stats"),
            "--shutdown" => control = Some("shutdown"),
            "--model" => {
                req.model = need(&mut it, "--model")?;
                has_plan_field = true;
            }
            "--platform" => {
                req.platform = need(&mut it, "--platform")?;
                has_plan_field = true;
            }
            "--gpus" => {
                req.gpus = int(need(&mut it, "--gpus")?, "--gpus")? as u32;
                has_plan_field = true;
            }
            "--batch" => {
                req.batch = int(need(&mut it, "--batch")?, "--batch")?;
                has_plan_field = true;
            }
            "--space" => {
                req.space = need(&mut it, "--space")?;
                has_plan_field = true;
            }
            "--seq" => {
                req.seq = Some(int(need(&mut it, "--seq")?, "--seq")?);
                has_plan_field = true;
            }
            "--budget-gib" => {
                let gib: f64 = need(&mut it, "--budget-gib")?
                    .parse()
                    .map_err(|_| "--budget-gib expects a number".to_string())?;
                if gib <= 0.0 {
                    return Err("--budget-gib must be positive".into());
                }
                req.budget_gib = Some(gib);
                has_plan_field = true;
            }
            "--qos" => {
                req.qos = mist_service::Qos::parse(&need(&mut it, "--qos")?)?;
                has_plan_field = true;
            }
            "--no-cache" => {
                req.no_cache = true;
                has_plan_field = true;
            }
            "--no-flash" => {
                req.flash = false;
                has_plan_field = true;
            }
            "--seed" => {
                let raw = need(&mut it, "--seed")?;
                let parsed = raw
                    .strip_prefix("0x")
                    .map(|hex| u64::from_str_radix(hex, 16))
                    .unwrap_or_else(|| raw.parse());
                req.seed = parsed.map_err(|_| "--seed expects an integer".to_string())?;
                has_plan_field = true;
            }
            "--max-grad-accum" => {
                let cap = int(need(&mut it, "--max-grad-accum")?, "--max-grad-accum")? as u32;
                if cap == 0 {
                    return Err("--max-grad-accum must be at least 1".into());
                }
                req.max_grad_accum = cap;
                has_plan_field = true;
            }
            other => return Err(format!("unknown option `{other}`")),
        }
    }
    if connect.is_empty() {
        return Err("query requires --connect".into());
    }
    let line = match control {
        Some(cmd) => {
            if has_plan_field {
                return Err(format!("--{cmd} cannot be combined with plan-query flags"));
            }
            format!("{{\"cmd\": \"{cmd}\"}}")
        }
        None => {
            if req.model.is_empty() || req.gpus == 0 || req.batch == 0 {
                return Err("a plan query requires --model, --gpus and --batch".into());
            }
            serde_json::to_string(&req.to_value()).map_err(|e| e.to_string())?
        }
    };
    Ok(QueryArgs { connect, line })
}

fn run_query(args: &QueryArgs) -> Result<bool, String> {
    let response = mist_service::request(&args.connect, &args.line)
        .map_err(|e| format!("query to {} failed: {e}", args.connect))?;
    println!("{response}");
    let ok = matches!(
        serde_json::from_str::<serde::Value>(&response),
        Ok(serde::Value::Object(ref fields))
            if serde::get_field(fields, "ok").ok() == Some(&serde::Value::Bool(true))
    );
    Ok(ok)
}

pub fn run(argv: &[String]) -> u8 {
    match argv.first().map(String::as_str) {
        Some("tune") => match parse_args(&argv[1..]).and_then(run_tune) {
            Ok(()) => 0,
            Err(e) => {
                if e != "infeasible" {
                    eprintln!("error: {e}\n\n{}", usage());
                }
                2
            }
        },
        Some("explain") => match parse_explain_args(&argv[1..])
            .and_then(|a| crate::explain::run_explain(&a.file, a.json, a.top))
        {
            Ok(()) => 0,
            Err(e) => {
                eprintln!("error: {e}\n\n{}", usage());
                2
            }
        },
        Some("lint-ir") => match parse_lint_args(&argv[1..]).and_then(run_lint_ir) {
            Ok(true) => 0,
            Ok(false) => 1,
            Err(e) => {
                eprintln!("error: {e}\n\n{}", usage());
                2
            }
        },
        Some("verify-plan") => match parse_verify_args(&argv[1..]).and_then(run_verify_plan) {
            Ok(true) => 0,
            Ok(false) => 1,
            Err(e) => {
                eprintln!("error: {e}\n\n{}", usage());
                2
            }
        },
        Some("serve") => match parse_serve_args(&argv[1..]).and_then(|a| run_serve(&a)) {
            Ok(()) => 0,
            Err(e) => {
                eprintln!("error: {e}\n\n{}", usage());
                2
            }
        },
        Some("query") => match parse_query_args(&argv[1..]).and_then(|a| run_query(&a)) {
            Ok(true) => 0,
            Ok(false) => 1,
            Err(e) => {
                eprintln!("error: {e}\n\n{}", usage());
                2
            }
        },
        Some("models") => {
            for family in ["gpt3", "llama", "falcon"] {
                for size in ["1.3b", "2.6b", "6.7b", "13b", "22b", "40b"] {
                    println!("{family}-{size}");
                }
            }
            0
        }
        Some("spaces") => {
            for s in [
                "mist",
                "mist-fine",
                "megatron",
                "deepspeed",
                "aceso",
                "alpa",
                "uniform",
            ] {
                println!("{s}");
            }
            0
        }
        Some("help") | None => {
            println!("{}", usage());
            0
        }
        Some(other) => {
            eprintln!("unknown command `{other}`\n\n{}", usage());
            2
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sv(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parse_args_accepts_new_flags() {
        let a = parse_args(&sv(&[
            "--model",
            "gpt3-1.3b",
            "--platform",
            "l4",
            "--gpus",
            "2",
            "--batch",
            "8",
            "--seed",
            "7",
            "--trace",
            "/tmp/t.json",
            "--metrics",
        ]))
        .unwrap();
        assert_eq!(a.seed, Some(7));
        assert_eq!(a.trace.as_deref(), Some("/tmp/t.json"));
        assert!(a.metrics);
    }

    #[test]
    fn parse_args_accepts_threads() {
        let a = parse_args(&sv(&[
            "--model",
            "gpt3-1.3b",
            "--gpus",
            "2",
            "--batch",
            "8",
            "--threads",
            "4",
        ]))
        .unwrap();
        assert_eq!(a.threads, Some(4));
        assert!(parse_args(&sv(&[
            "--model",
            "gpt3-1.3b",
            "--gpus",
            "2",
            "--batch",
            "8",
            "--threads",
            "0",
        ]))
        .is_err());
    }

    #[test]
    fn parse_args_rejects_missing_values() {
        for flags in [
            vec![
                "--model",
                "gpt3-1.3b",
                "--gpus",
                "2",
                "--batch",
                "8",
                "--seed",
            ],
            vec![
                "--model",
                "gpt3-1.3b",
                "--gpus",
                "2",
                "--batch",
                "8",
                "--trace",
            ],
        ] {
            assert!(parse_args(&sv(&flags)).is_err());
        }
    }

    #[test]
    fn usage_documents_every_flag() {
        for flag in [
            "--seq",
            "--seed",
            "--threads",
            "--no-flash",
            "--execute",
            "--trace",
            "--metrics",
            "--json",
            "--journal",
            "--top",
            "--listen",
            "--cache",
            "--connect",
            "--qos",
            "--budget-gib",
            "--no-cache",
            "--max-grad-accum",
            "--ping",
            "--stats",
            "--shutdown",
            "--no-mono-prune",
            "--max-outer-candidates",
        ] {
            assert!(usage().contains(flag), "usage() must document {flag}");
        }
        assert!(usage().contains("explain"), "usage() must document explain");
        assert!(usage().contains("serve"), "usage() must document serve");
        assert!(usage().contains("query"), "usage() must document query");
        assert!(
            usage().contains("verify-plan"),
            "usage() must document verify-plan"
        );
    }

    #[test]
    fn parse_verify_args_defaults_and_flags() {
        let a = parse_verify_args(&sv(&[])).unwrap();
        assert_eq!(a.gpus, 4);
        assert_eq!(a.batch, 8);
        assert!(a.model.is_none());
        let a = parse_verify_args(&sv(&[
            "--model",
            "llama-13b",
            "--gpus",
            "8",
            "--batch",
            "16",
            "--budget-gib",
            "20",
            "--max-outer-candidates",
            "4",
            "--json",
        ]))
        .unwrap();
        assert_eq!(a.model.as_deref(), Some("llama-13b"));
        assert_eq!(a.gpus, 8);
        assert_eq!(a.max_outer, Some(4));
        assert!(a.json);
        assert!(parse_verify_args(&sv(&["--budget-gib", "0"])).is_err());
        assert!(parse_verify_args(&sv(&["--bogus"])).is_err());
    }

    #[test]
    fn parse_args_accepts_no_mono_prune() {
        let a = parse_args(&sv(&[
            "--model",
            "gpt3-1.3b",
            "--gpus",
            "2",
            "--batch",
            "8",
            "--no-mono-prune",
        ]))
        .unwrap();
        assert!(!a.mono_prune);
        assert!(a.compiled_eval, "compiled backend defaults on");
    }

    #[test]
    fn parse_args_accepts_no_compiled_eval() {
        let a = parse_args(&sv(&[
            "--model",
            "gpt3-1.3b",
            "--gpus",
            "2",
            "--batch",
            "8",
            "--no-compiled-eval",
        ]))
        .unwrap();
        assert!(!a.compiled_eval);
        assert!(a.mono_prune, "pruning stays on by default");
    }

    #[test]
    fn parse_serve_args_requires_listen() {
        assert!(parse_serve_args(&sv(&[])).is_err());
        assert!(parse_serve_args(&sv(&["--listen"])).is_err());
        assert!(parse_serve_args(&sv(&["--bogus"])).is_err());
        let a = parse_serve_args(&sv(&[
            "--listen",
            "127.0.0.1:0",
            "--cache",
            "/tmp/plans.jsonl",
            "--threads",
            "2",
        ]))
        .unwrap();
        assert_eq!(a.listen, "127.0.0.1:0");
        assert_eq!(a.cache.as_deref(), Some("/tmp/plans.jsonl"));
        assert_eq!(a.threads, Some(2));
    }

    #[test]
    fn parse_query_args_builds_wire_lines() {
        assert!(parse_query_args(&sv(&[])).is_err(), "--connect is required");
        assert!(
            parse_query_args(&sv(&["--connect", "x:1"])).is_err(),
            "plan queries need model/gpus/batch"
        );
        assert!(
            parse_query_args(&sv(&["--connect", "x:1", "--ping", "--model", "gpt3-1.3b"])).is_err(),
            "control commands exclude plan flags"
        );

        let ping = parse_query_args(&sv(&["--connect", "x:1", "--ping"])).unwrap();
        assert_eq!(ping.line, "{\"cmd\": \"ping\"}");

        let plan = parse_query_args(&sv(&[
            "--connect",
            "/tmp/mist.sock",
            "--model",
            "gpt3-6.7b",
            "--gpus",
            "8",
            "--batch",
            "16",
            "--qos",
            "interactive",
            "--budget-gib",
            "20.5",
            "--no-cache",
            "--seed",
            "0xAB5EED",
        ]))
        .unwrap();
        // The line must parse back into the same request server-side.
        let parsed = mist_service::Request::parse(&plan.line).unwrap();
        let mist_service::Request::Plan(req) = parsed else {
            panic!("expected a plan request")
        };
        assert_eq!(req.model, "gpt3-6.7b");
        assert_eq!(req.gpus, 8);
        assert_eq!(req.batch, 16);
        assert_eq!(req.qos, mist_service::Qos::Interactive);
        assert_eq!(req.budget_gib, Some(20.5));
        assert!(req.no_cache);
        assert_eq!(req.seed, 0xAB5EED);
    }

    #[test]
    fn parse_args_accepts_journal() {
        let a = parse_args(&sv(&[
            "--model",
            "gpt3-1.3b",
            "--gpus",
            "2",
            "--batch",
            "8",
            "--journal",
            "/tmp/j.jsonl",
        ]))
        .unwrap();
        assert_eq!(a.journal.as_deref(), Some("/tmp/j.jsonl"));
        assert!(parse_args(&sv(&[
            "--model",
            "gpt3-1.3b",
            "--gpus",
            "2",
            "--batch",
            "8",
            "--journal",
        ]))
        .is_err());
    }

    #[test]
    fn parse_explain_args_works() {
        let a = parse_explain_args(&sv(&["--json", "--top", "3", "j.jsonl"])).unwrap();
        assert!(a.json);
        assert_eq!(a.top, 3);
        assert_eq!(a.file, "j.jsonl");
        assert!(parse_explain_args(&sv(&[])).is_err());
        assert!(parse_explain_args(&sv(&["a", "b"])).is_err());
        assert!(parse_explain_args(&sv(&["--top", "0", "j"])).is_err());
        assert!(parse_explain_args(&sv(&["--bogus", "j"])).is_err());
    }
}
