//! Prediction-accuracy reporting (paper §6.6).

use serde::{Deserialize, Serialize};

/// One predicted-vs-measured data point.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AccuracySample {
    /// Global batch size of the tuned plan.
    pub global_batch: u64,
    /// Analyzer-predicted iteration time (seconds).
    pub predicted_time: f64,
    /// Simulator-measured iteration time (seconds).
    pub measured_time: f64,
    /// Analyzer-predicted peak memory (bytes, max over stages).
    pub predicted_mem: f64,
    /// Simulator-measured peak memory (bytes, max over stages).
    pub measured_mem: f64,
}

impl AccuracySample {
    /// Relative runtime error.
    pub fn time_error(&self) -> f64 {
        (self.predicted_time - self.measured_time).abs() / self.measured_time
    }

    /// Relative memory error.
    pub fn mem_error(&self) -> f64 {
        (self.predicted_mem - self.measured_mem).abs() / self.measured_mem
    }
}

/// Aggregated prediction-accuracy results.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AccuracyReport {
    /// Individual samples.
    pub samples: Vec<AccuracySample>,
    /// Mean relative runtime error.
    pub mean_time_error: f64,
    /// Mean relative memory error.
    pub mean_mem_error: f64,
}

impl AccuracyReport {
    /// Aggregates samples into a report (empty input gives zero errors).
    pub fn from_samples(samples: Vec<AccuracySample>) -> Self {
        let n = samples.len().max(1) as f64;
        let mean_time_error = samples.iter().map(|s| s.time_error()).sum::<f64>() / n;
        let mean_mem_error = samples.iter().map(|s| s.mem_error()).sum::<f64>() / n;
        AccuracyReport {
            samples,
            mean_time_error,
            mean_mem_error,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_aggregate_correctly() {
        let samples = vec![
            AccuracySample {
                global_batch: 8,
                predicted_time: 1.0,
                measured_time: 1.25,
                predicted_mem: 10.0,
                measured_mem: 10.0,
            },
            AccuracySample {
                global_batch: 16,
                predicted_time: 2.0,
                measured_time: 2.0,
                predicted_mem: 9.0,
                measured_mem: 10.0,
            },
        ];
        let r = AccuracyReport::from_samples(samples);
        assert!((r.mean_time_error - 0.1).abs() < 1e-12);
        assert!((r.mean_mem_error - 0.05).abs() < 1e-12);
    }

    #[test]
    fn empty_report_is_zero() {
        let r = AccuracyReport::from_samples(vec![]);
        assert_eq!(r.mean_time_error, 0.0);
        assert_eq!(r.mean_mem_error, 0.0);
    }
}
