//! Dense two-phase primal simplex.
//!
//! Straightforward tableau implementation: bounded variables are shifted /
//! split into non-negative ones, inequalities get slack variables, and a
//! phase-1 artificial objective finds an initial basic feasible solution.
//! Dantzig pricing with a Bland's-rule fallback guards against cycling.
//! Dense is fine: Mist's inter-stage MILPs have tens of rows and a few
//! thousand columns.

use crate::lp::{ConstraintOp, Lp, LpOutcome};

const EPS: f64 = 1e-9;
/// After this many Dantzig pivots, switch to Bland's rule.
const BLAND_SWITCH: usize = 10_000;
/// Absolute pivot cap (defensive; never reached in practice).
const MAX_PIVOTS: usize = 200_000;

/// How an original variable maps into tableau columns.
#[derive(Debug, Clone, Copy)]
enum VarMap {
    /// `x = lo + col`.
    Shifted { col: usize, lo: f64 },
    /// `x = hi − col`.
    Mirrored { col: usize, hi: f64 },
    /// `x = pos − neg` (free variable).
    Split { pos: usize, neg: usize },
}

/// Solves a linear program.
///
/// Returns [`LpOutcome::Optimal`] with the minimizing point,
/// [`LpOutcome::Infeasible`], or [`LpOutcome::Unbounded`].
pub fn solve_lp(lp: &Lp) -> LpOutcome {
    mist_telemetry::counter_add("milp.lp_solves", 1);
    // --- 1. Map variables to non-negative tableau columns. -----------------
    let mut maps: Vec<VarMap> = Vec::with_capacity(lp.num_vars);
    let mut ncols = 0usize;
    let mut extra_upper: Vec<(usize, f64)> = Vec::new(); // col ≤ bound rows
    for (i, &(lo, hi)) in lp.bounds.iter().enumerate() {
        if lo.is_finite() {
            maps.push(VarMap::Shifted { col: ncols, lo });
            if hi.is_finite() {
                if hi - lo < -EPS {
                    return LpOutcome::Infeasible;
                }
                extra_upper.push((ncols, hi - lo));
            }
            ncols += 1;
        } else if hi.is_finite() {
            maps.push(VarMap::Mirrored { col: ncols, hi });
            ncols += 1;
        } else {
            maps.push(VarMap::Split {
                pos: ncols,
                neg: ncols + 1,
            });
            ncols += 2;
        }
        let _ = i;
    }

    // --- 2. Build rows: a·y (op) b with substituted variables. -------------
    struct Row {
        coeffs: Vec<f64>,
        op: ConstraintOp,
        rhs: f64,
    }
    let mut rows: Vec<Row> = Vec::new();
    for c in &lp.constraints {
        let mut coeffs = vec![0.0; ncols];
        let mut rhs = c.rhs;
        for &(var, a) in &c.coeffs {
            match maps[var] {
                VarMap::Shifted { col, lo } => {
                    coeffs[col] += a;
                    rhs -= a * lo;
                }
                VarMap::Mirrored { col, hi } => {
                    coeffs[col] -= a;
                    rhs -= a * hi;
                }
                VarMap::Split { pos, neg } => {
                    coeffs[pos] += a;
                    coeffs[neg] -= a;
                }
            }
        }
        rows.push(Row {
            coeffs,
            op: c.op,
            rhs,
        });
    }
    for &(col, ub) in &extra_upper {
        let mut coeffs = vec![0.0; ncols];
        coeffs[col] = 1.0;
        rows.push(Row {
            coeffs,
            op: ConstraintOp::Le,
            rhs: ub,
        });
    }

    // Objective over tableau columns (constant offset from shifts).
    let mut obj = vec![0.0; ncols];
    let mut obj_offset = 0.0;
    for (var, &c) in lp.objective.iter().enumerate() {
        match maps[var] {
            VarMap::Shifted { col, lo } => {
                obj[col] += c;
                obj_offset += c * lo;
            }
            VarMap::Mirrored { col, hi } => {
                obj[col] -= c;
                obj_offset += c * hi;
            }
            VarMap::Split { pos, neg } => {
                obj[pos] += c;
                obj[neg] -= c;
            }
        }
    }

    // --- 3. Standard form: add slacks and artificials. ---------------------
    let m = rows.len();
    let mut nslack = 0usize;
    for r in &rows {
        if r.op != ConstraintOp::Eq {
            nslack += 1;
        }
    }
    let total = ncols + nslack + m; // Worst case: one artificial per row.
                                    // Tableau: m rows × (total + 1) columns (last = rhs).
    let mut t = vec![vec![0.0; total + 1]; m];
    let mut basis = vec![usize::MAX; m];
    let mut nart = 0usize;
    let mut slack_idx = ncols;
    let art_base = ncols + nslack;
    for (ri, row) in rows.iter().enumerate() {
        let mut sign = 1.0;
        if row.rhs < 0.0 {
            sign = -1.0;
        }
        for (j, &a) in row.coeffs.iter().enumerate() {
            t[ri][j] = sign * a;
        }
        t[ri][total] = sign * row.rhs;
        let eff_op = match (row.op, sign < 0.0) {
            (ConstraintOp::Le, true) => ConstraintOp::Ge,
            (ConstraintOp::Ge, true) => ConstraintOp::Le,
            (op, _) => op,
        };
        match eff_op {
            ConstraintOp::Le => {
                t[ri][slack_idx] = 1.0;
                basis[ri] = slack_idx;
                slack_idx += 1;
            }
            ConstraintOp::Ge => {
                t[ri][slack_idx] = -1.0;
                slack_idx += 1;
                let a = art_base + nart;
                t[ri][a] = 1.0;
                basis[ri] = a;
                nart += 1;
            }
            ConstraintOp::Eq => {
                let a = art_base + nart;
                t[ri][a] = 1.0;
                basis[ri] = a;
                nart += 1;
            }
        }
    }
    let used = art_base + nart;
    for row in t.iter_mut() {
        row.drain(used..total);
    }
    let rhs_col = used;

    // --- Phase 1: minimize artificial sum. ----------------------------------
    if nart > 0 {
        let mut phase1 = vec![0.0; used];
        phase1[art_base..].fill(1.0);
        match run_simplex(&mut t, &mut basis, &phase1, rhs_col) {
            SimplexEnd::Optimal => {}
            SimplexEnd::Unbounded => return LpOutcome::Infeasible, // Cannot happen.
        }
        let art_value: f64 = basis
            .iter()
            .enumerate()
            .filter(|(_, &b)| b >= art_base)
            .map(|(ri, _)| t[ri][rhs_col])
            .sum();
        if art_value > 1e-7 {
            return LpOutcome::Infeasible;
        }
        // Pivot remaining (degenerate) artificials out of the basis.
        for ri in 0..m {
            if basis[ri] >= art_base {
                if let Some(j) = (0..art_base).find(|&j| t[ri][j].abs() > EPS) {
                    pivot(&mut t, &mut basis, ri, j, rhs_col);
                }
                // If no pivot column exists the row is all-zero; harmless.
            }
        }
    }

    // --- Phase 2: original objective (artificial columns frozen). ----------
    let mut full_obj = vec![0.0; used];
    full_obj[..ncols].copy_from_slice(&obj);
    full_obj[art_base..].fill(1e12); // Keep artificials priced out.
    match run_simplex(&mut t, &mut basis, &full_obj, rhs_col) {
        SimplexEnd::Optimal => {}
        SimplexEnd::Unbounded => return LpOutcome::Unbounded,
    }

    // --- Extract solution. ---------------------------------------------------
    let mut y = vec![0.0; used];
    for (ri, &b) in basis.iter().enumerate() {
        if b < used {
            y[b] = t[ri][rhs_col];
        }
    }
    let mut x = vec![0.0; lp.num_vars];
    for (var, map) in maps.iter().enumerate() {
        x[var] = match *map {
            VarMap::Shifted { col, lo } => lo + y[col],
            VarMap::Mirrored { col, hi } => hi - y[col],
            VarMap::Split { pos, neg } => y[pos] - y[neg],
        };
    }
    let objective = lp.objective_value(&x);
    let _ = obj_offset;
    LpOutcome::Optimal { x, objective }
}

enum SimplexEnd {
    Optimal,
    Unbounded,
}

/// Runs the simplex loop on a tableau with the given objective row.
fn run_simplex(t: &mut [Vec<f64>], basis: &mut [usize], obj: &[f64], rhs_col: usize) -> SimplexEnd {
    let mut pivots = 0u64;
    let end = run_simplex_counted(t, basis, obj, rhs_col, &mut pivots);
    mist_telemetry::counter_add("milp.simplex.pivots", pivots);
    end
}

fn run_simplex_counted(
    t: &mut [Vec<f64>],
    basis: &mut [usize],
    obj: &[f64],
    rhs_col: usize,
    pivots: &mut u64,
) -> SimplexEnd {
    let m = t.len();
    let n = obj.len();
    let mut in_basis = vec![false; n];
    for &b in basis.iter() {
        in_basis[b] = true;
    }
    // Reduced costs: z_j − c_j maintained implicitly; recompute each pivot
    // for simplicity (sizes are small).
    for iter in 0..MAX_PIVOTS {
        // Reduced cost of column j: c_j − Σ_i c_B(i) · t[i][j].
        let mut entering: Option<usize> = None;
        let mut best = -EPS;
        for j in 0..n {
            if in_basis[j] {
                continue;
            }
            let mut rc = obj[j];
            for i in 0..m {
                rc -= obj[basis[i]] * t[i][j];
            }
            if iter < BLAND_SWITCH {
                if rc < best {
                    best = rc;
                    entering = Some(j);
                }
            } else if rc < -EPS {
                entering = Some(j); // Bland: first improving column.
                break;
            }
        }
        let Some(e) = entering else {
            return SimplexEnd::Optimal;
        };
        // Ratio test.
        let mut leaving: Option<usize> = None;
        let mut best_ratio = f64::INFINITY;
        for i in 0..m {
            if t[i][e] > EPS {
                let ratio = t[i][rhs_col] / t[i][e];
                if ratio < best_ratio - EPS
                    || (ratio < best_ratio + EPS && leaving.is_some_and(|l| basis[i] < basis[l]))
                {
                    best_ratio = ratio;
                    leaving = Some(i);
                }
            }
        }
        let Some(l) = leaving else {
            return SimplexEnd::Unbounded;
        };
        in_basis[basis[l]] = false;
        in_basis[e] = true;
        pivot(t, basis, l, e, rhs_col);
        *pivots += 1;
    }
    // Pivot cap reached — treat as optimal-enough; callers re-verify
    // feasibility of anything they use.
    SimplexEnd::Optimal
}

/// Gauss-Jordan pivot on `(row, col)`.
fn pivot(t: &mut [Vec<f64>], basis: &mut [usize], row: usize, col: usize, rhs_col: usize) {
    let piv = t[row][col];
    debug_assert!(piv.abs() > EPS, "pivot on ~zero element");
    let inv = 1.0 / piv;
    for v in t[row].iter_mut() {
        *v *= inv;
    }
    for i in 0..t.len() {
        if i == row {
            continue;
        }
        let factor = t[i][col];
        if factor.abs() <= EPS {
            continue;
        }
        // Reads t[row] while writing t[i]; indexing sidesteps the borrow.
        #[allow(clippy::needless_range_loop)]
        for j in 0..=rhs_col {
            t[i][j] -= factor * t[row][j];
        }
    }
    basis[row] = col;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lp::{ConstraintOp::*, Lp};

    fn assert_opt(outcome: &LpOutcome, want_obj: f64, tol: f64) -> Vec<f64> {
        match outcome {
            LpOutcome::Optimal { x, objective } => {
                assert!(
                    (objective - want_obj).abs() < tol,
                    "objective {objective} want {want_obj}"
                );
                x.clone()
            }
            other => panic!("expected optimal, got {other:?}"),
        }
    }

    #[test]
    fn textbook_maximization() {
        // max 3x + 5y s.t. x ≤ 4, 2y ≤ 12, 3x + 2y ≤ 18 → (2, 6), 36.
        let mut lp = Lp::new(2, vec![-3.0, -5.0]);
        lp.constrain(vec![(0, 1.0)], Le, 4.0);
        lp.constrain(vec![(1, 2.0)], Le, 12.0);
        lp.constrain(vec![(0, 3.0), (1, 2.0)], Le, 18.0);
        let x = assert_opt(&solve_lp(&lp), -36.0, 1e-6);
        assert!((x[0] - 2.0).abs() < 1e-6 && (x[1] - 6.0).abs() < 1e-6);
    }

    #[test]
    fn equality_and_ge_constraints() {
        // min x + 2y s.t. x + y = 10, x ≥ 3 → (10 − y …) best: y as large
        // as possible? obj grows with y, so y = 0? x + y = 10, x ≥ 3 →
        // x = 10, y = 0, obj 10.
        let mut lp = Lp::new(2, vec![1.0, 2.0]);
        lp.constrain(vec![(0, 1.0), (1, 1.0)], Eq, 10.0);
        lp.constrain(vec![(0, 1.0)], Ge, 3.0);
        let x = assert_opt(&solve_lp(&lp), 10.0, 1e-6);
        assert!((x[0] - 10.0).abs() < 1e-6);
    }

    #[test]
    fn infeasible_detected() {
        let mut lp = Lp::new(1, vec![1.0]);
        lp.constrain(vec![(0, 1.0)], Ge, 5.0);
        lp.constrain(vec![(0, 1.0)], Le, 3.0);
        assert_eq!(solve_lp(&lp), LpOutcome::Infeasible);
    }

    #[test]
    fn unbounded_detected() {
        // min −x with x ≥ 0 unbounded below.
        let lp = Lp::new(1, vec![-1.0]);
        assert_eq!(solve_lp(&lp), LpOutcome::Unbounded);
    }

    #[test]
    fn variable_bounds_respected() {
        // min −x − y with x ∈ [0, 2], y ∈ [1, 3] → (2, 3).
        let mut lp = Lp::new(2, vec![-1.0, -1.0]);
        lp.set_bounds(0, 0.0, 2.0);
        lp.set_bounds(1, 1.0, 3.0);
        let x = assert_opt(&solve_lp(&lp), -5.0, 1e-6);
        assert!((x[0] - 2.0).abs() < 1e-6 && (x[1] - 3.0).abs() < 1e-6);
    }

    #[test]
    fn free_variable_can_go_negative() {
        // min x s.t. x ≥ −7 with free bounds via constraint.
        let mut lp = Lp::new(1, vec![1.0]);
        lp.set_bounds(0, f64::NEG_INFINITY, f64::INFINITY);
        lp.constrain(vec![(0, 1.0)], Ge, -7.0);
        let x = assert_opt(&solve_lp(&lp), -7.0, 1e-6);
        assert!((x[0] + 7.0).abs() < 1e-6);
    }

    #[test]
    fn negative_rhs_rows_handled() {
        // min x + y s.t. −x − y ≤ −4 (i.e. x + y ≥ 4).
        let mut lp = Lp::new(2, vec![1.0, 1.0]);
        lp.constrain(vec![(0, -1.0), (1, -1.0)], Le, -4.0);
        assert_opt(&solve_lp(&lp), 4.0, 1e-6);
    }

    #[test]
    fn degenerate_problem_terminates() {
        // Multiple redundant constraints through the optimum.
        let mut lp = Lp::new(2, vec![-1.0, -1.0]);
        for k in 1..=6 {
            lp.constrain(vec![(0, 1.0), (1, k as f64)], Le, k as f64);
        }
        let out = solve_lp(&lp);
        match out {
            LpOutcome::Optimal { x, .. } => assert!(lp.is_feasible(&x, 1e-6)),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn mirrored_upper_bounded_free_lower() {
        // x ≤ 5 with no lower bound: min −x → 5.
        let mut lp = Lp::new(1, vec![-1.0]);
        lp.set_bounds(0, f64::NEG_INFINITY, 5.0);
        let x = assert_opt(&solve_lp(&lp), -5.0, 1e-6);
        assert!((x[0] - 5.0).abs() < 1e-6);
    }

    #[test]
    fn solution_always_feasible_on_random_problems() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(1234);
        let mut optimal = 0;
        for _ in 0..60 {
            let n = rng.gen_range(2..6);
            let m = rng.gen_range(1..6);
            let mut lp = Lp::new(n, (0..n).map(|_| rng.gen_range(-3.0..3.0)).collect());
            for _ in 0..m {
                let coeffs: Vec<(usize, f64)> =
                    (0..n).map(|j| (j, rng.gen_range(-2.0..2.0))).collect();
                lp.constrain(coeffs, Le, rng.gen_range(0.5..8.0));
            }
            for j in 0..n {
                lp.set_bounds(j, 0.0, rng.gen_range(1.0..10.0));
            }
            match solve_lp(&lp) {
                LpOutcome::Optimal { x, .. } => {
                    assert!(lp.is_feasible(&x, 1e-5), "infeasible point returned");
                    optimal += 1;
                }
                LpOutcome::Infeasible | LpOutcome::Unbounded => {}
            }
        }
        assert!(optimal > 30, "solver too pessimistic: {optimal}/60 optimal");
    }
}
