//! A small Mixed-Integer Linear Programming toolkit.
//!
//! The paper reformulates inter-stage tuning (Eq. 2) as an MILP and hands
//! it to the off-the-shelf CBC solver [28]. CBC does not exist in this
//! offline Rust environment, so this crate is the substitute substrate:
//!
//! * [`Lp`] / [`solve_lp`] — dense two-phase primal simplex with Bland's
//!   anti-cycling rule, variable bounds, and ≤/≥/= constraints.
//! * [`Milp`] / [`solve_milp`] — best-first branch-and-bound on the LP
//!   relaxation with most-fractional branching and incumbent pruning.
//! * [`partition_min_max`] — an exact dynamic program for the ordered
//!   partition structure of pipeline-stage problems, used by the tuner as
//!   an independent cross-check of the MILP solutions.
//!
//! Problem sizes in Mist are modest (thousands of binaries, dozens of
//! rows), well within reach of a textbook implementation.

mod branch_bound;
mod dp;
mod lp;
mod simplex;

pub use branch_bound::{solve_milp, solve_milp_on, Milp, MilpOptions, MilpOutcome};
pub use dp::partition_min_max;
pub use lp::{Constraint, ConstraintOp, Lp, LpOutcome};
pub use simplex::solve_lp;
