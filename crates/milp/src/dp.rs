//! Exact dynamic programming for ordered partitions.
//!
//! Pipeline-stage problems have a special structure: `L` identical layers
//! are split into `S` contiguous groups and each group's cost depends only
//! on its own size (plus which resource slice it gets). This DP solves the
//! min–max version exactly and is used as an independent cross-check of
//! the branch-and-bound MILP results in the inter-stage tuner tests.

/// Splits `total_items` into exactly `num_groups` contiguous non-empty
/// groups minimizing the *maximum* group cost.
///
/// `cost(group_index, items_in_group)` returns the group's cost, or
/// `f64::INFINITY` when that size is infeasible for the group.
///
/// Returns `(sizes, max_cost)` or `None` when no feasible split exists.
///
/// # Example
///
/// ```
/// use mist_milp::partition_min_max;
///
/// // 10 layers over 3 equal stages: best max is ceil(10/3) = 4.
/// let (sizes, cost) = partition_min_max(10, 3, |_, n| n as f64).unwrap();
/// assert_eq!(cost, 4.0);
/// assert_eq!(sizes.iter().sum::<u32>(), 10);
/// ```
pub fn partition_min_max(
    total_items: u32,
    num_groups: u32,
    cost: impl Fn(u32, u32) -> f64,
) -> Option<(Vec<u32>, f64)> {
    if num_groups == 0 || total_items < num_groups {
        return None;
    }
    let l = total_items as usize;
    let s = num_groups as usize;
    // best[g][n] = minimal max-cost using groups 0..=g over n items.
    let mut best = vec![vec![f64::INFINITY; l + 1]; s];
    let mut choice = vec![vec![0u32; l + 1]; s];
    for (n, b) in best[0].iter_mut().enumerate().skip(1) {
        *b = cost(0, n as u32);
    }
    for g in 1..s {
        for n in (g + 1)..=l {
            for take in 1..=(n - g) {
                let c = cost(g as u32, take as u32);
                let prev = best[g - 1][n - take];
                let m = c.max(prev);
                if m < best[g][n] {
                    best[g][n] = m;
                    choice[g][n] = take as u32;
                }
            }
        }
    }
    if !best[s - 1][l].is_finite() {
        return None;
    }
    // Reconstruct.
    let mut sizes = vec![0u32; s];
    let mut n = l;
    for g in (1..s).rev() {
        let take = choice[g][n];
        sizes[g] = take;
        n -= take as usize;
    }
    sizes[0] = n as u32;
    Some((sizes, best[s - 1][l]))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn even_split_is_optimal_for_linear_costs() {
        let (sizes, cost) = partition_min_max(16, 4, |_, n| n as f64).unwrap();
        assert_eq!(sizes, vec![4, 4, 4, 4]);
        assert_eq!(cost, 4.0);
    }

    #[test]
    fn heterogeneous_group_speeds() {
        // Group 0 runs 2× faster: it should take more items.
        let (sizes, _) =
            partition_min_max(12, 2, |g, n| if g == 0 { n as f64 * 0.5 } else { n as f64 })
                .unwrap();
        assert!(sizes[0] > sizes[1], "{sizes:?}");
        assert_eq!(sizes.iter().sum::<u32>(), 12);
    }

    #[test]
    fn infeasible_sizes_are_avoided() {
        // Groups cannot take more than 3 items.
        let (sizes, _) =
            partition_min_max(9, 3, |_, n| if n > 3 { f64::INFINITY } else { n as f64 }).unwrap();
        assert_eq!(sizes, vec![3, 3, 3]);
        // 10 items cannot fit 3 groups of ≤ 3.
        assert!(
            partition_min_max(10, 3, |_, n| if n > 3 { f64::INFINITY } else { n as f64 }).is_none()
        );
    }

    #[test]
    fn degenerate_inputs() {
        assert!(partition_min_max(3, 4, |_, n| n as f64).is_none());
        assert!(partition_min_max(5, 0, |_, n| n as f64).is_none());
        let (sizes, cost) = partition_min_max(5, 1, |_, n| n as f64 * 2.0).unwrap();
        assert_eq!(sizes, vec![5]);
        assert_eq!(cost, 10.0);
    }

    #[test]
    fn nonmonotonic_costs_still_exact() {
        // Cost favours size exactly 2.
        let f = |_: u32, n: u32| if n == 2 { 1.0 } else { 10.0 + n as f64 };
        let (sizes, cost) = partition_min_max(8, 4, f).unwrap();
        assert_eq!(sizes, vec![2, 2, 2, 2]);
        assert_eq!(cost, 1.0);
    }
}
