//! Linear-program model types.

use serde::{Deserialize, Serialize};

/// Constraint sense.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ConstraintOp {
    /// `lhs ≤ rhs`.
    Le,
    /// `lhs ≥ rhs`.
    Ge,
    /// `lhs = rhs`.
    Eq,
}

/// One linear constraint `Σ coeffs·x (op) rhs`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Constraint {
    /// Sparse `(variable index, coefficient)` list.
    pub coeffs: Vec<(usize, f64)>,
    /// Sense.
    pub op: ConstraintOp,
    /// Right-hand side.
    pub rhs: f64,
}

/// A linear program: minimize `objective · x` subject to constraints and
/// per-variable bounds.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Lp {
    /// Number of decision variables.
    pub num_vars: usize,
    /// Objective coefficients (minimization).
    pub objective: Vec<f64>,
    /// Linear constraints.
    pub constraints: Vec<Constraint>,
    /// Inclusive `[lower, upper]` bounds per variable. Use
    /// `f64::NEG_INFINITY` / `f64::INFINITY` for free variables.
    pub bounds: Vec<(f64, f64)>,
}

impl Lp {
    /// Creates an LP with all variables bounded to `[0, +inf)`.
    pub fn new(num_vars: usize, objective: Vec<f64>) -> Self {
        assert_eq!(objective.len(), num_vars);
        Lp {
            num_vars,
            objective,
            constraints: Vec::new(),
            bounds: vec![(0.0, f64::INFINITY); num_vars],
        }
    }

    /// Adds a constraint (builder style).
    pub fn constrain(
        &mut self,
        coeffs: Vec<(usize, f64)>,
        op: ConstraintOp,
        rhs: f64,
    ) -> &mut Self {
        for &(i, _) in &coeffs {
            assert!(i < self.num_vars, "constraint references variable {i}");
        }
        self.constraints.push(Constraint { coeffs, op, rhs });
        self
    }

    /// Sets a variable's bounds.
    pub fn set_bounds(&mut self, var: usize, lo: f64, hi: f64) -> &mut Self {
        assert!(lo <= hi, "empty bound interval for variable {var}");
        self.bounds[var] = (lo, hi);
        self
    }

    /// Evaluates the objective at a point.
    pub fn objective_value(&self, x: &[f64]) -> f64 {
        self.objective.iter().zip(x).map(|(c, v)| c * v).sum()
    }

    /// Checks a point against all constraints and bounds (tolerance `tol`).
    pub fn is_feasible(&self, x: &[f64], tol: f64) -> bool {
        if x.len() != self.num_vars {
            return false;
        }
        for (i, &(lo, hi)) in self.bounds.iter().enumerate() {
            if x[i] < lo - tol || x[i] > hi + tol {
                return false;
            }
        }
        for c in &self.constraints {
            let lhs: f64 = c.coeffs.iter().map(|&(i, a)| a * x[i]).sum();
            let ok = match c.op {
                ConstraintOp::Le => lhs <= c.rhs + tol,
                ConstraintOp::Ge => lhs >= c.rhs - tol,
                ConstraintOp::Eq => (lhs - c.rhs).abs() <= tol,
            };
            if !ok {
                return false;
            }
        }
        true
    }
}

/// Result of an LP solve.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum LpOutcome {
    /// Optimal solution found.
    Optimal {
        /// Variable values.
        x: Vec<f64>,
        /// Objective value.
        objective: f64,
    },
    /// No feasible point exists.
    Infeasible,
    /// Objective unbounded below.
    Unbounded,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn feasibility_checker_works() {
        let mut lp = Lp::new(2, vec![1.0, 1.0]);
        lp.constrain(vec![(0, 1.0), (1, 1.0)], ConstraintOp::Le, 3.0);
        lp.set_bounds(1, 0.0, 1.0);
        assert!(lp.is_feasible(&[1.0, 1.0], 1e-9));
        assert!(!lp.is_feasible(&[3.0, 1.0], 1e-9));
        assert!(!lp.is_feasible(&[0.0, 2.0], 1e-9));
    }

    #[test]
    #[should_panic(expected = "references variable")]
    fn out_of_range_constraint_panics() {
        let mut lp = Lp::new(1, vec![1.0]);
        lp.constrain(vec![(5, 1.0)], ConstraintOp::Le, 1.0);
    }
}
