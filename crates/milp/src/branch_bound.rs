//! Best-first branch-and-bound for mixed-integer linear programs.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use serde::{Deserialize, Serialize};

use crate::lp::{Lp, LpOutcome};
use crate::simplex::solve_lp;

/// A mixed-integer linear program: an [`Lp`] plus integrality marks.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Milp {
    /// The linear relaxation.
    pub lp: Lp,
    /// Indices of variables required to take integer values.
    pub integer_vars: Vec<usize>,
}

/// Solver knobs.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct MilpOptions {
    /// Maximum explored branch-and-bound nodes.
    pub max_nodes: usize,
    /// Relative optimality gap at which to stop.
    pub gap: f64,
    /// Integrality tolerance.
    pub int_tol: f64,
    /// Known upper bound on the useful objective: subtrees whose LP bound
    /// meets or exceeds it are pruned, and solutions at or above it are
    /// discarded. `INFINITY` disables the cutoff.
    pub cutoff: f64,
}

impl Default for MilpOptions {
    fn default() -> Self {
        MilpOptions {
            max_nodes: 50_000,
            gap: 1e-6,
            int_tol: 1e-6,
            cutoff: f64::INFINITY,
        }
    }
}

/// Outcome of a MILP solve.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum MilpOutcome {
    /// Proven-optimal (within the gap) integer solution.
    Optimal {
        /// Variable values (integers are exact up to `int_tol`).
        x: Vec<f64>,
        /// Objective value.
        objective: f64,
    },
    /// Best incumbent when the node budget ran out.
    Feasible {
        /// Variable values.
        x: Vec<f64>,
        /// Objective value.
        objective: f64,
        /// Best lower bound proven.
        bound: f64,
    },
    /// No integer-feasible point.
    Infeasible,
    /// Relaxation unbounded.
    Unbounded,
}

impl MilpOutcome {
    /// The solution vector, if any.
    pub fn solution(&self) -> Option<(&[f64], f64)> {
        match self {
            MilpOutcome::Optimal { x, objective } | MilpOutcome::Feasible { x, objective, .. } => {
                Some((x, *objective))
            }
            _ => None,
        }
    }
}

#[derive(Debug)]
struct Node {
    bound: f64,
    extra_bounds: Vec<(usize, f64, f64)>, // (var, lo, hi) overrides.
}

impl PartialEq for Node {
    fn eq(&self, other: &Self) -> bool {
        self.bound == other.bound
    }
}
impl Eq for Node {}
impl PartialOrd for Node {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Node {
    fn cmp(&self, other: &Self) -> Ordering {
        // Min-heap on the relaxation bound (best-first).
        other
            .bound
            .partial_cmp(&self.bound)
            .unwrap_or(Ordering::Equal)
    }
}

/// Solves a MILP by LP-relaxation branch-and-bound with most-fractional
/// branching.
pub fn solve_milp(milp: &Milp, opts: MilpOptions) -> MilpOutcome {
    let _span = mist_telemetry::span!(
        "milp.solve",
        vars = milp.lp.objective.len(),
        ints = milp.integer_vars.len()
    );
    // Root relaxation.
    let root = solve_lp(&milp.lp);
    let (root_x, root_obj) = match root {
        LpOutcome::Optimal { x, objective } => (x, objective),
        LpOutcome::Infeasible => return MilpOutcome::Infeasible,
        LpOutcome::Unbounded => return MilpOutcome::Unbounded,
    };
    if let Some(_frac) = most_fractional(&root_x, &milp.integer_vars, opts.int_tol) {
        // Fall through to B&B below.
    } else {
        return MilpOutcome::Optimal {
            x: round_ints(root_x, &milp.integer_vars),
            objective: root_obj,
        };
    }

    if root_obj >= opts.cutoff {
        return MilpOutcome::Infeasible; // Nothing below the cutoff exists.
    }
    let mut heap = BinaryHeap::new();
    heap.push(Node {
        bound: root_obj,
        extra_bounds: Vec::new(),
    });
    let mut incumbent: Option<(Vec<f64>, f64)> = None;
    let mut nodes = 0usize;
    let mut best_bound = root_obj;

    while let Some(node) = heap.pop() {
        best_bound = node.bound;
        if node.bound >= opts.cutoff {
            break; // Everything left is above the external cutoff.
        }
        if let Some((_, inc_obj)) = &incumbent {
            if node.bound >= *inc_obj - opts.gap * inc_obj.abs().max(1.0) {
                break; // Proven optimal within gap.
            }
        }
        nodes += 1;
        if nodes > opts.max_nodes {
            break;
        }

        // Solve this node's relaxation; an empty bound intersection means
        // the node is infeasible and is pruned outright.
        let mut lp = milp.lp.clone();
        let mut empty = false;
        for &(v, lo, hi) in &node.extra_bounds {
            let (clo, chi) = lp.bounds[v];
            let nlo = clo.max(lo);
            let nhi = chi.min(hi);
            if nlo > nhi {
                empty = true;
                break;
            }
            lp.bounds[v] = (nlo, nhi);
        }
        if empty {
            continue;
        }
        let (x, obj) = match solve_lp(&lp) {
            LpOutcome::Optimal { x, objective } => (x, objective),
            _ => continue,
        };
        if let Some((_, inc_obj)) = &incumbent {
            if obj >= *inc_obj - 1e-12 {
                continue; // Dominated.
            }
        }
        match most_fractional(&x, &milp.integer_vars, opts.int_tol) {
            None => {
                let x = round_ints(x, &milp.integer_vars);
                let obj = milp.lp.objective_value(&x);
                if obj < opts.cutoff && incumbent.as_ref().is_none_or(|(_, io)| obj < *io) {
                    incumbent = Some((x, obj));
                }
            }
            Some(v) => {
                let val = x[v];
                let mut down = node.extra_bounds.clone();
                down.push((v, f64::NEG_INFINITY, val.floor()));
                let mut up = node.extra_bounds;
                up.push((v, val.ceil(), f64::INFINITY));
                heap.push(Node {
                    bound: obj,
                    extra_bounds: down,
                });
                heap.push(Node {
                    bound: obj,
                    extra_bounds: up,
                });
            }
        }
    }

    mist_telemetry::counter_add("milp.nodes_explored", nodes as u64);
    match incumbent {
        Some((x, objective)) => {
            let proven = heap
                .peek()
                .map(|n| n.bound >= objective - opts.gap * objective.abs().max(1.0))
                .unwrap_or(true);
            if proven && nodes <= opts.max_nodes {
                MilpOutcome::Optimal { x, objective }
            } else {
                MilpOutcome::Feasible {
                    x,
                    objective,
                    bound: best_bound,
                }
            }
        }
        None => MilpOutcome::Infeasible,
    }
}

fn most_fractional(x: &[f64], ints: &[usize], tol: f64) -> Option<usize> {
    let mut best: Option<(usize, f64)> = None;
    for &v in ints {
        let frac = (x[v] - x[v].round()).abs();
        if frac > tol && best.is_none_or(|(_, b)| frac > b) {
            best = Some((v, frac));
        }
    }
    best.map(|(v, _)| v)
}

fn round_ints(mut x: Vec<f64>, ints: &[usize]) -> Vec<f64> {
    for &v in ints {
        x[v] = x[v].round();
    }
    x
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lp::{ConstraintOp::*, Lp};

    fn assert_optimal(out: &MilpOutcome, want: f64) -> Vec<f64> {
        match out {
            MilpOutcome::Optimal { x, objective } => {
                assert!(
                    (objective - want).abs() < 1e-5,
                    "objective {objective} want {want}"
                );
                x.clone()
            }
            other => panic!("expected optimal, got {other:?}"),
        }
    }

    #[test]
    fn knapsack_small() {
        // max 10a + 13b + 7c with 3a + 4b + 2c ≤ 6, binary → a=0,b=1,c=1 (20)
        let mut lp = Lp::new(3, vec![-10.0, -13.0, -7.0]);
        lp.constrain(vec![(0, 3.0), (1, 4.0), (2, 2.0)], Le, 6.0);
        for v in 0..3 {
            lp.set_bounds(v, 0.0, 1.0);
        }
        let milp = Milp {
            lp,
            integer_vars: vec![0, 1, 2],
        };
        let x = assert_optimal(&solve_milp(&milp, MilpOptions::default()), -20.0);
        assert_eq!(
            x.iter().map(|v| v.round() as i32).collect::<Vec<_>>(),
            vec![0, 1, 1]
        );
    }

    #[test]
    fn integer_rounding_matters() {
        // max x + y s.t. 2x + 2y ≤ 5, ints → 2 (not 2.5).
        let mut lp = Lp::new(2, vec![-1.0, -1.0]);
        lp.constrain(vec![(0, 2.0), (1, 2.0)], Le, 5.0);
        let milp = Milp {
            lp,
            integer_vars: vec![0, 1],
        };
        assert_optimal(&solve_milp(&milp, MilpOptions::default()), -2.0);
    }

    #[test]
    fn mixed_continuous_and_integer() {
        // min 3x + 2y, x int, x + y ≥ 3.7, y ≤ 1.2 → x = 3 (ceil(2.5)),
        // y = 0.7 → obj 10.4? Check: x+y≥3.7, y≤1.2. Options: x=3,y=0.7 →
        // 10.4; x=4,y=0 → 12. So 10.4.
        let mut lp = Lp::new(2, vec![3.0, 2.0]);
        lp.constrain(vec![(0, 1.0), (1, 1.0)], Ge, 3.7);
        lp.set_bounds(1, 0.0, 1.2);
        let milp = Milp {
            lp,
            integer_vars: vec![0],
        };
        let x = assert_optimal(&solve_milp(&milp, MilpOptions::default()), 10.4);
        assert!((x[0] - 3.0).abs() < 1e-6);
    }

    #[test]
    fn infeasible_integrality() {
        // 0.4 ≤ x ≤ 0.6 with x integer.
        let mut lp = Lp::new(1, vec![1.0]);
        lp.set_bounds(0, 0.4, 0.6);
        let milp = Milp {
            lp,
            integer_vars: vec![0],
        };
        assert_eq!(
            solve_milp(&milp, MilpOptions::default()),
            MilpOutcome::Infeasible
        );
    }

    #[test]
    fn assignment_structure_like_inter_stage() {
        // Two stages, each must pick exactly one of three candidates;
        // chosen layer counts must sum to 8; minimize summed times.
        // Candidates (layers, time): s0: (2, 1.0) (4, 1.8) (6, 2.9);
        //                            s1: (2, 1.2) (4, 2.0) (6, 3.1).
        // Feasible combos: (2,6)=4.1, (4,4)=3.8, (6,2)=4.1 → best 3.8.
        let layers = [[2.0, 4.0, 6.0], [2.0, 4.0, 6.0]];
        let times = [[1.0, 1.8, 2.9], [1.2, 2.0, 3.1]];
        let nv = 6;
        let mut obj = vec![0.0; nv];
        for s in 0..2 {
            for j in 0..3 {
                obj[s * 3 + j] = times[s][j];
            }
        }
        let mut lp = Lp::new(nv, obj);
        for s in 0..2 {
            lp.constrain((0..3).map(|j| (s * 3 + j, 1.0)).collect(), Eq, 1.0);
        }
        lp.constrain(
            (0..2)
                .flat_map(|s| (0..3).map(move |j| (s * 3 + j, layers[s][j])))
                .collect(),
            Eq,
            8.0,
        );
        for v in 0..nv {
            lp.set_bounds(v, 0.0, 1.0);
        }
        let milp = Milp {
            lp,
            integer_vars: (0..nv).collect(),
        };
        let x = assert_optimal(&solve_milp(&milp, MilpOptions::default()), 3.8);
        assert!((x[1] - 1.0).abs() < 1e-6 && (x[4] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn respects_node_budget() {
        // A 12-item knapsack with a tiny node cap still returns something
        // feasible (or proven infeasible), never panics.
        let n = 12;
        let mut lp = Lp::new(n, (0..n).map(|i| -((i % 5) as f64 + 1.0)).collect());
        lp.constrain((0..n).map(|i| (i, (i % 3) as f64 + 1.0)).collect(), Le, 9.0);
        for v in 0..n {
            lp.set_bounds(v, 0.0, 1.0);
        }
        let milp = Milp {
            lp: lp.clone(),
            integer_vars: (0..n).collect(),
        };
        let out = solve_milp(
            &milp,
            MilpOptions {
                max_nodes: 5,
                ..Default::default()
            },
        );
        if let Some((x, _)) = out.solution() {
            assert!(lp.is_feasible(x, 1e-5));
        }
    }
}
