//! Best-first branch-and-bound for mixed-integer linear programs.
//!
//! The search runs on the `mist-pool` work-stealing pool: sibling
//! subtrees are explored concurrently under a shared best-incumbent
//! bound (read with a relaxed atomic load on the hot pruning path, locked
//! only on improvement). Determinism at any thread count comes from two
//! canonical orderings:
//!
//! * open nodes are popped best-first on `(bound, branch path)`, where
//!   the path — the down/up directions from the root — is a
//!   thread-count-independent identity for every node, and
//! * the incumbent breaks objective ties (within `1e-12`) toward the
//!   lexicographically smallest path, so whichever of two equally good
//!   leaves is *found* first, the same one is *kept*.
//!
//! Pruning only ever discards subtrees whose relaxation bound exceeds the
//! final incumbent objective (plus the configured gap), so the returned
//! solution is the same one the sequential search finds whenever the
//! optimum is unique up to the gap tolerance.

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicU64, Ordering as AtomicOrdering};
use std::time::Duration;

use parking_lot::{Condvar, Mutex};
use serde::{Deserialize, Serialize};

use crate::lp::{Lp, LpOutcome};
use crate::simplex::solve_lp;

/// A mixed-integer linear program: an [`Lp`] plus integrality marks.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Milp {
    /// The linear relaxation.
    pub lp: Lp,
    /// Indices of variables required to take integer values.
    pub integer_vars: Vec<usize>,
}

/// Solver knobs.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct MilpOptions {
    /// Maximum explored branch-and-bound nodes.
    pub max_nodes: usize,
    /// Relative optimality gap at which to stop.
    pub gap: f64,
    /// Integrality tolerance.
    pub int_tol: f64,
    /// Known upper bound on the useful objective: subtrees whose LP bound
    /// meets or exceeds it are pruned, and solutions at or above it are
    /// discarded. `INFINITY` disables the cutoff.
    pub cutoff: f64,
}

impl Default for MilpOptions {
    fn default() -> Self {
        MilpOptions {
            max_nodes: 50_000,
            gap: 1e-6,
            int_tol: 1e-6,
            cutoff: f64::INFINITY,
        }
    }
}

/// Outcome of a MILP solve.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum MilpOutcome {
    /// Proven-optimal (within the gap) integer solution.
    Optimal {
        /// Variable values (integers are exact up to `int_tol`).
        x: Vec<f64>,
        /// Objective value.
        objective: f64,
    },
    /// Best incumbent when the node budget ran out.
    Feasible {
        /// Variable values.
        x: Vec<f64>,
        /// Objective value.
        objective: f64,
        /// Best lower bound proven.
        bound: f64,
    },
    /// No integer-feasible point.
    Infeasible,
    /// Relaxation unbounded.
    Unbounded,
}

impl MilpOutcome {
    /// The solution vector, if any.
    pub fn solution(&self) -> Option<(&[f64], f64)> {
        match self {
            MilpOutcome::Optimal { x, objective } | MilpOutcome::Feasible { x, objective, .. } => {
                Some((x, *objective))
            }
            _ => None,
        }
    }
}

/// Objective ties closer than this are broken on the branch path.
const TIE_TOL: f64 = 1e-12;

#[derive(Debug)]
struct Node {
    bound: f64,
    /// Branch directions from the root (0 = down, 1 = up): a canonical
    /// identity independent of exploration order, used to break bound and
    /// objective ties deterministically.
    path: Vec<u8>,
    extra_bounds: Vec<(usize, f64, f64)>, // (var, lo, hi) overrides.
}

impl PartialEq for Node {
    fn eq(&self, other: &Self) -> bool {
        self.bound == other.bound && self.path == other.path
    }
}
impl Eq for Node {}
impl PartialOrd for Node {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Node {
    fn cmp(&self, other: &Self) -> Ordering {
        // Min-heap on (relaxation bound, branch path): best-first with a
        // deterministic order among equal bounds.
        other
            .bound
            .partial_cmp(&self.bound)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.path.cmp(&self.path))
    }
}

/// Mutable search front, shared by every worker under one lock. LP
/// solves (the expensive part) happen outside it.
struct SearchState {
    heap: BinaryHeap<Node>,
    /// `(ticket, bound)` of nodes currently being processed: their
    /// children are not in the heap yet, so "heap empty" alone does not
    /// mean the search is finished.
    inflight: Vec<(u64, f64)>,
    next_ticket: u64,
    nodes: usize,
    stopped: bool,
    budget_exhausted: bool,
    /// Smallest relaxation bound among pruned/remaining subtrees — the
    /// proven global lower bound when the search stops early.
    final_bound: f64,
}

/// Best integer-feasible solution found so far.
struct Incumbent {
    x: Vec<f64>,
    obj: f64,
    path: Vec<u8>,
}

struct Search<'a> {
    milp: &'a Milp,
    opts: MilpOptions,
    state: Mutex<SearchState>,
    work_cv: Condvar,
    /// f64 bits of the incumbent objective (`INFINITY` when none): the
    /// relaxed-load fast path for pruning.
    incumbent_bits: AtomicU64,
    incumbent: Mutex<Option<Incumbent>>,
}

impl<'a> Search<'a> {
    fn incumbent_obj(&self) -> f64 {
        f64::from_bits(self.incumbent_bits.load(AtomicOrdering::Relaxed))
    }

    /// Offers an integer-feasible `(x, obj)` found at `path` as the new
    /// incumbent. Ties within [`TIE_TOL`] go to the smaller path, which
    /// makes the winner independent of discovery order.
    fn offer(&self, x: Vec<f64>, obj: f64, path: &[u8]) {
        if obj >= self.opts.cutoff {
            return;
        }
        let mut inc = self.incumbent.lock();
        let better = match &*inc {
            None => true,
            Some(cur) => {
                obj < cur.obj - TIE_TOL || (obj <= cur.obj + TIE_TOL && path < cur.path.as_slice())
            }
        };
        if better {
            // The pruning bound must never increase, even when a tie is
            // re-broken toward a marginally larger objective.
            let bound = match &*inc {
                Some(cur) => obj.min(cur.obj),
                None => obj,
            };
            self.incumbent_bits
                .store(bound.to_bits(), AtomicOrdering::Release);
            *inc = Some(Incumbent {
                x,
                obj,
                path: path.to_vec(),
            });
            mist_telemetry::journal_event(|| mist_telemetry::JournalEvent::MilpNode {
                kind: mist_telemetry::MilpNodeKind::Incumbent,
                bound: obj,
                depth: path.len() as u32,
            });
        }
    }

    /// Pops the next node to process, waiting for in-flight siblings to
    /// publish children when the heap runs dry. Returns `None` when the
    /// search is over (space exhausted, budget, or stop flag).
    fn next_node(&self) -> Option<(u64, Node)> {
        let mut st = self.state.lock();
        loop {
            if st.stopped {
                return None;
            }
            if let Some(node) = st.heap.pop() {
                let inc = self.incumbent_obj();
                let gap_cut = if inc.is_finite() {
                    inc - self.opts.gap * inc.abs().max(1.0)
                } else {
                    f64::INFINITY
                };
                if node.bound >= self.opts.cutoff || node.bound >= gap_cut {
                    st.final_bound = st.final_bound.min(node.bound);
                    mist_telemetry::journal_event(|| mist_telemetry::JournalEvent::MilpNode {
                        kind: mist_telemetry::MilpNodeKind::Pruned,
                        bound: node.bound,
                        depth: node.path.len() as u32,
                    });
                    continue; // Subtree cannot beat the incumbent/cutoff.
                }
                if st.nodes >= self.opts.max_nodes {
                    st.stopped = true;
                    st.budget_exhausted = true;
                    let mut lb = node.bound;
                    for &(_, b) in &st.inflight {
                        lb = lb.min(b);
                    }
                    st.final_bound = st.final_bound.min(lb);
                    drop(st);
                    self.work_cv.notify_all();
                    return None;
                }
                st.nodes += 1;
                let ticket = st.next_ticket;
                st.next_ticket += 1;
                st.inflight.push((ticket, node.bound));
                mist_telemetry::journal_event(|| mist_telemetry::JournalEvent::MilpNode {
                    kind: mist_telemetry::MilpNodeKind::Open,
                    bound: node.bound,
                    depth: node.path.len() as u32,
                });
                return Some((ticket, node));
            }
            if st.inflight.is_empty() {
                drop(st);
                self.work_cv.notify_all();
                return None; // Search space exhausted.
            }
            // Children of in-flight nodes may still arrive; the timeout
            // covers the notify-vs-wait race.
            let (guard, _) = self.work_cv.wait_timeout(st, Duration::from_micros(200));
            st = guard;
        }
    }

    /// Solves one node's relaxation and either records an incumbent or
    /// branches, pushing both children onto the shared heap.
    fn process(&self, node: Node) {
        let mut lp = self.milp.lp.clone();
        let mut empty = false;
        for &(v, lo, hi) in &node.extra_bounds {
            let (clo, chi) = lp.bounds[v];
            let nlo = clo.max(lo);
            let nhi = chi.min(hi);
            if nlo > nhi {
                empty = true;
                break;
            }
            lp.bounds[v] = (nlo, nhi);
        }
        if empty {
            return;
        }
        let (x, obj) = match solve_lp(&lp) {
            LpOutcome::Optimal { x, objective } => (x, objective),
            _ => return,
        };
        // Dominance prune. Ties pass through so the path tie-break can
        // still canonicalize the incumbent; the incumbent only improves
        // over time, so anything pruned here can never win at the end.
        if obj > self.incumbent_obj() + TIE_TOL {
            return;
        }
        match most_fractional(&x, &self.milp.integer_vars, self.opts.int_tol) {
            None => {
                let x = round_ints(x, &self.milp.integer_vars);
                let obj = self.milp.lp.objective_value(&x);
                self.offer(x, obj, &node.path);
            }
            Some(v) => {
                let val = x[v];
                let mut down = node.extra_bounds.clone();
                down.push((v, f64::NEG_INFINITY, val.floor()));
                let mut down_path = node.path.clone();
                down_path.push(0);
                let mut up = node.extra_bounds;
                up.push((v, val.ceil(), f64::INFINITY));
                let mut up_path = node.path;
                up_path.push(1);
                let mut st = self.state.lock();
                st.heap.push(Node {
                    bound: obj,
                    path: down_path,
                    extra_bounds: down,
                });
                st.heap.push(Node {
                    bound: obj,
                    path: up_path,
                    extra_bounds: up,
                });
                drop(st);
                self.work_cv.notify_all();
            }
        }
    }

    /// One worker: drain nodes until the search ends.
    fn run_worker(&self) {
        while let Some((ticket, node)) = self.next_node() {
            self.process(node);
            let mut st = self.state.lock();
            if let Some(i) = st.inflight.iter().position(|&(t, _)| t == ticket) {
                st.inflight.swap_remove(i);
            }
            drop(st);
            self.work_cv.notify_all();
        }
    }
}

/// Solves a MILP by LP-relaxation branch-and-bound with most-fractional
/// branching, on the process-global thread pool.
pub fn solve_milp(milp: &Milp, opts: MilpOptions) -> MilpOutcome {
    solve_milp_on(milp, opts, &mist_pool::global())
}

/// [`solve_milp`] on an explicit pool. The result is identical at any
/// thread count whenever the optimum is unique up to the gap tolerance
/// (see the module docs for the tie-breaking contract).
pub fn solve_milp_on(milp: &Milp, opts: MilpOptions, pool: &mist_pool::ThreadPool) -> MilpOutcome {
    let _span = mist_telemetry::span!(
        "milp.solve",
        vars = milp.lp.objective.len(),
        ints = milp.integer_vars.len()
    );
    // Root relaxation.
    let root = solve_lp(&milp.lp);
    let (root_x, root_obj) = match root {
        LpOutcome::Optimal { x, objective } => (x, objective),
        LpOutcome::Infeasible => return MilpOutcome::Infeasible,
        LpOutcome::Unbounded => return MilpOutcome::Unbounded,
    };
    if most_fractional(&root_x, &milp.integer_vars, opts.int_tol).is_none() {
        return MilpOutcome::Optimal {
            x: round_ints(root_x, &milp.integer_vars),
            objective: root_obj,
        };
    }
    if root_obj >= opts.cutoff {
        return MilpOutcome::Infeasible; // Nothing below the cutoff exists.
    }

    let mut heap = BinaryHeap::new();
    heap.push(Node {
        bound: root_obj,
        path: Vec::new(),
        extra_bounds: Vec::new(),
    });
    let search = Search {
        milp,
        opts,
        state: Mutex::new(SearchState {
            heap,
            inflight: Vec::new(),
            next_ticket: 0,
            nodes: 0,
            stopped: false,
            budget_exhausted: false,
            final_bound: f64::INFINITY,
        }),
        work_cv: Condvar::new(),
        incumbent_bits: AtomicU64::new(f64::INFINITY.to_bits()),
        incumbent: Mutex::new(None),
    };

    let workers = pool.threads();
    if workers <= 1 {
        search.run_worker();
    } else {
        pool.scope(|s| {
            for _ in 0..workers {
                s.spawn(|| search.run_worker());
            }
        });
    }

    let state = search.state.into_inner();
    mist_telemetry::counter_add("milp.nodes_explored", state.nodes as u64);
    match search.incumbent.into_inner() {
        Some(Incumbent { x, obj, .. }) => {
            let proven =
                !state.budget_exhausted && state.final_bound >= obj - opts.gap * obj.abs().max(1.0);
            if proven {
                MilpOutcome::Optimal { x, objective: obj }
            } else {
                MilpOutcome::Feasible {
                    x,
                    objective: obj,
                    bound: state.final_bound.min(obj),
                }
            }
        }
        None => MilpOutcome::Infeasible,
    }
}

fn most_fractional(x: &[f64], ints: &[usize], tol: f64) -> Option<usize> {
    let mut best: Option<(usize, f64)> = None;
    for &v in ints {
        let frac = (x[v] - x[v].round()).abs();
        if frac > tol && best.is_none_or(|(_, b)| frac > b) {
            best = Some((v, frac));
        }
    }
    best.map(|(v, _)| v)
}

fn round_ints(mut x: Vec<f64>, ints: &[usize]) -> Vec<f64> {
    for &v in ints {
        x[v] = x[v].round();
    }
    x
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lp::{ConstraintOp::*, Lp};

    fn assert_optimal(out: &MilpOutcome, want: f64) -> Vec<f64> {
        match out {
            MilpOutcome::Optimal { x, objective } => {
                assert!(
                    (objective - want).abs() < 1e-5,
                    "objective {objective} want {want}"
                );
                x.clone()
            }
            other => panic!("expected optimal, got {other:?}"),
        }
    }

    #[test]
    fn knapsack_small() {
        // max 10a + 13b + 7c with 3a + 4b + 2c ≤ 6, binary → a=0,b=1,c=1 (20)
        let mut lp = Lp::new(3, vec![-10.0, -13.0, -7.0]);
        lp.constrain(vec![(0, 3.0), (1, 4.0), (2, 2.0)], Le, 6.0);
        for v in 0..3 {
            lp.set_bounds(v, 0.0, 1.0);
        }
        let milp = Milp {
            lp,
            integer_vars: vec![0, 1, 2],
        };
        let x = assert_optimal(&solve_milp(&milp, MilpOptions::default()), -20.0);
        assert_eq!(
            x.iter().map(|v| v.round() as i32).collect::<Vec<_>>(),
            vec![0, 1, 1]
        );
    }

    #[test]
    fn integer_rounding_matters() {
        // max x + y s.t. 2x + 2y ≤ 5, ints → 2 (not 2.5).
        let mut lp = Lp::new(2, vec![-1.0, -1.0]);
        lp.constrain(vec![(0, 2.0), (1, 2.0)], Le, 5.0);
        let milp = Milp {
            lp,
            integer_vars: vec![0, 1],
        };
        assert_optimal(&solve_milp(&milp, MilpOptions::default()), -2.0);
    }

    #[test]
    fn mixed_continuous_and_integer() {
        // min 3x + 2y, x int, x + y ≥ 3.7, y ≤ 1.2 → x = 3 (ceil(2.5)),
        // y = 0.7 → obj 10.4? Check: x+y≥3.7, y≤1.2. Options: x=3,y=0.7 →
        // 10.4; x=4,y=0 → 12. So 10.4.
        let mut lp = Lp::new(2, vec![3.0, 2.0]);
        lp.constrain(vec![(0, 1.0), (1, 1.0)], Ge, 3.7);
        lp.set_bounds(1, 0.0, 1.2);
        let milp = Milp {
            lp,
            integer_vars: vec![0],
        };
        let x = assert_optimal(&solve_milp(&milp, MilpOptions::default()), 10.4);
        assert!((x[0] - 3.0).abs() < 1e-6);
    }

    #[test]
    fn infeasible_integrality() {
        // 0.4 ≤ x ≤ 0.6 with x integer.
        let mut lp = Lp::new(1, vec![1.0]);
        lp.set_bounds(0, 0.4, 0.6);
        let milp = Milp {
            lp,
            integer_vars: vec![0],
        };
        assert_eq!(
            solve_milp(&milp, MilpOptions::default()),
            MilpOutcome::Infeasible
        );
    }

    #[test]
    fn assignment_structure_like_inter_stage() {
        // Two stages, each must pick exactly one of three candidates;
        // chosen layer counts must sum to 8; minimize summed times.
        // Candidates (layers, time): s0: (2, 1.0) (4, 1.8) (6, 2.9);
        //                            s1: (2, 1.2) (4, 2.0) (6, 3.1).
        // Feasible combos: (2,6)=4.1, (4,4)=3.8, (6,2)=4.1 → best 3.8.
        let layers = [[2.0, 4.0, 6.0], [2.0, 4.0, 6.0]];
        let times = [[1.0, 1.8, 2.9], [1.2, 2.0, 3.1]];
        let nv = 6;
        let mut obj = vec![0.0; nv];
        for s in 0..2 {
            for j in 0..3 {
                obj[s * 3 + j] = times[s][j];
            }
        }
        let mut lp = Lp::new(nv, obj);
        for s in 0..2 {
            lp.constrain((0..3).map(|j| (s * 3 + j, 1.0)).collect(), Eq, 1.0);
        }
        lp.constrain(
            (0..2)
                .flat_map(|s| (0..3).map(move |j| (s * 3 + j, layers[s][j])))
                .collect(),
            Eq,
            8.0,
        );
        for v in 0..nv {
            lp.set_bounds(v, 0.0, 1.0);
        }
        let milp = Milp {
            lp,
            integer_vars: (0..nv).collect(),
        };
        let x = assert_optimal(&solve_milp(&milp, MilpOptions::default()), 3.8);
        assert!((x[1] - 1.0).abs() < 1e-6 && (x[4] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn respects_node_budget() {
        // A 12-item knapsack with a tiny node cap still returns something
        // feasible (or proven infeasible), never panics.
        let n = 12;
        let mut lp = Lp::new(n, (0..n).map(|i| -((i % 5) as f64 + 1.0)).collect());
        lp.constrain((0..n).map(|i| (i, (i % 3) as f64 + 1.0)).collect(), Le, 9.0);
        for v in 0..n {
            lp.set_bounds(v, 0.0, 1.0);
        }
        let milp = Milp {
            lp: lp.clone(),
            integer_vars: (0..n).collect(),
        };
        let out = solve_milp(
            &milp,
            MilpOptions {
                max_nodes: 5,
                ..Default::default()
            },
        );
        if let Some((x, _)) = out.solution() {
            assert!(lp.is_feasible(x, 1e-5));
        }
    }

    /// A knapsack with several distinct optimal solutions: the path
    /// tie-break must pick the same one at every thread count.
    fn degenerate_knapsack() -> Milp {
        // max a + b + c + d with a + b + c + d ≤ 2, binary: every pair is
        // optimal at objective 2.
        let mut lp = Lp::new(4, vec![-1.0, -1.0, -1.0, -1.0]);
        lp.constrain(vec![(0, 1.0), (1, 1.0), (2, 1.0), (3, 1.0)], Le, 2.0);
        for v in 0..4 {
            lp.set_bounds(v, 0.0, 1.0);
        }
        Milp {
            lp,
            integer_vars: vec![0, 1, 2, 3],
        }
    }

    #[test]
    fn parallel_matches_sequential() {
        let problems: Vec<Milp> = vec![
            degenerate_knapsack(),
            {
                let n = 10;
                let mut lp = Lp::new(n, (0..n).map(|i| -((i * 7 % 11) as f64 + 1.0)).collect());
                lp.constrain(
                    (0..n).map(|i| (i, (i * 3 % 5) as f64 + 1.0)).collect(),
                    Le,
                    11.0,
                );
                for v in 0..n {
                    lp.set_bounds(v, 0.0, 1.0);
                }
                Milp {
                    lp,
                    integer_vars: (0..n).collect(),
                }
            },
            {
                // Mixed integer/continuous with an equality.
                let mut lp = Lp::new(3, vec![2.0, 3.0, 1.0]);
                lp.constrain(vec![(0, 1.0), (1, 1.0), (2, 1.0)], Ge, 7.3);
                lp.constrain(vec![(0, 1.0), (1, -1.0)], Le, 2.0);
                lp.set_bounds(2, 0.0, 1.5);
                Milp {
                    lp,
                    integer_vars: vec![0, 1],
                }
            },
        ];
        for (pi, milp) in problems.iter().enumerate() {
            let reference =
                solve_milp_on(milp, MilpOptions::default(), &mist_pool::ThreadPool::new(1));
            for threads in [2, 4, 8] {
                let pool = mist_pool::ThreadPool::new(threads);
                let out = solve_milp_on(milp, MilpOptions::default(), &pool);
                assert_eq!(out, reference, "problem {pi} at {threads} threads");
            }
        }
    }

    #[test]
    fn repeated_parallel_solves_are_stable() {
        // Re-running the degenerate problem many times on the same pool
        // shakes out scheduling races in the tie-break.
        let milp = degenerate_knapsack();
        let pool = mist_pool::ThreadPool::new(4);
        let reference = solve_milp_on(&milp, MilpOptions::default(), &pool);
        assert!(matches!(reference, MilpOutcome::Optimal { .. }));
        for round in 0..25 {
            let out = solve_milp_on(&milp, MilpOptions::default(), &pool);
            assert_eq!(out, reference, "round {round}");
        }
    }

    #[test]
    fn cutoff_prunes_to_infeasible() {
        // The knapsack optimum is −20; a cutoff below it must make the
        // solve infeasible, at any thread count.
        let mut lp = Lp::new(3, vec![-10.0, -13.0, -7.0]);
        lp.constrain(vec![(0, 3.0), (1, 4.0), (2, 2.0)], Le, 6.0);
        for v in 0..3 {
            lp.set_bounds(v, 0.0, 1.0);
        }
        let milp = Milp {
            lp,
            integer_vars: vec![0, 1, 2],
        };
        for threads in [1, 4] {
            let pool = mist_pool::ThreadPool::new(threads);
            let out = solve_milp_on(
                &milp,
                MilpOptions {
                    cutoff: -25.0,
                    ..Default::default()
                },
                &pool,
            );
            assert_eq!(out, MilpOutcome::Infeasible, "threads={threads}");
        }
    }
}
