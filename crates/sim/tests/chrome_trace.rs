//! Golden-file and structural validation of `SimReport::to_chrome_trace`.

use std::collections::BTreeMap;

use mist_hardware::Platform;
use mist_schedule::{IterationSchedule, StageMemory, StageTask};
use mist_sim::{simulate, GroundTruth, STREAM_LANES};
use serde_json::Value;

fn stage(fwd: [f64; 4], bwd: [f64; 4]) -> StageTask {
    StageTask {
        fwd,
        bwd,
        first_extra: [0.3, 0.0, 0.1, 0.0],
        last_extra: [0.1, 0.2, 0.0, 0.0],
        mem: StageMemory {
            resident: 100.0,
            act_per_mb: 10.0,
            transient_fwd: 1.0,
            transient_bwd: 2.0,
        },
    }
}

/// A small deterministic pipeline exercising all four stream lanes:
/// noiseless ground truth, 2 stages, 3 microbatches, NCCL and offload
/// traffic overlapping compute.
fn report() -> mist_sim::SimReport {
    let sched = IterationSchedule {
        grad_accum: 3,
        stages: vec![
            stage([1.0, 0.4, 0.2, 0.0], [2.0, 0.6, 0.0, 0.3]),
            stage([1.2, 0.5, 0.0, 0.1], [2.2, 0.4, 0.2, 0.0]),
        ],
    };
    simulate(&sched, &GroundTruth::noiseless(Platform::GcpL4))
}

fn trace_events(json: &str) -> Vec<Vec<(String, Value)>> {
    let doc: Value = serde_json::from_str(json).expect("trace must be valid JSON");
    let Value::Object(fields) = doc else {
        panic!("trace must be a JSON object")
    };
    let (_, events) = fields
        .iter()
        .find(|(k, _)| k == "traceEvents")
        .expect("traceEvents key");
    let Value::Array(events) = events else {
        panic!("traceEvents must be an array")
    };
    events
        .iter()
        .map(|e| {
            let Value::Object(f) = e else {
                panic!("each event must be an object")
            };
            f.clone()
        })
        .collect()
}

fn field<'a>(event: &'a [(String, Value)], key: &str) -> &'a Value {
    &event.iter().find(|(k, _)| k == key).unwrap().1
}

fn str_field<'a>(event: &'a [(String, Value)], key: &str) -> &'a str {
    match field(event, key) {
        Value::Str(s) => s,
        other => panic!("field {key} not a string: {other:?}"),
    }
}

#[test]
fn trace_matches_golden_file() {
    let got = report().to_chrome_trace();
    if std::env::var_os("MIST_UPDATE_GOLDEN").is_some() {
        let path = concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/tests/golden/pipeline_trace.json"
        );
        std::fs::write(path, got + "\n").unwrap();
        return;
    }
    let want = include_str!("golden/pipeline_trace.json");
    assert_eq!(
        got,
        want.trim_end(),
        "trace drifted from tests/golden/pipeline_trace.json; if the \
         change is intentional, rerun with MIST_UPDATE_GOLDEN=1"
    );
}

#[test]
fn every_begin_has_a_matching_end_and_tracks_are_monotone() {
    let rep = report();
    let events = trace_events(&rep.to_chrome_trace());

    // Per-(pid, tid) track state: open-slice depth and last timestamp.
    let mut depth: BTreeMap<(i64, i64), i64> = BTreeMap::new();
    let mut last_ts: BTreeMap<(i64, i64), f64> = BTreeMap::new();
    let mut named_tracks: BTreeMap<(i64, i64), String> = BTreeMap::new();

    for e in &events {
        let ph = str_field(e, "ph");
        let pid = field(e, "pid").as_i64().unwrap();
        let tid = field(e, "tid").as_i64().unwrap();
        match ph {
            "M" => {
                if str_field(e, "name") == "thread_name" {
                    let Value::Object(args) = field(e, "args") else {
                        panic!("thread_name args")
                    };
                    named_tracks.insert((pid, tid), str_field(args, "name").to_owned());
                }
            }
            "B" | "E" => {
                let ts = field(e, "ts").as_f64().unwrap();
                let track = (pid, tid);
                let prev = last_ts.insert(track, ts).unwrap_or(f64::NEG_INFINITY);
                assert!(ts >= prev, "timestamps regress on track {track:?}");
                let d = depth.entry(track).or_insert(0);
                *d += if ph == "B" { 1 } else { -1 };
                assert!(*d >= 0, "E without open B on track {track:?}");
            }
            other => panic!("unexpected phase {other}"),
        }
    }
    for (track, d) in &depth {
        assert_eq!(*d, 0, "unbalanced B/E on track {track:?}");
    }

    // Tracks = stages × streams, with the documented lane names.
    let n_stages = rep.stage_peak_mem.len();
    assert_eq!(named_tracks.len(), n_stages * STREAM_LANES.len());
    for s in 0..n_stages as i64 {
        for (tid, lane) in STREAM_LANES.iter().enumerate() {
            assert_eq!(named_tracks[&(s, tid as i64)], *lane);
        }
    }

    // Every lane with traffic produced at least one slice.
    let begins = events.iter().filter(|e| str_field(e, "ph") == "B").count();
    assert!(begins > 0, "trace has no duration slices");
}
