//! Event-level memory ledger.
//!
//! Tracks one stage's GPU memory through an iteration: the resident base,
//! one activation stash per in-flight microbatch (allocated when its
//! forward completes, freed when its backward completes), and the running
//! task's transient working set. The high-water mark is the "measured"
//! peak memory of the prediction-accuracy study (§6.6).

/// Memory ledger for one simulated stage.
#[derive(Debug, Clone)]
pub struct MemoryLedger {
    resident: f64,
    act_per_mb: f64,
    stashed_microbatches: u32,
    transient: f64,
    peak: f64,
}

impl MemoryLedger {
    /// Creates a ledger with the iteration-resident base already charged.
    pub fn new(resident: f64, act_per_mb: f64) -> Self {
        assert!(resident >= 0.0 && act_per_mb >= 0.0);
        MemoryLedger {
            resident,
            act_per_mb,
            stashed_microbatches: 0,
            transient: 0.0,
            peak: resident,
        }
    }

    fn track(&mut self) {
        let current = self.current();
        if current > self.peak {
            self.peak = current;
        }
    }

    /// Current usage in bytes.
    pub fn current(&self) -> f64 {
        self.resident + self.stashed_microbatches as f64 * self.act_per_mb + self.transient
    }

    /// A task started: its transient working set is live.
    pub fn task_started(&mut self, transient: f64) {
        self.transient = transient;
        // A forward's stash builds up *while* it runs; charge it up front
        // so the peak includes stash + transient coexistence.
        self.track();
    }

    /// A forward task finished: its microbatch's stash is now resident.
    pub fn forward_done(&mut self) {
        self.stashed_microbatches += 1;
        self.track();
        self.transient = 0.0;
    }

    /// A backward task finished: its microbatch's stash is freed.
    ///
    /// # Panics
    ///
    /// Panics if no stash is outstanding (scheduling bug).
    pub fn backward_done(&mut self) {
        assert!(self.stashed_microbatches > 0, "backward without a stash");
        self.stashed_microbatches -= 1;
        self.transient = 0.0;
    }

    /// High-water mark so far.
    pub fn peak(&self) -> f64 {
        self.peak
    }

    /// Outstanding stashed microbatches (must be 0 at iteration end).
    pub fn outstanding(&self) -> u32 {
        self.stashed_microbatches
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peak_includes_stacked_microbatches_and_transient() {
        let mut m = MemoryLedger::new(100.0, 10.0);
        // Two forwards, then a backward.
        m.task_started(5.0);
        m.forward_done();
        m.task_started(5.0);
        m.forward_done();
        // Peak so far: the second forward's stash lands while its
        // transient is still live — 100 + 2·10 + 5 = 125.
        assert_eq!(m.peak(), 125.0);
        m.task_started(7.0);
        // 100 + 20 + 7 = 127.
        assert_eq!(m.peak(), 127.0);
        m.backward_done();
        assert_eq!(m.current(), 110.0);
        assert_eq!(m.outstanding(), 1);
    }

    #[test]
    #[should_panic(expected = "backward without a stash")]
    fn backward_underflow_is_a_bug() {
        let mut m = MemoryLedger::new(0.0, 1.0);
        m.backward_done();
    }

    #[test]
    fn resident_counts_from_the_start() {
        let m = MemoryLedger::new(42.0, 1.0);
        assert_eq!(m.peak(), 42.0);
        assert_eq!(m.current(), 42.0);
    }
}
