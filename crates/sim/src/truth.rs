//! Hidden ground-truth execution law.
//!
//! Real hardware has interference behaviour nobody hands you as a table —
//! you benchmark it. This module plays the role of the hardware: a
//! slowdown-factor law whose coefficients deliberately differ from the
//! analyzer's priors, plus deterministic per-task execution jitter
//! (seeded, so experiments reproduce bit-for-bit).

use mist_hardware::Platform;
use mist_interference::InterferenceModel;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The simulator's execution law.
#[derive(Debug, Clone)]
pub struct GroundTruth {
    model: InterferenceModel,
    /// Relative amplitude of per-task jitter.
    jitter: f64,
    seed: u64,
}

impl GroundTruth {
    /// Ground truth for a platform. The factors are intentionally *not*
    /// the analyzer defaults (`pcie_defaults` / `nvlink_defaults`): the
    /// gap is what interference fitting has to close.
    pub fn for_platform(platform: Platform) -> Self {
        let model = match platform {
            Platform::GcpL4 => InterferenceModel::from_pairwise(|i, j| match (i, j) {
                (0, 1) => 1.11,
                (0, 2) | (0, 3) => 1.05,
                (1, 0) => 1.15,
                (1, 2) | (1, 3) | (2, 1) | (3, 1) => 1.55,
                (2, 3) | (3, 2) => 1.10,
                (2, 0) | (3, 0) => 1.07,
                _ => 1.0,
            }),
            Platform::AwsA100 => InterferenceModel::from_pairwise(|i, j| match (i, j) {
                (0, 1) => 1.06,
                (0, 2) | (0, 3) => 1.04,
                (1, 0) => 1.10,
                (1, 2) | (1, 3) | (2, 1) | (3, 1) => 1.07,
                (2, 3) | (3, 2) => 1.09,
                (2, 0) | (3, 0) => 1.06,
                _ => 1.0,
            }),
        };
        GroundTruth {
            model,
            jitter: 0.01,
            seed: platform_seed(platform),
        }
    }

    /// A jitter-free ground truth (unit tests of exact quantities).
    pub fn noiseless(platform: Platform) -> Self {
        let mut gt = Self::for_platform(platform);
        gt.jitter = 0.0;
        gt
    }

    /// The hidden interference model (exposed for tests only; the tuner
    /// must never consult it directly).
    pub fn hidden_model(&self) -> &InterferenceModel {
        &self.model
    }

    /// Executes one task: resolves the four stream busy-times
    /// `[compute, nccl, d2h, h2d]` into wall-clock seconds, with
    /// deterministic jitter keyed by `(stage, microbatch, phase)`.
    pub fn task_time(&self, streams: [f64; 4], stage: u32, microbatch: u32, is_bwd: bool) -> f64 {
        // The interference model orders streams [c, nccl, h2d, d2h].
        let tuple = [streams[0], streams[1], streams[3], streams[2]];
        let base = self.model.predict(tuple);
        if self.jitter == 0.0 {
            return base;
        }
        let key = self
            .seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add((stage as u64) << 34)
            .wrapping_add((microbatch as u64) << 2)
            .wrapping_add(is_bwd as u64);
        let mut rng = StdRng::seed_from_u64(key);
        base * (1.0 + rng.gen_range(-self.jitter..self.jitter))
    }

    /// Allocator overhead factor applied to measured peak memory —
    /// caching allocators round allocations and fragment slightly.
    pub fn allocator_overhead(&self) -> f64 {
        1.015
    }
}

fn platform_seed(platform: Platform) -> u64 {
    match platform {
        Platform::GcpL4 => 0x4C34,
        Platform::AwsA100 => 0xA100,
    }
}

/// Runs the interference micro-benchmark campaign: samples `n` random
/// co-running stream mixes and "measures" them on the ground truth —
/// the input to `mist_interference::fit` (paper §5.2.2's data-driven
/// approach).
pub fn benchmark_interference(platform: Platform, n: usize, seed: u64) -> Vec<([f64; 4], f64)> {
    let truth = GroundTruth::for_platform(platform);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(n);
    while out.len() < n {
        let mut x = [0.0f64; 4];
        for v in x.iter_mut() {
            if rng.gen_bool(0.65) {
                *v = rng.gen_range(0.2e-3..30e-3);
            }
        }
        if x.iter().all(|v| *v == 0.0) {
            continue;
        }
        // Benchmarks run each mix in isolation: jitter-free measurement
        // of the interference law itself.
        let y = truth.model.predict(x);
        out.push((x, y));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use mist_interference::fit;

    #[test]
    fn ground_truth_differs_from_analyzer_priors() {
        let truth = GroundTruth::noiseless(Platform::GcpL4);
        let prior = InterferenceModel::pcie_defaults();
        let x = [5e-3, 5e-3, 5e-3, 0.0];
        let a = truth.task_time(x, 0, 0, false);
        let b = prior.predict([x[0], x[1], x[3], x[2]]);
        assert!((a - b).abs() / b > 0.005, "truth and prior too similar");
    }

    #[test]
    fn jitter_is_deterministic_and_bounded() {
        let truth = GroundTruth::for_platform(Platform::GcpL4);
        let x = [10e-3, 1e-3, 0.0, 0.0];
        let t1 = truth.task_time(x, 3, 7, true);
        let t2 = truth.task_time(x, 3, 7, true);
        assert_eq!(t1, t2);
        let clean = GroundTruth::noiseless(Platform::GcpL4).task_time(x, 3, 7, true);
        assert!((t1 - clean).abs() / clean <= 0.01 + 1e-12);
        // Different tasks get different jitter.
        let t3 = truth.task_time(x, 3, 8, true);
        assert_ne!(t1, t3);
    }

    #[test]
    fn fitting_closes_the_gap_to_ground_truth() {
        // The full data-driven loop of §5.2.2: benchmark → fit → predict.
        let samples = benchmark_interference(Platform::GcpL4, 500, 42);
        let prior = InterferenceModel::pcie_defaults();
        let (_fitted, report) = fit(&prior, &samples, 4000, 7);
        assert!(
            report.final_error < 0.03,
            "fitted error {} should be small",
            report.final_error
        );
        assert!(report.final_error < report.initial_error);
    }

    #[test]
    fn a100_truth_is_gentler_than_l4() {
        let l4 = GroundTruth::noiseless(Platform::GcpL4);
        let a100 = GroundTruth::noiseless(Platform::AwsA100);
        let x = [5e-3, 5e-3, 5e-3, 5e-3];
        assert!(a100.task_time(x, 0, 0, false) < l4.task_time(x, 0, 0, false));
    }
}
