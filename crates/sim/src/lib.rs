//! Discrete-event multi-GPU training simulator.
//!
//! This crate is the synthetic substitute for the paper's physical
//! testbeds: it *executes* an [`IterationSchedule`] event by event —
//! per-stage 1F1B task ordering, cross-stage activation/gradient
//! dependencies, per-task engine occupancy — and reports measured
//! iteration time and per-stage peak memory. The symbolic analyzer's
//! predictions are validated against these measurements exactly as the
//! paper validates against real runs (§6.6).
//!
//! To keep the measurement honest, the simulator owns a *hidden*
//! ground-truth interference law ([`GroundTruth`]) whose slowdown factors
//! differ from the analyzer defaults and which adds deterministic
//! per-task jitter; the analyzer's interference model must be *fitted* to
//! benchmark samples produced by [`benchmark_interference`] — the same
//! data-driven loop the paper runs on real hardware.

mod ledger;
mod run;
mod trace;
mod truth;

pub use ledger::MemoryLedger;
pub use run::{simulate, SimReport, TaskKind, TaskRecord};
pub use trace::STREAM_LANES;
pub use truth::{benchmark_interference, GroundTruth};
