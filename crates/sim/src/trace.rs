//! Lowers a [`SimReport`]'s task trace into Chrome Trace Event Format.
//!
//! Each pipeline stage becomes one process track and each of its four
//! hardware streams one thread lane, so the paper's overlap story —
//! NCCL/offload traffic hiding under compute (Fig. 7/13) — is visible
//! directly in Perfetto or `chrome://tracing`.

use mist_telemetry::{ArgValue, TraceBuilder};

use crate::run::{SimReport, TaskKind};

/// Thread-lane names, in [`crate::TaskRecord::streams`] order.
pub const STREAM_LANES: [&str; 4] = ["compute", "nccl", "d2h", "h2d"];

fn kind_label(kind: TaskKind) -> &'static str {
    match kind {
        TaskKind::FirstExtra => "first-extra",
        TaskKind::Forward => "forward",
        TaskKind::Backward => "backward",
    }
}

impl SimReport {
    /// Appends this report's Gantt onto `trace`: stage `s` becomes
    /// process `base_pid + s` with one thread lane per stream.
    ///
    /// A task contributes a slice `[start, start + busy]` to every lane
    /// whose stream it keeps busy; the interference law guarantees the
    /// task's wall-clock covers each stream's busy time, so lane slices
    /// stay inside the task window. The one exception is
    /// [`TaskKind::FirstExtra`], whose record spans only its *marginal*
    /// cost — its lane slices are clamped to the task window so every
    /// lane stays monotone.
    pub fn export_chrome_trace(&self, trace: &mut TraceBuilder, base_pid: i64) {
        let n_stages = self.stage_peak_mem.len();
        for s in 0..n_stages {
            let pid = base_pid + s as i64;
            trace.process_name(pid, &format!("stage {s}"));
            for (tid, lane) in STREAM_LANES.iter().enumerate() {
                trace.thread_name(pid, tid as i64, lane);
            }
        }

        // (pid, tid, ts_us, is_begin, record index); at equal ts on one
        // lane an end sorts before the next begin.
        let mut events: Vec<(i64, i64, f64, bool, usize)> =
            Vec::with_capacity(self.records.len() * 4);
        for (ri, r) in self.records.iter().enumerate() {
            let wall = r.end - r.start;
            let pid = base_pid + r.stage as i64;
            for (tid, &busy) in r.streams.iter().enumerate() {
                let span = busy.min(wall);
                if span <= 0.0 {
                    continue;
                }
                events.push((pid, tid as i64, r.start * 1e6, true, ri));
                events.push((pid, tid as i64, (r.start + span) * 1e6, false, ri));
            }
        }
        events.sort_by(|a, b| {
            a.0.cmp(&b.0)
                .then(a.1.cmp(&b.1))
                .then(a.2.total_cmp(&b.2))
                .then(a.3.cmp(&b.3))
        });

        for (pid, tid, ts, is_begin, ri) in events {
            if is_begin {
                let r = &self.records[ri];
                trace.begin(
                    pid,
                    tid,
                    ts,
                    kind_label(r.kind),
                    &[("microbatch", ArgValue::U64(r.microbatch as u64))],
                );
            } else {
                trace.end(pid, tid, ts);
            }
        }
    }

    /// Renders this report alone as a Chrome Trace Event JSON document.
    pub fn to_chrome_trace(&self) -> String {
        let mut trace = TraceBuilder::new();
        self.export_chrome_trace(&mut trace, 0);
        trace.to_json()
    }
}
