//! The 1F1B discrete-event executor.
//!
//! Executes an [`IterationSchedule`] under the classic one-forward-
//! one-backward pipeline schedule: stage `s` runs `min(G, S−s)` warmup
//! forwards, then alternates backward/forward, then drains. Cross-stage
//! dependencies (activations flow down, gradients flow up) and per-stage
//! serial execution are enforced event by event; task durations come from
//! the hidden [`GroundTruth`] law.

use mist_schedule::{IterationSchedule, StageTask};
use serde::{Deserialize, Serialize};

use crate::ledger::MemoryLedger;
use crate::truth::GroundTruth;

/// Kind of a scheduled stage task.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TaskKind {
    /// The first-microbatch extras: the decoupled optimizer step
    /// repositioned before the first forward, state swap-ins and the
    /// updated-parameter all-gather (paper §5.1). Independent of upstream
    /// stages, so it runs inside the pipeline-fill bubble — the overlap
    /// credited by Eq. 1's third term.
    FirstExtra,
    /// Forward pass of one microbatch.
    Forward,
    /// Backward pass of one microbatch.
    Backward,
}

/// One executed task, for traces and Gantt-style dumps.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TaskRecord {
    /// Pipeline stage.
    pub stage: u32,
    /// Microbatch index.
    pub microbatch: u32,
    /// Forward or backward.
    pub kind: TaskKind,
    /// Start time (seconds from iteration start).
    pub start: f64,
    /// End time.
    pub end: f64,
    /// Per-stream busy time in seconds, ordered `[compute, nccl, d2h,
    /// h2d]`. `end - start` is the wall-clock the interference law
    /// resolved these to (except [`TaskKind::FirstExtra`], whose record
    /// spans only the *marginal* cost of co-running with the first
    /// forward).
    pub streams: [f64; 4],
}

/// Result of simulating one training iteration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SimReport {
    /// Measured wall-clock iteration time (seconds).
    pub iteration_time: f64,
    /// Measured peak memory per stage (bytes, includes allocator
    /// overhead).
    pub stage_peak_mem: Vec<f64>,
    /// Per-stage busy fraction (Σ task durations / iteration time).
    pub stage_utilization: Vec<f64>,
    /// Full task trace in execution order.
    pub records: Vec<TaskRecord>,
}

impl SimReport {
    /// Throughput in samples/second for a given global batch.
    pub fn throughput(&self, global_batch: u64) -> f64 {
        global_batch as f64 / self.iteration_time
    }

    /// Total bubble (idle) fraction across stages.
    pub fn bubble_fraction(&self) -> f64 {
        let s = self.stage_utilization.len() as f64;
        1.0 - self.stage_utilization.iter().sum::<f64>() / s
    }
}

/// Builds stage `s`'s 1F1B task order for `g` microbatches in an
/// `s_total`-stage pipeline.
fn one_f_one_b_order(stage: u32, s_total: u32, g: u32) -> Vec<(TaskKind, u32)> {
    let warmup = g.min(s_total - stage);
    let mut order = Vec::with_capacity(2 * g as usize + 1);
    order.push((TaskKind::FirstExtra, 0));
    for m in 0..warmup {
        order.push((TaskKind::Forward, m));
    }
    let mut next_f = warmup;
    let mut next_b = 0;
    while next_f < g {
        order.push((TaskKind::Backward, next_b));
        next_b += 1;
        order.push((TaskKind::Forward, next_f));
        next_f += 1;
    }
    while next_b < g {
        order.push((TaskKind::Backward, next_b));
        next_b += 1;
    }
    order
}

fn add4(a: [f64; 4], b: [f64; 4]) -> [f64; 4] {
    [a[0] + b[0], a[1] + b[1], a[2] + b[2], a[3] + b[3]]
}

fn task_streams(task: &StageTask, kind: TaskKind, mb: u32, g: u32) -> [f64; 4] {
    match kind {
        TaskKind::FirstExtra => task.first_extra,
        TaskKind::Forward => task.fwd,
        TaskKind::Backward if mb + 1 == g => add4(task.bwd, task.last_extra),
        TaskKind::Backward => task.bwd,
    }
}

/// Simulates one training iteration of `schedule` on the `truth` law.
///
/// # Panics
///
/// Panics on an internally inconsistent schedule (a scheduling deadlock
/// or stash underflow) — these indicate bugs, not user errors.
pub fn simulate(schedule: &IterationSchedule, truth: &GroundTruth) -> SimReport {
    let s_total = schedule.stages.len() as u32;
    let g = schedule.grad_accum;
    assert!(s_total >= 1 && g >= 1);
    let _span = mist_telemetry::span!("sim.simulate", stages = s_total, grad_accum = g);

    let orders: Vec<Vec<(TaskKind, u32)>> = (0..s_total)
        .map(|s| one_f_one_b_order(s, s_total, g))
        .collect();
    let mut next_idx = vec![0usize; s_total as usize];
    let mut free_at = vec![0.0f64; s_total as usize];
    let mut busy = vec![0.0f64; s_total as usize];
    let mut fwd_done = vec![vec![f64::NAN; g as usize]; s_total as usize];
    let mut bwd_done = vec![vec![f64::NAN; g as usize]; s_total as usize];
    let mut ledgers: Vec<MemoryLedger> = schedule
        .stages
        .iter()
        .map(|t| MemoryLedger::new(t.mem.resident, t.mem.act_per_mb))
        .collect();
    let mut records = Vec::with_capacity(2 * (g as usize) * s_total as usize);

    let total_tasks: usize = orders.iter().map(|o| o.len()).sum();
    let mut done = 0usize;
    while done < total_tasks {
        // Pick the schedulable task with the earliest start time.
        let mut best: Option<(u32, f64)> = None; // (stage, start)
        for s in 0..s_total as usize {
            if next_idx[s] >= orders[s].len() {
                continue;
            }
            let (kind, mb) = orders[s][next_idx[s]];
            let dep = match kind {
                TaskKind::FirstExtra => 0.0,
                TaskKind::Forward => {
                    if s == 0 {
                        0.0
                    } else {
                        fwd_done[s - 1][mb as usize]
                    }
                }
                TaskKind::Backward => {
                    if s + 1 == s_total as usize {
                        fwd_done[s][mb as usize]
                    } else {
                        bwd_done[s + 1][mb as usize]
                    }
                }
            };
            if dep.is_nan() {
                continue; // Dependency not yet scheduled.
            }
            let start = free_at[s].max(dep);
            if best.is_none_or(|(_, bs)| start < bs) {
                best = Some((s as u32, start));
            }
        }
        let (s, start) = best.expect("pipeline schedule deadlocked");
        let si = s as usize;
        let (kind, mb) = orders[si][next_idx[si]];
        next_idx[si] += 1;

        let streams = task_streams(&schedule.stages[si], kind, mb, g);
        // Under the overlap-centric schedule (Fig. 7), the first
        // microbatch's extras co-run with the first forward on separate
        // engines; their cost is the *marginal* wall-clock they add under
        // this simulator's own interference law, and the task is
        // schedulable inside the pipeline-fill bubble.
        let duration = if kind == TaskKind::FirstExtra {
            let fwd = truth.task_time(schedule.stages[si].fwd, s, mb, false);
            let merged = add4(schedule.stages[si].fwd, streams);
            (truth.task_time(merged, s, mb, false) - fwd).max(0.0)
        } else {
            truth.task_time(streams, s, mb, kind == TaskKind::Backward)
        };
        let end = start + duration;

        let transient = match kind {
            TaskKind::FirstExtra => 0.0,
            TaskKind::Forward => schedule.stages[si].mem.transient_fwd,
            TaskKind::Backward => schedule.stages[si].mem.transient_bwd,
        };
        ledgers[si].task_started(transient);
        match kind {
            TaskKind::FirstExtra => {}
            TaskKind::Forward => {
                ledgers[si].forward_done();
                fwd_done[si][mb as usize] = end;
            }
            TaskKind::Backward => {
                ledgers[si].backward_done();
                bwd_done[si][mb as usize] = end;
            }
        }
        free_at[si] = end;
        busy[si] += duration;
        records.push(TaskRecord {
            stage: s,
            microbatch: mb,
            kind,
            start,
            end,
            streams,
        });
        done += 1;
    }

    mist_telemetry::counter_add("sim.tasks_executed", total_tasks as u64);
    let iteration_time = free_at.iter().cloned().fold(0.0, f64::max);
    for l in &ledgers {
        assert_eq!(l.outstanding(), 0, "stash leaked across the iteration");
    }
    SimReport {
        iteration_time,
        stage_peak_mem: ledgers
            .iter()
            .map(|l| l.peak() * truth.allocator_overhead())
            .collect(),
        stage_utilization: busy.iter().map(|b| b / iteration_time).collect(),
        records,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mist_hardware::Platform;
    use mist_schedule::{StageMemory, StageTask};

    fn task(fwd_c: f64, bwd_c: f64) -> StageTask {
        StageTask {
            fwd: [fwd_c, 0.0, 0.0, 0.0],
            bwd: [bwd_c, 0.0, 0.0, 0.0],
            first_extra: [0.0; 4],
            last_extra: [0.0; 4],
            mem: StageMemory {
                resident: 100.0,
                act_per_mb: 10.0,
                transient_fwd: 1.0,
                transient_bwd: 2.0,
            },
        }
    }

    fn truth() -> GroundTruth {
        GroundTruth::noiseless(Platform::GcpL4)
    }

    #[test]
    fn order_is_one_f_one_b() {
        let o = one_f_one_b_order(0, 4, 6);
        // Extras, warmup 4, then B0 F4 B1 F5, then drain B2..B5.
        assert_eq!(o.len(), 13);
        assert_eq!(o[0], (TaskKind::FirstExtra, 0));
        assert_eq!(o[1], (TaskKind::Forward, 0));
        assert_eq!(o[4], (TaskKind::Forward, 3));
        assert_eq!(o[5], (TaskKind::Backward, 0));
        assert_eq!(o[6], (TaskKind::Forward, 4));
        assert_eq!(o[12], (TaskKind::Backward, 5));
        // Last stage has warmup 1.
        let o = one_f_one_b_order(3, 4, 6);
        assert_eq!(o[1], (TaskKind::Forward, 0));
        assert_eq!(o[2], (TaskKind::Backward, 0));
    }

    #[test]
    fn single_stage_time_is_sum_of_tasks() {
        let sched = IterationSchedule {
            grad_accum: 4,
            stages: vec![task(1.0, 2.0)],
        };
        let rep = simulate(&sched, &truth());
        assert!((rep.iteration_time - 4.0 * 3.0).abs() < 1e-9);
        assert!((rep.stage_utilization[0] - 1.0).abs() < 1e-9);
        assert_eq!(rep.records.len(), 9);
    }

    #[test]
    fn balanced_pipeline_matches_eq1() {
        // S equal stages, no deltas: (G−1)·(f+b) + S·(f+b).
        let s = 4;
        let g = 8;
        let sched = IterationSchedule {
            grad_accum: g,
            stages: (0..s).map(|_| task(1.0, 2.0)).collect(),
        };
        let rep = simulate(&sched, &truth());
        let want = (g - 1) as f64 * 3.0 + s as f64 * 3.0;
        assert!(
            (rep.iteration_time - want).abs() < 1e-9,
            "sim {} vs eq1 {want}",
            rep.iteration_time
        );
    }

    #[test]
    fn peak_memory_tracks_inflight_microbatches() {
        // Stage 0 of a 4-stage pipeline keeps 4 stashes in flight.
        let s = 4u32;
        let sched = IterationSchedule {
            grad_accum: 8,
            stages: (0..s).map(|_| task(1.0, 2.0)).collect(),
        };
        let rep = simulate(&sched, &truth());
        let overhead = truth().allocator_overhead();
        // Stage 0: resident 100 + 4 stashes + bwd transient 2.
        let want0 = (100.0 + 4.0 * 10.0 + 2.0) * overhead;
        assert!(
            (rep.stage_peak_mem[0] - want0).abs() < 1e-6,
            "stage0 {} want {want0}",
            rep.stage_peak_mem[0]
        );
        // Last stage keeps only 1 stash + its transient.
        let want3 = (100.0 + 10.0 + 2.0) * overhead;
        assert!((rep.stage_peak_mem[3] - want3).abs() < 1e-6);
        // Monotone: earlier stages hold more.
        for w in rep.stage_peak_mem.windows(2) {
            assert!(w[0] >= w[1] - 1e-9);
        }
    }

    #[test]
    fn first_and_last_extras_appear_once() {
        let mut t = task(1.0, 1.0);
        t.first_extra = [0.5, 0.0, 0.0, 0.0];
        t.last_extra = [0.25, 0.0, 0.0, 0.0];
        let sched = IterationSchedule {
            grad_accum: 4,
            stages: vec![t],
        };
        let rep = simulate(&sched, &truth());
        assert!((rep.iteration_time - (8.0 + 0.5 + 0.25)).abs() < 1e-9);
    }

    #[test]
    fn bottleneck_stage_sets_the_pace() {
        let sched = IterationSchedule {
            grad_accum: 16,
            stages: vec![task(1.0, 2.0), task(2.0, 4.0), task(1.0, 2.0)],
        };
        let rep = simulate(&sched, &truth());
        // Slow middle stage: iteration ≳ G · 6.
        assert!(rep.iteration_time >= 16.0 * 6.0);
        let u = &rep.stage_utilization;
        assert!(u[1] > u[0] && u[1] > u[2], "bottleneck busiest: {u:?}");
    }

    #[test]
    fn records_respect_dependencies() {
        let sched = IterationSchedule {
            grad_accum: 4,
            stages: (0..3).map(|_| task(1.0, 2.0)).collect(),
        };
        let rep = simulate(&sched, &truth());
        let find = |stage, kind, mb| {
            rep.records
                .iter()
                .find(|r| r.stage == stage && r.kind == kind && r.microbatch == mb)
                .unwrap()
        };
        for mb in 0..4 {
            for s in 1..3 {
                assert!(
                    find(s, TaskKind::Forward, mb).start
                        >= find(s - 1, TaskKind::Forward, mb).end - 1e-12
                );
            }
            for s in 0..2 {
                assert!(
                    find(s, TaskKind::Backward, mb).start
                        >= find(s + 1, TaskKind::Backward, mb).end - 1e-12
                );
            }
        }
    }

    #[test]
    fn interference_shows_up_in_measured_time() {
        let mut t = task(1.0, 2.0);
        t.fwd = [1.0, 0.8, 0.0, 0.0]; // NCCL overlapping compute.
        let sched = IterationSchedule {
            grad_accum: 2,
            stages: vec![t],
        };
        let rep = simulate(&sched, &truth());
        // Wall-clock per fwd must exceed max(1.0, 0.8) but stay below sum.
        let fwd = rep
            .records
            .iter()
            .find(|r| r.kind == TaskKind::Forward)
            .unwrap();
        let dur = fwd.end - fwd.start;
        assert!(dur > 1.0 && dur < 1.8, "dur {dur}");
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use mist_hardware::Platform;
    use mist_schedule::{StageMemory, StageTask};
    use proptest::prelude::*;

    fn task(fwd: f64, bwd: f64, extra: f64) -> StageTask {
        StageTask {
            fwd: [fwd, 0.0, 0.0, 0.0],
            bwd: [bwd, 0.0, 0.0, 0.0],
            first_extra: [extra, 0.0, 0.0, 0.0],
            last_extra: [extra / 2.0, 0.0, 0.0, 0.0],
            mem: StageMemory {
                resident: 10.0,
                act_per_mb: 1.0,
                transient_fwd: 0.5,
                transient_bwd: 0.7,
            },
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// Structural invariants of any simulation.
        #[test]
        fn simulation_invariants(
            s in 1usize..6,
            g in 1u32..10,
            fwd in 0.2f64..2.0,
            extra in 0.0f64..1.0,
        ) {
            let sched = IterationSchedule {
                grad_accum: g,
                stages: (0..s).map(|_| task(fwd, 2.0 * fwd, extra)).collect(),
            };
            let rep = simulate(&sched, &GroundTruth::noiseless(Platform::GcpL4));
            // One FirstExtra + G forwards + G backwards per stage.
            prop_assert_eq!(rep.records.len(), s * (2 * g as usize + 1));
            // Utilization bounded.
            for &u in &rep.stage_utilization {
                prop_assert!(u > 0.0 && u <= 1.0 + 1e-9, "utilization {u}");
            }
            // Tasks on one stage never overlap.
            for stage in 0..s as u32 {
                let mut spans: Vec<(f64, f64)> = rep
                    .records
                    .iter()
                    .filter(|r| r.stage == stage)
                    .map(|r| (r.start, r.end))
                    .collect();
                spans.sort_by(|a, b| a.0.total_cmp(&b.0));
                for w in spans.windows(2) {
                    prop_assert!(w[0].1 <= w[1].0 + 1e-12, "overlap on stage {stage}");
                }
            }
            // Peak memory at least resident, at most resident + all
            // stashes + worst transient (with allocator overhead).
            let t0 = &sched.stages[0];
            for &m in &rep.stage_peak_mem {
                prop_assert!(m >= t0.mem.resident);
                let cap = (t0.mem.resident
                    + g as f64 * t0.mem.act_per_mb
                    + t0.mem.transient_bwd.max(t0.mem.transient_fwd))
                    * 1.015
                    + 1e-9;
                prop_assert!(m <= cap, "peak {m} cap {cap}");
            }
        }

        /// Throughput decreases monotonically as stages slow down, and
        /// memory peaks are unaffected by timing.
        #[test]
        fn slower_is_never_faster(
            g in 1u32..8,
            f1 in 0.2f64..2.0,
            scale in 1.05f64..3.0,
        ) {
            let truth = GroundTruth::noiseless(Platform::GcpL4);
            let fast = IterationSchedule {
                grad_accum: g,
                stages: vec![task(f1, 2.0 * f1, 0.1)],
            };
            let slow = IterationSchedule {
                grad_accum: g,
                stages: vec![task(f1 * scale, 2.0 * f1 * scale, 0.1)],
            };
            let rf = simulate(&fast, &truth);
            let rs = simulate(&slow, &truth);
            prop_assert!(rs.iteration_time > rf.iteration_time);
            prop_assert_eq!(rs.stage_peak_mem[0], rf.stage_peak_mem[0]);
        }
    }
}
