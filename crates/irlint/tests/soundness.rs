//! Interval-analysis soundness: for random expression DAGs over random
//! sample points, (1) the proven root bounds must contain every finite
//! `eval_scalar` result, and (2) a program the linter passes as
//! division-safe (`may_nonfinite == false` at the root) must never
//! produce NaN or infinity on any sampled point.

use mist_irlint::{lint_program, sweep_facts, DomainMap, SymbolDomain, UnitRegistry};
use mist_symbolic::{specialize, CmpOp, Context, Expr, FrozenSymbols};
use proptest::prelude::*;

/// The fixed symbol universe: name, domain, integral sampling.
const SYMS: [(&str, f64, f64, bool); 4] = [
    ("a", 0.0, 10.0, true),
    ("b", -5.0, 5.0, false),
    ("c", 1.0, 8.0, true),
    ("d", 0.25, 4.0, false),
];

/// A generation recipe for one expression tree.
#[derive(Debug, Clone)]
enum Spec {
    Sym(usize),
    Const(f64),
    Add(Vec<Spec>),
    Mul(Box<Spec>, Box<Spec>),
    Min(Box<Spec>, Box<Spec>),
    Max(Box<Spec>, Box<Spec>),
    Div(Box<Spec>, Box<Spec>),
    Floor(Box<Spec>),
    Ceil(Box<Spec>),
    Cmp(usize, Box<Spec>, Box<Spec>),
    Select(Box<Spec>, Box<Spec>, Box<Spec>),
}

const CMP_OPS: [CmpOp; 4] = [CmpOp::Le, CmpOp::Lt, CmpOp::Ge, CmpOp::Gt];

fn build<'c>(ctx: &'c Context, spec: &Spec) -> Expr<'c> {
    match spec {
        Spec::Sym(i) => ctx.symbol(SYMS[*i].0),
        Spec::Const(c) => ctx.constant(*c),
        Spec::Add(parts) => {
            let mut it = parts.iter().map(|p| build(ctx, p));
            let first = it.next().expect("non-empty add");
            it.fold(first, |acc, x| acc + x)
        }
        Spec::Mul(a, b) => build(ctx, a) * build(ctx, b),
        Spec::Min(a, b) => build(ctx, a).min(build(ctx, b)),
        Spec::Max(a, b) => build(ctx, a).max(build(ctx, b)),
        Spec::Div(a, b) => build(ctx, a) / build(ctx, b),
        Spec::Floor(a) => build(ctx, a).floor(),
        Spec::Ceil(a) => build(ctx, a).ceil(),
        Spec::Cmp(op, a, b) => ctx.cmp(CMP_OPS[*op], build(ctx, a), build(ctx, b)),
        Spec::Select(c, a, b) => ctx.select(build(ctx, c), build(ctx, a), build(ctx, b)),
    }
}

fn spec_strategy() -> BoxedStrategy<Spec> {
    let leaf = prop_oneof![
        (0usize..SYMS.len()).prop_map(Spec::Sym),
        prop::sample::select(vec![-2.0, -0.5, 0.0, 0.5, 1.0, 3.0, 64.0]).prop_map(Spec::Const),
    ]
    .boxed();
    leaf.prop_recursive(5, 64, 3, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 2..4).prop_map(Spec::Add),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Spec::Mul(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Spec::Min(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Spec::Max(Box::new(a), Box::new(b))),
            // Divisors are symbols: the expression builder rejects
            // constant `x / 0` at build time, while `a` and `b` still
            // contain 0 in their domains, so division-by-zero analysis
            // stays exercised.
            (inner.clone(), 0usize..SYMS.len())
                .prop_map(|(a, s)| Spec::Div(Box::new(a), Box::new(Spec::Sym(s)))),
            inner.clone().prop_map(|a| Spec::Floor(Box::new(a))),
            inner.clone().prop_map(|a| Spec::Ceil(Box::new(a))),
            (0usize..CMP_OPS.len(), inner.clone(), inner.clone()).prop_map(|(op, a, b)| Spec::Cmp(
                op,
                Box::new(a),
                Box::new(b)
            )),
            (inner.clone(), inner.clone(), inner.clone()).prop_map(|(c, a, b)| Spec::Select(
                Box::new(c),
                Box::new(a),
                Box::new(b)
            )),
        ]
    })
}

/// Maps a unit-cube fraction to a point in symbol `i`'s domain,
/// honoring integrality.
fn domain_value(i: usize, f: f64) -> f64 {
    let (_, lo, hi, integral) = SYMS[i];
    if integral {
        (lo + (f * (hi - lo + 1.0)).floor()).min(hi)
    } else {
        lo + f * (hi - lo)
    }
}

/// Maps a unit-cube fraction to a point in each symbol's domain.
fn sample_point(fractions: &[f64; 4]) -> [f64; 4] {
    let mut point = [0.0; 4];
    for i in 0..SYMS.len() {
        point[i] = domain_value(i, fractions[i]);
    }
    point
}

fn all_domains() -> DomainMap {
    let mut domains = DomainMap::new();
    for &(name, lo, hi, integral) in &SYMS {
        domains = domains.declare(name, SymbolDomain::new(lo, hi, integral));
    }
    domains
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn interval_bounds_contain_sampled_evaluations(
        spec in spec_strategy(),
        fracs in prop::collection::vec((0.0f64..1.0, 0.0f64..1.0, 0.0f64..1.0, 0.0f64..1.0), 16),
    ) {
        let ctx = Context::new();
        let expr = build(&ctx, &spec);
        let program = ctx.compile_program(&[("root", expr)]);

        let domains = all_domains();
        let report = lint_program(&program, &UnitRegistry::new(), &domains, "prop");
        let bounds = &report.root_bounds[0];

        let names = program.symbols().names().to_vec();
        for fr in &fracs {
            let point = sample_point(&[fr.0, fr.1, fr.2, fr.3]);
            let inputs: Vec<f64> = names
                .iter()
                .map(|n| {
                    let i = SYMS.iter().position(|s| s.0 == n).expect("known symbol");
                    point[i]
                })
                .collect();
            match program.eval_scalar_root(0, &inputs) {
                Ok(v) => {
                    prop_assert!(
                        bounds.lo <= v && v <= bounds.hi,
                        "value {v} escapes proven bounds [{}, {}] at {point:?}",
                        bounds.lo,
                        bounds.hi
                    );
                }
                Err(_) => {
                    // A non-finite evaluation must have been anticipated:
                    // programs the linter passes as division-safe never
                    // produce NaN/Inf.
                    prop_assert!(
                        bounds.may_nonfinite,
                        "linter claimed division-safety but evaluation was \
                         non-finite at {point:?}"
                    );
                }
            }
        }
    }

    /// Fact-assisted specialization is exact on in-domain points: a
    /// residual built with [`sweep_facts`] (guard deletion *and* the
    /// interval-licensed zero-product collapse) must agree with the
    /// original program at every sampled in-domain point, for any
    /// in-domain frozen subset of the symbols.
    #[test]
    fn sweep_facts_specialization_is_exact_in_domain(
        spec in spec_strategy(),
        frozen_fracs in prop::collection::vec((0.0f64..1.0, 0.0f64..1.0), 4),
        fracs in prop::collection::vec((0.0f64..1.0, 0.0f64..1.0, 0.0f64..1.0, 0.0f64..1.0), 16),
    ) {
        let ctx = Context::new();
        let expr = build(&ctx, &spec);
        let program = ctx.compile_program(&[("root", expr)]);
        let domains = all_domains();
        let facts = sweep_facts(&program, &domains);

        // Roughly half the symbols freeze, each at an in-domain value —
        // the facts only hold inside the declared domains.
        let frozen = FrozenSymbols::new(
            frozen_fracs
                .iter()
                .enumerate()
                .filter(|&(_, &(_, pick))| pick >= 0.5)
                .map(|(i, &(f, _))| (SYMS[i].0, domain_value(i, f))),
        );
        let residual = specialize(&program, &frozen, &facts);

        let orig_names = program.symbols().names().to_vec();
        let res_names = residual.symbols().names().to_vec();
        for fr in &fracs {
            let point = sample_point(&[fr.0, fr.1, fr.2, fr.3]);
            let value_of = |n: &str| {
                frozen.get(n).unwrap_or_else(|| {
                    let i = SYMS.iter().position(|s| s.0 == n).expect("known symbol");
                    point[i]
                })
            };
            let orig_inputs: Vec<f64> = orig_names.iter().map(|n| value_of(n)).collect();
            let res_inputs: Vec<f64> = res_names.iter().map(|n| value_of(n)).collect();
            match (
                program.eval_scalar_root(0, &orig_inputs),
                residual.eval_scalar_root(0, &res_inputs),
            ) {
                // `==` semantics: the documented signed-zero exception
                // applies, NaN results surface as errors below.
                (Ok(a), Ok(b)) => prop_assert!(
                    a == b,
                    "original {a} vs specialized {b} at {point:?}, frozen {:?}",
                    frozen.pairs()
                ),
                (Err(_), Err(_)) => {}
                (o, s) => prop_assert!(
                    false,
                    "finiteness diverged: {o:?} vs {s:?} at {point:?}, frozen {:?}",
                    frozen.pairs()
                ),
            }
        }
    }
}
