//! Seeded defect fixtures: each of the three analyses must demonstrably
//! catch a planted bug, and must stay silent on the corrected program.

use mist_irlint::{lint_program, DomainMap, Severity, SymbolDomain, Unit, UnitRegistry};
use mist_symbolic::{CmpOp, Context};

fn has(report: &mist_irlint::LintReport, code: &str) -> bool {
    report.diagnostics.iter().any(|d| d.code == code)
}

#[test]
fn unit_inference_catches_bytes_plus_seconds() {
    let ctx = Context::new();
    let mem = ctx.symbol("mem");
    let time = ctx.symbol("time");
    // Planted bug: adds a memory footprint to a latency.
    let program = ctx.compile_program(&[("total", mem + time)]);

    let registry = UnitRegistry::new()
        .declare_symbol("mem", Unit::BYTES)
        .declare_symbol("time", Unit::SECONDS)
        .declare_root("total", Unit::BYTES);
    let domains = DomainMap::new()
        .declare("mem", SymbolDomain::new(0.0, 1e12, true))
        .declare("time", SymbolDomain::new(0.0, 100.0, false));

    let report = lint_program(&program, &registry, &domains, "fixture");
    assert!(!report.is_clean());
    assert!(has(&report, "unit-mismatch"), "{report}");
    let d = report
        .diagnostics
        .iter()
        .find(|d| d.code == "unit-mismatch")
        .unwrap();
    assert_eq!(d.severity, Severity::Error);
    assert_eq!(d.root.as_deref(), Some("total"), "anchored to its root");

    // Corrected program: scale seconds by a bytes/second bandwidth.
    let bw = ctx.symbol("bw");
    let fixed = ctx.compile_program(&[("total", mem + time * bw)]);
    let registry = registry.declare_symbol("bw", Unit::BYTES.divide(Unit::SECONDS));
    let domains = domains.declare("bw", SymbolDomain::new(1.0, 1e12, false));
    let report = lint_program(&fixed, &registry, &domains, "fixture");
    assert!(report.is_clean(), "{report}");
}

#[test]
fn unit_inference_catches_root_declaration_mismatch() {
    let ctx = Context::new();
    let time = ctx.symbol("time");
    let program = ctx.compile_program(&[("mem_peak", time * 2.0)]);
    let registry = UnitRegistry::new()
        .declare_symbol("time", Unit::SECONDS)
        .declare_root("mem_peak", Unit::BYTES);
    let domains = DomainMap::new().declare("time", SymbolDomain::new(0.0, 10.0, false));
    let report = lint_program(&program, &registry, &domains, "fixture");
    assert!(has(&report, "root-unit-mismatch"), "{report}");
}

#[test]
fn unit_inference_catches_eq_on_nonintegral_operands() {
    let ctx = Context::new();
    let ratio = ctx.symbol("ratio");
    let cond = ctx.cmp(CmpOp::Eq, ratio, ctx.constant(0.5));
    let program = ctx.compile_program(&[(
        "flag",
        ctx.select(cond, ctx.constant(1.0), ctx.constant(0.0)),
    )]);
    let registry = UnitRegistry::new()
        .declare_symbol("ratio", Unit::DIMENSIONLESS)
        .declare_root("flag", Unit::DIMENSIONLESS);
    let domains = DomainMap::new().declare("ratio", SymbolDomain::new(0.0, 1.0, false));
    let report = lint_program(&program, &registry, &domains, "fixture");
    assert!(has(&report, "eq-nonintegral"), "{report}");

    // Integral operands satisfy the documented `Eq` invariant.
    let level = ctx.symbol("level");
    let cond = ctx.cmp(CmpOp::Eq, level, ctx.constant(2.0));
    let ok = ctx.compile_program(&[(
        "flag",
        ctx.select(cond, ctx.constant(1.0), ctx.constant(0.0)),
    )]);
    let registry = UnitRegistry::new()
        .declare_symbol("level", Unit::DIMENSIONLESS)
        .declare_root("flag", Unit::DIMENSIONLESS);
    let domains = DomainMap::new().declare("level", SymbolDomain::new(0.0, 3.0, true));
    let report = lint_program(&ok, &registry, &domains, "fixture");
    assert!(report.is_clean(), "{report}");
}

#[test]
fn interval_analysis_catches_division_by_zero_in_domain() {
    let ctx = Context::new();
    let work = ctx.symbol("work");
    let workers = ctx.symbol("workers");
    let program = ctx.compile_program(&[("per_worker", work / workers)]);
    let registry = UnitRegistry::new()
        .declare_symbol("work", Unit::ELEMENTS)
        .declare_symbol("workers", Unit::ELEMENTS)
        .declare_root("per_worker", Unit::DIMENSIONLESS);
    // Planted bug: the sweep includes workers = 0.
    let bad = DomainMap::new()
        .declare("work", SymbolDomain::new(0.0, 1e6, true))
        .declare("workers", SymbolDomain::new(0.0, 64.0, true));
    let report = lint_program(&program, &registry, &bad, "fixture");
    assert!(has(&report, "div-by-zero"), "{report}");
    // The division also poisons the root's finiteness proof.
    assert!(has(&report, "root-nonfinite"), "{report}");

    let good = DomainMap::new()
        .declare("work", SymbolDomain::new(0.0, 1e6, true))
        .declare("workers", SymbolDomain::new(1.0, 64.0, true));
    let report = lint_program(&program, &registry, &good, "fixture");
    assert!(report.is_clean(), "{report}");
    assert_eq!(report.root_bounds[0].lo, 0.0);
    assert_eq!(report.root_bounds[0].hi, 1e6);
}

#[test]
fn interval_analysis_catches_provably_negative_root() {
    let ctx = Context::new();
    let x = ctx.symbol("x");
    let program = ctx.compile_program(&[("deficit", x - 100.0)]);
    let registry = UnitRegistry::new()
        .declare_symbol("x", Unit::ELEMENTS)
        .declare_root("deficit", Unit::ELEMENTS);
    let domains = DomainMap::new().declare("x", SymbolDomain::new(0.0, 10.0, true));
    let report = lint_program(&program, &registry, &domains, "fixture");
    assert!(has(&report, "root-negative"), "{report}");
    assert_eq!(report.error_count(), 1);
}

#[test]
fn ordering_constraint_proves_difference_nonnegative() {
    let ctx = Context::new();
    let l = ctx.symbol("L");
    let ckpt = ctx.symbol("ckpt");
    let program = ctx.compile_program(&[("unticked", (l - ckpt) * 3.0)]);
    let registry = UnitRegistry::new()
        .declare_symbol("L", Unit::ELEMENTS)
        .declare_symbol("ckpt", Unit::ELEMENTS)
        .declare_root("unticked", Unit::ELEMENTS);
    let base = DomainMap::new()
        .declare("L", SymbolDomain::new(1.0, 96.0, true))
        .declare("ckpt", SymbolDomain::new(0.0, 96.0, true));

    // Without the ordering fact the difference may look negative...
    let report = lint_program(&program, &registry, &base, "fixture");
    assert!(has(&report, "root-maybe-negative"), "{report}");

    // ...but ckpt <= L proves it non-negative over the sweep.
    let with_le = base.declare_le("ckpt", "L");
    let report = lint_program(&program, &registry, &with_le, "fixture");
    assert!(report.is_clean(), "{report}");
    assert_eq!(report.warning_count(), 0, "{report}");
    assert_eq!(report.root_bounds[0].lo, 0.0);
}

#[test]
fn dead_code_detection_catches_constant_guard_branch() {
    let ctx = Context::new();
    let zero = ctx.symbol("zero");
    let shard = ctx.symbol("shard");
    let full = ctx.symbol("full");
    // Guard `zero >= 1` is constant when the space only sweeps levels 1..=3,
    // so the else-branch (and `full`, read only there) is dead.
    let cond = ctx.cmp(CmpOp::Ge, zero, ctx.constant(1.0));
    let program = ctx.compile_program(&[("opt_mem", ctx.select(cond, shard, full))]);
    let registry = UnitRegistry::new()
        .declare_symbol("zero", Unit::DIMENSIONLESS)
        .declare_symbol("shard", Unit::BYTES)
        .declare_symbol("full", Unit::BYTES)
        .declare_root("opt_mem", Unit::BYTES);
    let narrow = DomainMap::new()
        .declare("zero", SymbolDomain::new(1.0, 3.0, true))
        .declare("shard", SymbolDomain::new(0.0, 1e9, true))
        .declare("full", SymbolDomain::new(0.0, 1e9, true));

    let report = lint_program(&program, &registry, &narrow, "fixture");
    assert!(has(&report, "dead-branch"), "{report}");
    assert!(has(&report, "dead-code"), "{report}");
    assert!(has(&report, "unused-symbol"), "{report}");
    let unused = report
        .diagnostics
        .iter()
        .find(|d| d.code == "unused-symbol")
        .unwrap();
    assert!(unused.message.contains("`full`"), "{}", unused.message);
    // Dead code is suspicious, not wrong: no errors.
    assert!(report.is_clean(), "{report}");

    // Over the full 0..=3 sweep both branches are live and nothing fires.
    let wide = DomainMap::new()
        .declare("zero", SymbolDomain::new(0.0, 3.0, true))
        .declare("shard", SymbolDomain::new(0.0, 1e9, true))
        .declare("full", SymbolDomain::new(0.0, 1e9, true));
    let report = lint_program(&program, &registry, &wide, "fixture");
    assert!(!has(&report, "dead-branch"), "{report}");
    assert!(!has(&report, "dead-code"), "{report}");
    assert!(!has(&report, "unused-symbol"), "{report}");
}

#[test]
fn report_sorts_errors_first_and_counts_by_severity() {
    let ctx = Context::new();
    let mem = ctx.symbol("mem");
    let time = ctx.symbol("time");
    let x = ctx.symbol("x");
    let program = ctx.compile_program(&[
        ("bad_sum", mem + time), // unit error
        ("ratio", mem / x),      // div-by-zero error over [0, 4]
    ]);
    let registry = UnitRegistry::new()
        .declare_symbol("mem", Unit::BYTES)
        .declare_symbol("time", Unit::SECONDS)
        .declare_symbol("x", Unit::DIMENSIONLESS)
        .declare_root("bad_sum", Unit::BYTES)
        .declare_root("ratio", Unit::BYTES);
    let domains = DomainMap::new()
        .declare("mem", SymbolDomain::new(0.0, 1e9, true))
        .declare("time", SymbolDomain::new(0.0, 9.0, false))
        .declare("x", SymbolDomain::new(0.0, 4.0, true));
    let report = lint_program(&program, &registry, &domains, "fixture");
    assert!(report.error_count() >= 2, "{report}");
    let sevs: Vec<Severity> = report.diagnostics.iter().map(|d| d.severity).collect();
    let mut sorted = sevs.clone();
    sorted.sort();
    assert_eq!(sevs, sorted, "diagnostics must be severity-sorted");
    let text = report.to_string();
    assert!(text.contains("error(s)"), "{text}");
}

#[test]
fn lint_emits_telemetry_counters_and_bound_gauges() {
    let ctx = Context::new();
    let cap = ctx.symbol("cap");
    let program = ctx.compile_program(&[("headroom", cap * 2.0)]);
    let registry = UnitRegistry::new()
        .declare_symbol("cap", Unit::BYTES)
        .declare_root("headroom", Unit::BYTES);
    let domains = DomainMap::new().declare("cap", SymbolDomain::new(0.0, 1e9, true));

    let collector = mist_telemetry::global();
    let baseline = collector.snapshot();
    collector.enable();
    let report = lint_program(&program, &registry, &domains, "telemetry-fixture");
    collector.disable();
    let delta = collector.snapshot_delta(&baseline);

    assert!(report.is_clean(), "{report}");
    // `>=` rather than `==`: the collector is process-global and other
    // tests in this binary may lint concurrently while it is enabled.
    assert!(delta.counters.get("irlint.programs").copied().unwrap_or(0) >= 1);
    let hi = delta
        .gauges
        .get("irlint.root_hi.headroom")
        .copied()
        .expect("per-root upper-bound gauge");
    assert_eq!(hi, 2e9);
}
