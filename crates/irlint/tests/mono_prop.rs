//! Property test: monotonicity verdicts agree with finite differences.
//!
//! Random expression DAGs over three symbols with mixed-sign domains
//! are analyzed, then evaluated along axis-aligned lines through
//! random domain points. A root claimed `Increasing` in a symbol must
//! never decrease along any line where only that symbol varies (the
//! claims are weak, so equality is fine); `Decreasing` mirrors;
//! `Constant` demands bit-equal values. `Unknown` claims nothing.
//! Constants are kept small enough that overflow is impossible, so a
//! non-finite evaluation can only arise from a division the analysis
//! already refused to classify; such lines are skipped.

use mist_irlint::{monotonicity, DomainMap, Mono, SymbolDomain};
use mist_symbolic::{CmpOp, Context, Expr, Program};
use proptest::prelude::*;

const SYMS: [&str; 3] = ["a", "b", "c"];
const DOMAINS: [(f64, f64); 3] = [(-4.0, 4.0), (0.5, 3.0), (-3.0, -0.5)];

/// Owned expression tree, lowered to a `Context` per test case
/// (`Expr` borrows its context, so proptest can't generate it
/// directly).
#[derive(Debug, Clone)]
enum Ast {
    Const(f64),
    Sym(usize),
    Add(Box<Ast>, Box<Ast>),
    Mul(Box<Ast>, Box<Ast>),
    Min(Box<Ast>, Box<Ast>),
    Max(Box<Ast>, Box<Ast>),
    Div(Box<Ast>, Box<Ast>),
    Floor(Box<Ast>),
    Ceil(Box<Ast>),
    Le(Box<Ast>, Box<Ast>),
    Ge(Box<Ast>, Box<Ast>),
    Select(Box<Ast>, Box<Ast>, Box<Ast>),
}

fn ast_strategy() -> impl Strategy<Value = Ast> {
    let leaf = prop_oneof![
        (-4.0f64..4.0).prop_map(Ast::Const),
        (0usize..SYMS.len()).prop_map(Ast::Sym),
    ];
    leaf.prop_recursive(4, 48, 3, |inner| {
        let pair = (inner.clone(), inner.clone());
        prop_oneof![
            pair.clone().prop_map(|(a, b)| Ast::Add(a.into(), b.into())),
            pair.clone().prop_map(|(a, b)| Ast::Mul(a.into(), b.into())),
            pair.clone().prop_map(|(a, b)| Ast::Min(a.into(), b.into())),
            pair.clone().prop_map(|(a, b)| Ast::Max(a.into(), b.into())),
            pair.clone().prop_map(|(a, b)| Ast::Div(a.into(), b.into())),
            inner.clone().prop_map(|a| Ast::Floor(a.into())),
            inner.clone().prop_map(|a| Ast::Ceil(a.into())),
            pair.clone().prop_map(|(a, b)| Ast::Le(a.into(), b.into())),
            pair.prop_map(|(a, b)| Ast::Ge(a.into(), b.into())),
            (inner.clone(), inner.clone(), inner).prop_map(|(c, a, b)| Ast::Select(
                c.into(),
                a.into(),
                b.into()
            )),
        ]
    })
}

fn lower<'c>(ctx: &'c Context, ast: &Ast) -> Expr<'c> {
    match ast {
        Ast::Const(v) => ctx.constant(*v),
        Ast::Sym(i) => ctx.symbol(SYMS[*i]),
        Ast::Add(a, b) => lower(ctx, a) + lower(ctx, b),
        Ast::Mul(a, b) => lower(ctx, a) * lower(ctx, b),
        Ast::Min(a, b) => lower(ctx, a).min(lower(ctx, b)),
        Ast::Max(a, b) => lower(ctx, a).max(lower(ctx, b)),
        Ast::Div(a, b) => lower(ctx, a) / lower(ctx, b),
        Ast::Floor(a) => lower(ctx, a).floor(),
        Ast::Ceil(a) => lower(ctx, a).ceil(),
        Ast::Le(a, b) => ctx.cmp(CmpOp::Le, lower(ctx, a), lower(ctx, b)),
        Ast::Ge(a, b) => ctx.cmp(CmpOp::Ge, lower(ctx, a), lower(ctx, b)),
        Ast::Select(c, a, b) => ctx.select(lower(ctx, c), lower(ctx, a), lower(ctx, b)),
    }
}

/// Evaluates the single root at a point given by per-symbol values;
/// `None` when the evaluation is non-finite.
fn eval_at(program: &Program, point: &[f64; 3]) -> Option<f64> {
    let table = program.symbols();
    let mut inputs = vec![0.0; table.len()];
    for (name, &v) in SYMS.iter().zip(point) {
        if let Some(i) = table.index_of(name) {
            inputs[i] = v;
        }
    }
    program.eval_scalar_root(0, &inputs).ok()
}

/// A coordinate inside symbol `s`'s domain from a unit sample.
fn coord(s: usize, t: f64) -> f64 {
    let (lo, hi) = DOMAINS[s];
    lo + (hi - lo) * t
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn verdicts_agree_with_finite_differences(
        ast in ast_strategy(),
        base in (0.0f64..1.0, 0.0f64..1.0, 0.0f64..1.0),
        lines in prop::collection::vec(0.0f64..1.0, 5 * SYMS.len()),
    ) {
        let ctx = Context::new();
        let expr = lower(&ctx, &ast);
        let program = ctx.compile_program(&[("root", expr)]);

        let mut domains = DomainMap::new();
        for (s, name) in SYMS.iter().enumerate() {
            let (lo, hi) = DOMAINS[s];
            domains = domains.declare(name, SymbolDomain::new(lo, hi, false));
        }
        let report = monotonicity(&program, &domains);

        for (s, name) in SYMS.iter().enumerate() {
            let verdict = report.verdict("root", name);
            if verdict == Mono::Unknown {
                continue;
            }
            // Points along the axis-aligned line varying only `s`,
            // sorted by the varying coordinate.
            let mut ts: Vec<f64> = lines[5 * s..5 * (s + 1)].to_vec();
            ts.sort_by(f64::total_cmp);
            let values: Vec<Option<f64>> = ts
                .iter()
                .map(|&t| {
                    let mut point = [coord(0, base.0), coord(1, base.1), coord(2, base.2)];
                    point[s] = coord(s, t);
                    eval_at(&program, &point)
                })
                .collect();
            if values.iter().any(Option::is_none) {
                continue; // non-finite evaluation: nothing to falsify
            }
            let values: Vec<f64> = values.into_iter().flatten().collect();
            for w in values.windows(2) {
                match verdict {
                    Mono::Constant => prop_assert_eq!(
                        w[0], w[1],
                        "claimed constant in {} but {} != {}", name, w[0], w[1]
                    ),
                    Mono::Increasing => prop_assert!(
                        w[1] >= w[0],
                        "claimed increasing in {} but {} -> {}", name, w[0], w[1]
                    ),
                    Mono::Decreasing => prop_assert!(
                        w[1] <= w[0],
                        "claimed decreasing in {} but {} -> {}", name, w[0], w[1]
                    ),
                    Mono::Unknown => unreachable!(),
                }
            }
        }
    }
}
