//! Generic abstract-interpretation framework over the SSA stream.
//!
//! Every analysis in this crate is an instance of the same recipe: pick
//! a join-semilattice of facts ([`Lattice`]), give a transfer function
//! per opcode ([`TransferFunction`]), and run the worklist driver
//! ([`fixpoint`]) until nothing changes. The driver owns iteration
//! order, change detection and dependency propagation; analyses own
//! only their domain semantics, which is what makes a new analysis (see
//! [`crate::mono`]) a single-file addition.
//!
//! # Contract
//!
//! * [`Lattice::bottom`] is the initial fact of every slot and must be
//!   the identity of [`Lattice::join`].
//! * Transfer functions must be *monotone* in the operand facts and the
//!   lattice must have finite height, or the driver may not terminate.
//! * Transfer functions must be deterministic: the driver guarantees a
//!   deterministic visit order (slots are seeded in direction order and
//!   re-queued FIFO), so the whole analysis — including anything the
//!   caller derives from the final facts — is reproducible bit for bit.
//!
//! Compiled [`Program`]s are SSA with operands always referring to
//! *earlier* slots, so a forward pass in slot order (or a backward pass
//! in reverse order) converges in a single sweep; the worklist exists
//! for generality and costs nothing in that common case.

use std::collections::VecDeque;

use mist_symbolic::{Instr, Program};

/// A join-semilattice of dataflow facts.
pub trait Lattice: Clone + PartialEq {
    /// The least element: the initial fact of every slot, and the
    /// identity of [`Lattice::join`].
    fn bottom() -> Self;
    /// The least upper bound of two facts.
    fn join(&self, other: &Self) -> Self;
}

/// Direction a dataflow analysis propagates facts in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Facts flow from operands to users (interval, unit, monotonicity).
    Forward,
    /// Facts flow from users to operands (liveness).
    Backward,
}

/// Read-only view of the fixpoint state handed to transfer functions.
pub struct FactEnv<'e, F> {
    program: &'e Program,
    facts: &'e [F],
    users: &'e [Vec<u32>],
}

impl<'e, F> FactEnv<'e, F> {
    /// The program under analysis.
    pub fn program(&self) -> &'e Program {
        self.program
    }

    /// The current fact of `slot` (bottom until first transferred).
    pub fn fact(&self, slot: u32) -> &F {
        &self.facts[slot as usize]
    }

    /// All current facts, indexed by slot.
    pub fn facts(&self) -> &'e [F] {
        self.facts
    }

    /// Slots whose instruction reads `slot` as an operand (one entry
    /// per operand occurrence, in slot order).
    pub fn users(&self, slot: u32) -> &'e [u32] {
        &self.users[slot as usize]
    }
}

/// An analysis: a fact lattice plus a per-instruction transfer function.
pub trait TransferFunction {
    /// The fact lattice this analysis computes over.
    type Fact: Lattice;

    /// Which way facts propagate.
    fn direction(&self) -> Direction;

    /// Recomputes the fact of `slot` from the current environment. For
    /// forward analyses the operand facts are final whenever the
    /// program is topologically ordered; backward analyses read
    /// [`FactEnv::users`] instead.
    fn transfer(
        &mut self,
        slot: u32,
        instr: Instr<'_>,
        env: &FactEnv<'_, Self::Fact>,
    ) -> Self::Fact;
}

/// Slots whose instructions read each slot, indexed by operand slot.
fn compute_users(program: &Program) -> Vec<Vec<u32>> {
    let mut users: Vec<Vec<u32>> = vec![Vec::new(); program.len()];
    for (slot, instr) in program.instrs().enumerate() {
        instr.for_each_operand(|op| users[op as usize].push(slot as u32));
    }
    users
}

/// Runs `analysis` to a fixpoint over `program` and returns the final
/// per-slot facts.
///
/// The worklist is seeded with every slot in direction order (forward:
/// ascending, backward: descending) and drained FIFO; when a slot's
/// fact changes, its dependents (users for forward analyses, operands
/// for backward ones) are re-queued. On a topologically ordered SSA
/// stream the seed pass already converges, so the driver's cost is one
/// transfer per slot plus the change checks.
pub fn fixpoint<T: TransferFunction>(program: &Program, analysis: &mut T) -> Vec<T::Fact> {
    let n = program.len();
    let users = compute_users(program);
    let mut facts: Vec<T::Fact> = vec![T::Fact::bottom(); n];
    let mut on_list = vec![true; n];
    let mut worklist: VecDeque<u32> = match analysis.direction() {
        Direction::Forward => (0..n as u32).collect(),
        Direction::Backward => (0..n as u32).rev().collect(),
    };
    while let Some(slot) = worklist.pop_front() {
        on_list[slot as usize] = false;
        let new = {
            let env = FactEnv {
                program,
                facts: &facts,
                users: &users,
            };
            analysis.transfer(slot, program.instr(slot as usize), &env)
        };
        if new != facts[slot as usize] {
            facts[slot as usize] = new;
            let mut requeue = |dep: u32| {
                if !on_list[dep as usize] {
                    on_list[dep as usize] = true;
                    worklist.push_back(dep);
                }
            };
            match analysis.direction() {
                Direction::Forward => {
                    for &u in &users[slot as usize] {
                        requeue(u);
                    }
                }
                Direction::Backward => {
                    program.instr(slot as usize).for_each_operand(requeue);
                }
            }
        }
    }
    facts
}

#[cfg(test)]
mod tests {
    use super::*;
    use mist_symbolic::Context;

    /// Reaching-symbols analysis: the set of symbol indices a slot
    /// depends on, as a bitmask. Exercises the driver with a lattice
    /// none of the production analyses use.
    struct ReachingSyms;

    impl Lattice for u64 {
        fn bottom() -> Self {
            0
        }
        fn join(&self, other: &Self) -> Self {
            self | other
        }
    }

    impl TransferFunction for ReachingSyms {
        type Fact = u64;
        fn direction(&self) -> Direction {
            Direction::Forward
        }
        fn transfer(&mut self, _slot: u32, instr: Instr<'_>, env: &FactEnv<'_, u64>) -> u64 {
            if let Instr::Sym(i) = instr {
                return 1 << i;
            }
            let mut acc = 0u64;
            instr.for_each_operand(|op| acc |= env.fact(op));
            acc
        }
    }

    #[test]
    fn forward_fixpoint_reaches_all_operand_symbols() {
        let ctx = Context::new();
        let a = ctx.symbol("a");
        let b = ctx.symbol("b");
        let program = ctx.compile_program(&[("root", a * b + a)]);
        let facts = fixpoint(&program, &mut ReachingSyms);
        let root = program.root_slots()[0] as usize;
        let na = program.symbols().index_of("a").unwrap();
        let nb = program.symbols().index_of("b").unwrap();
        assert_eq!(facts[root], (1 << na) | (1 << nb));
    }
}
