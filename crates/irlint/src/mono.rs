//! Monotonicity (sensitivity-sign) analysis.
//!
//! For every root and every symbol the analysis derives a [`Mono`]
//! verdict: is the root provably non-decreasing, non-increasing, or
//! constant as that symbol sweeps its domain with every other symbol
//! held fixed? Verdicts compose operator monotonicity with interval
//! signs from [`crate::AbstractValue`]: a product is direction-
//! preserving when its factors are sign-definite, a quotient flips
//! through the denominator, a `Select` is directional when its guard
//! is sign-definite and its branches are provably ordered.
//!
//! The claims are deliberately *weak* (non-strict) and hold for the
//! program's actual `f64` evaluation, not just its real-number
//! reading: every rule is a composition of coordinatewise-monotone
//! floating-point operations, so `Increasing` means the evaluated
//! value never decreases when the symbol increases. This is what lets
//! the tuner treat a verdict as a proof: if a memory root is
//! `Increasing` in `inflight` and already over budget at some
//! inflight depth, every deeper depth is out of budget too, and the
//! sweep may skip it without evaluating. No algebraic cancellation is
//! attempted — summing terms with mixed-sign coefficients can locally
//! reverse direction under rounding, so such sums honestly report
//! [`Mono::Unknown`].

use std::fmt;

use mist_symbolic::{CmpOp, Instr, Program};

use crate::diag::Severity;
use crate::domain::DomainMap;
use crate::framework::{self, Direction, FactEnv, Lattice, TransferFunction};
use crate::interval::{self, guard_constant, mul_pair, AbstractValue};

/// The direction a value provably moves as one symbol increases.
///
/// Verdicts are weak: `Increasing` means *non-decreasing*,
/// `Decreasing` means *non-increasing*, and `Constant` satisfies
/// both. `Unknown` is the honest top — no direction could be proved.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Mono {
    /// The value does not depend on the symbol.
    Constant,
    /// The value never decreases as the symbol increases.
    Increasing,
    /// The value never increases as the symbol increases.
    Decreasing,
    /// No direction could be proved.
    Unknown,
}

impl Mono {
    /// The verdict of the negated value: swaps `Increasing` and
    /// `Decreasing`, fixes `Constant` and `Unknown`.
    pub fn flip(self) -> Mono {
        match self {
            Mono::Increasing => Mono::Decreasing,
            Mono::Decreasing => Mono::Increasing,
            other => other,
        }
    }

    /// Least upper bound in the verdict lattice
    /// (`Constant ⊑ Increasing, Decreasing ⊑ Unknown`). Also the
    /// transfer for sums, minima and maxima: agreeing directions
    /// survive, disagreeing ones become `Unknown`.
    pub fn join(self, other: Mono) -> Mono {
        match (self, other) {
            (Mono::Constant, x) | (x, Mono::Constant) => x,
            (Mono::Increasing, Mono::Increasing) => Mono::Increasing,
            (Mono::Decreasing, Mono::Decreasing) => Mono::Decreasing,
            _ => Mono::Unknown,
        }
    }

    /// Whether the value provably never decreases as the symbol
    /// increases (`Constant` or `Increasing`).
    pub fn non_decreasing(self) -> bool {
        matches!(self, Mono::Constant | Mono::Increasing)
    }

    /// Whether the value provably never increases as the symbol
    /// increases (`Constant` or `Decreasing`).
    pub fn non_increasing(self) -> bool {
        matches!(self, Mono::Constant | Mono::Decreasing)
    }
}

impl fmt::Display for Mono {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Mono::Constant => "constant",
            Mono::Increasing => "increasing",
            Mono::Decreasing => "decreasing",
            Mono::Unknown => "unknown",
        })
    }
}

/// Per-slot fact: one verdict per symbol, in symbol-table order. The
/// empty vector is the lattice bottom (join identity); every
/// transferred slot carries a full vector.
#[derive(Debug, Clone, PartialEq)]
struct MonoFact {
    per_sym: Vec<Mono>,
}

impl Lattice for MonoFact {
    fn bottom() -> Self {
        MonoFact {
            per_sym: Vec::new(),
        }
    }
    fn join(&self, other: &Self) -> Self {
        if self.per_sym.is_empty() {
            return other.clone();
        }
        if other.per_sym.is_empty() {
            return self.clone();
        }
        MonoFact {
            per_sym: self
                .per_sym
                .iter()
                .zip(&other.per_sym)
                .map(|(&a, &b)| a.join(b))
                .collect(),
        }
    }
}

/// Whether `v` is provably non-negative over the whole domain.
fn nonneg(v: AbstractValue) -> bool {
    !v.may_nonfinite && v.lo >= 0.0
}

/// Whether `v` is provably non-positive over the whole domain.
fn nonpos(v: AbstractValue) -> bool {
    !v.may_nonfinite && v.hi <= 0.0
}

/// Direction of `factor * g` when `factor` is constant in the symbol:
/// a sign-definite factor preserves or flips `g`'s direction.
fn scale_by_sign(factor: AbstractValue, g: Mono) -> Mono {
    if g == Mono::Constant {
        Mono::Constant
    } else if nonneg(factor) {
        g
    } else if nonpos(factor) {
        g.flip()
    } else {
        Mono::Unknown
    }
}

/// Direction of `f * g` in one symbol, given each factor's direction
/// and value interval. Sound for the floating-point product because
/// multiplication is coordinatewise monotone and the sign conditions
/// make both normalized factors non-negative and non-decreasing.
fn mul_mono(mf: Mono, vf: AbstractValue, mg: Mono, vg: AbstractValue) -> Mono {
    match (mf, mg) {
        (Mono::Constant, Mono::Constant) => Mono::Constant,
        (Mono::Constant, g) => scale_by_sign(vf, g),
        (f, Mono::Constant) => scale_by_sign(vg, f),
        (Mono::Unknown, _) | (_, Mono::Unknown) => Mono::Unknown,
        (f, g) => {
            // Both factors vary. Normalize each sign-definite factor
            // to a non-negative one (flipping its direction when the
            // factor is non-positive); the product of two non-negative
            // factors follows their common direction, and each
            // normalization flips the result once.
            let mut flips = 0u32;
            let f = if nonneg(vf) {
                f
            } else if nonpos(vf) {
                flips += 1;
                f.flip()
            } else {
                return Mono::Unknown;
            };
            let g = if nonneg(vg) {
                g
            } else if nonpos(vg) {
                flips += 1;
                g.flip()
            } else {
                return Mono::Unknown;
            };
            let base = match (f, g) {
                (Mono::Increasing, Mono::Increasing) => Mono::Increasing,
                (Mono::Decreasing, Mono::Decreasing) => Mono::Decreasing,
                _ => return Mono::Unknown,
            };
            if flips % 2 == 1 {
                base.flip()
            } else {
                base
            }
        }
    }
}

/// Direction of the guard indicator `[c != 0]` in one symbol. Sound
/// when the guard is sign-definite: over `c >= 0` the indicator is
/// `[c > 0]`, which moves with `c`; over `c <= 0` it is `[c < 0]`,
/// which moves against it.
fn indicator_dir(vc: AbstractValue, mc: Mono) -> Mono {
    if mc == Mono::Constant {
        return Mono::Constant;
    }
    if vc.may_nonfinite {
        return Mono::Unknown;
    }
    if vc.lo >= 0.0 {
        mc
    } else if vc.hi <= 0.0 {
        mc.flip()
    } else {
        Mono::Unknown
    }
}

/// The forward monotonicity instance. Consumes the final facts of a
/// prior interval run for the sign and branch-ordering side
/// conditions.
struct MonoAnalysis<'p> {
    values: &'p [AbstractValue],
    nsyms: usize,
}

impl MonoAnalysis<'_> {
    /// The verdict of `fact` for symbol `s`, tolerating the bottom
    /// (empty) fact a not-yet-visited operand would carry.
    fn at(fact: &MonoFact, s: usize) -> Mono {
        fact.per_sym.get(s).copied().unwrap_or(Mono::Unknown)
    }

    fn constant_fact(&self) -> MonoFact {
        MonoFact {
            per_sym: vec![Mono::Constant; self.nsyms],
        }
    }

    /// Pointwise fold of [`Mono::join`] over `ops` — the transfer for
    /// sums, minima and maxima.
    fn fold_join(&self, ops: &[u32], env: &FactEnv<'_, MonoFact>) -> MonoFact {
        let mut acc = self.constant_fact();
        for &op in ops {
            let f = env.fact(op);
            for (s, m) in acc.per_sym.iter_mut().enumerate() {
                *m = m.join(Self::at(f, s));
            }
        }
        acc
    }

    /// The quotient transfer — shared between `Div` and the fused
    /// `DivFloor`/`DivCeil` superinstructions.
    fn div_fact(&self, a: u32, b: u32, env: &FactEnv<'_, MonoFact>) -> MonoFact {
        let (fa, fb) = (env.fact(a), env.fact(b));
        let (va, vb) = (self.values[a as usize], self.values[b as usize]);
        let sign_definite = !vb.may_nonfinite && (vb.lo > 0.0 || vb.hi < 0.0);
        let per_sym = (0..self.nsyms)
            .map(|s| {
                let (ma, mb) = (Self::at(fa, s), Self::at(fb, s));
                if ma == Mono::Constant && mb == Mono::Constant {
                    return Mono::Constant;
                }
                if !sign_definite {
                    return Mono::Unknown;
                }
                // x → 1/x is antitone on each sign-definite
                // half-line, so the quotient is the product of
                // the numerator with a flipped-direction
                // reciprocal whose interval is [1/hi, 1/lo].
                let recip = AbstractValue {
                    lo: 1.0 / vb.hi,
                    hi: 1.0 / vb.lo,
                    integral: false,
                    may_nonfinite: false,
                };
                mul_mono(ma, va, mb.flip(), recip)
            })
            .collect();
        MonoFact { per_sym }
    }

    /// The comparison-indicator transfer — shared between `Cmp` and
    /// the guard of the fused `SelectCmp` superinstruction.
    fn cmp_fact(&self, op: CmpOp, a: u32, b: u32, env: &FactEnv<'_, MonoFact>) -> MonoFact {
        let (fa, fb) = (env.fact(a), env.fact(b));
        let (va, vb) = (self.values[a as usize], self.values[b as usize]);
        let ordered = !va.may_nonfinite && !vb.may_nonfinite;
        let per_sym = (0..self.nsyms)
            .map(|s| {
                let (ma, mb) = (Self::at(fa, s), Self::at(fb, s));
                if ma == Mono::Constant && mb == Mono::Constant {
                    return Mono::Constant;
                }
                if !ordered {
                    return Mono::Unknown;
                }
                match op {
                    // [a <= b] moves with b - a: it needs b
                    // non-decreasing and a non-increasing (or
                    // the mirror image) to be directional.
                    CmpOp::Le | CmpOp::Lt => ma.flip().join(mb),
                    CmpOp::Ge | CmpOp::Gt => mb.flip().join(ma),
                    CmpOp::Eq => Mono::Unknown,
                }
            })
            .collect();
        MonoFact { per_sym }
    }

    fn transfer_select(&self, c: u32, a: u32, b: u32, env: &FactEnv<'_, MonoFact>) -> MonoFact {
        self.select_with_guard(self.values[c as usize], env.fact(c), a, b, env)
    }

    /// Select transfer with the guard's interval and fact supplied by
    /// the caller — shared between `Select` (whose guard is a slot)
    /// and `SelectCmp` (whose guard is the fused comparison).
    fn select_with_guard(
        &self,
        vc: AbstractValue,
        fc: &MonoFact,
        a: u32,
        b: u32,
        env: &FactEnv<'_, MonoFact>,
    ) -> MonoFact {
        // A guard the interval analysis proved constant pins the
        // program to one branch over the whole domain; the fact is
        // that branch's fact, exactly.
        if let Some(taken_then) = guard_constant(vc) {
            let taken = if taken_then { a } else { b };
            let f = env.fact(taken);
            if f.per_sym.is_empty() {
                return self.constant_fact();
            }
            return f.clone();
        }
        let (fa, fb) = (env.fact(a), env.fact(b));
        let (va, vb) = (self.values[a as usize], self.values[b as usize]);
        let per_sym = (0..self.nsyms)
            .map(|s| {
                let (ma, mb) = (Self::at(fa, s), Self::at(fb, s));
                match indicator_dir(vc, Self::at(fc, s)) {
                    // The chooser is fixed along any line where only
                    // this symbol varies, so the value follows one
                    // branch function along it.
                    Mono::Constant => ma.join(mb),
                    Mono::Unknown => Mono::Unknown,
                    dir @ (Mono::Increasing | Mono::Decreasing) => {
                        // Directional switch between two branches that
                        // are constant in the symbol: sound when the
                        // intervals prove the branch ordering.
                        if ma != Mono::Constant
                            || mb != Mono::Constant
                            || va.may_nonfinite
                            || vb.may_nonfinite
                        {
                            return Mono::Unknown;
                        }
                        // dir == Increasing: else(b) then then(a).
                        let (from, to) = if dir == Mono::Increasing {
                            (vb, va)
                        } else {
                            (va, vb)
                        };
                        let step_up = from.hi <= to.lo;
                        let step_down = to.hi <= from.lo;
                        match (step_up, step_down) {
                            (true, true) => Mono::Constant,
                            (true, false) => Mono::Increasing,
                            (false, true) => Mono::Decreasing,
                            (false, false) => Mono::Unknown,
                        }
                    }
                }
            })
            .collect();
        MonoFact { per_sym }
    }
}

impl TransferFunction for MonoAnalysis<'_> {
    type Fact = MonoFact;

    fn direction(&self) -> Direction {
        Direction::Forward
    }

    fn transfer(&mut self, _slot: u32, instr: Instr<'_>, env: &FactEnv<'_, MonoFact>) -> MonoFact {
        match instr {
            Instr::Const(_) => self.constant_fact(),
            Instr::Sym(i) => {
                let mut fact = self.constant_fact();
                if let Some(m) = fact.per_sym.get_mut(i as usize) {
                    *m = Mono::Increasing;
                }
                fact
            }
            Instr::Add(ops) | Instr::Min(ops) | Instr::Max(ops) => self.fold_join(ops, env),
            Instr::Mul(ops) => {
                let mut acc = self.constant_fact();
                let mut acc_v = AbstractValue::constant(1.0);
                for &op in ops {
                    let f = env.fact(op);
                    let v = self.values[op as usize];
                    for (s, m) in acc.per_sym.iter_mut().enumerate() {
                        *m = mul_mono(*m, acc_v, Self::at(f, s), v);
                    }
                    acc_v = mul_pair(acc_v, v);
                }
                acc
            }
            Instr::Div(a, b) => self.div_fact(a, b, env),
            Instr::Floor(a) | Instr::Ceil(a) => {
                let f = env.fact(a);
                if f.per_sym.is_empty() {
                    self.constant_fact()
                } else {
                    f.clone()
                }
            }
            Instr::Cmp(op, a, b) => self.cmp_fact(op, a, b, env),
            Instr::Select(c, a, b) => self.transfer_select(c, a, b, env),
            // Superinstructions transfer exactly like the op pairs
            // they fuse (see `mist_symbolic::fuse_superinstructions`):
            // the fused intermediate's fact is recomputed inline.
            Instr::MulAdd(a, b, c) => {
                let mut acc = self.constant_fact();
                let mut acc_v = AbstractValue::constant(1.0);
                for &op in &[a, b] {
                    let f = env.fact(op);
                    let v = self.values[op as usize];
                    for (s, m) in acc.per_sym.iter_mut().enumerate() {
                        *m = mul_mono(*m, acc_v, Self::at(f, s), v);
                    }
                    acc_v = mul_pair(acc_v, v);
                }
                let fc = env.fact(c);
                for (s, m) in acc.per_sym.iter_mut().enumerate() {
                    *m = m.join(Self::at(fc, s));
                }
                acc
            }
            Instr::SelectCmp(op, a, b, t, e) => {
                let fc = self.cmp_fact(op, a, b, env);
                let vc = cmp_interval(op, self.values[a as usize], self.values[b as usize]);
                self.select_with_guard(vc, &fc, t, e, env)
            }
            // Floor/ceil are non-decreasing, so they pass the
            // quotient's verdict through unchanged.
            Instr::DivFloor(a, b) | Instr::DivCeil(a, b) => self.div_fact(a, b, env),
        }
    }
}

/// The interval of a comparison indicator derived from its operand
/// intervals alone: `{0, 1}` unless the intervals decide the outcome.
/// Weaker than the interval analysis' own `Cmp` transfer (which may
/// also use relational facts), but sound — an undecided guard only
/// costs precision, never direction.
fn cmp_interval(op: CmpOp, va: AbstractValue, vb: AbstractValue) -> AbstractValue {
    let decided = if va.may_nonfinite || vb.may_nonfinite {
        None
    } else {
        match op {
            CmpOp::Le if va.hi <= vb.lo => Some(true),
            CmpOp::Le if va.lo > vb.hi => Some(false),
            CmpOp::Lt if va.hi < vb.lo => Some(true),
            CmpOp::Lt if va.lo >= vb.hi => Some(false),
            CmpOp::Ge if va.lo >= vb.hi => Some(true),
            CmpOp::Ge if va.hi < vb.lo => Some(false),
            CmpOp::Gt if va.lo > vb.hi => Some(true),
            CmpOp::Gt if va.hi <= vb.lo => Some(false),
            CmpOp::Eq if va.lo == va.hi && vb.lo == vb.hi && va.lo == vb.lo => Some(true),
            CmpOp::Eq if va.hi < vb.lo || va.lo > vb.hi => Some(false),
            _ => None,
        }
    };
    match decided {
        Some(true) => AbstractValue::constant(1.0),
        Some(false) => AbstractValue::constant(0.0),
        None => AbstractValue::bounded(0.0, 1.0, true, false),
    }
}

/// Per-root monotonicity verdicts, one per symbol.
#[derive(Debug, Clone, PartialEq)]
pub struct RootMono {
    /// The root's label, as compiled.
    pub label: String,
    /// One verdict per symbol, in [`MonoReport::symbols`] order.
    pub per_symbol: Vec<Mono>,
}

/// The result of [`monotonicity`]: every root's sensitivity sign with
/// respect to every symbol the program reads.
#[derive(Debug, Clone, PartialEq)]
pub struct MonoReport {
    /// Symbol names in table order; indexes [`RootMono::per_symbol`].
    pub symbols: Vec<String>,
    /// One entry per root, in root order.
    pub roots: Vec<RootMono>,
}

impl MonoReport {
    /// The verdicts for the root labelled `label`, if present.
    pub fn root(&self, label: &str) -> Option<&RootMono> {
        self.roots.iter().find(|r| r.label == label)
    }

    /// The verdict for `(root, symbol)`. A symbol the program never
    /// reads is `Constant` (the root trivially does not depend on
    /// it); a missing root is `Unknown`.
    pub fn verdict(&self, root: &str, symbol: &str) -> Mono {
        let Some(r) = self.root(root) else {
            return Mono::Unknown;
        };
        match self.symbols.iter().position(|s| s == symbol) {
            Some(i) => r.per_symbol[i],
            None => Mono::Constant,
        }
    }
}

/// Runs the monotonicity analysis for `program` over `domains`.
///
/// The interval analysis runs first (its final facts supply the sign
/// and branch-ordering side conditions); interval *errors* — a
/// reachable division by zero, say — poison every verdict to
/// [`Mono::Unknown`] rather than reason about a program whose
/// evaluation may fault.
pub fn monotonicity(program: &Program, domains: &DomainMap) -> MonoReport {
    let symbols = program.symbols().names().to_vec();
    let outcome = interval::analyze(program, domains);
    let roots = if outcome.diags.iter().any(|d| d.severity == Severity::Error) {
        program
            .root_labels()
            .iter()
            .map(|label| RootMono {
                label: label.clone(),
                per_symbol: vec![Mono::Unknown; symbols.len()],
            })
            .collect()
    } else {
        let mut analysis = MonoAnalysis {
            values: &outcome.values,
            nsyms: symbols.len(),
        };
        let facts = framework::fixpoint(program, &mut analysis);
        program
            .root_labels()
            .iter()
            .zip(program.root_slots())
            .map(|(label, &slot)| {
                let fact = &facts[slot as usize];
                let per_symbol = if fact.per_sym.is_empty() {
                    vec![Mono::Unknown; symbols.len()]
                } else {
                    fact.per_sym.clone()
                };
                RootMono {
                    label: label.clone(),
                    per_symbol,
                }
            })
            .collect()
    };
    MonoReport { symbols, roots }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domain::SymbolDomain;
    use mist_symbolic::Context;

    fn domains_xy() -> DomainMap {
        DomainMap::new()
            .declare("x", SymbolDomain::new(0.0, 10.0, false))
            .declare("y", SymbolDomain::new(1.0, 4.0, false))
    }

    #[test]
    fn sums_and_differences_carry_signs() {
        let ctx = Context::new();
        let x = ctx.symbol("x");
        let y = ctx.symbol("y");
        let program = ctx.compile_program(&[("sum", x + 2.0 * y), ("diff", x - y)]);
        let report = monotonicity(&program, &domains_xy());
        assert_eq!(report.verdict("sum", "x"), Mono::Increasing);
        assert_eq!(report.verdict("sum", "y"), Mono::Increasing);
        assert_eq!(report.verdict("diff", "x"), Mono::Increasing);
        assert_eq!(report.verdict("diff", "y"), Mono::Decreasing);
        // A symbol the program never reads is trivially constant.
        assert_eq!(report.verdict("sum", "unread"), Mono::Constant);
    }

    #[test]
    fn products_and_quotients_use_interval_signs() {
        let ctx = Context::new();
        let x = ctx.symbol("x");
        let y = ctx.symbol("y");
        let program = ctx.compile_program(&[
            ("scaled", x * (-3.0)),
            ("prod", x * y),
            ("quot", x / y),
            ("inv", 1.0 / y),
        ]);
        let report = monotonicity(&program, &domains_xy());
        assert_eq!(report.verdict("scaled", "x"), Mono::Decreasing);
        // Both factors non-negative and increasing in their own symbol.
        assert_eq!(report.verdict("prod", "x"), Mono::Increasing);
        assert_eq!(report.verdict("prod", "y"), Mono::Increasing);
        assert_eq!(report.verdict("quot", "x"), Mono::Increasing);
        assert_eq!(report.verdict("quot", "y"), Mono::Decreasing);
        assert_eq!(report.verdict("inv", "y"), Mono::Decreasing);
    }

    #[test]
    fn mixed_sign_sums_are_honest_about_rounding() {
        let ctx = Context::new();
        let x = ctx.symbol("x");
        // 0.5x - 0.7x is mathematically decreasing, but the two
        // rounded terms can locally reverse; no cancellation happens.
        let program = ctx.compile_program(&[("net", x * 0.5 - x * 0.7)]);
        let report = monotonicity(
            &program,
            &DomainMap::new().declare("x", SymbolDomain::new(0.0, 1e6, false)),
        );
        assert_eq!(report.verdict("net", "x"), Mono::Unknown);
    }

    #[test]
    fn directional_select_needs_ordered_branches() {
        let ctx = Context::new();
        let x = ctx.symbol("x");
        let y = ctx.symbol("y");
        let hi = ctx.symbol("hi");
        let lo = ctx.symbol("lo");
        let domains = DomainMap::new()
            .declare("x", SymbolDomain::new(0.0, 1.0, true))
            .declare("y", SymbolDomain::new(0.0, 8.0, false))
            .declare("hi", SymbolDomain::new(5.0, 6.0, false))
            .declare("lo", SymbolDomain::new(1.0, 2.0, false));
        let program = ctx.compile_program(&[
            // Guard x in [0, 1], increasing in x; branches ordered.
            ("step_up", ctx.select(x, hi, lo)),
            ("step_down", ctx.select(x, lo, hi)),
            // Branches overlap ([5, 6] vs [0, 8]): no ordering, no verdict.
            ("tangled", ctx.select(x, hi, y)),
            // Guard constant in y: the chooser never moves with y.
            ("joined", ctx.select(x, y, y * 2.0)),
        ]);
        let report = monotonicity(&program, &domains);
        assert_eq!(report.verdict("step_up", "x"), Mono::Increasing);
        assert_eq!(report.verdict("step_down", "x"), Mono::Decreasing);
        assert_eq!(report.verdict("tangled", "x"), Mono::Unknown);
        assert_eq!(report.verdict("joined", "y"), Mono::Increasing);
        assert_eq!(report.verdict("joined", "x"), Mono::Unknown);
    }

    #[test]
    fn comparisons_are_directional_indicators() {
        let ctx = Context::new();
        let x = ctx.symbol("x");
        let y = ctx.symbol("y");
        let program = ctx.compile_program(&[("le", ctx.cmp(CmpOp::Le, x, y))]);
        let report = monotonicity(&program, &domains_xy());
        // [x <= y] falls as x rises and rises as y rises.
        assert_eq!(report.verdict("le", "x"), Mono::Decreasing);
        assert_eq!(report.verdict("le", "y"), Mono::Increasing);
    }

    #[test]
    fn interval_errors_poison_all_verdicts() {
        let ctx = Context::new();
        let x = ctx.symbol("x");
        let y = ctx.symbol("y");
        let program = ctx.compile_program(&[("q", x / y)]);
        let domains = DomainMap::new()
            .declare("x", SymbolDomain::new(0.0, 1.0, false))
            .declare("y", SymbolDomain::new(-1.0, 1.0, false));
        let report = monotonicity(&program, &domains);
        assert_eq!(report.verdict("q", "x"), Mono::Unknown);
        assert_eq!(report.verdict("q", "y"), Mono::Unknown);
    }
}
