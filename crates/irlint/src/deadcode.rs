//! Dead-code and unused-symbol detection.
//!
//! The interpreter executes every SSA slot, so "dead" here means *the
//! value can never influence any root over the declared domain*. Slots
//! are marked live by a DFS from the roots; a `Select` whose guard the
//! interval analysis proved constant contributes only its guard and the
//! taken branch, so the untaken subtree — and any symbol read only from
//! it — surfaces as dead. In a freshly compiled program with no constant
//! guards everything is live by construction (programs are built by DFS
//! from the roots), which is exactly what makes a dead-code finding a
//! signal and not noise.

use mist_symbolic::{Instr, Program};

use crate::diag::{Analysis, Diagnostic, Severity};
use crate::interval::{guard_constant, AbstractValue};
use crate::unit::UnitRegistry;

pub(crate) fn analyze(
    program: &Program,
    registry: &UnitRegistry,
    values: &[AbstractValue],
) -> Vec<Diagnostic> {
    let n = program.len();
    let mut live = vec![false; n];
    let mut stack: Vec<u32> = program.root_slots().to_vec();
    while let Some(slot) = stack.pop() {
        let s = slot as usize;
        if live[s] {
            continue;
        }
        live[s] = true;
        match program.instr(s) {
            Instr::Select(c, a, b) => match guard_constant(values[c as usize]) {
                Some(true) => stack.extend([c, a]),
                Some(false) => stack.extend([c, b]),
                None => stack.extend([c, a, b]),
            },
            other => other.for_each_operand(|op| stack.push(op)),
        }
    }

    let mut diags = Vec::new();

    // One warning per live Select whose guard cannot vary over the domain.
    for (slot, instr) in program.instrs().enumerate() {
        if !live[slot] {
            continue;
        }
        if let Instr::Select(c, _, _) = instr {
            if let Some(taken_then) = guard_constant(values[c as usize]) {
                let (taken, dead) = if taken_then {
                    ("then", "else")
                } else {
                    ("else", "then")
                };
                diags.push(Diagnostic {
                    severity: Severity::Warning,
                    analysis: Analysis::DeadCode,
                    code: "dead-branch",
                    slot: Some(slot as u32),
                    root: None,
                    message: format!(
                        "select guard is constant over the domain; always takes the \
                         {taken}-branch, {dead}-branch is dead"
                    ),
                });
            }
        }
    }

    let dead: Vec<usize> = (0..n).filter(|&s| !live[s]).collect();
    if !dead.is_empty() {
        let shown: Vec<String> = dead.iter().take(8).map(|s| s.to_string()).collect();
        let ellipsis = if dead.len() > 8 { ", …" } else { "" };
        diags.push(Diagnostic {
            severity: Severity::Info,
            analysis: Analysis::DeadCode,
            code: "dead-code",
            slot: Some(dead[0] as u32),
            root: None,
            message: format!(
                "{} instruction(s) cannot influence any root over the domain \
                 (slots {}{ellipsis})",
                dead.len(),
                shown.join(", ")
            ),
        });
    }

    // Symbols whose every read sits in dead code still demand a binding
    // from the caller but never affect an output.
    let table = program.symbols();
    for (idx, name) in table.names().iter().enumerate() {
        let mut reads = 0usize;
        let mut live_reads = 0usize;
        for (slot, instr) in program.instrs().enumerate() {
            if instr == Instr::Sym(idx as u32) {
                reads += 1;
                if live[slot] {
                    live_reads += 1;
                }
            }
        }
        if reads > 0 && live_reads == 0 {
            diags.push(Diagnostic {
                severity: Severity::Warning,
                analysis: Analysis::DeadCode,
                code: "unused-symbol",
                slot: None,
                root: None,
                message: format!("symbol `{name}` is only read by dead code"),
            });
        }
    }

    // Registry declarations the program never reads: usually a stale
    // registry, occasionally a symbol the analyzer dropped by mistake.
    for name in registry.symbol_names() {
        if table.index_of(name).is_none() {
            diags.push(Diagnostic {
                severity: Severity::Info,
                analysis: Analysis::DeadCode,
                code: "undeclared-read",
                slot: None,
                root: None,
                message: format!("declared symbol `{name}` is not read by the program"),
            });
        }
    }

    diags
}
