//! Dead-code and unused-symbol detection.
//!
//! The interpreter executes every SSA slot, so "dead" here means *the
//! value can never influence any root over the declared domain*.
//! Liveness is the crate's one *backward* dataflow instance: the fact
//! lattice is the booleans under "or", roots are live by fiat, and a
//! slot is live when some live user effectively reads it — where a
//! `Select` whose guard the interval analysis proved constant reads
//! only its guard and the taken branch, so the untaken subtree — and
//! any symbol read only from it — surfaces as dead. The least fixpoint
//! equals the historical root-DFS marking exactly. In a freshly
//! compiled program with no constant guards everything is live by
//! construction (programs are built by DFS from the roots), which is
//! exactly what makes a dead-code finding a signal and not noise.

use mist_symbolic::{Instr, Program};

use crate::diag::{Analysis, Diagnostic, Severity};
use crate::framework::{self, Direction, FactEnv, Lattice, TransferFunction};
use crate::interval::{guard_constant, AbstractValue};
use crate::unit::UnitRegistry;

/// Liveness fact: whether a slot can influence any root.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Live(bool);

impl Lattice for Live {
    fn bottom() -> Self {
        Live(false)
    }
    fn join(&self, other: &Self) -> Self {
        Live(self.0 || other.0)
    }
}

/// The backward liveness instance. `guard_taken` holds the interval
/// analysis' constant-guard verdicts per `Select` slot.
struct LivenessAnalysis<'p> {
    program: &'p Program,
    is_root: Vec<bool>,
    guard_taken: Vec<Option<bool>>,
}

impl LivenessAnalysis<'_> {
    /// Whether `user`'s instruction effectively reads `slot`: always,
    /// except for the untaken branch of a constant-guard `Select`.
    fn reads(&self, user: u32, slot: u32) -> bool {
        match self.program.instr(user as usize) {
            Instr::Select(c, a, b) => match self.guard_taken[user as usize] {
                Some(true) => slot == c || slot == a,
                Some(false) => slot == c || slot == b,
                None => slot == c || slot == a || slot == b,
            },
            _ => true,
        }
    }
}

impl TransferFunction for LivenessAnalysis<'_> {
    type Fact = Live;

    fn direction(&self) -> Direction {
        Direction::Backward
    }

    fn transfer(&mut self, slot: u32, _instr: Instr<'_>, env: &FactEnv<'_, Live>) -> Live {
        if self.is_root[slot as usize] {
            return Live(true);
        }
        for &u in env.users(slot) {
            if env.fact(u).0 && self.reads(u, slot) {
                return Live(true);
            }
        }
        Live(false)
    }
}

pub(crate) fn analyze(
    program: &Program,
    registry: &UnitRegistry,
    values: &[AbstractValue],
) -> Vec<Diagnostic> {
    let n = program.len();
    let mut is_root = vec![false; n];
    for &r in program.root_slots() {
        is_root[r as usize] = true;
    }
    let guard_taken: Vec<Option<bool>> = program
        .instrs()
        .map(|instr| match instr {
            Instr::Select(c, _, _) => guard_constant(values[c as usize]),
            _ => None,
        })
        .collect();
    let mut analysis = LivenessAnalysis {
        program,
        is_root,
        guard_taken,
    };
    let live: Vec<bool> = framework::fixpoint(program, &mut analysis)
        .into_iter()
        .map(|l| l.0)
        .collect();

    let mut diags = Vec::new();

    // One warning per live Select whose guard cannot vary over the domain.
    for (slot, instr) in program.instrs().enumerate() {
        if !live[slot] {
            continue;
        }
        if let Instr::Select(c, _, _) = instr {
            if let Some(taken_then) = guard_constant(values[c as usize]) {
                let (taken, dead) = if taken_then {
                    ("then", "else")
                } else {
                    ("else", "then")
                };
                diags.push(Diagnostic {
                    severity: Severity::Warning,
                    analysis: Analysis::DeadCode,
                    code: "dead-branch",
                    slot: Some(slot as u32),
                    root: None,
                    message: format!(
                        "select guard is constant over the domain; always takes the \
                         {taken}-branch, {dead}-branch is dead"
                    ),
                });
            }
        }
    }

    let dead: Vec<usize> = (0..n).filter(|&s| !live[s]).collect();
    if !dead.is_empty() {
        let shown: Vec<String> = dead.iter().take(8).map(|s| s.to_string()).collect();
        let ellipsis = if dead.len() > 8 { ", …" } else { "" };
        diags.push(Diagnostic {
            severity: Severity::Info,
            analysis: Analysis::DeadCode,
            code: "dead-code",
            slot: Some(dead[0] as u32),
            root: None,
            message: format!(
                "{} instruction(s) cannot influence any root over the domain \
                 (slots {}{ellipsis})",
                dead.len(),
                shown.join(", ")
            ),
        });
    }

    // Symbols whose every read sits in dead code still demand a binding
    // from the caller but never affect an output.
    let table = program.symbols();
    for (idx, name) in table.names().iter().enumerate() {
        let mut reads = 0usize;
        let mut live_reads = 0usize;
        for (slot, instr) in program.instrs().enumerate() {
            if instr == Instr::Sym(idx as u32) {
                reads += 1;
                if live[slot] {
                    live_reads += 1;
                }
            }
        }
        if reads > 0 && live_reads == 0 {
            diags.push(Diagnostic {
                severity: Severity::Warning,
                analysis: Analysis::DeadCode,
                code: "unused-symbol",
                slot: None,
                root: None,
                message: format!("symbol `{name}` is only read by dead code"),
            });
        }
    }

    // Registry declarations the program never reads: usually a stale
    // registry, occasionally a symbol the analyzer dropped by mistake.
    for name in registry.symbol_names() {
        if table.index_of(name).is_none() {
            diags.push(Diagnostic {
                severity: Severity::Info,
                analysis: Analysis::DeadCode,
                code: "undeclared-read",
                slot: None,
                root: None,
                message: format!("declared symbol `{name}` is not read by the program"),
            });
        }
    }

    diags
}
