//! The lint driver: runs the three analyses and assembles the report.

use mist_symbolic::{Instr, Program};

use crate::deadcode;
use crate::diag::{Analysis, Diagnostic, LintReport, RootBounds, Severity};
use crate::domain::DomainMap;
use crate::interval;
use crate::unit::{self, UnitRegistry};

/// Lints `program` against declared units and symbol domains.
///
/// Runs interval analysis first (unit inference consumes its
/// integrality facts for `==`, dead-code detection its constant-guard
/// facts), checks every root for provable finiteness and
/// non-negativity, anchors each local diagnostic to the first root
/// whose subtree reaches it, and emits `irlint.*` telemetry. `label`
/// names the program in the report (e.g. `stage`).
pub fn lint_program(
    program: &Program,
    registry: &UnitRegistry,
    domains: &DomainMap,
    label: &str,
) -> LintReport {
    let interval::IntervalOutcome {
        values,
        diags: interval_diags,
    } = interval::analyze(program, domains);
    let (_units, mut diags) = unit::analyze(program, registry, &values);
    diags.extend(interval_diags);
    diags.extend(deadcode::analyze(program, registry, &values));

    let mut root_bounds = Vec::with_capacity(program.num_roots());
    for (i, root_label) in program.root_labels().iter().enumerate() {
        let slot = program.root_slots()[i];
        let v = values[slot as usize];
        root_bounds.push(RootBounds {
            label: root_label.clone(),
            lo: v.lo,
            hi: v.hi,
            may_nonfinite: v.may_nonfinite,
        });
        if !v.provably_finite() {
            diags.push(Diagnostic {
                severity: Severity::Error,
                analysis: Analysis::Intervals,
                code: "root-nonfinite",
                slot: Some(slot),
                root: Some(root_label.clone()),
                message: format!(
                    "root `{root_label}` is not provably finite over the domain \
                     (bounds [{}, {}])",
                    v.lo, v.hi
                ),
            });
        } else if v.hi < 0.0 {
            diags.push(Diagnostic {
                severity: Severity::Error,
                analysis: Analysis::Intervals,
                code: "root-negative",
                slot: Some(slot),
                root: Some(root_label.clone()),
                message: format!(
                    "root `{root_label}` is provably negative (bounds [{}, {}])",
                    v.lo, v.hi
                ),
            });
        } else if v.lo < 0.0 {
            diags.push(Diagnostic {
                severity: Severity::Warning,
                analysis: Analysis::Intervals,
                code: "root-maybe-negative",
                slot: Some(slot),
                root: Some(root_label.clone()),
                message: format!(
                    "cannot prove root `{root_label}` non-negative (bounds [{}, {}])",
                    v.lo, v.hi
                ),
            });
        }
    }

    let anchors = root_anchors(program);
    for d in &mut diags {
        if d.root.is_none() {
            if let Some(slot) = d.slot {
                if let Some(root_idx) = anchors[slot as usize] {
                    d.root = Some(program.root_labels()[root_idx as usize].clone());
                }
            }
        }
    }

    diags.sort_by(|a, b| {
        (a.severity, a.analysis, a.slot, a.code).cmp(&(b.severity, b.analysis, b.slot, b.code))
    });

    mist_telemetry::counter_add("irlint.programs", 1);
    let report = LintReport {
        program: label.to_owned(),
        diagnostics: diags,
        root_bounds,
    };
    mist_telemetry::counter_add("irlint.diags.error", report.error_count() as u64);
    mist_telemetry::counter_add("irlint.diags.warning", report.warning_count() as u64);
    mist_telemetry::counter_add("irlint.diags.info", report.info_count() as u64);
    for rb in &report.root_bounds {
        if rb.hi.is_finite() {
            mist_telemetry::gauge_max(&format!("irlint.root_hi.{}", rb.label), rb.hi);
        }
    }
    report
}

/// For each slot, the index of the first root whose subtree contains it.
///
/// Anchoring is structural (no constant-guard pruning): a diagnostic on
/// a dead branch should still point at the root that owns the `Select`.
fn root_anchors(program: &Program) -> Vec<Option<u32>> {
    let mut anchor: Vec<Option<u32>> = vec![None; program.len()];
    let mut stack: Vec<u32> = Vec::new();
    for (root_idx, &root_slot) in program.root_slots().iter().enumerate() {
        stack.push(root_slot);
        while let Some(slot) = stack.pop() {
            let s = slot as usize;
            if anchor[s].is_some() {
                continue;
            }
            anchor[s] = Some(root_idx as u32);
            match program.instr(s) {
                Instr::Select(c, a, b) => stack.extend([c, a, b]),
                other => other.for_each_operand(|op| stack.push(op)),
            }
        }
    }
    anchor
}
