//! Interval (abstract value) analysis over the SSA stream.
//!
//! Each slot is mapped to an [`AbstractValue`]: an interval `[lo, hi]`
//! guaranteed to contain every value the instruction can produce when
//! the symbols range over their declared [`DomainMap`](crate::DomainMap)
//! domains, plus an *integrality* bit and a *may-be-non-finite* bit.
//! The analysis is a forward instance of the crate's
//! [`framework`](crate::framework): the lattice is interval union with
//! the empty interval as bottom, and diagnostics (missing domains,
//! reachable division by zero) are derived from the final facts by a
//! deterministic post-pass.
//!
//! Soundness under round-to-nearest: every transfer function evaluates
//! the same floating-point operations the interpreter runs, at interval
//! endpoints (or 4-corner products/quotients). Because IEEE-754
//! round-to-nearest is monotone and these operations are coordinatewise
//! monotone, interior points cannot escape the endpoint results — no
//! directed rounding is needed. Whenever a bound overflows to infinity
//! the `may_nonfinite` bit is set, so "provably finite" claims survive
//! overflow too.

use mist_symbolic::{CmpOp, Instr, Program};

use crate::diag::{Analysis, Diagnostic, Severity};
use crate::domain::DomainMap;
use crate::framework::{self, Direction, FactEnv, Lattice, TransferFunction};

/// What the analysis knows about one slot's value over the whole domain.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AbstractValue {
    /// Lower bound (`-inf` when unbounded below).
    pub lo: f64,
    /// Upper bound (`+inf` when unbounded above).
    pub hi: f64,
    /// True when the value is a mathematical integer at every point of
    /// the domain.
    pub integral: bool,
    /// True when evaluation may produce NaN or ±infinity somewhere in
    /// the domain (division by zero, overflow, undeclared symbol).
    pub may_nonfinite: bool,
}

impl AbstractValue {
    /// The unbounded, possibly-non-finite value (top of the lattice).
    pub fn top() -> Self {
        AbstractValue {
            lo: f64::NEG_INFINITY,
            hi: f64::INFINITY,
            integral: false,
            may_nonfinite: true,
        }
    }

    /// The abstract value of a constant.
    pub fn constant(c: f64) -> Self {
        AbstractValue {
            lo: c,
            hi: c,
            integral: c.is_finite() && c.fract() == 0.0,
            may_nonfinite: !c.is_finite(),
        }
    }

    /// True when both bounds are finite and no non-finite evaluation is
    /// possible.
    pub fn provably_finite(&self) -> bool {
        !self.may_nonfinite && self.lo.is_finite() && self.hi.is_finite()
    }

    /// True when the interval contains `v` (NaN is never contained).
    pub fn contains(&self, v: f64) -> bool {
        self.lo <= v && v <= self.hi
    }

    pub(crate) fn bounded(lo: f64, hi: f64, integral: bool, child_mnf: bool) -> Self {
        AbstractValue {
            lo,
            hi,
            integral,
            may_nonfinite: child_mnf || !(lo.is_finite() && hi.is_finite()),
        }
    }
}

impl Lattice for AbstractValue {
    /// The empty interval: join identity (`min`/`max` against an empty
    /// range yields the other side).
    fn bottom() -> Self {
        AbstractValue {
            lo: f64::INFINITY,
            hi: f64::NEG_INFINITY,
            integral: true,
            may_nonfinite: false,
        }
    }

    fn join(&self, other: &Self) -> Self {
        AbstractValue {
            lo: self.lo.min(other.lo),
            hi: self.hi.max(other.hi),
            integral: self.integral && other.integral,
            may_nonfinite: self.may_nonfinite || other.may_nonfinite,
        }
    }
}

/// Per-slot abstract values plus the diagnostics found along the way.
pub(crate) struct IntervalOutcome {
    pub values: Vec<AbstractValue>,
    pub diags: Vec<Diagnostic>,
}

/// A `coeff * symbol` term inside an `Add`, for ordering refinement.
#[derive(Debug, Clone, Copy, PartialEq)]
struct LinearTerm {
    coeff: f64,
    sym: u32,
}

/// The forward interval instance: symbol intervals come from the
/// declared domains, ordering facts refine sums and comparisons.
struct IntervalAnalysis<'p> {
    program: &'p Program,
    sym_values: Vec<AbstractValue>,
    le: Vec<(u32, u32)>,
}

impl TransferFunction for IntervalAnalysis<'_> {
    type Fact = AbstractValue;

    fn direction(&self) -> Direction {
        Direction::Forward
    }

    fn transfer(
        &mut self,
        _slot: u32,
        instr: Instr<'_>,
        env: &FactEnv<'_, AbstractValue>,
    ) -> AbstractValue {
        let values = env.facts();
        match instr {
            Instr::Const(c) => AbstractValue::constant(c),
            Instr::Sym(i) => self.sym_values[i as usize],
            Instr::Add(ops) => transfer_add(self.program, ops, values, &self.sym_values, &self.le),
            Instr::Mul(ops) => ops
                .iter()
                .map(|&op| values[op as usize])
                .reduce(mul_pair)
                .unwrap_or(AbstractValue::constant(1.0)),
            Instr::Min(ops) => fold_minmax(ops, values, f64::min),
            Instr::Max(ops) => fold_minmax(ops, values, f64::max),
            Instr::Div(a, b) => transfer_div(values[a as usize], values[b as usize]),
            Instr::Floor(a) => {
                let x = values[a as usize];
                AbstractValue::bounded(x.lo.floor(), x.hi.floor(), true, x.may_nonfinite)
            }
            Instr::Ceil(a) => {
                let x = values[a as usize];
                AbstractValue::bounded(x.lo.ceil(), x.hi.ceil(), true, x.may_nonfinite)
            }
            Instr::Cmp(op, a, b) => transfer_cmp(
                self.program,
                op,
                a,
                b,
                values[a as usize],
                values[b as usize],
                &self.le,
            ),
            Instr::Select(c, a, b) => {
                let (cv, av, bv) = (values[c as usize], values[a as usize], values[b as usize]);
                match guard_constant(cv) {
                    Some(true) => av,
                    Some(false) => bv,
                    None => av.join(&bv),
                }
            }
            // Superinstructions transfer exactly like the op pairs they
            // fuse (see `mist_symbolic::fuse_superinstructions`).
            Instr::MulAdd(a, b, c) => {
                let m = mul_pair(values[a as usize], values[b as usize]);
                let cv = values[c as usize];
                AbstractValue::bounded(
                    m.lo + cv.lo,
                    m.hi + cv.hi,
                    m.integral && cv.integral,
                    m.may_nonfinite || cv.may_nonfinite,
                )
            }
            Instr::SelectCmp(op, a, b, t, e) => {
                let cv = transfer_cmp(
                    self.program,
                    op,
                    a,
                    b,
                    values[a as usize],
                    values[b as usize],
                    &self.le,
                );
                let (tv, ev) = (values[t as usize], values[e as usize]);
                match guard_constant(cv) {
                    Some(true) => tv,
                    Some(false) => ev,
                    None => tv.join(&ev),
                }
            }
            Instr::DivFloor(a, b) => {
                let q = transfer_div(values[a as usize], values[b as usize]);
                AbstractValue::bounded(q.lo.floor(), q.hi.floor(), true, q.may_nonfinite)
            }
            Instr::DivCeil(a, b) => {
                let q = transfer_div(values[a as usize], values[b as usize]);
                AbstractValue::bounded(q.lo.ceil(), q.hi.ceil(), true, q.may_nonfinite)
            }
        }
    }
}

/// Resolves declared `a <= b` ordering facts to symbol-table indices.
pub(crate) fn resolve_le(program: &Program, domains: &DomainMap) -> Vec<(u32, u32)> {
    let table = program.symbols();
    domains
        .le_pairs()
        .iter()
        .filter_map(|(a, b)| Some((table.index_of(a)? as u32, table.index_of(b)? as u32)))
        .collect()
}

/// Per-symbol abstract values from the declared domains, in symbol-table
/// order; symbols without a domain map to top and (when `diags` is
/// given) a `no-domain` warning.
pub(crate) fn symbol_values(
    program: &Program,
    domains: &DomainMap,
    mut diags: Option<&mut Vec<Diagnostic>>,
) -> Vec<AbstractValue> {
    program
        .symbols()
        .names()
        .iter()
        .map(|name| match domains.get(name) {
            Some(d) => AbstractValue::bounded(d.lo, d.hi, d.integral, false),
            None => {
                if let Some(diags) = diags.as_deref_mut() {
                    diags.push(Diagnostic {
                        severity: Severity::Warning,
                        analysis: Analysis::Intervals,
                        code: "no-domain",
                        slot: None,
                        root: None,
                        message: format!(
                            "symbol `{name}` has no declared domain; assuming unbounded"
                        ),
                    });
                }
                AbstractValue::top()
            }
        })
        .collect()
}

pub(crate) fn analyze(program: &Program, domains: &DomainMap) -> IntervalOutcome {
    let mut diags = Vec::new();
    let sym_values = symbol_values(program, domains, Some(&mut diags));
    let le = resolve_le(program, domains);

    let mut analysis = IntervalAnalysis {
        program,
        sym_values,
        le,
    };
    let values = framework::fixpoint(program, &mut analysis);

    // Diagnostic post-pass, in ascending slot order: a division whose
    // final denominator interval straddles zero is reachable ÷0. When
    // ordering refinement proved the divisor sign-definite, the transfer
    // already propagated refined quotient bounds and nothing is
    // reported.
    for (slot, instr) in program.instrs().enumerate() {
        if let Instr::Div(a, b) | Instr::DivFloor(a, b) | Instr::DivCeil(a, b) = instr {
            let (num, den) = (values[a as usize], values[b as usize]);
            if den.lo <= 0.0 && den.hi >= 0.0 {
                let nan_note = if num.lo <= 0.0 && num.hi >= 0.0 {
                    " (0/0 would be NaN)"
                } else {
                    ""
                };
                diags.push(Diagnostic {
                    severity: Severity::Error,
                    analysis: Analysis::Intervals,
                    code: "div-by-zero",
                    slot: Some(slot as u32),
                    root: None,
                    message: format!(
                        "denominator range [{}, {}] contains zero{nan_note}",
                        den.lo, den.hi
                    ),
                });
            }
        }
    }

    IntervalOutcome { values, diags }
}

/// `Select` guards provable constant over `domains`, as specialization
/// facts for [`mist_symbolic::specialize`].
///
/// Runs the interval analysis and reports every `Select` whose
/// condition can never (or always) be zero for bindings inside the
/// declared domains. The facts are sound only for such in-domain
/// bindings: the tuner derives `domains` from the exact search space it
/// sweeps, so deleting these branches cannot change any evaluated row.
/// Diagnostics the analysis would raise (missing domains, division by
/// zero, …) are ignored here — run [`crate::lint_program`] for those.
pub fn constant_guards(program: &Program, domains: &DomainMap) -> Vec<mist_symbolic::GuardFact> {
    guards_from(program, &analyze(program, domains))
}

/// The full fact set the specializer can consume for `program` over the
/// declared `domains`: the [`constant_guards`] plus per-slot value
/// ranges (`lo`/`hi`/provably-finite), which license the specializer's
/// zero-product collapse for multiplications by frozen-to-zero ratios.
///
/// Facts hold for **in-domain** bindings only; callers evaluating
/// out-of-domain probe rows (the tuner's `ckpt = ∞` infeasibility
/// marker) must discard those rows without reading them back.
pub fn sweep_facts(program: &Program, domains: &DomainMap) -> mist_symbolic::SweepFacts {
    let outcome = analyze(program, domains);
    let guards = guards_from(program, &outcome);
    let ranges = outcome
        .values
        .iter()
        .map(|v| mist_symbolic::SlotRange {
            lo: v.lo,
            hi: v.hi,
            finite: v.provably_finite(),
        })
        .collect();
    mist_symbolic::SweepFacts::new(guards, ranges)
}

/// Proven interval bounds of every root over `domains`, in root order.
///
/// A lighter entry point than [`crate::lint_program`] for callers that
/// only need the bounds (no unit registry, no diagnostics): the tuner's
/// static budget-fit proof and the plan certifier both re-derive memory
/// and cost claims through these intervals.
pub fn root_intervals(program: &Program, domains: &DomainMap) -> Vec<crate::RootBounds> {
    let outcome = analyze(program, domains);
    program
        .root_labels()
        .iter()
        .zip(program.root_slots())
        .map(|(label, &slot)| {
            let v = outcome.values[slot as usize];
            crate::RootBounds {
                label: label.clone(),
                lo: v.lo,
                hi: v.hi,
                may_nonfinite: v.may_nonfinite,
            }
        })
        .collect()
}

fn guards_from(program: &Program, outcome: &IntervalOutcome) -> Vec<mist_symbolic::GuardFact> {
    program
        .instrs()
        .enumerate()
        .filter_map(|(slot, instr)| match instr {
            Instr::Select(c, _, _) => {
                guard_constant(outcome.values[c as usize]).map(|taken| mist_symbolic::GuardFact {
                    slot: slot as u32,
                    taken,
                })
            }
            _ => None,
        })
        .collect()
}

/// `Some(taken_then)` when the guard is provably constant over the domain.
pub(crate) fn guard_constant(cv: AbstractValue) -> Option<bool> {
    if cv.may_nonfinite {
        return None;
    }
    if cv.lo > 0.0 || cv.hi < 0.0 {
        Some(true) // never zero: `Select` always takes the then-branch
    } else if cv.lo == 0.0 && cv.hi == 0.0 {
        Some(false)
    } else {
        None
    }
}

/// A product of interval endpoints, with `0 * inf` resolved to `0`: a
/// zero *endpoint* that is attained means the product is exactly zero,
/// and an infinite endpoint is a bound, not an attained value.
fn corner_mul(a: f64, b: f64) -> f64 {
    if a == 0.0 || b == 0.0 {
        0.0
    } else {
        a * b
    }
}

pub(crate) fn mul_pair(x: AbstractValue, y: AbstractValue) -> AbstractValue {
    let corners = [
        corner_mul(x.lo, y.lo),
        corner_mul(x.lo, y.hi),
        corner_mul(x.hi, y.lo),
        corner_mul(x.hi, y.hi),
    ];
    let lo = corners.iter().copied().fold(f64::INFINITY, f64::min);
    let hi = corners.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    AbstractValue::bounded(
        lo,
        hi,
        x.integral && y.integral,
        x.may_nonfinite || y.may_nonfinite,
    )
}

fn fold_minmax(ops: &[u32], values: &[AbstractValue], pick: fn(f64, f64) -> f64) -> AbstractValue {
    let mut it = ops.iter().map(|&op| values[op as usize]);
    let first = it.next().expect("min/max has at least one operand");
    it.fold(first, |acc, x| AbstractValue {
        lo: pick(acc.lo, x.lo),
        hi: pick(acc.hi, x.hi),
        integral: acc.integral && x.integral,
        may_nonfinite: acc.may_nonfinite || x.may_nonfinite,
    })
}

/// Quotient transfer. A denominator interval that straddles zero yields
/// top (the post-pass reports the reachable ÷0); a sign-definite
/// denominator — including one proved sign-definite by the `Add`
/// ordering refinement — propagates 4-corner quotient bounds.
fn transfer_div(num: AbstractValue, den: AbstractValue) -> AbstractValue {
    if den.lo <= 0.0 && den.hi >= 0.0 {
        return AbstractValue::top();
    }
    let corners = [
        num.lo / den.lo,
        num.lo / den.hi,
        num.hi / den.lo,
        num.hi / den.hi,
    ];
    let lo = corners.iter().copied().fold(f64::INFINITY, f64::min);
    let hi = corners.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    AbstractValue::bounded(lo, hi, false, num.may_nonfinite || den.may_nonfinite)
}

fn transfer_cmp(
    program: &Program,
    op: CmpOp,
    a_slot: u32,
    b_slot: u32,
    a: AbstractValue,
    b: AbstractValue,
    le: &[(u32, u32)],
) -> AbstractValue {
    let bool_interval = |lo: f64, hi: f64| AbstractValue {
        lo,
        hi,
        integral: true,
        may_nonfinite: false,
    };
    // Ordering facts between raw symbols can decide a comparison even
    // when the per-symbol intervals overlap.
    let (a_le_b_known, b_le_a_known) = match (
        program.instr(a_slot as usize),
        program.instr(b_slot as usize),
    ) {
        (Instr::Sym(sa), Instr::Sym(sb)) => (le.contains(&(sa, sb)), le.contains(&(sb, sa))),
        _ => (false, false),
    };
    let sound = !a.may_nonfinite && !b.may_nonfinite;
    let decided = match op {
        CmpOp::Le => {
            if (sound && a.hi <= b.lo) || a_le_b_known {
                Some(true)
            } else if sound && a.lo > b.hi {
                Some(false)
            } else {
                None
            }
        }
        CmpOp::Lt => {
            if sound && a.hi < b.lo {
                Some(true)
            } else if (sound && a.lo >= b.hi) || b_le_a_known {
                Some(false)
            } else {
                None
            }
        }
        CmpOp::Ge => {
            if (sound && a.lo >= b.hi) || b_le_a_known {
                Some(true)
            } else if sound && a.hi < b.lo {
                Some(false)
            } else {
                None
            }
        }
        CmpOp::Gt => {
            if sound && a.lo > b.hi {
                Some(true)
            } else if (sound && a.hi <= b.lo) || a_le_b_known {
                Some(false)
            } else {
                None
            }
        }
        CmpOp::Eq => {
            if sound && a.lo == a.hi && b.lo == b.hi && a.lo == b.lo {
                Some(true)
            } else if sound && (a.hi < b.lo || b.hi < a.lo) {
                Some(false)
            } else {
                None
            }
        }
    };
    match decided {
        Some(true) => bool_interval(1.0, 1.0),
        Some(false) => bool_interval(0.0, 0.0),
        None => bool_interval(0.0, 1.0),
    }
}

/// N-ary sum with ordering-constraint refinement of both bounds.
///
/// The naive bound folds endpoint sums in operand order (sound under
/// monotone rounding). On top of that, operand pairs of the shape
/// `c*x + (-c)*y` with `c > 0` are refined by declared ordering facts:
///
/// * a fact `y <= x` proves the pair contributes at least
///   `c * max(0, lo(x) - hi(y))` — what proves stage expressions like
///   `L - ckpt` non-negative;
/// * a fact `x <= y` proves the pair contributes at most
///   `c * min(0, hi(x) - lo(y))` — what proves expressions like
///   `ckpt - L - 1` negative, so a division by them is not a reachable
///   ÷0.
///
/// The two refinements are gated independently: each replaces the naive
/// bound only when at least one pair of its own direction exists, so
/// programs with one-directional facts keep the other bound's exact
/// floating-point summation order.
fn transfer_add(
    program: &Program,
    ops: &[u32],
    values: &[AbstractValue],
    sym_values: &[AbstractValue],
    le: &[(u32, u32)],
) -> AbstractValue {
    let mut lo = 0.0f64;
    let mut hi = 0.0f64;
    let mut integral = true;
    let mut mnf = false;
    for &op in ops {
        let v = values[op as usize];
        lo += v.lo;
        hi += v.hi;
        integral &= v.integral;
        mnf |= v.may_nonfinite;
    }

    if !le.is_empty() && ops.len() >= 2 {
        let terms: Vec<Option<LinearTerm>> =
            ops.iter().map(|&op| linear_term(program, op)).collect();

        // Lower-bound refinement: pairs `c*x + (-c)*y` with `y <= x`.
        let mut used = vec![false; ops.len()];
        let mut refined = 0.0f64;
        let mut any_pair = false;
        for i in 0..ops.len() {
            if used[i] {
                continue;
            }
            let Some(ti) = terms[i] else { continue };
            if !ti.coeff.is_finite() || ti.coeff <= 0.0 {
                continue;
            }
            for j in 0..ops.len() {
                if i == j || used[j] {
                    continue;
                }
                let Some(tj) = terms[j] else { continue };
                if tj.coeff == -ti.coeff && le.contains(&(tj.sym, ti.sym)) {
                    let x = sym_values[ti.sym as usize];
                    let y = sym_values[tj.sym as usize];
                    refined += ti.coeff * (x.lo - y.hi).max(0.0);
                    used[i] = true;
                    used[j] = true;
                    any_pair = true;
                    break;
                }
            }
        }
        if any_pair {
            for (i, &op) in ops.iter().enumerate() {
                if !used[i] {
                    refined += values[op as usize].lo;
                }
            }
            lo = lo.max(refined);
        }

        // Upper-bound refinement, mirrored: pairs `c*x + (-c)*y` with
        // `x <= y`, contributing at most `c * min(0, hi(x) - lo(y))`.
        let mut used_hi = vec![false; ops.len()];
        let mut refined_hi = 0.0f64;
        let mut any_hi_pair = false;
        for i in 0..ops.len() {
            if used_hi[i] {
                continue;
            }
            let Some(ti) = terms[i] else { continue };
            if !ti.coeff.is_finite() || ti.coeff <= 0.0 {
                continue;
            }
            for j in 0..ops.len() {
                if i == j || used_hi[j] {
                    continue;
                }
                let Some(tj) = terms[j] else { continue };
                if tj.coeff == -ti.coeff && le.contains(&(ti.sym, tj.sym)) {
                    let x = sym_values[ti.sym as usize];
                    let y = sym_values[tj.sym as usize];
                    refined_hi += ti.coeff * (x.hi - y.lo).min(0.0);
                    used_hi[i] = true;
                    used_hi[j] = true;
                    any_hi_pair = true;
                    break;
                }
            }
        }
        if any_hi_pair {
            for (i, &op) in ops.iter().enumerate() {
                if !used_hi[i] {
                    refined_hi += values[op as usize].hi;
                }
            }
            hi = hi.min(refined_hi);
        }
    }

    AbstractValue::bounded(lo, hi, integral, mnf)
}

/// Recognizes an `Add` operand as `coeff * symbol`: a bare `Sym`, or a
/// two-operand `Mul` of a `Sym` and a `Const`.
fn linear_term(program: &Program, slot: u32) -> Option<LinearTerm> {
    match program.instr(slot as usize) {
        Instr::Sym(s) => Some(LinearTerm { coeff: 1.0, sym: s }),
        Instr::Mul(ops) if ops.len() == 2 => {
            match (
                program.instr(ops[0] as usize),
                program.instr(ops[1] as usize),
            ) {
                (Instr::Sym(s), Instr::Const(c)) | (Instr::Const(c), Instr::Sym(s)) => {
                    Some(LinearTerm { coeff: c, sym: s })
                }
                _ => None,
            }
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domain::SymbolDomain;
    use mist_symbolic::Context;

    /// Satellite check: `x / (ckpt - L - 1)` used to be a reported
    /// reachable ÷0 (the naive upper bound of `ckpt - L - 1` is
    /// `hi(ckpt) - lo(L) - 1 > 0`); with the mirrored ordering
    /// refinement the divisor is provably `<= -1`, the report
    /// disappears, and refined quotient bounds propagate.
    #[test]
    fn le_refinement_discharges_divisor_zero() {
        let ctx = Context::new();
        let l = ctx.symbol("L");
        let ckpt = ctx.symbol("ckpt");
        let x = ctx.symbol("x");
        let denom = ckpt - l - 1.0;
        let program = ctx.compile_program(&[("q", x / denom)]);

        let base = DomainMap::new()
            .declare("L", SymbolDomain::new(1.0, 32.0, true))
            .declare("ckpt", SymbolDomain::new(0.0, 32.0, true))
            .declare("x", SymbolDomain::new(0.0, 8.0, false));

        // Without the ordering fact the divisor straddles zero.
        let out = analyze(&program, &base);
        assert!(
            out.diags.iter().any(|d| d.code == "div-by-zero"),
            "unconstrained divisor must report ÷0"
        );

        // With `ckpt <= L` the divisor's refined range is [-33, -1]:
        // no report, and the quotient bounds follow the 4 corners.
        let refined = base.declare_le("ckpt", "L");
        let out = analyze(&program, &refined);
        assert!(
            !out.diags.iter().any(|d| d.code == "div-by-zero"),
            "ordering-refined divisor must not report ÷0: {:?}",
            out.diags
        );
        let root = program.root_slots()[0] as usize;
        let q = out.values[root];
        assert!(q.provably_finite(), "quotient must be provably finite");
        assert!(q.lo >= -8.0 && q.hi <= 0.0, "bounds [{}, {}]", q.lo, q.hi);
    }

    /// The two refinement directions are gated independently: a program
    /// whose facts only support the lower-bound pair keeps the naive
    /// upper bound bit for bit.
    #[test]
    fn one_directional_fact_leaves_other_bound_naive() {
        let ctx = Context::new();
        let l = ctx.symbol("L");
        let ckpt = ctx.symbol("ckpt");
        let program = ctx.compile_program(&[("r", l - ckpt)]);
        let domains = DomainMap::new()
            .declare("L", SymbolDomain::new(1.0, 32.0, true))
            .declare("ckpt", SymbolDomain::new(0.0, 32.0, true))
            .declare_le("ckpt", "L");
        let out = analyze(&program, &domains);
        let root = program.root_slots()[0] as usize;
        let v = out.values[root];
        assert_eq!(v.lo, 0.0, "lower bound refined by ckpt <= L");
        assert_eq!(v.hi, 32.0 - 0.0, "upper bound stays the naive sum");
    }
}
