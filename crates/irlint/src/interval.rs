//! Interval (abstract value) analysis over the SSA stream.
//!
//! Each slot is mapped to an [`AbstractValue`]: an interval `[lo, hi]`
//! guaranteed to contain every value the instruction can produce when
//! the symbols range over their declared [`DomainMap`](crate::DomainMap)
//! domains, plus an *integrality* bit and a *may-be-non-finite* bit.
//!
//! Soundness under round-to-nearest: every transfer function evaluates
//! the same floating-point operations the interpreter runs, at interval
//! endpoints (or 4-corner products/quotients). Because IEEE-754
//! round-to-nearest is monotone and these operations are coordinatewise
//! monotone, interior points cannot escape the endpoint results — no
//! directed rounding is needed. Whenever a bound overflows to infinity
//! the `may_nonfinite` bit is set, so "provably finite" claims survive
//! overflow too.

use mist_symbolic::{CmpOp, Instr, Program};

use crate::diag::{Analysis, Diagnostic, Severity};
use crate::domain::DomainMap;

/// What the analysis knows about one slot's value over the whole domain.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AbstractValue {
    /// Lower bound (`-inf` when unbounded below).
    pub lo: f64,
    /// Upper bound (`+inf` when unbounded above).
    pub hi: f64,
    /// True when the value is a mathematical integer at every point of
    /// the domain.
    pub integral: bool,
    /// True when evaluation may produce NaN or ±infinity somewhere in
    /// the domain (division by zero, overflow, undeclared symbol).
    pub may_nonfinite: bool,
}

impl AbstractValue {
    /// The unbounded, possibly-non-finite value (top of the lattice).
    pub fn top() -> Self {
        AbstractValue {
            lo: f64::NEG_INFINITY,
            hi: f64::INFINITY,
            integral: false,
            may_nonfinite: true,
        }
    }

    /// The abstract value of a constant.
    pub fn constant(c: f64) -> Self {
        AbstractValue {
            lo: c,
            hi: c,
            integral: c.is_finite() && c.fract() == 0.0,
            may_nonfinite: !c.is_finite(),
        }
    }

    /// True when both bounds are finite and no non-finite evaluation is
    /// possible.
    pub fn provably_finite(&self) -> bool {
        !self.may_nonfinite && self.lo.is_finite() && self.hi.is_finite()
    }

    /// True when the interval contains `v` (NaN is never contained).
    pub fn contains(&self, v: f64) -> bool {
        self.lo <= v && v <= self.hi
    }

    fn bounded(lo: f64, hi: f64, integral: bool, child_mnf: bool) -> Self {
        AbstractValue {
            lo,
            hi,
            integral,
            may_nonfinite: child_mnf || !(lo.is_finite() && hi.is_finite()),
        }
    }
}

/// Per-slot abstract values plus the diagnostics found along the way.
pub(crate) struct IntervalOutcome {
    pub values: Vec<AbstractValue>,
    pub diags: Vec<Diagnostic>,
}

/// A `coeff * symbol` term inside an `Add`, for ordering refinement.
#[derive(Debug, Clone, Copy, PartialEq)]
struct LinearTerm {
    coeff: f64,
    sym: u32,
}

pub(crate) fn analyze(program: &Program, domains: &DomainMap) -> IntervalOutcome {
    let table = program.symbols();
    let mut diags = Vec::new();
    let sym_values: Vec<AbstractValue> = table
        .names()
        .iter()
        .map(|name| match domains.get(name) {
            Some(d) => AbstractValue::bounded(d.lo, d.hi, d.integral, false),
            None => {
                diags.push(Diagnostic {
                    severity: Severity::Warning,
                    analysis: Analysis::Intervals,
                    code: "no-domain",
                    slot: None,
                    root: None,
                    message: format!("symbol `{name}` has no declared domain; assuming unbounded"),
                });
                AbstractValue::top()
            }
        })
        .collect();
    // Ordering facts resolved to symbol-table indices: (a, b) means a <= b.
    let le: Vec<(u32, u32)> = domains
        .le_pairs()
        .iter()
        .filter_map(|(a, b)| Some((table.index_of(a)? as u32, table.index_of(b)? as u32)))
        .collect();

    let mut values: Vec<AbstractValue> = Vec::with_capacity(program.len());
    for (slot, instr) in program.instrs().enumerate() {
        let v = match instr {
            Instr::Const(c) => AbstractValue::constant(c),
            Instr::Sym(i) => sym_values[i as usize],
            Instr::Add(ops) => transfer_add(program, ops, &values, &sym_values, &le),
            Instr::Mul(ops) => ops
                .iter()
                .map(|&op| values[op as usize])
                .reduce(mul_pair)
                .unwrap_or(AbstractValue::constant(1.0)),
            Instr::Min(ops) => fold_minmax(ops, &values, f64::min),
            Instr::Max(ops) => fold_minmax(ops, &values, f64::max),
            Instr::Div(a, b) => {
                transfer_div(values[a as usize], values[b as usize], slot, &mut diags)
            }
            Instr::Floor(a) => {
                let x = values[a as usize];
                AbstractValue::bounded(x.lo.floor(), x.hi.floor(), true, x.may_nonfinite)
            }
            Instr::Ceil(a) => {
                let x = values[a as usize];
                AbstractValue::bounded(x.lo.ceil(), x.hi.ceil(), true, x.may_nonfinite)
            }
            Instr::Cmp(op, a, b) => transfer_cmp(
                program,
                op,
                a,
                b,
                values[a as usize],
                values[b as usize],
                &le,
            ),
            Instr::Select(c, a, b) => {
                let (cv, av, bv) = (values[c as usize], values[a as usize], values[b as usize]);
                match guard_constant(cv) {
                    Some(true) => av,
                    Some(false) => bv,
                    None => AbstractValue {
                        lo: av.lo.min(bv.lo),
                        hi: av.hi.max(bv.hi),
                        integral: av.integral && bv.integral,
                        may_nonfinite: av.may_nonfinite || bv.may_nonfinite,
                    },
                }
            }
        };
        values.push(v);
    }

    IntervalOutcome { values, diags }
}

/// `Select` guards provable constant over `domains`, as specialization
/// facts for [`mist_symbolic::specialize`].
///
/// Runs the interval analysis and reports every `Select` whose
/// condition can never (or always) be zero for bindings inside the
/// declared domains. The facts are sound only for such in-domain
/// bindings: the tuner derives `domains` from the exact search space it
/// sweeps, so deleting these branches cannot change any evaluated row.
/// Diagnostics the analysis would raise (missing domains, division by
/// zero, …) are ignored here — run [`crate::lint_program`] for those.
pub fn constant_guards(program: &Program, domains: &DomainMap) -> Vec<mist_symbolic::GuardFact> {
    guards_from(program, &analyze(program, domains))
}

/// The full fact set the specializer can consume for `program` over the
/// declared `domains`: the [`constant_guards`] plus per-slot value
/// ranges (`lo`/`hi`/provably-finite), which license the specializer's
/// zero-product collapse for multiplications by frozen-to-zero ratios.
///
/// Facts hold for **in-domain** bindings only; callers evaluating
/// out-of-domain probe rows (the tuner's `ckpt = ∞` infeasibility
/// marker) must discard those rows without reading them back.
pub fn sweep_facts(program: &Program, domains: &DomainMap) -> mist_symbolic::SweepFacts {
    let outcome = analyze(program, domains);
    let guards = guards_from(program, &outcome);
    let ranges = outcome
        .values
        .iter()
        .map(|v| mist_symbolic::SlotRange {
            lo: v.lo,
            hi: v.hi,
            finite: v.provably_finite(),
        })
        .collect();
    mist_symbolic::SweepFacts::new(guards, ranges)
}

fn guards_from(program: &Program, outcome: &IntervalOutcome) -> Vec<mist_symbolic::GuardFact> {
    program
        .instrs()
        .enumerate()
        .filter_map(|(slot, instr)| match instr {
            Instr::Select(c, _, _) => {
                guard_constant(outcome.values[c as usize]).map(|taken| mist_symbolic::GuardFact {
                    slot: slot as u32,
                    taken,
                })
            }
            _ => None,
        })
        .collect()
}

/// `Some(taken_then)` when the guard is provably constant over the domain.
pub(crate) fn guard_constant(cv: AbstractValue) -> Option<bool> {
    if cv.may_nonfinite {
        return None;
    }
    if cv.lo > 0.0 || cv.hi < 0.0 {
        Some(true) // never zero: `Select` always takes the then-branch
    } else if cv.lo == 0.0 && cv.hi == 0.0 {
        Some(false)
    } else {
        None
    }
}

/// A product of interval endpoints, with `0 * inf` resolved to `0`: a
/// zero *endpoint* that is attained means the product is exactly zero,
/// and an infinite endpoint is a bound, not an attained value.
fn corner_mul(a: f64, b: f64) -> f64 {
    if a == 0.0 || b == 0.0 {
        0.0
    } else {
        a * b
    }
}

fn mul_pair(x: AbstractValue, y: AbstractValue) -> AbstractValue {
    let corners = [
        corner_mul(x.lo, y.lo),
        corner_mul(x.lo, y.hi),
        corner_mul(x.hi, y.lo),
        corner_mul(x.hi, y.hi),
    ];
    let lo = corners.iter().copied().fold(f64::INFINITY, f64::min);
    let hi = corners.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    AbstractValue::bounded(
        lo,
        hi,
        x.integral && y.integral,
        x.may_nonfinite || y.may_nonfinite,
    )
}

fn fold_minmax(ops: &[u32], values: &[AbstractValue], pick: fn(f64, f64) -> f64) -> AbstractValue {
    let mut it = ops.iter().map(|&op| values[op as usize]);
    let first = it.next().expect("min/max has at least one operand");
    it.fold(first, |acc, x| AbstractValue {
        lo: pick(acc.lo, x.lo),
        hi: pick(acc.hi, x.hi),
        integral: acc.integral && x.integral,
        may_nonfinite: acc.may_nonfinite || x.may_nonfinite,
    })
}

fn transfer_div(
    num: AbstractValue,
    den: AbstractValue,
    slot: usize,
    diags: &mut Vec<Diagnostic>,
) -> AbstractValue {
    if den.lo <= 0.0 && den.hi >= 0.0 {
        let nan_note = if num.lo <= 0.0 && num.hi >= 0.0 {
            " (0/0 would be NaN)"
        } else {
            ""
        };
        diags.push(Diagnostic {
            severity: Severity::Error,
            analysis: Analysis::Intervals,
            code: "div-by-zero",
            slot: Some(slot as u32),
            root: None,
            message: format!(
                "denominator range [{}, {}] contains zero{nan_note}",
                den.lo, den.hi
            ),
        });
        return AbstractValue::top();
    }
    let corners = [
        num.lo / den.lo,
        num.lo / den.hi,
        num.hi / den.lo,
        num.hi / den.hi,
    ];
    let lo = corners.iter().copied().fold(f64::INFINITY, f64::min);
    let hi = corners.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    AbstractValue::bounded(lo, hi, false, num.may_nonfinite || den.may_nonfinite)
}

fn transfer_cmp(
    program: &Program,
    op: CmpOp,
    a_slot: u32,
    b_slot: u32,
    a: AbstractValue,
    b: AbstractValue,
    le: &[(u32, u32)],
) -> AbstractValue {
    let bool_interval = |lo: f64, hi: f64| AbstractValue {
        lo,
        hi,
        integral: true,
        may_nonfinite: false,
    };
    // Ordering facts between raw symbols can decide a comparison even
    // when the per-symbol intervals overlap.
    let (a_le_b_known, b_le_a_known) = match (
        program.instr(a_slot as usize),
        program.instr(b_slot as usize),
    ) {
        (Instr::Sym(sa), Instr::Sym(sb)) => (le.contains(&(sa, sb)), le.contains(&(sb, sa))),
        _ => (false, false),
    };
    let sound = !a.may_nonfinite && !b.may_nonfinite;
    let decided = match op {
        CmpOp::Le => {
            if (sound && a.hi <= b.lo) || a_le_b_known {
                Some(true)
            } else if sound && a.lo > b.hi {
                Some(false)
            } else {
                None
            }
        }
        CmpOp::Lt => {
            if sound && a.hi < b.lo {
                Some(true)
            } else if (sound && a.lo >= b.hi) || b_le_a_known {
                Some(false)
            } else {
                None
            }
        }
        CmpOp::Ge => {
            if (sound && a.lo >= b.hi) || b_le_a_known {
                Some(true)
            } else if sound && a.hi < b.lo {
                Some(false)
            } else {
                None
            }
        }
        CmpOp::Gt => {
            if sound && a.lo > b.hi {
                Some(true)
            } else if (sound && a.hi <= b.lo) || a_le_b_known {
                Some(false)
            } else {
                None
            }
        }
        CmpOp::Eq => {
            if sound && a.lo == a.hi && b.lo == b.hi && a.lo == b.lo {
                Some(true)
            } else if sound && (a.hi < b.lo || b.hi < a.lo) {
                Some(false)
            } else {
                None
            }
        }
    };
    match decided {
        Some(true) => bool_interval(1.0, 1.0),
        Some(false) => bool_interval(0.0, 0.0),
        None => bool_interval(0.0, 1.0),
    }
}

/// N-ary sum with ordering-constraint refinement of the lower bound.
///
/// The naive bound folds endpoint sums in operand order (sound under
/// monotone rounding). On top of that, operand pairs of the shape
/// `c*x + (-c)*y` with a declared fact `y <= x` and `c > 0` are known to
/// contribute at least `c * max(0, lo(x) - hi(y))`, which is what proves
/// stage expressions like `L - ckpt` non-negative.
fn transfer_add(
    program: &Program,
    ops: &[u32],
    values: &[AbstractValue],
    sym_values: &[AbstractValue],
    le: &[(u32, u32)],
) -> AbstractValue {
    let mut lo = 0.0f64;
    let mut hi = 0.0f64;
    let mut integral = true;
    let mut mnf = false;
    for &op in ops {
        let v = values[op as usize];
        lo += v.lo;
        hi += v.hi;
        integral &= v.integral;
        mnf |= v.may_nonfinite;
    }

    if !le.is_empty() && ops.len() >= 2 {
        let terms: Vec<Option<LinearTerm>> =
            ops.iter().map(|&op| linear_term(program, op)).collect();
        let mut used = vec![false; ops.len()];
        let mut refined = 0.0f64;
        let mut any_pair = false;
        for i in 0..ops.len() {
            if used[i] {
                continue;
            }
            let Some(ti) = terms[i] else { continue };
            if !ti.coeff.is_finite() || ti.coeff <= 0.0 {
                continue;
            }
            for j in 0..ops.len() {
                if i == j || used[j] {
                    continue;
                }
                let Some(tj) = terms[j] else { continue };
                // Pair `c*x + (-c)*y` with the fact `y <= x`.
                if tj.coeff == -ti.coeff && le.contains(&(tj.sym, ti.sym)) {
                    let x = sym_values[ti.sym as usize];
                    let y = sym_values[tj.sym as usize];
                    refined += ti.coeff * (x.lo - y.hi).max(0.0);
                    used[i] = true;
                    used[j] = true;
                    any_pair = true;
                    break;
                }
            }
        }
        if any_pair {
            for (i, &op) in ops.iter().enumerate() {
                if !used[i] {
                    refined += values[op as usize].lo;
                }
            }
            lo = lo.max(refined);
        }
    }

    AbstractValue::bounded(lo, hi, integral, mnf)
}

/// Recognizes an `Add` operand as `coeff * symbol`: a bare `Sym`, or a
/// two-operand `Mul` of a `Sym` and a `Const`.
fn linear_term(program: &Program, slot: u32) -> Option<LinearTerm> {
    match program.instr(slot as usize) {
        Instr::Sym(s) => Some(LinearTerm { coeff: 1.0, sym: s }),
        Instr::Mul(ops) if ops.len() == 2 => {
            match (
                program.instr(ops[0] as usize),
                program.instr(ops[1] as usize),
            ) {
                (Instr::Sym(s), Instr::Const(c)) | (Instr::Const(c), Instr::Sym(s)) => {
                    Some(LinearTerm { coeff: c, sym: s })
                }
                _ => None,
            }
        }
        _ => None,
    }
}
