//! Symbol domains: the value ranges the tuner will sweep.

use std::collections::HashMap;

/// The range of values one symbol takes over a tuning sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SymbolDomain {
    /// Smallest value the symbol can be bound to.
    pub lo: f64,
    /// Largest value the symbol can be bound to.
    pub hi: f64,
    /// True when every binding is a mathematical integer (layer counts,
    /// ZeRO levels, ...), which unlocks exact `Cmp` provability.
    pub integral: bool,
}

impl SymbolDomain {
    /// An inclusive range `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics when `lo > hi` or either bound is NaN — a domain that
    /// contains no values would make every lint claim vacuous.
    pub fn new(lo: f64, hi: f64, integral: bool) -> Self {
        assert!(lo <= hi, "empty symbol domain [{lo}, {hi}]");
        SymbolDomain { lo, hi, integral }
    }

    /// A single-point domain.
    pub fn point(v: f64, integral: bool) -> Self {
        Self::new(v, v, integral)
    }
}

/// Domains for a program's symbols plus ordering facts between them.
///
/// The ordering constraints (`a <= b`) let the interval analysis prove
/// differences non-negative where naive per-symbol intervals cannot:
/// e.g. with `ckpt <= L` the stage expression `L - ckpt` (layers left
/// unticked by activation checkpointing) is provably `>= 0` even though
/// `lo(L) - hi(ckpt)` is negative.
#[derive(Debug, Clone, Default)]
pub struct DomainMap {
    symbols: HashMap<String, SymbolDomain>,
    le: Vec<(String, String)>,
}

impl DomainMap {
    /// An empty map (every symbol is unbounded).
    pub fn new() -> Self {
        Self::default()
    }

    /// Declares the domain of `name`; returns `self` for chaining.
    pub fn declare(mut self, name: &str, domain: SymbolDomain) -> Self {
        self.symbols.insert(name.to_owned(), domain);
        self
    }

    /// Declares the ordering fact `a <= b` (for all swept bindings);
    /// returns `self` for chaining.
    pub fn declare_le(mut self, a: &str, b: &str) -> Self {
        self.le.push((a.to_owned(), b.to_owned()));
        self
    }

    /// Domain of symbol `name`, if declared.
    pub fn get(&self, name: &str) -> Option<SymbolDomain> {
        self.symbols.get(name).copied()
    }

    /// All declared `a <= b` ordering facts.
    pub fn le_pairs(&self) -> &[(String, String)] {
        &self.le
    }

    /// Names of all declared symbols, sorted.
    pub fn symbol_names(&self) -> Vec<&str> {
        let mut v: Vec<&str> = self.symbols.keys().map(String::as_str).collect();
        v.sort_unstable();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn declares_and_reads_back() {
        let d = DomainMap::new()
            .declare("L", SymbolDomain::new(1.0, 96.0, true))
            .declare("wo", SymbolDomain::new(0.0, 1.0, false))
            .declare_le("ckpt", "L");
        assert_eq!(d.get("L"), Some(SymbolDomain::new(1.0, 96.0, true)));
        assert_eq!(d.get("missing"), None);
        assert_eq!(d.le_pairs(), &[("ckpt".to_owned(), "L".to_owned())]);
        assert_eq!(d.symbol_names(), vec!["L", "wo"]);
    }

    #[test]
    #[should_panic(expected = "empty symbol domain")]
    fn empty_domain_panics() {
        let _ = SymbolDomain::new(2.0, 1.0, false);
    }
}
