//! Static analysis over compiled symbolic SSA programs.
//!
//! Every number Mist reports — stage runtimes, peak memory, the MILP
//! objective — comes out of a compiled [`Program`](mist_symbolic::Program),
//! yet evaluation alone cannot tell a correct cost model from one that
//! adds bytes to seconds or divides by a tuner knob that sweeps through
//! zero. This crate is the missing static check: three cooperating
//! analyses over the SSA instruction stream, reported as
//! severity-sorted [`Diagnostic`]s.
//!
//! 1. **Unit inference** ([`Unit`], [`UnitRegistry`]) — symbols carry
//!    declared units (bytes, seconds, elements, dimensionless); units
//!    propagate through every opcode and mismatches are errors.
//! 2. **Interval analysis** ([`AbstractValue`], [`DomainMap`]) — symbol
//!    domains from the tuner's search space are pushed through the
//!    program to prove every root finite and non-negative over the whole
//!    sweep, and to flag reachable division by zero and `Select` guards
//!    that are constant over the domain.
//! 3. **Dead-code detection** — instructions that can never influence a
//!    root (untaken branches of constant guards) and symbols read only
//!    by such code.
//!
//! # Example
//!
//! ```
//! use mist_irlint::{lint_program, DomainMap, SymbolDomain, Unit, UnitRegistry};
//! use mist_symbolic::Context;
//!
//! let ctx = Context::new();
//! let bytes = ctx.symbol("bytes");
//! let secs = ctx.symbol("secs");
//! let program = ctx.compile_program(&[("bandwidth", bytes / secs)]);
//!
//! let registry = UnitRegistry::new()
//!     .declare_symbol("bytes", Unit::BYTES)
//!     .declare_symbol("secs", Unit::SECONDS);
//! let domains = DomainMap::new()
//!     .declare("bytes", SymbolDomain::new(0.0, 1e12, true))
//!     .declare("secs", SymbolDomain::new(1e-6, 60.0, false));
//!
//! let report = lint_program(&program, &registry, &domains, "example");
//! assert!(report.is_clean());
//! assert!(report.root_bounds[0].lo >= 0.0);
//! ```

#![warn(missing_docs)]

mod deadcode;
mod diag;
mod domain;
pub mod framework;
mod interval;
mod lint;
pub mod mono;
mod unit;

pub use diag::{Analysis, Diagnostic, LintReport, RootBounds, Severity};
pub use domain::{DomainMap, SymbolDomain};
pub use framework::{fixpoint, Direction, FactEnv, Lattice, TransferFunction};
pub use interval::{constant_guards, root_intervals, sweep_facts, AbstractValue};
pub use lint::lint_program;
pub use mono::{monotonicity, Mono, MonoReport, RootMono};
pub use unit::{DimExponents, Unit, UnitRegistry};
