//! Unit/dimension inference over the SSA stream.
//!
//! The unit lattice is deliberately small: a unit is either [`Unit::Any`]
//! — the polymorphic unknown that every constant carries and that
//! unifies with everything — or a vector of integer exponents over the
//! three base dimensions Mist's cost models use (**bytes**, **seconds**,
//! **elements**). "Dimensionless" is the all-zero exponent vector, which
//! is *concrete*: it unifies only with itself and `Any`.
//!
//! Transfer functions per opcode:
//!
//! * `Add`/`Min`/`Max` unify all operands (mismatch → error);
//! * `Mul`/`Div` compose exponents, treating `Any` as dimensionless
//!   unless *every* operand is `Any`;
//! * `Floor`/`Ceil` pass the operand unit through;
//! * `Cmp` requires unifiable operands and yields dimensionless;
//!   `CmpOp::Eq` additionally requires both operands to be provably
//!   integral over the domain (per the documented `Node::Cmp` invariant),
//!   which is checked against the interval analysis results;
//! * `Select` unifies its two branches (the guard may have any unit).
//!
//! The inference is a forward instance of the crate's
//! [`framework`](crate::framework): unification mismatches collapse to
//! [`Unit::Any`] in the transfer and are reported by a deterministic
//! post-pass over the final facts.

use std::collections::HashMap;
use std::fmt;

use mist_symbolic::{CmpOp, Instr, Program};

use crate::diag::{Analysis, Diagnostic, Severity};
use crate::framework::{self, Direction, FactEnv, Lattice, TransferFunction};
use crate::interval::AbstractValue;

/// Exponents over the base dimensions `[bytes, seconds, elements]`.
pub type DimExponents = [i8; 3];

/// A unit in the inference lattice.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Unit {
    /// Polymorphic unknown: unifies with every unit. All constants are
    /// `Any`, as are symbols without a registry declaration.
    Any,
    /// A concrete dimension vector; all-zero means dimensionless.
    Dim(DimExponents),
}

impl Unit {
    /// The `bytes` base unit.
    pub const BYTES: Unit = Unit::Dim([1, 0, 0]);
    /// The `seconds` base unit.
    pub const SECONDS: Unit = Unit::Dim([0, 1, 0]);
    /// The `elements` base unit (counts: layers, micro-batches, ...).
    pub const ELEMENTS: Unit = Unit::Dim([0, 0, 1]);
    /// The concrete dimensionless unit (ratios, levels, flags).
    pub const DIMENSIONLESS: Unit = Unit::Dim([0, 0, 0]);

    /// Unifies two units: `Any` yields the other side, equal dimension
    /// vectors yield themselves, and concrete mismatches yield `None`.
    pub fn unify(self, other: Unit) -> Option<Unit> {
        match (self, other) {
            (Unit::Any, u) | (u, Unit::Any) => Some(u),
            (Unit::Dim(a), Unit::Dim(b)) if a == b => Some(Unit::Dim(a)),
            _ => None,
        }
    }

    /// Unit of a product. `Any` operands act as dimensionless unless both
    /// sides are `Any`.
    pub fn multiply(self, other: Unit) -> Unit {
        match (self, other) {
            (Unit::Any, Unit::Any) => Unit::Any,
            (Unit::Any, Unit::Dim(d)) | (Unit::Dim(d), Unit::Any) => Unit::Dim(d),
            (Unit::Dim(a), Unit::Dim(b)) => Unit::Dim([
                a[0].saturating_add(b[0]),
                a[1].saturating_add(b[1]),
                a[2].saturating_add(b[2]),
            ]),
        }
    }

    /// Unit of a quotient. `Any` operands act as dimensionless unless
    /// both sides are `Any`.
    pub fn divide(self, other: Unit) -> Unit {
        let neg = match other {
            Unit::Any => Unit::Any,
            Unit::Dim(b) => Unit::Dim([
                0i8.saturating_sub(b[0]),
                0i8.saturating_sub(b[1]),
                0i8.saturating_sub(b[2]),
            ]),
        };
        self.multiply(neg)
    }
}

impl Lattice for Unit {
    /// `Any` is both the unification identity and the join identity.
    fn bottom() -> Self {
        Unit::Any
    }

    /// Join = unification, with concrete mismatches collapsing to
    /// `Any`; the diagnostic post-pass reports where that happened.
    fn join(&self, other: &Self) -> Self {
        self.unify(*other).unwrap_or(Unit::Any)
    }
}

impl fmt::Display for Unit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let d = match self {
            Unit::Any => return f.write_str("any"),
            Unit::Dim(d) => d,
        };
        match *d {
            [0, 0, 0] => f.write_str("dimensionless"),
            [1, 0, 0] => f.write_str("bytes"),
            [0, 1, 0] => f.write_str("seconds"),
            [0, 0, 1] => f.write_str("elements"),
            _ => {
                let mut first = true;
                for (name, e) in [("bytes", d[0]), ("seconds", d[1]), ("elements", d[2])] {
                    if e == 0 {
                        continue;
                    }
                    if !first {
                        f.write_str("·")?;
                    }
                    first = false;
                    if e == 1 {
                        f.write_str(name)?;
                    } else {
                        write!(f, "{name}^{e}")?;
                    }
                }
                Ok(())
            }
        }
    }
}

/// Declared units for a program's symbols and roots.
///
/// Populated by whoever compiled the program — for the stage cost models
/// that is `StageAnalyzer` (`mist-graph`), which knows that `mem_*` roots
/// are bytes, `*_compute` roots are seconds, and so on.
#[derive(Debug, Clone, Default)]
pub struct UnitRegistry {
    symbols: HashMap<String, Unit>,
    roots: HashMap<String, Unit>,
}

impl UnitRegistry {
    /// An empty registry (every symbol and root is `Any`).
    pub fn new() -> Self {
        Self::default()
    }

    /// Declares the unit of a symbol; returns `self` for chaining.
    pub fn declare_symbol(mut self, name: &str, unit: Unit) -> Self {
        self.symbols.insert(name.to_owned(), unit);
        self
    }

    /// Declares the unit a root must have; returns `self` for chaining.
    pub fn declare_root(mut self, name: &str, unit: Unit) -> Self {
        self.roots.insert(name.to_owned(), unit);
        self
    }

    /// Declared unit of symbol `name`, if any.
    pub fn symbol(&self, name: &str) -> Option<Unit> {
        self.symbols.get(name).copied()
    }

    /// Declared unit of root `name`, if any.
    pub fn root(&self, name: &str) -> Option<Unit> {
        self.roots.get(name).copied()
    }

    /// Names of all declared symbols, sorted.
    pub fn symbol_names(&self) -> Vec<&str> {
        let mut v: Vec<&str> = self.symbols.keys().map(String::as_str).collect();
        v.sort_unstable();
        v
    }
}

/// The forward unit-inference instance. Pure: mismatches collapse to
/// `Any` (exactly the value the old in-pass emission continued with);
/// the post-pass re-derives the mismatch reports from the final facts,
/// which equal the in-pass facts because operand units are final by the
/// time a slot is first transferred.
struct UnitAnalysis {
    sym_units: Vec<Unit>,
}

impl TransferFunction for UnitAnalysis {
    type Fact = Unit;

    fn direction(&self) -> Direction {
        Direction::Forward
    }

    fn transfer(&mut self, _slot: u32, instr: Instr<'_>, env: &FactEnv<'_, Unit>) -> Unit {
        let units = env.facts();
        match instr {
            Instr::Const(_) => Unit::Any,
            Instr::Sym(i) => self.sym_units[i as usize],
            Instr::Add(ops) | Instr::Min(ops) | Instr::Max(ops) => {
                fold_unify(ops, units).unwrap_or(Unit::Any)
            }
            Instr::Mul(ops) => ops
                .iter()
                .fold(Unit::Any, |acc, &op| acc.multiply(units[op as usize])),
            Instr::Div(a, b) => units[a as usize].divide(units[b as usize]),
            Instr::Floor(a) | Instr::Ceil(a) => units[a as usize],
            Instr::Cmp(..) => Unit::DIMENSIONLESS,
            Instr::Select(_, a, b) => units[a as usize].join(&units[b as usize]),
            // Superinstructions infer exactly like the op pairs they fuse
            // (see `mist_symbolic::fuse_superinstructions`).
            Instr::MulAdd(a, b, c) => {
                let m = units[a as usize].multiply(units[b as usize]);
                m.unify(units[c as usize]).unwrap_or(Unit::Any)
            }
            Instr::SelectCmp(_, _, _, t, e) => units[t as usize].join(&units[e as usize]),
            Instr::DivFloor(a, b) | Instr::DivCeil(a, b) => {
                units[a as usize].divide(units[b as usize])
            }
        }
    }
}

/// Unifies operand units left to right; `Err` carries the accumulated
/// unit and the first mismatching operand unit (for reporting).
fn fold_unify(ops: &[u32], units: &[Unit]) -> Result<Unit, (Unit, Unit)> {
    let mut acc = Unit::Any;
    for &op in ops {
        let u = units[op as usize];
        match acc.unify(u) {
            Some(v) => acc = v,
            None => return Err((acc, u)),
        }
    }
    Ok(acc)
}

/// Runs unit inference; returns the per-slot units and diagnostics.
pub(crate) fn analyze(
    program: &Program,
    registry: &UnitRegistry,
    values: &[AbstractValue],
) -> (Vec<Unit>, Vec<Diagnostic>) {
    let table = program.symbols();
    let mut diags = Vec::new();
    let sym_units: Vec<Unit> = table
        .names()
        .iter()
        .map(|name| match registry.symbol(name) {
            Some(u) => u,
            None => {
                diags.push(Diagnostic {
                    severity: Severity::Warning,
                    analysis: Analysis::Units,
                    code: "no-unit",
                    slot: None,
                    root: None,
                    message: format!("symbol `{name}` has no declared unit"),
                });
                Unit::Any
            }
        })
        .collect();

    let mut analysis = UnitAnalysis { sym_units };
    let units = framework::fixpoint(program, &mut analysis);

    // Diagnostic post-pass, in ascending slot order (identical to the
    // historical in-pass emission order).
    for (slot, instr) in program.instrs().enumerate() {
        match instr {
            Instr::Add(ops) | Instr::Min(ops) | Instr::Max(ops) => {
                let name = match instr {
                    Instr::Add(_) => "add",
                    Instr::Min(_) => "min",
                    _ => "max",
                };
                if let Err((acc, u)) = fold_unify(ops, &units) {
                    diags.push(Diagnostic {
                        severity: Severity::Error,
                        analysis: Analysis::Units,
                        code: "unit-mismatch",
                        slot: Some(slot as u32),
                        root: None,
                        message: format!("{name} mixes `{acc}` and `{u}`"),
                    });
                }
            }
            Instr::Cmp(op, a, b) => {
                let (ua, ub) = (units[a as usize], units[b as usize]);
                if ua.unify(ub).is_none() {
                    diags.push(Diagnostic {
                        severity: Severity::Error,
                        analysis: Analysis::Units,
                        code: "unit-mismatch",
                        slot: Some(slot as u32),
                        root: None,
                        message: format!("cmp compares `{ua}` with `{ub}`"),
                    });
                }
                if op == CmpOp::Eq {
                    let (va, vb) = (&values[a as usize], &values[b as usize]);
                    if !(va.integral && vb.integral) {
                        diags.push(Diagnostic {
                            severity: Severity::Error,
                            analysis: Analysis::Units,
                            code: "eq-nonintegral",
                            slot: Some(slot as u32),
                            root: None,
                            message: "`==` on operands not provably integral over the domain \
                                      (exact float equality is unreliable)"
                                .to_owned(),
                        });
                    }
                }
            }
            Instr::Select(_, a, b) => {
                let (ua, ub) = (units[a as usize], units[b as usize]);
                if ua.unify(ub).is_none() {
                    diags.push(Diagnostic {
                        severity: Severity::Error,
                        analysis: Analysis::Units,
                        code: "unit-mismatch",
                        slot: Some(slot as u32),
                        root: None,
                        message: format!("select branches have units `{ua}` and `{ub}`"),
                    });
                }
            }
            // Superinstructions report the same mismatches the fused op
            // pairs would have reported.
            Instr::MulAdd(a, b, c) => {
                let m = units[a as usize].multiply(units[b as usize]);
                let uc = units[c as usize];
                if m.unify(uc).is_none() {
                    diags.push(Diagnostic {
                        severity: Severity::Error,
                        analysis: Analysis::Units,
                        code: "unit-mismatch",
                        slot: Some(slot as u32),
                        root: None,
                        message: format!("add mixes `{m}` and `{uc}`"),
                    });
                }
            }
            Instr::SelectCmp(_, a, b, t, e) => {
                let (ua, ub) = (units[a as usize], units[b as usize]);
                if ua.unify(ub).is_none() {
                    diags.push(Diagnostic {
                        severity: Severity::Error,
                        analysis: Analysis::Units,
                        code: "unit-mismatch",
                        slot: Some(slot as u32),
                        root: None,
                        message: format!("cmp compares `{ua}` with `{ub}`"),
                    });
                }
                let (ut, ue) = (units[t as usize], units[e as usize]);
                if ut.unify(ue).is_none() {
                    diags.push(Diagnostic {
                        severity: Severity::Error,
                        analysis: Analysis::Units,
                        code: "unit-mismatch",
                        slot: Some(slot as u32),
                        root: None,
                        message: format!("select branches have units `{ut}` and `{ue}`"),
                    });
                }
            }
            _ => {}
        }
    }

    for (i, label) in program.root_labels().iter().enumerate() {
        let Some(declared) = registry.root(label) else {
            diags.push(Diagnostic {
                severity: Severity::Info,
                analysis: Analysis::Units,
                code: "no-root-unit",
                slot: None,
                root: Some(label.clone()),
                message: format!("root `{label}` has no declared unit"),
            });
            continue;
        };
        let slot = program.root_slots()[i];
        let inferred = units[slot as usize];
        if inferred.unify(declared).is_none() {
            diags.push(Diagnostic {
                severity: Severity::Error,
                analysis: Analysis::Units,
                code: "root-unit-mismatch",
                slot: Some(slot),
                root: Some(label.clone()),
                message: format!("root `{label}` has unit `{inferred}`, declared `{declared}`"),
            });
        }
    }

    (units, diags)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unify_and_compose() {
        assert_eq!(Unit::Any.unify(Unit::BYTES), Some(Unit::BYTES));
        assert_eq!(Unit::BYTES.unify(Unit::BYTES), Some(Unit::BYTES));
        assert_eq!(Unit::BYTES.unify(Unit::SECONDS), None);
        assert_eq!(Unit::DIMENSIONLESS.unify(Unit::BYTES), None);

        // bytes / seconds * seconds == bytes
        let rate = Unit::BYTES.divide(Unit::SECONDS);
        assert_eq!(rate, Unit::Dim([1, -1, 0]));
        assert_eq!(rate.multiply(Unit::SECONDS), Unit::BYTES);
        // constants (Any) are transparent in products
        assert_eq!(Unit::Any.multiply(Unit::BYTES), Unit::BYTES);
        assert_eq!(Unit::Any.multiply(Unit::Any), Unit::Any);
        assert_eq!(Unit::Any.divide(Unit::SECONDS), Unit::Dim([0, -1, 0]));
    }

    #[test]
    fn display_names() {
        assert_eq!(Unit::BYTES.to_string(), "bytes");
        assert_eq!(Unit::SECONDS.to_string(), "seconds");
        assert_eq!(Unit::ELEMENTS.to_string(), "elements");
        assert_eq!(Unit::DIMENSIONLESS.to_string(), "dimensionless");
        assert_eq!(Unit::Any.to_string(), "any");
        assert_eq!(
            Unit::BYTES.divide(Unit::SECONDS).to_string(),
            "bytes·seconds^-1"
        );
    }
}
