//! Diagnostics and lint reports.

use std::fmt;

/// How serious a diagnostic is.
///
/// Ordered by declaration so that ascending sort puts the most serious
/// first: `Error < Warning < Info`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// The program is provably wrong over the declared domain (unit
    /// mismatch, reachable division by zero, a root that can evaluate
    /// negative or non-finite). CI fails on these.
    Error,
    /// Suspicious but not provably wrong: a root whose non-negativity
    /// cannot be proved, a `Select` branch dead over the whole domain, a
    /// symbol only read by dead code.
    Warning,
    /// Informational findings such as dead instruction counts or
    /// registry declarations the program never reads.
    Info,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Error => "error",
            Severity::Warning => "warning",
            Severity::Info => "info",
        })
    }
}

/// Which of the three cooperating analyses produced a diagnostic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Analysis {
    /// Unit/dimension inference.
    Units,
    /// Interval (abstract value) analysis over the symbol domains.
    Intervals,
    /// Dead-code and unused-symbol detection.
    DeadCode,
}

impl fmt::Display for Analysis {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Analysis::Units => "units",
            Analysis::Intervals => "intervals",
            Analysis::DeadCode => "dead-code",
        })
    }
}

/// One finding of the linter, anchored to an instruction slot and the
/// first root whose subtree reaches it (when either is known).
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnostic {
    /// How serious the finding is.
    pub severity: Severity,
    /// Which analysis produced it.
    pub analysis: Analysis,
    /// Stable machine-readable code, e.g. `unit-mismatch` or `div-by-zero`.
    pub code: &'static str,
    /// SSA slot of the offending instruction, if the finding is local.
    pub slot: Option<u32>,
    /// Label of the first root whose subtree contains `slot`.
    pub root: Option<String>,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}] ({})", self.severity, self.code, self.analysis)?;
        if let Some(slot) = self.slot {
            write!(f, " slot {slot}")?;
        }
        if let Some(root) = &self.root {
            write!(f, " root `{root}`")?;
        }
        write!(f, ": {}", self.message)
    }
}

/// Proven bounds of one root over the declared symbol domains.
#[derive(Debug, Clone, PartialEq)]
pub struct RootBounds {
    /// The root's label.
    pub label: String,
    /// Lower bound (`-inf` when unbounded below).
    pub lo: f64,
    /// Upper bound (`+inf` when unbounded above).
    pub hi: f64,
    /// True when evaluation may produce NaN or infinity on some point of
    /// the domain (e.g. through a division whose denominator can be zero).
    pub may_nonfinite: bool,
}

/// The result of linting one [`Program`](mist_symbolic::Program):
/// severity-sorted diagnostics plus the proven bounds of every root.
#[derive(Debug, Clone)]
pub struct LintReport {
    /// Caller-supplied name of the linted program (e.g. `stage`).
    pub program: String,
    /// All findings, sorted most-severe first.
    pub diagnostics: Vec<Diagnostic>,
    /// Interval-analysis bounds per root, in root order.
    pub root_bounds: Vec<RootBounds>,
}

impl LintReport {
    /// Number of error-severity diagnostics.
    pub fn error_count(&self) -> usize {
        self.count(Severity::Error)
    }

    /// Number of warning-severity diagnostics.
    pub fn warning_count(&self) -> usize {
        self.count(Severity::Warning)
    }

    /// Number of info-severity diagnostics.
    pub fn info_count(&self) -> usize {
        self.count(Severity::Info)
    }

    /// True when the report contains no error-severity diagnostics.
    pub fn is_clean(&self) -> bool {
        self.error_count() == 0
    }

    fn count(&self, sev: Severity) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == sev)
            .count()
    }
}

impl fmt::Display for LintReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "program `{}`: {} error(s), {} warning(s), {} info",
            self.program,
            self.error_count(),
            self.warning_count(),
            self.info_count()
        )?;
        for d in &self.diagnostics {
            writeln!(f, "  {d}")?;
        }
        for rb in &self.root_bounds {
            writeln!(
                f,
                "  bounds `{}`: [{}, {}]{}",
                rb.label,
                rb.lo,
                rb.hi,
                if rb.may_nonfinite {
                    " (may be non-finite)"
                } else {
                    ""
                }
            )?;
        }
        Ok(())
    }
}
