//! Overlap-centric scheduling for Mist (paper §5.1) and the pipeline cost
//! model with inter-microbatch imbalance awareness (§5.3, Eq. 1).
//!
//! This crate owns the vocabulary shared by the tuner, the baselines and
//! the simulator:
//!
//! * [`StagePlan`] / [`TrainingPlan`] — a fully resolved training
//!   configuration (the tuner's output, the executor's input).
//! * [`stage_times`] — folds a stage's per-stream totals through the
//!   interference model `I` into the stable microbatch time `t` and the
//!   first/last-microbatch delta `d` (Eq. 5/6).
//! * [`mist_objective`] — the imbalance-aware pipeline iteration time
//!   (Eq. 1), plus the naive variants existing systems use
//!   ([`averaged_objective`], [`stable_only_objective`]) for the
//!   ablations of Figs. 13 and 15.
//! * [`overlap_template`] — the Fig. 7 schedule template: which
//!   computation, GPU↔GPU and CPU↔GPU transfers co-run in each slot.
//! * [`IterationSchedule`] — the event-level lowering consumed by the
//!   `mist-sim` discrete-event simulator.

mod phases;
mod pipeline;
mod plan;
mod template;

pub use phases::{stage_times, StageStreams};
pub use pipeline::{averaged_objective, mist_objective, stable_only_objective};
pub use plan::{IterationSchedule, StageMemory, StagePlan, StageTask, StreamSeconds, TrainingPlan};
pub use template::{overlap_template, OverlapSlot, SlotOp, TemplatePhase};
