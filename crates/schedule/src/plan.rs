//! Training-plan and event-schedule types.

use mist_graph::{StageCandidate, StageConfigValues, StagePoint, StageTapes};
use serde::{Deserialize, Serialize};

/// The fully resolved configuration of one pipeline stage: which devices
/// it runs on, how it parallelizes, and every memory-optimization knob
/// (Table 2 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StagePlan {
    /// Parallelism candidate (mesh, dp, tp, micro-batch, role).
    pub candidate: StageCandidate,
    /// Memory-optimization configuration (L, ckpt, ZeRO, offload ratios).
    pub config: StageConfigValues,
}

/// A complete training plan for one model on one cluster — the tuner's
/// output (paper §5.3: `G`, layer partitions, and per-stage tuples).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainingPlan {
    /// Gradient-accumulation steps `G` (microbatches per iteration).
    pub grad_accum: u32,
    /// Per-stage plans, in pipeline order.
    pub stages: Vec<StagePlan>,
    /// Global batch size this plan realises
    /// (`micro_batch · dp · grad_accum`, equal across stages).
    pub global_batch: u64,
}

impl TrainingPlan {
    /// Number of pipeline stages `S`.
    pub fn num_stages(&self) -> u32 {
        self.stages.len() as u32
    }

    /// Total layers across stages.
    pub fn total_layers(&self) -> u32 {
        self.stages.iter().map(|s| s.config.layers).sum()
    }

    /// Total GPUs used.
    pub fn total_gpus(&self) -> u32 {
        self.stages.iter().map(|s| s.candidate.mesh.total()).sum()
    }

    /// Checks internal consistency (batch arithmetic, in-flight counts).
    pub fn validate(&self) -> Result<(), String> {
        if self.stages.is_empty() {
            return Err("plan has no stages".into());
        }
        let s = self.num_stages();
        for (i, st) in self.stages.iter().enumerate() {
            let got = st.candidate.micro_batch * st.candidate.dp as u64 * self.grad_accum as u64;
            if got != self.global_batch {
                return Err(format!(
                    "stage {i}: b·dp·G = {got} but global batch is {}",
                    self.global_batch
                ));
            }
            let expect_inflight = self.grad_accum.min(s - i as u32);
            if st.config.inflight != expect_inflight {
                return Err(format!(
                    "stage {i}: inflight {} but 1F1B expects {expect_inflight}",
                    st.config.inflight
                ));
            }
            if st.config.ckpt > st.config.layers {
                return Err(format!("stage {i}: ckpt exceeds layers"));
            }
        }
        Ok(())
    }
}

/// Per-stream busy seconds of one task, ordered
/// `[compute, nccl, d2h, h2d]`.
pub type StreamSeconds = [f64; 4];

/// One schedulable unit of pipeline work for the simulator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StageTask {
    /// Forward-phase stream seconds of a stable microbatch.
    pub fwd: StreamSeconds,
    /// Backward-phase stream seconds of a stable microbatch.
    pub bwd: StreamSeconds,
    /// Extra stream seconds folded into the *first* microbatch's forward.
    pub first_extra: StreamSeconds,
    /// Extra stream seconds folded into the *last* microbatch's backward.
    pub last_extra: StreamSeconds,
    /// Memory shape of the stage, for the simulator's event-level ledger.
    pub mem: StageMemory,
}

/// Per-stage memory decomposition consumed by the simulator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StageMemory {
    /// Bytes resident across the whole iteration (model states after
    /// sharding/offloading, working sets, staging buffers).
    pub resident: f64,
    /// Activation bytes stashed per in-flight microbatch.
    pub act_per_mb: f64,
    /// Transient bytes while a forward task runs.
    pub transient_fwd: f64,
    /// Transient bytes while a backward task runs.
    pub transient_bwd: f64,
}

/// The event-level lowering of a [`TrainingPlan`]: per-stage task shapes
/// plus the microbatch count, ready for discrete-event execution.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IterationSchedule {
    /// Microbatches per iteration (`G`).
    pub grad_accum: u32,
    /// One task template per stage, pipeline order.
    pub stages: Vec<StageTask>,
}

impl IterationSchedule {
    /// Lowers evaluated stage points into an executable schedule.
    pub fn from_points(grad_accum: u32, points: &[StagePoint]) -> Self {
        assert!(grad_accum >= 1 && !points.is_empty());
        IterationSchedule {
            grad_accum,
            stages: points
                .iter()
                .map(|p| StageTask {
                    fwd: p.fwd,
                    bwd: p.bwd,
                    first_extra: p.first_extra,
                    last_extra: p.last_extra,
                    mem: StageMemory {
                        resident: p.mem_resident,
                        act_per_mb: p.mem_act_per_mb,
                        transient_fwd: p.mem_transient_fwd,
                        transient_bwd: p.mem_transient_bwd,
                    },
                })
                .collect(),
        }
    }

    /// Lowers a plan by evaluating each stage's tapes at its configuration.
    ///
    /// `tapes[i]` must be the analysis of `plan.stages[i].candidate`.
    pub fn from_plan(plan: &TrainingPlan, tapes: &[StageTapes]) -> Self {
        assert_eq!(plan.stages.len(), tapes.len());
        let points: Vec<StagePoint> = plan
            .stages
            .iter()
            .zip(tapes)
            .map(|(st, tp)| tp.eval_point(&st.config))
            .collect();
        Self::from_points(plan.grad_accum, &points)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mist_graph::StageRole;
    use mist_hardware::DeviceMesh;

    fn plan(g: u32, stages: u32) -> TrainingPlan {
        let per_stage: Vec<StagePlan> = (0..stages)
            .map(|i| {
                let mut cfg = StageConfigValues::plain(8, g.min(stages - i));
                cfg.zero = 1;
                StagePlan {
                    candidate: StageCandidate {
                        mesh: DeviceMesh::new(1, 2),
                        dp: 2,
                        tp: 1,
                        micro_batch: 1,
                        role: StageRole::of(i, stages),
                    },
                    config: cfg,
                }
            })
            .collect();
        TrainingPlan {
            grad_accum: g,
            stages: per_stage,
            global_batch: 2 * g as u64,
        }
    }

    #[test]
    fn valid_plan_passes_validation() {
        assert_eq!(plan(4, 2).validate(), Ok(()));
    }

    #[test]
    fn batch_mismatch_is_caught() {
        let mut p = plan(4, 2);
        p.global_batch = 999;
        assert!(p.validate().unwrap_err().contains("global batch"));
    }

    #[test]
    fn wrong_inflight_is_caught() {
        let mut p = plan(4, 2);
        p.stages[1].config.inflight = 7;
        assert!(p.validate().unwrap_err().contains("1F1B"));
    }

    #[test]
    fn ckpt_overflow_is_caught() {
        let mut p = plan(2, 1);
        p.stages[0].config.ckpt = 100;
        assert!(p.validate().unwrap_err().contains("ckpt"));
    }

    #[test]
    fn schedule_from_points_copies_streams() {
        let p = StagePoint {
            mem_fwd: 1.0,
            mem_bwd: 2.0,
            mem_resident: 0.5,
            mem_act_per_mb: 0.25,
            mem_transient_fwd: 0.1,
            mem_transient_bwd: 0.2,
            fwd: [1.0, 0.1, 0.0, 0.0],
            bwd: [2.0, 0.2, 0.0, 0.0],
            first_extra: [0.5, 0.0, 0.0, 0.0],
            last_extra: [0.0, 0.3, 0.0, 0.0],
        };
        let sched = IterationSchedule::from_points(3, &[p]);
        assert_eq!(sched.grad_accum, 3);
        assert_eq!(sched.stages[0].fwd[0], 1.0);
        assert_eq!(sched.stages[0].last_extra[1], 0.3);
    }
}
