//! Folding per-stream totals into microbatch times via the interference
//! model (Eq. 5/6).

use mist_graph::StagePoint;
use mist_interference::InterferenceModel;
use serde::{Deserialize, Serialize};

/// The `(t, d)` decomposition of a stage's runtime (paper Fig. 10):
/// `t` is the stable-microbatch wall-clock; `d` the extra wall-clock the
/// first and last microbatches add on top of one stable microbatch.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StageStreams {
    /// Stable microbatch time `t` (seconds).
    pub t: f64,
    /// First/last-microbatch delta `d` (seconds, ≥ 0).
    pub d: f64,
}

/// Computes `t = I(fwd) + I(bwd)` and
/// `d = I(fwd + first_extra) + I(bwd + last_extra) − t` for one stage
/// point (Eq. 5/6). Interference is applied *within* each phase: forward
/// transfers overlap forward compute, never backward compute.
pub fn stage_times(point: &StagePoint, model: &InterferenceModel) -> StageStreams {
    let i = |streams: [f64; 4]| model.predict(StagePoint::interference_tuple(streams));
    let t = i(point.fwd) + i(point.bwd);
    let first = add(point.fwd, point.first_extra);
    let last = add(point.bwd, point.last_extra);
    let d = (i(first) + i(last) - t).max(0.0);
    StageStreams { t, d }
}

fn add(a: [f64; 4], b: [f64; 4]) -> [f64; 4] {
    [a[0] + b[0], a[1] + b[1], a[2] + b[2], a[3] + b[3]]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn point() -> StagePoint {
        StagePoint {
            mem_fwd: 0.0,
            mem_bwd: 0.0,
            mem_resident: 0.0,
            mem_act_per_mb: 0.0,
            mem_transient_fwd: 0.0,
            mem_transient_bwd: 0.0,
            fwd: [10e-3, 2e-3, 1e-3, 1e-3],
            bwd: [20e-3, 2e-3, 0.0, 2e-3],
            first_extra: [3e-3, 1e-3, 0.0, 4e-3],
            last_extra: [0.0, 5e-3, 2e-3, 0.0],
        }
    }

    #[test]
    fn stable_time_reflects_overlap() {
        let m = InterferenceModel::pcie_defaults();
        let st = stage_times(&point(), &m);
        // Never better than pure compute, never worse than serial sum.
        assert!(st.t >= 30e-3);
        let serial: f64 = point().fwd.iter().sum::<f64>() + point().bwd.iter().sum::<f64>();
        assert!(st.t < serial);
    }

    #[test]
    fn delta_is_nonnegative_and_grows_with_extras() {
        let m = InterferenceModel::pcie_defaults();
        let mut p = point();
        let d1 = stage_times(&p, &m).d;
        p.first_extra[3] *= 4.0;
        let d2 = stage_times(&p, &m).d;
        assert!(d1 >= 0.0);
        assert!(d2 > d1);
    }

    #[test]
    fn extras_can_hide_inside_compute() {
        // A small extra transfer under a long compute phase costs almost
        // nothing extra — the overlap-centric schedule at work.
        let m = InterferenceModel::nvlink_defaults();
        let p = StagePoint {
            mem_fwd: 0.0,
            mem_bwd: 0.0,
            mem_resident: 0.0,
            mem_act_per_mb: 0.0,
            mem_transient_fwd: 0.0,
            mem_transient_bwd: 0.0,
            fwd: [50e-3, 0.0, 0.0, 0.0],
            bwd: [100e-3, 0.0, 0.0, 0.0],
            first_extra: [0.0, 0.0, 0.0, 5e-3],
            last_extra: [0.0, 0.0, 0.0, 0.0],
        };
        let st = stage_times(&p, &m);
        assert!(st.d < 1e-3, "delta {} should be mostly hidden", st.d);
    }

    #[test]
    fn zero_extras_give_zero_delta() {
        let m = InterferenceModel::pcie_defaults();
        let mut p = point();
        p.first_extra = [0.0; 4];
        p.last_extra = [0.0; 4];
        let st = stage_times(&p, &m);
        assert!(st.d.abs() < 1e-12);
    }
}
