//! Pipeline iteration-time objectives.
//!
//! [`mist_objective`] is the paper's Eq. 1: imbalance-aware, with the
//! bottleneck term, the pipeline fill/drain term, and the third term that
//! both charges first/last-microbatch extras *and* credits the overlap of
//! stage-independent communication into pipeline bubbles (Fig. 10).
//! The naive objectives used by prior systems are provided for ablation.

use crate::phases::StageStreams;

/// Eq. 1: `(G−1)·max_i t_i + Σ_i t_i + max_i (d_i − Σ_{j<i} t_j)`.
///
/// `stages[i]` carries `(t_i, d_i)`; `g` is the gradient-accumulation
/// step count.
///
/// # Panics
///
/// Panics on an empty stage list or `g == 0`.
pub fn mist_objective(stages: &[StageStreams], g: u32) -> f64 {
    assert!(!stages.is_empty() && g >= 1);
    let max_t = stages.iter().map(|s| s.t).fold(0.0, f64::max);
    let sum_t: f64 = stages.iter().map(|s| s.t).sum();
    let mut third = f64::NEG_INFINITY;
    let mut prefix = 0.0;
    for s in stages {
        third = third.max(s.d - prefix);
        prefix += s.t;
    }
    (g as f64 - 1.0) * max_t + sum_t + third.max(0.0)
}

/// The "averaged microbatch" objective used by prior auto-planners
/// (paper Shortcoming #3): spread each stage's delta uniformly over all
/// microbatches and ignore where it lands.
pub fn averaged_objective(stages: &[StageStreams], g: u32) -> f64 {
    assert!(!stages.is_empty() && g >= 1);
    let avg: Vec<f64> = stages.iter().map(|s| s.t + s.d / g as f64).collect();
    let max_t = avg.iter().cloned().fold(0.0, f64::max);
    let sum_t: f64 = avg.iter().sum();
    (g as f64 - 1.0) * max_t + sum_t
}

/// The "stable microbatch only" objective: ignore the deltas entirely.
pub fn stable_only_objective(stages: &[StageStreams], g: u32) -> f64 {
    assert!(!stages.is_empty() && g >= 1);
    let max_t = stages.iter().map(|s| s.t).fold(0.0, f64::max);
    let sum_t: f64 = stages.iter().map(|s| s.t).sum();
    (g as f64 - 1.0) * max_t + sum_t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn st(t: f64, d: f64) -> StageStreams {
        StageStreams { t, d }
    }

    #[test]
    fn single_stage_no_delta_is_g_times_t() {
        let s = [st(2.0, 0.0)];
        assert_eq!(mist_objective(&s, 5), 5.0 * 2.0);
        assert_eq!(averaged_objective(&s, 5), 10.0);
        assert_eq!(stable_only_objective(&s, 5), 10.0);
    }

    #[test]
    fn single_stage_delta_adds_once() {
        let s = [st(2.0, 0.7)];
        assert_eq!(mist_objective(&s, 4), 4.0 * 2.0 + 0.7);
    }

    #[test]
    fn balanced_pipeline_fill_and_drain() {
        // Classic 1F1B: S stages of t each → (G−1)·t + S·t.
        let s = [st(1.0, 0.0), st(1.0, 0.0), st(1.0, 0.0), st(1.0, 0.0)];
        assert_eq!(mist_objective(&s, 8), 7.0 + 4.0);
    }

    #[test]
    fn later_stage_delta_hides_in_bubbles() {
        // Stage 1's delta (0.8) is smaller than the fill time before it
        // (t_0 = 1.0), so it is fully hidden; stage 0's delta is not.
        let hidden = [st(1.0, 0.0), st(1.0, 0.8)];
        let exposed = [st(1.0, 0.8), st(1.0, 0.0)];
        let base = mist_objective(&[st(1.0, 0.0), st(1.0, 0.0)], 4);
        assert_eq!(mist_objective(&hidden, 4), base);
        assert_eq!(mist_objective(&exposed, 4), base + 0.8);
    }

    #[test]
    fn averaged_objective_underestimates_front_loaded_delta() {
        // Exactly the bottleneck-drifting failure mode of Shortcoming #3.
        let s = [st(1.0, 2.0), st(1.2, 0.0)];
        let real = mist_objective(&s, 16);
        let avg = averaged_objective(&s, 16);
        assert!(avg < real, "avg {avg} must underestimate {real}");
        let stable = stable_only_objective(&s, 16);
        assert!(stable < real);
    }

    #[test]
    fn bottleneck_stage_dominates_large_g() {
        let s = [st(1.0, 0.0), st(3.0, 0.0)];
        let g = 100;
        let got = mist_objective(&s, g);
        assert!((got - (99.0 * 3.0 + 4.0)).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn empty_stage_list_panics() {
        mist_objective(&[], 1);
    }
}
