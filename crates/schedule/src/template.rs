//! The overlapped schedule template (paper Fig. 7).
//!
//! The template answers, for every layer slot of a microbatch's forward
//! and backward passes, *what runs concurrently on each hardware engine*:
//!
//! * Forward of layer `k` overlaps the activation swap-out of layer `k−1`
//!   and the parameter swap-in + all-gather of layer `k+1`.
//! * Backward of layer `k` overlaps the gradient reduction / swap-out of
//!   layer `k+1` and the parameter/gradient/activation swap-in +
//!   all-gather of layer `k−1`.
//!
//! The structure is what guarantees layer `k`'s compute never waits for
//! its own data movement (everything it needs was staged one slot ahead),
//! and it is checked by the invariants tested below. The simulator's task
//! shapes and the analyzer's assumption that transfers overlap
//! phase-local compute both derive from this template.

use serde::{Deserialize, Serialize};

/// Which pass a slot belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TemplatePhase {
    /// Forward pass.
    Forward,
    /// Backward pass.
    Backward,
}

/// One operation placed on an engine inside a slot.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum SlotOp {
    /// Forward or backward compute of layer `k`.
    Compute {
        /// Layer index.
        layer: i64,
    },
    /// Activation swap-out (D2H) of layer `k`.
    ActSwapOut {
        /// Layer index.
        layer: i64,
    },
    /// Activation swap-in (H2D) of layer `k` for its backward.
    ActSwapIn {
        /// Layer index.
        layer: i64,
    },
    /// Parameter swap-in (H2D) of layer `k`.
    ParamSwapIn {
        /// Layer index.
        layer: i64,
    },
    /// ZeRO-3 parameter all-gather (NCCL) of layer `k`.
    ParamAllGather {
        /// Layer index.
        layer: i64,
    },
    /// Gradient reduction (NCCL) of layer `k`.
    GradReduce {
        /// Layer index.
        layer: i64,
    },
    /// Gradient swap-out (D2H) of layer `k`.
    GradSwapOut {
        /// Layer index.
        layer: i64,
    },
}

impl SlotOp {
    /// The layer the op concerns.
    pub fn layer(&self) -> i64 {
        match self {
            SlotOp::Compute { layer }
            | SlotOp::ActSwapOut { layer }
            | SlotOp::ActSwapIn { layer }
            | SlotOp::ParamSwapIn { layer }
            | SlotOp::ParamAllGather { layer }
            | SlotOp::GradReduce { layer }
            | SlotOp::GradSwapOut { layer } => *layer,
        }
    }
}

/// One slot of the template: everything co-scheduled while one layer
/// computes. Ops outside the `0..num_layers` range are boundary no-ops
/// and are filtered out.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OverlapSlot {
    /// Pass this slot belongs to.
    pub phase: TemplatePhase,
    /// The op on the compute engine.
    pub compute: SlotOp,
    /// Ops on the NCCL engine.
    pub nccl: Vec<SlotOp>,
    /// Ops on the D2H copy engine.
    pub d2h: Vec<SlotOp>,
    /// Ops on the H2D copy engine.
    pub h2d: Vec<SlotOp>,
}

/// Builds the Fig. 7 template for a stage of `num_layers` layers.
///
/// Flags select which data movements exist: `zero3` (parameter
/// all-gathers), `weight_offload`, `act_offload`, `grad_offload`.
pub fn overlap_template(
    num_layers: u32,
    zero3: bool,
    weight_offload: bool,
    act_offload: bool,
    grad_offload: bool,
) -> Vec<OverlapSlot> {
    assert!(num_layers >= 1);
    let n = num_layers as i64;
    let keep = |ops: Vec<SlotOp>| -> Vec<SlotOp> {
        ops.into_iter()
            .filter(|op| (0..n).contains(&op.layer()))
            .collect()
    };
    let mut slots = Vec::new();
    // Forward: compute k ∥ act-out k−1 ∥ prefetch k+1.
    for k in 0..n {
        let mut nccl = Vec::new();
        let mut d2h = Vec::new();
        let mut h2d = Vec::new();
        if zero3 {
            nccl.push(SlotOp::ParamAllGather { layer: k + 1 });
        }
        if act_offload {
            d2h.push(SlotOp::ActSwapOut { layer: k - 1 });
        }
        if weight_offload {
            h2d.push(SlotOp::ParamSwapIn { layer: k + 1 });
        }
        slots.push(OverlapSlot {
            phase: TemplatePhase::Forward,
            compute: SlotOp::Compute { layer: k },
            nccl: keep(nccl),
            d2h: keep(d2h),
            h2d: keep(h2d),
        });
    }
    // Backward: compute k ∥ grad-reduce/swap-out k+1 ∥ prefetch k−1.
    for k in (0..n).rev() {
        let mut nccl = vec![SlotOp::GradReduce { layer: k + 1 }];
        let mut d2h = Vec::new();
        let mut h2d = Vec::new();
        if zero3 {
            nccl.push(SlotOp::ParamAllGather { layer: k - 1 });
        }
        if grad_offload {
            d2h.push(SlotOp::GradSwapOut { layer: k + 1 });
        }
        if act_offload {
            h2d.push(SlotOp::ActSwapIn { layer: k - 1 });
        }
        if weight_offload {
            h2d.push(SlotOp::ParamSwapIn { layer: k - 1 });
        }
        slots.push(OverlapSlot {
            phase: TemplatePhase::Backward,
            compute: SlotOp::Compute { layer: k },
            nccl: keep(nccl),
            d2h: keep(d2h),
            h2d: keep(h2d),
        });
    }
    slots
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn template_has_two_slots_per_layer() {
        let t = overlap_template(8, true, true, true, true);
        assert_eq!(t.len(), 16);
        assert_eq!(
            t.iter()
                .filter(|s| s.phase == TemplatePhase::Forward)
                .count(),
            8
        );
    }

    /// The defining invariant of the overlap schedule: a layer's own data
    /// movement is never co-scheduled with its own compute — it was staged
    /// in an earlier slot.
    #[test]
    fn no_self_dependency_inside_a_slot() {
        let t = overlap_template(8, true, true, true, true);
        for slot in &t {
            let k = slot.compute.layer();
            for op in slot.nccl.iter().chain(&slot.d2h).chain(&slot.h2d) {
                // Gradient ops concern the *previous* backward layer and
                // are produced, not consumed — allowed to be adjacent but
                // never the same layer's prefetch.
                assert_ne!(
                    op.layer(),
                    k,
                    "layer {k} compute overlaps its own transfer {op:?}"
                );
            }
        }
    }

    /// Every layer's parameters are staged before its compute slot when
    /// offloading/ZeRO-3 is on.
    #[test]
    fn prefetch_precedes_compute() {
        let t = overlap_template(6, true, true, false, false);
        let fwd: Vec<&OverlapSlot> = t
            .iter()
            .filter(|s| s.phase == TemplatePhase::Forward)
            .collect();
        for (idx, slot) in fwd.iter().enumerate() {
            let k = slot.compute.layer();
            if k == 0 {
                continue; // Layer 0 is staged during the previous iteration.
            }
            let staged_earlier = fwd[..idx].iter().any(|s| {
                s.h2d
                    .iter()
                    .any(|op| matches!(op, SlotOp::ParamSwapIn { layer } if *layer == k))
            });
            assert!(staged_earlier, "layer {k} params not prefetched");
        }
    }

    #[test]
    fn flags_gate_engine_usage() {
        let bare = overlap_template(4, false, false, false, false);
        assert!(bare.iter().all(|s| s.d2h.is_empty() && s.h2d.is_empty()));
        // Gradient reduction exists even without offloading.
        assert!(bare
            .iter()
            .filter(|s| s.phase == TemplatePhase::Backward)
            .any(|s| !s.nccl.is_empty()));
        let with_ao = overlap_template(4, false, false, true, false);
        assert!(with_ao.iter().any(|s| !s.d2h.is_empty()));
    }

    #[test]
    fn boundary_ops_are_filtered() {
        let t = overlap_template(2, true, true, true, true);
        for slot in &t {
            for op in slot.nccl.iter().chain(&slot.d2h).chain(&slot.h2d) {
                assert!((0..2).contains(&op.layer()));
            }
        }
    }
}
