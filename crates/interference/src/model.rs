//! The slowdown-factor interference model and Algorithm 1.

use serde::{Deserialize, Serialize};

/// Number of concurrent stream classes the model resolves.
pub const NUM_STREAMS: usize = 4;

/// The four kernel classes of the paper: compute, GPU↔GPU communication,
/// host→device copies and device→host copies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum StreamKind {
    /// GPU computation (`C` in Algorithm 1).
    Compute = 0,
    /// NCCL GPU↔GPU communication (`G2G`).
    Nccl = 1,
    /// Host→device copy (`C2G`).
    H2d = 2,
    /// Device→host copy (`G2C`).
    D2h = 3,
}

impl StreamKind {
    /// All stream kinds in index order.
    pub fn all() -> [StreamKind; NUM_STREAMS] {
        [
            StreamKind::Compute,
            StreamKind::Nccl,
            StreamKind::H2d,
            StreamKind::D2h,
        ]
    }
}

/// Interference model: per-combination slowdown factors.
///
/// `factors[mask][i]` is the slowdown (≥ 1) stream `i` experiences while
/// exactly the streams in `mask` (a 4-bit set) are busy. Entries for masks
/// where `i` does not participate are unused.
///
/// # Example
///
/// ```
/// use mist_interference::InterferenceModel;
///
/// let m = InterferenceModel::pcie_defaults();
/// // 10 ms of compute fully hides 5 ms of H2D (modulo slowdown).
/// let t = m.predict([10e-3, 0.0, 5e-3, 0.0]);
/// assert!(t > 10e-3 && t < 10e-3 + 5e-3);
/// // Serial execution would be 15 ms; overlap must beat it.
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InterferenceModel {
    factors: Vec<[f64; NUM_STREAMS]>, // Indexed by mask, len 16.
}

impl InterferenceModel {
    /// Builds a model from explicit pairwise factors, compounding them
    /// multiplicatively (damped) for triples and quadruples.
    ///
    /// `pair(i, j)` returns the slowdown of stream `i` when co-running
    /// with stream `j` alone.
    pub fn from_pairwise(pair: impl Fn(usize, usize) -> f64) -> Self {
        let mut factors = vec![[1.0; NUM_STREAMS]; 1 << NUM_STREAMS];
        for (mask, entry) in factors.iter_mut().enumerate() {
            for (i, f) in entry.iter_mut().enumerate() {
                if mask & (1 << i) == 0 {
                    continue;
                }
                let mut acc = 1.0f64;
                for j in 0..NUM_STREAMS {
                    if j != i && mask & (1 << j) != 0 {
                        // Damped compounding: a third co-runner hurts, but
                        // less than the pairwise product would suggest.
                        acc *= pair(i, j).powf(0.85);
                    }
                }
                *f = acc.max(1.0);
            }
        }
        InterferenceModel { factors }
    }

    /// Default factors for PCIe-only machines (L4): NCCL and host copies
    /// share the PCIe bus and interfere strongly; compute is mostly
    /// isolated but loses some SMs/DRAM bandwidth to communication.
    pub fn pcie_defaults() -> Self {
        Self::from_pairwise(pcie_pair)
    }

    /// Default factors for NVLink machines (A100): GPU↔GPU traffic
    /// bypasses PCIe, so NCCL barely contends with host copies.
    pub fn nvlink_defaults() -> Self {
        Self::from_pairwise(nvlink_pair)
    }

    /// Builds a model directly from a factor table (used by fitting).
    pub fn from_factors(factors: Vec<[f64; NUM_STREAMS]>) -> Self {
        assert_eq!(factors.len(), 1 << NUM_STREAMS);
        InterferenceModel { factors }
    }

    /// Read access to the factor table.
    pub fn factors(&self) -> &[[f64; NUM_STREAMS]] {
        &self.factors
    }

    /// Predicts wall-clock time for one 4-tuple of per-stream busy times
    /// `[compute, nccl, h2d, d2h]` (seconds).
    ///
    /// Scalar specialisation of Algorithm 1: repeatedly take the current
    /// set of still-busy streams, apply its slowdown factors, consume the
    /// smallest scaled remaining time as fully-overlapped progress, and
    /// drop the exhausted stream; the final lone stream runs undisturbed.
    pub fn predict(&self, x: [f64; NUM_STREAMS]) -> f64 {
        debug_assert!(x.iter().all(|v| v.is_finite() && *v >= 0.0));
        let mut x = x;
        let mut total = 0.0;
        loop {
            let mask = live_mask(&x);
            if mask.count_ones() <= 1 {
                total += x.iter().sum::<f64>();
                return total;
            }
            let f = &self.factors[mask as usize];
            // Scaled remaining times; the minimum is the overlapped chunk.
            let mut overlap = f64::INFINITY;
            for i in 0..NUM_STREAMS {
                if mask & (1 << i) != 0 {
                    overlap = overlap.min(x[i] * f[i]);
                }
            }
            total += overlap;
            for i in 0..NUM_STREAMS {
                if mask & (1 << i) != 0 {
                    x[i] = (x[i] * f[i] - overlap).max(0.0) / f[i];
                    if x[i] < 1e-15 {
                        x[i] = 0.0;
                    }
                }
            }
        }
    }

    /// Batched Algorithm 1, exactly as printed in the paper: iterates
    /// concurrency levels `n = 4 → 2`, and for each of the `C(4, n)`
    /// stream combinations updates *all* rows whose live-stream pattern
    /// matches that combination. Returns one wall-clock time per row.
    pub fn predict_batch(&self, rows: &[[f64; NUM_STREAMS]]) -> Vec<f64> {
        let mut x: Vec<[f64; NUM_STREAMS]> = rows.to_vec();
        let mut t = vec![0.0f64; rows.len()];
        for n in (2..=NUM_STREAMS as u32).rev() {
            for mask in 1u8..(1 << NUM_STREAMS) {
                if mask.count_ones() != n {
                    continue;
                }
                self.update_mask(&mut x, &mut t, mask);
            }
        }
        for (ti, xi) in t.iter_mut().zip(&x) {
            *ti += xi.iter().sum::<f64>();
        }
        t
    }

    /// `Update` from Algorithm 1 for one mask, applied until no row
    /// matches it any more (consuming one overlap chunk may leave the row
    /// still matching a *smaller* mask, which later iterations handle).
    fn update_mask(&self, x: &mut [[f64; NUM_STREAMS]], t: &mut [f64], mask: u8) {
        let f = &self.factors[mask as usize];
        for (row, trow) in x.iter_mut().zip(t.iter_mut()) {
            if live_mask(row) != mask {
                continue;
            }
            let mut overlap = f64::INFINITY;
            for i in 0..NUM_STREAMS {
                if mask & (1 << i) != 0 {
                    overlap = overlap.min(row[i] * f[i]);
                }
            }
            *trow += overlap;
            for i in 0..NUM_STREAMS {
                if mask & (1 << i) != 0 {
                    row[i] = (row[i] * f[i] - overlap).max(0.0) / f[i];
                    if row[i] < 1e-15 {
                        row[i] = 0.0;
                    }
                }
            }
        }
    }
}

fn live_mask(x: &[f64; NUM_STREAMS]) -> u8 {
    let mut mask = 0u8;
    for (i, v) in x.iter().enumerate() {
        if *v > 0.0 {
            mask |= 1 << i;
        }
    }
    mask
}

/// Pairwise slowdowns on PCIe machines. Indices follow [`StreamKind`].
fn pcie_pair(i: usize, j: usize) -> f64 {
    const C: usize = 0;
    const N: usize = 1;
    const H2D: usize = 2;
    const D2H: usize = 3;
    match (i, j) {
        // Compute loses a little to any communication (the paper measures
        // 7.7% for a linear layer next to all-reduce).
        (C, N) => 1.08,
        (C, H2D) | (C, D2H) => 1.04,
        // NCCL over PCIe contends hard with host copies in its direction.
        (N, C) => 1.12,
        (N, H2D) | (N, D2H) => 1.45,
        (H2D, N) | (D2H, N) => 1.45,
        // Host copies in opposite directions are near-duplex.
        (H2D, D2H) | (D2H, H2D) => 1.08,
        (H2D, C) | (D2H, C) => 1.06,
        _ => 1.0,
    }
}

/// Pairwise slowdowns on NVLink machines: NCCL is off the PCIe bus.
fn nvlink_pair(i: usize, j: usize) -> f64 {
    const C: usize = 0;
    const N: usize = 1;
    const H2D: usize = 2;
    const D2H: usize = 3;
    match (i, j) {
        (C, N) => 1.05,
        (C, H2D) | (C, D2H) => 1.03,
        (N, C) => 1.08,
        (N, H2D) | (N, D2H) => 1.05,
        (H2D, N) | (D2H, N) => 1.05,
        (H2D, D2H) | (D2H, H2D) => 1.08,
        (H2D, C) | (D2H, C) => 1.05,
        _ => 1.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_stream_is_exact() {
        let m = InterferenceModel::pcie_defaults();
        assert_eq!(m.predict([3.0, 0.0, 0.0, 0.0]), 3.0);
        assert_eq!(m.predict([0.0, 0.0, 0.0, 2.5]), 2.5);
        assert_eq!(m.predict([0.0; 4]), 0.0);
    }

    #[test]
    fn overlap_beats_serial_but_costs_more_than_max() {
        let m = InterferenceModel::pcie_defaults();
        let x = [10e-3, 4e-3, 3e-3, 2e-3];
        let t = m.predict(x);
        let serial: f64 = x.iter().sum();
        let max = x.iter().cloned().fold(0.0, f64::max);
        assert!(t < serial, "t={t} serial={serial}");
        assert!(t >= max, "t={t} max={max}");
    }

    #[test]
    fn prediction_is_monotone_in_each_stream() {
        let m = InterferenceModel::pcie_defaults();
        let base = [5e-3, 2e-3, 1e-3, 1e-3];
        let t0 = m.predict(base);
        for i in 0..NUM_STREAMS {
            let mut x = base;
            x[i] *= 1.5;
            assert!(m.predict(x) > t0, "stream {i} not monotone");
        }
    }

    #[test]
    fn batch_matches_scalar() {
        let m = InterferenceModel::pcie_defaults();
        let rows = vec![
            [10e-3, 4e-3, 3e-3, 2e-3],
            [1e-3, 0.0, 0.0, 0.0],
            [0.0, 2e-3, 2e-3, 0.0],
            [5e-3, 5e-3, 5e-3, 5e-3],
            [0.0; 4],
        ];
        let batch = m.predict_batch(&rows);
        for (i, row) in rows.iter().enumerate() {
            let scalar = m.predict(*row);
            assert!(
                (batch[i] - scalar).abs() < 1e-12,
                "row {i}: batch {} vs scalar {scalar}",
                batch[i]
            );
        }
    }

    #[test]
    fn nvlink_interferes_less_than_pcie() {
        let pcie = InterferenceModel::pcie_defaults();
        let nvl = InterferenceModel::nvlink_defaults();
        let x = [5e-3, 5e-3, 5e-3, 0.0];
        assert!(nvl.predict(x) < pcie.predict(x));
    }

    #[test]
    fn compute_hides_small_transfers_almost_fully() {
        let m = InterferenceModel::nvlink_defaults();
        let t = m.predict([100e-3, 0.0, 1e-3, 0.0]);
        assert!(t < 101e-3, "t={t}");
        assert!(t > 100e-3);
    }

    #[test]
    fn factors_table_has_all_masks() {
        let m = InterferenceModel::pcie_defaults();
        assert_eq!(m.factors().len(), 16);
        for row in m.factors() {
            for f in row {
                assert!(*f >= 1.0);
            }
        }
    }
}
