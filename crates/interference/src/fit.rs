//! Data-driven fitting of the slowdown factors.
//!
//! The paper samples shapes/combinations of concurrent kernels, benchmarks
//! them, and trains the slowdown factors on the measurements (§5.2.2),
//! preferring a small intuitive parametric model over XGBoost-style
//! learners. We do the same with a seeded stochastic coordinate descent:
//! perturb one factor at a time, keep the move if the mean relative error
//! over the samples improves.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::model::{InterferenceModel, NUM_STREAMS};

/// Outcome of a fitting run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FitReport {
    /// Mean relative error before fitting.
    pub initial_error: f64,
    /// Mean relative error after fitting.
    pub final_error: f64,
    /// Accepted coordinate moves.
    pub accepted_moves: usize,
}

/// Mean relative error of `model` on `(busy-times, measured)` samples.
fn mean_rel_error(model: &InterferenceModel, samples: &[([f64; NUM_STREAMS], f64)]) -> f64 {
    assert!(!samples.is_empty());
    let mut acc = 0.0;
    for (x, measured) in samples {
        let pred = model.predict(*x);
        acc += (pred - measured).abs() / measured.max(1e-12);
    }
    acc / samples.len() as f64
}

/// Fits slowdown factors to measured samples, starting from `initial`.
///
/// `iterations` is the number of coordinate proposals; a few thousand
/// suffice for the 40-odd live parameters. Deterministic given `seed`.
///
/// # Panics
///
/// Panics if `samples` is empty.
pub fn fit(
    initial: &InterferenceModel,
    samples: &[([f64; NUM_STREAMS], f64)],
    iterations: usize,
    seed: u64,
) -> (InterferenceModel, FitReport) {
    let _span = mist_telemetry::span!(
        "interference.fit",
        samples = samples.len(),
        iterations = iterations
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let mut factors = initial.factors().to_vec();
    let mut best = initial.clone();
    let initial_error = mean_rel_error(&best, samples);
    let mut best_err = initial_error;
    let mut accepted = 0usize;

    // Only masks with ≥2 participants and the participating entries are
    // live parameters.
    let mut coords: Vec<(usize, usize)> = Vec::new();
    for mask in 0..factors.len() {
        if (mask as u8).count_ones() < 2 {
            continue;
        }
        for i in 0..NUM_STREAMS {
            if mask & (1 << i) != 0 {
                coords.push((mask, i));
            }
        }
    }

    for it in 0..iterations {
        let (mask, i) = coords[rng.gen_range(0..coords.len())];
        let step = 0.25 * (1.0 - it as f64 / iterations as f64) + 0.01;
        let delta = rng.gen_range(-step..step);
        let old = factors[mask][i];
        let proposed = (old * (1.0 + delta)).clamp(1.0, 4.0);
        if proposed == old {
            continue;
        }
        factors[mask][i] = proposed;
        let candidate = InterferenceModel::from_factors(factors.clone());
        let err = mean_rel_error(&candidate, samples);
        if err < best_err {
            best_err = err;
            best = candidate;
            accepted += 1;
        } else {
            factors[mask][i] = old;
        }
    }

    mist_telemetry::counter_add("interference.fit.iterations", iterations as u64);
    mist_telemetry::counter_add("interference.fit.accepted_moves", accepted as u64);
    mist_telemetry::gauge_set("interference.fit.initial_error", initial_error);
    mist_telemetry::gauge_set("interference.fit.final_error", best_err);
    let report = FitReport {
        initial_error,
        final_error: best_err,
        accepted_moves: accepted,
    };
    (best, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Synthetic ground truth: a hidden model with different factors.
    fn hidden_truth() -> InterferenceModel {
        InterferenceModel::from_pairwise(|i, j| match (i, j) {
            (0, 1) => 1.15,
            (1, 0) => 1.20,
            (1, 2) | (1, 3) | (2, 1) | (3, 1) => 1.60,
            (2, 3) | (3, 2) => 1.12,
            (0, _) => 1.06,
            (_, 0) => 1.09,
            _ => 1.0,
        })
    }

    fn make_samples(n: usize, seed: u64) -> Vec<([f64; NUM_STREAMS], f64)> {
        let truth = hidden_truth();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut out = Vec::with_capacity(n);
        while out.len() < n {
            let mut x = [0.0; NUM_STREAMS];
            for v in x.iter_mut() {
                if rng.gen_bool(0.7) {
                    *v = rng.gen_range(1e-4..20e-3);
                }
            }
            if x.iter().all(|v| *v == 0.0) {
                continue; // A fully idle sample carries no signal.
            }
            out.push((x, truth.predict(x)));
        }
        out
    }

    #[test]
    fn fitting_reduces_error_substantially() {
        let samples = make_samples(400, 7);
        let start = InterferenceModel::pcie_defaults();
        let (fitted, report) = fit(&start, &samples, 3000, 11);
        assert!(report.final_error < report.initial_error);
        assert!(
            report.final_error < 0.5 * report.initial_error,
            "initial {} final {}",
            report.initial_error,
            report.final_error
        );
        assert!(report.accepted_moves > 0);
        // Fitted model generalizes to fresh samples.
        let fresh = make_samples(200, 99);
        let err = mean_rel_error(&fitted, &fresh);
        assert!(err < 0.08, "holdout error {err}");
    }

    #[test]
    fn fit_is_deterministic_for_a_seed() {
        let samples = make_samples(100, 3);
        let start = InterferenceModel::pcie_defaults();
        let (m1, r1) = fit(&start, &samples, 500, 42);
        let (m2, r2) = fit(&start, &samples, 500, 42);
        assert_eq!(m1, m2);
        assert_eq!(r1.final_error, r2.final_error);
    }

    #[test]
    fn perfect_start_accepts_nothing_harmful() {
        let truth = hidden_truth();
        let samples = make_samples(150, 5);
        let (fitted, report) = fit(&truth, &samples, 400, 9);
        // Starting at the truth, error stays ~0.
        assert!(report.final_error <= report.initial_error + 1e-12);
        assert!(mean_rel_error(&fitted, &samples) < 1e-9);
    }
}
