//! Interference model for concurrently running kernel classes
//! (paper §5.2.2, Algorithm 1).
//!
//! When computation, NCCL (GPU↔GPU), D2H and H2D copies run at the same
//! time they slow each other down — on the PCIe-only L4 boxes, NCCL and
//! host copies literally share the bus. Mist assigns every combination of
//! co-running kernel classes a set of *slowdown factors* and resolves a
//! 4-tuple of per-stream busy times into a wall-clock prediction by
//! progressively consuming the overlap (Algorithm 1). A data-driven pass
//! fits the factors against measured samples — here produced by the
//! `mist-sim` discrete-event simulator, which hides its own ground-truth
//! law (see DESIGN.md).

mod fit;
mod model;

pub use fit::{fit, FitReport};
pub use model::{InterferenceModel, StreamKind, NUM_STREAMS};
