//! Cluster topology: nodes, links, and the Table 3 testbeds.

use serde::{Deserialize, Serialize};

use crate::gpu::GpuSpec;

/// A point-to-point or shared communication link.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkSpec {
    /// Achievable bandwidth in bytes/s (per direction).
    pub bandwidth: f64,
    /// Per-message latency in seconds.
    pub latency: f64,
}

impl LinkSpec {
    /// Creates a link, validating positivity.
    pub fn new(bandwidth: f64, latency: f64) -> Self {
        assert!(bandwidth > 0.0 && latency >= 0.0);
        LinkSpec { bandwidth, latency }
    }

    /// Time to move `bytes` across this link.
    pub fn transfer_time(&self, bytes: f64) -> f64 {
        assert!(bytes >= 0.0);
        self.latency + bytes / self.bandwidth
    }
}

/// Which testbed family a cluster belongs to (paper Table 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Platform {
    /// GCP g2 instances: L4 GPUs, PCIe intra-node, 100 Gbps Ethernet.
    GcpL4,
    /// AWS p4d.24xlarge: A100 40GB, NVLink intra-node, 400 Gbps EFA.
    AwsA100,
}

/// A homogeneous GPU cluster: `num_nodes` nodes of `gpus_per_node` GPUs.
///
/// Matches the shape of the paper's device mesh `(N, M)` (§5.3). The two
/// constructors encode Table 3; [`ClusterSpec::for_gpu_count`] applies the
/// paper's scaling rule (2/4/8 GPUs in one node, then 8 per node).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterSpec {
    /// Testbed family.
    pub platform: Platform,
    /// GPU model used throughout the cluster.
    pub gpu: GpuSpec,
    /// Number of nodes (paper symbol `N`).
    pub num_nodes: u32,
    /// GPUs per node (paper symbol `M`).
    pub gpus_per_node: u32,
    /// GPU↔GPU link inside one node (NVLink or PCIe P2P).
    pub intra_node: LinkSpec,
    /// GPU↔GPU link across nodes (Ethernet / EFA), per GPU pair.
    pub inter_node: LinkSpec,
}

impl ClusterSpec {
    /// GCP L4 testbed: PCIe Gen4 peer-to-peer intra-node (~20 GB/s
    /// effective, shared with host traffic), 100 Gbps (~11 GB/s effective)
    /// inter-node.
    pub fn gcp_l4(num_nodes: u32, gpus_per_node: u32) -> Self {
        assert!(num_nodes >= 1 && gpus_per_node >= 1);
        ClusterSpec {
            platform: Platform::GcpL4,
            gpu: GpuSpec::l4(),
            num_nodes,
            gpus_per_node,
            intra_node: LinkSpec::new(20e9, 8e-6),
            inter_node: LinkSpec::new(11e9, 25e-6),
        }
    }

    /// AWS A100 testbed: NVLink3 intra-node (~235 GB/s effective bus
    /// bandwidth), 400 Gbps EFA (~45 GB/s effective) inter-node.
    pub fn aws_a100(num_nodes: u32, gpus_per_node: u32) -> Self {
        assert!(num_nodes >= 1 && gpus_per_node >= 1);
        ClusterSpec {
            platform: Platform::AwsA100,
            gpu: GpuSpec::a100_40g(),
            num_nodes,
            gpus_per_node,
            intra_node: LinkSpec::new(235e9, 5e-6),
            inter_node: LinkSpec::new(45e9, 18e-6),
        }
    }

    /// Builds the Table 3 cluster shape for a total GPU count: 2, 4 and 8
    /// GPUs live in one node; 16 and 32 use 8-GPU nodes.
    ///
    /// # Panics
    ///
    /// Panics if `total_gpus` is 0 or not representable with 8-GPU nodes.
    pub fn for_gpu_count(platform: Platform, total_gpus: u32) -> Self {
        assert!(total_gpus >= 1, "cluster needs at least one GPU");
        let (nodes, per_node) = if total_gpus <= 8 {
            (1, total_gpus)
        } else {
            assert!(
                total_gpus.is_multiple_of(8),
                "multi-node clusters must use whole 8-GPU nodes, got {total_gpus}"
            );
            (total_gpus / 8, 8)
        };
        match platform {
            Platform::GcpL4 => ClusterSpec::gcp_l4(nodes, per_node),
            Platform::AwsA100 => ClusterSpec::aws_a100(nodes, per_node),
        }
    }

    /// Total GPU count `N · M`.
    pub fn total_gpus(&self) -> u32 {
        self.num_nodes * self.gpus_per_node
    }

    /// The link used by a collective over `group_size` ranks that spans
    /// `nodes_spanned` nodes: inter-node links bottleneck as soon as the
    /// group leaves a node.
    pub fn group_link(&self, nodes_spanned: u32) -> LinkSpec {
        if nodes_spanned <= 1 {
            self.intra_node
        } else {
            self.inter_node
        }
    }

    /// The *effective per-flow* inter-node link when `participants` GPUs
    /// of one node communicate across nodes simultaneously.
    ///
    /// `inter_node` models the node's NIC (100 Gbps Ethernet / 400 Gbps
    /// EFA). Unlike NVLink/PCIe P2P, the NIC is one shared resource: when
    /// all 8 GPUs of a node run concurrent data-parallel rings (or send
    /// pipeline activations at once), each flow gets an eighth of it. This
    /// sharing is what makes cross-node data parallelism so expensive and
    /// pipeline parallelism attractive at multi-node scale.
    pub fn shared_inter_node(&self, participants: u32) -> LinkSpec {
        let p = participants.max(1) as f64;
        LinkSpec::new(self.inter_node.bandwidth / p, self.inter_node.latency)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn for_gpu_count_matches_table3_shapes() {
        for &(total, nodes, per) in &[
            (2u32, 1u32, 2u32),
            (4, 1, 4),
            (8, 1, 8),
            (16, 2, 8),
            (32, 4, 8),
        ] {
            let c = ClusterSpec::for_gpu_count(Platform::GcpL4, total);
            assert_eq!((c.num_nodes, c.gpus_per_node), (nodes, per));
            assert_eq!(c.total_gpus(), total);
        }
    }

    #[test]
    #[should_panic(expected = "whole 8-GPU nodes")]
    fn irregular_multi_node_counts_rejected() {
        ClusterSpec::for_gpu_count(Platform::AwsA100, 12);
    }

    #[test]
    fn nvlink_is_much_faster_than_pcie_p2p() {
        let l4 = ClusterSpec::gcp_l4(1, 8);
        let a100 = ClusterSpec::aws_a100(1, 8);
        assert!(a100.intra_node.bandwidth > 5.0 * l4.intra_node.bandwidth);
    }

    #[test]
    fn group_link_picks_bottleneck() {
        let c = ClusterSpec::aws_a100(4, 8);
        assert_eq!(c.group_link(1), c.intra_node);
        assert_eq!(c.group_link(2), c.inter_node);
    }

    #[test]
    fn transfer_time_includes_latency() {
        let l = LinkSpec::new(1e9, 1e-5);
        assert!((l.transfer_time(1e9) - (1.0 + 1e-5)).abs() < 1e-12);
        assert_eq!(l.transfer_time(0.0), 1e-5);
    }
}
