//! Operator computation database.
//!
//! The paper estimates computation "using an operator computation database,
//! which benchmarks new operators or unseen input shapes on the current
//! hardware and stores results for future use" (§5.2.1). Without GPUs, we
//! substitute the *benchmark* step with the analytic [`GpuSpec`] kernel
//! model plus a small deterministic per-shape perturbation — so values
//! behave like measurements (shape-dependent, not perfectly smooth) while
//! staying reproducible. The *database* part (memoized shape → time lookup)
//! is implemented exactly as in the paper and is shared across tuner
//! threads.

use std::collections::HashMap;

use parking_lot::RwLock;
use serde::{Deserialize, Serialize};

use crate::gpu::GpuSpec;

/// Kind of a profiled operator.
///
/// Dimension meanings (`dims = [d0, d1, d2, d3]`):
///
/// | kind | d0 | d1 | d2 | d3 |
/// |---|---|---|---|---|
/// | `MatMul` | batch (rows) | m | n | k |
/// | `FlashAttn` | micro-batch | seq | hidden | heads |
/// | `StdAttn` | micro-batch | seq | hidden | heads |
/// | `LayerNorm` / `RmsNorm` | micro-batch | seq | hidden | – |
/// | `Elementwise` | bytes moved | – | – | – |
/// | `Embedding` | micro-batch | seq | hidden | vocab |
/// | `CrossEntropy` | micro-batch | seq | vocab | – |
/// | `OptimizerStep` | parameter count | – | – | – |
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OpKind {
    /// Dense GEMM.
    MatMul,
    /// Fused FlashAttention (no s² materialization, high efficiency).
    FlashAttn,
    /// Unfused attention (QKᵀ GEMM, softmax, PV GEMM with s² traffic).
    StdAttn,
    /// LayerNorm (two reduction passes).
    LayerNorm,
    /// RMSNorm (single reduction pass; cheaper — the paper credits part of
    /// LLaMa speedups to a better RMSNorm kernel, §6.2).
    RmsNorm,
    /// Generic memory-bound elementwise op over `d0` bytes.
    Elementwise,
    /// Embedding lookup + output projection cost model.
    Embedding,
    /// Final-logit cross-entropy.
    CrossEntropy,
    /// Fused Adam step over `d0` parameters (fp32 states).
    OptimizerStep,
}

/// A shape-resolved operator query (database key).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct OpQuery {
    /// Operator kind.
    pub kind: OpKind,
    /// Shape dimensions; see [`OpKind`] for meanings. Unused dims are 0.
    pub dims: [u64; 4],
}

impl OpQuery {
    /// Convenience constructor.
    pub fn new(kind: OpKind, dims: [u64; 4]) -> Self {
        OpQuery { kind, dims }
    }
}

/// Memoized operator-cost database for one GPU model.
///
/// Thread-safe: lookups take a read lock; first-touch "profiling" takes a
/// short write lock. All returned times are seconds.
#[derive(Debug)]
pub struct OpCostDb {
    gpu: GpuSpec,
    cache: RwLock<HashMap<OpQuery, f64>>,
    /// Relative amplitude of the deterministic measurement perturbation.
    noise_amplitude: f64,
}

impl OpCostDb {
    /// Creates a database for `gpu` with the default ±1.5% perturbation.
    pub fn new(gpu: GpuSpec) -> Self {
        OpCostDb {
            gpu,
            cache: RwLock::new(HashMap::new()),
            noise_amplitude: 0.015,
        }
    }

    /// Creates a database with *no* perturbation (exact analytic model),
    /// used by tests that check closed-form values.
    pub fn exact(gpu: GpuSpec) -> Self {
        OpCostDb {
            gpu,
            cache: RwLock::new(HashMap::new()),
            noise_amplitude: 0.0,
        }
    }

    /// The GPU this database profiles.
    pub fn gpu(&self) -> &GpuSpec {
        &self.gpu
    }

    /// Number of distinct shapes profiled so far.
    pub fn entries(&self) -> usize {
        self.cache.read().len()
    }

    /// Looks up (or "profiles" on first touch) the runtime of an operator.
    pub fn query(&self, q: OpQuery) -> f64 {
        if let Some(&t) = self.cache.read().get(&q) {
            return t;
        }
        let t = self.profile(q);
        self.cache.write().insert(q, t);
        t
    }

    /// The synthetic profiler: analytic kernel model + deterministic noise.
    fn profile(&self, q: OpQuery) -> f64 {
        let d = q.dims.map(|x| x as f64);
        let gpu = &self.gpu;
        let base = match q.kind {
            OpKind::MatMul => {
                let flops = 2.0 * d[0].max(1.0) * d[1] * d[2] * d[3];
                gpu.matmul_time(flops)
            }
            OpKind::FlashAttn => {
                // 4·b·s²·h FLOPs in one fused kernel; IO is O(b·s·h).
                let flops = 4.0 * d[0] * d[1] * d[1] * d[2];
                let io = 2.0 * 3.0 * d[0] * d[1] * d[2];
                gpu.matmul_time(flops).max(gpu.membound_time(io))
            }
            OpKind::StdAttn => {
                // Two GEMMs + softmax reading/writing the b·heads·s² score
                // tensor three times in fp16.
                let flops = 4.0 * d[0] * d[1] * d[1] * d[2];
                let score_bytes = 2.0 * d[0] * d[3] * d[1] * d[1];
                gpu.matmul_time(flops / 2.0) * 2.0 + gpu.membound_time(3.0 * score_bytes)
            }
            OpKind::LayerNorm => {
                let bytes = 2.0 * 2.0 * d[0] * d[1] * d[2];
                gpu.membound_time(bytes) * 1.25
            }
            OpKind::RmsNorm => {
                let bytes = 2.0 * 2.0 * d[0] * d[1] * d[2];
                gpu.membound_time(bytes)
            }
            OpKind::Elementwise => gpu.membound_time(d[0]),
            OpKind::Embedding => {
                // Gather is memory-bound over b·s·h fp16 activations.
                let bytes = 2.0 * d[0] * d[1] * d[2];
                gpu.membound_time(bytes)
            }
            OpKind::CrossEntropy => {
                // Softmax over the vocab dimension, memory bound.
                let bytes = 2.0 * 3.0 * d[0] * d[1] * d[2];
                gpu.membound_time(bytes)
            }
            OpKind::OptimizerStep => {
                // Adam reads p32/m/v + grad and writes p32/m/v/p16:
                // ≈ 4·4 + 2 + 3·4 + 2 = 32 bytes per parameter.
                gpu.membound_time(32.0 * d[0])
            }
        };
        base * (1.0 + self.noise(q))
    }

    /// Deterministic pseudo-noise in `[-amplitude, +amplitude]`, FNV-style
    /// hash over the query so the same shape always "measures" the same.
    fn noise(&self, q: OpQuery) -> f64 {
        if self.noise_amplitude == 0.0 {
            return 0.0;
        }
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut mix = |v: u64| {
            h ^= v;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        };
        mix(q.kind as u64 + 1);
        for d in q.dims {
            mix(d.wrapping_add(0x9E37_79B9_7F4A_7C15));
        }
        let unit = (h >> 11) as f64 / (1u64 << 53) as f64; // [0,1)
        (2.0 * unit - 1.0) * self.noise_amplitude
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn db() -> OpCostDb {
        OpCostDb::new(GpuSpec::l4())
    }

    #[test]
    fn queries_are_memoized_and_deterministic() {
        let db = db();
        let q = OpQuery::new(OpKind::MatMul, [1, 4096, 4096, 4096]);
        let t1 = db.query(q);
        let t2 = db.query(q);
        assert_eq!(t1, t2);
        assert_eq!(db.entries(), 1);
        // A second database must produce the identical "measurement".
        assert_eq!(OpCostDb::new(GpuSpec::l4()).query(q), t1);
    }

    #[test]
    fn flash_attention_beats_std_attention_at_long_seq() {
        let db = db();
        let flash = db.query(OpQuery::new(OpKind::FlashAttn, [2, 4096, 2560, 32]));
        let std = db.query(OpQuery::new(OpKind::StdAttn, [2, 4096, 2560, 32]));
        assert!(flash < std, "flash {flash} vs std {std}");
    }

    #[test]
    fn rmsnorm_cheaper_than_layernorm() {
        let db = db();
        let rms = db.query(OpQuery::new(OpKind::RmsNorm, [4, 2048, 4096, 0]));
        let ln = db.query(OpQuery::new(OpKind::LayerNorm, [4, 2048, 4096, 0]));
        assert!(rms < ln);
    }

    #[test]
    fn noise_is_bounded() {
        let db = db();
        let exact = OpCostDb::exact(GpuSpec::l4());
        for k in 1..20u64 {
            let q = OpQuery::new(OpKind::MatMul, [1, 1024 * k, 1024, 1024]);
            let noisy = db.query(q);
            let clean = exact.query(q);
            let rel = (noisy - clean).abs() / clean;
            assert!(rel <= 0.015 + 1e-12, "rel noise {rel}");
        }
    }

    #[test]
    fn matmul_time_scales_superlinearly_down() {
        // Doubling the batch less than doubles time for small kernels
        // (efficiency improves) — the "increase batch size to improve
        // kernel efficiency" effect from §3.1.
        let db = OpCostDb::exact(GpuSpec::l4());
        let t1 = db.query(OpQuery::new(OpKind::MatMul, [1, 512, 2560, 2560]));
        let t2 = db.query(OpQuery::new(OpKind::MatMul, [2, 512, 2560, 2560]));
        assert!(t2 < 2.0 * t1);
    }

    #[test]
    fn optimizer_step_scales_with_params() {
        let db = OpCostDb::exact(GpuSpec::a100_40g());
        let t1 = db.query(OpQuery::new(OpKind::OptimizerStep, [1_000_000, 0, 0, 0]));
        let t2 = db.query(OpQuery::new(OpKind::OptimizerStep, [2_000_000, 0, 0, 0]));
        // Bandwidth term doubles; the fixed kernel overhead keeps the ratio
        // a little under 2.
        assert!(t2 > 1.5 * t1 && t2 < 2.0 * t1);
    }
}
