//! Analytic cost model for NCCL-style collectives.
//!
//! Standard ring-algorithm formulas: an all-reduce over `g` ranks moves
//! `2·(g−1)/g · V` bytes through the slowest link; all-gather and
//! reduce-scatter move half that. These are the same first-order models
//! used by the paper's communication analysis ("communication is modeled
//! symbolically by dividing communicated bytes by the bandwidth", §5.2.1);
//! per-step latency terms keep tiny messages from looking free.

use crate::cluster::LinkSpec;

/// Ring all-reduce time for `bytes` over `group` ranks on `link`.
///
/// `group == 1` is free (no communication needed).
pub fn all_reduce_time(bytes: f64, group: u32, link: LinkSpec) -> f64 {
    assert!(bytes >= 0.0 && group >= 1);
    if group == 1 || bytes == 0.0 {
        return 0.0;
    }
    let g = group as f64;
    2.0 * (g - 1.0) / g * bytes / link.bandwidth + 2.0 * (g - 1.0) * link.latency
}

/// Ring all-gather time: each rank ends with the full `bytes` buffer.
///
/// `bytes` is the size of the *gathered result* (the full buffer).
pub fn all_gather_time(bytes: f64, group: u32, link: LinkSpec) -> f64 {
    assert!(bytes >= 0.0 && group >= 1);
    if group == 1 || bytes == 0.0 {
        return 0.0;
    }
    let g = group as f64;
    (g - 1.0) / g * bytes / link.bandwidth + (g - 1.0) * link.latency
}

/// Ring reduce-scatter time; `bytes` is the size of the *input* buffer.
pub fn reduce_scatter_time(bytes: f64, group: u32, link: LinkSpec) -> f64 {
    // Symmetric to all-gather.
    all_gather_time(bytes, group, link)
}

/// Point-to-point send of `bytes` (pipeline stage boundary).
pub fn p2p_time(bytes: f64, link: LinkSpec) -> f64 {
    assert!(bytes >= 0.0);
    if bytes == 0.0 {
        return 0.0;
    }
    link.transfer_time(bytes)
}

/// Binomial-tree broadcast of `bytes` to `group` ranks.
pub fn broadcast_time(bytes: f64, group: u32, link: LinkSpec) -> f64 {
    assert!(bytes >= 0.0 && group >= 1);
    if group == 1 || bytes == 0.0 {
        return 0.0;
    }
    let steps = (group as f64).log2().ceil();
    steps * link.transfer_time(bytes)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn link() -> LinkSpec {
        LinkSpec::new(10e9, 1e-5)
    }

    #[test]
    fn single_rank_collectives_are_free() {
        assert_eq!(all_reduce_time(1e9, 1, link()), 0.0);
        assert_eq!(all_gather_time(1e9, 1, link()), 0.0);
        assert_eq!(reduce_scatter_time(1e9, 1, link()), 0.0);
        assert_eq!(broadcast_time(1e9, 1, link()), 0.0);
    }

    #[test]
    fn all_reduce_is_twice_all_gather_in_bandwidth_term() {
        // With zero latency the ratio is exactly 2.
        let l = LinkSpec::new(10e9, 0.0);
        let ar = all_reduce_time(1e9, 8, l);
        let ag = all_gather_time(1e9, 8, l);
        assert!((ar / ag - 2.0).abs() < 1e-12);
    }

    #[test]
    fn all_reduce_bandwidth_term_saturates_with_group_size() {
        let l = LinkSpec::new(10e9, 0.0);
        // (g-1)/g grows toward 1, so time grows but is bounded by 2V/B.
        let t8 = all_reduce_time(1e9, 8, l);
        let t64 = all_reduce_time(1e9, 64, l);
        assert!(t64 > t8);
        assert!(t64 < 2.0 * 1e9 / 10e9 + 1e-9);
    }

    #[test]
    fn p2p_and_broadcast_scale_with_bytes() {
        assert!(p2p_time(2e9, link()) > p2p_time(1e9, link()));
        assert!(broadcast_time(1e9, 8, link()) > p2p_time(1e9, link()));
        assert_eq!(p2p_time(0.0, link()), 0.0);
    }

    #[test]
    fn latency_dominates_small_messages() {
        let t = all_reduce_time(8.0, 32, link());
        // 62 latency hops of 10 us each ≈ 620 us >> bandwidth term.
        assert!(t > 6e-4 && t < 7e-4, "got {t}");
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn collectives_monotone_in_bytes(
            b1 in 1.0f64..1e10,
            factor in 1.01f64..10.0,
            group in 2u32..64,
        ) {
            let l = LinkSpec::new(12e9, 1e-5);
            let b2 = b1 * factor;
            prop_assert!(all_reduce_time(b2, group, l) > all_reduce_time(b1, group, l));
            prop_assert!(all_gather_time(b2, group, l) > all_gather_time(b1, group, l));
            prop_assert!(p2p_time(b2, l) > p2p_time(b1, l));
        }

        #[test]
        fn all_reduce_equals_ag_plus_rs(bytes in 1.0f64..1e10, group in 2u32..64) {
            // Ring all-reduce = reduce-scatter + all-gather, exactly.
            let l = LinkSpec::new(12e9, 2e-5);
            let ar = all_reduce_time(bytes, group, l);
            let sum = reduce_scatter_time(bytes, group, l) + all_gather_time(bytes, group, l);
            prop_assert!((ar - sum).abs() < 1e-12 * ar.max(1.0));
        }

        #[test]
        fn faster_links_are_never_slower(
            bytes in 1.0f64..1e10,
            group in 2u32..32,
            bw in 1e9f64..100e9,
        ) {
            let slow = LinkSpec::new(bw, 1e-5);
            let fast = LinkSpec::new(bw * 2.0, 1e-5);
            prop_assert!(all_reduce_time(bytes, group, fast) <= all_reduce_time(bytes, group, slow));
        }
    }
}
