//! Hardware models for Mist: GPUs, clusters, links, collectives and the
//! operator cost database.
//!
//! The paper evaluates on real GCP L4 and AWS A100 machines (Table 3) and
//! profiles real kernels into an *operator computation database* (§5.2.1).
//! This crate is the synthetic substitute: a parametric, analytic hardware
//! model exposing the same quantities the tuner consumes — operator
//! runtimes, collective communication times, host-transfer times, and
//! memory capacities. See DESIGN.md for the substitution rationale.
//!
//! Everything is deterministic; the cost database adds a deterministic
//! per-shape "measurement" perturbation so costs behave like profiled
//! numbers (not perfectly smooth analytic curves).

mod cluster;
mod collective;
mod gpu;
mod mesh;
mod opcost;

pub use cluster::{ClusterSpec, LinkSpec, Platform};
pub use collective::{
    all_gather_time, all_reduce_time, broadcast_time, p2p_time, reduce_scatter_time,
};
pub use gpu::GpuSpec;
pub use mesh::DeviceMesh;
pub use opcost::{OpCostDb, OpKind, OpQuery};

/// Bytes per GiB, used throughout memory accounting.
pub const GIB: f64 = 1024.0 * 1024.0 * 1024.0;
