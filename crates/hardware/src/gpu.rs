//! GPU device specifications.

use serde::{Deserialize, Serialize};

use crate::GIB;

/// Static description of one GPU model.
///
/// The two concrete constructors match the paper's testbeds (Table 3):
/// [`GpuSpec::l4`] (GCP, PCIe-only, 24 GB) and [`GpuSpec::a100_40g`]
/// (AWS p4d, NVLink, 40 GB). Numbers are public datasheet values with
/// achievable-efficiency knobs chosen so the qualitative trade-offs of the
/// paper hold (L4: memory- and bandwidth-starved; A100: compute-rich,
/// fast interconnect).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GpuSpec {
    /// Marketing name, e.g. `"NVIDIA L4"`.
    pub name: String,
    /// Usable device memory in bytes (total minus framework reserve).
    pub memory_bytes: f64,
    /// Dense half-precision tensor-core peak, in FLOP/s.
    pub peak_half_flops: f64,
    /// Device memory bandwidth in bytes/s (bounds memory-bound kernels).
    pub hbm_bandwidth: f64,
    /// Host link (PCIe) bandwidth per direction in bytes/s, as achieved by
    /// pinned-memory cudaMemcpy (offloading uses this).
    pub pcie_bandwidth: f64,
    /// Fixed per-kernel launch overhead in seconds.
    pub kernel_overhead: f64,
    /// Peak fraction of `peak_half_flops` large GEMMs actually achieve.
    pub matmul_max_efficiency: f64,
    /// FLOP count at which GEMM efficiency reaches half of its maximum;
    /// smaller kernels run proportionally less efficiently (tile quantization,
    /// launch latency). This is what makes larger micro-batches faster per
    /// sample — a key effect the paper exploits (§3.1 "kernel efficiency").
    pub matmul_half_efficiency_flops: f64,
}

impl GpuSpec {
    /// NVIDIA L4 (Ada, 24 GB, PCIe Gen4).
    ///
    /// 121 TFLOPS dense FP16/BF16, ~300 GB/s GDDR6, PCIe Gen4 x16
    /// (~24 GB/s achievable). ~2 GiB reserved for context/framework.
    pub fn l4() -> Self {
        GpuSpec {
            name: "NVIDIA L4".to_owned(),
            memory_bytes: 22.0 * GIB,
            peak_half_flops: 121e12,
            hbm_bandwidth: 300e9,
            pcie_bandwidth: 24e9,
            kernel_overhead: 6e-6,
            matmul_max_efficiency: 0.62,
            matmul_half_efficiency_flops: 3.0e10,
        }
    }

    /// NVIDIA A100-SXM4-40GB (Ampere, NVLink3).
    ///
    /// 312 TFLOPS dense FP16/BF16, 1555 GB/s HBM2e, PCIe Gen4 x16.
    pub fn a100_40g() -> Self {
        GpuSpec {
            name: "NVIDIA A100 40GB".to_owned(),
            memory_bytes: 38.0 * GIB,
            peak_half_flops: 312e12,
            hbm_bandwidth: 1555e9,
            pcie_bandwidth: 24e9,
            kernel_overhead: 5e-6,
            matmul_max_efficiency: 0.70,
            matmul_half_efficiency_flops: 8.0e10,
        }
    }

    /// Efficiency of a GEMM with the given FLOP count, in `(0, max]`.
    ///
    /// Uses a saturating curve `max · f / (f + f_half)`: tiny kernels waste
    /// most of the machine, large kernels approach `matmul_max_efficiency`.
    pub fn matmul_efficiency(&self, flops: f64) -> f64 {
        assert!(flops > 0.0, "matmul with non-positive flops");
        self.matmul_max_efficiency * flops / (flops + self.matmul_half_efficiency_flops)
    }

    /// Wall-clock seconds for a dense GEMM of `flops` FLOPs.
    pub fn matmul_time(&self, flops: f64) -> f64 {
        flops / (self.peak_half_flops * self.matmul_efficiency(flops)) + self.kernel_overhead
    }

    /// Wall-clock seconds for a memory-bound kernel moving `bytes` bytes.
    pub fn membound_time(&self, bytes: f64) -> f64 {
        assert!(bytes >= 0.0);
        bytes / self.hbm_bandwidth + self.kernel_overhead
    }

    /// Host transfer time for `bytes` over PCIe (one direction).
    pub fn host_transfer_time(&self, bytes: f64) -> f64 {
        assert!(bytes >= 0.0);
        bytes / self.pcie_bandwidth + 10e-6
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn l4_and_a100_differ_in_the_right_direction() {
        let l4 = GpuSpec::l4();
        let a100 = GpuSpec::a100_40g();
        assert!(a100.memory_bytes > l4.memory_bytes);
        assert!(a100.peak_half_flops > l4.peak_half_flops);
        assert!(a100.hbm_bandwidth > l4.hbm_bandwidth);
    }

    #[test]
    fn efficiency_is_monotonic_and_bounded() {
        let gpu = GpuSpec::l4();
        let mut prev = 0.0;
        for exp in 6..15 {
            let eff = gpu.matmul_efficiency(10f64.powi(exp));
            assert!(eff > prev, "efficiency must increase with size");
            assert!(eff <= gpu.matmul_max_efficiency);
            prev = eff;
        }
    }

    #[test]
    fn larger_gemms_have_better_throughput() {
        let gpu = GpuSpec::l4();
        let small = gpu.matmul_time(1e9);
        let large = gpu.matmul_time(1e12);
        // Throughput = flops/time must improve with size.
        assert!(1e12 / large > 1e9 / small);
    }

    #[test]
    fn times_are_positive_and_scale() {
        let gpu = GpuSpec::a100_40g();
        assert!(gpu.membound_time(1e9) > 0.0);
        assert!(gpu.host_transfer_time(2e9) > gpu.host_transfer_time(1e9));
        // 1 GB over ~24 GB/s PCIe is about 42 ms.
        let t = gpu.host_transfer_time(1e9);
        assert!(t > 0.03 && t < 0.06, "got {t}");
    }
}
