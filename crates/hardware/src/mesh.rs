//! Device sub-meshes assigned to pipeline stages.

use serde::{Deserialize, Serialize};

use crate::cluster::{ClusterSpec, LinkSpec};

/// The devices assigned to one pipeline stage: `nodes × gpus_per_node`
/// (paper notation `(n_i, m_i)`, §5.3).
///
/// Inside a stage mesh, tensor-parallel groups are placed innermost
/// (consecutive GPUs within a node — the standard Megatron-LM placement),
/// and data-parallel groups span the remaining dimension. The mesh exposes
/// which physical link each collective runs on, which is what makes TP over
/// PCIe expensive and TP over NVLink cheap in the tuner.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct DeviceMesh {
    /// Number of nodes in this stage's sub-mesh.
    pub nodes: u32,
    /// GPUs used per node (may be less than the node's GPU count when a
    /// node is shared by several stages).
    pub gpus_per_node: u32,
}

impl DeviceMesh {
    /// Creates a mesh, validating positivity.
    pub fn new(nodes: u32, gpus_per_node: u32) -> Self {
        assert!(nodes >= 1 && gpus_per_node >= 1, "empty device mesh");
        DeviceMesh {
            nodes,
            gpus_per_node,
        }
    }

    /// Total GPU count in the mesh.
    pub fn total(&self) -> u32 {
        self.nodes * self.gpus_per_node
    }

    /// Whether a `(dp, tp)` factorization fits this mesh.
    ///
    /// Requires `dp·tp == total` and TP groups that do not straddle nodes
    /// unless they must (tp > gpus_per_node only allowed when it uses whole
    /// nodes).
    pub fn supports(&self, dp: u32, tp: u32) -> bool {
        if dp == 0 || tp == 0 || dp * tp != self.total() {
            return false;
        }
        if tp <= self.gpus_per_node {
            // TP inside a node: must tile the node evenly.
            self.gpus_per_node.is_multiple_of(tp)
        } else {
            // TP spanning nodes: must use whole nodes.
            tp.is_multiple_of(self.gpus_per_node)
        }
    }

    /// The link a TP collective of size `tp` runs over. Cross-node TP
    /// shares the node NIC among all of the node's GPUs.
    pub fn tp_link(&self, cluster: &ClusterSpec, tp: u32) -> LinkSpec {
        if tp <= self.gpus_per_node {
            cluster.intra_node
        } else {
            cluster.shared_inter_node(self.gpus_per_node)
        }
    }

    /// The link a DP collective of size `dp` runs over, given the TP size.
    ///
    /// With TP innermost, each DP group strides by `tp`; it stays inside a
    /// node only while `dp ≤ gpus_per_node / tp`. When DP rings leave the
    /// node, *every* GPU of the node participates in some ring at the
    /// same time, so each flow gets `1/gpus_per_node` of the NIC.
    pub fn dp_link(&self, cluster: &ClusterSpec, dp: u32, tp: u32) -> LinkSpec {
        let per_node_dp = if tp >= self.gpus_per_node {
            1
        } else {
            self.gpus_per_node / tp
        };
        if dp <= per_node_dp {
            cluster.intra_node
        } else {
            cluster.shared_inter_node(self.gpus_per_node)
        }
    }

    /// Enumerates the stage sub-mesh shapes available on `cluster`,
    /// Alpa-style: `(1, 2^k)` slices of a node, and `(n, M)` groups of
    /// whole nodes.
    pub fn candidates(cluster: &ClusterSpec) -> Vec<DeviceMesh> {
        let mut out = Vec::new();
        let mut m = 1;
        while m <= cluster.gpus_per_node {
            out.push(DeviceMesh::new(1, m));
            m *= 2;
        }
        if cluster.gpus_per_node.is_power_of_two()
            && !out.contains(&DeviceMesh::new(1, cluster.gpus_per_node))
        {
            out.push(DeviceMesh::new(1, cluster.gpus_per_node));
        }
        for n in 2..=cluster.num_nodes {
            out.push(DeviceMesh::new(n, cluster.gpus_per_node));
        }
        out
    }

    /// Enumerates the `(dp, tp)` factorizations supported by this mesh
    /// (both powers of two, TP capped at one node's GPUs times node count).
    pub fn dp_tp_choices(&self) -> Vec<(u32, u32)> {
        let total = self.total();
        let mut out = Vec::new();
        let mut tp = 1;
        while tp <= total {
            if total.is_multiple_of(tp) {
                let dp = total / tp;
                if self.supports(dp, tp) {
                    out.push((dp, tp));
                }
            }
            tp *= 2;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::Platform;

    #[test]
    fn supports_validates_factorization() {
        let mesh = DeviceMesh::new(2, 8);
        assert!(mesh.supports(2, 8));
        assert!(mesh.supports(16, 1));
        assert!(mesh.supports(1, 16)); // TP over two whole nodes.
        assert!(!mesh.supports(3, 5));
        assert!(!mesh.supports(4, 8)); // 32 != 16.
    }

    #[test]
    fn tp_link_prefers_intra_node() {
        let cluster = ClusterSpec::for_gpu_count(Platform::AwsA100, 16);
        let mesh = DeviceMesh::new(2, 8);
        assert_eq!(mesh.tp_link(&cluster, 8), cluster.intra_node);
        // Cross-node TP shares the node NIC among all 8 GPUs.
        assert_eq!(mesh.tp_link(&cluster, 16), cluster.shared_inter_node(8));
        assert!(mesh.tp_link(&cluster, 16).bandwidth < cluster.inter_node.bandwidth / 7.0);
    }

    #[test]
    fn dp_link_depends_on_tp_packing() {
        let cluster = ClusterSpec::for_gpu_count(Platform::AwsA100, 16);
        let mesh = DeviceMesh::new(2, 8);
        // tp=8 fills a node, so any dp>1 crosses nodes — and every GPU of
        // the node rings at once, sharing the NIC.
        assert_eq!(mesh.dp_link(&cluster, 2, 8), cluster.shared_inter_node(8));
        // tp=2 leaves 4 dp slots per node.
        assert_eq!(mesh.dp_link(&cluster, 4, 2), cluster.intra_node);
        assert_eq!(mesh.dp_link(&cluster, 8, 2), cluster.shared_inter_node(8));
    }

    #[test]
    fn candidates_cover_cluster() {
        let cluster = ClusterSpec::for_gpu_count(Platform::GcpL4, 32);
        let c = DeviceMesh::candidates(&cluster);
        assert!(c.contains(&DeviceMesh::new(1, 1)));
        assert!(c.contains(&DeviceMesh::new(1, 8)));
        assert!(c.contains(&DeviceMesh::new(4, 8)));
        // All candidates fit in the cluster.
        for m in &c {
            assert!(m.nodes <= cluster.num_nodes);
            assert!(m.gpus_per_node <= cluster.gpus_per_node);
        }
    }

    #[test]
    fn dp_tp_choices_multiply_to_total() {
        let mesh = DeviceMesh::new(1, 8);
        let choices = mesh.dp_tp_choices();
        assert!(!choices.is_empty());
        for (dp, tp) in choices {
            assert_eq!(dp * tp, 8);
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn dp_tp_choices_are_always_supported(nodes in 1u32..5, per in 1u32..9) {
            let mesh = DeviceMesh::new(nodes, per);
            for (dp, tp) in mesh.dp_tp_choices() {
                prop_assert!(mesh.supports(dp, tp), "({dp},{tp}) on {mesh:?}");
                prop_assert_eq!(dp * tp, mesh.total());
            }
        }

        #[test]
        fn candidates_tile_the_cluster(total in prop::sample::select(vec![2u32, 4, 8, 16, 32])) {
            let cluster = crate::cluster::ClusterSpec::for_gpu_count(
                crate::cluster::Platform::GcpL4, total);
            for mesh in DeviceMesh::candidates(&cluster) {
                prop_assert!(mesh.total() <= cluster.total_gpus());
                prop_assert!(mesh.gpus_per_node <= cluster.gpus_per_node);
                prop_assert!(mesh.nodes <= cluster.num_nodes);
            }
        }
    }
}
