//! Counter / gauge / histogram handles and the serializable snapshot.
//!
//! Handles are cheap `Arc`-backed clones: the collector hands out one
//! handle per registered name, and every clone updates the same cell.
//! Counters and gauges are lock-free atomics; histograms take a
//! `parking_lot::Mutex` only on `record`, which is off the hot path
//! (callers go through the collector's flag-gated free functions).

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

/// Monotonically increasing `u64` metric.
///
/// Clones share the underlying cell. Increments are relaxed atomics:
/// there is no ordering requirement between metric updates, only that
/// no increment is lost.
#[derive(Debug, Clone)]
pub struct Counter {
    value: Arc<AtomicU64>,
}

impl Counter {
    /// Creates a detached counter (not registered with any collector).
    pub fn new() -> Self {
        Counter {
            value: Arc::new(AtomicU64::new(0)),
        }
    }

    /// Adds `n` to the counter.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds 1 to the counter.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn value(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    /// Resets the counter to zero (existing handles keep working).
    pub fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

impl Default for Counter {
    fn default() -> Self {
        Self::new()
    }
}

/// Last-write-wins `f64` metric, stored as bit-cast atomics.
#[derive(Debug, Clone)]
pub struct Gauge {
    bits: Arc<AtomicU64>,
}

impl Gauge {
    /// Creates a detached gauge initialized to 0.0.
    pub fn new() -> Self {
        Gauge {
            bits: Arc::new(AtomicU64::new(0f64.to_bits())),
        }
    }

    /// Overwrites the gauge value.
    pub fn set(&self, v: f64) {
        self.bits.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Raises the gauge to `v` if `v` is larger (high-water mark).
    pub fn set_max(&self, v: f64) {
        let mut cur = self.bits.load(Ordering::Relaxed);
        while v > f64::from_bits(cur) {
            match self.bits.compare_exchange_weak(
                cur,
                v.to_bits(),
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Current value.
    pub fn value(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }

    /// Resets the gauge to 0.0.
    pub fn reset(&self) {
        self.set(0.0);
    }
}

impl Default for Gauge {
    fn default() -> Self {
        Self::new()
    }
}

#[derive(Debug, Default)]
struct HistogramState {
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

/// Streaming summary histogram (count / sum / min / max).
///
/// Mist's workloads need distribution *summaries* (fit residuals, span
/// durations), not bucketed percentiles, so the state is four scalars
/// behind a mutex rather than a bucket array.
#[derive(Debug, Clone)]
pub struct Histogram {
    state: Arc<Mutex<HistogramState>>,
}

impl Histogram {
    /// Creates a detached, empty histogram.
    pub fn new() -> Self {
        Histogram {
            state: Arc::new(Mutex::new(HistogramState::default())),
        }
    }

    /// Records one observation.
    pub fn record(&self, v: f64) {
        let mut s = self.state.lock();
        if s.count == 0 {
            s.min = v;
            s.max = v;
        } else {
            s.min = s.min.min(v);
            s.max = s.max.max(v);
        }
        s.count += 1;
        s.sum += v;
    }

    /// Current summary.
    pub fn summary(&self) -> HistogramSummary {
        let s = self.state.lock();
        HistogramSummary {
            count: s.count,
            sum: s.sum,
            min: if s.count == 0 { 0.0 } else { s.min },
            max: if s.count == 0 { 0.0 } else { s.max },
            mean: if s.count == 0 {
                0.0
            } else {
                s.sum / s.count as f64
            },
        }
    }

    /// Clears all recorded observations.
    pub fn reset(&self) {
        *self.state.lock() = HistogramState::default();
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

/// Serializable summary of one histogram.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HistogramSummary {
    /// Number of observations.
    pub count: u64,
    /// Sum of observations.
    pub sum: f64,
    /// Smallest observation (0.0 when empty).
    pub min: f64,
    /// Largest observation (0.0 when empty).
    pub max: f64,
    /// Mean observation (0.0 when empty).
    pub mean: f64,
}

/// Point-in-time copy of every registered metric, sorted by name.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, f64>,
    /// Histogram summaries by name.
    pub histograms: BTreeMap<String, HistogramSummary>,
}

impl MetricsSnapshot {
    /// True when no metric of any kind is present.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Counter value by name (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Gauge value by name (0.0 when absent).
    pub fn gauge(&self, name: &str) -> f64 {
        self.gauges.get(name).copied().unwrap_or(0.0)
    }

    /// Renders an aligned plain-text table (one metric per line), for
    /// `mist-cli tune --metrics` output.
    pub fn text_table(&self) -> String {
        let mut width = 0usize;
        for name in self
            .counters
            .keys()
            .chain(self.gauges.keys())
            .chain(self.histograms.keys())
        {
            width = width.max(name.len());
        }
        let mut out = String::new();
        for (name, v) in &self.counters {
            out.push_str(&format!("{name:<width$}  {v}\n"));
        }
        for (name, v) in &self.gauges {
            out.push_str(&format!("{name:<width$}  {v:.6}\n"));
        }
        for (name, h) in &self.histograms {
            out.push_str(&format!(
                "{name:<width$}  count={} mean={:.6} min={:.6} max={:.6}\n",
                h.count, h.mean, h.min, h.max
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_handles_share_state() {
        let c = Counter::new();
        let c2 = c.clone();
        c.add(3);
        c2.inc();
        assert_eq!(c.value(), 4);
        c.reset();
        assert_eq!(c2.value(), 0);
    }

    #[test]
    fn gauge_set_max_is_high_water() {
        let g = Gauge::new();
        g.set_max(2.0);
        g.set_max(1.0);
        assert_eq!(g.value(), 2.0);
        g.set(0.5);
        assert_eq!(g.value(), 0.5);
    }

    #[test]
    fn histogram_summary_tracks_extremes() {
        let h = Histogram::new();
        assert_eq!(h.summary().count, 0);
        h.record(2.0);
        h.record(-1.0);
        h.record(5.0);
        let s = h.summary();
        assert_eq!(s.count, 3);
        assert_eq!(s.min, -1.0);
        assert_eq!(s.max, 5.0);
        assert_eq!(s.mean, 2.0);
    }

    #[test]
    fn snapshot_round_trips_through_json() {
        let mut snap = MetricsSnapshot::default();
        snap.counters.insert("a".into(), 7);
        snap.gauges.insert("b".into(), 1.5);
        snap.histograms.insert(
            "c".into(),
            HistogramSummary {
                count: 1,
                sum: 2.0,
                min: 2.0,
                max: 2.0,
                mean: 2.0,
            },
        );
        let json = serde_json::to_string(&snap).unwrap();
        let back: MetricsSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back, snap);
    }
}
