//! Chrome Trace Event Format export.
//!
//! Produces the JSON object form (`{"traceEvents": [...]}`) of the
//! Trace Event Format, loadable in Perfetto (<https://ui.perfetto.dev>)
//! and `chrome://tracing`. Only the event kinds the viewers need are
//! emitted: `B`/`E` duration pairs and `M` metadata (process and thread
//! names). Timestamps are microseconds.

use serde::Value;

use crate::collector::{ArgValue, SpanRecord};

fn arg_to_value(arg: &ArgValue) -> Value {
    match arg {
        ArgValue::U64(v) => {
            if *v <= i64::MAX as u64 {
                Value::Int(*v as i64)
            } else {
                Value::Float(*v as f64)
            }
        }
        ArgValue::I64(v) => Value::Int(*v),
        ArgValue::F64(v) => Value::Float(*v),
        ArgValue::Str(s) => Value::Str(s.clone()),
    }
}

/// Incrementally builds a Chrome Trace Event JSON document.
///
/// Multiple producers append into one builder — the CLI merges the
/// tuner's phase timeline (pid 0) with the simulator's per-stage Gantt
/// (pids ≥ 1) into a single trace.
#[derive(Debug, Default)]
pub struct TraceBuilder {
    events: Vec<Value>,
}

impl TraceBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        TraceBuilder::default()
    }

    /// Number of events added so far.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when no events have been added.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    fn push_event(
        &mut self,
        ph: &str,
        pid: i64,
        tid: i64,
        ts_us: f64,
        name: Option<&str>,
        args: Option<Value>,
    ) {
        let mut fields = Vec::with_capacity(6);
        if let Some(name) = name {
            fields.push(("name".to_owned(), Value::Str(name.to_owned())));
        }
        fields.push(("ph".to_owned(), Value::Str(ph.to_owned())));
        fields.push(("ts".to_owned(), Value::Float(ts_us)));
        fields.push(("pid".to_owned(), Value::Int(pid)));
        fields.push(("tid".to_owned(), Value::Int(tid)));
        if let Some(args) = args {
            fields.push(("args".to_owned(), args));
        }
        self.events.push(Value::Object(fields));
    }

    /// Names a process track (`process_name` metadata event).
    pub fn process_name(&mut self, pid: i64, name: &str) {
        let args = Value::Object(vec![("name".to_owned(), Value::Str(name.to_owned()))]);
        self.push_event("M", pid, 0, 0.0, Some("process_name"), Some(args));
    }

    /// Names a thread track (`thread_name` metadata event).
    pub fn thread_name(&mut self, pid: i64, tid: i64, name: &str) {
        let args = Value::Object(vec![("name".to_owned(), Value::Str(name.to_owned()))]);
        self.push_event("M", pid, tid, 0.0, Some("thread_name"), Some(args));
    }

    /// Opens a duration slice (`ph: "B"`).
    pub fn begin(&mut self, pid: i64, tid: i64, ts_us: f64, name: &str, args: &[(&str, ArgValue)]) {
        let args = if args.is_empty() {
            None
        } else {
            Some(Value::Object(
                args.iter()
                    .map(|(k, v)| ((*k).to_owned(), arg_to_value(v)))
                    .collect(),
            ))
        };
        self.push_event("B", pid, tid, ts_us, Some(name), args);
    }

    /// Closes the innermost open slice on `(pid, tid)` (`ph: "E"`).
    pub fn end(&mut self, pid: i64, tid: i64, ts_us: f64) {
        self.push_event("E", pid, tid, ts_us, None, None);
    }

    /// Lowers completed collector spans onto process `pid`, one thread
    /// track per recording thread.
    ///
    /// Spans from RAII guards are well nested per thread, so each span
    /// becomes a `B`/`E` pair. Events are emitted in timestamp order
    /// with ties broken so the viewers' per-thread stacks balance: ends
    /// before begins, outer begins before inner, inner ends before
    /// outer.
    pub fn add_spans(&mut self, pid: i64, spans: &[SpanRecord]) {
        let mut tids: Vec<u64> = spans.iter().map(|s| s.tid).collect();
        tids.sort_unstable();
        tids.dedup();
        for &tid in &tids {
            let name = if tids.len() == 1 {
                "tuner".to_owned()
            } else {
                format!("thread-{tid}")
            };
            self.thread_name(pid, tid as i64, &name);
        }

        // (ts, is_begin, tie_break, span): at equal ts an E sorts before
        // a B; among Bs the one ending latest (the parent) opens first;
        // among Es the one starting latest (the child) closes first.
        let mut events: Vec<(f64, u8, f64, &SpanRecord)> = Vec::with_capacity(spans.len() * 2);
        for s in spans {
            events.push((s.start_us, 1, -(s.start_us + s.dur_us), s));
            events.push((s.start_us + s.dur_us, 0, -s.start_us, s));
        }
        events.sort_by(|a, b| {
            a.0.total_cmp(&b.0)
                .then(a.1.cmp(&b.1))
                .then(a.2.total_cmp(&b.2))
        });
        for (ts, is_begin, _, s) in events {
            if is_begin == 1 {
                // span_id/parent args carry the cross-thread nesting
                // that per-track B/E stacking cannot express: a span on
                // a worker lane points back at the spawning span.
                let mut args: Vec<(&str, ArgValue)> = Vec::with_capacity(s.args.len() + 2);
                args.push(("span_id", ArgValue::U64(s.id)));
                args.push(("parent", ArgValue::U64(s.parent)));
                args.extend(s.args.iter().map(|(k, v)| (*k, v.clone())));
                self.begin(pid, s.tid as i64, ts, s.name, &args);
            } else {
                self.end(pid, s.tid as i64, ts);
            }
        }
    }

    /// Serializes the trace to its JSON document form.
    pub fn to_json(&self) -> String {
        let doc = Value::Object(vec![
            ("traceEvents".to_owned(), Value::Array(self.events.clone())),
            ("displayTimeUnit".to_owned(), Value::Str("ms".to_owned())),
        ]);
        serde_json::to_string(&doc).expect("Value serialization is infallible")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collector::Collector;

    #[test]
    fn builder_emits_balanced_pairs() {
        let mut tb = TraceBuilder::new();
        tb.process_name(0, "p");
        tb.thread_name(0, 0, "t");
        tb.begin(0, 0, 1.0, "a", &[("k", ArgValue::U64(1))]);
        tb.end(0, 0, 2.0);
        let json = tb.to_json();
        let v: Value = serde_json::from_str(&json).unwrap();
        let Value::Object(fields) = &v else {
            panic!("expected object")
        };
        let Value::Array(events) = &fields[0].1 else {
            panic!("expected traceEvents array")
        };
        assert_eq!(events.len(), 4);
    }

    #[test]
    fn nested_spans_lower_to_well_ordered_events() {
        let c = Collector::new();
        c.enable();
        {
            let _outer = c.span("outer", Vec::new);
            let _inner = c.span("inner", Vec::new);
        }
        let mut tb = TraceBuilder::new();
        tb.add_spans(0, &c.spans());
        let json = tb.to_json();
        // thread_name + outer-B + inner-B + inner-E + outer-E.
        let v: Value = serde_json::from_str(&json).unwrap();
        let Value::Object(fields) = &v else {
            panic!("expected object")
        };
        let Value::Array(events) = &fields[0].1 else {
            panic!("expected traceEvents array")
        };
        assert_eq!(events.len(), 5);
        let phases: Vec<&str> = events
            .iter()
            .map(|e| {
                let Value::Object(f) = e else { panic!() };
                let Value::Str(ph) = &f.iter().find(|(k, _)| k == "ph").unwrap().1 else {
                    panic!()
                };
                ph.as_str()
            })
            .collect();
        assert_eq!(phases, vec!["M", "B", "B", "E", "E"]);
        let names: Vec<Option<&str>> = events
            .iter()
            .map(|e| {
                let Value::Object(f) = e else { panic!() };
                f.iter().find(|(k, _)| k == "name").map(|(_, v)| {
                    let Value::Str(s) = v else { panic!() };
                    s.as_str()
                })
            })
            .collect();
        assert_eq!(names[1], Some("outer"));
        assert_eq!(names[2], Some("inner"));
    }
}
