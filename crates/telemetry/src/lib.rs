//! Span tracing, a metrics registry, and Chrome Trace Event export for
//! the Mist tuner and pipeline simulator.
//!
//! The crate has three pieces:
//!
//! - A process-global [`Collector`] (see [`global`]) with RAII span
//!   guards via the [`span!`] macro, monotonic-clock timestamps, and
//!   named counter/gauge/histogram registration. The collector starts
//!   **disabled**; every disabled entry point costs a single relaxed
//!   atomic-flag load — no locks, no allocation, no clock reads — so
//!   instrumentation can live in library hot paths.
//! - Detached metric handles ([`Counter`], [`Gauge`], [`Histogram`])
//!   for code that must count unconditionally (the tuner's `TuneStats`
//!   sources), plus a serializable [`MetricsSnapshot`].
//! - [`TraceBuilder`], which lowers spans and externally produced
//!   timelines (the simulator's per-stage Gantt) into Chrome Trace
//!   Event Format JSON, loadable in Perfetto or `chrome://tracing`.
//! - The decision [`journal`]: an append-only bounded ring of typed
//!   provenance events (candidate rejections, frontier snapshots, MILP
//!   node fates, specializer cache traffic), each stamped with the
//!   enclosing span id. Disabled by default with the same
//!   one-atomic-load cost model as `span!`; see [`journal_event`].
//!
//! ```
//! let collector = mist_telemetry::global();
//! collector.enable();
//! {
//!     let _span = mist_telemetry::span!("intra.frontier", stage = 2u32);
//!     mist_telemetry::counter_add("configs", 128);
//! }
//! let mut trace = mist_telemetry::TraceBuilder::new();
//! trace.process_name(0, "mist-tuner");
//! trace.add_spans(0, &collector.take_spans());
//! let json = trace.to_json();
//! assert!(json.starts_with("{\"traceEvents\":"));
//! ```

mod chrome;
mod collector;
pub mod journal;
mod metrics;

pub use chrome::TraceBuilder;
pub use collector::{
    counter_add, current_span_id, gauge_max, gauge_set, global, histogram_record, parent_scope,
    ArgValue, Collector, ParentGuard, SpanGuard, SpanRecord,
};
pub use journal::{
    global_journal, journal_event, Journal, JournalEvent, JournalRecord, MilpNodeKind, OuterOutcome,
};
pub use metrics::{Counter, Gauge, Histogram, HistogramSummary, MetricsSnapshot};
