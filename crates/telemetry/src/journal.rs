//! Append-only decision journal: typed provenance events from the
//! tuner, the MILP solver and the specializer cache.
//!
//! Spans answer *where wall-clock went*; the journal answers *why the
//! search went the way it did*: which candidates were rejected and for
//! what reason, how each Pareto frontier was carved down, which
//! branch-and-bound nodes were opened or pruned, and which specializer
//! lookups hit. Every record is stamped with the enclosing span id
//! (see [`crate::current_span_id`]) so traces and decisions cross-link,
//! and with a monotone per-journal sequence number so emission order
//! survives serialization.
//!
//! Like `span!`, emission is zero-cost when disabled: [`journal_event`]
//! takes a closure and returns after one relaxed atomic load without
//! calling it — no locks, no allocation, no clock reads. Records live
//! in a bounded ring (oldest dropped first, with a drop counter) and
//! are flushed to a JSONL file by the CLI's `--journal` flag; each line
//! round-trips through the vendored `serde_json`.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

use crate::collector::current_span_id;

/// Default ring capacity: large enough that a full GPT-3-scale tune
/// (tens of thousands of specializer probes) fits without drops, small
/// enough that an enabled journal stays tens of megabytes at worst.
pub const DEFAULT_JOURNAL_CAPACITY: usize = 1 << 17;

/// Outcome of one outer-loop candidate `(grad_accum, stages)`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum OuterOutcome {
    /// Solved and became the best plan seen so far.
    Incumbent,
    /// Solved, but its selector lost to the incumbent — a runner-up.
    Dominated,
    /// The inter-stage solve was cut off by the incumbent-derived
    /// bound before completing: every partial assignment's lower bound
    /// already exceeded the budget.
    OutOfBudget,
    /// No feasible layer assignment at all (every split OOMs).
    Infeasible,
}

/// Kind of a MILP branch-and-bound node event.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum MilpNodeKind {
    /// Node popped from the best-bound heap and expanded.
    Open,
    /// Node discarded because its relaxation bound crossed the cutoff
    /// or the incumbent-derived gap bound.
    Pruned,
    /// An integral solution replaced the incumbent.
    Incumbent,
}

/// One typed provenance event.
///
/// Counting identities the `explain` digest relies on (per
/// `FrontierSummary`): `enumerated = oom + nonfinite + feasible +
/// mono_pruned` and `feasible = survived + dominated` — every
/// enumerated configuration is accounted for by exactly one outcome.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum JournalEvent {
    /// One intra-stage frontier computation: the sweep over
    /// `(layers, zero, offload)` rows for every stage candidate of one
    /// frontier key, reduced to per-layer-count Pareto frontiers.
    FrontierSummary {
        /// Mesh nodes of the stage candidates swept.
        mesh_nodes: u32,
        /// GPUs per node of the stage candidates swept.
        mesh_gpus: u32,
        /// Stage role (`"First"` / `"Middle"` / `"Last"` / `"Only"`).
        role: String,
        /// In-flight microbatches the stage must hold.
        inflight: u32,
        /// Gradient-accumulation factor of the enclosing outer round.
        grad_accum: u32,
        /// Frontiers were built for layer counts `1..=max_layers`.
        max_layers: u32,
        /// Configurations enumerated by the sweep.
        enumerated: u64,
        /// Rejected: no checkpointing choice fits the memory budget
        /// (includes the post-hoc peak-memory recheck).
        oom: u64,
        /// Rejected: predicted time was NaN/∞ (degenerate division).
        nonfinite: u64,
        /// Rows that produced a feasible `(time, memory)` point.
        feasible: u64,
        /// Points surviving Pareto reduction + frontier sampling.
        survived: u64,
        /// Feasible points dominated away (`feasible - survived`).
        dominated: u64,
        /// Rows skipped without evaluation because a monotonicity proof
        /// extrapolated an all-OOM outcome from a smaller in-flight
        /// count (see `MonotonePrune`).
        mono_pruned: u64,
        /// Sampled frontier size per layer count (index 0 = 1 layer).
        sizes: Vec<u32>,
    },
    /// One proof-licensed sweep skip: a stage candidate's layer counts
    /// were dropped without evaluation because every row at a smaller
    /// in-flight count was out of memory and the memory roots are
    /// provably non-decreasing in `inflight`.
    MonotonePrune {
        /// Mesh nodes of the pruned candidate.
        mesh_nodes: u32,
        /// GPUs per node of the pruned candidate.
        mesh_gpus: u32,
        /// Stage role (`"First"` / `"Middle"` / `"Last"` / `"Only"`).
        role: String,
        /// In-flight count the skipped rows would have run at.
        inflight: u32,
        /// The smaller in-flight count whose all-OOM sweep licensed
        /// the skip.
        floor: u32,
        /// Layer counts skipped for this candidate (ascending).
        layers: Vec<u32>,
        /// Sweep rows skipped (`layers × zero-modes × offload-combos`).
        rows: u64,
    },
    /// One plan-certificate check: an independent re-derivation of a
    /// plan's memory and cost claims through the abstract-interpretation
    /// framework, at tune time or when a cached plan is served.
    CertCheck {
        /// Where the check ran (`"tune"` / `"serve"` / `"verify"`).
        phase: String,
        /// Pipeline stages certified.
        stages: u32,
        /// Whether every stage obligation held.
        ok: bool,
        /// Human-readable failures (empty when `ok`).
        failures: Vec<String>,
    },
    /// One outer-loop candidate `(grad_accum, stages)` and its fate.
    OuterCandidate {
        /// Gradient-accumulation factor.
        grad_accum: u32,
        /// Pipeline stage count.
        stages: u32,
        /// What happened to the candidate.
        outcome: OuterOutcome,
        /// Its selector value (iteration-time proxy), when solved.
        selector: Option<f64>,
        /// Predicted iteration time in seconds, when solved.
        objective: Option<f64>,
        /// Per-stage layer assignment, when solved.
        layers: Vec<u32>,
        /// The incumbent selector the candidate had to beat (None for
        /// the first feasible candidate).
        incumbent: Option<f64>,
        /// For `OutOfBudget` candidates whose search was truncated
        /// before any complete assignment: a proven lower bound on what
        /// the shape could have achieved (the killing constraint).
        bound: Option<f64>,
    },
    /// The best plan improved: frontier evolution of the outer search.
    Incumbent {
        /// Gradient-accumulation factor of the new best plan.
        grad_accum: u32,
        /// Stage count of the new best plan.
        stages: u32,
        /// New best selector value.
        selector: f64,
        /// Predicted iteration time in seconds.
        objective: f64,
    },
    /// One inter-stage dynamic-programming solve.
    DpSummary {
        /// Pipeline stage count.
        stages: u32,
        /// Gradient-accumulation factor.
        grad_accum: u32,
        /// Pareto states inserted across all DP cells.
        states: u64,
        /// Transitions discarded because their lower bound crossed the
        /// incumbent-derived cutoff.
        bound_pruned: u64,
        /// `"solved"`, `"cutoff"` or `"infeasible"`.
        result: String,
    },
    /// One MILP branch-and-bound node event.
    MilpNode {
        /// Open / pruned / incumbent.
        kind: MilpNodeKind,
        /// The node's relaxation bound (objective for incumbents).
        bound: f64,
        /// Branch depth (length of the branch path).
        depth: u32,
    },
    /// One specializer cache lookup.
    SpecializeCache {
        /// Whether the residual was already cached.
        hit: bool,
        /// Stable id of the source program.
        program: u64,
        /// Instruction count of the source program.
        original: u32,
        /// Instruction count of the specialized residual.
        residual: u32,
    },
}

/// A journal record: a typed event stamped with its sequence number and
/// the id of the span that was open where it was emitted (0 = none).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JournalRecord {
    /// Monotone per-journal sequence number (0-based).
    pub seq: u64,
    /// Enclosing span id at emission, per [`crate::current_span_id`].
    pub span: u64,
    /// The event payload.
    pub event: JournalEvent,
}

impl JournalRecord {
    /// Serializes the record as one JSONL line (no trailing newline).
    pub fn to_jsonl(&self) -> String {
        serde_json::to_string(self).expect("journal records always serialize")
    }

    /// Parses a record from one JSONL line.
    pub fn from_jsonl(line: &str) -> Result<Self, serde::Error> {
        serde_json::from_str(line)
    }
}

struct Ring {
    records: VecDeque<JournalRecord>,
    next_seq: u64,
    dropped: u64,
    capacity: usize,
}

/// Bounded append-only event journal.
///
/// One process-global instance (see [`global_journal`]) backs the
/// [`journal_event`] free function; independent instances exist for
/// tests. Starts disabled; disabled emission is a single relaxed
/// atomic-flag load.
pub struct Journal {
    enabled: AtomicBool,
    ring: Mutex<Ring>,
}

impl Journal {
    /// Creates a disabled journal with the default ring capacity.
    pub fn new() -> Self {
        Self::with_capacity(DEFAULT_JOURNAL_CAPACITY)
    }

    /// Creates a disabled journal holding at most `capacity` records.
    pub fn with_capacity(capacity: usize) -> Self {
        Journal {
            enabled: AtomicBool::new(false),
            ring: Mutex::new(Ring {
                records: VecDeque::new(),
                next_seq: 0,
                dropped: 0,
                capacity: capacity.max(1),
            }),
        }
    }

    /// Turns emission on.
    pub fn enable(&self) {
        self.enabled.store(true, Ordering::Relaxed);
    }

    /// Turns emission off.
    pub fn disable(&self) {
        self.enabled.store(false, Ordering::Relaxed);
    }

    /// Whether emission is on.
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Emits an event lazily: `f` runs only when the journal is
    /// enabled. The record is stamped with the current span id and the
    /// next sequence number; when the ring is full the oldest record is
    /// dropped and counted.
    pub fn emit(&self, f: impl FnOnce() -> JournalEvent) {
        if !self.is_enabled() {
            return;
        }
        let event = f();
        let span = current_span_id();
        let mut ring = self.ring.lock();
        let seq = ring.next_seq;
        ring.next_seq += 1;
        if ring.records.len() == ring.capacity {
            ring.records.pop_front();
            ring.dropped += 1;
        }
        ring.records.push_back(JournalRecord { seq, span, event });
    }

    /// Number of records currently buffered.
    pub fn len(&self) -> usize {
        self.ring.lock().records.len()
    }

    /// Whether the ring is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Records dropped so far because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.ring.lock().dropped
    }

    /// Removes and returns all buffered records (oldest first).
    /// Sequence numbering continues across drains.
    pub fn drain(&self) -> Vec<JournalRecord> {
        self.ring.lock().records.drain(..).collect()
    }

    /// Clears the ring and resets sequence and drop counters.
    pub fn reset(&self) {
        let mut ring = self.ring.lock();
        ring.records.clear();
        ring.next_seq = 0;
        ring.dropped = 0;
    }

    /// Drains the ring to `out` as JSONL, one record per line.
    pub fn flush_to(&self, out: &mut dyn std::io::Write) -> std::io::Result<usize> {
        let records = self.drain();
        for r in &records {
            writeln!(out, "{}", r.to_jsonl())?;
        }
        Ok(records.len())
    }
}

impl Default for Journal {
    fn default() -> Self {
        Self::new()
    }
}

/// The process-global journal used by [`journal_event`].
pub fn global_journal() -> &'static Journal {
    static GLOBAL: OnceLock<Journal> = OnceLock::new();
    GLOBAL.get_or_init(Journal::new)
}

/// Emits an event into the global journal. Zero-cost when disabled:
/// one relaxed atomic load, `f` is never called.
pub fn journal_event(f: impl FnOnce() -> JournalEvent) {
    global_journal().emit(f);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> JournalEvent {
        JournalEvent::OuterCandidate {
            grad_accum: 4,
            stages: 2,
            outcome: OuterOutcome::Dominated,
            selector: Some(1.5),
            objective: Some(1.25),
            layers: vec![16, 16],
            incumbent: Some(1.25),
            bound: None,
        }
    }

    #[test]
    fn disabled_journal_never_calls_the_closure() {
        let j = Journal::new();
        j.emit(|| panic!("closure must not run while disabled"));
        assert!(j.is_empty());
        assert_eq!(j.dropped(), 0);
    }

    #[test]
    fn records_are_stamped_and_ordered() {
        let j = Journal::new();
        j.enable();
        j.emit(sample);
        j.emit(|| JournalEvent::Incumbent {
            grad_accum: 1,
            stages: 1,
            selector: 2.0,
            objective: 2.0,
        });
        let records = j.drain();
        assert_eq!(records.len(), 2);
        assert_eq!(records[0].seq, 0);
        assert_eq!(records[1].seq, 1);
        assert_eq!(records[0].event, sample());
        // Seq numbering continues after a drain.
        j.emit(sample);
        assert_eq!(j.drain()[0].seq, 2);
    }

    #[test]
    fn ring_drops_oldest_and_counts() {
        let j = Journal::with_capacity(2);
        j.enable();
        for _ in 0..5 {
            j.emit(sample);
        }
        assert_eq!(j.dropped(), 3);
        let records = j.drain();
        assert_eq!(records.len(), 2);
        assert_eq!(records[0].seq, 3);
        assert_eq!(records[1].seq, 4);
    }

    #[test]
    fn records_carry_the_enclosing_span_id() {
        let j = Journal::new();
        j.enable();
        let _ctx = crate::parent_scope(42);
        j.emit(sample);
        assert_eq!(j.drain()[0].span, 42);
    }

    #[test]
    fn jsonl_round_trip() {
        let r = JournalRecord {
            seq: 7,
            span: 3,
            event: sample(),
        };
        let line = r.to_jsonl();
        assert!(!line.contains('\n'));
        assert_eq!(JournalRecord::from_jsonl(&line).unwrap(), r);
    }

    #[test]
    fn flush_to_writes_jsonl_lines() {
        let j = Journal::new();
        j.enable();
        j.emit(sample);
        j.emit(sample);
        let mut buf = Vec::new();
        assert_eq!(j.flush_to(&mut buf).unwrap(), 2);
        let text = String::from_utf8(buf).unwrap();
        assert_eq!(text.lines().count(), 2);
        for line in text.lines() {
            JournalRecord::from_jsonl(line).unwrap();
        }
        assert!(j.is_empty());
    }
}
