//! The [`Collector`]: span recording plus a named-metric registry.
//!
//! One process-global collector (see [`global`]) backs the `span!` macro
//! and the flag-gated free functions; independent [`Collector`] instances
//! exist for tests. The collector starts disabled, and every disabled
//! entry point returns after a single relaxed atomic-flag load — no
//! locks, no allocation, no clock reads.

use std::cell::Cell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

use parking_lot::Mutex;

use crate::metrics::{Counter, Gauge, Histogram, MetricsSnapshot};

/// A span argument value, converted from common scalar types by the
/// `span!` macro.
#[derive(Debug, Clone, PartialEq)]
pub enum ArgValue {
    /// Unsigned integer argument.
    U64(u64),
    /// Signed integer argument.
    I64(i64),
    /// Float argument.
    F64(f64),
    /// String argument.
    Str(String),
}

macro_rules! impl_arg_from_uint {
    ($($t:ty),*) => {$(
        impl From<$t> for ArgValue {
            fn from(v: $t) -> Self {
                ArgValue::U64(v as u64)
            }
        }
    )*};
}
impl_arg_from_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_arg_from_int {
    ($($t:ty),*) => {$(
        impl From<$t> for ArgValue {
            fn from(v: $t) -> Self {
                ArgValue::I64(v as i64)
            }
        }
    )*};
}
impl_arg_from_int!(i8, i16, i32, i64, isize);

impl From<f64> for ArgValue {
    fn from(v: f64) -> Self {
        ArgValue::F64(v)
    }
}

impl From<&str> for ArgValue {
    fn from(v: &str) -> Self {
        ArgValue::Str(v.to_owned())
    }
}

impl From<String> for ArgValue {
    fn from(v: String) -> Self {
        ArgValue::Str(v)
    }
}

/// One completed span, recorded when its guard drops.
#[derive(Debug, Clone)]
pub struct SpanRecord {
    /// Process-unique span id (ids start at 1; 0 is reserved for "no
    /// span").
    pub id: u64,
    /// Id of the span that was current when this one opened — the
    /// enclosing span on this thread, or the parent installed by
    /// [`parent_scope`] for work shipped to another thread. 0 = root.
    pub parent: u64,
    /// Span name (static: span names are code locations, not data).
    pub name: &'static str,
    /// Logical thread id (stable per OS thread, dense from 0).
    pub tid: u64,
    /// Start offset from the collector's epoch, in microseconds.
    pub start_us: f64,
    /// Duration in microseconds.
    pub dur_us: f64,
    /// Named arguments captured at span entry.
    pub args: Vec<(&'static str, ArgValue)>,
}

struct ActiveSpan<'c> {
    collector: &'c Collector,
    id: u64,
    parent: u64,
    name: &'static str,
    tid: u64,
    start: Instant,
    args: Vec<(&'static str, ArgValue)>,
}

/// RAII guard returned by [`Collector::span`]; records the span into the
/// collector when dropped. Holds nothing when the collector is disabled.
#[must_use = "a span guard records its span when dropped; binding it to `_` ends it immediately"]
pub struct SpanGuard<'c> {
    active: Option<ActiveSpan<'c>>,
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        let Some(active) = self.active.take() else {
            return;
        };
        let c = active.collector;
        // Spans are RAII guards, so they close LIFO per thread: the
        // span that was current before this one opened becomes current
        // again.
        CURRENT_SPAN.with(|cur| cur.set(active.parent));
        let start_us = active.start.duration_since(c.epoch).as_secs_f64() * 1e6;
        let dur_us = active.start.elapsed().as_secs_f64() * 1e6;
        c.spans.lock().push(SpanRecord {
            id: active.id,
            parent: active.parent,
            name: active.name,
            tid: active.tid,
            start_us,
            dur_us,
            args: active.args,
        });
    }
}

fn current_tid() -> u64 {
    static NEXT_TID: AtomicU64 = AtomicU64::new(0);
    thread_local! {
        static TID: u64 = NEXT_TID.fetch_add(1, Ordering::Relaxed);
    }
    TID.with(|t| *t)
}

// Span ids are process-global (not per collector) so that parent links
// installed across threads stay unambiguous even when test collectors
// coexist with the global one. Id 0 means "no span".
static NEXT_SPAN_ID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    static CURRENT_SPAN: Cell<u64> = const { Cell::new(0) };
}

/// Id of the innermost open span on this thread (or the parent
/// installed by [`parent_scope`]); 0 when none. Cheap: one
/// thread-local read, no allocation.
pub fn current_span_id() -> u64 {
    CURRENT_SPAN.with(|cur| cur.get())
}

/// RAII guard from [`parent_scope`]; restores the previous current span
/// when dropped.
pub struct ParentGuard {
    prev: u64,
}

impl Drop for ParentGuard {
    fn drop(&mut self) {
        CURRENT_SPAN.with(|cur| cur.set(self.prev));
    }
}

/// Installs `parent` as this thread's current span until the returned
/// guard drops. Thread pools use this to re-parent spans opened inside
/// a task under the span that was current where the task was spawned,
/// so cross-thread traces nest instead of showing orphaned lanes.
///
/// Allocation-free and independent of the enabled flag (installing span
/// id 0 is a valid "no parent" context).
pub fn parent_scope(parent: u64) -> ParentGuard {
    ParentGuard {
        prev: CURRENT_SPAN.with(|cur| cur.replace(parent)),
    }
}

/// Span recorder plus named counter/gauge/histogram registry.
pub struct Collector {
    enabled: AtomicBool,
    epoch: Instant,
    spans: Mutex<Vec<SpanRecord>>,
    counters: Mutex<BTreeMap<String, Counter>>,
    gauges: Mutex<BTreeMap<String, Gauge>>,
    histograms: Mutex<BTreeMap<String, Histogram>>,
}

impl Collector {
    /// Creates a disabled collector whose epoch is "now".
    pub fn new() -> Self {
        Collector {
            enabled: AtomicBool::new(false),
            epoch: Instant::now(),
            spans: Mutex::new(Vec::new()),
            counters: Mutex::new(BTreeMap::new()),
            gauges: Mutex::new(BTreeMap::new()),
            histograms: Mutex::new(BTreeMap::new()),
        }
    }

    /// Turns recording on.
    pub fn enable(&self) {
        self.enabled.store(true, Ordering::Relaxed);
    }

    /// Turns recording off (already-registered handles keep working).
    pub fn disable(&self) {
        self.enabled.store(false, Ordering::Relaxed);
    }

    /// Whether recording is on.
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Starts a span. When the collector is disabled this returns an
    /// empty guard without calling `args` — the cost is one atomic load.
    pub fn span(
        &self,
        name: &'static str,
        args: impl FnOnce() -> Vec<(&'static str, ArgValue)>,
    ) -> SpanGuard<'_> {
        if !self.is_enabled() {
            return SpanGuard { active: None };
        }
        let id = NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed);
        let parent = CURRENT_SPAN.with(|cur| cur.replace(id));
        SpanGuard {
            active: Some(ActiveSpan {
                collector: self,
                id,
                parent,
                name,
                tid: current_tid(),
                start: Instant::now(),
                args: args(),
            }),
        }
    }

    /// Registers (or fetches) a counter handle by name. Registration is
    /// independent of the enabled flag: explicit handles are for metrics
    /// that must always count (e.g. the tuner's `TuneStats` sources).
    pub fn counter(&self, name: &str) -> Counter {
        self.counters
            .lock()
            .entry(name.to_owned())
            .or_default()
            .clone()
    }

    /// Registers (or fetches) a gauge handle by name.
    pub fn gauge(&self, name: &str) -> Gauge {
        self.gauges
            .lock()
            .entry(name.to_owned())
            .or_default()
            .clone()
    }

    /// Registers (or fetches) a histogram handle by name.
    pub fn histogram(&self, name: &str) -> Histogram {
        self.histograms
            .lock()
            .entry(name.to_owned())
            .or_default()
            .clone()
    }

    /// Adds `n` to the named counter; no-op (flag check only) when
    /// disabled.
    pub fn counter_add(&self, name: &str, n: u64) {
        if self.is_enabled() {
            self.counter(name).add(n);
        }
    }

    /// Sets the named gauge; no-op (flag check only) when disabled.
    pub fn gauge_set(&self, name: &str, v: f64) {
        if self.is_enabled() {
            self.gauge(name).set(v);
        }
    }

    /// Raises the named gauge to `v` if larger; no-op (flag check only)
    /// when disabled.
    pub fn gauge_max(&self, name: &str, v: f64) {
        if self.is_enabled() {
            self.gauge(name).set_max(v);
        }
    }

    /// Records into the named histogram; no-op (flag check only) when
    /// disabled.
    pub fn histogram_record(&self, name: &str, v: f64) {
        if self.is_enabled() {
            self.histogram(name).record(v);
        }
    }

    /// Copies all completed spans (records appear when guards drop).
    pub fn spans(&self) -> Vec<SpanRecord> {
        self.spans.lock().clone()
    }

    /// Removes and returns all completed spans.
    pub fn take_spans(&self) -> Vec<SpanRecord> {
        std::mem::take(&mut *self.spans.lock())
    }

    /// Snapshot of every registered metric.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self
                .counters
                .lock()
                .iter()
                .map(|(k, c)| (k.clone(), c.value()))
                .collect(),
            gauges: self
                .gauges
                .lock()
                .iter()
                .map(|(k, g)| (k.clone(), g.value()))
                .collect(),
            histograms: self
                .histograms
                .lock()
                .iter()
                .map(|(k, h)| (k.clone(), h.summary()))
                .collect(),
        }
    }

    /// Snapshot relative to `baseline`: counters and histogram
    /// count/sum subtract the baseline; gauges and histogram min/max
    /// keep their current value (they are not cumulative).
    pub fn snapshot_delta(&self, baseline: &MetricsSnapshot) -> MetricsSnapshot {
        let mut snap = self.snapshot();
        for (name, v) in &mut snap.counters {
            *v = v.saturating_sub(baseline.counter(name));
        }
        for (name, h) in &mut snap.histograms {
            if let Some(base) = baseline.histograms.get(name) {
                h.count = h.count.saturating_sub(base.count);
                h.sum -= base.sum;
                h.mean = if h.count == 0 {
                    0.0
                } else {
                    h.sum / h.count as f64
                };
            }
        }
        snap
    }

    /// Clears spans and zeroes every registered metric (handles held by
    /// callers stay valid and keep updating the same cells).
    pub fn reset(&self) {
        self.spans.lock().clear();
        for c in self.counters.lock().values() {
            c.reset();
        }
        for g in self.gauges.lock().values() {
            g.reset();
        }
        for h in self.histograms.lock().values() {
            h.reset();
        }
    }
}

impl Default for Collector {
    fn default() -> Self {
        Self::new()
    }
}

/// The process-global collector used by `span!` and the free functions.
pub fn global() -> &'static Collector {
    static GLOBAL: OnceLock<Collector> = OnceLock::new();
    GLOBAL.get_or_init(Collector::new)
}

/// Adds to a named counter on the global collector (no-op when disabled).
pub fn counter_add(name: &str, n: u64) {
    global().counter_add(name, n);
}

/// Sets a named gauge on the global collector (no-op when disabled).
pub fn gauge_set(name: &str, v: f64) {
    global().gauge_set(name, v);
}

/// Raises a named gauge high-water mark on the global collector (no-op
/// when disabled).
pub fn gauge_max(name: &str, v: f64) {
    global().gauge_max(name, v);
}

/// Records into a named histogram on the global collector (no-op when
/// disabled).
pub fn histogram_record(name: &str, v: f64) {
    global().histogram_record(name, v);
}

/// Opens a RAII span on the global collector.
///
/// ```
/// let _span = mist_telemetry::span!("intra.frontier", stage = 3u32);
/// ```
///
/// Arguments are `key = value` pairs evaluated *only when the collector
/// is enabled*; values may be any type with `Into<ArgValue>` (integers,
/// floats, strings). The span ends when the guard drops.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::global().span($name, ::std::vec::Vec::new)
    };
    ($name:expr, $($key:ident = $val:expr),+ $(,)?) => {
        $crate::global().span($name, || {
            ::std::vec![$((stringify!($key), $crate::ArgValue::from($val))),+]
        })
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_collector_records_nothing() {
        let c = Collector::new();
        {
            let _g = c.span("x", || vec![("a", ArgValue::U64(1))]);
        }
        c.counter_add("n", 5);
        c.gauge_set("g", 1.0);
        c.histogram_record("h", 1.0);
        assert!(c.spans().is_empty());
        assert!(c.snapshot().is_empty());
    }

    #[test]
    fn enabled_collector_records_spans_and_metrics() {
        let c = Collector::new();
        c.enable();
        {
            let _outer = c.span("outer", Vec::new);
            let _inner = c.span("inner", || vec![("i", ArgValue::U64(7))]);
        }
        c.counter_add("n", 2);
        c.counter_add("n", 3);
        c.gauge_max("g", 2.0);
        c.gauge_max("g", 1.0);
        c.histogram_record("h", 4.0);

        let spans = c.spans();
        assert_eq!(spans.len(), 2);
        // Guards drop inner-first.
        assert_eq!(spans[0].name, "inner");
        assert_eq!(spans[1].name, "outer");
        assert!(spans[0].start_us >= spans[1].start_us);
        assert!(spans[0].dur_us <= spans[1].dur_us);
        assert_eq!(spans[0].args, vec![("i", ArgValue::U64(7))]);

        let snap = c.snapshot();
        assert_eq!(snap.counter("n"), 5);
        assert_eq!(snap.gauge("g"), 2.0);
        assert_eq!(snap.histograms["h"].count, 1);
    }

    #[test]
    fn reset_preserves_registered_handles() {
        let c = Collector::new();
        let n = c.counter("n");
        n.add(4);
        c.reset();
        assert_eq!(c.snapshot().counter("n"), 0);
        n.add(1);
        assert_eq!(c.snapshot().counter("n"), 1);
    }

    #[test]
    fn snapshot_delta_subtracts_counters() {
        let c = Collector::new();
        c.enable();
        c.counter_add("n", 10);
        c.histogram_record("h", 1.0);
        let base = c.snapshot();
        c.counter_add("n", 7);
        c.histogram_record("h", 3.0);
        let delta = c.snapshot_delta(&base);
        assert_eq!(delta.counter("n"), 7);
        assert_eq!(delta.histograms["h"].count, 1);
        assert_eq!(delta.histograms["h"].sum, 3.0);
    }

    #[test]
    fn snapshot_delta_counters_subtract_but_gauges_keep_current_value() {
        // Regression test for the documented contract: counters are
        // cumulative so deltas subtract the baseline, while gauges are
        // instantaneous so a delta reports the *current* value — never
        // a baseline-relative difference.
        let c = Collector::new();
        c.enable();
        c.counter_add("work", 10);
        c.gauge_set("level", 5.0);
        let base = c.snapshot();

        c.counter_add("work", 4);
        c.gauge_set("level", 3.0); // drops below the baseline value
        let delta = c.snapshot_delta(&base);
        assert_eq!(delta.counter("work"), 4);
        assert_eq!(delta.gauge("level"), 3.0, "gauge must not subtract");

        // A gauge untouched since the baseline still reports its
        // current (unchanged) value rather than zero.
        let base1 = c.snapshot();
        let again = c.snapshot_delta(&base1);
        assert_eq!(again.gauge("level"), 3.0);
        assert_eq!(again.counter("work"), 0);

        // Histogram min/max are instantaneous like gauges; only
        // count/sum subtract.
        c.histogram_record("h", 2.0);
        let base2 = c.snapshot();
        c.histogram_record("h", 8.0);
        let d2 = c.snapshot_delta(&base2);
        assert_eq!(d2.histograms["h"].count, 1);
        assert_eq!(d2.histograms["h"].sum, 8.0);
        assert_eq!(d2.histograms["h"].min, 2.0);
        assert_eq!(d2.histograms["h"].max, 8.0);
    }

    #[test]
    fn spans_record_ids_and_parents() {
        let c = Collector::new();
        c.enable();
        assert_eq!(current_span_id(), 0);
        let (outer_id, inner_id);
        {
            let outer = c.span("outer", Vec::new);
            outer_id = outer.active.as_ref().unwrap().id;
            assert_eq!(current_span_id(), outer_id);
            {
                let inner = c.span("inner", Vec::new);
                inner_id = inner.active.as_ref().unwrap().id;
                assert_eq!(current_span_id(), inner_id);
            }
            assert_eq!(current_span_id(), outer_id);
        }
        assert_eq!(current_span_id(), 0);

        let spans = c.spans();
        let outer = spans.iter().find(|s| s.name == "outer").unwrap();
        let inner = spans.iter().find(|s| s.name == "inner").unwrap();
        assert!(outer.id != 0 && inner.id != 0 && outer.id != inner.id);
        assert_eq!(outer.parent, 0);
        assert_eq!(inner.parent, outer.id);
    }

    #[test]
    fn parent_scope_reparents_and_restores() {
        let c = Collector::new();
        c.enable();
        let root = c.span("root", Vec::new);
        let root_id = root.active.as_ref().unwrap().id;
        {
            let _ctx = parent_scope(777);
            assert_eq!(current_span_id(), 777);
            let child = c.span("child", Vec::new);
            assert_eq!(child.active.as_ref().unwrap().parent, 777);
            drop(child);
            assert_eq!(current_span_id(), 777);
        }
        assert_eq!(current_span_id(), root_id);
        drop(root);
        let spans = c.spans();
        assert_eq!(
            spans.iter().find(|s| s.name == "child").unwrap().parent,
            777
        );
    }

    #[test]
    fn disabled_spans_leave_current_span_untouched() {
        let c = Collector::new();
        {
            let _g = c.span("x", Vec::new);
            assert_eq!(current_span_id(), 0);
        }
        assert_eq!(current_span_id(), 0);
    }
}
