//! The [`Collector`]: span recording plus a named-metric registry.
//!
//! One process-global collector (see [`global`]) backs the `span!` macro
//! and the flag-gated free functions; independent [`Collector`] instances
//! exist for tests. The collector starts disabled, and every disabled
//! entry point returns after a single relaxed atomic-flag load — no
//! locks, no allocation, no clock reads.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

use parking_lot::Mutex;

use crate::metrics::{Counter, Gauge, Histogram, MetricsSnapshot};

/// A span argument value, converted from common scalar types by the
/// `span!` macro.
#[derive(Debug, Clone, PartialEq)]
pub enum ArgValue {
    /// Unsigned integer argument.
    U64(u64),
    /// Signed integer argument.
    I64(i64),
    /// Float argument.
    F64(f64),
    /// String argument.
    Str(String),
}

macro_rules! impl_arg_from_uint {
    ($($t:ty),*) => {$(
        impl From<$t> for ArgValue {
            fn from(v: $t) -> Self {
                ArgValue::U64(v as u64)
            }
        }
    )*};
}
impl_arg_from_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_arg_from_int {
    ($($t:ty),*) => {$(
        impl From<$t> for ArgValue {
            fn from(v: $t) -> Self {
                ArgValue::I64(v as i64)
            }
        }
    )*};
}
impl_arg_from_int!(i8, i16, i32, i64, isize);

impl From<f64> for ArgValue {
    fn from(v: f64) -> Self {
        ArgValue::F64(v)
    }
}

impl From<&str> for ArgValue {
    fn from(v: &str) -> Self {
        ArgValue::Str(v.to_owned())
    }
}

impl From<String> for ArgValue {
    fn from(v: String) -> Self {
        ArgValue::Str(v)
    }
}

/// One completed span, recorded when its guard drops.
#[derive(Debug, Clone)]
pub struct SpanRecord {
    /// Span name (static: span names are code locations, not data).
    pub name: &'static str,
    /// Logical thread id (stable per OS thread, dense from 0).
    pub tid: u64,
    /// Start offset from the collector's epoch, in microseconds.
    pub start_us: f64,
    /// Duration in microseconds.
    pub dur_us: f64,
    /// Named arguments captured at span entry.
    pub args: Vec<(&'static str, ArgValue)>,
}

struct ActiveSpan<'c> {
    collector: &'c Collector,
    name: &'static str,
    tid: u64,
    start: Instant,
    args: Vec<(&'static str, ArgValue)>,
}

/// RAII guard returned by [`Collector::span`]; records the span into the
/// collector when dropped. Holds nothing when the collector is disabled.
#[must_use = "a span guard records its span when dropped; binding it to `_` ends it immediately"]
pub struct SpanGuard<'c> {
    active: Option<ActiveSpan<'c>>,
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        let Some(active) = self.active.take() else {
            return;
        };
        let c = active.collector;
        let start_us = active.start.duration_since(c.epoch).as_secs_f64() * 1e6;
        let dur_us = active.start.elapsed().as_secs_f64() * 1e6;
        c.spans.lock().push(SpanRecord {
            name: active.name,
            tid: active.tid,
            start_us,
            dur_us,
            args: active.args,
        });
    }
}

fn current_tid() -> u64 {
    static NEXT_TID: AtomicU64 = AtomicU64::new(0);
    thread_local! {
        static TID: u64 = NEXT_TID.fetch_add(1, Ordering::Relaxed);
    }
    TID.with(|t| *t)
}

/// Span recorder plus named counter/gauge/histogram registry.
pub struct Collector {
    enabled: AtomicBool,
    epoch: Instant,
    spans: Mutex<Vec<SpanRecord>>,
    counters: Mutex<BTreeMap<String, Counter>>,
    gauges: Mutex<BTreeMap<String, Gauge>>,
    histograms: Mutex<BTreeMap<String, Histogram>>,
}

impl Collector {
    /// Creates a disabled collector whose epoch is "now".
    pub fn new() -> Self {
        Collector {
            enabled: AtomicBool::new(false),
            epoch: Instant::now(),
            spans: Mutex::new(Vec::new()),
            counters: Mutex::new(BTreeMap::new()),
            gauges: Mutex::new(BTreeMap::new()),
            histograms: Mutex::new(BTreeMap::new()),
        }
    }

    /// Turns recording on.
    pub fn enable(&self) {
        self.enabled.store(true, Ordering::Relaxed);
    }

    /// Turns recording off (already-registered handles keep working).
    pub fn disable(&self) {
        self.enabled.store(false, Ordering::Relaxed);
    }

    /// Whether recording is on.
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Starts a span. When the collector is disabled this returns an
    /// empty guard without calling `args` — the cost is one atomic load.
    pub fn span(
        &self,
        name: &'static str,
        args: impl FnOnce() -> Vec<(&'static str, ArgValue)>,
    ) -> SpanGuard<'_> {
        if !self.is_enabled() {
            return SpanGuard { active: None };
        }
        SpanGuard {
            active: Some(ActiveSpan {
                collector: self,
                name,
                tid: current_tid(),
                start: Instant::now(),
                args: args(),
            }),
        }
    }

    /// Registers (or fetches) a counter handle by name. Registration is
    /// independent of the enabled flag: explicit handles are for metrics
    /// that must always count (e.g. the tuner's `TuneStats` sources).
    pub fn counter(&self, name: &str) -> Counter {
        self.counters
            .lock()
            .entry(name.to_owned())
            .or_default()
            .clone()
    }

    /// Registers (or fetches) a gauge handle by name.
    pub fn gauge(&self, name: &str) -> Gauge {
        self.gauges
            .lock()
            .entry(name.to_owned())
            .or_default()
            .clone()
    }

    /// Registers (or fetches) a histogram handle by name.
    pub fn histogram(&self, name: &str) -> Histogram {
        self.histograms
            .lock()
            .entry(name.to_owned())
            .or_default()
            .clone()
    }

    /// Adds `n` to the named counter; no-op (flag check only) when
    /// disabled.
    pub fn counter_add(&self, name: &str, n: u64) {
        if self.is_enabled() {
            self.counter(name).add(n);
        }
    }

    /// Sets the named gauge; no-op (flag check only) when disabled.
    pub fn gauge_set(&self, name: &str, v: f64) {
        if self.is_enabled() {
            self.gauge(name).set(v);
        }
    }

    /// Raises the named gauge to `v` if larger; no-op (flag check only)
    /// when disabled.
    pub fn gauge_max(&self, name: &str, v: f64) {
        if self.is_enabled() {
            self.gauge(name).set_max(v);
        }
    }

    /// Records into the named histogram; no-op (flag check only) when
    /// disabled.
    pub fn histogram_record(&self, name: &str, v: f64) {
        if self.is_enabled() {
            self.histogram(name).record(v);
        }
    }

    /// Copies all completed spans (records appear when guards drop).
    pub fn spans(&self) -> Vec<SpanRecord> {
        self.spans.lock().clone()
    }

    /// Removes and returns all completed spans.
    pub fn take_spans(&self) -> Vec<SpanRecord> {
        std::mem::take(&mut *self.spans.lock())
    }

    /// Snapshot of every registered metric.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self
                .counters
                .lock()
                .iter()
                .map(|(k, c)| (k.clone(), c.value()))
                .collect(),
            gauges: self
                .gauges
                .lock()
                .iter()
                .map(|(k, g)| (k.clone(), g.value()))
                .collect(),
            histograms: self
                .histograms
                .lock()
                .iter()
                .map(|(k, h)| (k.clone(), h.summary()))
                .collect(),
        }
    }

    /// Snapshot relative to `baseline`: counters and histogram
    /// count/sum subtract the baseline; gauges and histogram min/max
    /// keep their current value (they are not cumulative).
    pub fn snapshot_delta(&self, baseline: &MetricsSnapshot) -> MetricsSnapshot {
        let mut snap = self.snapshot();
        for (name, v) in &mut snap.counters {
            *v = v.saturating_sub(baseline.counter(name));
        }
        for (name, h) in &mut snap.histograms {
            if let Some(base) = baseline.histograms.get(name) {
                h.count = h.count.saturating_sub(base.count);
                h.sum -= base.sum;
                h.mean = if h.count == 0 {
                    0.0
                } else {
                    h.sum / h.count as f64
                };
            }
        }
        snap
    }

    /// Clears spans and zeroes every registered metric (handles held by
    /// callers stay valid and keep updating the same cells).
    pub fn reset(&self) {
        self.spans.lock().clear();
        for c in self.counters.lock().values() {
            c.reset();
        }
        for g in self.gauges.lock().values() {
            g.reset();
        }
        for h in self.histograms.lock().values() {
            h.reset();
        }
    }
}

impl Default for Collector {
    fn default() -> Self {
        Self::new()
    }
}

/// The process-global collector used by `span!` and the free functions.
pub fn global() -> &'static Collector {
    static GLOBAL: OnceLock<Collector> = OnceLock::new();
    GLOBAL.get_or_init(Collector::new)
}

/// Adds to a named counter on the global collector (no-op when disabled).
pub fn counter_add(name: &str, n: u64) {
    global().counter_add(name, n);
}

/// Sets a named gauge on the global collector (no-op when disabled).
pub fn gauge_set(name: &str, v: f64) {
    global().gauge_set(name, v);
}

/// Raises a named gauge high-water mark on the global collector (no-op
/// when disabled).
pub fn gauge_max(name: &str, v: f64) {
    global().gauge_max(name, v);
}

/// Records into a named histogram on the global collector (no-op when
/// disabled).
pub fn histogram_record(name: &str, v: f64) {
    global().histogram_record(name, v);
}

/// Opens a RAII span on the global collector.
///
/// ```
/// let _span = mist_telemetry::span!("intra.frontier", stage = 3u32);
/// ```
///
/// Arguments are `key = value` pairs evaluated *only when the collector
/// is enabled*; values may be any type with `Into<ArgValue>` (integers,
/// floats, strings). The span ends when the guard drops.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::global().span($name, ::std::vec::Vec::new)
    };
    ($name:expr, $($key:ident = $val:expr),+ $(,)?) => {
        $crate::global().span($name, || {
            ::std::vec![$((stringify!($key), $crate::ArgValue::from($val))),+]
        })
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_collector_records_nothing() {
        let c = Collector::new();
        {
            let _g = c.span("x", || vec![("a", ArgValue::U64(1))]);
        }
        c.counter_add("n", 5);
        c.gauge_set("g", 1.0);
        c.histogram_record("h", 1.0);
        assert!(c.spans().is_empty());
        assert!(c.snapshot().is_empty());
    }

    #[test]
    fn enabled_collector_records_spans_and_metrics() {
        let c = Collector::new();
        c.enable();
        {
            let _outer = c.span("outer", Vec::new);
            let _inner = c.span("inner", || vec![("i", ArgValue::U64(7))]);
        }
        c.counter_add("n", 2);
        c.counter_add("n", 3);
        c.gauge_max("g", 2.0);
        c.gauge_max("g", 1.0);
        c.histogram_record("h", 4.0);

        let spans = c.spans();
        assert_eq!(spans.len(), 2);
        // Guards drop inner-first.
        assert_eq!(spans[0].name, "inner");
        assert_eq!(spans[1].name, "outer");
        assert!(spans[0].start_us >= spans[1].start_us);
        assert!(spans[0].dur_us <= spans[1].dur_us);
        assert_eq!(spans[0].args, vec![("i", ArgValue::U64(7))]);

        let snap = c.snapshot();
        assert_eq!(snap.counter("n"), 5);
        assert_eq!(snap.gauge("g"), 2.0);
        assert_eq!(snap.histograms["h"].count, 1);
    }

    #[test]
    fn reset_preserves_registered_handles() {
        let c = Collector::new();
        let n = c.counter("n");
        n.add(4);
        c.reset();
        assert_eq!(c.snapshot().counter("n"), 0);
        n.add(1);
        assert_eq!(c.snapshot().counter("n"), 1);
    }

    #[test]
    fn snapshot_delta_subtracts_counters() {
        let c = Collector::new();
        c.enable();
        c.counter_add("n", 10);
        c.histogram_record("h", 1.0);
        let base = c.snapshot();
        c.counter_add("n", 7);
        c.histogram_record("h", 3.0);
        let delta = c.snapshot_delta(&base);
        assert_eq!(delta.counter("n"), 7);
        assert_eq!(delta.histograms["h"].count, 1);
        assert_eq!(delta.histograms["h"].sum, 3.0);
    }
}
