//! Concurrent span/counter stress: many threads hammer the global
//! collector; no increment or span may be lost.

use std::sync::atomic::{AtomicBool, Ordering};

const THREADS: usize = 8;
const ITERS: u64 = 2_000;

#[test]
fn concurrent_spans_and_counters_lose_nothing() {
    let collector = mist_telemetry::global();
    collector.enable();

    let shared = collector.counter("stress.shared");
    let go = AtomicBool::new(false);

    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let shared = shared.clone();
            let go = &go;
            scope.spawn(move || {
                while !go.load(Ordering::Acquire) {
                    std::hint::spin_loop();
                }
                for i in 0..ITERS {
                    let _span = mist_telemetry::span!("stress.iter", thread = t, i = i);
                    shared.inc();
                    mist_telemetry::counter_add("stress.registry", 1);
                    mist_telemetry::gauge_max("stress.high_water", (t as f64) * 1e4 + i as f64);
                    mist_telemetry::histogram_record("stress.obs", i as f64);
                }
            });
        }
        go.store(true, Ordering::Release);
    });

    let expected = (THREADS as u64) * ITERS;
    assert_eq!(shared.value(), expected);

    let snap = collector.snapshot();
    assert_eq!(snap.counter("stress.shared"), expected);
    assert_eq!(snap.counter("stress.registry"), expected);
    assert_eq!(
        snap.gauge("stress.high_water"),
        (THREADS as f64 - 1.0) * 1e4 + (ITERS as f64 - 1.0)
    );
    assert_eq!(snap.histograms["stress.obs"].count, expected);
    assert_eq!(snap.histograms["stress.obs"].min, 0.0);
    assert_eq!(snap.histograms["stress.obs"].max, ITERS as f64 - 1.0);

    let spans = collector.take_spans();
    assert_eq!(spans.len(), (THREADS * ITERS as usize));
    // Every spawned thread got its own tid track.
    let mut tids: Vec<u64> = spans.iter().map(|s| s.tid).collect();
    tids.sort_unstable();
    tids.dedup();
    assert_eq!(tids.len(), THREADS);
}
