//! Property test: every [`JournalEvent`] variant survives a JSONL
//! round-trip byte-for-byte in value terms. The journal file format is
//! the contract between `tune --journal` and `explain`, so serializing
//! a record and parsing it back must reproduce the record exactly
//! (finite floats only — the journal never emits NaN/infinity, both of
//! which JSON cannot represent).

use mist_telemetry::{JournalEvent, JournalRecord, MilpNodeKind, OuterOutcome};
use proptest::prelude::*;

/// Finite floats with both round and awkward (non-dyadic) values.
fn arb_f64() -> impl Strategy<Value = f64> {
    prop_oneof![
        Just(0.0),
        Just(-1.5),
        (-1_000_000i64..1_000_000).prop_map(|n| n as f64 / 997.0),
        0.0f64..1e12,
    ]
}

fn arb_opt_f64() -> impl Strategy<Value = Option<f64>> {
    prop_oneof![Just(None), arb_f64().prop_map(Some)]
}

fn arb_role() -> impl Strategy<Value = String> {
    prop::sample::select(vec![
        "First".to_string(),
        "Middle".to_string(),
        "Last".to_string(),
        "Only".to_string(),
        // Exercise JSON string escaping.
        "we\"ird\\role\n".to_string(),
        "unicode-\u{00e9}\u{4e2d}".to_string(),
    ])
}

fn arb_outcome() -> impl Strategy<Value = OuterOutcome> {
    prop::sample::select(vec![
        OuterOutcome::Incumbent,
        OuterOutcome::Dominated,
        OuterOutcome::OutOfBudget,
        OuterOutcome::Infeasible,
    ])
}

fn arb_kind() -> impl Strategy<Value = MilpNodeKind> {
    prop::sample::select(vec![
        MilpNodeKind::Open,
        MilpNodeKind::Pruned,
        MilpNodeKind::Incumbent,
    ])
}

fn arb_event() -> BoxedStrategy<JournalEvent> {
    let frontier = (
        (1u32..16, 1u32..16, arb_role(), 1u32..64, 1u32..256),
        (1u32..128, 0u64..1_000_000, 0u64..1_000_000, 0u64..1_000_000),
        (
            0u64..1_000_000,
            0u64..1_000_000,
            0u64..1_000_000,
            0u64..1_000_000,
        ),
        prop::collection::vec(0u32..1000, 0..8),
    )
        .prop_map(
            |(
                (mesh_nodes, mesh_gpus, role, inflight, grad_accum),
                (max_layers, enumerated, oom, nonfinite),
                (feasible, survived, dominated, mono_pruned),
                sizes,
            )| {
                JournalEvent::FrontierSummary {
                    mesh_nodes,
                    mesh_gpus,
                    role,
                    inflight,
                    grad_accum,
                    max_layers,
                    enumerated,
                    oom,
                    nonfinite,
                    feasible,
                    survived,
                    dominated,
                    mono_pruned,
                    sizes,
                }
            },
        )
        .boxed();
    let outer = (
        (1u32..256, 1u32..64, arb_outcome()),
        (arb_opt_f64(), arb_opt_f64()),
        prop::collection::vec(1u32..128, 0..8),
        (arb_opt_f64(), arb_opt_f64()),
    )
        .prop_map(
            |((grad_accum, stages, outcome), (selector, objective), layers, (incumbent, bound))| {
                JournalEvent::OuterCandidate {
                    grad_accum,
                    stages,
                    outcome,
                    selector,
                    objective,
                    layers,
                    incumbent,
                    bound,
                }
            },
        )
        .boxed();
    let incumbent = (1u32..256, 1u32..64, arb_f64(), arb_f64())
        .prop_map(
            |(grad_accum, stages, selector, objective)| JournalEvent::Incumbent {
                grad_accum,
                stages,
                selector,
                objective,
            },
        )
        .boxed();
    let dp = (
        1u32..64,
        1u32..256,
        0u64..10_000_000,
        0u64..10_000_000,
        prop::sample::select(vec![
            "solved".to_string(),
            "cutoff".to_string(),
            "infeasible".to_string(),
        ]),
    )
        .prop_map(
            |(stages, grad_accum, states, bound_pruned, result)| JournalEvent::DpSummary {
                stages,
                grad_accum,
                states,
                bound_pruned,
                result,
            },
        )
        .boxed();
    let milp = (arb_kind(), arb_f64(), 0u32..64)
        .prop_map(|(kind, bound, depth)| JournalEvent::MilpNode { kind, bound, depth })
        .boxed();
    // The vendored serde models JSON integers as i64, so u64 fields are
    // contractually bounded to i64::MAX. Every journal integer is a
    // process-local counter or sequential id, so the bound holds by
    // construction; the generator respects it.
    let cache = (
        prop_oneof![Just(true), Just(false)],
        0u64..i64::MAX as u64,
        0u32..100_000,
        0u32..100_000,
    )
        .prop_map(
            |(hit, program, original, residual)| JournalEvent::SpecializeCache {
                hit,
                program,
                original,
                residual,
            },
        )
        .boxed();
    prop_oneof![frontier, outer, incumbent, dp, milp, cache].boxed()
}

proptest! {
    #[test]
    fn every_event_round_trips_through_jsonl(
        seq in 0u64..i64::MAX as u64,
        span in 0u64..i64::MAX as u64,
        event in arb_event(),
    ) {
        let record = JournalRecord { seq, span, event };
        let line = record.to_jsonl();
        prop_assert!(!line.contains('\n'), "JSONL line must be newline-free");
        let back = JournalRecord::from_jsonl(&line).expect("parse back");
        prop_assert_eq!(&back, &record);
        // And a second trip is a fixed point (serialization is canonical).
        prop_assert_eq!(back.to_jsonl(), line);
    }
}
