//! The disabled path must be a true no-op: a counting global allocator
//! proves that spans, counter adds, gauge sets, and histogram records
//! neither allocate nor record anything while the collector is off.
//!
//! This lives in its own integration-test binary so the allocator and
//! the global collector's state are not shared with other tests.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

struct CountingAlloc;

static ALLOCATIONS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

#[test]
fn disabled_path_allocates_and_records_nothing() {
    // Force the lazy global collector (and this thread's tid slot) to
    // initialize before measuring.
    let collector = mist_telemetry::global();
    assert!(!collector.is_enabled());
    // The journal shares the zero-cost contract: force its lazy global
    // too, then prove emission is allocation-free while disabled.
    let journal = mist_telemetry::global_journal();
    assert!(!journal.is_enabled());

    let before = ALLOCATIONS.load(Ordering::Relaxed);
    for i in 0..1_000u64 {
        let _span = mist_telemetry::span!("disabled.span", i = i, label = "unused");
        mist_telemetry::counter_add("disabled.counter", i);
        mist_telemetry::gauge_set("disabled.gauge", i as f64);
        mist_telemetry::gauge_max("disabled.gauge_max", i as f64);
        mist_telemetry::histogram_record("disabled.hist", i as f64);
        mist_telemetry::journal_event(|| mist_telemetry::JournalEvent::SpecializeCache {
            hit: false,
            program: i,
            original: 100,
            residual: 40,
        });
        mist_telemetry::journal_event(|| mist_telemetry::JournalEvent::FrontierSummary {
            mesh_nodes: 1,
            mesh_gpus: 4,
            role: format!("role-{i}"), // closure body must not run while disabled
            inflight: 1,
            grad_accum: 2,
            max_layers: 8,
            enumerated: 10,
            oom: 1,
            nonfinite: 0,
            feasible: 9,
            survived: 4,
            dominated: 5,
            mono_pruned: 0,
            sizes: vec![1, 2, 1],
        });
    }
    let after = ALLOCATIONS.load(Ordering::Relaxed);
    assert_eq!(after - before, 0, "disabled telemetry path allocated");

    assert!(collector.spans().is_empty());
    assert!(collector.snapshot().is_empty());
    assert!(journal.is_empty());
    assert_eq!(journal.dropped(), 0);
}
