//! A small work-stealing thread pool with deterministic ordered joins.
//!
//! The tuner's hot loops — the intra-stage frontier sweep and the MILP
//! branch-and-bound — decompose into coarse independent tasks. This crate
//! runs them on `std::thread` workers with per-worker deques and a global
//! injector, exposing two primitives:
//!
//! - [`ThreadPool::scope`], a structured-concurrency scope in the style
//!   of `std::thread::scope`: tasks may borrow from the caller's stack,
//!   and the scope does not return until every spawned task finished.
//!   The scope owner *helps* execute tasks while waiting, so nested
//!   scopes (a pool task opening its own scope) cannot deadlock and a
//!   1-thread pool degenerates to plain sequential execution.
//! - [`ThreadPool::map_ordered`], the deterministic join: each item
//!   carries its submission index and results are merged back in
//!   submission order, so the output is byte-identical regardless of
//!   thread count or steal interleaving.
//!
//! Scheduling: a task spawned from a worker goes to that worker's own
//! deque (popped LIFO for locality); tasks from outside go to the global
//! injector (FIFO). Idle workers drain the injector, then steal the
//! oldest task from a sibling's deque. Steals and executions are counted
//! through `mist-telemetry` (`pool.tasks_stolen`, `pool.tasks_executed`,
//! `pool.workers`) when the global collector is enabled.
//!
//! The process-global pool ([`global`]) defaults to
//! `std::thread::available_parallelism` threads and is reconfigured by
//! [`set_global_threads`] (the CLI's `--threads N`).

use std::any::Any;
use std::cell::Cell;
use std::collections::VecDeque;
use std::marker::PhantomData;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};
use std::thread::JoinHandle;
use std::time::Duration;

use parking_lot::{Condvar, Mutex, RwLock};

/// A lifetime-erased unit of work. Only constructed by [`Scope::spawn`],
/// whose scope guarantees the erased borrows outlive execution.
type Task = Box<dyn FnOnce() + Send + 'static>;

thread_local! {
    /// `(pool id, worker index)` of the worker owning this thread.
    static WORKER: Cell<Option<(u64, usize)>> = const { Cell::new(None) };
}

fn next_pool_id() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    NEXT.fetch_add(1, Ordering::Relaxed)
}

struct Shared {
    id: u64,
    injector: Mutex<VecDeque<Task>>,
    /// One deque per worker; any thread may steal from the front.
    deques: Vec<Mutex<VecDeque<Task>>>,
    /// Count of queued (not yet popped) tasks — a cheap "is there work"
    /// hint for sleepers.
    queued: AtomicUsize,
    sleep: Mutex<()>,
    work_cv: Condvar,
    shutdown: AtomicBool,
    tasks_stolen: AtomicU64,
    tasks_executed: AtomicU64,
}

impl Shared {
    fn push(&self, task: Task) {
        let worker = WORKER.with(|w| w.get());
        match worker {
            Some((pool, idx)) if pool == self.id => self.deques[idx].lock().push_back(task),
            _ => self.injector.lock().push_back(task),
        }
        self.queued.fetch_add(1, Ordering::Release);
        self.work_cv.notify_one();
    }

    /// Finds a task: own deque first (LIFO), then the injector (FIFO),
    /// then steals the oldest task from a sibling deque.
    fn find_task(&self) -> Option<Task> {
        if self.queued.load(Ordering::Acquire) == 0 {
            return None;
        }
        let me = WORKER.with(|w| w.get()).and_then(
            |(pool, idx)| {
                if pool == self.id {
                    Some(idx)
                } else {
                    None
                }
            },
        );
        if let Some(idx) = me {
            if let Some(t) = self.deques[idx].lock().pop_back() {
                self.queued.fetch_sub(1, Ordering::AcqRel);
                return Some(t);
            }
        }
        if let Some(t) = self.injector.lock().pop_front() {
            self.queued.fetch_sub(1, Ordering::AcqRel);
            return Some(t);
        }
        for (i, deque) in self.deques.iter().enumerate() {
            if Some(i) == me {
                continue;
            }
            if let Some(t) = deque.lock().pop_front() {
                self.queued.fetch_sub(1, Ordering::AcqRel);
                self.tasks_stolen.fetch_add(1, Ordering::Relaxed);
                mist_telemetry::counter_add("pool.tasks_stolen", 1);
                return Some(t);
            }
        }
        None
    }

    fn execute(&self, task: Task) {
        self.tasks_executed.fetch_add(1, Ordering::Relaxed);
        task();
    }

    fn worker_loop(&self) {
        loop {
            if let Some(task) = self.find_task() {
                self.execute(task);
                continue;
            }
            if self.shutdown.load(Ordering::Acquire) {
                return;
            }
            let guard = self.sleep.lock();
            // Re-check under the lock: a push between our failed find and
            // this lock would otherwise be missed. The timeout is a
            // belt-and-braces bound on any remaining race.
            if self.queued.load(Ordering::Acquire) == 0 && !self.shutdown.load(Ordering::Acquire) {
                let _ = self.work_cv.wait_timeout(guard, Duration::from_millis(2));
            }
        }
    }
}

/// Completion state of one [`Scope`]. `'static` so erased tasks can hold
/// it; the scope keeps it alive until every task finished.
struct ScopeState {
    pending: AtomicUsize,
    done: Mutex<()>,
    done_cv: Condvar,
    panic: Mutex<Option<Box<dyn Any + Send>>>,
}

impl ScopeState {
    fn new() -> Self {
        ScopeState {
            pending: AtomicUsize::new(0),
            done: Mutex::new(()),
            done_cv: Condvar::new(),
            panic: Mutex::new(None),
        }
    }

    fn finish_one(&self) {
        if self.pending.fetch_sub(1, Ordering::AcqRel) == 1 {
            let _guard = self.done.lock();
            self.done_cv.notify_all();
        }
    }
}

/// Spawn handle passed to the closure of [`ThreadPool::scope`]. Mirrors
/// `std::thread::Scope`: spawned tasks may borrow anything that outlives
/// the scope.
pub struct Scope<'scope, 'env: 'scope> {
    pool: &'env ThreadPool,
    state: Arc<ScopeState>,
    /// Invariance over 'scope, exactly as in `std::thread::Scope`.
    scope: PhantomData<&'scope mut &'scope ()>,
    env: PhantomData<&'env mut &'env ()>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Submits `f` to the pool. The task starts at the scheduler's
    /// discretion and is guaranteed to finish before `scope` returns.
    pub fn spawn<F>(&'scope self, f: F)
    where
        F: FnOnce() + Send + 'scope,
    {
        self.state.pending.fetch_add(1, Ordering::AcqRel);
        let state = Arc::clone(&self.state);
        // Capture the spawner's telemetry span context so spans opened
        // inside the task parent under the spawning span instead of
        // showing up as orphaned lanes — regardless of which thread
        // (a worker, or a sibling caller helping in `wait_scope`)
        // eventually executes the task.
        let parent_span = mist_telemetry::current_span_id();
        let wrapped = move || {
            let _span_ctx = mist_telemetry::parent_scope(parent_span);
            if let Err(payload) = catch_unwind(AssertUnwindSafe(f)) {
                let mut slot = state.panic.lock();
                if slot.is_none() {
                    *slot = Some(payload);
                }
            }
            state.finish_one();
        };
        let task: Box<dyn FnOnce() + Send + 'scope> = Box::new(wrapped);
        // SAFETY: `scope` (the only constructor of `Scope`) does not
        // return until `state.pending` hits zero, i.e. until this task
        // has run to completion, so every borrow captured in `task`
        // outlives its execution. Same argument as `std::thread::scope`.
        let task: Task = unsafe { std::mem::transmute(task) };
        self.pool.shared.push(task);
    }
}

/// The work-stealing pool. See the crate docs for the scheduling model.
pub struct ThreadPool {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl ThreadPool {
    /// Creates a pool with `threads` total parallelism: `threads − 1`
    /// background workers are spawned, and the thread joining a scope
    /// always participates as the remaining executor. `threads == 1`
    /// therefore spawns nothing and runs every task inline on the caller.
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let num_workers = threads - 1;
        let shared = Arc::new(Shared {
            id: next_pool_id(),
            injector: Mutex::new(VecDeque::new()),
            deques: (0..num_workers)
                .map(|_| Mutex::new(VecDeque::new()))
                .collect(),
            queued: AtomicUsize::new(0),
            sleep: Mutex::new(()),
            work_cv: Condvar::new(),
            shutdown: AtomicBool::new(false),
            tasks_stolen: AtomicU64::new(0),
            tasks_executed: AtomicU64::new(0),
        });
        let workers = (0..num_workers)
            .map(|idx| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("mist-pool-{idx}"))
                    .spawn(move || {
                        WORKER.with(|w| w.set(Some((shared.id, idx))));
                        shared.worker_loop();
                    })
                    .expect("spawn pool worker")
            })
            .collect();
        mist_telemetry::gauge_set("pool.workers", num_workers as f64);
        ThreadPool { shared, workers }
    }

    /// Total parallelism (background workers + the joining caller).
    pub fn threads(&self) -> usize {
        self.workers.len() + 1
    }

    /// Tasks taken from a sibling worker's deque so far.
    pub fn tasks_stolen(&self) -> u64 {
        self.shared.tasks_stolen.load(Ordering::Relaxed)
    }

    /// Tasks executed so far (all queues).
    pub fn tasks_executed(&self) -> u64 {
        self.shared.tasks_executed.load(Ordering::Relaxed)
    }

    /// Runs `f` with a [`Scope`] on which tasks can be spawned, then
    /// blocks — executing queued tasks itself while waiting — until every
    /// spawned task completed. Panics from tasks are captured and
    /// re-thrown here (the first one wins); the scope still waits for all
    /// remaining tasks first.
    pub fn scope<'env, F, R>(&'env self, f: F) -> R
    where
        F: for<'scope> FnOnce(&'scope Scope<'scope, 'env>) -> R,
    {
        let scope = Scope {
            pool: self,
            state: Arc::new(ScopeState::new()),
            scope: PhantomData,
            env: PhantomData,
        };
        let result = catch_unwind(AssertUnwindSafe(|| f(&scope)));
        self.wait_scope(&scope.state);
        if let Some(payload) = scope.state.panic.lock().take() {
            resume_unwind(payload);
        }
        match result {
            Ok(r) => r,
            Err(payload) => resume_unwind(payload),
        }
    }

    /// Maps `f` over `items` on the pool and returns the results in
    /// submission order — the deterministic join. The closure sees items
    /// in arbitrary temporal order, but the output vector is always
    /// `[f(items[0]), f(items[1]), …]` byte-for-byte, independent of
    /// thread count and steal interleaving.
    pub fn map_ordered<T, R, F>(&self, items: Vec<T>, f: F) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(T) -> R + Send + Sync,
    {
        if self.workers.is_empty() || items.len() <= 1 {
            return items.into_iter().map(f).collect();
        }
        let slots: Vec<Mutex<Option<R>>> = items.iter().map(|_| Mutex::new(None)).collect();
        self.scope(|s| {
            for (slot, item) in slots.iter().zip(items) {
                let f = &f;
                s.spawn(move || {
                    let computed = f(item);
                    let previous = slot.lock().replace(computed);
                    debug_assert!(previous.is_none(), "each slot is written exactly once");
                });
            }
        });
        slots
            .into_iter()
            .map(|slot| slot.into_inner().expect("scope ran every task"))
            .collect()
    }

    /// Executes tasks until `state.pending` reaches zero.
    fn wait_scope(&self, state: &ScopeState) {
        while state.pending.load(Ordering::Acquire) != 0 {
            if let Some(task) = self.shared.find_task() {
                self.shared.execute(task);
                continue;
            }
            // Nothing runnable here: some of our tasks are executing on
            // workers. Sleep until one finishes (timeout covers the
            // notify-vs-wait race and foreign-scope wakeups).
            let guard = state.done.lock();
            if state.pending.load(Ordering::Acquire) == 0 {
                break;
            }
            if self.shared.queued.load(Ordering::Acquire) != 0 {
                continue; // New work appeared while taking the lock.
            }
            let _ = state
                .done_cv
                .wait_timeout(guard, Duration::from_micros(500));
        }
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        {
            let _guard = self.shared.sleep.lock();
            self.shared.work_cv.notify_all();
        }
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

fn global_cell() -> &'static RwLock<Arc<ThreadPool>> {
    static CELL: OnceLock<RwLock<Arc<ThreadPool>>> = OnceLock::new();
    CELL.get_or_init(|| RwLock::new(Arc::new(ThreadPool::new(default_threads()))))
}

/// The number of threads the global pool uses when not configured:
/// `std::thread::available_parallelism`, or 1 when unavailable.
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// The process-global pool. Cheap to call (one `RwLock` read + `Arc`
/// clone); hold the returned `Arc` across a whole phase rather than
/// re-fetching per task.
pub fn global() -> Arc<ThreadPool> {
    global_cell().read().clone()
}

/// Replaces the global pool with a fresh one of `threads` total threads
/// (the CLI's `--threads N`). Scopes already running on the previous
/// pool finish undisturbed on its workers; the old pool shuts down when
/// its last `Arc` drops.
pub fn set_global_threads(threads: usize) {
    let mut cell = global_cell().write();
    if cell.threads() != threads.max(1) {
        *cell = Arc::new(ThreadPool::new(threads));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;

    #[test]
    fn map_ordered_preserves_submission_order() {
        for threads in [1, 2, 4, 8] {
            let pool = ThreadPool::new(threads);
            let items: Vec<u64> = (0..200).collect();
            let out = pool.map_ordered(items.clone(), |x| x * x);
            let want: Vec<u64> = items.iter().map(|x| x * x).collect();
            assert_eq!(out, want, "threads={threads}");
        }
    }

    #[test]
    fn map_ordered_borrows_environment() {
        let pool = ThreadPool::new(4);
        let base = [10u64, 20, 30];
        let out = pool.map_ordered(vec![0usize, 1, 2], |i| base[i] + 1);
        assert_eq!(out, vec![11, 21, 31]);
    }

    #[test]
    fn scope_runs_every_task() {
        let pool = ThreadPool::new(4);
        let counter = AtomicU32::new(0);
        pool.scope(|s| {
            for _ in 0..100 {
                s.spawn(|| {
                    counter.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(counter.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn nested_scopes_do_not_deadlock() {
        let pool = ThreadPool::new(3);
        let total = AtomicU32::new(0);
        let outer: Vec<u32> = pool.map_ordered((0..8u32).collect(), |i| {
            let inner = pool.map_ordered((0..8u32).collect(), |j| i * 8 + j);
            total.fetch_add(1, Ordering::Relaxed);
            inner.iter().sum()
        });
        assert_eq!(total.load(Ordering::Relaxed), 8);
        let want: Vec<u32> = (0..8).map(|i| (0..8).map(|j| i * 8 + j).sum()).collect();
        assert_eq!(outer, want);
    }

    #[test]
    fn single_thread_pool_runs_inline() {
        let pool = ThreadPool::new(1);
        assert_eq!(pool.threads(), 1);
        let main_id = std::thread::current().id();
        let out = pool.map_ordered(vec![(); 4], |()| std::thread::current().id());
        assert!(out.iter().all(|&id| id == main_id));
    }

    #[test]
    fn panics_propagate_after_all_tasks_finish() {
        let pool = ThreadPool::new(4);
        let completed = Arc::new(AtomicU32::new(0));
        let completed2 = completed.clone();
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.scope(|s| {
                for i in 0..16 {
                    let completed = completed2.clone();
                    s.spawn(move || {
                        if i == 3 {
                            panic!("task {i} exploded");
                        }
                        completed.fetch_add(1, Ordering::Relaxed);
                    });
                }
            });
        }));
        assert!(result.is_err(), "panic must propagate out of scope");
        assert_eq!(completed.load(Ordering::Relaxed), 15);
    }

    #[test]
    fn deterministic_across_thread_counts() {
        // A float-reduction whose result depends on merge order: ordered
        // joins must make it identical for every thread count.
        let items: Vec<f64> = (1..400).map(|i| 1.0 / i as f64).collect();
        let reference: Vec<u64> =
            ThreadPool::new(1).map_ordered(items.clone(), |x| (x.sin() * 1e9) as u64);
        for threads in [2, 3, 8] {
            let pool = ThreadPool::new(threads);
            let out = pool.map_ordered(items.clone(), |x| (x.sin() * 1e9) as u64);
            assert_eq!(out, reference, "threads={threads}");
        }
    }

    #[test]
    fn global_pool_is_reconfigurable() {
        set_global_threads(3);
        assert_eq!(global().threads(), 3);
        let held = global();
        set_global_threads(2);
        assert_eq!(global().threads(), 2);
        // The held handle keeps working against the old pool.
        let out = held.map_ordered(vec![1, 2, 3], |x| x + 1);
        assert_eq!(out, vec![2, 3, 4]);
    }

    #[test]
    fn spawned_tasks_inherit_the_spawners_span() {
        let c = mist_telemetry::Collector::new();
        c.enable();
        let pool = ThreadPool::new(4);
        let root = c.span("root", Vec::new);
        let root_id = mist_telemetry::current_span_id();
        assert_ne!(root_id, 0);
        pool.scope(|s| {
            for _ in 0..32 {
                s.spawn(|| {
                    let _child = c.span("child", Vec::new);
                    std::thread::sleep(Duration::from_micros(200));
                });
            }
        });
        drop(root);
        let spans = c.spans();
        let children: Vec<_> = spans.iter().filter(|s| s.name == "child").collect();
        assert_eq!(children.len(), 32);
        // Every child parents under the spawning span, no matter which
        // worker (or the helping caller) executed it.
        for ch in &children {
            assert_eq!(ch.parent, root_id);
        }
    }

    #[test]
    fn steal_counter_counts_cross_worker_traffic() {
        let pool = ThreadPool::new(4);
        // Tasks that spawn subtasks from worker threads exercise the
        // per-worker deques and therefore stealing.
        pool.scope(|s| {
            for _ in 0..32 {
                s.spawn(|| {
                    std::thread::sleep(Duration::from_micros(200));
                });
            }
        });
        assert!(pool.tasks_executed() >= 32);
    }
}
