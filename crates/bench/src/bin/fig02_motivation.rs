//! Figure 2: motivational example — tuning parallelism with each memory
//! optimization in isolation vs comprehensive co-optimization.
//!
//! Workload: GPT-3 2.6B ("2.7B") on 4 NVIDIA L4 GPUs, seq 4096, global
//! batch 8. The paper's qualitative claims:
//!   (a) parallelism alone: every plan OOMs;
//!   (b) full activation checkpointing: feasible baseline;
//!   (c) ckpt tuning   → ~1.22x over (b);
//!   (d) ZeRO tuning   → ~1.25x over (b);
//!   (e) offload tuning → ~1.16x over (b);
//!   (f) co-optimization → ~1.30x over (b).

use mist::presets::{gpt3, AttentionImpl, ModelSize};
use mist::{CkptMode, Platform, SearchSpace};
use mist_bench::{print_throughput_table, run_system, write_json, System, Workload};

fn panels() -> Vec<(char, &'static str, SearchSpace)> {
    let none = SearchSpace {
        name: "(a) parallelism only".into(),
        ckpt: CkptMode::None,
        zero_levels: vec![0],
        offload_grid: vec![],
        offload_enabled: [false; 4],
        ..SearchSpace::mist()
    };
    let full = SearchSpace {
        name: "(b) full ckpt".into(),
        ckpt: CkptMode::Full,
        ..none.clone()
    };
    let ckpt = SearchSpace {
        name: "(c) ckpt tuned".into(),
        ckpt: CkptMode::Tuned,
        ..none.clone()
    };
    let zero = SearchSpace {
        name: "(d) zero tuned".into(),
        zero_levels: vec![0, 1, 2, 3],
        ..full.clone()
    };
    let offload = SearchSpace {
        name: "(e) offload tuned".into(),
        offload_grid: vec![0.25, 0.5, 0.75, 1.0],
        offload_enabled: [true, true, true, true],
        ..full.clone()
    };
    let coopt = SearchSpace {
        name: "(f) co-optimized (Mist)".into(),
        ..SearchSpace::mist_fine()
    };
    vec![
        ('a', "parallelism only", none),
        ('b', "full ckpt", full),
        ('c', "ckpt tuned", ckpt),
        ('d', "zero tuned", zero),
        ('e', "offload tuned", offload),
        ('f', "co-optimized", coopt),
    ]
}

fn main() {
    let w = Workload {
        // Standard attention: the s^2 score tensors are what make
        // parallelism-only plans OOM on 24 GB L4s (Fig. 2a).
        model: gpt3(ModelSize::B2_6, 4096, AttentionImpl::Standard),
        platform: Platform::GcpL4,
        gpus: 4,
        global_batch: 8,
    };
    println!(
        "# Figure 2: motivational co-optimization study ({})",
        w.id()
    );
    let mut rows = Vec::new();
    for (_, _, space) in panels() {
        let m = run_system(&System::Space(space), &w, 8);
        println!(
            "  {:28} -> {}  plan: {}",
            m.system,
            m.throughput
                .map_or("OOM".into(), |t| format!("{t:.2} samples/s")),
            m.plan.clone().unwrap_or_default()
        );
        rows.push(m);
    }
    print_throughput_table("Figure 2 panels", &rows, None);
    // Speedups relative to panel (b).
    let base = rows[1].throughput.expect("full ckpt must be feasible");
    println!("\n| panel | speedup vs full ckpt | paper |");
    println!("|---|---|---|");
    let paper = ["-", "1.00", "1.22", "1.25", "1.16", "1.30"];
    for (i, m) in rows.iter().enumerate() {
        let s = m
            .throughput
            .map_or("OOM".into(), |t| format!("{:.2}x", t / base));
        println!("| {} | {} | {} |", m.system, s, paper[i]);
    }
    assert!(rows[0].throughput.is_none(), "(a) must OOM as in the paper");
    write_json("fig02_motivation", &rows);
}
