//! Ablation: overlap awareness (paper Shortcoming #1).
//!
//! Two effects are isolated on the same workload grid:
//!
//! 1. *Prediction*: for Mist's chosen plans, compare the overlap-aware
//!    interference prediction and the serial-sum prediction against the
//!    simulator's measurement.
//! 2. *Plan selection*: tune with the overlap-unaware predictor (keeping
//!    the full search space) and measure the throughput lost relative to
//!    overlap-aware tuning.

use mist::presets::{gpt3, AttentionImpl, ModelSize};
use mist::{MistSession, Platform, SearchSpace};
use mist_bench::{quick_mode, write_json};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    workload: String,
    aware_throughput: f64,
    unaware_throughput: f64,
    aware_pred_err_pct: f64,
    serial_pred_err_pct: f64,
}

fn main() {
    println!("# Ablation: overlap awareness\n");
    let mut cases = vec![
        (ModelSize::B2_6, 4u32, 32u64),
        (ModelSize::B6_7, 8, 64),
        (ModelSize::B13, 16, 128),
    ];
    if quick_mode() {
        cases.truncate(1);
    }
    println!(
        "| workload | aware (s/s) | unaware (s/s) | loss | aware pred err | serial pred err |"
    );
    println!("|---|---|---|---|---|---|");
    let mut rows = Vec::new();
    for (size, gpus, batch) in cases {
        let model = gpt3(size, 2048, AttentionImpl::Flash);
        let aware_session = MistSession::builder(model.clone(), Platform::GcpL4, gpus).build();
        let unaware_space = SearchSpace {
            overlap_aware: false,
            ..SearchSpace::mist()
        };
        let unaware_session = MistSession::builder(model.clone(), Platform::GcpL4, gpus)
            .space(unaware_space)
            .build();

        let aware = aware_session.tune(batch).expect("aware plan");
        let unaware = unaware_session.tune(batch).expect("unaware plan");
        let aware_meas = aware_session.execute(&aware);
        let unaware_meas = unaware_session.execute(&unaware);

        // Prediction error of both predictors on the *aware* plan.
        let aware_err = (aware.predicted_iteration - aware_meas.iteration_time).abs()
            / aware_meas.iteration_time;
        // Serial-sum prediction of the aware plan.
        let serial: f64 = aware
            .stage_points
            .iter()
            .map(|p| {
                p.fwd.iter().sum::<f64>()
                    + p.bwd.iter().sum::<f64>()
                    + (p.first_extra.iter().sum::<f64>() + p.last_extra.iter().sum::<f64>())
                        / aware.plan.grad_accum as f64
            })
            .fold(0.0, f64::max)
            * aware.plan.grad_accum as f64;
        let serial_err = (serial - aware_meas.iteration_time).abs() / aware_meas.iteration_time;

        let ta = aware_meas.throughput(batch);
        let tu = unaware_meas.throughput(batch);
        println!(
            "| GPT-3 {}/{}xL4/B{batch} | {ta:.2} | {tu:.2} | {:.1}% | {:.1}% | {:.1}% |",
            size.label(),
            gpus,
            (1.0 - tu / ta) * 100.0,
            aware_err * 100.0,
            serial_err * 100.0
        );
        assert!(
            serial_err >= aware_err,
            "serial prediction must be worse: {serial_err} vs {aware_err}"
        );
        rows.push(Row {
            workload: format!("GPT-3 {}/{}xL4/B{batch}", size.label(), gpus),
            aware_throughput: ta,
            unaware_throughput: tu,
            aware_pred_err_pct: aware_err * 100.0,
            serial_pred_err_pct: serial_err * 100.0,
        });
    }
    println!("\nThe serial-sum predictor (used by prior auto systems) overestimates the");
    println!("cost of overlap-heavy plans, steering their tuners away from offloading —");
    println!("Shortcoming #1's mechanism.");
    write_json("ablation_overlap", &rows);
}
