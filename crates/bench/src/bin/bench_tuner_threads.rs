//! Tuner thread-scaling study: the Fig. 16 fine sweep (the `mist-fine`
//! offloading grid) re-run at 1/2/4/8 pool threads.
//!
//! Two claims are checked and recorded:
//!
//! * **Determinism** — the chosen plan and the evaluated-configuration
//!   count are identical at every thread count (the pool's ordered joins
//!   and the driver's key dedup make thread count a pure wall-clock
//!   knob). The run aborts loudly if they diverge.
//! * **Scaling** — wall-clock per thread count, plus the host's available
//!   parallelism. Speedups are only physically possible up to the core
//!   count; the JSON records both so a 1-core CI box producing flat
//!   numbers is distinguishable from a scaling regression.

use mist::presets::{gpt3, AttentionImpl, ModelSize};
use mist::{Platform, SearchSpace};
use mist_bench::{plan_summary, quick_mode, write_json, System, Workload};
use mist_pool::set_global_threads;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    threads: usize,
    tuning_secs: f64,
    intra_secs: f64,
    inter_secs: f64,
    speedup_vs_1: f64,
    configs_evaluated: f64,
    plan: String,
}

#[derive(Serialize)]
struct Output {
    workload: String,
    space: String,
    available_parallelism: usize,
    deterministic: bool,
    rows: Vec<Row>,
}

fn main() {
    let quick = quick_mode();
    let (size, gpus, batch, cap) = if quick {
        (ModelSize::B1_3, 2u32, 8u64, 8u32)
    } else {
        (ModelSize::B6_7, 8, 64, 64)
    };
    let w = Workload {
        model: gpt3(size, 2048, AttentionImpl::Flash),
        platform: Platform::GcpL4,
        gpus,
        global_batch: batch,
    };
    let system = System::Space(SearchSpace::mist_fine());
    let cores = mist_pool::default_threads();
    println!("# Tuner thread scaling ({}, mist-fine space)\n", w.id());
    println!("host parallelism: {cores} core(s)\n");
    println!("| threads | tuning (s) | intra (s) | inter (s) | speedup | configs |");
    println!("|---|---|---|---|---|---|");

    let mut rows: Vec<Row> = Vec::new();
    let mut reference: Option<(String, f64)> = None; // (plan, configs)
    let mut deterministic = true;
    for threads in [1usize, 2, 4, 8] {
        set_global_threads(threads);
        let session = mist::MistSession::builder(w.model.clone(), w.platform, w.gpus)
            .space(system.space())
            .max_grad_accum(cap)
            .build();
        let start = std::time::Instant::now();
        let outcome = session
            .tune(w.global_batch)
            .expect("the mist-fine space must be feasible on this workload");
        let tuning_secs = start.elapsed().as_secs_f64();
        let plan = plan_summary(&outcome);
        let configs = outcome.stats.configs_evaluated as f64;
        match &reference {
            None => reference = Some((plan.clone(), configs)),
            Some((ref_plan, ref_configs)) => {
                if *ref_plan != plan || *ref_configs != configs {
                    deterministic = false;
                    eprintln!(
                        "DETERMINISM VIOLATION at {threads} threads:\n  ref: {ref_plan} \
                         ({ref_configs} configs)\n  got: {plan} ({configs} configs)"
                    );
                }
            }
        }
        let speedup = rows
            .first()
            .map(|r: &Row| r.tuning_secs / tuning_secs)
            .unwrap_or(1.0);
        println!(
            "| {threads} | {:.2} | {:.2} | {:.2} | {:.2}x | {:.3e} |",
            tuning_secs, outcome.stats.intra_secs, outcome.stats.inter_secs, speedup, configs
        );
        rows.push(Row {
            threads,
            tuning_secs,
            intra_secs: outcome.stats.intra_secs,
            inter_secs: outcome.stats.inter_secs,
            speedup_vs_1: speedup,
            configs_evaluated: configs,
            plan,
        });
    }
    set_global_threads(mist_pool::default_threads());

    assert!(deterministic, "plans diverged across thread counts");
    println!("\n(all thread counts chose the identical plan; speedups above the host's");
    println!("core count are physically impossible — compare against `available_parallelism`)");
    write_json(
        "bench_tuner_threads",
        &Output {
            workload: w.id(),
            space: "mist-fine".into(),
            available_parallelism: cores,
            deterministic,
            rows,
        },
    );
}
