//! Figure 13: speedup breakdown — throughput as Mist's search space is
//! enabled incrementally (Megatron space → +ckpt tuning → +offloading →
//! +ZeRO → +imbalance awareness), normalized to the base space.
//!
//! Paper claims: ckpt tuning ≈ +12%, offloading ≈ +7% more, imbalance
//! awareness ≈ +9% on top; GPT models on 8/16/32 L4 GPUs.

use mist::presets::{gpt3, AttentionImpl, ModelSize};
use mist::{Platform, SearchSpace};
use mist_bench::{quick_mode, run_system, write_json, System, Workload};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    workload: String,
    space: String,
    throughput: Option<f64>,
    normalized: Option<f64>,
}

fn main() {
    println!("# Figure 13: incremental search-space breakdown (GPT on L4)\n");
    let mut cases = vec![
        (ModelSize::B6_7, 8u32, 128u64),
        (ModelSize::B13, 16, 256),
        (ModelSize::B22, 32, 512),
    ];
    if quick_mode() {
        cases.truncate(1);
    }
    let ladder = SearchSpace::fig13_ladder();
    let mut out = Vec::new();
    for (size, gpus, batch) in cases {
        let w = Workload {
            model: gpt3(size, 2048, AttentionImpl::Flash),
            platform: Platform::GcpL4,
            gpus,
            global_batch: batch,
        };
        println!("## {}\n", w.id());
        println!("| space | samples/s | normalized |");
        println!("|---|---|---|");
        let mut base: Option<f64> = None;
        for space in &ladder {
            let m = run_system(&System::Space(space.clone()), &w, 256);
            let norm = match (m.throughput, base) {
                (Some(t), Some(b)) => Some(t / b),
                (Some(t), None) => {
                    base = Some(t);
                    Some(1.0)
                }
                _ => None,
            };
            println!(
                "| {} | {} | {} |",
                space.name,
                m.throughput.map_or("OOM".into(), |t| format!("{t:.2}")),
                norm.map_or("–".into(), |n| format!("{n:.3}"))
            );
            out.push(Row {
                workload: w.id(),
                space: space.name.clone(),
                throughput: m.throughput,
                normalized: norm,
            });
        }
        println!();
    }
    write_json("fig13_breakdown", &out);
}
