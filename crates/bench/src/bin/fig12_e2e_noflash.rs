//! Figure 12: end-to-end throughput *without* FlashAttention (Aceso does
//! not support it, so this is the setting where it can compete).
//!
//! GPT-3 only, both platforms, vs Megatron-LM and Aceso. Paper claims:
//! Mist ≥ all baselines everywhere, geomean 1.14x (max 1.26x) over
//! Megatron-LM and 1.27x (max 2.04x) over Aceso, with Aceso *losing* to
//! Megatron-LM in several cases despite the larger search space.

use mist::presets::Family;
use mist::{Baseline, Platform};
use mist_bench::{
    print_throughput_table, quick_mode, run_system, speedup_stats, table4_grid, write_json, System,
};

fn main() {
    let quick = quick_mode();
    println!(
        "# Figure 12: end-to-end throughput, no FlashAttention{}",
        if quick { " (quick)" } else { "" }
    );
    let mut all = Vec::new();
    let platforms = if quick {
        vec![Platform::GcpL4]
    } else {
        vec![Platform::GcpL4, Platform::AwsA100]
    };
    for platform in platforms {
        let mut grid = table4_grid(platform, Family::Gpt3, false);
        if quick {
            grid.truncate(3);
        }
        let systems = vec![
            System::Mist,
            System::Baseline(Baseline::MegatronLM),
            System::Baseline(Baseline::Aceso),
        ];
        let mut rows = Vec::new();
        for w in &grid {
            for sys in &systems {
                let m = run_system(sys, w, 256);
                eprintln!(
                    "  [{}] {} -> {}",
                    m.system,
                    m.workload,
                    m.throughput.map_or("OOM".into(), |t| format!("{t:.2}"))
                );
                rows.push(m);
            }
        }
        let title = format!(
            "GPT-3 (no Flash) on {}",
            if platform == Platform::GcpL4 {
                "L4"
            } else {
                "A100"
            }
        );
        print_throughput_table(&title, &rows, Some(("Mist", "Aceso")));
        all.extend(rows);
    }
    println!("\n## Aggregate speedups (geomean / max)\n");
    println!("| comparison | measured | paper |");
    println!("|---|---|---|");
    if let Some((g, m)) = speedup_stats(&all, "Mist", "Megatron-LM") {
        println!("| Mist vs Megatron-LM | {g:.2}x / {m:.2}x | 1.14x / 1.26x |");
    }
    if let Some((g, m)) = speedup_stats(&all, "Mist", "Aceso") {
        println!("| Mist vs Aceso | {g:.2}x / {m:.2}x | 1.27x / 2.04x |");
    }
    write_json("fig12_e2e_noflash", &all);
}
