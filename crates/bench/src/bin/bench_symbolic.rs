//! Smoke-run of the symbolic-evaluation benchmark (paper Fig. 16's
//! substrate): times the fused 22-root stage program against the 22
//! separate per-expression tapes at batch 10 000, then the per-sweep
//! specialized residual against the fused program, and records both
//! speedups in `results/bench_symbolic.json`.
//!
//! This is the cheap, always-runnable counterpart of the Criterion bench
//! in `benches/symbolic_eval.rs`; the verify recipe and the CI golden
//! gate run it to catch regressions of the fusion and specialization
//! speedups (`scripts/golden_diff.py` fails on a >10% rows/sec drop).

use std::time::Instant;

use mist::presets::{gpt3, AttentionImpl, ModelSize};
use mist::{
    ClusterSpec, DeviceMesh, GpuSpec, OpCostDb, Platform, SearchSpace, StageAnalyzer,
    StageCandidate, StageRole, StageTapes,
};
use mist_bench::write_json;
use mist_graph::sweep_frozen_symbols;
use mist_symbolic::{BatchBindings, CompiledProgram, CompiledWorkspace, EvalWorkspace};
use mist_tuner::Specializer;
use serde::Serialize;

#[derive(Serialize)]
struct BenchResult {
    batch_size: usize,
    iterations: usize,
    separate_tapes_ns_per_batch: f64,
    fused_program_ns_per_batch: f64,
    fused_speedup: f64,
    fused_rows_per_sec: f64,
    specialized_ns_per_batch: f64,
    specialized_speedup: f64,
    specialized_rows_per_sec: f64,
    compiled_ns_per_batch: f64,
    compiled_speedup: f64,
    compiled_rows_per_sec: f64,
    program_instructions: usize,
    separate_instructions: usize,
    specialized_instructions: usize,
    program_registers: usize,
    specialized_registers: usize,
    compiled_steps: usize,
    compiled_superinstrs: usize,
    compiled_tier: &'static str,
}

fn grid_batch(n: usize) -> BatchBindings {
    let mut batch = BatchBindings::new(n);
    batch.set_values("L", (0..n).map(|i| 1.0 + (i % 32) as f64).collect());
    batch.set_values("ckpt", (0..n).map(|i| (i % 8) as f64).collect());
    batch.set_values("zero", (0..n).map(|i| (i % 4) as f64).collect());
    batch.set_values("wo", (0..n).map(|i| (i % 2) as f64 * 0.5).collect());
    batch.set_values("go", (0..n).map(|i| (i % 3) as f64 * 0.5).collect());
    batch.set_values("oo", (0..n).map(|i| (i % 5) as f64 * 0.25).collect());
    batch.set_values("ao", (0..n).map(|i| (i % 4) as f64 * 0.25).collect());
    batch.set_scalar("inflight", 2.0);
    batch
}

/// Times `f` once per iteration and returns the fastest observed
/// per-iteration time in nanoseconds. The minimum — not the mean — is
/// what the CI throughput gate needs on shared runners: a single
/// descheduling inside one iteration can double a 20-iteration mean,
/// while the fastest iteration is the closest observation of the true
/// cost of the code under test and is stable run to run.
fn min_time_ns<F: FnMut()>(iters: usize, mut f: F) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..iters {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed().as_nanos() as f64);
    }
    best
}

fn eval_separate(tapes: &StageTapes, batch: &BatchBindings) -> f64 {
    let mut acc = 0.0;
    acc += tapes.mem_fwd.eval_batch(batch).unwrap()[0];
    acc += tapes.mem_bwd.eval_batch(batch).unwrap()[0];
    acc += tapes.mem_resident.eval_batch(batch).unwrap()[0];
    acc += tapes.mem_act_per_mb.eval_batch(batch).unwrap()[0];
    acc += tapes.mem_transient_fwd.eval_batch(batch).unwrap()[0];
    acc += tapes.mem_transient_bwd.eval_batch(batch).unwrap()[0];
    acc += tapes.fwd.eval_batch(batch)[0][0];
    acc += tapes.bwd.eval_batch(batch)[0][0];
    acc += tapes.first_extra.eval_batch(batch)[0][0];
    acc += tapes.last_extra.eval_batch(batch)[0][0];
    acc
}

fn main() {
    let model = gpt3(ModelSize::B6_7, 2048, AttentionImpl::Flash);
    let cluster = ClusterSpec::for_gpu_count(Platform::GcpL4, 8);
    let db = OpCostDb::new(GpuSpec::l4());
    let analyzer = StageAnalyzer::new(&model, &cluster, &db);
    let tapes = analyzer.analyze(&StageCandidate {
        mesh: DeviceMesh::new(1, 8),
        dp: 4,
        tp: 2,
        micro_batch: 2,
        role: StageRole::Only,
    });

    let n = 10_000usize;
    let iters = 40usize;
    let batch = grid_batch(n);
    let mut ws = EvalWorkspace::new();

    // Warm-up: populate the workspace's register/output pools and fault
    // in the tapes, then time.
    tapes.eval_batch_fused(&batch, &mut ws).unwrap();
    std::hint::black_box(eval_separate(&tapes, &batch));

    let separate_ns = min_time_ns(iters, || {
        std::hint::black_box(eval_separate(&tapes, &batch));
    });

    let fused_ns = min_time_ns(iters, || {
        tapes
            .eval_batch_fused(std::hint::black_box(&batch), &mut ws)
            .unwrap();
        std::hint::black_box(ws.output(0)[0]);
    });

    // Per-sweep specialization: freeze one `(zero, offload)` group the
    // way the intra-stage tuner does (only `L` and `ckpt` vary inside a
    // group) and evaluate the residual. The group batch keeps `ckpt`
    // inside the declared sweep domain (`ckpt <= L`) so the interval
    // facts backing the residual hold on every row.
    let space = SearchSpace::mist();
    let domains = space.symbol_domains(&model);
    let frozen = sweep_frozen_symbols(0, [0.0; 4], 2, None);
    let specializer = Specializer::new();
    let specialized = specializer.specialized(&tapes.program, &frozen, &domains);

    let mut group_batch = BatchBindings::new(n);
    let ls: Vec<f64> = (0..n).map(|i| 1.0 + (i % 32) as f64).collect();
    let ckpts: Vec<f64> = ls
        .iter()
        .enumerate()
        .map(|(i, &l)| ((i % 8) as f64).min(l))
        .collect();
    group_batch.set_values("L", ls);
    group_batch.set_values("ckpt", ckpts);
    group_batch.set_scalar("zero", 0.0);
    group_batch.set_scalar("wo", 0.0);
    group_batch.set_scalar("go", 0.0);
    group_batch.set_scalar("oo", 0.0);
    group_batch.set_scalar("ao", 0.0);
    group_batch.set_scalar("inflight", 2.0);

    // Exactness spot-check before timing: the residual must reproduce
    // the fused outputs on every root and row of the group batch.
    let mut ws_spec = EvalWorkspace::new();
    tapes.eval_batch_fused(&group_batch, &mut ws).unwrap();
    specialized.eval_batch(&group_batch, &mut ws_spec).unwrap();
    for root in 0..tapes.program.num_roots() {
        assert_eq!(
            ws.output(root),
            ws_spec.output(root),
            "specialized outputs drifted from fused at root {root}"
        );
    }

    let specialized_ns = min_time_ns(iters, || {
        specialized
            .eval_batch(std::hint::black_box(&group_batch), &mut ws_spec)
            .unwrap();
        std::hint::black_box(ws_spec.output(0)[0]);
    });

    // Compiled backend: superinstruction-fused, direct-threaded kernels
    // over the same residual. Must be bit-identical to the interpreter
    // on every root and row before it is worth timing.
    let compiled = CompiledProgram::compile(&specialized);
    let mut ws_comp = CompiledWorkspace::new();
    compiled.eval_batch(&group_batch, &mut ws_comp).unwrap();
    for root in 0..specialized.num_roots() {
        assert_eq!(
            ws_spec.output(root),
            ws_comp.output(root),
            "compiled outputs drifted from interpreted at root {root}"
        );
    }

    let compiled_ns = min_time_ns(iters, || {
        compiled
            .eval_batch(std::hint::black_box(&group_batch), &mut ws_comp)
            .unwrap();
        std::hint::black_box(ws_comp.output(0)[0]);
    });

    let separate_instructions = [
        tapes.mem_fwd.len(),
        tapes.mem_bwd.len(),
        tapes.mem_resident.len(),
        tapes.mem_act_per_mb.len(),
        tapes.mem_transient_fwd.len(),
        tapes.mem_transient_bwd.len(),
        tapes.fwd.compute.len(),
        tapes.fwd.nccl.len(),
        tapes.fwd.d2h.len(),
        tapes.fwd.h2d.len(),
        tapes.bwd.compute.len(),
        tapes.bwd.nccl.len(),
        tapes.bwd.d2h.len(),
        tapes.bwd.h2d.len(),
        tapes.first_extra.compute.len(),
        tapes.first_extra.nccl.len(),
        tapes.first_extra.d2h.len(),
        tapes.first_extra.h2d.len(),
        tapes.last_extra.compute.len(),
        tapes.last_extra.nccl.len(),
        tapes.last_extra.d2h.len(),
        tapes.last_extra.h2d.len(),
    ]
    .iter()
    .sum();

    let result = BenchResult {
        batch_size: n,
        iterations: iters,
        separate_tapes_ns_per_batch: separate_ns,
        fused_program_ns_per_batch: fused_ns,
        fused_speedup: separate_ns / fused_ns,
        fused_rows_per_sec: n as f64 / (fused_ns * 1e-9),
        specialized_ns_per_batch: specialized_ns,
        specialized_speedup: fused_ns / specialized_ns,
        specialized_rows_per_sec: n as f64 / (specialized_ns * 1e-9),
        compiled_ns_per_batch: compiled_ns,
        compiled_speedup: specialized_ns / compiled_ns,
        compiled_rows_per_sec: n as f64 / (compiled_ns * 1e-9),
        program_instructions: tapes.program.len(),
        separate_instructions,
        specialized_instructions: specialized.len(),
        program_registers: tapes.program.num_regs(),
        specialized_registers: specialized.num_regs(),
        compiled_steps: compiled.num_steps(),
        compiled_superinstrs: compiled.superinstrs(),
        compiled_tier: compiled.tier_name(),
    };
    println!(
        "separate: {:.2} ms/batch  fused: {:.2} ms/batch  specialized: {:.2} ms/batch",
        result.separate_tapes_ns_per_batch / 1e6,
        result.fused_program_ns_per_batch / 1e6,
        result.specialized_ns_per_batch / 1e6,
    );
    println!(
        "fused speedup: {:.1}x over separate ({} instrs vs {}, {} registers)",
        result.fused_speedup,
        result.program_instructions,
        result.separate_instructions,
        result.program_registers,
    );
    println!(
        "specialized speedup: {:.1}x over fused ({} instrs, {} registers, \
         {:.1}M rows/sec)",
        result.specialized_speedup,
        result.specialized_instructions,
        result.specialized_registers,
        result.specialized_rows_per_sec / 1e6,
    );
    println!(
        "compiled speedup: {:.1}x over specialized ({} steps, {} superinstrs, \
         {} tier, {:.1}M rows/sec)",
        result.compiled_speedup,
        result.compiled_steps,
        result.compiled_superinstrs,
        result.compiled_tier,
        result.compiled_rows_per_sec / 1e6,
    );
    write_json("bench_symbolic", &result);

    assert!(
        result.fused_speedup >= 1.0,
        "fused evaluation must not be slower than separate tapes"
    );
    assert!(
        result.specialized_speedup >= 1.0,
        "specialized evaluation must not be slower than the fused program"
    );
    assert!(
        result.compiled_speedup >= 1.0,
        "compiled evaluation must not be slower than the interpreted residual"
    );
}
