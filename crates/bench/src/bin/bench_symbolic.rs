//! Smoke-run of the symbolic-evaluation benchmark (paper Fig. 16's
//! substrate): times the fused 22-root stage program against the 22
//! separate per-expression tapes at batch 10 000 and records the speedup
//! in `results/bench_symbolic.json`.
//!
//! This is the cheap, always-runnable counterpart of the Criterion bench
//! in `benches/symbolic_eval.rs`; the verify recipe runs it to catch
//! regressions of the fusion speedup.

use std::time::Instant;

use mist::presets::{gpt3, AttentionImpl, ModelSize};
use mist::{
    ClusterSpec, DeviceMesh, GpuSpec, OpCostDb, Platform, StageAnalyzer, StageCandidate, StageRole,
    StageTapes,
};
use mist_bench::write_json;
use mist_symbolic::{BatchBindings, EvalWorkspace};
use serde::Serialize;

#[derive(Serialize)]
struct BenchResult {
    batch_size: usize,
    iterations: usize,
    separate_tapes_ns_per_batch: f64,
    fused_program_ns_per_batch: f64,
    fused_speedup: f64,
    fused_rows_per_sec: f64,
    program_instructions: usize,
    separate_instructions: usize,
    program_registers: usize,
}

fn grid_batch(n: usize) -> BatchBindings {
    let mut batch = BatchBindings::new(n);
    batch.set_values("L", (0..n).map(|i| 1.0 + (i % 32) as f64).collect());
    batch.set_values("ckpt", (0..n).map(|i| (i % 8) as f64).collect());
    batch.set_values("zero", (0..n).map(|i| (i % 4) as f64).collect());
    batch.set_values("wo", (0..n).map(|i| (i % 2) as f64 * 0.5).collect());
    batch.set_values("go", (0..n).map(|i| (i % 3) as f64 * 0.5).collect());
    batch.set_values("oo", (0..n).map(|i| (i % 5) as f64 * 0.25).collect());
    batch.set_values("ao", (0..n).map(|i| (i % 4) as f64 * 0.25).collect());
    batch.set_scalar("inflight", 2.0);
    batch
}

fn eval_separate(tapes: &StageTapes, batch: &BatchBindings) -> f64 {
    let mut acc = 0.0;
    acc += tapes.mem_fwd.eval_batch(batch).unwrap()[0];
    acc += tapes.mem_bwd.eval_batch(batch).unwrap()[0];
    acc += tapes.mem_resident.eval_batch(batch).unwrap()[0];
    acc += tapes.mem_act_per_mb.eval_batch(batch).unwrap()[0];
    acc += tapes.mem_transient_fwd.eval_batch(batch).unwrap()[0];
    acc += tapes.mem_transient_bwd.eval_batch(batch).unwrap()[0];
    acc += tapes.fwd.eval_batch(batch)[0][0];
    acc += tapes.bwd.eval_batch(batch)[0][0];
    acc += tapes.first_extra.eval_batch(batch)[0][0];
    acc += tapes.last_extra.eval_batch(batch)[0][0];
    acc
}

fn main() {
    let model = gpt3(ModelSize::B6_7, 2048, AttentionImpl::Flash);
    let cluster = ClusterSpec::for_gpu_count(Platform::GcpL4, 8);
    let db = OpCostDb::new(GpuSpec::l4());
    let analyzer = StageAnalyzer::new(&model, &cluster, &db);
    let tapes = analyzer.analyze(&StageCandidate {
        mesh: DeviceMesh::new(1, 8),
        dp: 4,
        tp: 2,
        micro_batch: 2,
        role: StageRole::Only,
    });

    let n = 10_000usize;
    let iters = 20usize;
    let batch = grid_batch(n);
    let mut ws = EvalWorkspace::new();
    let mut sink = 0.0;

    // Warm-up: populate the workspace's register/output pools and fault
    // in the tapes, then time.
    tapes.eval_batch_fused(&batch, &mut ws).unwrap();
    sink += eval_separate(&tapes, &batch);

    let t0 = Instant::now();
    for _ in 0..iters {
        sink += eval_separate(&tapes, &batch);
    }
    let separate_ns = t0.elapsed().as_nanos() as f64 / iters as f64;

    let t0 = Instant::now();
    for _ in 0..iters {
        tapes.eval_batch_fused(&batch, &mut ws).unwrap();
        sink += ws.output(0)[0];
    }
    let fused_ns = t0.elapsed().as_nanos() as f64 / iters as f64;
    std::hint::black_box(sink);

    let separate_instructions = [
        tapes.mem_fwd.len(),
        tapes.mem_bwd.len(),
        tapes.mem_resident.len(),
        tapes.mem_act_per_mb.len(),
        tapes.mem_transient_fwd.len(),
        tapes.mem_transient_bwd.len(),
        tapes.fwd.compute.len(),
        tapes.fwd.nccl.len(),
        tapes.fwd.d2h.len(),
        tapes.fwd.h2d.len(),
        tapes.bwd.compute.len(),
        tapes.bwd.nccl.len(),
        tapes.bwd.d2h.len(),
        tapes.bwd.h2d.len(),
        tapes.first_extra.compute.len(),
        tapes.first_extra.nccl.len(),
        tapes.first_extra.d2h.len(),
        tapes.first_extra.h2d.len(),
        tapes.last_extra.compute.len(),
        tapes.last_extra.nccl.len(),
        tapes.last_extra.d2h.len(),
        tapes.last_extra.h2d.len(),
    ]
    .iter()
    .sum();

    let result = BenchResult {
        batch_size: n,
        iterations: iters,
        separate_tapes_ns_per_batch: separate_ns,
        fused_program_ns_per_batch: fused_ns,
        fused_speedup: separate_ns / fused_ns,
        fused_rows_per_sec: n as f64 / (fused_ns * 1e-9),
        program_instructions: tapes.program.len(),
        separate_instructions,
        program_registers: tapes.program.num_regs(),
    };
    println!(
        "separate: {:.2} ms/batch  fused: {:.2} ms/batch  speedup: {:.1}x  \
         ({} fused instrs vs {} separate, {} registers)",
        result.separate_tapes_ns_per_batch / 1e6,
        result.fused_program_ns_per_batch / 1e6,
        result.fused_speedup,
        result.program_instructions,
        result.separate_instructions,
        result.program_registers,
    );
    write_json("bench_symbolic", &result);

    assert!(
        result.fused_speedup >= 1.0,
        "fused evaluation must not be slower than separate tapes"
    );
}
