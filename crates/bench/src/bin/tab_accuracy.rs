//! §6.6: prediction accuracy of the symbolic analyzer vs the
//! (simulated) measurements. Paper: mean runtime error 1.79%, mean
//! memory error 2.10%.

use mist::presets::{gpt3, llama, AttentionImpl, ModelSize};
use mist::{MistSession, Platform};
use mist_bench::{quick_mode, write_json};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    workload: String,
    batch: u64,
    time_err_pct: f64,
    mem_err_pct: f64,
}

fn main() {
    println!("# §6.6: symbolic-analyzer prediction accuracy\n");
    let mut cases = vec![
        (gpt3(ModelSize::B1_3, 2048, AttentionImpl::Flash), 2u32),
        (gpt3(ModelSize::B2_6, 2048, AttentionImpl::Flash), 4),
        (llama(ModelSize::B2_6, 2048, AttentionImpl::Flash), 4),
        (gpt3(ModelSize::B6_7, 2048, AttentionImpl::Flash), 8),
    ];
    if quick_mode() {
        cases.truncate(2);
    }
    let batches: &[u64] = if quick_mode() { &[16] } else { &[16, 64, 128] };
    println!("| workload | batch | runtime error | memory error |");
    println!("|---|---|---|---|");
    let mut rows = Vec::new();
    let mut time_errs = Vec::new();
    let mut mem_errs = Vec::new();
    for (model, gpus) in cases {
        let name = model.name.clone();
        let session = MistSession::builder(model, Platform::GcpL4, gpus).build();
        let report = session.accuracy_report(batches);
        for s in &report.samples {
            println!(
                "| {} ({gpus} GPUs) | {} | {:.2}% | {:.2}% |",
                name,
                s.global_batch,
                s.time_error() * 100.0,
                s.mem_error() * 100.0
            );
            time_errs.push(s.time_error());
            mem_errs.push(s.mem_error());
            rows.push(Row {
                workload: format!("{name}/{gpus}GPU"),
                batch: s.global_batch,
                time_err_pct: s.time_error() * 100.0,
                mem_err_pct: s.mem_error() * 100.0,
            });
        }
    }
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64 * 100.0;
    println!(
        "\nmean runtime error: {:.2}% (paper: 1.79%)",
        mean(&time_errs)
    );
    println!("mean memory  error: {:.2}% (paper: 2.10%)", mean(&mem_errs));
    write_json("tab_accuracy", &rows);
}
