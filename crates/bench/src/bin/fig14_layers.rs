//! Figure 14: robustness across model depth — GPT-3 (22B dims) with a
//! swept layer count on 32 L4 GPUs, with and without FlashAttention,
//! Mist's full space vs the Megatron-style baseline space.
//!
//! Paper claim: Mist sustains up to ~1.32x across depths (peak at 80
//! layers).

use mist::presets::{gpt3_with_layers, AttentionImpl, ModelSize};
use mist::{Platform, SearchSpace};
use mist_bench::{quick_mode, run_system, write_json, System, Workload};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    layers: u32,
    flash: bool,
    system: String,
    throughput: Option<f64>,
}

fn main() {
    println!("# Figure 14: layer-count sweep (GPT-3 22B dims, 32xL4, B=256)\n");
    let mut depths = vec![32u32, 48, 64, 80];
    if quick_mode() {
        depths.truncate(2);
    }
    let ladder = SearchSpace::fig13_ladder();
    let base_space = ladder[0].clone();
    let mut rows = Vec::new();
    for flash in [true, false] {
        println!("## FlashAttention {}\n", if flash { "on" } else { "off" });
        println!("| layers | Mist | {} | speedup |", base_space.name);
        println!("|---|---|---|---|");
        for &layers in &depths {
            let attn = if flash {
                AttentionImpl::Flash
            } else {
                AttentionImpl::Standard
            };
            let w = Workload {
                model: gpt3_with_layers(ModelSize::B22, layers, 2048, attn),
                platform: Platform::GcpL4,
                gpus: 32,
                global_batch: 256,
            };
            let mist = run_system(&System::Mist, &w, 256);
            let base = run_system(&System::Space(base_space.clone()), &w, 256);
            let speedup = match (mist.throughput, base.throughput) {
                (Some(a), Some(b)) => format!("{:.2}x", a / b),
                _ => "–".into(),
            };
            println!(
                "| {layers} | {} | {} | {speedup} |",
                mist.throughput.map_or("OOM".into(), |t| format!("{t:.2}")),
                base.throughput.map_or("OOM".into(), |t| format!("{t:.2}")),
            );
            rows.push(Row {
                layers,
                flash,
                system: "Mist".into(),
                throughput: mist.throughput,
            });
            rows.push(Row {
                layers,
                flash,
                system: base_space.name.clone(),
                throughput: base.throughput,
            });
        }
        println!();
    }
    write_json("fig14_layers", &rows);
}
