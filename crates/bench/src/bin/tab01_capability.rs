//! Table 1: capability matrix of distributed-training systems, as
//! implemented by this reproduction's search-space presets.

use mist::{Baseline, SearchSpace};

fn main() {
    println!("# Table 1: system capability matrix\n");
    println!("| system | DP/TP/PP | ckpt | offloading (W/G/O/A) | ZeRO-2/3 | auto-tuning |");
    println!("|---|---|---|---|---|---|");
    let describe = |name: &str, s: &SearchSpace, auto: &str| {
        let ckpt = match s.ckpt {
            mist::CkptMode::None => "–",
            mist::CkptMode::Full => "full only",
            mist::CkptMode::Tuned => "per-stage tuned",
        };
        let off: String = ["W", "G", "O", "A"]
            .iter()
            .zip(s.offload_enabled)
            .map(|(n, e)| if e { n.to_string() } else { "–".into() })
            .collect::<Vec<_>>()
            .join("/");
        let zero = if s.zero_levels.contains(&2) || s.zero_levels.contains(&3) {
            "yes"
        } else {
            "no"
        };
        println!("| {name} | yes | {ckpt} | {off} | {zero} | {auto} |");
    };
    for b in Baseline::all() {
        let auto = match b {
            Baseline::MegatronLM | Baseline::DeepSpeed => "manual (grid-searched)",
            _ => "automatic",
        };
        describe(b.name(), &b.space(), auto);
    }
    describe(
        "Mist (this work)",
        &SearchSpace::mist(),
        "automatic, all knobs",
    );
}
