//! Figure 5: growth of the configuration-space size as each optimization
//! is added, for GPT-3 22B on 32 GPUs.

use mist::presets::{gpt3, AttentionImpl, ModelSize};
use mist::{ClusterSpec, Platform, SearchSpace};
use mist_bench::write_json;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    space: String,
    configs: f64,
}

fn main() {
    let model = gpt3(ModelSize::B22, 2048, AttentionImpl::Flash);
    let cluster = ClusterSpec::for_gpu_count(Platform::GcpL4, 32);
    println!("# Figure 5: search-space growth (GPT-3 22B, 32 GPUs, B=256)\n");
    println!("| search space | #configurations |");
    println!("|---|---|");
    let mut rows = Vec::new();
    for space in SearchSpace::fig13_ladder() {
        let count = space.config_count(&model, &cluster, 256);
        println!("| {} | {:.3e} |", space.name, count);
        rows.push(Row {
            space: space.name.clone(),
            configs: count,
        });
    }
    let fine = SearchSpace::mist_fine();
    let count = fine.config_count(&model, &cluster, 256);
    println!("| {} (fine offload grid) | {:.3e} |", fine.name, count);
    rows.push(Row {
        space: fine.name.clone(),
        configs: count,
    });
    write_json("fig05_searchspace", &rows);
}
