//! Ablation: data-driven interference fitting (paper §5.2.2).
//!
//! Compares the prior slowdown factors, the fitted factors, and an
//! overlap-blind "serial" resolver on holdout benchmark mixes from each
//! platform's hidden ground-truth law, plus the downstream effect on
//! end-to-end prediction accuracy.

use mist::presets::{gpt3, AttentionImpl, ModelSize};
use mist::{benchmark_interference, fit_interference, InterferenceModel, MistSession, Platform};
use mist_bench::write_json;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    platform: String,
    prior_err_pct: f64,
    fitted_err_pct: f64,
    serial_err_pct: f64,
}

fn holdout_error(m: &InterferenceModel, samples: &[([f64; 4], f64)]) -> f64 {
    samples
        .iter()
        .map(|(x, y)| (m.predict(*x) - y).abs() / y)
        .sum::<f64>()
        / samples.len() as f64
}

fn serial_error(samples: &[([f64; 4], f64)]) -> f64 {
    samples
        .iter()
        .map(|(x, y)| {
            let serial: f64 = x.iter().sum();
            (serial - y).abs() / y
        })
        .sum::<f64>()
        / samples.len() as f64
}

fn main() {
    println!("# Ablation: interference-model fitting\n");
    println!("| platform | prior error | fitted error | serial (no overlap) error |");
    println!("|---|---|---|---|");
    let mut rows = Vec::new();
    for platform in [Platform::GcpL4, Platform::AwsA100] {
        let train = benchmark_interference(platform, 400, 11);
        let holdout = benchmark_interference(platform, 300, 997);
        let prior = match platform {
            Platform::GcpL4 => InterferenceModel::pcie_defaults(),
            Platform::AwsA100 => InterferenceModel::nvlink_defaults(),
        };
        let (fitted, _) = fit_interference(&prior, &train, 3000, 13);
        let pe = holdout_error(&prior, &holdout);
        let fe = holdout_error(&fitted, &holdout);
        let se = serial_error(&holdout);
        let name = format!("{platform:?}");
        println!(
            "| {name} | {:.2}% | {:.2}% | {:.2}% |",
            pe * 100.0,
            fe * 100.0,
            se * 100.0
        );
        assert!(fe <= pe, "{name}: fitting must help");
        assert!(fe < se, "{name}: fitted must beat serial");
        rows.push(Row {
            platform: name,
            prior_err_pct: pe * 100.0,
            fitted_err_pct: fe * 100.0,
            serial_err_pct: se * 100.0,
        });
    }

    // Downstream: end-to-end prediction accuracy with vs without fitting.
    let model = gpt3(ModelSize::B2_6, 2048, AttentionImpl::Flash);
    let fitted = MistSession::builder(model.clone(), Platform::GcpL4, 4).build();
    let unfitted = MistSession::builder(model, Platform::GcpL4, 4)
        .skip_interference_fit()
        .build();
    let rf = fitted.accuracy_report(&[16, 64]);
    let ru = unfitted.accuracy_report(&[16, 64]);
    println!("\n| session | mean runtime prediction error |");
    println!("|---|---|");
    println!(
        "| calibrated (fitted factors) | {:.2}% |",
        rf.mean_time_error * 100.0
    );
    println!(
        "| uncalibrated (prior factors) | {:.2}% |",
        ru.mean_time_error * 100.0
    );
    write_json("ablation_fitting", &rows);
}
