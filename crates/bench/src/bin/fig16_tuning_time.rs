//! Figure 16: tuning time as optimizations are enabled one by one —
//! GPT-3 22B on 32 GPUs.
//!
//! Mist's claims: tuning stays in minutes even with the full space
//! (vs >40 hours for Alpa on similar workloads), and with an
//! Aceso-equivalent space Mist's tuner is fast. We measure wall-clock
//! tuning time and evaluated-configuration counts for each incremental
//! space plus the Aceso/Alpa presets.

use mist::presets::{gpt3, AttentionImpl, ModelSize};
use mist::{Baseline, Platform, SearchSpace};
use mist_bench::{quick_mode, run_system, write_json, System, Workload};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    space: String,
    tuning_secs: f64,
    configs_evaluated: f64,
    throughput: Option<f64>,
}

fn main() {
    let quick = quick_mode();
    let (size, gpus, batch) = if quick {
        (ModelSize::B6_7, 8u32, 64u64)
    } else {
        (ModelSize::B22, 32, 256)
    };
    let w = Workload {
        model: gpt3(size, 2048, AttentionImpl::Flash),
        platform: Platform::GcpL4,
        gpus,
        global_batch: batch,
    };
    println!("# Figure 16: tuning time ({})\n", w.id());
    println!("| space | tuning time (s) | configs evaluated | samples/s |");
    println!("|---|---|---|---|");
    let mut systems: Vec<System> = SearchSpace::fig13_ladder()
        .into_iter()
        .map(System::Space)
        .collect();
    systems.push(System::Space(SearchSpace::mist_fine()));
    systems.push(System::Baseline(Baseline::Aceso));
    systems.push(System::Baseline(Baseline::Alpa));
    let mut rows = Vec::new();
    for sys in &systems {
        let m = run_system(sys, &w, 256);
        println!(
            "| {} | {:.2} | {:.3e} | {} |",
            m.system,
            m.tuning_secs,
            m.configs_evaluated,
            m.throughput.map_or("OOM".into(), |t| format!("{t:.2}"))
        );
        rows.push(Row {
            space: m.system.clone(),
            tuning_secs: m.tuning_secs,
            configs_evaluated: m.configs_evaluated,
            throughput: m.throughput,
        });
    }
    println!("\n(Alpa's published tuning time on comparable workloads exceeds 40 hours; the");
    println!("row above is its *search space* run through Mist's symbolic tuner, showing");
    println!("that the speed comes from batched symbolic evaluation, not space size.)");
    write_json("fig16_tuning_time", &rows);
}
