//! Figures 4/10: inter-microbatch imbalance.
//!
//! Builds the paper's illustrative pipeline — GPT-3 6.7B over 4 stages ×
//! 2 L4 GPUs, ZeRO-2 with fully offloaded optimizer states — where the
//! first microbatch pays parameter all-gather + state swap-in + the
//! repositioned optimizer step and the last microbatch pays the gradient
//! reduce-scatter. It prints the per-stage stable/first/last microbatch
//! times measured by the event-level simulator and compares the three
//! pipeline objectives (Eq. 1 vs the naive ones) against the measured
//! iteration time.

use mist::presets::{gpt3, AttentionImpl, ModelSize};
use mist::{
    mist_objective, ClusterSpec, DeviceMesh, MistSession, Platform, StageCandidate,
    StageConfigValues, StageRole, StageStreams,
};
use mist_bench::write_json;
use mist_graph::StageAnalyzer;
use mist_schedule::{
    averaged_objective, stable_only_objective, stage_times, StagePlan, TrainingPlan,
};
use serde::Serialize;

#[derive(Serialize)]
struct StageRow {
    stage: u32,
    t_stable_ms: f64,
    first_ms: f64,
    last_ms: f64,
    predicted_t_ms: f64,
    predicted_d_ms: f64,
}

fn main() {
    let model = gpt3(ModelSize::B6_7, 2048, AttentionImpl::Flash);
    let cluster = ClusterSpec::for_gpu_count(Platform::GcpL4, 8);
    let session = MistSession::builder_with_cluster(model.clone(), cluster.clone()).build();

    // The illustrative plan: S=4, G=8, ZeRO-2, optimizer states on the
    // host. dp=2 per stage, so b = 32 / (2*8) = 2.
    let s_total = 4u32;
    let g = 8u32;
    let global_batch = 32u64;
    let stages: Vec<StagePlan> = (0..s_total)
        .map(|i| StagePlan {
            candidate: StageCandidate {
                mesh: DeviceMesh::new(1, 2),
                dp: 2,
                tp: 1,
                micro_batch: 2,
                role: StageRole::of(i, s_total),
            },
            config: StageConfigValues {
                layers: 8,
                ckpt: 4,
                zero: 2,
                wo: 0.0,
                go: 0.0,
                oo: 1.0,
                ao: 0.25,
                inflight: g.min(s_total - i),
            },
        })
        .collect();
    let plan = TrainingPlan {
        grad_accum: g,
        stages,
        global_batch,
    };
    plan.validate().expect("illustrative plan must be valid");

    // Predicted per-stage (t, d) via the symbolic analyzer + interference.
    let analyzer = StageAnalyzer::new(&model, &cluster, session.cost_db());
    let points: Vec<_> = plan
        .stages
        .iter()
        .map(|s| analyzer.analyze(&s.candidate).eval_point(&s.config))
        .collect();
    let streams: Vec<StageStreams> = points
        .iter()
        .map(|p| stage_times(p, session.interference()))
        .collect();

    // Measured, event by event.
    let report = session.execute_plan(&plan);
    println!(
        "# Figure 10: inter-microbatch imbalance (GPT-3 6.7B, 4 stages x 2 L4, G={g}, ZeRO-2 + OO=1)\n"
    );
    println!("| stage | stable mb (ms) | first mb (ms) | last mb (ms) | predicted t (ms) | predicted d (ms) |");
    println!("|---|---|---|---|---|---|");
    let mut rows = Vec::new();
    use mist_sim::TaskKind::{Backward, FirstExtra, Forward};
    for s in 0..s_total {
        let dur = |mb: u32, kind| {
            report
                .records
                .iter()
                .find(|r| r.stage == s && r.microbatch == mb && r.kind == kind)
                .map(|r| (r.end - r.start) * 1e3)
                .unwrap_or(f64::NAN)
        };
        let mid = g / 2;
        let stable = dur(mid, Forward) + dur(mid, Backward);
        // The first microbatch carries the decoupled pre-fill extras.
        let first = dur(0, FirstExtra) + dur(0, Forward) + dur(0, Backward);
        let last = dur(g - 1, Forward) + dur(g - 1, Backward);
        println!(
            "| {s} | {stable:.1} | {first:.1} | {last:.1} | {:.1} | {:.1} |",
            streams[s as usize].t * 1e3,
            streams[s as usize].d * 1e3
        );
        rows.push(StageRow {
            stage: s,
            t_stable_ms: stable,
            first_ms: first,
            last_ms: last,
            predicted_t_ms: streams[s as usize].t * 1e3,
            predicted_d_ms: streams[s as usize].d * 1e3,
        });
    }

    // First + last microbatches must be visibly slower than two stable
    // ones — that is the imbalance the paper's Fig. 4/10 illustrates.
    for r in &rows {
        assert!(
            r.first_ms + r.last_ms > 2.0 * r.t_stable_ms,
            "stage {}: imbalance must be visible",
            r.stage
        );
    }

    let eq1 = mist_objective(&streams, g);
    let avg = averaged_objective(&streams, g);
    let stable = stable_only_objective(&streams, g);
    let measured = report.iteration_time;
    println!("\n| predictor | iteration (s) | error vs simulated |");
    println!("|---|---|---|");
    for (name, v) in [
        ("Eq. 1 (Mist)", eq1),
        ("averaged microbatch", avg),
        ("stable-only", stable),
    ] {
        println!(
            "| {name} | {v:.3} | {:+.1}% |",
            (v - measured) / measured * 100.0
        );
    }
    println!("| simulated (ground truth) | {measured:.3} | – |");
    let eq1_err = ((eq1 - measured) / measured).abs();
    let stable_err = ((stable - measured) / measured).abs();
    assert!(
        eq1_err <= stable_err,
        "Eq. 1 ({eq1_err:.4}) must beat the stable-only objective ({stable_err:.4})"
    );
    write_json("fig10_imbalance", &rows);
}
