//! Figure 15: robustness across global batch sizes — GPT-3 22B on 32 L4
//! GPUs, batch 32…512.
//!
//! Compares the Megatron-style base space, Mist without imbalance
//! awareness, and full Mist. Paper claim: Mist is always best and
//! imbalance-aware inter-stage tuning contributes ~1.13x on average.

use mist::presets::{gpt3, AttentionImpl, ModelSize};
use mist::{Platform, SearchSpace};
use mist_bench::{
    print_throughput_table, quick_mode, run_system, speedup_stats, write_json, System, Workload,
};

fn main() {
    println!("# Figure 15: global-batch sweep (GPT-3 22B, 32xL4)\n");
    let mut batches = vec![32u64, 64, 128, 256, 512];
    if quick_mode() {
        batches.truncate(2);
    }
    let ladder = SearchSpace::fig13_ladder();
    let base = ladder[0].clone();
    let no_imbalance = SearchSpace {
        name: "mist w/o imbalance awareness".into(),
        ..ladder[3].clone()
    };
    let systems = vec![
        System::Space(base),
        System::Space(no_imbalance),
        System::Mist,
    ];
    let mut rows = Vec::new();
    for &b in &batches {
        let w = Workload {
            model: gpt3(ModelSize::B22, 2048, AttentionImpl::Flash),
            platform: Platform::GcpL4,
            gpus: 32,
            global_batch: b,
        };
        for sys in &systems {
            let m = run_system(sys, &w, 256);
            eprintln!(
                "  [{}] B={b} -> {}",
                m.system,
                m.throughput.map_or("OOM".into(), |t| format!("{t:.2}"))
            );
            rows.push(m);
        }
    }
    print_throughput_table("Figure 15", &rows, Some(("Mist", "megatron-space")));
    if let Some((g, m)) = speedup_stats(&rows, "Mist", "mist w/o imbalance awareness") {
        println!("\nimbalance-awareness gain: geomean {g:.2}x, max {m:.2}x (paper: ~1.13x avg)");
    }
    write_json("fig15_batch", &rows);
}
