//! Figure 3 (+ the §3.3 uniform-heuristic comparison): sources of the
//! co-optimization speedup on GPT-3 6.7B ("7B") over 8 L4 GPUs,
//! global batch 512, seq 2048.
//!
//! Paper claims: co-optimization is ~1.22x over tuning parallelism only
//! and ~1.11x over parallelism + ckpt tuning; the uniform per-stage
//! heuristic loses ~20%.

use mist::presets::{gpt3, AttentionImpl, ModelSize};
use mist::{Baseline, CkptMode, Platform, SearchSpace};
use mist_bench::{print_throughput_table, run_system, write_json, System, Workload};

fn main() {
    let w = Workload {
        model: gpt3(ModelSize::B6_7, 2048, AttentionImpl::Flash),
        platform: Platform::GcpL4,
        gpus: 8,
        global_batch: if mist_bench::quick_mode() { 64 } else { 512 },
    };
    println!("# Figure 3: co-optimization speedup sources ({})", w.id());

    let parallel_only = SearchSpace {
        name: "parallelism (full ckpt)".into(),
        ckpt: CkptMode::Full,
        zero_levels: vec![0, 1],
        offload_grid: vec![],
        offload_enabled: [false; 4],
        imbalance_aware: false,
        ..SearchSpace::mist()
    };
    let ckpt_tuned = SearchSpace {
        name: "parallelism + ckpt tuning".into(),
        ckpt: CkptMode::Tuned,
        ..parallel_only.clone()
    };
    let systems = vec![
        System::Space(parallel_only),
        System::Space(ckpt_tuned),
        System::Mist,
        System::Baseline(Baseline::UniformHeuristic),
    ];
    let mut rows = Vec::new();
    for sys in &systems {
        let m = run_system(sys, &w, 256);
        println!(
            "  {:28} -> {}  plan: {}",
            m.system,
            m.throughput
                .map_or("OOM".into(), |t| format!("{t:.2} samples/s")),
            m.plan.clone().unwrap_or_default()
        );
        rows.push(m);
    }
    print_throughput_table("Figure 3", &rows, None);

    let t = |i: usize| rows[i].throughput.unwrap_or(f64::NAN);
    println!("\n| comparison | measured | paper |");
    println!("|---|---|---|");
    println!(
        "| co-opt vs parallelism-only | {:.2}x | 1.22x |",
        t(2) / t(0)
    );
    println!(
        "| co-opt vs +ckpt tuning     | {:.2}x | 1.11x |",
        t(2) / t(1)
    );
    println!(
        "| uniform heuristic degradation | {:.0}% | ~20% |",
        (1.0 - t(3) / t(2)) * 100.0
    );

    // §3.3's uniform-heuristic penalty needs a workload whose optimum is a
    // *heterogeneous pipeline* — on our cost model that happens at
    // multi-node scale, where inter-node data parallelism is expensive.
    if !mist_bench::quick_mode() {
        let w32 = Workload {
            model: gpt3(ModelSize::B22, 2048, AttentionImpl::Flash),
            platform: Platform::GcpL4,
            gpus: 32,
            global_batch: 256,
        };
        println!("\n## Uniform-heuristic penalty at scale ({})\n", w32.id());
        let mist32 = run_system(&System::Mist, &w32, 256);
        let unif32 = run_system(&System::Baseline(Baseline::UniformHeuristic), &w32, 256);
        println!("| system | samples/s | plan |");
        println!("|---|---|---|");
        for m in [&mist32, &unif32] {
            println!(
                "| {} | {} | {} |",
                m.system,
                m.throughput.map_or("OOM".into(), |t| format!("{t:.2}")),
                m.plan.clone().unwrap_or_default()
            );
        }
        if let (Some(a), Some(b)) = (mist32.throughput, unif32.throughput) {
            println!(
                "\nuniform degradation at 32 GPUs: {:.0}% (paper: 20-26%)",
                (1.0 - b / a) * 100.0
            );
        }
        rows.push(mist32);
        rows.push(unif32);
    }
    write_json("fig03_coopt", &rows);
}
