//! Figure 11: end-to-end training throughput with FlashAttention enabled.
//!
//! GPT-3 / LLaMa / Falcon at 1.3B–22B on 2–32 GPUs (Table 4 pairing),
//! L4 (seq 2048) vs Megatron-LM and DeepSpeed, A100 (seq 4096) vs
//! Megatron-LM. Paper claims (geomean speedups): 1.32x over Megatron on
//! L4, 1.51x over DeepSpeed on L4, 1.34x over Megatron on A100.
//!
//! `--quick` restricts to GPT on L4 up to 6.7B.

use mist::presets::Family;
use mist::{Baseline, Platform};
use mist_bench::{
    print_throughput_table, quick_mode, run_system, speedup_stats, table4_grid, write_json, System,
};

fn main() {
    let quick = quick_mode();
    println!(
        "# Figure 11: end-to-end throughput, FlashAttention on{}",
        if quick { " (quick)" } else { "" }
    );
    let mut all = Vec::new();
    let platforms = if quick {
        vec![Platform::GcpL4]
    } else {
        vec![Platform::GcpL4, Platform::AwsA100]
    };
    for platform in platforms {
        let families = if quick {
            vec![Family::Gpt3]
        } else {
            vec![Family::Gpt3, Family::Llama, Family::Falcon]
        };
        for family in families {
            let mut grid = table4_grid(platform, family, true);
            if quick {
                grid.truncate(3);
            }
            let mut systems = vec![System::Mist, System::Baseline(Baseline::MegatronLM)];
            if platform == Platform::GcpL4 {
                systems.push(System::Baseline(Baseline::DeepSpeed));
            }
            let mut rows = Vec::new();
            for w in &grid {
                for sys in &systems {
                    let m = run_system(sys, w, 256);
                    eprintln!(
                        "  [{}] {} -> {}",
                        m.system,
                        m.workload,
                        m.throughput.map_or("OOM".into(), |t| format!("{t:.2}"))
                    );
                    rows.push(m);
                }
            }
            let title = format!(
                "{} on {}",
                family.name(),
                if platform == Platform::GcpL4 {
                    "L4"
                } else {
                    "A100"
                }
            );
            print_throughput_table(&title, &rows, Some(("Mist", "Megatron-LM")));
            all.extend(rows);
        }
    }
    println!("\n## Aggregate speedups (geomean / max)\n");
    println!("| comparison | measured | paper |");
    println!("|---|---|---|");
    if let Some((g, m)) = speedup_stats(&all, "Mist", "Megatron-LM") {
        println!("| Mist vs Megatron-LM | {g:.2}x / {m:.2}x | 1.32x / 1.59x (L4), 1.34x / 1.72x (A100) |");
    }
    if let Some((g, m)) = speedup_stats(&all, "Mist", "DeepSpeed") {
        println!("| Mist vs DeepSpeed (L4) | {g:.2}x / {m:.2}x | 1.51x / 1.67x |");
    }
    write_json("fig11_e2e_flash", &all);
}
