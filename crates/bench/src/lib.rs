//! Shared harness for the figure/table regeneration binaries.
//!
//! Every binary in `src/bin/` reproduces one table or figure of the paper
//! (see DESIGN.md's experiment index): it sweeps the relevant workloads,
//! tunes each system, *measures* the chosen plans on the discrete-event
//! simulator, prints a markdown table, and drops machine-readable JSON
//! under `results/`.

use std::collections::BTreeMap;
use std::path::PathBuf;

use mist::presets::{falcon, gpt3, llama, AttentionImpl, Family, ModelSize, ModelSpec};
use mist::{Baseline, MistSession, Platform, SearchSpace, TuneOutcome};
use serde::Serialize;

/// One workload of the evaluation grid.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Model under training.
    pub model: ModelSpec,
    /// Hardware platform.
    pub platform: Platform,
    /// Total GPU count.
    pub gpus: u32,
    /// Global batch size.
    pub global_batch: u64,
}

impl Workload {
    /// Short identifier like `"GPT-3 6.7B/8xL4/B128"`.
    pub fn id(&self) -> String {
        let plat = match self.platform {
            Platform::GcpL4 => "L4",
            Platform::AwsA100 => "A100",
        };
        format!(
            "{}/{}x{}/B{}",
            self.model.name, self.gpus, plat, self.global_batch
        )
    }
}

/// The Table 4 grid: model size ↔ GPU count ↔ global batch pairing.
pub fn table4_grid(platform: Platform, family: Family, flash: bool) -> Vec<Workload> {
    let seq = match platform {
        Platform::GcpL4 => 2048,
        Platform::AwsA100 => 4096,
    };
    let attn = if flash {
        AttentionImpl::Flash
    } else {
        AttentionImpl::Standard
    };
    let rows = [
        (ModelSize::B1_3, 2u32, 32u64),
        (ModelSize::B2_6, 4, 64),
        (ModelSize::B6_7, 8, 128),
        (ModelSize::B13, 16, 256),
        (ModelSize::B22, 32, 512),
    ];
    rows.iter()
        .map(|&(size, gpus, batch)| {
            let model = match family {
                Family::Gpt3 => gpt3(size, seq, attn),
                Family::Llama => llama(size, seq, attn),
                Family::Falcon => falcon(size, seq, attn),
            };
            Workload {
                model,
                platform,
                gpus,
                global_batch: batch,
            }
        })
        .collect()
}

/// A system under comparison.
#[derive(Debug, Clone)]
pub enum System {
    /// Mist with its full space.
    Mist,
    /// Mist restricted to an arbitrary space (ablations / Fig. 13).
    Space(SearchSpace),
    /// A named baseline.
    Baseline(Baseline),
}

impl System {
    /// Display name.
    pub fn name(&self) -> String {
        match self {
            System::Mist => "Mist".into(),
            System::Space(s) => s.name.clone(),
            System::Baseline(b) => b.name().into(),
        }
    }

    /// The search space this system tunes over.
    pub fn space(&self) -> SearchSpace {
        match self {
            System::Mist => SearchSpace::mist(),
            System::Space(s) => s.clone(),
            System::Baseline(b) => b.space(),
        }
    }
}

/// One measured data point.
#[derive(Debug, Clone, Serialize)]
pub struct Measurement {
    /// Workload id.
    pub workload: String,
    /// System name.
    pub system: String,
    /// Measured throughput in samples/s (`None` = OOM / infeasible).
    pub throughput: Option<f64>,
    /// Measured iteration seconds.
    pub iteration_time: Option<f64>,
    /// Tuner-predicted iteration seconds.
    pub predicted_time: Option<f64>,
    /// Peak memory across stages (GiB).
    pub peak_mem_gib: Option<f64>,
    /// Tuning wall-clock seconds.
    pub tuning_secs: f64,
    /// Configurations the tuner evaluated.
    pub configs_evaluated: f64,
    /// Human-readable plan summary.
    pub plan: Option<String>,
}

/// Summarizes a plan as `G=…, S=…, [l/dp/tp/zero/ckpt…]`.
pub fn plan_summary(outcome: &TuneOutcome) -> String {
    let stages: Vec<String> = outcome
        .plan
        .stages
        .iter()
        .map(|s| {
            let c = &s.config;
            let mut extra = String::new();
            for (name, v) in [("wo", c.wo), ("go", c.go), ("oo", c.oo), ("ao", c.ao)] {
                if v > 0.0 {
                    extra.push_str(&format!(",{name}={v}"));
                }
            }
            format!(
                "l{}b{}dp{}tp{}z{}ck{}{}",
                c.layers,
                s.candidate.micro_batch,
                s.candidate.dp,
                s.candidate.tp,
                c.zero,
                c.ckpt,
                extra
            )
        })
        .collect();
    format!(
        "G={} S={} [{}]",
        outcome.plan.grad_accum,
        outcome.plan.num_stages(),
        stages.join(" | ")
    )
}

/// Tunes + measures one system on one workload.
pub fn run_system(system: &System, w: &Workload, max_grad_accum: u32) -> Measurement {
    let session = MistSession::builder(w.model.clone(), w.platform, w.gpus)
        .space(system.space())
        .max_grad_accum(max_grad_accum)
        .build();
    let start = std::time::Instant::now();
    let outcome = session.tune(w.global_batch);
    let tuning_secs = start.elapsed().as_secs_f64();
    match outcome {
        None => Measurement {
            workload: w.id(),
            system: system.name(),
            throughput: None,
            iteration_time: None,
            predicted_time: None,
            peak_mem_gib: None,
            tuning_secs,
            configs_evaluated: 0.0,
            plan: None,
        },
        Some(outcome) => {
            let report = session.execute(&outcome);
            Measurement {
                workload: w.id(),
                system: system.name(),
                throughput: Some(report.throughput(w.global_batch)),
                iteration_time: Some(report.iteration_time),
                predicted_time: Some(outcome.predicted_iteration),
                peak_mem_gib: Some(
                    report.stage_peak_mem.iter().cloned().fold(0.0, f64::max) / mist::GIB,
                ),
                tuning_secs,
                // Kept f64 so the results JSONs' number format (`49840.0`)
                // stays byte-stable under the vendored serializer.
                configs_evaluated: outcome.stats.configs_evaluated as f64,
                plan: Some(plan_summary(&outcome)),
            }
        }
    }
}

/// Prints a `workload × system → throughput` markdown table, appending a
/// speedup column of `numerator` over `denominator` when both are given.
pub fn print_throughput_table(title: &str, rows: &[Measurement], speedup_of: Option<(&str, &str)>) {
    println!("\n## {title}\n");
    let mut systems: Vec<String> = Vec::new();
    let mut workloads: Vec<String> = Vec::new();
    let mut grid: BTreeMap<(String, String), Option<f64>> = BTreeMap::new();
    for m in rows {
        if !systems.contains(&m.system) {
            systems.push(m.system.clone());
        }
        if !workloads.contains(&m.workload) {
            workloads.push(m.workload.clone());
        }
        grid.insert((m.workload.clone(), m.system.clone()), m.throughput);
    }
    print!("| workload |");
    for s in &systems {
        print!(" {s} |");
    }
    if let Some((a, b)) = speedup_of {
        print!(" {a}/{b} |");
    }
    println!();
    print!("|---|");
    for _ in &systems {
        print!("---|");
    }
    if speedup_of.is_some() {
        print!("---|");
    }
    println!();
    for w in &workloads {
        print!("| {w} |");
        for s in &systems {
            match grid.get(&(w.clone(), s.clone())).copied().flatten() {
                Some(t) => print!(" {t:.2} |"),
                None => print!(" OOM |"),
            }
        }
        if let Some((a, b)) = speedup_of {
            let ta = grid.get(&(w.clone(), a.to_string())).copied().flatten();
            let tb = grid.get(&(w.clone(), b.to_string())).copied().flatten();
            match (ta, tb) {
                (Some(ta), Some(tb)) if tb > 0.0 => print!(" {:.2}x |", ta / tb),
                _ => print!(" – |"),
            }
        }
        println!();
    }
}

/// Geometric-mean speedup of system `a` over system `b` across workloads
/// where both succeeded. Returns `(geomean, max)`.
pub fn speedup_stats(rows: &[Measurement], a: &str, b: &str) -> Option<(f64, f64)> {
    let mut ratios = Vec::new();
    let mut by: BTreeMap<(String, String), f64> = BTreeMap::new();
    for m in rows {
        if let Some(t) = m.throughput {
            by.insert((m.workload.clone(), m.system.clone()), t);
        }
    }
    let workloads: Vec<String> = by.keys().map(|(w, _)| w.clone()).collect();
    for w in workloads {
        if let (Some(&ta), Some(&tb)) = (
            by.get(&(w.clone(), a.to_string())),
            by.get(&(w.clone(), b.to_string())),
        ) {
            ratios.push(ta / tb);
        }
    }
    ratios.dedup();
    if ratios.is_empty() {
        return None;
    }
    let geo = (ratios.iter().map(|r| r.ln()).sum::<f64>() / ratios.len() as f64).exp();
    let max = ratios.iter().cloned().fold(0.0, f64::max);
    Some((geo, max))
}

/// Writes experiment output as JSON under `results/<name>.json`.
pub fn write_json<T: Serialize>(name: &str, value: &T) {
    let dir = results_dir();
    std::fs::create_dir_all(&dir).expect("create results dir");
    let path = dir.join(format!("{name}.json"));
    let json = serde_json::to_string_pretty(value).expect("serialize results");
    std::fs::write(&path, json).expect("write results file");
    println!("\n[results written to {}]", path.display());
}

/// `results/` at the workspace root (falls back to CWD).
pub fn results_dir() -> PathBuf {
    let mut dir = std::env::current_dir().expect("cwd");
    loop {
        if dir.join("Cargo.toml").exists() && dir.join("crates").exists() {
            return dir.join("results");
        }
        if !dir.pop() {
            return PathBuf::from("results");
        }
    }
}

/// True when `--quick` was passed (subset sweeps for smoke runs).
pub fn quick_mode() -> bool {
    std::env::args().any(|a| a == "--quick")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table4_grid_shapes() {
        let g = table4_grid(Platform::GcpL4, Family::Gpt3, true);
        assert_eq!(g.len(), 5);
        assert_eq!(g[0].gpus, 2);
        assert_eq!(g[4].global_batch, 512);
        assert_eq!(g[0].model.seq_len, 2048);
        let a = table4_grid(Platform::AwsA100, Family::Llama, false);
        assert_eq!(a[0].model.seq_len, 4096);
        assert_eq!(a[0].model.attention, AttentionImpl::Standard);
    }

    #[test]
    fn speedup_stats_basic() {
        let mk = |w: &str, s: &str, t: f64| Measurement {
            workload: w.into(),
            system: s.into(),
            throughput: Some(t),
            iteration_time: Some(1.0),
            predicted_time: Some(1.0),
            peak_mem_gib: Some(1.0),
            tuning_secs: 0.0,
            configs_evaluated: 0.0,
            plan: None,
        };
        let rows = vec![
            mk("w1", "A", 2.0),
            mk("w1", "B", 1.0),
            mk("w2", "A", 3.0),
            mk("w2", "B", 2.0),
        ];
        let (geo, max) = speedup_stats(&rows, "A", "B").unwrap();
        assert!((geo - (2.0f64 * 1.5).sqrt()).abs() < 1e-12);
        assert_eq!(max, 2.0);
    }

    #[test]
    fn run_system_smoke() {
        let w = Workload {
            model: gpt3(ModelSize::B1_3, 2048, AttentionImpl::Flash),
            platform: Platform::GcpL4,
            gpus: 2,
            global_batch: 8,
        };
        let m = run_system(&System::Mist, &w, 8);
        assert!(m.throughput.unwrap() > 0.0);
        assert!(m.plan.unwrap().starts_with("G="));
    }
}
