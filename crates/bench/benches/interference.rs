//! Benchmarks Algorithm 1: scalar and batched interference estimation.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mist::InterferenceModel;

fn mixes(n: usize) -> Vec<[f64; 4]> {
    (0..n)
        .map(|i| {
            [
                1e-3 * (1 + i % 7) as f64,
                if i % 2 == 0 {
                    0.4e-3 * (i % 5) as f64
                } else {
                    0.0
                },
                if i % 3 == 0 { 0.2e-3 } else { 0.0 },
                if i % 5 == 0 { 0.3e-3 } else { 0.0 },
            ]
        })
        .collect()
}

fn bench_scalar(c: &mut Criterion) {
    let m = InterferenceModel::pcie_defaults();
    let xs = mixes(64);
    c.bench_function("interference/scalar", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for x in &xs {
                acc += m.predict(black_box(*x));
            }
            black_box(acc)
        })
    });
}

fn bench_batched(c: &mut Criterion) {
    let m = InterferenceModel::pcie_defaults();
    let mut group = c.benchmark_group("interference/batched");
    for n in [100usize, 10000] {
        let rows = mixes(n);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &rows, |b, rows| {
            b.iter(|| black_box(m.predict_batch(black_box(rows))))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_scalar, bench_batched);
criterion_main!(benches);
