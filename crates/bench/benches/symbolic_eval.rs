//! Benchmarks the paper's central performance claim for the symbolic
//! analyzer (§5.2): after one symbolic pass, evaluating a configuration is
//! a value substitution — orders of magnitude faster than re-running the
//! analysis per configuration (the "traditional simulator" takes ~6 s per
//! configuration; re-tracing here plays that role).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mist::presets::{gpt3, AttentionImpl, ModelSize};
use mist::{
    ClusterSpec, DeviceMesh, GpuSpec, OpCostDb, Platform, StageAnalyzer, StageCandidate,
    StageConfigValues, StageRole, StageTapes,
};
use mist_symbolic::{BatchBindings, CompiledWorkspace, EvalWorkspace};

fn setup() -> (mist::presets::ModelSpec, ClusterSpec, OpCostDb) {
    (
        gpt3(ModelSize::B6_7, 2048, AttentionImpl::Flash),
        ClusterSpec::for_gpu_count(Platform::GcpL4, 8),
        OpCostDb::new(GpuSpec::l4()),
    )
}

fn candidate() -> StageCandidate {
    StageCandidate {
        mesh: DeviceMesh::new(1, 8),
        dp: 4,
        tp: 2,
        micro_batch: 2,
        role: StageRole::Only,
    }
}

/// The "traditional analyzer": full re-analysis per configuration.
fn bench_reanalysis(c: &mut Criterion) {
    let (model, cluster, db) = setup();
    let analyzer = StageAnalyzer::new(&model, &cluster, &db);
    let mut group = c.benchmark_group("traditional");
    group.sample_size(30);
    group.bench_function("analyze_per_config", |b| {
        b.iter(|| {
            let tapes = analyzer.analyze(black_box(&candidate()));
            let cfg = StageConfigValues::plain(32, 1);
            black_box(tapes.eval_point(&cfg))
        })
    });
    group.finish();
}

/// Mist: analyze once, substitute values per configuration.
fn bench_substitution(c: &mut Criterion) {
    let (model, cluster, db) = setup();
    let analyzer = StageAnalyzer::new(&model, &cluster, &db);
    let tapes = analyzer.analyze(&candidate());
    let cfg = StageConfigValues {
        layers: 32,
        ckpt: 8,
        zero: 2,
        wo: 0.0,
        go: 0.5,
        oo: 1.0,
        ao: 0.25,
        inflight: 2,
    };
    c.bench_function("mist/scalar_substitution", |b| {
        b.iter(|| black_box(tapes.eval_point(black_box(&cfg))))
    });
}

/// Batched substitution: the amortized per-configuration cost.
fn bench_batched(c: &mut Criterion) {
    let (model, cluster, db) = setup();
    let analyzer = StageAnalyzer::new(&model, &cluster, &db);
    let tapes = analyzer.analyze(&candidate());
    let mut group = c.benchmark_group("mist/batched_substitution");
    for n in [100usize, 1000, 10000] {
        let mut batch = BatchBindings::new(n);
        batch.set_values("L", (0..n).map(|i| 1.0 + (i % 32) as f64).collect());
        batch.set_values("ckpt", (0..n).map(|i| (i % 8) as f64).collect());
        batch.set_values("zero", (0..n).map(|i| (i % 4) as f64).collect());
        batch.set_values("wo", (0..n).map(|i| (i % 2) as f64 * 0.5).collect());
        batch.set_values("go", (0..n).map(|i| (i % 3) as f64 * 0.5).collect());
        batch.set_values("oo", (0..n).map(|i| (i % 5) as f64 * 0.25).collect());
        batch.set_values("ao", (0..n).map(|i| (i % 4) as f64 * 0.25).collect());
        batch.set_scalar("inflight", 2.0);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                black_box(tapes.mem_fwd.eval_batch(black_box(&batch)).unwrap());
                black_box(tapes.fwd.eval_batch(black_box(&batch)));
            })
        });
    }
    group.finish();
}

/// Fills a batch with a representative knob grid of `n` rows.
fn grid_batch(n: usize) -> BatchBindings {
    let mut batch = BatchBindings::new(n);
    batch.set_values("L", (0..n).map(|i| 1.0 + (i % 32) as f64).collect());
    batch.set_values("ckpt", (0..n).map(|i| (i % 8) as f64).collect());
    batch.set_values("zero", (0..n).map(|i| (i % 4) as f64).collect());
    batch.set_values("wo", (0..n).map(|i| (i % 2) as f64 * 0.5).collect());
    batch.set_values("go", (0..n).map(|i| (i % 3) as f64 * 0.5).collect());
    batch.set_values("oo", (0..n).map(|i| (i % 5) as f64 * 0.25).collect());
    batch.set_values("ao", (0..n).map(|i| (i % 4) as f64 * 0.25).collect());
    batch.set_scalar("inflight", 2.0);
    batch
}

/// Evaluates all 22 stage roots through the 22 individual tapes (the
/// pre-fusion evaluation strategy).
fn eval_separate_tapes(tapes: &StageTapes, batch: &BatchBindings) {
    black_box(tapes.mem_fwd.eval_batch(batch).unwrap());
    black_box(tapes.mem_bwd.eval_batch(batch).unwrap());
    black_box(tapes.mem_resident.eval_batch(batch).unwrap());
    black_box(tapes.mem_act_per_mb.eval_batch(batch).unwrap());
    black_box(tapes.mem_transient_fwd.eval_batch(batch).unwrap());
    black_box(tapes.mem_transient_bwd.eval_batch(batch).unwrap());
    black_box(tapes.fwd.eval_batch(batch));
    black_box(tapes.bwd.eval_batch(batch));
    black_box(tapes.first_extra.eval_batch(batch));
    black_box(tapes.last_extra.eval_batch(batch));
}

/// Fused multi-root program vs 22 separate tapes over the full stage
/// model at batch 10 000 — the tentpole comparison. The fused side reuses
/// one workspace across iterations (zero steady-state allocation).
fn bench_fused_vs_separate(c: &mut Criterion) {
    let (model, cluster, db) = setup();
    let analyzer = StageAnalyzer::new(&model, &cluster, &db);
    let tapes = analyzer.analyze(&candidate());
    let mut group = c.benchmark_group("fused_vs_separate");
    let n = 10_000usize;
    let batch = grid_batch(n);
    group.throughput(Throughput::Elements(n as u64));
    group.bench_function(BenchmarkId::new("separate_22_tapes", n), |b| {
        b.iter(|| eval_separate_tapes(&tapes, black_box(&batch)))
    });
    let mut ws = EvalWorkspace::new();
    group.bench_function(BenchmarkId::new("fused_program", n), |b| {
        b.iter(|| {
            tapes.eval_batch_fused(black_box(&batch), &mut ws).unwrap();
            black_box(ws.output(0));
        })
    });
    group.finish();
}

/// Per-sweep specialized residual vs the fused program at batch 10 000:
/// one `(zero, offload)` tuner group frozen, only `L` and `ckpt` varying
/// (with `ckpt <= L`, keeping every row inside the sweep domain the
/// residual's interval facts assume).
fn bench_specialized_vs_fused(c: &mut Criterion) {
    let (model, cluster, db) = setup();
    let analyzer = StageAnalyzer::new(&model, &cluster, &db);
    let tapes = analyzer.analyze(&candidate());
    let space = mist::SearchSpace::mist();
    let domains = space.symbol_domains(&model);
    let frozen = mist_graph::sweep_frozen_symbols(0, [0.0; 4], 2, None);
    let specializer = mist_tuner::Specializer::new();
    let specialized = specializer.specialized(&tapes.program, &frozen, &domains);

    let n = 10_000usize;
    let mut batch = BatchBindings::new(n);
    let ls: Vec<f64> = (0..n).map(|i| 1.0 + (i % 32) as f64).collect();
    let ckpts: Vec<f64> = ls
        .iter()
        .enumerate()
        .map(|(i, &l)| ((i % 8) as f64).min(l))
        .collect();
    batch.set_values("L", ls);
    batch.set_values("ckpt", ckpts);
    batch.set_scalar("zero", 0.0);
    batch.set_scalar("wo", 0.0);
    batch.set_scalar("go", 0.0);
    batch.set_scalar("oo", 0.0);
    batch.set_scalar("ao", 0.0);
    batch.set_scalar("inflight", 2.0);

    let mut group = c.benchmark_group("specialized_vs_fused");
    group.throughput(Throughput::Elements(n as u64));
    let mut ws = EvalWorkspace::new();
    group.bench_function(BenchmarkId::new("fused_program", n), |b| {
        b.iter(|| {
            tapes.eval_batch_fused(black_box(&batch), &mut ws).unwrap();
            black_box(ws.output(0));
        })
    });
    let mut ws_spec = EvalWorkspace::new();
    group.bench_function(BenchmarkId::new("specialized_residual", n), |b| {
        b.iter(|| {
            specialized
                .eval_batch(black_box(&batch), &mut ws_spec)
                .unwrap();
            black_box(ws_spec.output(0));
        })
    });
    group.finish();
}

/// Compiled direct-threaded backend vs the interpreted residual at batch
/// 10 000 — the same residual program, lowered to superinstruction-fused
/// kernel step tables. Bit-identical outputs; only the evaluation engine
/// differs.
fn bench_compiled_vs_specialized(c: &mut Criterion) {
    let (model, cluster, db) = setup();
    let analyzer = StageAnalyzer::new(&model, &cluster, &db);
    let tapes = analyzer.analyze(&candidate());
    let space = mist::SearchSpace::mist();
    let domains = space.symbol_domains(&model);
    let frozen = mist_graph::sweep_frozen_symbols(0, [0.0; 4], 2, None);
    let specializer = mist_tuner::Specializer::new();
    let specialized = specializer.specialized(&tapes.program, &frozen, &domains);
    let compiled = specializer.compiled(&specialized);

    let n = 10_000usize;
    let mut batch = BatchBindings::new(n);
    let ls: Vec<f64> = (0..n).map(|i| 1.0 + (i % 32) as f64).collect();
    let ckpts: Vec<f64> = ls
        .iter()
        .enumerate()
        .map(|(i, &l)| ((i % 8) as f64).min(l))
        .collect();
    batch.set_values("L", ls);
    batch.set_values("ckpt", ckpts);
    batch.set_scalar("zero", 0.0);
    batch.set_scalar("wo", 0.0);
    batch.set_scalar("go", 0.0);
    batch.set_scalar("oo", 0.0);
    batch.set_scalar("ao", 0.0);
    batch.set_scalar("inflight", 2.0);

    let mut group = c.benchmark_group("compiled_vs_specialized");
    group.throughput(Throughput::Elements(n as u64));
    let mut ws_spec = EvalWorkspace::new();
    group.bench_function(BenchmarkId::new("specialized_residual", n), |b| {
        b.iter(|| {
            specialized
                .eval_batch(black_box(&batch), &mut ws_spec)
                .unwrap();
            black_box(ws_spec.output(0));
        })
    });
    let mut ws_comp = CompiledWorkspace::new();
    group.bench_function(BenchmarkId::new("compiled_program", n), |b| {
        b.iter(|| {
            compiled
                .eval_batch(black_box(&batch), &mut ws_comp)
                .unwrap();
            black_box(ws_comp.output(0));
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_reanalysis,
    bench_substitution,
    bench_batched,
    bench_fused_vs_separate,
    bench_specialized_vs_fused,
    bench_compiled_vs_specialized
);
criterion_main!(benches);
