//! Benchmarks intra-stage tuning: the full Pareto-frontier computation for
//! one pipeline-stage candidate — the unit of work behind Fig. 16's
//! tuning-time results.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use mist::presets::{gpt3, AttentionImpl, ModelSize};
use mist::{ClusterSpec, DeviceMesh, GpuSpec, InterferenceModel, OpCostDb, Platform, StageRole};
use mist_tuner::{FrontierKey, IntraStageTuner, SearchSpace};

fn bench_frontier(c: &mut Criterion) {
    let model = gpt3(ModelSize::B6_7, 2048, AttentionImpl::Flash);
    let cluster = ClusterSpec::for_gpu_count(Platform::GcpL4, 8);
    let db = OpCostDb::new(GpuSpec::l4());
    let intf = InterferenceModel::pcie_defaults();
    for (name, space) in [
        ("megatron", SearchSpace::megatron()),
        ("mist", SearchSpace::mist()),
        ("mist-fine", SearchSpace::mist_fine()),
    ] {
        let mut group = c.benchmark_group("intra_stage");
        group.sample_size(10);
        group.measurement_time(std::time::Duration::from_secs(8));
        group.bench_function(format!("frontier/{name}"), |b| {
            b.iter(|| {
                // Fresh tuner each iteration: measure the uncached path.
                let tuner = IntraStageTuner::new(&model, &cluster, &db, &space, &intf, 128);
                let key = FrontierKey {
                    mesh: DeviceMesh::new(1, 8),
                    role: StageRole::Only,
                    inflight: 1,
                    grad_accum: 4,
                };
                black_box(tuner.frontiers(key, model.num_layers))
            })
        });
        group.finish();
    }
}

criterion_group!(benches, bench_frontier);
criterion_main!(benches);
