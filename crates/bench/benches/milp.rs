//! Benchmarks the inter-stage solvers: the Pareto-state DP (Mist's hot
//! path) vs the MILP branch-and-bound (the paper's formulation, kept as a
//! cross-check) on realistic frontier families.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use mist::presets::{gpt3, AttentionImpl, ModelSize};
use mist::{ClusterSpec, DeviceMesh, GpuSpec, InterferenceModel, OpCostDb, Platform, StageRole};
use mist_tuner::{
    solve_inter_stage_dp, solve_inter_stage_milp, FrontierKey, IntraStageTuner, SearchSpace,
};

fn bench_solvers(c: &mut Criterion) {
    let model = gpt3(ModelSize::B22, 2048, AttentionImpl::Flash);
    let cluster = ClusterSpec::for_gpu_count(Platform::GcpL4, 32);
    let db = OpCostDb::new(GpuSpec::l4());
    let intf = InterferenceModel::pcie_defaults();
    let ladder = SearchSpace::fig13_ladder();
    let space = ladder[1].clone();
    let intra = IntraStageTuner::new(&model, &cluster, &db, &space, &intf, 256);

    let mut group = c.benchmark_group("inter_stage");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(8));
    for s in [2u32, 4, 8] {
        let g = 32u32;
        let per = 32 / s;
        let mesh = if per >= 8 {
            DeviceMesh::new(per / 8, 8)
        } else {
            DeviceMesh::new(1, per)
        };
        let handles: Vec<_> = (0..s)
            .map(|i| {
                intra.frontiers(
                    FrontierKey {
                        mesh,
                        role: StageRole::of(i, s),
                        inflight: g.min(s - i),
                        grad_accum: g,
                    },
                    model.num_layers - (s - 1),
                )
            })
            .collect();
        let refs: Vec<&Vec<Vec<_>>> = handles.iter().map(|h| h.as_ref()).collect();
        group.bench_with_input(BenchmarkId::new("dp", s), &refs, |b, refs| {
            b.iter(|| {
                black_box(solve_inter_stage_dp(
                    black_box(refs),
                    model.num_layers,
                    g,
                    &space,
                    f64::INFINITY,
                ))
            })
        });
        if s <= 4 {
            group.bench_with_input(BenchmarkId::new("milp", s), &refs, |b, refs| {
                b.iter(|| {
                    black_box(solve_inter_stage_milp(
                        black_box(refs),
                        model.num_layers,
                        g,
                        &space,
                        f64::INFINITY,
                    ))
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_solvers);
criterion_main!(benches);
