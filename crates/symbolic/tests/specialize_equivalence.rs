//! Specialization exactness: for random expression DAGs, random frozen
//! symbol assignments and random row batches — including non-finite and
//! signed-zero rows — the residual program must produce the same output
//! as the original program evaluated with the frozen symbols bound as
//! scalars. Equality is `==` semantics plus NaN-matches-NaN: the one
//! documented exception to raw bit equality is `-0.0` vs `+0.0` from
//! the add-identity drop (see the `passes` module docs).

use mist_symbolic::{
    specialize, BatchBindings, CmpOp, Context, EvalWorkspace, Expr, FrozenSymbols, SweepFacts,
};
use proptest::prelude::*;

const NAMES: [&str; 4] = ["a", "b", "c", "d"];

/// Row and frozen values: finite magnitudes, both zero signs, both
/// infinities and NaN — every branch of the rewrite rules bites on at
/// least one of these.
const VALUES: [f64; 10] = [
    -3.5,
    -1.0,
    -0.0,
    0.0,
    0.5,
    1.0,
    2.5,
    f64::INFINITY,
    f64::NEG_INFINITY,
    f64::NAN,
];

/// A generation recipe for one expression tree.
#[derive(Debug, Clone)]
enum Spec {
    Sym(usize),
    Const(f64),
    Add(Vec<Spec>),
    Mul(Box<Spec>, Box<Spec>),
    Min(Box<Spec>, Box<Spec>),
    Max(Box<Spec>, Box<Spec>),
    Div(Box<Spec>, Box<Spec>),
    Floor(Box<Spec>),
    Ceil(Box<Spec>),
    Cmp(usize, Box<Spec>, Box<Spec>),
    Select(Box<Spec>, Box<Spec>, Box<Spec>),
}

const CMP_OPS: [CmpOp; 4] = [CmpOp::Le, CmpOp::Lt, CmpOp::Ge, CmpOp::Gt];

fn build<'c>(ctx: &'c Context, spec: &Spec) -> Expr<'c> {
    match spec {
        Spec::Sym(i) => ctx.symbol(NAMES[*i]),
        Spec::Const(c) => ctx.constant(*c),
        Spec::Add(parts) => {
            let mut it = parts.iter().map(|p| build(ctx, p));
            let first = it.next().expect("non-empty add");
            it.fold(first, |acc, x| acc + x)
        }
        Spec::Mul(a, b) => build(ctx, a) * build(ctx, b),
        Spec::Min(a, b) => build(ctx, a).min(build(ctx, b)),
        Spec::Max(a, b) => build(ctx, a).max(build(ctx, b)),
        Spec::Div(a, b) => build(ctx, a) / build(ctx, b),
        Spec::Floor(a) => build(ctx, a).floor(),
        Spec::Ceil(a) => build(ctx, a).ceil(),
        Spec::Cmp(op, a, b) => ctx.cmp(CMP_OPS[*op], build(ctx, a), build(ctx, b)),
        Spec::Select(c, a, b) => ctx.select(build(ctx, c), build(ctx, a), build(ctx, b)),
    }
}

fn spec_strategy() -> BoxedStrategy<Spec> {
    let leaf = prop_oneof![
        (0usize..NAMES.len()).prop_map(Spec::Sym),
        prop::sample::select(vec![-2.0, -0.0, 0.0, 0.5, 1.0, 3.0, 64.0]).prop_map(Spec::Const),
    ]
    .boxed();
    leaf.prop_recursive(5, 64, 3, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 2..4).prop_map(Spec::Add),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Spec::Mul(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Spec::Min(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Spec::Max(Box::new(a), Box::new(b))),
            // Divisors are symbols: the expression builder rejects
            // constant `x / 0` at build time, while a symbol divisor
            // still exercises runtime division by zero, ±inf and NaN
            // through the row values (frozen or batched).
            (inner.clone(), 0usize..NAMES.len())
                .prop_map(|(a, s)| Spec::Div(Box::new(a), Box::new(Spec::Sym(s)))),
            inner.clone().prop_map(|a| Spec::Floor(Box::new(a))),
            inner.clone().prop_map(|a| Spec::Ceil(Box::new(a))),
            (0usize..CMP_OPS.len(), inner.clone(), inner.clone()).prop_map(|(op, a, b)| Spec::Cmp(
                op,
                Box::new(a),
                Box::new(b)
            )),
            (inner.clone(), inner.clone(), inner.clone()).prop_map(|(c, a, b)| Spec::Select(
                Box::new(c),
                Box::new(a),
                Box::new(b)
            )),
        ]
    })
}

fn same_row(a: f64, b: f64) -> bool {
    a == b || (a.is_nan() && b.is_nan())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn specialized_matches_scalar_bound_original(
        spec in spec_strategy(),
        // Index `VALUES.len()` means "leave this symbol unfrozen".
        frozen_mask in prop::collection::vec(0usize..=VALUES.len(), 4),
        rows in prop::collection::vec(prop::collection::vec(0usize..VALUES.len(), 4), 1..12),
    ) {
        let ctx = Context::new();
        let expr = build(&ctx, &spec);
        let program = ctx.compile_program(&[("root", expr)]);

        let frozen = FrozenSymbols::new(
            NAMES
                .iter()
                .zip(&frozen_mask)
                .filter(|&(_, &m)| m < VALUES.len())
                .map(|(&n, &m)| (n, VALUES[m])),
        );
        // No interval facts: frozen-only specialization must be exact
        // for arbitrary rows, non-finite ones included.
        let residual = specialize(&program, &frozen, &SweepFacts::default());
        prop_assert!(
            residual.len() <= program.len(),
            "residual grew: {} -> {}",
            program.len(),
            residual.len()
        );

        let n = rows.len();
        let mut full = BatchBindings::new(n);
        let mut partial = BatchBindings::new(n);
        for (j, &name) in NAMES.iter().enumerate() {
            let col: Vec<f64> = rows.iter().map(|r| VALUES[r[j]]).collect();
            match frozen.get(name) {
                Some(v) => {
                    full.set_scalar(name, v);
                }
                None => {
                    full.set_values(name, col.clone());
                }
            }
            // Extra bindings are ignored, so the residual batch can
            // bind every symbol even when the residual reads fewer.
            partial.set_values(name, col);
        }

        let mut ws_full = EvalWorkspace::new();
        let mut ws_res = EvalWorkspace::new();
        program.eval_batch(&full, &mut ws_full).expect("original eval");
        residual.eval_batch(&partial, &mut ws_res).expect("residual eval");
        for row in 0..n {
            let (orig, spec) = (ws_full.output(0)[row], ws_res.output(0)[row]);
            prop_assert!(
                same_row(orig, spec),
                "row {row}: original {orig} vs specialized {spec} (frozen {:?})",
                frozen.pairs()
            );
        }
    }
}
