//! Hash-consing expression arena and the [`Expr`] handle.

use std::cell::RefCell;
use std::collections::HashMap;
use std::ops::{Add, Div, Mul, Neg, Sub};

use crate::error::SymbolicError;
use crate::node::{CmpOp, ConstBits, ExprId, Node, SymbolId};
use crate::program::Program;
use crate::tape::Tape;

/// Interning arena for symbols and expression nodes.
///
/// All expression construction goes through a `Context`; structurally equal
/// nodes are interned once and local simplification (constant folding,
/// identities, flattening of n-ary operators) is applied eagerly, keeping
/// the DAG compact even for very large traced models.
///
/// The context is single-threaded (`RefCell` inside). Compiled [`Tape`]s are
/// plain data and can be shipped across threads for parallel batched
/// evaluation.
#[derive(Debug, Default)]
pub struct Context {
    inner: RefCell<Inner>,
}

#[derive(Debug, Default)]
struct Inner {
    nodes: Vec<Node>,
    intern: HashMap<Node, ExprId>,
    symbols: Vec<String>,
    symbol_ids: HashMap<String, SymbolId>,
}

impl Inner {
    fn intern(&mut self, node: Node) -> ExprId {
        if let Some(&id) = self.intern.get(&node) {
            return id;
        }
        let id = ExprId(self.nodes.len() as u32);
        self.nodes.push(node.clone());
        self.intern.insert(node, id);
        id
    }

    fn node(&self, id: ExprId) -> &Node {
        &self.nodes[id.0 as usize]
    }

    fn as_const(&self, id: ExprId) -> Option<f64> {
        match self.node(id) {
            Node::Const(c) => Some(c.to_f64()),
            _ => None,
        }
    }
}

/// A copyable handle to an interned expression.
///
/// `Expr` implements the arithmetic operators against other `Expr`s and
/// against `f64`, so cost formulas read naturally:
///
/// ```
/// use mist_symbolic::Context;
/// let ctx = Context::new();
/// let b = ctx.symbol("b");
/// let cost = 2.0 * b + 1.0;
/// assert_eq!(ctx.eval(cost, &[("b", 3.0)]).unwrap(), 7.0);
/// ```
#[derive(Clone, Copy)]
pub struct Expr<'c> {
    ctx: &'c Context,
    id: ExprId,
}

impl std::fmt::Debug for Expr<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.ctx.render(*self))
    }
}

impl<'c> Expr<'c> {
    /// The interned id of this expression.
    pub fn id(&self) -> ExprId {
        self.id
    }

    /// The owning context.
    pub fn context(&self) -> &'c Context {
        self.ctx
    }

    /// Returns the constant value if this expression is a literal constant.
    pub fn as_const(&self) -> Option<f64> {
        self.ctx.inner.borrow().as_const(self.id)
    }

    /// `max(self, other)`.
    pub fn max(self, other: Expr<'c>) -> Expr<'c> {
        self.ctx.max_of(&[self, other])
    }

    /// `min(self, other)`.
    pub fn min(self, other: Expr<'c>) -> Expr<'c> {
        self.ctx.min_of(&[self, other])
    }

    /// `floor(self)`.
    pub fn floor(self) -> Expr<'c> {
        self.ctx.floor(self)
    }

    /// `ceil(self)`.
    pub fn ceil(self) -> Expr<'c> {
        self.ctx.ceil(self)
    }
}

impl Context {
    /// Creates an empty context.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of interned expression nodes (a proxy for DAG size).
    pub fn node_count(&self) -> usize {
        self.inner.borrow().nodes.len()
    }

    /// Interns (or looks up) a symbol by name.
    ///
    /// The same name always maps to the same symbol.
    pub fn symbol(&self, name: &str) -> Expr<'_> {
        let mut inner = self.inner.borrow_mut();
        let sid = if let Some(&sid) = inner.symbol_ids.get(name) {
            sid
        } else {
            let sid = SymbolId(inner.symbols.len() as u32);
            inner.symbols.push(name.to_owned());
            inner.symbol_ids.insert(name.to_owned(), sid);
            sid
        };
        let id = inner.intern(Node::Sym(sid));
        drop(inner);
        Expr { ctx: self, id }
    }

    /// Returns the name of a symbol id.
    pub fn symbol_name(&self, sid: SymbolId) -> String {
        self.inner.borrow().symbols[sid.0 as usize].clone()
    }

    /// Interns a finite constant.
    ///
    /// # Panics
    ///
    /// Panics if `v` is NaN or infinite — cost expressions must stay finite.
    pub fn constant(&self, v: f64) -> Expr<'_> {
        assert!(v.is_finite(), "symbolic constants must be finite, got {v}");
        let id = self
            .inner
            .borrow_mut()
            .intern(Node::Const(ConstBits::from_f64(v)));
        Expr { ctx: self, id }
    }

    /// Clones an expression handle from a raw id (must belong to this context).
    pub fn expr(&self, id: ExprId) -> Expr<'_> {
        assert!(
            (id.0 as usize) < self.inner.borrow().nodes.len(),
            "expression id out of range"
        );
        Expr { ctx: self, id }
    }

    /// Returns a snapshot of the node for an id (for analysis passes).
    pub fn node(&self, id: ExprId) -> Node {
        self.inner.borrow().node(id).clone()
    }

    fn intern(&self, node: Node) -> ExprId {
        self.inner.borrow_mut().intern(node)
    }

    /// N-ary sum with flattening, constant folding and identity removal.
    pub fn add_of<'c>(&'c self, terms: &[Expr<'c>]) -> Expr<'c> {
        let mut ops: Vec<ExprId> = Vec::with_capacity(terms.len());
        let mut konst = 0.0;
        {
            let inner = self.inner.borrow();
            let mut stack: Vec<ExprId> = terms.iter().rev().map(|e| e.id).collect();
            while let Some(id) = stack.pop() {
                match inner.node(id) {
                    Node::Const(c) => konst += c.to_f64(),
                    Node::Add(v) => stack.extend(v.iter().rev().copied()),
                    _ => ops.push(id),
                }
            }
        }
        if konst != 0.0 || ops.is_empty() {
            ops.push(self.constant(konst).id);
        }
        if ops.len() == 1 {
            return Expr {
                ctx: self,
                id: ops[0],
            };
        }
        ops.sort_unstable();
        let id = self.intern(Node::Add(ops));
        Expr { ctx: self, id }
    }

    /// N-ary product with flattening, constant folding and absorbing zero.
    pub fn mul_of<'c>(&'c self, factors: &[Expr<'c>]) -> Expr<'c> {
        let mut ops: Vec<ExprId> = Vec::with_capacity(factors.len());
        let mut konst = 1.0;
        {
            let inner = self.inner.borrow();
            let mut stack: Vec<ExprId> = factors.iter().rev().map(|e| e.id).collect();
            while let Some(id) = stack.pop() {
                match inner.node(id) {
                    Node::Const(c) => konst *= c.to_f64(),
                    Node::Mul(v) => stack.extend(v.iter().rev().copied()),
                    _ => ops.push(id),
                }
            }
        }
        if konst == 0.0 {
            return self.constant(0.0);
        }
        if konst != 1.0 || ops.is_empty() {
            ops.push(self.constant(konst).id);
        }
        if ops.len() == 1 {
            return Expr {
                ctx: self,
                id: ops[0],
            };
        }
        ops.sort_unstable();
        let id = self.intern(Node::Mul(ops));
        Expr { ctx: self, id }
    }

    /// `lhs / rhs`, folding constants and `x / 1`.
    pub fn div<'c>(&'c self, lhs: Expr<'c>, rhs: Expr<'c>) -> Expr<'c> {
        let inner = self.inner.borrow();
        let lc = inner.as_const(lhs.id);
        let rc = inner.as_const(rhs.id);
        drop(inner);
        match (lc, rc) {
            (Some(a), Some(b)) => {
                assert!(b != 0.0, "symbolic constant division by zero");
                self.constant(a / b)
            }
            (Some(0.0), _) => self.constant(0.0),
            (_, Some(1.0)) => lhs,
            // Fold `x / c` into `x * (1/c)` so products flatten further.
            (_, Some(b)) if b != 0.0 => self.mul_of(&[lhs, self.constant(1.0 / b)]),
            _ => {
                let id = self.intern(Node::Div(lhs.id, rhs.id));
                Expr { ctx: self, id }
            }
        }
    }

    fn min_max_of<'c>(&'c self, ops_in: &[Expr<'c>], is_min: bool) -> Expr<'c> {
        assert!(!ops_in.is_empty(), "min/max of empty operand list");
        let mut ops: Vec<ExprId> = Vec::with_capacity(ops_in.len());
        let mut konst: Option<f64> = None;
        {
            let inner = self.inner.borrow();
            let mut stack: Vec<ExprId> = ops_in.iter().rev().map(|e| e.id).collect();
            while let Some(id) = stack.pop() {
                match inner.node(id) {
                    Node::Const(c) => {
                        let v = c.to_f64();
                        konst = Some(match konst {
                            None => v,
                            Some(k) if is_min => k.min(v),
                            Some(k) => k.max(v),
                        });
                    }
                    Node::Min(v) if is_min => stack.extend(v.iter().rev().copied()),
                    Node::Max(v) if !is_min => stack.extend(v.iter().rev().copied()),
                    _ => ops.push(id),
                }
            }
        }
        if let Some(k) = konst {
            ops.push(self.constant(k).id);
        }
        ops.sort_unstable();
        ops.dedup();
        if ops.len() == 1 {
            return Expr {
                ctx: self,
                id: ops[0],
            };
        }
        let node = if is_min {
            Node::Min(ops)
        } else {
            Node::Max(ops)
        };
        let id = self.intern(node);
        Expr { ctx: self, id }
    }

    /// N-ary minimum.
    pub fn min_of<'c>(&'c self, ops: &[Expr<'c>]) -> Expr<'c> {
        self.min_max_of(ops, true)
    }

    /// N-ary maximum.
    pub fn max_of<'c>(&'c self, ops: &[Expr<'c>]) -> Expr<'c> {
        self.min_max_of(ops, false)
    }

    /// `floor(x)`.
    pub fn floor<'c>(&'c self, x: Expr<'c>) -> Expr<'c> {
        if let Some(v) = x.as_const() {
            return self.constant(v.floor());
        }
        let node = self.node(x.id);
        if matches!(node, Node::Floor(_) | Node::Ceil(_)) {
            return x;
        }
        let id = self.intern(Node::Floor(x.id));
        Expr { ctx: self, id }
    }

    /// `ceil(x)`.
    pub fn ceil<'c>(&'c self, x: Expr<'c>) -> Expr<'c> {
        if let Some(v) = x.as_const() {
            return self.constant(v.ceil());
        }
        let node = self.node(x.id);
        if matches!(node, Node::Floor(_) | Node::Ceil(_)) {
            return x;
        }
        let id = self.intern(Node::Ceil(x.id));
        Expr { ctx: self, id }
    }

    /// `ceil(a / b)` — integer ceiling division, e.g. microbatch counts.
    pub fn ceil_div<'c>(&'c self, a: Expr<'c>, b: Expr<'c>) -> Expr<'c> {
        self.ceil(self.div(a, b))
    }

    /// Comparison producing `1.0` / `0.0`.
    pub fn cmp<'c>(&'c self, op: CmpOp, lhs: Expr<'c>, rhs: Expr<'c>) -> Expr<'c> {
        if let (Some(a), Some(b)) = (lhs.as_const(), rhs.as_const()) {
            return self.constant(op.apply(a, b));
        }
        let id = self.intern(Node::Cmp(op, lhs.id, rhs.id));
        Expr { ctx: self, id }
    }

    /// `if cond != 0 { then } else { other }`.
    pub fn select<'c>(&'c self, cond: Expr<'c>, then: Expr<'c>, other: Expr<'c>) -> Expr<'c> {
        if let Some(c) = cond.as_const() {
            return if c != 0.0 { then } else { other };
        }
        if then.id == other.id {
            return then;
        }
        let id = self.intern(Node::Select(cond.id, then.id, other.id));
        Expr { ctx: self, id }
    }

    /// Evaluates an expression against scalar bindings `(name, value)`.
    ///
    /// # Errors
    ///
    /// Returns [`SymbolicError::UnboundSymbol`] if a symbol in the
    /// expression has no binding, or [`SymbolicError::NonFinite`] if
    /// evaluation produces NaN/inf (e.g. division by zero).
    pub fn eval(&self, expr: Expr<'_>, bindings: &[(&str, f64)]) -> Result<f64, SymbolicError> {
        let tape = self.compile(expr);
        tape.eval(bindings)
    }

    /// Compiles an expression into a flat, thread-safe [`Tape`].
    ///
    /// Shared sub-expressions are computed exactly once in the tape.
    pub fn compile(&self, expr: Expr<'_>) -> Tape {
        let inner = self.inner.borrow();
        Tape::build(&inner.nodes, &inner.symbols, expr.id)
    }

    /// Compiles many labeled roots into one fused [`Program`].
    ///
    /// Structurally equal sub-expressions *across* roots share one SSA
    /// slot and are computed once per batch (cross-root CSE), and a
    /// single evaluation pass produces every root's output column. Root
    /// outputs are indexed in the order given here; labels are for
    /// diagnostics and [`Program::root_index`] lookup.
    ///
    /// # Panics
    ///
    /// Panics if `roots` is empty.
    pub fn compile_program(&self, roots: &[(&str, Expr<'_>)]) -> Program {
        let inner = self.inner.borrow();
        let ids: Vec<(&str, crate::node::ExprId)> =
            roots.iter().map(|&(name, e)| (name, e.id)).collect();
        Program::build(&inner.nodes, &inner.symbols, &ids)
    }

    /// Renders an expression as a human-readable string.
    pub fn render(&self, expr: Expr<'_>) -> String {
        let inner = self.inner.borrow();
        crate::display::render(&inner.nodes, &inner.symbols, expr.id)
    }
}

// --- Operator overloading -------------------------------------------------

impl<'c> Add for Expr<'c> {
    type Output = Expr<'c>;
    fn add(self, rhs: Expr<'c>) -> Expr<'c> {
        self.ctx.add_of(&[self, rhs])
    }
}

impl<'c> Add<f64> for Expr<'c> {
    type Output = Expr<'c>;
    fn add(self, rhs: f64) -> Expr<'c> {
        let r = self.ctx.constant(rhs);
        self.ctx.add_of(&[self, r])
    }
}

impl<'c> Add<Expr<'c>> for f64 {
    type Output = Expr<'c>;
    fn add(self, rhs: Expr<'c>) -> Expr<'c> {
        rhs + self
    }
}

impl<'c> Sub for Expr<'c> {
    type Output = Expr<'c>;
    fn sub(self, rhs: Expr<'c>) -> Expr<'c> {
        let neg = self.ctx.mul_of(&[rhs, self.ctx.constant(-1.0)]);
        self.ctx.add_of(&[self, neg])
    }
}

impl<'c> Sub<f64> for Expr<'c> {
    type Output = Expr<'c>;
    fn sub(self, rhs: f64) -> Expr<'c> {
        self + (-rhs)
    }
}

impl<'c> Sub<Expr<'c>> for f64 {
    type Output = Expr<'c>;
    fn sub(self, rhs: Expr<'c>) -> Expr<'c> {
        let l = rhs.ctx.constant(self);
        l - rhs
    }
}

impl<'c> Mul for Expr<'c> {
    type Output = Expr<'c>;
    fn mul(self, rhs: Expr<'c>) -> Expr<'c> {
        self.ctx.mul_of(&[self, rhs])
    }
}

impl<'c> Mul<f64> for Expr<'c> {
    type Output = Expr<'c>;
    fn mul(self, rhs: f64) -> Expr<'c> {
        let r = self.ctx.constant(rhs);
        self.ctx.mul_of(&[self, r])
    }
}

impl<'c> Mul<Expr<'c>> for f64 {
    type Output = Expr<'c>;
    fn mul(self, rhs: Expr<'c>) -> Expr<'c> {
        rhs * self
    }
}

impl<'c> Div for Expr<'c> {
    type Output = Expr<'c>;
    fn div(self, rhs: Expr<'c>) -> Expr<'c> {
        self.ctx.div(self, rhs)
    }
}

impl<'c> Div<f64> for Expr<'c> {
    type Output = Expr<'c>;
    fn div(self, rhs: f64) -> Expr<'c> {
        let r = self.ctx.constant(rhs);
        self.ctx.div(self, r)
    }
}

impl<'c> Div<Expr<'c>> for f64 {
    type Output = Expr<'c>;
    fn div(self, rhs: Expr<'c>) -> Expr<'c> {
        let l = rhs.ctx.constant(self);
        rhs.ctx.div(l, rhs)
    }
}

impl<'c> Neg for Expr<'c> {
    type Output = Expr<'c>;
    fn neg(self) -> Expr<'c> {
        self * -1.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants_fold() {
        let ctx = Context::new();
        let e = ctx.constant(2.0) + ctx.constant(3.0);
        assert_eq!(e.as_const(), Some(5.0));
        let e = ctx.constant(2.0) * ctx.constant(3.0) / ctx.constant(4.0);
        assert_eq!(e.as_const(), Some(1.5));
    }

    #[test]
    fn identities_simplify() {
        let ctx = Context::new();
        let x = ctx.symbol("x");
        assert_eq!((x + 0.0).id(), x.id());
        assert_eq!((x * 1.0).id(), x.id());
        assert_eq!((x * 0.0).as_const(), Some(0.0));
        assert_eq!((x / 1.0).id(), x.id());
    }

    #[test]
    fn hash_consing_canonicalizes_commutative_ops() {
        let ctx = Context::new();
        let x = ctx.symbol("x");
        let y = ctx.symbol("y");
        assert_eq!((x + y).id(), (y + x).id());
        assert_eq!((x * y).id(), (y * x).id());
        assert_eq!(x.max(y).id(), y.max(x).id());
    }

    #[test]
    fn same_symbol_name_same_id() {
        let ctx = Context::new();
        assert_eq!(ctx.symbol("dp").id(), ctx.symbol("dp").id());
        assert_ne!(ctx.symbol("dp").id(), ctx.symbol("tp").id());
    }

    #[test]
    fn min_max_collapse_constants() {
        let ctx = Context::new();
        let x = ctx.symbol("x");
        let e = ctx.min_of(&[x, ctx.constant(3.0), ctx.constant(1.0)]);
        // `min(x, 3, 1)` keeps one constant (1).
        assert_eq!(ctx.eval(e, &[("x", 10.0)]).unwrap(), 1.0);
        assert_eq!(ctx.eval(e, &[("x", 0.5)]).unwrap(), 0.5);
        let m = ctx.max_of(&[ctx.constant(2.0), ctx.constant(7.0)]);
        assert_eq!(m.as_const(), Some(7.0));
    }

    #[test]
    fn select_folds_constant_condition() {
        let ctx = Context::new();
        let x = ctx.symbol("x");
        let y = ctx.symbol("y");
        let t = ctx.cmp(CmpOp::Le, ctx.constant(1.0), ctx.constant(2.0));
        assert_eq!(ctx.select(t, x, y).id(), x.id());
        let f = ctx.cmp(CmpOp::Gt, ctx.constant(1.0), ctx.constant(2.0));
        assert_eq!(ctx.select(f, x, y).id(), y.id());
        // Identical branches collapse regardless of the condition.
        let c = ctx.cmp(CmpOp::Le, x, y);
        assert_eq!(ctx.select(c, x, x).id(), x.id());
    }

    #[test]
    fn eval_nested_expression() {
        let ctx = Context::new();
        let b = ctx.symbol("b");
        let tp = ctx.symbol("tp");
        let e = (b * 4096.0 * 2.0 / tp + 7.0).max(ctx.constant(10.0));
        let v = ctx.eval(e, &[("b", 2.0), ("tp", 4.0)]).unwrap();
        assert_eq!(v, (2.0 * 4096.0 * 2.0 / 4.0 + 7.0f64).max(10.0));
    }

    #[test]
    fn eval_unbound_symbol_errors() {
        let ctx = Context::new();
        let x = ctx.symbol("x");
        let err = ctx.eval(x + 1.0, &[]).unwrap_err();
        assert!(matches!(err, SymbolicError::UnboundSymbol(_)));
    }

    #[test]
    fn ceil_div_behaves_like_integer_ceiling() {
        let ctx = Context::new();
        let g = ctx.symbol("g");
        let e = ctx.ceil_div(g, ctx.constant(4.0));
        assert_eq!(ctx.eval(e, &[("g", 9.0)]).unwrap(), 3.0);
        assert_eq!(ctx.eval(e, &[("g", 8.0)]).unwrap(), 2.0);
    }

    #[test]
    fn floor_of_floor_is_idempotent() {
        let ctx = Context::new();
        let x = ctx.symbol("x");
        let f = ctx.floor(x);
        assert_eq!(ctx.floor(f).id(), f.id());
    }

    #[test]
    fn subtraction_and_negation() {
        let ctx = Context::new();
        let x = ctx.symbol("x");
        let e = 10.0 - x;
        assert_eq!(ctx.eval(e, &[("x", 4.0)]).unwrap(), 6.0);
        assert_eq!(ctx.eval(-x, &[("x", 4.0)]).unwrap(), -4.0);
    }

    #[test]
    fn shared_subexpressions_are_interned_once() {
        let ctx = Context::new();
        let x = ctx.symbol("x");
        let shared = x * 2.0 + 1.0;
        let n0 = ctx.node_count();
        let _again = x * 2.0 + 1.0;
        assert_eq!(ctx.node_count(), n0);
        let combined = shared + shared;
        // `shared + shared` flattens into `Add([s, s])`… which dedups in
        // canonical sorted order but keeps both (sum semantics).
        assert_eq!(ctx.eval(combined, &[("x", 1.0)]).unwrap(), 6.0);
    }
}
