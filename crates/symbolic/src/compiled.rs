//! Direct-threaded compiled evaluation backend.
//!
//! A [`CompiledProgram`] lowers a fused SSA [`Program`] — after running
//! the peephole superinstruction pass of [`crate::fuse`] — into a flat
//! array of [`Step`]s, each holding a *monomorphized kernel function
//! pointer* plus register indices. Evaluation walks the step table once
//! per row block with **no `match` anywhere in the hot path**: dispatch
//! cost is one indirect call per instruction per block of [`BLOCK`]
//! rows, amortized to a fraction of a cycle per row.
//!
//! The compiled layout differs from the interpreter in two ways that
//! matter for throughput, neither of which changes results:
//!
//! * **Blocked registers.** Instead of full batch-length columns (80 KB
//!   each at 10k rows — far beyond L1), every register is a fixed
//!   [`BLOCK`]-row block (`128 × 8 B = 1 KiB`). A residual's entire
//!   register file stays resident in L1d while all its steps run over
//!   one block, then the next block starts. Partial tail blocks run the
//!   full-width kernels over stale-but-initialized garbage lanes —
//!   lanewise `f64` arithmetic never faults — and only the live prefix
//!   is copied out.
//! * **Tiered kernels.** Each kernel body is compiled three times — a
//!   baseline scalar tier plus AVX2 and AVX-512 tiers behind
//!   `#[target_feature]` on `x86_64` — and the best tier supported by
//!   the running CPU is selected **once** at compile time, not per
//!   call. All tiers execute the same IEEE-754 double operations in
//!   the same order, so results are bit-identical across tiers.
//!
//! # Exactness
//!
//! Compiled evaluation is bit-identical to [`Program::eval_batch`] for
//! every binding, including ±∞, NaN and `-0.0` rows:
//!
//! * kernels perform the same `f64` operations in the same fold order
//!   as the interpreter's chunked kernels (n-ary folds lower to one
//!   binary step plus left-to-right accumulate steps — the exact fold
//!   `fold_kernel` performs);
//! * `muladd` computes `(a * b) + c` as two IEEE operations — it is
//!   never lowered to a hardware FMA (Rust does not contract float
//!   expressions), preserving the double rounding of the unfused pair;
//! * root copy-out maps non-finite values to `f64::INFINITY` exactly
//!   like the interpreter;
//! * the interpreter's uniform (broadcast-lane) fast path computes the
//!   same IEEE operations once instead of per row, which cannot change
//!   bits — deterministic operations on equal inputs give equal
//!   results.
//!
//! Compilation is skipped (callers stay on the interpreter) only when
//! the caller opts out — e.g. the tuner's `--no-compiled-eval` A/B
//! flag; there is no program shape the backend cannot lower.

use std::collections::HashMap;

use crate::error::SymbolicError;
use crate::fuse::fuse_superinstructions;
use crate::node::CmpOp;
use crate::program::{Op, Program, SymbolTable};
use crate::tape::{BatchBindings, Column};

/// Rows per register block. 128 doubles = 1 KiB per register: a
/// residual's whole register file fits in L1d, and the fixed-width
/// kernel loops compile to straight-line vector code.
pub const BLOCK: usize = 128;

/// One register: a fixed-width block of rows.
type Block = [f64; BLOCK];

/// One lowered instruction: a monomorphized kernel plus up to four
/// source registers and one destination. Unused operand fields are 0.
#[derive(Debug, Clone, Copy)]
struct Step {
    kernel: Kernel,
    dst: u32,
    a: u32,
    b: u32,
    c: u32,
    d: u32,
}

/// A kernel processes one full [`Block`] for one step.
///
/// # Safety
///
/// Callers must guarantee: the step's register indices are in bounds of
/// the register file behind `regs`; the destination register does not
/// alias any *distinct-role* source register (accumulator kernels read
/// and write `dst` through the single `&mut`); and the CPU supports the
/// target features the kernel was compiled with.
type Kernel = unsafe fn(*mut Block, &Step);

/// Kernel bodies, written once and re-compiled per tier. Each body is a
/// safe `#[inline(always)]` function doing internal unsafe register
/// derefs; the per-tier wrappers inline them under their
/// `#[target_feature]`, so one source definition yields scalar, AVX2
/// and AVX-512 code.
mod body {
    use super::{Block, Step, BLOCK};

    #[inline(always)]
    fn dst<'a>(regs: *mut Block, s: &Step) -> &'a mut Block {
        // SAFETY: the lowerer keeps every index < num_regs and never
        // assigns a step's destination to a source register, so this
        // `&mut` is unique (see `Kernel`'s safety contract).
        unsafe { &mut *regs.add(s.dst as usize) }
    }

    #[inline(always)]
    fn src<'a>(regs: *mut Block, i: u32) -> &'a Block {
        // SAFETY: in bounds per the lowerer; shared reads may alias
        // each other but never the destination.
        unsafe { &*regs.add(i as usize) }
    }

    macro_rules! unary_body {
        ($name:ident, $f:expr) => {
            #[inline(always)]
            pub fn $name(regs: *mut Block, s: &Step) {
                let (d, a) = (dst(regs, s), src(regs, s.a));
                let f = $f;
                for (x, &p) in d.iter_mut().zip(a.iter()) {
                    *x = f(p);
                }
            }
        };
    }

    macro_rules! bin_body {
        ($name:ident, $f:expr) => {
            #[inline(always)]
            pub fn $name(regs: *mut Block, s: &Step) {
                let (d, a, b) = (dst(regs, s), src(regs, s.a), src(regs, s.b));
                let f = $f;
                for ((x, &p), &q) in d.iter_mut().zip(a.iter()).zip(b.iter()) {
                    *x = f(p, q);
                }
            }
        };
    }

    /// In-place fold step: `dst = f(dst, src)` lanewise — the
    /// accumulator form of the interpreter's `fold_col`.
    macro_rules! acc_body {
        ($name:ident, $f:expr) => {
            #[inline(always)]
            pub fn $name(regs: *mut Block, s: &Step) {
                let (d, a) = (dst(regs, s), src(regs, s.a));
                let f = $f;
                for (x, &p) in d.iter_mut().zip(a.iter()) {
                    *x = f(*x, p);
                }
            }
        };
    }

    /// Guarded select: `dst = if cmp(a, b) { c } else { d }` lanewise.
    macro_rules! selcmp_body {
        ($name:ident, $f:expr) => {
            #[inline(always)]
            pub fn $name(regs: *mut Block, s: &Step) {
                let (d, a, b) = (dst(regs, s), src(regs, s.a), src(regs, s.b));
                let (t, e) = (src(regs, s.c), src(regs, s.d));
                let f = $f;
                for i in 0..BLOCK {
                    d[i] = if f(a[i], b[i]) { t[i] } else { e[i] };
                }
            }
        };
    }

    #[inline(always)]
    pub fn copy(regs: *mut Block, s: &Step) {
        *dst(regs, s) = *src(regs, s.a);
    }

    bin_body!(add2, |x: f64, y: f64| x + y);
    bin_body!(mul2, |x: f64, y: f64| x * y);
    bin_body!(min2, f64::min);
    bin_body!(max2, f64::max);
    acc_body!(acc_add, |x: f64, y: f64| x + y);
    acc_body!(acc_mul, |x: f64, y: f64| x * y);
    acc_body!(acc_min, f64::min);
    acc_body!(acc_max, f64::max);
    bin_body!(div, |x: f64, y: f64| x / y);
    unary_body!(floor, f64::floor);
    unary_body!(ceil, f64::ceil);
    bin_body!(cmp_le, |x: f64, y: f64| f64::from(x <= y));
    bin_body!(cmp_lt, |x: f64, y: f64| f64::from(x < y));
    bin_body!(cmp_ge, |x: f64, y: f64| f64::from(x >= y));
    bin_body!(cmp_gt, |x: f64, y: f64| f64::from(x > y));
    bin_body!(cmp_eq, |x: f64, y: f64| f64::from(x == y));

    #[inline(always)]
    pub fn select(regs: *mut Block, s: &Step) {
        let (d, c) = (dst(regs, s), src(regs, s.a));
        let (t, e) = (src(regs, s.b), src(regs, s.c));
        for i in 0..BLOCK {
            d[i] = if c[i] != 0.0 { t[i] } else { e[i] };
        }
    }

    // Two roundings, never a hardware FMA: Rust does not contract
    // `a * b + c`, so this is the exact unfused Mul-then-Add pair.
    #[inline(always)]
    pub fn muladd(regs: *mut Block, s: &Step) {
        let (d, a, b, c) = (dst(regs, s), src(regs, s.a), src(regs, s.b), src(regs, s.c));
        for i in 0..BLOCK {
            d[i] = a[i] * b[i] + c[i];
        }
    }

    selcmp_body!(selcmp_le, |x: f64, y: f64| x <= y);
    selcmp_body!(selcmp_lt, |x: f64, y: f64| x < y);
    selcmp_body!(selcmp_ge, |x: f64, y: f64| x >= y);
    selcmp_body!(selcmp_gt, |x: f64, y: f64| x > y);
    selcmp_body!(selcmp_eq, |x: f64, y: f64| x == y);
    bin_body!(divfloor, |x: f64, y: f64| (x / y).floor());
    bin_body!(divceil, |x: f64, y: f64| (x / y).ceil());

    /// Root copy-out: finite-maps one register block into an output
    /// column slice. Lives here (and is tier-wrapped like the kernels)
    /// because `eval_batch` itself compiles at baseline features —
    /// without the wrapper this loop runs at SSE2 width and dominates
    /// the whole evaluation.
    #[inline(always)]
    pub fn finite_out(src: &Block, out: &mut [f64]) {
        if let Ok(out) = <&mut [f64; BLOCK]>::try_from(&mut *out) {
            // Fixed trip count: compiles to straight-line vector code.
            for (o, &v) in out.iter_mut().zip(src.iter()) {
                *o = super::finite_or_inf(v);
            }
        } else {
            let len = out.len();
            for (o, &v) in out.iter_mut().zip(&src[..len]) {
                *o = super::finite_or_inf(v);
            }
        }
    }
}

/// Invokes `$m!` with the full kernel name list — the single source of
/// truth shared by the tier modules, [`KernelId`] and `resolve`.
macro_rules! with_kernels {
    ($m:ident) => {
        $m!(
            copy, add2, mul2, min2, max2, acc_add, acc_mul, acc_min, acc_max, div, floor, ceil,
            cmp_le, cmp_lt, cmp_ge, cmp_gt, cmp_eq, select, muladd, selcmp_le, selcmp_lt,
            selcmp_ge, selcmp_gt, selcmp_eq, divfloor, divceil
        );
    };
}

macro_rules! declare_kernel_ids {
    ($($k:ident),* $(,)?) => {
        /// Symbolic kernel selector, resolved to a tiered fn pointer at
        /// lowering time. Variants are named after the kernel bodies.
        #[derive(Debug, Clone, Copy, PartialEq, Eq)]
        #[allow(non_camel_case_types)]
        enum KernelId { $($k),* }
    };
}
with_kernels!(declare_kernel_ids);

macro_rules! declare_scalar_tier {
    ($($k:ident),* $(,)?) => {
        /// Baseline tier: the kernel bodies at the crate's default
        /// target features (autovectorized at whatever the build
        /// baseline allows).
        mod scalar {
            $(
                pub unsafe fn $k(regs: *mut super::Block, step: &super::Step) {
                    super::body::$k(regs, step)
                }
            )*
        }
    };
}
with_kernels!(declare_scalar_tier);

#[cfg(target_arch = "x86_64")]
macro_rules! declare_avx2_tier {
    ($($k:ident),* $(,)?) => {
        /// AVX2 tier: same bodies inlined under
        /// `#[target_feature(enable = "avx2")]`.
        mod avx2 {
            $(
                #[target_feature(enable = "avx2")]
                pub unsafe fn $k(regs: *mut super::Block, step: &super::Step) {
                    super::body::$k(regs, step)
                }
            )*
        }
    };
}
#[cfg(target_arch = "x86_64")]
with_kernels!(declare_avx2_tier);

#[cfg(target_arch = "x86_64")]
macro_rules! declare_avx512_tier {
    ($($k:ident),* $(,)?) => {
        /// AVX-512 tier: same bodies inlined under
        /// `#[target_feature(enable = "avx512f")]`.
        mod avx512 {
            $(
                #[target_feature(enable = "avx512f")]
                pub unsafe fn $k(regs: *mut super::Block, step: &super::Step) {
                    super::body::$k(regs, step)
                }
            )*
        }
    };
}
#[cfg(target_arch = "x86_64")]
with_kernels!(declare_avx512_tier);

macro_rules! declare_resolve {
    ($($k:ident),* $(,)?) => {
        /// Picks the fn pointer for `id` in `tier`.
        fn resolve(id: KernelId, tier: Tier) -> Kernel {
            match tier {
                Tier::Scalar => match id { $(KernelId::$k => scalar::$k as Kernel,)* },
                #[cfg(target_arch = "x86_64")]
                Tier::Avx2 => match id { $(KernelId::$k => avx2::$k as Kernel,)* },
                #[cfg(target_arch = "x86_64")]
                Tier::Avx512 => match id { $(KernelId::$k => avx512::$k as Kernel,)* },
            }
        }
    };
}
with_kernels!(declare_resolve);

/// Tier-resolved root copy-out (see [`body::finite_out`]).
///
/// # Safety
///
/// The CPU must support the target features the function was compiled
/// with — guaranteed by resolving against the [`detect_tier`] result.
type FiniteOut = unsafe fn(&Block, &mut [f64]);

unsafe fn finite_out_scalar(src: &Block, out: &mut [f64]) {
    body::finite_out(src, out)
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn finite_out_avx2(src: &Block, out: &mut [f64]) {
    body::finite_out(src, out)
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
unsafe fn finite_out_avx512(src: &Block, out: &mut [f64]) {
    body::finite_out(src, out)
}

fn resolve_finite_out(tier: Tier) -> FiniteOut {
    match tier {
        Tier::Scalar => finite_out_scalar,
        #[cfg(target_arch = "x86_64")]
        Tier::Avx2 => finite_out_avx2,
        #[cfg(target_arch = "x86_64")]
        Tier::Avx512 => finite_out_avx512,
    }
}

/// Instruction-set tier the kernels were resolved against.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Tier {
    Scalar,
    #[cfg(target_arch = "x86_64")]
    Avx2,
    #[cfg(target_arch = "x86_64")]
    Avx512,
}

/// Best tier the running CPU supports, detected once per compile.
fn detect_tier() -> Tier {
    #[cfg(target_arch = "x86_64")]
    {
        if is_x86_feature_detected!("avx512f") {
            return Tier::Avx512;
        }
        if is_x86_feature_detected!("avx2") {
            return Tier::Avx2;
        }
    }
    Tier::Scalar
}

/// A step before kernel resolution (lowering keeps these symbolic so
/// the whole table resolves against one detected tier at the end).
struct RawStep {
    k: KernelId,
    dst: u32,
    a: u32,
    b: u32,
    c: u32,
    d: u32,
}

/// How one root's output column is materialized. Only [`RootPlan::Block`]
/// roots pay a per-block strided write into their column; the rest are
/// recognized at lowering time and filled (or aliased) in one sequential
/// pass, which is what keeps copy-out off the critical path when a
/// residual has constant, symbol or duplicate roots.
#[derive(Debug, Clone, Copy)]
enum RootPlan {
    /// Computed value: copied out of this register block by block.
    Block(u32),
    /// Same slot as an earlier root: reads resolve to that root's
    /// column, no copy at all.
    Alias(u32),
    /// Constant root: the column is one splatted value, filled only
    /// when the batch length changes.
    Const(f64),
    /// Bare-symbol root: the column is the binding itself (finite-
    /// mapped), filled sequentially once per evaluation.
    Sym(u32),
}

/// A [`Program`] lowered to a direct-threaded step table.
///
/// Build one with [`CompiledProgram::compile`]; evaluate batches with
/// [`CompiledProgram::eval_batch`] against a reusable
/// [`CompiledWorkspace`]. Results are bit-identical to
/// [`Program::eval_batch`] on the source program (see the
/// [module docs](self) for the exactness argument). The value is plain
/// `Send + Sync` data, so one compile can be shared across pool
/// workers behind an `Arc`.
#[derive(Debug, Clone)]
pub struct CompiledProgram {
    /// Process-unique identity (fresh per compile; keys the
    /// workspace's prepared-state check).
    id: u64,
    steps: Vec<Step>,
    num_regs: usize,
    /// Constant registers, splatted once when a workspace is prepared.
    const_splats: Vec<(u32, f64)>,
    /// `(register, symbol input slot)` pairs: scalar-bound symbols are
    /// splatted once per evaluation, column-bound ones loaded per block.
    sym_regs: Vec<(u32, u32)>,
    /// Register holding each root's value, in root-index order.
    root_regs: Vec<u32>,
    /// Per-root materialization plan (see [`RootPlan`]).
    root_plan: Vec<RootPlan>,
    /// Tier-resolved root copy-out.
    finite_out: FiniteOut,
    table: SymbolTable,
    labels: Vec<String>,
    superinstrs: usize,
    tier: Tier,
}

impl CompiledProgram {
    /// Runs superinstruction fusion over `program` and lowers the fused
    /// stream to a step table with kernels resolved for this CPU.
    pub fn compile(program: &Program) -> CompiledProgram {
        let (fused, superinstrs) = fuse_superinstructions(program);
        Self::lower(fused, superinstrs, detect_tier())
    }

    fn lower(fused: Program, superinstrs: usize, tier: Tier) -> CompiledProgram {
        let n = fused.ops.len();

        // Slot liveness, as in the interpreter's register allocator:
        // roots stay live forever.
        let mut last_use: Vec<u32> = (0..n as u32).collect();
        for slot in 0..n {
            fused
                .instr(slot)
                .for_each_operand(|s| last_use[s as usize] = slot as u32);
        }
        for &r in &fused.roots {
            last_use[r as usize] = u32::MAX;
        }

        // Pass 1: pin constants and symbols to dedicated registers that
        // the step loop never writes (consts splat at prepare; symbol
        // registers are reloaded per evaluation / per block).
        let mut reg_of = vec![u32::MAX; n];
        let mut pinned = vec![false; n];
        let mut next_reg: u32 = 0;
        let mut const_splats = Vec::new();
        let mut sym_regs = Vec::new();
        for (slot, op) in fused.ops.iter().enumerate() {
            match *op {
                Op::Const(c) => {
                    reg_of[slot] = next_reg;
                    pinned[slot] = true;
                    const_splats.push((next_reg, c));
                    next_reg += 1;
                }
                Op::Sym(s) => {
                    reg_of[slot] = next_reg;
                    pinned[slot] = true;
                    sym_regs.push((next_reg, s));
                    next_reg += 1;
                }
                _ => {}
            }
        }

        // Pass 2: emit steps, allocating temp registers linear-scan.
        // The destination is claimed *before* operands are freed, so a
        // destination never aliases a same-step source; pinned
        // registers are never recycled.
        let mut raw: Vec<RawStep> = Vec::new();
        let mut free: Vec<u32> = Vec::new();
        let mut freed = vec![false; n];
        for (slot, op) in fused.ops.iter().enumerate() {
            if !matches!(op, Op::Const(_) | Op::Sym(_)) {
                let dst = free.pop().unwrap_or_else(|| {
                    next_reg += 1;
                    next_reg - 1
                });
                reg_of[slot] = dst;
                emit_op(&mut raw, &fused, &reg_of, *op, dst);
            }
            fused.instr(slot).for_each_operand(|s| {
                let su = s as usize;
                if last_use[su] == slot as u32 && !freed[su] && !pinned[su] {
                    freed[su] = true;
                    free.push(reg_of[su]);
                }
            });
        }

        let steps: Vec<Step> = raw
            .into_iter()
            .map(|r| Step {
                kernel: resolve(r.k, tier),
                dst: r.dst,
                a: r.a,
                b: r.b,
                c: r.c,
                d: r.d,
            })
            .collect();
        let root_regs: Vec<u32> = fused.roots.iter().map(|&r| reg_of[r as usize]).collect();

        // Classify roots: duplicate slots alias the first occurrence,
        // constant and bare-symbol roots fill sequentially, and only
        // computed roots take the per-block copy-out path.
        let mut root_plan = Vec::with_capacity(fused.roots.len());
        let mut first_for_reg: HashMap<u32, u32> = HashMap::new();
        for (i, &slot) in fused.roots.iter().enumerate() {
            let reg = reg_of[slot as usize];
            if let Some(&of) = first_for_reg.get(&reg) {
                root_plan.push(RootPlan::Alias(of));
                continue;
            }
            first_for_reg.insert(reg, i as u32);
            root_plan.push(match fused.ops[slot as usize] {
                Op::Const(c) => RootPlan::Const(c),
                Op::Sym(s) => RootPlan::Sym(s),
                _ => RootPlan::Block(reg),
            });
        }

        CompiledProgram {
            id: fused.id,
            steps,
            num_regs: next_reg as usize,
            const_splats,
            sym_regs,
            root_regs,
            root_plan,
            finite_out: resolve_finite_out(tier),
            table: fused.table,
            labels: fused.labels,
            superinstrs,
            tier,
        }
    }

    /// Process-unique identity of this compile (fresh per
    /// [`CompiledProgram::compile`] call).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The interned symbol table (names in input-slot order).
    pub fn symbols(&self) -> &SymbolTable {
        &self.table
    }

    /// Number of lowered steps (a proxy for evaluation cost; n-ary
    /// folds count one step per binary/accumulate stage).
    pub fn num_steps(&self) -> usize {
        self.steps.len()
    }

    /// Number of register blocks a workspace materializes.
    pub fn num_regs(&self) -> usize {
        self.num_regs
    }

    /// Number of roots.
    pub fn num_roots(&self) -> usize {
        self.root_regs.len()
    }

    /// Root labels, in root-index order.
    pub fn root_labels(&self) -> &[String] {
        &self.labels
    }

    /// Root index of the root labeled `name`.
    pub fn root_index(&self, name: &str) -> Option<usize> {
        self.labels.iter().position(|l| l == name)
    }

    /// Superinstructions the peephole pass fused into this program.
    pub fn superinstrs(&self) -> usize {
        self.superinstrs
    }

    /// Name of the instruction-set tier the kernels resolved to
    /// (`"scalar"`, `"avx2"` or `"avx512"`).
    pub fn tier_name(&self) -> &'static str {
        match self.tier {
            Tier::Scalar => "scalar",
            #[cfg(target_arch = "x86_64")]
            Tier::Avx2 => "avx2",
            #[cfg(target_arch = "x86_64")]
            Tier::Avx512 => "avx512",
        }
    }

    /// Evaluates every root over a batch, writing one output column per
    /// root into `ws` (read them back with [`CompiledWorkspace::output`]).
    ///
    /// Rows that evaluate non-finite become `f64::INFINITY` and bound
    /// columns are validated exactly as in [`Program::eval_batch`]; the
    /// results are bit-identical to interpreting the source program.
    ///
    /// # Errors
    ///
    /// [`SymbolicError::UnboundSymbol`] if a program symbol is missing
    /// from `bindings`; [`SymbolicError::BatchLengthMismatch`] if a
    /// bound column's length differs from the batch length.
    pub fn eval_batch(
        &self,
        bindings: &BatchBindings,
        ws: &mut CompiledWorkspace,
    ) -> Result<(), SymbolicError> {
        let n = bindings.len();
        let cols = self.table.resolve_batch(bindings)?;

        if ws.prepared != self.id {
            ws.regs.clear();
            ws.regs.resize(self.num_regs, [0.0; BLOCK]);
            for &(r, v) in &self.const_splats {
                ws.regs[r as usize] = [v; BLOCK];
            }
            if ws.outputs.len() < self.root_plan.len() {
                ws.outputs.resize_with(self.root_plan.len(), Vec::new);
            }
            ws.root_src = self
                .root_plan
                .iter()
                .enumerate()
                .map(|(i, p)| match *p {
                    RootPlan::Alias(of) => of,
                    _ => i as u32,
                })
                .collect();
            ws.prepared = self.id;
            // Forces the constant-root columns to refill below.
            ws.prepared_len = usize::MAX;
        }
        // Scalar-bound symbols broadcast once per evaluation; their
        // registers are never written by steps, so every block sees
        // the splat.
        for &(r, s) in &self.sym_regs {
            if let Column::Scalar(v) = cols[s as usize] {
                ws.regs[r as usize] = [*v; BLOCK];
            }
        }
        // Materialize the sequential root classes and size the
        // block-copied columns. Block columns already at length `n` are
        // reused as-is — the copy-out overwrites every live element, so
        // skipping the `clear` + `resize` pair avoids a full memset of
        // the output matrix per evaluation.
        for (i, plan) in self.root_plan.iter().enumerate() {
            let out = &mut ws.outputs[i];
            match *plan {
                RootPlan::Alias(_) => {}
                RootPlan::Const(c) => {
                    if ws.prepared_len != n {
                        out.clear();
                        out.resize(n, finite_or_inf(c));
                    }
                }
                RootPlan::Sym(s) => match cols[s as usize] {
                    Column::Scalar(v) => {
                        out.clear();
                        out.resize(n, finite_or_inf(*v));
                    }
                    Column::Values(v) => {
                        out.clear();
                        out.extend(v.iter().map(|&x| finite_or_inf(x)));
                    }
                },
                RootPlan::Block(_) => {
                    if out.len() != n {
                        out.clear();
                        out.resize(n, 0.0);
                    }
                }
            }
        }
        ws.prepared_len = n;
        // Column-bound symbols re-load per block; hoist the filter so
        // the block loop touches only what it must. Same for the
        // block-copied roots.
        let col_loads: Vec<(u32, &[f64])> = self
            .sym_regs
            .iter()
            .filter_map(|&(r, s)| match cols[s as usize] {
                Column::Values(v) => Some((r, v.as_slice())),
                Column::Scalar(_) => None,
            })
            .collect();
        let block_roots: Vec<(u32, u32)> = self
            .root_plan
            .iter()
            .enumerate()
            .filter_map(|(i, p)| match *p {
                RootPlan::Block(reg) => Some((i as u32, reg)),
                _ => None,
            })
            .collect();

        let mut start = 0usize;
        while start < n {
            let len = (n - start).min(BLOCK);
            for &(r, v) in &col_loads {
                ws.regs[r as usize][..len].copy_from_slice(&v[start..start + len]);
            }
            let regs = ws.regs.as_mut_ptr();
            for step in &self.steps {
                // SAFETY: `resolve` paired every kernel with `tier`,
                // which `detect_tier` confirmed on this CPU, so the
                // kernel's target features are available. The lowerer
                // keeps every step index `< num_regs` (the workspace
                // holds exactly `num_regs` blocks while `prepared ==
                // id`) and never allocates a step's destination from a
                // register that is still a live source, so the
                // `&mut`/`&` block references inside the kernel are
                // disjoint.
                unsafe { (step.kernel)(regs, step) }
            }
            for &(i, rr) in &block_roots {
                let src = &ws.regs[rr as usize];
                let out = &mut ws.outputs[i as usize][start..start + len];
                // SAFETY: `finite_out` was resolved against the tier
                // `detect_tier` confirmed on this CPU.
                unsafe { (self.finite_out)(src, out) }
            }
            start += len;
        }
        Ok(())
    }
}

/// The interpreter's root materialization rule: non-finite rows become
/// `+∞` (an infeasible sentinel the tuner's budget checks rely on).
#[inline(always)]
fn finite_or_inf(v: f64) -> f64 {
    if v.is_finite() {
        v
    } else {
        f64::INFINITY
    }
}

/// Reusable evaluation scratch for a [`CompiledProgram`]: the block
/// register file plus per-root output columns. Create one per
/// evaluating thread; after the first call with a given program,
/// evaluation allocates nothing.
#[derive(Debug, Default)]
pub struct CompiledWorkspace {
    regs: Vec<Block>,
    outputs: Vec<Vec<f64>>,
    /// Canonical column index per root: aliased roots (duplicate root
    /// slots) resolve reads to the first root sharing their slot.
    root_src: Vec<u32>,
    /// Id of the program this workspace was last prepared for (0 =
    /// none; program ids start at 1).
    prepared: u64,
    /// Batch length of the most recent evaluation (constant-root
    /// columns refill only when this changes).
    prepared_len: usize,
}

impl CompiledWorkspace {
    /// Creates an empty workspace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Output column of root `i` from the most recent
    /// [`CompiledProgram::eval_batch`] call.
    ///
    /// # Panics
    ///
    /// Panics if no evaluation has populated root `i` yet.
    pub fn output(&self, i: usize) -> &[f64] {
        &self.outputs[self.root_src[i] as usize]
    }

    /// An owned copy of root `i`'s output column. Roots whose column is
    /// shared (duplicate root slots) clone; sole owners move their
    /// allocation out (the workspace reallocates it on next use).
    pub fn take_output(&mut self, i: usize) -> Vec<f64> {
        let src = self.root_src[i] as usize;
        let shared = self
            .root_src
            .iter()
            .enumerate()
            .any(|(j, &s)| j != i && s as usize == src);
        if src == i && !shared {
            std::mem::take(&mut self.outputs[i])
        } else {
            self.outputs[src].clone()
        }
    }
}

/// Lowers one SSA op into raw steps. N-ary folds become a binary first
/// step plus accumulate steps, preserving the interpreter's
/// left-to-right fold order; single-operand folds degenerate to `copy`.
fn emit_op(raw: &mut Vec<RawStep>, fused: &Program, reg_of: &[u32], op: Op, dst: u32) {
    let r = |s: u32| reg_of[s as usize];
    let step = |k: KernelId, a: u32, b: u32, c: u32, d: u32| RawStep { k, dst, a, b, c, d };
    let fold = |raw: &mut Vec<RawStep>, start: u32, len: u32, bin: KernelId, acc: KernelId| {
        let args = &fused.operands[start as usize..(start + len) as usize];
        if args.len() == 1 {
            raw.push(step(KernelId::copy, r(args[0]), 0, 0, 0));
            return;
        }
        raw.push(step(bin, r(args[0]), r(args[1]), 0, 0));
        for &s in &args[2..] {
            raw.push(step(acc, r(s), 0, 0, 0));
        }
    };
    match op {
        Op::Const(_) | Op::Sym(_) => unreachable!("consts and symbols are pinned, not lowered"),
        Op::Add { start, len } => fold(raw, start, len, KernelId::add2, KernelId::acc_add),
        Op::Mul { start, len } => fold(raw, start, len, KernelId::mul2, KernelId::acc_mul),
        Op::Min { start, len } => fold(raw, start, len, KernelId::min2, KernelId::acc_min),
        Op::Max { start, len } => fold(raw, start, len, KernelId::max2, KernelId::acc_max),
        Op::Div(a, b) => raw.push(step(KernelId::div, r(a), r(b), 0, 0)),
        Op::Floor(a) => raw.push(step(KernelId::floor, r(a), 0, 0, 0)),
        Op::Ceil(a) => raw.push(step(KernelId::ceil, r(a), 0, 0, 0)),
        Op::Cmp(cmp, a, b) => {
            let k = match cmp {
                CmpOp::Le => KernelId::cmp_le,
                CmpOp::Lt => KernelId::cmp_lt,
                CmpOp::Ge => KernelId::cmp_ge,
                CmpOp::Gt => KernelId::cmp_gt,
                CmpOp::Eq => KernelId::cmp_eq,
            };
            raw.push(step(k, r(a), r(b), 0, 0));
        }
        Op::Select(c, t, e) => raw.push(step(KernelId::select, r(c), r(t), r(e), 0)),
        Op::MulAdd(a, b, c) => raw.push(step(KernelId::muladd, r(a), r(b), r(c), 0)),
        Op::SelectCmp(cmp, a, b, t, e) => {
            let k = match cmp {
                CmpOp::Le => KernelId::selcmp_le,
                CmpOp::Lt => KernelId::selcmp_lt,
                CmpOp::Ge => KernelId::selcmp_ge,
                CmpOp::Gt => KernelId::selcmp_gt,
                CmpOp::Eq => KernelId::selcmp_eq,
            };
            raw.push(step(k, r(a), r(b), r(t), r(e)));
        }
        Op::DivFloor(a, b) => raw.push(step(KernelId::divfloor, r(a), r(b), 0, 0)),
        Op::DivCeil(a, b) => raw.push(step(KernelId::divceil, r(a), r(b), 0, 0)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::EvalWorkspace;
    use crate::{CmpOp, Context, Expr};
    use proptest::prelude::*;

    /// Bitwise comparison of all roots: `-0.0` vs `0.0` must not pass.
    fn assert_outputs_bit_identical(p: &Program, c: &CompiledProgram, batch: &BatchBindings) {
        let mut iws = EvalWorkspace::new();
        p.eval_batch(batch, &mut iws).unwrap();
        let mut cws = CompiledWorkspace::new();
        c.eval_batch(batch, &mut cws).unwrap();
        for root in 0..p.num_roots() {
            let want: Vec<u64> = iws.output(root).iter().map(|v| v.to_bits()).collect();
            let got: Vec<u64> = cws.output(root).iter().map(|v| v.to_bits()).collect();
            assert_eq!(got, want, "root {root} ({})", p.root_labels()[root]);
        }
    }

    fn stage_like_program(ctx: &Context) -> Program {
        let x = ctx.symbol("x");
        let y = ctx.symbol("y");
        let z = ctx.symbol("z");
        let chain = x * y + y * z + x + 2.5; // MulAdd triggers
        let guard = ctx.cmp(CmpOp::Ge, x + y, ctx.constant(1.0));
        let sel = ctx.select(guard, chain, z * 4.0); // SelectCmp trigger
        let steps = (x / z).ceil() * (y / ctx.constant(3.0)).floor(); // Div{Ceil,Floor}
        let folds = ctx.min_of(&[x, y, z, chain]) + ctx.max_of(&[x * x, y, z + 1.0]);
        ctx.compile_program(&[
            ("sel", sel),
            ("steps", steps),
            ("folds", folds),
            ("chain", chain),
        ])
    }

    #[test]
    fn compiled_matches_interpreted_across_batch_sizes() {
        let ctx = Context::new();
        let program = stage_like_program(&ctx);
        let compiled = CompiledProgram::compile(&program);
        assert!(
            compiled.superinstrs() > 0,
            "expected superinstruction fusion"
        );

        for n in [1usize, 5, BLOCK, BLOCK + 1, 1000] {
            let mut batch = BatchBindings::new(n);
            let specials = [
                -0.0,
                f64::INFINITY,
                f64::NEG_INFINITY,
                f64::NAN,
                0.0,
                -3.75,
                1e18,
            ];
            batch.set_values("x", (0..n).map(|i| i as f64 - 2.0).collect());
            batch.set_values("y", (0..n).map(|i| specials[i % specials.len()]).collect());
            batch.set_scalar("z", 3.0);
            assert_outputs_bit_identical(&program, &compiled, &batch);
        }
    }

    #[test]
    fn uniform_and_empty_batches_match() {
        let ctx = Context::new();
        let program = stage_like_program(&ctx);
        let compiled = CompiledProgram::compile(&program);

        // All-scalar bindings (the interpreter's broadcast fast path).
        let mut uniform = BatchBindings::new(300);
        uniform.set_scalar("x", 2.0);
        uniform.set_scalar("y", -0.0);
        uniform.set_scalar("z", 7.0);
        assert_outputs_bit_identical(&program, &compiled, &uniform);

        let mut empty = BatchBindings::new(0);
        empty.set_scalar("x", 1.0);
        empty.set_scalar("y", 1.0);
        empty.set_scalar("z", 1.0);
        assert_outputs_bit_identical(&program, &compiled, &empty);
    }

    #[test]
    fn workspace_is_reused_across_programs_and_sizes() {
        let ctx = Context::new();
        let x = ctx.symbol("x");
        let p1 = ctx.compile_program(&[("a", x * 2.0 + 1.0)]);
        let p2 = ctx.compile_program(&[("b", (x / 3.0).floor()), ("c", x.max(ctx.constant(0.0)))]);
        let (c1, c2) = (CompiledProgram::compile(&p1), CompiledProgram::compile(&p2));

        let mut ws = CompiledWorkspace::new();
        for n in [10usize, 500, 3] {
            let mut batch = BatchBindings::new(n);
            batch.set_values("x", (0..n).map(|i| i as f64 * 1.5 - 4.0).collect());
            for (p, c) in [(&p1, &c1), (&p2, &c2)] {
                let mut iws = EvalWorkspace::new();
                p.eval_batch(&batch, &mut iws).unwrap();
                c.eval_batch(&batch, &mut ws).unwrap();
                for root in 0..p.num_roots() {
                    assert_eq!(ws.output(root), iws.output(root));
                }
            }
        }
    }

    #[test]
    fn binding_errors_match_the_interpreter() {
        let ctx = Context::new();
        let x = ctx.symbol("x");
        let y = ctx.symbol("y");
        let program = ctx.compile_program(&[("r", x + y)]);
        let compiled = CompiledProgram::compile(&program);
        let mut ws = CompiledWorkspace::new();

        let mut missing = BatchBindings::new(2);
        missing.set_values("x", vec![1.0, 2.0]);
        assert!(matches!(
            compiled.eval_batch(&missing, &mut ws),
            Err(SymbolicError::UnboundSymbol(name)) if name == "y"
        ));

        let mut short = BatchBindings::new(3);
        short.set_values("x", vec![1.0, 2.0]);
        short.set_scalar("y", 0.0);
        assert!(matches!(
            compiled.eval_batch(&short, &mut ws),
            Err(SymbolicError::BatchLengthMismatch {
                expected: 3,
                got: 2
            })
        ));
    }

    #[test]
    fn compiled_program_is_send_sync_and_introspectable() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CompiledProgram>();
        assert_send_sync::<CompiledWorkspace>();

        let ctx = Context::new();
        let x = ctx.symbol("x");
        let program = ctx.compile_program(&[("r", x * 2.0 + 1.0)]);
        let compiled = CompiledProgram::compile(&program);
        assert_eq!(compiled.num_roots(), 1);
        assert_eq!(compiled.root_index("r"), Some(0));
        assert_eq!(compiled.root_labels(), program.root_labels());
        assert_eq!(compiled.symbols().names(), program.symbols().names());
        assert!(compiled.num_steps() >= 1);
        assert!(compiled.num_regs() >= 1);
        assert!(["scalar", "avx2", "avx512"].contains(&compiled.tier_name()));
        assert_ne!(compiled.id(), 0);
    }

    /// One random DAG-construction move over a growing expression pool.
    #[derive(Debug, Clone, Copy)]
    enum Move {
        Add(u8, u8),
        Mul(u8, u8),
        MulAddChain(u8, u8, u8),
        Min(u8, u8),
        Max(u8, u8),
        Div(u8, u8),
        FloorDiv(u8, u8),
        CeilDiv(u8, u8),
        Floor(u8),
        Ceil(u8),
        Select(u8, u8, u8, u8, u8),
    }

    fn move_strategy() -> impl Strategy<Value = Move> {
        let i = || 0u8..=255u8;
        prop_oneof![
            (i(), i()).prop_map(|(a, b)| Move::Add(a, b)),
            (i(), i()).prop_map(|(a, b)| Move::Mul(a, b)),
            (i(), i(), i()).prop_map(|(a, b, c)| Move::MulAddChain(a, b, c)),
            (i(), i()).prop_map(|(a, b)| Move::Min(a, b)),
            (i(), i()).prop_map(|(a, b)| Move::Max(a, b)),
            (i(), i()).prop_map(|(a, b)| Move::Div(a, b)),
            (i(), i()).prop_map(|(a, b)| Move::FloorDiv(a, b)),
            (i(), i()).prop_map(|(a, b)| Move::CeilDiv(a, b)),
            i().prop_map(Move::Floor),
            i().prop_map(Move::Ceil),
            (i(), i(), i(), i(), i()).prop_map(|(o, a, b, t, e)| Move::Select(o, a, b, t, e)),
        ]
    }

    /// Row values including every special class the exactness argument
    /// covers: ±0.0, ±∞ and NaN.
    fn row_strategy() -> impl Strategy<Value = f64> {
        // The vendored proptest's `prop_oneof!` draws arms uniformly, so
        // the finite range repeats to keep special values a minority.
        prop_oneof![
            -100.0..100.0f64,
            -100.0..100.0f64,
            -100.0..100.0f64,
            -100.0..100.0f64,
            Just(f64::INFINITY),
            Just(f64::NEG_INFINITY),
            Just(f64::NAN),
            Just(-0.0f64),
            Just(0.0f64),
        ]
    }

    fn apply_moves<'c>(ctx: &'c Context, moves: &[Move]) -> Vec<Expr<'c>> {
        let mut pool = vec![
            ctx.symbol("x"),
            ctx.symbol("y"),
            ctx.symbol("z"),
            ctx.constant(2.0),
            ctx.constant(-3.5),
            ctx.constant(0.5),
        ];
        let cmp_ops = [CmpOp::Le, CmpOp::Lt, CmpOp::Ge, CmpOp::Gt, CmpOp::Eq];
        for &mv in moves {
            let p = |i: u8| pool[i as usize % pool.len()];
            // `Context::div` rejects constant-zero denominators at
            // construction time; fall back to a symbol (which may still
            // be zero per row — that path stays covered).
            let denom = |i: u8| {
                let d = p(i);
                if d.as_const() == Some(0.0) {
                    pool[0]
                } else {
                    d
                }
            };
            let e = match mv {
                Move::Add(a, b) => p(a) + p(b),
                Move::Mul(a, b) => p(a) * p(b),
                Move::MulAddChain(a, b, c) => p(a) * p(b) + p(c),
                Move::Min(a, b) => p(a).min(p(b)),
                Move::Max(a, b) => p(a).max(p(b)),
                Move::Div(a, b) => p(a) / denom(b),
                Move::FloorDiv(a, b) => (p(a) / denom(b)).floor(),
                Move::CeilDiv(a, b) => (p(a) / denom(b)).ceil(),
                Move::Floor(a) => p(a).floor(),
                Move::Ceil(a) => p(a).ceil(),
                Move::Select(o, a, b, t, e) => {
                    let cond = ctx.cmp(cmp_ops[o as usize % cmp_ops.len()], p(a), p(b));
                    ctx.select(cond, p(t), p(e))
                }
            };
            pool.push(e);
        }
        pool
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn compiled_is_bit_identical_to_interpreted(
            moves in prop::collection::vec(move_strategy(), 1..40),
            xs in prop::collection::vec(row_strategy(), 131),
            ys in prop::collection::vec(row_strategy(), 131),
            zs in prop::collection::vec(row_strategy(), 131),
            n in 1..=131usize,
            z_scalar in 0u8..2,
        ) {
            let ctx = Context::new();
            let pool = apply_moves(&ctx, &moves);
            let tail: Vec<(String, Expr)> = pool
                .iter()
                .rev()
                .take(4)
                .enumerate()
                .map(|(i, &e)| (format!("r{i}"), e))
                .collect();
            let roots: Vec<(&str, Expr)> =
                tail.iter().map(|(name, e)| (name.as_str(), *e)).collect();
            let program = ctx.compile_program(&roots);
            let compiled = CompiledProgram::compile(&program);

            let mut batch = BatchBindings::new(n);
            batch.set_values("x", xs[..n].to_vec());
            batch.set_values("y", ys[..n].to_vec());
            if z_scalar == 1 {
                batch.set_scalar("z", zs[0]);
            } else {
                batch.set_values("z", zs[..n].to_vec());
            }
            assert_outputs_bit_identical(&program, &compiled, &batch);
        }
    }
}
