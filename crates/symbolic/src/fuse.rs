//! Peephole superinstruction fusion over an SSA [`Program`].
//!
//! The compiled evaluation backend (see [`crate::compiled`]) executes a
//! flat step table with one indirect call per instruction per row
//! block, so every instruction it can *remove* saves a dispatch and a
//! full block of intermediate traffic. This pass rewrites a program —
//! typically a specialized residual — by fusing three IEEE-exact
//! patterns into the superinstruction opcodes of [`crate::Instr`]:
//!
//! * a binary `Mul` whose only user is an `Add` fold folds into the
//!   chain as `MulAdd(a, b, acc)`;
//! * a `Cmp` whose only user is a `Select` *condition* becomes a
//!   guarded select `SelectCmp(op, a, b, t, f)`;
//! * a `Div` whose only user is a `Floor`/`Ceil` becomes
//!   `DivFloor`/`DivCeil`.
//!
//! # Exactness
//!
//! Fused execution is bit-identical to the unfused program for every
//! row value, finite or not:
//!
//! * `MulAdd(a, b, c)` evaluates `(a * b) + c` with **two** roundings —
//!   it is never lowered to a hardware FMA — so it is the exact
//!   product-then-sum the separate instructions computed. An `Add`
//!   fold consumes its fusable `Mul` operands left-to-right in the
//!   original fold order; when the running sum is added to a product,
//!   the operands of the IEEE addition are swapped (`(a·b) + acc`
//!   instead of `acc + (a·b)`), which is exact: IEEE-754 addition is
//!   commutative for all values, including signed zeros (`+0 + -0`
//!   is `+0` in either order under round-to-nearest), and NaN payloads
//!   are unobservable downstream (roots map non-finite to `+∞`,
//!   comparisons are payload-insensitive).
//! * `SelectCmp` is exact because `Cmp` only ever produces `1.0`/`0.0`
//!   and `Select` tests `!= 0.0` — testing the comparison directly is
//!   the same branch decision.
//! * `DivFloor`/`DivCeil` evaluate `(a / b).floor()`/`.ceil()` — the
//!   identical operation pair, merely dispatched once.
//!
//! An inner instruction is only fused when it has exactly one use and
//! is not itself a root (a root's column must still materialize).

use crate::program::{allocate_registers, next_program_id, Op, Program};

/// One term of an `Add`-chain rewrite: an already-emitted slot, or a
/// consumed binary `Mul` waiting to fuse into a `MulAdd`.
#[derive(Clone, Copy)]
enum Term {
    Slot(u32),
    Mul(u32, u32),
}

/// The output stream under construction.
#[derive(Default)]
struct Out {
    ops: Vec<Op>,
    operands: Vec<u32>,
    superinstrs: usize,
}

impl Out {
    fn push(&mut self, op: Op) -> u32 {
        let slot = self.ops.len() as u32;
        self.ops.push(op);
        slot
    }

    fn push_nary(&mut self, kind: &Op, args: &[u32]) -> u32 {
        let start = self.operands.len() as u32;
        self.operands.extend_from_slice(args);
        let len = args.len() as u32;
        let op = match kind {
            Op::Add { .. } => Op::Add { start, len },
            Op::Mul { .. } => Op::Mul { start, len },
            Op::Min { .. } => Op::Min { start, len },
            Op::Max { .. } => Op::Max { start, len },
            _ => unreachable!("push_nary is only called for fold opcodes"),
        };
        self.push(op)
    }

    /// Adds `term` into the running chain value, fusing consumed
    /// multiplies into `MulAdd` steps.
    fn combine(&mut self, acc: Term, term: Term) -> Term {
        let slot = match (acc, term) {
            (Term::Slot(x), Term::Slot(y)) => {
                self.push_nary(&Op::Add { start: 0, len: 0 }, &[x, y])
            }
            // `acc + (a·b)` fuses as `MulAdd(a, b, acc)` — IEEE `+` is
            // commutative (module docs), so the swap is exact.
            (Term::Slot(x), Term::Mul(a, b)) | (Term::Mul(a, b), Term::Slot(x)) => {
                self.superinstrs += 1;
                self.push(Op::MulAdd(a, b, x))
            }
            (Term::Mul(a, b), Term::Mul(c, d)) => {
                let m = self.push_nary(&Op::Mul { start: 0, len: 0 }, &[a, b]);
                self.superinstrs += 1;
                self.push(Op::MulAdd(c, d, m))
            }
        };
        Term::Slot(slot)
    }

    /// Materializes a chain value into a real slot (a trailing consumed
    /// `Mul` with nothing to fuse into re-emits as a plain multiply).
    fn resolve(&mut self, term: Term) -> u32 {
        match term {
            Term::Slot(s) => s,
            Term::Mul(a, b) => self.push_nary(&Op::Mul { start: 0, len: 0 }, &[a, b]),
        }
    }
}

/// Fuses superinstruction patterns in `program`, returning the rewritten
/// program and the number of superinstructions emitted.
///
/// The result evaluates bit-identically to the input for every binding
/// (see the [module docs](self) for the exactness argument). Roots,
/// labels and the symbol table are preserved; registers are
/// re-allocated over the fused stream. When nothing fuses the program
/// is still rebuilt (with a fresh id), which keeps the pass a pure
/// function of its input.
pub fn fuse_superinstructions(program: &Program) -> (Program, usize) {
    let n = program.ops.len();
    let arena = |start: u32, len: u32| &program.operands[start as usize..(start + len) as usize];

    // Operand-occurrence counts: a slot read twice by one instruction
    // counts twice, so `uses == 1` really means a unique read site.
    let mut uses = vec![0u32; n];
    for slot in 0..n {
        program
            .instr(slot)
            .for_each_operand(|s| uses[s as usize] += 1);
    }
    let mut is_root = vec![false; n];
    for &r in &program.roots {
        is_root[r as usize] = true;
    }
    let fusable = |s: u32| uses[s as usize] == 1 && !is_root[s as usize];

    // Mark the inner instructions each pattern consumes. Single-use
    // guarantees the marking user is the *only* user, so checking the
    // operand position (e.g. `Select` condition vs. branch) suffices.
    let mut consumed = vec![false; n];
    for op in &program.ops {
        match *op {
            Op::Add { start, len } => {
                for &s in arena(start, len) {
                    if fusable(s) && matches!(program.ops[s as usize], Op::Mul { len: 2, .. }) {
                        consumed[s as usize] = true;
                    }
                }
            }
            Op::Select(c, _, _) if fusable(c) && matches!(program.ops[c as usize], Op::Cmp(..)) => {
                consumed[c as usize] = true;
            }
            Op::Floor(a) | Op::Ceil(a)
                if fusable(a) && matches!(program.ops[a as usize], Op::Div(..)) =>
            {
                consumed[a as usize] = true;
            }
            _ => {}
        }
    }

    // Forward re-emission. Consumed slots are skipped; their unique
    // user inlines them, so their remap entry is never read.
    let mut out = Out::default();
    let mut remap = vec![u32::MAX; n];
    for (slot, op) in program.ops.iter().enumerate() {
        if consumed[slot] {
            continue;
        }
        let r = |s: u32| remap[s as usize];
        let new_slot = match *op {
            Op::Const(c) => out.push(Op::Const(c)),
            Op::Sym(s) => out.push(Op::Sym(s)),
            Op::Add { start, len } => {
                let args = arena(start, len);
                if args.iter().any(|&s| consumed[s as usize]) {
                    // Fold the chain in original operand order, fusing
                    // consumed multiplies as they are reached.
                    let mut acc: Option<Term> = None;
                    for &s in args {
                        let term = if consumed[s as usize] {
                            let Op::Mul { start: ms, len: 2 } = program.ops[s as usize] else {
                                unreachable!("only binary multiplies are consumed by Add");
                            };
                            let margs = arena(ms, 2);
                            Term::Mul(r(margs[0]), r(margs[1]))
                        } else {
                            Term::Slot(r(s))
                        };
                        acc = Some(match acc {
                            None => term,
                            Some(a) => out.combine(a, term),
                        });
                    }
                    let acc = acc.expect("folds have at least one operand");
                    out.resolve(acc)
                } else {
                    let args: Vec<u32> = args.iter().map(|&s| r(s)).collect();
                    out.push_nary(op, &args)
                }
            }
            Op::Mul { start, len } | Op::Min { start, len } | Op::Max { start, len } => {
                let args: Vec<u32> = arena(start, len).iter().map(|&s| r(s)).collect();
                out.push_nary(op, &args)
            }
            Op::Div(a, b) => out.push(Op::Div(r(a), r(b))),
            Op::Floor(a) => {
                if consumed[a as usize] {
                    let Op::Div(da, db) = program.ops[a as usize] else {
                        unreachable!("only divisions are consumed by Floor");
                    };
                    out.superinstrs += 1;
                    out.push(Op::DivFloor(r(da), r(db)))
                } else {
                    out.push(Op::Floor(r(a)))
                }
            }
            Op::Ceil(a) => {
                if consumed[a as usize] {
                    let Op::Div(da, db) = program.ops[a as usize] else {
                        unreachable!("only divisions are consumed by Ceil");
                    };
                    out.superinstrs += 1;
                    out.push(Op::DivCeil(r(da), r(db)))
                } else {
                    out.push(Op::Ceil(r(a)))
                }
            }
            Op::Cmp(cmp, a, b) => out.push(Op::Cmp(cmp, r(a), r(b))),
            Op::Select(c, a, b) => {
                if consumed[c as usize] {
                    let Op::Cmp(cmp, ca, cb) = program.ops[c as usize] else {
                        unreachable!("only comparisons are consumed by Select");
                    };
                    out.superinstrs += 1;
                    out.push(Op::SelectCmp(cmp, r(ca), r(cb), r(a), r(b)))
                } else {
                    out.push(Op::Select(r(c), r(a), r(b)))
                }
            }
            // Already-fused programs pass through unchanged.
            Op::MulAdd(a, b, c) => out.push(Op::MulAdd(r(a), r(b), r(c))),
            Op::SelectCmp(cmp, a, b, t, e) => out.push(Op::SelectCmp(cmp, r(a), r(b), r(t), r(e))),
            Op::DivFloor(a, b) => out.push(Op::DivFloor(r(a), r(b))),
            Op::DivCeil(a, b) => out.push(Op::DivCeil(r(a), r(b))),
        };
        remap[slot] = new_slot;
    }

    let roots: Vec<u32> = program.roots.iter().map(|&r| remap[r as usize]).collect();
    let Out {
        ops,
        operands,
        superinstrs,
    } = out;
    let (regs, num_regs) = allocate_registers(&ops, &operands, &roots);
    mist_telemetry::gauge_max("symbolic.program.superinstrs", superinstrs as f64);
    let fused = Program {
        id: next_program_id(),
        ops,
        operands,
        regs,
        num_regs,
        table: program.table.clone(),
        roots,
        labels: program.labels.clone(),
    };
    (fused, superinstrs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tape::BatchBindings;
    use crate::{CmpOp, Context, EvalWorkspace, Instr};

    fn outputs(p: &Program, batch: &BatchBindings) -> Vec<Vec<f64>> {
        let mut ws = EvalWorkspace::new();
        p.eval_batch(batch, &mut ws).unwrap();
        (0..p.num_roots()).map(|i| ws.output(i).to_vec()).collect()
    }

    #[test]
    fn mul_chains_fuse_into_muladds() {
        let ctx = Context::new();
        let x = ctx.symbol("x");
        let y = ctx.symbol("y");
        let z = ctx.symbol("z");
        // a·b + c·d + e: two fusable products in one fold.
        let e = x * y + y * z + x;
        let program = ctx.compile_program(&[("e", e)]);
        let (fused, count) = fuse_superinstructions(&program);
        assert!(count >= 1, "expected MulAdd fusion, got {count}");
        assert!(fused.instrs().any(|i| matches!(i, Instr::MulAdd(..))));
        assert!(fused.len() < program.len());

        let mut batch = BatchBindings::new(5);
        batch.set_values("x", vec![1.5, -0.0, f64::INFINITY, 2.0, f64::NAN]);
        batch.set_values("y", vec![2.0, 3.0, 0.0, -1.0, 1.0]);
        batch.set_values("z", vec![0.5, -2.0, 1.0, f64::NEG_INFINITY, 4.0]);
        assert_eq!(outputs(&fused, &batch), outputs(&program, &batch));
    }

    #[test]
    fn cmp_select_fuses_into_guarded_select() {
        let ctx = Context::new();
        let x = ctx.symbol("x");
        let y = ctx.symbol("y");
        let guard = ctx.cmp(CmpOp::Ge, x, y);
        let e = ctx.select(guard, x + 1.0, y * 2.0);
        let program = ctx.compile_program(&[("e", e)]);
        let (fused, count) = fuse_superinstructions(&program);
        assert_eq!(count, 1);
        assert!(fused
            .instrs()
            .any(|i| matches!(i, Instr::SelectCmp(CmpOp::Ge, ..))));
        assert!(!fused.instrs().any(|i| matches!(i, Instr::Select(..))));

        let mut batch = BatchBindings::new(4);
        batch.set_values("x", vec![1.0, -3.0, f64::NAN, 0.0]);
        batch.set_values("y", vec![1.0, 2.0, 1.0, -0.0]);
        assert_eq!(outputs(&fused, &batch), outputs(&program, &batch));
    }

    #[test]
    fn div_floor_and_ceil_fuse() {
        let ctx = Context::new();
        let x = ctx.symbol("x");
        let y = ctx.symbol("y");
        let program = ctx.compile_program(&[("f", (x / y).floor()), ("c", ((x + 1.0) / y).ceil())]);
        let (fused, count) = fuse_superinstructions(&program);
        assert_eq!(count, 2);
        assert!(fused.instrs().any(|i| matches!(i, Instr::DivFloor(..))));
        assert!(fused.instrs().any(|i| matches!(i, Instr::DivCeil(..))));

        let mut batch = BatchBindings::new(4);
        batch.set_values("x", vec![7.0, -7.0, 1e18, f64::NAN]);
        batch.set_values("y", vec![2.0, 3.0, 0.0, 2.0]);
        assert_eq!(outputs(&fused, &batch), outputs(&program, &batch));
    }

    #[test]
    fn multi_use_and_root_inner_ops_do_not_fuse() {
        let ctx = Context::new();
        let x = ctx.symbol("x");
        let y = ctx.symbol("y");
        let prod = x * y;
        // The product is a root *and* an Add operand: must stay.
        let program = ctx.compile_program(&[("sum", prod + x), ("prod", prod)]);
        let (fused, count) = fuse_superinstructions(&program);
        assert_eq!(count, 0);
        assert!(!fused.instrs().any(|i| matches!(i, Instr::MulAdd(..))));

        // A Cmp read by two Selects keeps both Selects unfused.
        let guard = ctx.cmp(CmpOp::Lt, x, y);
        let two = ctx.compile_program(&[
            ("a", ctx.select(guard, x, y)),
            ("b", ctx.select(guard, y, x)),
        ]);
        let (fused2, count2) = fuse_superinstructions(&two);
        assert_eq!(count2, 0);
        assert_eq!(
            fused2
                .instrs()
                .filter(|i| matches!(i, Instr::Select(..)))
                .count(),
            2
        );
    }

    #[test]
    fn fused_programs_keep_roots_labels_and_symbols() {
        let ctx = Context::new();
        let x = ctx.symbol("x");
        let y = ctx.symbol("y");
        let program = ctx.compile_program(&[("r0", x * y + 1.0), ("r1", (x / y).floor())]);
        let (fused, _) = fuse_superinstructions(&program);
        assert_eq!(fused.root_labels(), program.root_labels());
        assert_eq!(fused.symbols().names(), program.symbols().names());
        assert_ne!(fused.id(), program.id());

        let mut batch = BatchBindings::new(3);
        batch.set_values("x", vec![1.0, 2.0, 3.0]);
        batch.set_scalar("y", 2.0);
        assert_eq!(outputs(&fused, &batch), outputs(&program, &batch));
    }
}
