//! Error types for symbolic evaluation.

/// Errors produced when evaluating or compiling symbolic expressions.
#[derive(Debug, Clone, PartialEq)]
pub enum SymbolicError {
    /// A symbol appearing in the expression had no binding.
    UnboundSymbol(String),
    /// Evaluation produced a non-finite value (NaN or infinity).
    NonFinite { detail: String },
    /// A batched evaluation received columns of mismatched lengths.
    BatchLengthMismatch { expected: usize, got: usize },
}

impl std::fmt::Display for SymbolicError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SymbolicError::UnboundSymbol(name) => {
                write!(f, "unbound symbol `{name}` during evaluation")
            }
            SymbolicError::NonFinite { detail } => {
                write!(f, "evaluation produced a non-finite value: {detail}")
            }
            SymbolicError::BatchLengthMismatch { expected, got } => {
                write!(
                    f,
                    "batch column length mismatch: expected {expected}, got {got}"
                )
            }
        }
    }
}

impl std::error::Error for SymbolicError {}
