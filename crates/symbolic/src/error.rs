//! Error types for symbolic evaluation.

/// Errors produced when evaluating or compiling symbolic expressions.
#[derive(Debug, Clone, PartialEq)]
pub enum SymbolicError {
    /// A symbol appearing in the expression had no binding.
    UnboundSymbol(String),
    /// A scalar binding named a symbol the program does not read.
    UnknownBinding(String),
    /// The same symbol was bound twice with different values.
    ConflictingBinding {
        /// The symbol bound more than once.
        name: String,
        /// Value of the first binding of `name`.
        first: f64,
        /// Conflicting value of a later binding of `name`.
        second: f64,
    },
    /// Evaluation produced a non-finite value (NaN or infinity).
    NonFinite {
        /// Which root or tape produced the non-finite value.
        detail: String,
    },
    /// A batched evaluation received columns of mismatched lengths.
    BatchLengthMismatch {
        /// The batch length every column must match.
        expected: usize,
        /// The offending column's length.
        got: usize,
    },
}

impl std::fmt::Display for SymbolicError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SymbolicError::UnboundSymbol(name) => {
                write!(f, "unbound symbol `{name}` during evaluation")
            }
            SymbolicError::UnknownBinding(name) => {
                write!(f, "binding `{name}` matches no symbol in the program")
            }
            SymbolicError::ConflictingBinding {
                name,
                first,
                second,
            } => {
                write!(
                    f,
                    "symbol `{name}` bound twice with conflicting values \
                     ({first} then {second})"
                )
            }
            SymbolicError::NonFinite { detail } => {
                write!(f, "evaluation produced a non-finite value: {detail}")
            }
            SymbolicError::BatchLengthMismatch { expected, got } => {
                write!(
                    f,
                    "batch column length mismatch: expected {expected}, got {got}"
                )
            }
        }
    }
}

impl std::error::Error for SymbolicError {}
