//! Expression node definitions.
//!
//! Nodes are stored in a [`crate::Context`] arena and referenced by
//! [`ExprId`]. N-ary operators (`Add`, `Mul`, `Min`, `Max`) keep their
//! operands sorted so that hash-consing canonicalizes `a + b` and `b + a`
//! to the same node.

use serde::{Deserialize, Serialize};

/// Index of an interned symbol inside a [`crate::Context`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct SymbolId(pub u32);

/// Index of an interned expression node inside a [`crate::Context`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ExprId(pub u32);

/// Comparison operator used by [`Node::Cmp`].
///
/// A comparison evaluates to `1.0` when it holds and `0.0` otherwise, so it
/// can feed a [`Node::Select`] guard.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CmpOp {
    /// `lhs <= rhs`.
    Le,
    /// `lhs < rhs`.
    Lt,
    /// `lhs >= rhs`.
    Ge,
    /// `lhs > rhs`.
    Gt,
    /// `lhs == rhs` (exact `f64` equality; operands are integral in practice).
    Eq,
}

impl CmpOp {
    /// Applies the comparison to concrete values, returning `1.0` or `0.0`.
    #[inline]
    pub fn apply(self, lhs: f64, rhs: f64) -> f64 {
        let holds = match self {
            CmpOp::Le => lhs <= rhs,
            CmpOp::Lt => lhs < rhs,
            CmpOp::Ge => lhs >= rhs,
            CmpOp::Gt => lhs > rhs,
            CmpOp::Eq => lhs == rhs,
        };
        if holds {
            1.0
        } else {
            0.0
        }
    }
}

/// Bit pattern wrapper making `f64` constants hashable.
///
/// `NaN` constants are rejected at construction time by the context, so two
/// equal constants always share a bit pattern (`-0.0` is normalized to
/// `0.0`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ConstBits(pub u64);

impl ConstBits {
    /// Encodes a finite `f64` (normalizing `-0.0`).
    #[inline]
    pub fn from_f64(v: f64) -> Self {
        let v = if v == 0.0 { 0.0 } else { v };
        ConstBits(v.to_bits())
    }

    /// Decodes back to `f64`.
    #[inline]
    pub fn to_f64(self) -> f64 {
        f64::from_bits(self.0)
    }
}

/// An expression node.
///
/// The variant set is deliberately small: everything Mist's analyzer emits
/// (runtime, bytes, peak memory, feasibility guards) is expressible with
/// arithmetic, `min`/`max`, floor/ceil and guarded selection.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Node {
    /// A finite constant.
    Const(ConstBits),
    /// A free symbol (bound at evaluation time).
    Sym(SymbolId),
    /// N-ary sum (operands sorted, len >= 2).
    Add(Vec<ExprId>),
    /// N-ary product (operands sorted, len >= 2).
    Mul(Vec<ExprId>),
    /// `lhs / rhs`.
    Div(ExprId, ExprId),
    /// N-ary minimum (operands sorted, len >= 2).
    Min(Vec<ExprId>),
    /// N-ary maximum (operands sorted, len >= 2).
    Max(Vec<ExprId>),
    /// `floor(x)`.
    Floor(ExprId),
    /// `ceil(x)`.
    Ceil(ExprId),
    /// Comparison producing `0.0` / `1.0`.
    Cmp(CmpOp, ExprId, ExprId),
    /// `if cond != 0 { then } else { other }`.
    Select(ExprId, ExprId, ExprId),
}

impl Node {
    /// Returns the child expression ids of this node, in evaluation order.
    pub fn children(&self) -> Vec<ExprId> {
        match self {
            Node::Const(_) | Node::Sym(_) => Vec::new(),
            Node::Add(v) | Node::Mul(v) | Node::Min(v) | Node::Max(v) => v.clone(),
            Node::Div(a, b) | Node::Cmp(_, a, b) => vec![*a, *b],
            Node::Floor(a) | Node::Ceil(a) => vec![*a],
            Node::Select(c, a, b) => vec![*c, *a, *b],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cmp_op_semantics() {
        assert_eq!(CmpOp::Le.apply(1.0, 1.0), 1.0);
        assert_eq!(CmpOp::Lt.apply(1.0, 1.0), 0.0);
        assert_eq!(CmpOp::Ge.apply(2.0, 1.0), 1.0);
        assert_eq!(CmpOp::Gt.apply(1.0, 2.0), 0.0);
        assert_eq!(CmpOp::Eq.apply(3.0, 3.0), 1.0);
        assert_eq!(CmpOp::Eq.apply(3.0, 4.0), 0.0);
    }

    #[test]
    fn const_bits_normalizes_negative_zero() {
        assert_eq!(ConstBits::from_f64(-0.0), ConstBits::from_f64(0.0));
        assert_eq!(ConstBits::from_f64(1.5).to_f64(), 1.5);
    }

    #[test]
    fn children_cover_all_variants() {
        let a = ExprId(0);
        let b = ExprId(1);
        let c = ExprId(2);
        assert!(Node::Const(ConstBits::from_f64(1.0)).children().is_empty());
        assert!(Node::Sym(SymbolId(0)).children().is_empty());
        assert_eq!(Node::Add(vec![a, b]).children(), vec![a, b]);
        assert_eq!(Node::Div(a, b).children(), vec![a, b]);
        assert_eq!(Node::Floor(a).children(), vec![a]);
        assert_eq!(Node::Select(c, a, b).children(), vec![c, a, b]);
    }
}
