//! Compiled evaluation tapes with scalar and batched execution.
//!
//! A [`Tape`] linearizes an expression DAG into SSA form: every unique
//! sub-expression is computed exactly once into a slot, and later
//! instructions reference earlier slots. Tapes are plain data (`Send +
//! Sync`), so the tuner compiles once on the tracing thread and fans
//! evaluation out across worker threads.
//!
//! Batched evaluation is the core of Mist's "single symbolic pass, many
//! value substitutions" idea: symbols are bound to *columns* and each
//! instruction processes the whole column, amortizing interpretation
//! overhead across the batch.

use std::collections::HashMap;

use crate::error::SymbolicError;
use crate::node::{CmpOp, ExprId, Node, SymbolId};

/// A single SSA instruction. The output slot is the instruction's index.
#[derive(Debug, Clone)]
enum Instr {
    Const(f64),
    /// Reads input column `usize` (index into [`Tape::symbols`]).
    Sym(usize),
    Add(Vec<usize>),
    Mul(Vec<usize>),
    Min(Vec<usize>),
    Max(Vec<usize>),
    Div(usize, usize),
    Floor(usize),
    Ceil(usize),
    Cmp(CmpOp, usize, usize),
    Select(usize, usize, usize),
}

/// A compiled, immutable evaluation program for one expression.
#[derive(Debug, Clone)]
pub struct Tape {
    instrs: Vec<Instr>,
    /// Names of the symbols this tape reads, in input-slot order.
    symbols: Vec<String>,
}

impl Tape {
    /// Builds a tape from the arena (called by `Context::compile`).
    pub(crate) fn build(nodes: &[Node], symbol_names: &[String], root: ExprId) -> Tape {
        let mut slot_of: HashMap<ExprId, usize> = HashMap::new();
        let mut sym_slot: HashMap<SymbolId, usize> = HashMap::new();
        let mut symbols: Vec<String> = Vec::new();
        let mut instrs: Vec<Instr> = Vec::new();

        // Iterative post-order DFS over the DAG.
        enum Frame {
            Visit(ExprId),
            Emit(ExprId),
        }
        let mut stack = vec![Frame::Visit(root)];
        while let Some(frame) = stack.pop() {
            match frame {
                Frame::Visit(id) => {
                    if slot_of.contains_key(&id) {
                        continue;
                    }
                    stack.push(Frame::Emit(id));
                    for child in nodes[id.0 as usize].children() {
                        stack.push(Frame::Visit(child));
                    }
                }
                Frame::Emit(id) => {
                    if slot_of.contains_key(&id) {
                        continue;
                    }
                    let s = |eid: ExprId| slot_of[&eid];
                    let instr = match &nodes[id.0 as usize] {
                        Node::Const(c) => Instr::Const(c.to_f64()),
                        Node::Sym(sid) => {
                            let slot = *sym_slot.entry(*sid).or_insert_with(|| {
                                symbols.push(symbol_names[sid.0 as usize].clone());
                                symbols.len() - 1
                            });
                            Instr::Sym(slot)
                        }
                        Node::Add(v) => Instr::Add(v.iter().map(|e| s(*e)).collect()),
                        Node::Mul(v) => Instr::Mul(v.iter().map(|e| s(*e)).collect()),
                        Node::Min(v) => Instr::Min(v.iter().map(|e| s(*e)).collect()),
                        Node::Max(v) => Instr::Max(v.iter().map(|e| s(*e)).collect()),
                        Node::Div(a, b) => Instr::Div(s(*a), s(*b)),
                        Node::Floor(a) => Instr::Floor(s(*a)),
                        Node::Ceil(a) => Instr::Ceil(s(*a)),
                        Node::Cmp(op, a, b) => Instr::Cmp(*op, s(*a), s(*b)),
                        Node::Select(c, a, b) => Instr::Select(s(*c), s(*a), s(*b)),
                    };
                    slot_of.insert(id, instrs.len());
                    instrs.push(instr);
                }
            }
        }

        Tape { instrs, symbols }
    }

    /// Names of the free symbols read by this tape.
    pub fn symbols(&self) -> &[String] {
        &self.symbols
    }

    /// Number of SSA instructions (a proxy for evaluation cost).
    pub fn len(&self) -> usize {
        self.instrs.len()
    }

    /// True if the tape is a bare constant.
    pub fn is_empty(&self) -> bool {
        self.instrs.is_empty()
    }

    /// Evaluates the tape against scalar `(name, value)` bindings.
    ///
    /// # Errors
    ///
    /// See [`SymbolicError`].
    pub fn eval(&self, bindings: &[(&str, f64)]) -> Result<f64, SymbolicError> {
        let inputs = self.resolve_scalar_bindings(bindings)?;
        self.eval_slots(&inputs)
    }

    /// Evaluates with inputs already resolved to tape slot order.
    ///
    /// `inputs[i]` is the value of `self.symbols()[i]`. This is the fastest
    /// scalar entry point for hot loops that bind the same symbols
    /// repeatedly.
    pub fn eval_slots(&self, inputs: &[f64]) -> Result<f64, SymbolicError> {
        debug_assert_eq!(inputs.len(), self.symbols.len());
        let mut slots: Vec<f64> = Vec::with_capacity(self.instrs.len());
        for instr in &self.instrs {
            let v = match instr {
                Instr::Const(c) => *c,
                Instr::Sym(i) => inputs[*i],
                Instr::Add(args) => args.iter().map(|&a| slots[a]).sum(),
                Instr::Mul(args) => args.iter().map(|&a| slots[a]).product(),
                Instr::Min(args) => args.iter().map(|&a| slots[a]).fold(f64::INFINITY, f64::min),
                Instr::Max(args) => args
                    .iter()
                    .map(|&a| slots[a])
                    .fold(f64::NEG_INFINITY, f64::max),
                Instr::Div(a, b) => slots[*a] / slots[*b],
                Instr::Floor(a) => slots[*a].floor(),
                Instr::Ceil(a) => slots[*a].ceil(),
                Instr::Cmp(op, a, b) => op.apply(slots[*a], slots[*b]),
                Instr::Select(c, a, b) => {
                    if slots[*c] != 0.0 {
                        slots[*a]
                    } else {
                        slots[*b]
                    }
                }
            };
            slots.push(v);
        }
        let out = *slots.last().expect("tape has at least one instruction");
        if !out.is_finite() {
            return Err(SymbolicError::NonFinite {
                detail: "tape evaluation result".to_owned(),
            });
        }
        Ok(out)
    }

    fn resolve_scalar_bindings(&self, bindings: &[(&str, f64)]) -> Result<Vec<f64>, SymbolicError> {
        let mut inputs = vec![f64::NAN; self.symbols.len()];
        for (i, name) in self.symbols.iter().enumerate() {
            let mut found = false;
            for (bname, v) in bindings {
                if bname == name {
                    inputs[i] = *v;
                    found = true;
                    break;
                }
            }
            if !found {
                return Err(SymbolicError::UnboundSymbol(name.clone()));
            }
        }
        Ok(inputs)
    }

    /// Evaluates the tape over a whole batch of configurations at once.
    ///
    /// Returns one output per batch row. Rows whose evaluation is non-finite
    /// (e.g. a guard divided by zero) are returned as `f64::INFINITY` rather
    /// than failing the whole batch — the tuner treats them as infeasible.
    ///
    /// # Errors
    ///
    /// Returns [`SymbolicError::UnboundSymbol`] if a tape symbol is missing
    /// from `bindings`, or [`SymbolicError::BatchLengthMismatch`] if a
    /// column's length differs from the batch length.
    pub fn eval_batch(&self, bindings: &BatchBindings) -> Result<Vec<f64>, SymbolicError> {
        let n = bindings.len();
        // Resolve each tape symbol to its column.
        let mut columns: Vec<&Column> = Vec::with_capacity(self.symbols.len());
        for name in &self.symbols {
            let col = bindings
                .columns
                .get(name)
                .ok_or_else(|| SymbolicError::UnboundSymbol(name.clone()))?;
            if let Column::Values(v) = col {
                if v.len() != n {
                    return Err(SymbolicError::BatchLengthMismatch {
                        expected: n,
                        got: v.len(),
                    });
                }
            }
            columns.push(col);
        }

        let mut slots: Vec<Vec<f64>> = Vec::with_capacity(self.instrs.len());
        let mut buf = vec![0.0f64; n];
        for instr in &self.instrs {
            match instr {
                Instr::Const(c) => {
                    for x in buf.iter_mut() {
                        *x = *c;
                    }
                }
                Instr::Sym(i) => match columns[*i] {
                    Column::Scalar(v) => {
                        for x in buf.iter_mut() {
                            *x = *v;
                        }
                    }
                    Column::Values(vals) => buf.copy_from_slice(vals),
                },
                Instr::Add(args) => {
                    buf.copy_from_slice(&slots[args[0]]);
                    for &a in &args[1..] {
                        let col = &slots[a];
                        for (x, y) in buf.iter_mut().zip(col) {
                            *x += *y;
                        }
                    }
                }
                Instr::Mul(args) => {
                    buf.copy_from_slice(&slots[args[0]]);
                    for &a in &args[1..] {
                        let col = &slots[a];
                        for (x, y) in buf.iter_mut().zip(col) {
                            *x *= *y;
                        }
                    }
                }
                Instr::Min(args) => {
                    buf.copy_from_slice(&slots[args[0]]);
                    for &a in &args[1..] {
                        let col = &slots[a];
                        for (x, y) in buf.iter_mut().zip(col) {
                            *x = x.min(*y);
                        }
                    }
                }
                Instr::Max(args) => {
                    buf.copy_from_slice(&slots[args[0]]);
                    for &a in &args[1..] {
                        let col = &slots[a];
                        for (x, y) in buf.iter_mut().zip(col) {
                            *x = x.max(*y);
                        }
                    }
                }
                Instr::Div(a, b) => {
                    let (ca, cb) = (&slots[*a], &slots[*b]);
                    for ((x, p), q) in buf.iter_mut().zip(ca).zip(cb) {
                        *x = *p / *q;
                    }
                }
                Instr::Floor(a) => {
                    let ca = &slots[*a];
                    for (x, p) in buf.iter_mut().zip(ca) {
                        *x = p.floor();
                    }
                }
                Instr::Ceil(a) => {
                    let ca = &slots[*a];
                    for (x, p) in buf.iter_mut().zip(ca) {
                        *x = p.ceil();
                    }
                }
                Instr::Cmp(op, a, b) => {
                    let (ca, cb) = (&slots[*a], &slots[*b]);
                    for ((x, p), q) in buf.iter_mut().zip(ca).zip(cb) {
                        *x = op.apply(*p, *q);
                    }
                }
                Instr::Select(c, a, b) => {
                    let (cc, ca, cb) = (&slots[*c], &slots[*a], &slots[*b]);
                    for (i, x) in buf.iter_mut().enumerate() {
                        *x = if cc[i] != 0.0 { ca[i] } else { cb[i] };
                    }
                }
            }
            slots.push(buf.clone());
        }

        let mut out = slots.pop().expect("tape has at least one instruction");
        for v in out.iter_mut() {
            if !v.is_finite() {
                *v = f64::INFINITY;
            }
        }
        Ok(out)
    }
}

/// A bound column in a batched evaluation.
#[derive(Debug, Clone)]
pub enum Column {
    /// The symbol has the same value in every row (broadcast).
    Scalar(f64),
    /// One value per row.
    Values(Vec<f64>),
}

/// Symbol bindings for [`Tape::eval_batch`].
///
/// # Example
///
/// ```
/// use mist_symbolic::{BatchBindings, Context};
///
/// let ctx = Context::new();
/// let b = ctx.symbol("b");
/// let tp = ctx.symbol("tp");
/// let tape = ctx.compile(b * 100.0 / tp);
///
/// let mut batch = BatchBindings::new(3);
/// batch.set_values("b", vec![1.0, 2.0, 4.0]);
/// batch.set_scalar("tp", 2.0);
/// assert_eq!(tape.eval_batch(&batch).unwrap(), vec![50.0, 100.0, 200.0]);
/// ```
#[derive(Debug, Clone)]
pub struct BatchBindings {
    len: usize,
    columns: HashMap<String, Column>,
}

impl BatchBindings {
    /// Creates bindings for a batch of `len` rows.
    pub fn new(len: usize) -> Self {
        BatchBindings {
            len,
            columns: HashMap::new(),
        }
    }

    /// Batch length (number of rows).
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the batch has zero rows.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Binds a symbol to a per-row column of values.
    pub fn set_values(&mut self, name: &str, values: Vec<f64>) -> &mut Self {
        self.columns.insert(name.to_owned(), Column::Values(values));
        self
    }

    /// Binds a symbol to a broadcast scalar.
    pub fn set_scalar(&mut self, name: &str, value: f64) -> &mut Self {
        self.columns.insert(name.to_owned(), Column::Scalar(value));
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Context;

    #[test]
    fn scalar_and_batch_agree() {
        let ctx = Context::new();
        let x = ctx.symbol("x");
        let y = ctx.symbol("y");
        let e = (x * y + 3.0).max(x / y).min(ctx.constant(1e9));
        let tape = ctx.compile(e);

        let xs = [1.0, 2.5, 7.0, 0.0];
        let ys = [2.0, 0.5, 3.0, 1.0];
        let mut batch = BatchBindings::new(xs.len());
        batch.set_values("x", xs.to_vec());
        batch.set_values("y", ys.to_vec());
        let got = tape.eval_batch(&batch).unwrap();
        for i in 0..xs.len() {
            let want = tape.eval(&[("x", xs[i]), ("y", ys[i])]).unwrap();
            assert_eq!(got[i], want, "row {i}");
        }
    }

    #[test]
    fn batch_nonfinite_rows_become_infinity() {
        let ctx = Context::new();
        let x = ctx.symbol("x");
        let e = 1.0 / x;
        let tape = ctx.compile(e);
        let mut batch = BatchBindings::new(2);
        batch.set_values("x", vec![0.0, 2.0]);
        let got = tape.eval_batch(&batch).unwrap();
        assert_eq!(got[0], f64::INFINITY);
        assert_eq!(got[1], 0.5);
    }

    #[test]
    fn batch_length_mismatch_is_rejected() {
        let ctx = Context::new();
        let x = ctx.symbol("x");
        let tape = ctx.compile(x + 1.0);
        let mut batch = BatchBindings::new(3);
        batch.set_values("x", vec![1.0, 2.0]);
        assert!(matches!(
            tape.eval_batch(&batch),
            Err(SymbolicError::BatchLengthMismatch {
                expected: 3,
                got: 2
            })
        ));
    }

    #[test]
    fn missing_column_is_rejected() {
        let ctx = Context::new();
        let x = ctx.symbol("x");
        let tape = ctx.compile(x + 1.0);
        let batch = BatchBindings::new(1);
        assert!(matches!(
            tape.eval_batch(&batch),
            Err(SymbolicError::UnboundSymbol(_))
        ));
    }

    #[test]
    fn shared_subexpression_computed_once() {
        let ctx = Context::new();
        let x = ctx.symbol("x");
        let shared = (x + 1.0) * (x + 2.0);
        let e = shared.max(shared * 2.0);
        let tape = ctx.compile(e);
        // x, 1, x+1, 2, x+2, mul, 2(shared const), mul2, max — the shared
        // product must not be duplicated.
        let muls = tape
            .instrs
            .iter()
            .filter(|i| matches!(i, Instr::Mul(_)))
            .count();
        assert_eq!(muls, 2, "shared product duplicated: {:?}", tape.instrs);
    }

    #[test]
    fn tape_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Tape>();
    }

    #[test]
    fn select_in_batch() {
        let ctx = Context::new();
        let z = ctx.symbol("zero_level");
        let cond = ctx.cmp(crate::CmpOp::Ge, z, ctx.constant(2.0));
        let e = ctx.select(cond, ctx.constant(10.0), ctx.constant(20.0));
        let tape = ctx.compile(e);
        let mut batch = BatchBindings::new(4);
        batch.set_values("zero_level", vec![0.0, 1.0, 2.0, 3.0]);
        assert_eq!(
            tape.eval_batch(&batch).unwrap(),
            vec![20.0, 20.0, 10.0, 10.0]
        );
    }
}
