//! Compiled evaluation tapes with scalar and batched execution.
//!
//! A [`Tape`] is the single-root view of a fused evaluation
//! [`Program`](crate::Program): the expression DAG is linearized into
//! SSA form where every unique sub-expression is computed exactly once,
//! and evaluation runs through the program's register-allocated,
//! broadcast-lane-aware interpreter. Tapes are plain data (`Send +
//! Sync`), so the tuner compiles once on the tracing thread and fans
//! evaluation out across worker threads.
//!
//! Batched evaluation is the core of Mist's "single symbolic pass, many
//! value substitutions" idea: symbols are bound to *columns* and each
//! instruction processes the whole column, amortizing interpretation
//! overhead across the batch. Hot paths that evaluate many roots per
//! batch should compile them into one multi-root
//! [`Program`](crate::Program) instead of many tapes — see
//! [`Context::compile_program`](crate::Context::compile_program).

use std::collections::HashMap;

use crate::error::SymbolicError;
use crate::node::{ExprId, Node};
use crate::program::{EvalWorkspace, Program};

/// A compiled, immutable evaluation program for one expression.
#[derive(Debug, Clone)]
pub struct Tape {
    program: Program,
}

impl Tape {
    /// Builds a tape from the arena (called by `Context::compile`).
    pub(crate) fn build(nodes: &[Node], symbol_names: &[String], root: ExprId) -> Tape {
        Tape {
            program: Program::build(nodes, symbol_names, &[("tape", root)]),
        }
    }

    /// Names of the free symbols read by this tape.
    pub fn symbols(&self) -> &[String] {
        self.program.symbols().names()
    }

    /// The underlying single-root program.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// Number of SSA instructions (a proxy for evaluation cost).
    pub fn len(&self) -> usize {
        self.program.len()
    }

    /// True when the tape has no instructions. Compiled tapes always
    /// contain at least the root instruction, so this is always `false`;
    /// it exists for `len()` symmetry. See [`Tape::is_constant`] for the
    /// "is this a bare constant" question.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// True if the tape is a bare constant: it reads no symbols, so it
    /// evaluates to the same value under any bindings.
    pub fn is_constant(&self) -> bool {
        self.program.symbols().is_empty()
    }

    /// Evaluates the tape against scalar `(name, value)` bindings.
    ///
    /// Bindings must name exactly the tape's symbols: unknown names and
    /// conflicting duplicates are rejected (see
    /// [`SymbolTable::resolve_scalars`](crate::SymbolTable::resolve_scalars)).
    ///
    /// # Errors
    ///
    /// See [`SymbolicError`].
    pub fn eval(&self, bindings: &[(&str, f64)]) -> Result<f64, SymbolicError> {
        let inputs = self.program.symbols().resolve_scalars(bindings)?;
        self.eval_slots(&inputs)
    }

    /// Evaluates with inputs already resolved to tape slot order.
    ///
    /// `inputs[i]` is the value of `self.symbols()[i]`. This is the fastest
    /// scalar entry point for hot loops that bind the same symbols
    /// repeatedly.
    pub fn eval_slots(&self, inputs: &[f64]) -> Result<f64, SymbolicError> {
        self.program.eval_scalar_root(0, inputs)
    }

    /// Evaluates the tape over a whole batch of configurations at once.
    ///
    /// Returns one output per batch row. Rows whose evaluation is non-finite
    /// (e.g. a guard divided by zero) are returned as `f64::INFINITY` rather
    /// than failing the whole batch — the tuner treats them as infeasible.
    ///
    /// The register columns come from a thread-local
    /// [`EvalWorkspace`](crate::EvalWorkspace), so repeated calls do not
    /// re-allocate scratch; only the returned output column is a fresh
    /// allocation. Callers that want full control over scratch reuse
    /// (or evaluate many tapes) should use [`Tape::eval_batch_with`] or
    /// fuse the roots into one [`Program`](crate::Program).
    ///
    /// # Errors
    ///
    /// Returns [`SymbolicError::UnboundSymbol`] if a tape symbol is missing
    /// from `bindings`, or [`SymbolicError::BatchLengthMismatch`] if a
    /// column's length differs from the batch length.
    pub fn eval_batch(&self, bindings: &BatchBindings) -> Result<Vec<f64>, SymbolicError> {
        thread_local! {
            static WS: std::cell::RefCell<EvalWorkspace> =
                std::cell::RefCell::new(EvalWorkspace::new());
        }
        WS.with(|ws| {
            let mut ws = ws.borrow_mut();
            self.program.eval_batch(bindings, &mut ws)?;
            Ok(ws.output(0).to_vec())
        })
    }

    /// Batched evaluation into a caller-owned workspace: identical
    /// semantics to [`Tape::eval_batch`], with the output left in root
    /// column 0 of `ws` (read it with
    /// [`EvalWorkspace::output`](crate::EvalWorkspace::output)).
    ///
    /// # Errors
    ///
    /// See [`Tape::eval_batch`].
    pub fn eval_batch_with(
        &self,
        bindings: &BatchBindings,
        ws: &mut EvalWorkspace,
    ) -> Result<(), SymbolicError> {
        self.program.eval_batch(bindings, ws)
    }
}

/// A bound column in a batched evaluation.
#[derive(Debug, Clone)]
pub enum Column {
    /// The symbol has the same value in every row (broadcast).
    Scalar(f64),
    /// One value per row.
    Values(Vec<f64>),
}

/// Symbol bindings for [`Tape::eval_batch`].
///
/// # Example
///
/// ```
/// use mist_symbolic::{BatchBindings, Context};
///
/// let ctx = Context::new();
/// let b = ctx.symbol("b");
/// let tp = ctx.symbol("tp");
/// let tape = ctx.compile(b * 100.0 / tp);
///
/// let mut batch = BatchBindings::new(3);
/// batch.set_values("b", vec![1.0, 2.0, 4.0]);
/// batch.set_scalar("tp", 2.0);
/// assert_eq!(tape.eval_batch(&batch).unwrap(), vec![50.0, 100.0, 200.0]);
/// ```
#[derive(Debug, Clone)]
pub struct BatchBindings {
    len: usize,
    columns: HashMap<String, Column>,
}

impl BatchBindings {
    /// Creates bindings for a batch of `len` rows.
    pub fn new(len: usize) -> Self {
        BatchBindings {
            len,
            columns: HashMap::new(),
        }
    }

    /// Batch length (number of rows).
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the batch has zero rows.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Binds a symbol to a per-row column of values.
    pub fn set_values(&mut self, name: &str, values: Vec<f64>) -> &mut Self {
        self.columns.insert(name.to_owned(), Column::Values(values));
        self
    }

    /// Binds a symbol to a broadcast scalar.
    pub fn set_scalar(&mut self, name: &str, value: f64) -> &mut Self {
        self.columns.insert(name.to_owned(), Column::Scalar(value));
        self
    }

    /// The column bound to `name`, if any.
    pub fn column(&self, name: &str) -> Option<&Column> {
        self.columns.get(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::Op;
    use crate::Context;

    #[test]
    fn scalar_and_batch_agree() {
        let ctx = Context::new();
        let x = ctx.symbol("x");
        let y = ctx.symbol("y");
        let e = (x * y + 3.0).max(x / y).min(ctx.constant(1e9));
        let tape = ctx.compile(e);

        let xs = [1.0, 2.5, 7.0, 0.0];
        let ys = [2.0, 0.5, 3.0, 1.0];
        let mut batch = BatchBindings::new(xs.len());
        batch.set_values("x", xs.to_vec());
        batch.set_values("y", ys.to_vec());
        let got = tape.eval_batch(&batch).unwrap();
        for i in 0..xs.len() {
            let want = tape.eval(&[("x", xs[i]), ("y", ys[i])]).unwrap();
            assert_eq!(got[i], want, "row {i}");
        }
    }

    #[test]
    fn batch_nonfinite_rows_become_infinity() {
        let ctx = Context::new();
        let x = ctx.symbol("x");
        let e = 1.0 / x;
        let tape = ctx.compile(e);
        let mut batch = BatchBindings::new(2);
        batch.set_values("x", vec![0.0, 2.0]);
        let got = tape.eval_batch(&batch).unwrap();
        assert_eq!(got[0], f64::INFINITY);
        assert_eq!(got[1], 0.5);
    }

    #[test]
    fn batch_length_mismatch_is_rejected() {
        let ctx = Context::new();
        let x = ctx.symbol("x");
        let tape = ctx.compile(x + 1.0);
        let mut batch = BatchBindings::new(3);
        batch.set_values("x", vec![1.0, 2.0]);
        assert!(matches!(
            tape.eval_batch(&batch),
            Err(SymbolicError::BatchLengthMismatch {
                expected: 3,
                got: 2
            })
        ));
    }

    #[test]
    fn missing_column_is_rejected() {
        let ctx = Context::new();
        let x = ctx.symbol("x");
        let tape = ctx.compile(x + 1.0);
        let batch = BatchBindings::new(1);
        assert!(matches!(
            tape.eval_batch(&batch),
            Err(SymbolicError::UnboundSymbol(_))
        ));
    }

    #[test]
    fn shared_subexpression_computed_once() {
        let ctx = Context::new();
        let x = ctx.symbol("x");
        let shared = (x + 1.0) * (x + 2.0);
        let e = shared.max(shared * 2.0);
        let tape = ctx.compile(e);
        // x, 1, x+1, 2, x+2, mul, 2(shared const), mul2, max — the shared
        // product must not be duplicated.
        let muls = tape
            .program()
            .ops()
            .iter()
            .filter(|op| matches!(op, Op::Mul { .. }))
            .count();
        assert_eq!(muls, 2, "shared product duplicated");
    }

    #[test]
    fn constant_tape_is_detected() {
        let ctx = Context::new();
        let k = ctx.compile(ctx.constant(2.0) * 21.0);
        assert!(k.is_constant());
        assert!(!k.is_empty(), "compiled tapes always hold the root instr");
        assert_eq!(k.eval(&[]).unwrap(), 42.0);

        let x = ctx.symbol("x");
        let t = ctx.compile(x + 1.0);
        assert!(!t.is_constant());
    }

    #[test]
    fn scalar_binding_resolution_is_strict() {
        let ctx = Context::new();
        let x = ctx.symbol("x");
        let y = ctx.symbol("y");
        let tape = ctx.compile(x * 10.0 + y);
        // A binding that names no symbol is a caller bug, not a no-op.
        assert!(matches!(
            tape.eval(&[("unused", 9.0), ("x", 2.0), ("y", 5.0)]),
            Err(SymbolicError::UnknownBinding(name)) if name == "unused"
        ));
        // Agreeing duplicates are fine; conflicting ones are an error.
        let got = tape.eval(&[("x", 2.0), ("y", 5.0), ("x", 2.0)]).unwrap();
        assert_eq!(got, 25.0);
        assert!(matches!(
            tape.eval(&[("x", 2.0), ("y", 5.0), ("x", 7.0)]),
            Err(SymbolicError::ConflictingBinding { ref name, first, second })
                if name == "x" && first == 2.0 && second == 7.0
        ));
        assert!(matches!(
            tape.eval(&[("x", 1.0)]),
            Err(SymbolicError::UnboundSymbol(name)) if name == "y"
        ));
    }

    #[test]
    fn tape_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Tape>();
    }

    #[test]
    fn select_in_batch() {
        let ctx = Context::new();
        let z = ctx.symbol("zero_level");
        let cond = ctx.cmp(crate::CmpOp::Ge, z, ctx.constant(2.0));
        let e = ctx.select(cond, ctx.constant(10.0), ctx.constant(20.0));
        let tape = ctx.compile(e);
        let mut batch = BatchBindings::new(4);
        batch.set_values("zero_level", vec![0.0, 1.0, 2.0, 3.0]);
        assert_eq!(
            tape.eval_batch(&batch).unwrap(),
            vec![20.0, 20.0, 10.0, 10.0]
        );
    }
}
