//! Human-readable rendering of expression DAGs.
//!
//! Rendering is only used for debugging and for the "educational" symbolic
//! dumps (paper §A.5), so it favours readability over minimal parentheses.

use crate::node::{CmpOp, ExprId, Node};

/// Renders expression `root` over the given node arena.
pub(crate) fn render(nodes: &[Node], symbols: &[String], root: ExprId) -> String {
    let mut out = String::new();
    render_into(nodes, symbols, root, &mut out);
    out
}

fn render_into(nodes: &[Node], symbols: &[String], id: ExprId, out: &mut String) {
    match &nodes[id.0 as usize] {
        Node::Const(c) => {
            let v = c.to_f64();
            if v.fract() == 0.0 && v.abs() < 1e15 {
                out.push_str(&format!("{}", v as i64));
            } else {
                out.push_str(&format!("{v}"));
            }
        }
        Node::Sym(s) => out.push_str(&symbols[s.0 as usize]),
        Node::Add(v) => render_nary(nodes, symbols, v, " + ", out),
        Node::Mul(v) => render_nary(nodes, symbols, v, "*", out),
        Node::Div(a, b) => {
            out.push('(');
            render_into(nodes, symbols, *a, out);
            out.push_str(" / ");
            render_into(nodes, symbols, *b, out);
            out.push(')');
        }
        Node::Min(v) => render_call(nodes, symbols, "min", v, out),
        Node::Max(v) => render_call(nodes, symbols, "max", v, out),
        Node::Floor(a) => render_call(nodes, symbols, "floor", &[*a], out),
        Node::Ceil(a) => render_call(nodes, symbols, "ceil", &[*a], out),
        Node::Cmp(op, a, b) => {
            let sym = match op {
                CmpOp::Le => "<=",
                CmpOp::Lt => "<",
                CmpOp::Ge => ">=",
                CmpOp::Gt => ">",
                CmpOp::Eq => "==",
            };
            out.push('(');
            render_into(nodes, symbols, *a, out);
            out.push_str(&format!(" {sym} "));
            render_into(nodes, symbols, *b, out);
            out.push(')');
        }
        Node::Select(c, a, b) => {
            out.push_str("select(");
            render_into(nodes, symbols, *c, out);
            out.push_str(", ");
            render_into(nodes, symbols, *a, out);
            out.push_str(", ");
            render_into(nodes, symbols, *b, out);
            out.push(')');
        }
    }
}

fn render_nary(nodes: &[Node], symbols: &[String], ops: &[ExprId], sep: &str, out: &mut String) {
    out.push('(');
    for (i, op) in ops.iter().enumerate() {
        if i > 0 {
            out.push_str(sep);
        }
        render_into(nodes, symbols, *op, out);
    }
    out.push(')');
}

fn render_call(nodes: &[Node], symbols: &[String], name: &str, ops: &[ExprId], out: &mut String) {
    out.push_str(name);
    out.push('(');
    for (i, op) in ops.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        render_into(nodes, symbols, *op, out);
    }
    out.push(')');
}

#[cfg(test)]
mod tests {
    use crate::Context;

    #[test]
    fn renders_basic_shapes() {
        let ctx = Context::new();
        let b = ctx.symbol("b");
        let h = ctx.symbol("h");
        let e = (b * h + 1.0).max(ctx.constant(0.0));
        let s = ctx.render(e);
        assert!(s.contains("max("), "got: {s}");
        assert!(s.contains('b') && s.contains('h'), "got: {s}");
    }

    #[test]
    fn renders_integral_constants_without_fraction() {
        let ctx = Context::new();
        let e = ctx.constant(4096.0);
        assert_eq!(ctx.render(e), "4096");
        let e = ctx.constant(0.5);
        assert_eq!(ctx.render(e), "0.5");
    }
}
