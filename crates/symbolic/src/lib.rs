//! Symbolic expression engine for Mist.
//!
//! This crate implements the substrate behind Mist's *symbolic-based
//! efficient performance analysis* (paper §5.2): instead of re-simulating a
//! model for every candidate optimization configuration, Mist traces the
//! model once into expressions over *symbols* (micro-batch size, TP size,
//! offloading ratios, …) and then evaluates thousands of candidate
//! configurations by substituting values into those expressions.
//!
//! The engine is built around three pieces:
//!
//! * [`Context`] — a hash-consing arena. Structurally identical
//!   sub-expressions are interned once, so the expression DAGs produced by
//!   tracing a 96-layer transformer stay small.
//! * [`Expr`] — a lightweight copyable handle with operator overloading.
//!   Construction performs aggressive local simplification (constant
//!   folding, `x + 0`, `x * 1`, `min`/`max` collapsing, …).
//! * [`Tape`] — a compiled flat postfix program for an expression. A tape
//!   is plain `Send + Sync` data and supports *batched* evaluation: each
//!   symbol is bound to a column of `f64` values and the whole batch is
//!   evaluated in one pass. This is what makes the paper's "batched value
//!   substitution" fast (see the `symbolic_eval` Criterion bench).
//!
//! # Example
//!
//! ```
//! use mist_symbolic::Context;
//!
//! let ctx = Context::new();
//! let b = ctx.symbol("b");            // micro-batch size
//! let tp = ctx.symbol("tp");          // tensor-parallel degree
//! let bytes = b * 4096.0 * 2.0 / tp;  // activation bytes per layer
//!
//! let tape = ctx.compile(bytes);
//! let got = tape.eval(&[("b", 4.0), ("tp", 2.0)]).unwrap();
//! assert_eq!(got, 4.0 * 4096.0 * 2.0 / 2.0);
//! ```

mod context;
mod display;
mod error;
mod node;
mod tape;

pub use context::{Context, Expr};
pub use error::SymbolicError;
pub use node::{CmpOp, ExprId, Node, SymbolId};
pub use tape::{BatchBindings, Tape};
