//! Symbolic expression engine for Mist.
//!
//! This crate implements the substrate behind Mist's *symbolic-based
//! efficient performance analysis* (paper §5.2): instead of re-simulating a
//! model for every candidate optimization configuration, Mist traces the
//! model once into expressions over *symbols* (micro-batch size, TP size,
//! offloading ratios, …) and then evaluates thousands of candidate
//! configurations by substituting values into those expressions.
//!
//! The engine is built around three pieces:
//!
//! * [`Context`] — a hash-consing arena. Structurally identical
//!   sub-expressions are interned once, so the expression DAGs produced by
//!   tracing a 96-layer transformer stay small.
//! * [`Expr`] — a lightweight copyable handle with operator overloading.
//!   Construction performs aggressive local simplification (constant
//!   folding, `x + 0`, `x * 1`, `min`/`max` collapsing, …).
//! * [`Program`] — a fused multi-root SSA instruction stream. All the
//!   expressions a caller needs per evaluation point (e.g. every memory
//!   and latency estimate of a pipeline stage) compile together with
//!   cross-root common-subexpression elimination, register allocation
//!   over a reusable [`EvalWorkspace`] column pool, and *broadcast
//!   lanes* that keep uniform (scalar-bound) subtrees as single `f64`s
//!   instead of materialized columns. This is what makes the paper's
//!   "batched value substitution" fast (see the `symbolic_eval`
//!   Criterion bench).
//! * [`Tape`] — the single-root convenience view over a [`Program`],
//!   plain `Send + Sync` data with scalar ([`Tape::eval`]) and batched
//!   ([`Tape::eval_batch`]) entry points. Hot paths that evaluate many
//!   roots per batch should fuse them via
//!   [`Context::compile_program`] instead of looping over tapes.
//! * [`specialize`] — the partial-evaluation pass pipeline: freezing
//!   the symbols a tuner sweep holds constant folds, simplifies and
//!   branch-deletes the program down to a residual over just the
//!   varying knobs, with byte-identical results (see the
//!   `passes` module docs for the pipeline and exactness rules).
//!
//! # Example
//!
//! ```
//! use mist_symbolic::Context;
//!
//! let ctx = Context::new();
//! let b = ctx.symbol("b");            // micro-batch size
//! let tp = ctx.symbol("tp");          // tensor-parallel degree
//! let bytes = b * 4096.0 * 2.0 / tp;  // activation bytes per layer
//!
//! let tape = ctx.compile(bytes);
//! let got = tape.eval(&[("b", 4.0), ("tp", 2.0)]).unwrap();
//! assert_eq!(got, 4.0 * 4096.0 * 2.0 / 2.0);
//! ```

#![warn(missing_docs)]

mod compiled;
mod context;
mod display;
mod error;
mod fuse;
mod node;
mod passes;
mod program;
mod tape;

pub use compiled::{CompiledProgram, CompiledWorkspace};
pub use context::{Context, Expr};
pub use error::SymbolicError;
pub use fuse::fuse_superinstructions;
pub use node::{CmpOp, ExprId, Node, SymbolId};
pub use passes::{
    specialize, specialize_with_stats, FrozenSymbols, GuardFact, SlotRange, SpecializeStats,
    SweepFacts,
};
pub use program::{EvalWorkspace, Instr, Program, SymbolTable};
pub use tape::{BatchBindings, Column, Tape};
