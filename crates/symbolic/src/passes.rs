//! Specialization pass pipeline: partial evaluation of a [`Program`]
//! against a frozen symbol assignment.
//!
//! The tuner's frontier sweeps freeze most of a stage program's symbols
//! (zero level, offload ratios, in-flight micro-batches, …) and vary
//! only a couple of search knobs per batch. Specializing the fused
//! program once per sweep and evaluating the shrunken stream thousands
//! of times is the classic partial-evaluation win; this module is the
//! pipeline that produces the residual program:
//!
//! 1. **Freeze + constant folding** — frozen symbols become known
//!    scalars; any instruction whose operands are all known folds at
//!    specialization time with the *exact* kernel semantics (same
//!    left-to-right fold order, `f64::min`/`f64::max` NaN behavior,
//!    IEEE division).
//! 2. **Algebraic simplification** — identity operands are dropped
//!    (`x * 1`, `x + 0`, `x / 1`, `min(x, +inf)`, `max(x, -inf)`),
//!    absorbing elements collapse whole folds (`min` with a known
//!    `-inf`, NaN in `+`/`*`), and single-operand folds alias their
//!    operand. Only transforms that preserve results bit-for-bit (for
//!    every row value, finite or not) are applied — see
//!    ["Exactness"](#exactness) below.
//! 3. **Branch deletion** — a `Select` whose condition is known (or
//!    proven constant over the sweep domain by an external analysis
//!    such as `mist-irlint` interval analysis, supplied as
//!    [`GuardFact`]s) is replaced by the taken branch; the untaken
//!    branch becomes dead.
//! 4. **Dead-slot elimination** — instructions no root transitively
//!    uses (untaken branches, subtrees folded away) are removed and the
//!    stream is compacted; the symbol table is rebuilt so the residual
//!    program only *requires* bindings for symbols it still reads.
//! 5. **Register re-allocation** — the linear-scan allocator runs
//!    again over the compacted stream, so the residual program's
//!    workspace footprint shrinks with it.
//!
//! Passes 1–3 are one forward rewrite over the SSA stream (the stream
//! is a DAG in topological order, so a single pass reaches a fixpoint);
//! emission hash-conses rewritten instructions, which both dedupes the
//! constants the rewrite materializes and gives residual CSE for free.
//!
//! # Exactness
//!
//! Specialized evaluation must be **byte-identical** to running the
//! original program with the frozen symbols bound as scalars — the
//! tuner's golden outputs may not drift. Every rewrite is individually
//! bit-exact for all row values (including non-finite ones), with one
//! documented exception:
//!
//! * frozen `Sym` → known scalar: identical by definition (a
//!   scalar-bound symbol is a broadcast lane of that value).
//! * all-known folds run the same scalar kernel in the same operand
//!   order as the batched evaluator's uniform fast path.
//! * a known *prefix* of a fold is collapsed left-to-right — exactly
//!   the prefix of the runtime fold — and the residual fold continues
//!   from that value. Known operands *after* the first unknown are
//!   kept in place (floating-point folds do not re-associate).
//! * `x * 1.0`, `x / 1.0` are bit-exact for every `x` (including NaN,
//!   infinities and signed zero). `min(x, +inf)`/`max(x, -inf)` are
//!   dropped only when another known **finite** operand remains in the
//!   fold: that operand already pins a possible NaN row the same way
//!   the infinity would have (`f64::min(NaN, y) = y`), making the drop
//!   exact. A known `-inf` in `min` (`+inf` in `max`) absorbs the
//!   whole fold regardless of other rows, again matching
//!   `f64::min`/`max` NaN semantics; a known NaN operand is the
//!   identity of `min`/`max` and poisons `+`/`*` entirely.
//! * `Select` with a known or domain-constant condition evaluates the
//!   untaken branch nowhere — at runtime a uniform condition picks one
//!   branch for the whole batch, so deleting the other is unobservable.
//! * a `Mul` with a known `+0.0` factor collapses to `+0.0` **only**
//!   when externally supplied interval facts ([`SweepFacts`] ranges)
//!   prove every other factor finite and non-negative and the partial
//!   products before the zero cannot overflow — `0 * inf = NaN` and
//!   `0 * -x = -0.0` make the bare rewrite inexact, so without such
//!   facts the multiplication is kept.
//! * **Exception (signed zero):** dropping a known `±0.0` from an
//!   `Add` maps a row result of `-0.0` to `+0.0` or vice versa when
//!   the remaining operand is itself a zero. `-0.0` never survives the
//!   expression builder's constant interning and the tuner's outputs
//!   are compared with `==` (where `-0.0 == 0.0`), so the pipeline
//!   accepts this; equivalence tests compare with `==` semantics, not
//!   raw bits, for exactly this case. The zero-product collapse shares
//!   the exception: a range-proved non-negative factor may still
//!   evaluate to `-0.0`, whose product with `+0.0` is `-0.0`.
//!
//! Rows that evaluate non-finite still flow through the same
//! `finite_or_inf` root materialization as before — the mapping lives
//! outside the instruction stream and is untouched by specialization.

use std::collections::HashMap;

use crate::node::CmpOp;
use crate::program::{allocate_registers, next_program_id, Op, Program, SymbolTable};

/// A frozen symbol assignment for [`specialize`]: the symbols a sweep
/// holds constant, with their values.
///
/// Names are deduplicated and kept sorted so that fingerprints are
/// order-independent.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FrozenSymbols {
    /// Sorted `(name, value)` pairs.
    pairs: Vec<(String, f64)>,
}

impl FrozenSymbols {
    /// Builds a frozen set from `(name, value)` pairs.
    ///
    /// # Panics
    ///
    /// Panics if the same name appears twice with a different bit
    /// pattern — a sweep that freezes one symbol at two values is a
    /// caller bug.
    pub fn new<N: Into<String>>(pairs: impl IntoIterator<Item = (N, f64)>) -> Self {
        let mut pairs: Vec<(String, f64)> = pairs.into_iter().map(|(n, v)| (n.into(), v)).collect();
        pairs.sort_by(|a, b| a.0.cmp(&b.0));
        pairs.dedup_by(|dup, kept| {
            if dup.0 != kept.0 {
                return false;
            }
            assert!(
                dup.1.to_bits() == kept.1.to_bits(),
                "symbol `{}` frozen at both {} and {}",
                dup.0,
                kept.1,
                dup.1
            );
            true
        });
        FrozenSymbols { pairs }
    }

    /// The frozen value of `name`, if present.
    pub fn get(&self, name: &str) -> Option<f64> {
        self.pairs
            .binary_search_by(|(n, _)| n.as_str().cmp(name))
            .ok()
            .map(|i| self.pairs[i].1)
    }

    /// Sorted `(name, value)` pairs.
    pub fn pairs(&self) -> &[(String, f64)] {
        &self.pairs
    }

    /// Number of frozen symbols.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// True when no symbols are frozen.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// The subset of this assignment that `table` actually reads.
    /// Restricting before fingerprinting keeps cache keys stable across
    /// sweeps that freeze irrelevant symbols.
    pub fn restricted_to(&self, table: &SymbolTable) -> FrozenSymbols {
        FrozenSymbols {
            pairs: self
                .pairs
                .iter()
                .filter(|(n, _)| table.index_of(n).is_some())
                .cloned()
                .collect(),
        }
    }

    /// Content fingerprint (FNV-1a over the sorted `(name, bits)`
    /// pairs): stable across processes, suitable as a cache key next to
    /// [`Program::id`].
    pub fn fingerprint(&self) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = OFFSET;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                h ^= u64::from(b);
                h = h.wrapping_mul(PRIME);
            }
        };
        for (name, v) in &self.pairs {
            eat(name.as_bytes());
            eat(&[0xff]);
            eat(&v.to_bits().to_le_bytes());
        }
        h
    }
}

/// A `Select` whose condition an external analysis proved constant for
/// every binding the caller will evaluate (e.g. `mist-irlint` interval
/// analysis over the sweep's symbol domains).
///
/// `slot` is the **slot index of the `Select` instruction** in the
/// original program; `taken` tells which branch the condition always
/// picks (`true` = the `then` branch). Supplying a fact that does not
/// actually hold for an evaluated binding silently changes results —
/// facts are trusted, not re-checked.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GuardFact {
    /// Slot of the `Select` instruction the fact applies to.
    pub slot: u32,
    /// `true` when the condition is always non-zero (then-branch).
    pub taken: bool,
}

/// Externally proven value range of one slot of the original program,
/// over every binding the caller will evaluate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SlotRange {
    /// Lower bound of the slot's value.
    pub lo: f64,
    /// Upper bound of the slot's value.
    pub hi: f64,
    /// True when the slot provably never evaluates to NaN or ±infinity.
    pub finite: bool,
}

/// Facts an external analysis (typically `mist-irlint` interval
/// analysis over the tuner's sweep domains) proved about the original
/// program, consumed by [`specialize`]:
///
/// * [`GuardFact`]s delete `Select` branches whose condition is
///   constant over the sweep even though it is not frozen.
/// * [`SlotRange`]s license the zero-product collapse: `x * 0` is *not*
///   exact in general (`inf * 0 = NaN`, `-x * 0 = -0`), but when every
///   other operand is provably finite and non-negative — and the
///   partial products cannot overflow — the product is exactly `+0.0`
///   for every in-domain row.
///
/// Like guard facts, ranges are trusted, not re-checked, and are sound
/// only for in-domain bindings; rows evaluated out of domain (e.g. the
/// tuner's `ckpt = ∞` infeasibility marker) must be discarded by the
/// caller, never read back.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SweepFacts {
    guards: Vec<GuardFact>,
    /// Indexed by original slot; empty when no interval facts exist.
    ranges: Vec<SlotRange>,
}

impl SweepFacts {
    /// Builds a fact set from guard facts and per-slot ranges (`ranges`
    /// may be empty, or shorter than the program).
    pub fn new(guards: Vec<GuardFact>, ranges: Vec<SlotRange>) -> Self {
        SweepFacts { guards, ranges }
    }

    /// Guard facts only (no interval information).
    pub fn from_guards(guards: impl Into<Vec<GuardFact>>) -> Self {
        SweepFacts {
            guards: guards.into(),
            ranges: Vec::new(),
        }
    }

    /// The proven-constant `Select` guards.
    pub fn guards(&self) -> &[GuardFact] {
        &self.guards
    }

    /// The proven value ranges, indexed by original slot.
    pub fn ranges(&self) -> &[SlotRange] {
        &self.ranges
    }

    fn range(&self, slot: u32) -> Option<SlotRange> {
        self.ranges.get(slot as usize).copied()
    }
}

/// Counters describing what [`specialize`] did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpecializeStats {
    /// Instructions in the input program.
    pub original_instrs: usize,
    /// Instructions in the residual program.
    pub specialized_instrs: usize,
    /// Slots whose value became a compile-time constant.
    pub folded_slots: usize,
    /// `Select` instructions deleted (known or domain-constant guard,
    /// or both branches identical).
    pub deleted_selects: usize,
    /// Emitted instructions removed again by dead-slot elimination
    /// (mostly untaken branches).
    pub dead_slots: usize,
}

/// Result of one slot's rewrite: a compile-time constant, or an alias
/// to a slot of the residual stream.
#[derive(Debug, Clone, Copy)]
enum Val {
    Known(f64),
    Slot(u32),
}

impl Val {
    fn same_as(self, other: Val) -> bool {
        match (self, other) {
            (Val::Known(a), Val::Known(b)) => a.to_bits() == b.to_bits(),
            (Val::Slot(a), Val::Slot(b)) => a == b,
            _ => false,
        }
    }
}

/// Structural key for hash-consing emitted instructions.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum Key {
    Const(u64),
    Sym(u32),
    Nary(FoldKind, Vec<u32>),
    Div(u32, u32),
    Floor(u32),
    Ceil(u32),
    Cmp(CmpOp, u32, u32),
    Select(u32, u32, u32),
    MulAdd(u32, u32, u32),
    SelectCmp(CmpOp, u32, u32, u32, u32),
    DivFloor(u32, u32),
    DivCeil(u32, u32),
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum FoldKind {
    Add,
    Mul,
    Min,
    Max,
}

impl FoldKind {
    /// The scalar fold step — must match the batched kernels exactly.
    fn apply(self, x: f64, y: f64) -> f64 {
        match self {
            FoldKind::Add => x + y,
            FoldKind::Mul => x * y,
            FoldKind::Min => f64::min(x, y),
            FoldKind::Max => f64::max(x, y),
        }
    }

    /// The identity operand this fold may drop (`x + 0`, `x * 1`,
    /// `min(x, +inf)`, `max(x, -inf)`).
    fn identity(self) -> f64 {
        match self {
            FoldKind::Add => 0.0,
            FoldKind::Mul => 1.0,
            FoldKind::Min => f64::INFINITY,
            FoldKind::Max => f64::NEG_INFINITY,
        }
    }

    /// The absorbing element: a known operand equal to this collapses
    /// the entire fold for every row (`min` with `-inf`, `max` with
    /// `+inf`). `Add`/`Mul` have no absorber that is exact for
    /// non-finite rows (`0 * inf = NaN`), so only NaN poisoning
    /// applies to them.
    fn absorber(self) -> Option<f64> {
        match self {
            FoldKind::Add | FoldKind::Mul => None,
            FoldKind::Min => Some(f64::NEG_INFINITY),
            FoldKind::Max => Some(f64::INFINITY),
        }
    }

    /// True when a known NaN operand forces the whole fold to NaN
    /// (`Add`/`Mul`); for `min`/`max` NaN is instead the *identity*.
    fn nan_poisons(self) -> bool {
        matches!(self, FoldKind::Add | FoldKind::Mul)
    }
}

/// The residual instruction stream under construction.
#[derive(Default)]
struct Emitter {
    ops: Vec<Op>,
    operands: Vec<u32>,
    table: SymbolTable,
    cse: HashMap<Key, u32>,
}

impl Emitter {
    fn emit(&mut self, key: Key) -> u32 {
        if let Some(&slot) = self.cse.get(&key) {
            return slot;
        }
        let op = match &key {
            Key::Const(bits) => Op::Const(f64::from_bits(*bits)),
            Key::Sym(s) => Op::Sym(*s),
            Key::Nary(kind, args) => {
                let start = self.operands.len() as u32;
                self.operands.extend_from_slice(args);
                let len = args.len() as u32;
                match kind {
                    FoldKind::Add => Op::Add { start, len },
                    FoldKind::Mul => Op::Mul { start, len },
                    FoldKind::Min => Op::Min { start, len },
                    FoldKind::Max => Op::Max { start, len },
                }
            }
            Key::Div(a, b) => Op::Div(*a, *b),
            Key::Floor(a) => Op::Floor(*a),
            Key::Ceil(a) => Op::Ceil(*a),
            Key::Cmp(c, a, b) => Op::Cmp(*c, *a, *b),
            Key::Select(c, a, b) => Op::Select(*c, *a, *b),
            Key::MulAdd(a, b, c) => Op::MulAdd(*a, *b, *c),
            Key::SelectCmp(o, a, b, t, e) => Op::SelectCmp(*o, *a, *b, *t, *e),
            Key::DivFloor(a, b) => Op::DivFloor(*a, *b),
            Key::DivCeil(a, b) => Op::DivCeil(*a, *b),
        };
        let slot = self.ops.len() as u32;
        self.ops.push(op);
        self.cse.insert(key, slot);
        slot
    }

    fn konst(&mut self, v: f64) -> u32 {
        self.emit(Key::Const(v.to_bits()))
    }

    fn sym(&mut self, name: &str) -> u32 {
        let idx = self.table.intern(name);
        self.emit(Key::Sym(idx))
    }

    fn resolve(&mut self, v: Val) -> u32 {
        match v {
            Val::Known(c) => self.konst(c),
            Val::Slot(s) => s,
        }
    }
}

/// Rewrites one n-ary fold given its operands' rewrite results.
fn rewrite_fold(kind: FoldKind, args: &[Val], em: &mut Emitter) -> Val {
    // All-known: run the exact scalar fold at specialization time.
    let known: Option<Vec<f64>> = args
        .iter()
        .map(|v| match v {
            Val::Known(c) => Some(*c),
            Val::Slot(_) => None,
        })
        .collect();
    if let Some(ks) = known {
        let mut acc = ks[0];
        for &k in &ks[1..] {
            acc = kind.apply(acc, k);
        }
        return Val::Known(acc);
    }

    // Absorbing / poisoning known operands collapse the fold outright.
    for v in args {
        if let Val::Known(c) = v {
            if kind.nan_poisons() && c.is_nan() {
                return Val::Known(f64::NAN);
            }
            if let Some(abs) = kind.absorber() {
                if c.to_bits() == abs.to_bits() {
                    return Val::Known(abs);
                }
            }
        }
    }

    // Collapse the known *prefix* left-to-right — exactly the prefix of
    // the runtime fold — then keep the rest in order.
    let mut prefix: Option<f64> = None;
    let mut rest = args;
    while let Some((&Val::Known(c), tail)) = rest.split_first() {
        prefix = Some(prefix.map_or(c, |a| kind.apply(a, c)));
        rest = tail;
    }

    // Identity dropping in the tail. min/max identity infinities are
    // only droppable when a known finite operand stays in the fold to
    // pin NaN rows the same way (see module docs); +-0 / 1 / NaN
    // identities are unconditional.
    let keeps_known_finite = prefix.is_some_and(f64::is_finite)
        || rest
            .iter()
            .any(|v| matches!(v, Val::Known(c) if c.is_finite()));
    let mut kept: Vec<Val> = Vec::with_capacity(rest.len() + 1);
    if let Some(p) = prefix {
        kept.push(Val::Known(p));
    }
    for v in rest {
        if let Val::Known(c) = v {
            let droppable = match kind {
                FoldKind::Add => *c == 0.0,
                FoldKind::Mul => c.to_bits() == 1.0f64.to_bits(),
                FoldKind::Min | FoldKind::Max => {
                    c.is_nan() || (c.to_bits() == kind.identity().to_bits() && keeps_known_finite)
                }
            };
            if droppable {
                continue;
            }
        }
        kept.push(*v);
    }
    // A leading known identity also drops once something follows it
    // (`0 + x` -> `x` is exact except for the documented signed-zero
    // case; `1 * x` and NaN-identity min/max are exact everywhere).
    if kept.len() > 1 {
        if let Val::Known(c) = kept[0] {
            let droppable = match kind {
                FoldKind::Add => c == 0.0,
                FoldKind::Mul => c.to_bits() == 1.0f64.to_bits(),
                FoldKind::Min | FoldKind::Max => c.is_nan(),
            };
            if droppable {
                kept.remove(0);
            }
        }
    }

    match kept.len() {
        0 => unreachable!("an all-known fold returned before simplification"),
        // A single operand folds to itself (`fold` of one column is a
        // copy) — alias instead of emitting.
        1 => kept[0],
        _ => {
            let slots: Vec<u32> = kept.iter().map(|v| em.resolve(*v)).collect();
            Val::Slot(em.emit(Key::Nary(kind, slots)))
        }
    }
}

/// Whether a `Mul` with the given original operand `slots` and rewritten
/// `args` provably evaluates to `+0.0` for every in-domain row.
///
/// Requires a `Known(+0.0)` factor, and for *every* operand either a
/// known finite non-negative value or a [`SlotRange`] proving the slot
/// finite with `lo >= 0.0`. The sequential product is then non-negative
/// at every step; the running upper bound of the partial products
/// *before* the zero factor must additionally stay finite (folding upper
/// bounds left-to-right is conservative under round-to-nearest), ruling
/// out `inf * 0 = NaN` from intermediate overflow. After the zero the
/// partial product is `+0.0` and stays `+0.0` under finite non-negative
/// factors.
///
/// One documented inexactness, mirroring the `+0.0` identity drop for
/// `Add`: a slot with `lo >= 0.0` may still evaluate to `-0.0`, whose
/// product with `+0.0` is `-0.0`, not the `+0.0` this collapse yields.
/// The two compare equal under `==`; callers needing bit-exact `-0.0`
/// must not supply ranges.
fn mul_collapses_to_zero(slots: &[u32], args: &[Val], facts: &SweepFacts) -> bool {
    let Some(zero_pos) = args
        .iter()
        .position(|v| matches!(v, Val::Known(c) if c.to_bits() == 0))
    else {
        return false;
    };
    let mut partial_hi = 1.0f64;
    for (i, (&slot, arg)) in slots.iter().zip(args).enumerate() {
        let (lo, hi) = match *arg {
            Val::Known(c) => {
                if !c.is_finite() || c.is_sign_negative() {
                    return false;
                }
                (c, c)
            }
            Val::Slot(_) => match facts.range(slot) {
                Some(r) if r.finite && r.lo >= 0.0 => (r.lo, r.hi),
                _ => return false,
            },
        };
        debug_assert!(lo >= 0.0);
        if i < zero_pos {
            partial_hi *= hi;
            if !partial_hi.is_finite() {
                return false;
            }
        }
    }
    true
}

/// Specializes `program` against `frozen`, returning the residual
/// program. See the [module docs](self) for the pass pipeline and the
/// exactness guarantees.
///
/// `facts` may carry externally proven [`GuardFact`]s and
/// [`SlotRange`]s (typically from `mist-irlint` interval analysis over
/// the sweep's symbol domains); pass `&SweepFacts::default()` to
/// specialize on frozen symbols alone. The residual program keeps every
/// root, in order, under the same labels.
pub fn specialize(program: &Program, frozen: &FrozenSymbols, facts: &SweepFacts) -> Program {
    specialize_with_stats(program, frozen, facts).0
}

/// [`specialize`], also returning pass statistics.
pub fn specialize_with_stats(
    program: &Program,
    frozen: &FrozenSymbols,
    facts: &SweepFacts,
) -> (Program, SpecializeStats) {
    let guard_of: HashMap<u32, bool> = facts.guards().iter().map(|g| (g.slot, g.taken)).collect();
    let mut stats = SpecializeStats {
        original_instrs: program.ops.len(),
        ..SpecializeStats::default()
    };

    // Passes 1-3: forward rewrite (fold, simplify, delete branches).
    let mut em = Emitter::default();
    let mut vals: Vec<Val> = Vec::with_capacity(program.ops.len());
    for (slot, op) in program.ops.iter().enumerate() {
        let arena =
            |start: u32, len: u32| &program.operands[start as usize..(start + len) as usize];
        let val = match *op {
            Op::Const(c) => Val::Known(c),
            Op::Sym(s) => {
                let name = &program.table.names()[s as usize];
                match frozen.get(name) {
                    Some(v) => Val::Known(v),
                    None => Val::Slot(em.sym(name)),
                }
            }
            Op::Add { start, len } => {
                let args: Vec<Val> = arena(start, len)
                    .iter()
                    .map(|&s| vals[s as usize])
                    .collect();
                rewrite_fold(FoldKind::Add, &args, &mut em)
            }
            Op::Mul { start, len } => {
                let slots = arena(start, len);
                let args: Vec<Val> = slots.iter().map(|&s| vals[s as usize]).collect();
                // A residual (non-all-known) product with a known +0.0
                // factor collapses to +0.0 when the interval facts prove
                // the collapse exact; otherwise fall through to the
                // generic rewrite (which, for all-known args, folds the
                // exact sequential product anyway).
                if args.iter().any(|v| matches!(v, Val::Slot(_)))
                    && mul_collapses_to_zero(slots, &args, facts)
                {
                    Val::Known(0.0)
                } else {
                    rewrite_fold(FoldKind::Mul, &args, &mut em)
                }
            }
            Op::Min { start, len } => {
                let args: Vec<Val> = arena(start, len)
                    .iter()
                    .map(|&s| vals[s as usize])
                    .collect();
                rewrite_fold(FoldKind::Min, &args, &mut em)
            }
            Op::Max { start, len } => {
                let args: Vec<Val> = arena(start, len)
                    .iter()
                    .map(|&s| vals[s as usize])
                    .collect();
                rewrite_fold(FoldKind::Max, &args, &mut em)
            }
            Op::Div(a, b) => match (vals[a as usize], vals[b as usize]) {
                (Val::Known(x), Val::Known(y)) => Val::Known(x / y),
                // x / NaN and NaN / x are NaN for every x.
                (Val::Known(x), _) if x.is_nan() => Val::Known(f64::NAN),
                (_, Val::Known(y)) if y.is_nan() => Val::Known(f64::NAN),
                // x / 1 is bit-exact for every x.
                (va, Val::Known(y)) if y.to_bits() == 1.0f64.to_bits() => va,
                (va, vb) => {
                    let (sa, sb) = (em.resolve(va), em.resolve(vb));
                    Val::Slot(em.emit(Key::Div(sa, sb)))
                }
            },
            Op::Floor(a) => match vals[a as usize] {
                Val::Known(x) => Val::Known(x.floor()),
                Val::Slot(s) => Val::Slot(em.emit(Key::Floor(s))),
            },
            Op::Ceil(a) => match vals[a as usize] {
                Val::Known(x) => Val::Known(x.ceil()),
                Val::Slot(s) => Val::Slot(em.emit(Key::Ceil(s))),
            },
            Op::Cmp(cmp, a, b) => match (vals[a as usize], vals[b as usize]) {
                (Val::Known(x), Val::Known(y)) => Val::Known(cmp.apply(x, y)),
                (va, vb) => {
                    let (sa, sb) = (em.resolve(va), em.resolve(vb));
                    Val::Slot(em.emit(Key::Cmp(cmp, sa, sb)))
                }
            },
            Op::Select(c, a, b) => {
                let (vc, va, vb) = (vals[c as usize], vals[a as usize], vals[b as usize]);
                if let Val::Known(cv) = vc {
                    stats.deleted_selects += 1;
                    // NaN conditions compare `!= 0.0` as true, same as
                    // the runtime kernels.
                    if cv != 0.0 {
                        va
                    } else {
                        vb
                    }
                } else if let Some(&taken) = guard_of.get(&(slot as u32)) {
                    stats.deleted_selects += 1;
                    if taken {
                        va
                    } else {
                        vb
                    }
                } else if va.same_as(vb) {
                    // Both branches produce the same value row-for-row.
                    stats.deleted_selects += 1;
                    va
                } else {
                    let (sc, sa, sb) = (em.resolve(vc), em.resolve(va), em.resolve(vb));
                    Val::Slot(em.emit(Key::Select(sc, sa, sb)))
                }
            }
            // Superinstructions (peephole-fused programs re-entering the
            // pipeline): constant-fold with the exact fused semantics
            // when all operands are known, otherwise re-emit as-is.
            Op::MulAdd(a, b, c) => match (vals[a as usize], vals[b as usize], vals[c as usize]) {
                (Val::Known(x), Val::Known(y), Val::Known(z)) => Val::Known(x * y + z),
                (va, vb, vc) => {
                    let (sa, sb, sc) = (em.resolve(va), em.resolve(vb), em.resolve(vc));
                    Val::Slot(em.emit(Key::MulAdd(sa, sb, sc)))
                }
            },
            Op::SelectCmp(cmp, a, b, t, e) => {
                let (va, vb) = (vals[a as usize], vals[b as usize]);
                let (vt, ve) = (vals[t as usize], vals[e as usize]);
                if let (Val::Known(x), Val::Known(y)) = (va, vb) {
                    stats.deleted_selects += 1;
                    if cmp.apply(x, y) != 0.0 {
                        vt
                    } else {
                        ve
                    }
                } else if vt.same_as(ve) {
                    stats.deleted_selects += 1;
                    vt
                } else {
                    let (sa, sb) = (em.resolve(va), em.resolve(vb));
                    let (st, se) = (em.resolve(vt), em.resolve(ve));
                    Val::Slot(em.emit(Key::SelectCmp(cmp, sa, sb, st, se)))
                }
            }
            Op::DivFloor(a, b) => match (vals[a as usize], vals[b as usize]) {
                (Val::Known(x), Val::Known(y)) => Val::Known((x / y).floor()),
                (va, vb) => {
                    let (sa, sb) = (em.resolve(va), em.resolve(vb));
                    Val::Slot(em.emit(Key::DivFloor(sa, sb)))
                }
            },
            Op::DivCeil(a, b) => match (vals[a as usize], vals[b as usize]) {
                (Val::Known(x), Val::Known(y)) => Val::Known((x / y).ceil()),
                (va, vb) => {
                    let (sa, sb) = (em.resolve(va), em.resolve(vb));
                    Val::Slot(em.emit(Key::DivCeil(sa, sb)))
                }
            },
        };
        vals.push(val);
    }
    stats.folded_slots = vals.iter().filter(|v| matches!(v, Val::Known(_))).count();

    // Known roots still need an output slot: materialize them as
    // constants (appending is safe — constants have no operands).
    let roots: Vec<u32> = program
        .roots
        .iter()
        .map(|&r| em.resolve(vals[r as usize]))
        .collect();

    // Pass 4: dead-slot elimination + compaction + symbol-table rebuild.
    let emitted = em.ops.len();
    let (ops, operands, roots, table) = sweep_dead_slots(em, &roots);
    stats.dead_slots = emitted - ops.len();
    stats.specialized_instrs = ops.len();

    // Pass 5: register re-allocation over the compacted stream.
    let (regs, num_regs) = allocate_registers(&ops, &operands, &roots);

    mist_telemetry::gauge_max("symbolic.program.specialized_instrs", ops.len() as f64);
    let specialized = Program {
        id: next_program_id(),
        ops,
        operands,
        regs,
        num_regs,
        table,
        roots,
        labels: program.labels.clone(),
    };
    (specialized, stats)
}

/// Removes instructions unreachable from the roots, compacts the
/// stream and operand arena, and rebuilds the symbol table so only
/// symbols still read remain interned (and thus required at binding
/// time).
fn sweep_dead_slots(em: Emitter, roots: &[u32]) -> (Vec<Op>, Vec<u32>, Vec<u32>, SymbolTable) {
    let Emitter {
        ops: old_ops,
        operands: old_operands,
        table: old_table,
        ..
    } = em;

    let mut live = vec![false; old_ops.len()];
    for &r in roots {
        live[r as usize] = true;
    }
    let each_operand = |op: &Op, f: &mut dyn FnMut(u32)| match *op {
        Op::Const(_) | Op::Sym(_) => {}
        Op::Add { start, len }
        | Op::Mul { start, len }
        | Op::Min { start, len }
        | Op::Max { start, len } => {
            for &s in &old_operands[start as usize..(start + len) as usize] {
                f(s);
            }
        }
        Op::Div(a, b) | Op::Cmp(_, a, b) => {
            f(a);
            f(b);
        }
        Op::Floor(a) | Op::Ceil(a) => f(a),
        Op::Select(c, a, b) => {
            f(c);
            f(a);
            f(b);
        }
        Op::MulAdd(a, b, c) => {
            f(a);
            f(b);
            f(c);
        }
        Op::SelectCmp(_, a, b, t, e) => {
            f(a);
            f(b);
            f(t);
            f(e);
        }
        Op::DivFloor(a, b) | Op::DivCeil(a, b) => {
            f(a);
            f(b);
        }
    };
    for slot in (0..old_ops.len()).rev() {
        if live[slot] {
            each_operand(&old_ops[slot], &mut |s| live[s as usize] = true);
        }
    }

    let mut remap = vec![u32::MAX; old_ops.len()];
    let mut sym_remap: HashMap<u32, u32> = HashMap::new();
    let mut table = SymbolTable::default();
    let mut ops: Vec<Op> = Vec::new();
    let mut operands: Vec<u32> = Vec::new();
    for (slot, op) in old_ops.iter().enumerate() {
        if !live[slot] {
            continue;
        }
        let new_op = match *op {
            Op::Const(c) => Op::Const(c),
            Op::Sym(s) => {
                let idx = *sym_remap
                    .entry(s)
                    .or_insert_with(|| table.intern(&old_table.names()[s as usize]));
                Op::Sym(idx)
            }
            Op::Add { start, len }
            | Op::Mul { start, len }
            | Op::Min { start, len }
            | Op::Max { start, len } => {
                let new_start = operands.len() as u32;
                operands.extend(
                    old_operands[start as usize..(start + len) as usize]
                        .iter()
                        .map(|&s| remap[s as usize]),
                );
                match *op {
                    Op::Add { .. } => Op::Add {
                        start: new_start,
                        len,
                    },
                    Op::Mul { .. } => Op::Mul {
                        start: new_start,
                        len,
                    },
                    Op::Min { .. } => Op::Min {
                        start: new_start,
                        len,
                    },
                    _ => Op::Max {
                        start: new_start,
                        len,
                    },
                }
            }
            Op::Div(a, b) => Op::Div(remap[a as usize], remap[b as usize]),
            Op::Floor(a) => Op::Floor(remap[a as usize]),
            Op::Ceil(a) => Op::Ceil(remap[a as usize]),
            Op::Cmp(c, a, b) => Op::Cmp(c, remap[a as usize], remap[b as usize]),
            Op::Select(c, a, b) => {
                Op::Select(remap[c as usize], remap[a as usize], remap[b as usize])
            }
            Op::MulAdd(a, b, c) => {
                Op::MulAdd(remap[a as usize], remap[b as usize], remap[c as usize])
            }
            Op::SelectCmp(o, a, b, t, e) => Op::SelectCmp(
                o,
                remap[a as usize],
                remap[b as usize],
                remap[t as usize],
                remap[e as usize],
            ),
            Op::DivFloor(a, b) => Op::DivFloor(remap[a as usize], remap[b as usize]),
            Op::DivCeil(a, b) => Op::DivCeil(remap[a as usize], remap[b as usize]),
        };
        remap[slot] = ops.len() as u32;
        ops.push(new_op);
    }
    let roots: Vec<u32> = roots.iter().map(|&r| remap[r as usize]).collect();
    (ops, operands, roots, table)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tape::BatchBindings;
    use crate::{Context, EvalWorkspace};

    fn outputs(p: &Program, batch: &BatchBindings) -> Vec<Vec<f64>> {
        let mut ws = EvalWorkspace::new();
        p.eval_batch(batch, &mut ws).unwrap();
        (0..p.num_roots()).map(|i| ws.output(i).to_vec()).collect()
    }

    #[test]
    fn freezing_folds_constants_and_deletes_branches() {
        let ctx = Context::new();
        let x = ctx.symbol("x");
        let z = ctx.symbol("z");
        let guard = ctx.cmp(CmpOp::Ge, z, ctx.constant(2.0));
        let e = ctx.select(guard, x * 3.0, x * 5.0) + z * 10.0;
        let program = ctx.compile_program(&[("e", e)]);

        let frozen = FrozenSymbols::new([("z", 3.0)]);
        let (spec, stats) = specialize_with_stats(&program, &frozen, &SweepFacts::default());
        assert!(
            spec.len() < program.len(),
            "specialized {} vs original {}",
            spec.len(),
            program.len()
        );
        assert_eq!(stats.deleted_selects, 1);
        assert!(stats.folded_slots > 0);
        // The untaken branch (x * 5.0) must be gone entirely.
        assert!(!spec.instrs().any(|i| matches!(i, crate::Instr::Select(..))));

        let mut batch = BatchBindings::new(3);
        batch.set_values("x", vec![1.0, 2.0, -4.5]);
        let mut full = batch.clone();
        full.set_scalar("z", 3.0);
        assert_eq!(outputs(&spec, &batch), outputs(&program, &full));
    }

    #[test]
    fn identity_operands_are_dropped() {
        let ctx = Context::new();
        let x = ctx.symbol("x");
        let k = ctx.symbol("k");
        let z = ctx.symbol("z");
        // k freezes to 1 and z to 0: x * 1, + 0 and / 1 are all
        // identity operations and must reduce to the bare symbol read.
        let e = (x * k + z) / k;
        let program = ctx.compile_program(&[("e", e)]);
        let frozen = FrozenSymbols::new([("k", 1.0), ("z", 0.0)]);
        let spec = specialize(&program, &frozen, &SweepFacts::default());
        assert_eq!(spec.len(), 1, "{:?}", spec.instrs().collect::<Vec<_>>());

        let mut batch = BatchBindings::new(4);
        batch.set_values("x", vec![-0.0, 7.25, f64::INFINITY, f64::NAN]);
        let mut full = batch.clone();
        full.set_scalar("k", 1.0);
        full.set_scalar("z", 0.0);
        assert_eq!(outputs(&spec, &batch), outputs(&program, &full));
    }

    #[test]
    fn min_identity_drop_requires_finite_witness() {
        let ctx = Context::new();
        let x = ctx.symbol("x");
        let cap = ctx.symbol("cap");
        let with_witness = x.min(cap).min(ctx.constant(100.0));
        let without_witness = x.min(cap);
        let program = ctx.compile_program(&[("with", with_witness), ("without", without_witness)]);
        let frozen = FrozenSymbols::new([("cap", f64::INFINITY)]);
        let spec = specialize(&program, &frozen, &SweepFacts::default());

        // NaN rows are where the drop rules bite: min(NaN, inf) = inf
        // must be preserved when no finite witness exists.
        let mut batch = BatchBindings::new(3);
        batch.set_values("x", vec![5.0, f64::NAN, -1.0]);
        let mut full = batch.clone();
        full.set_scalar("cap", f64::INFINITY);
        assert_eq!(outputs(&spec, &batch), outputs(&program, &full));
    }

    #[test]
    fn zero_product_collapses_only_with_interval_facts() {
        let ctx = Context::new();
        let x = ctx.symbol("x");
        let w = ctx.symbol("w");
        let e = x * w + 1.0;
        let program = ctx.compile_program(&[("e", e)]);
        let frozen = FrozenSymbols::new([("w", 0.0)]);

        // Without facts the multiplication survives: a row of `x` could
        // be infinite (0 * inf = NaN) or negative (sign of the zero).
        let bare = specialize(&program, &frozen, &SweepFacts::default());
        assert!(bare.instrs().any(|i| matches!(i, crate::Instr::Mul(..))));

        // With every slot proven finite and non-negative the product is
        // exactly +0.0 and the whole root folds to the constant 1.0.
        let ranges = vec![
            SlotRange {
                lo: 0.0,
                hi: 1e6,
                finite: true
            };
            program.len()
        ];
        let spec = specialize(&program, &frozen, &SweepFacts::new(Vec::new(), ranges));
        assert_eq!(spec.len(), 1, "{:?}", spec.instrs().collect::<Vec<_>>());

        let mut batch = BatchBindings::new(3);
        batch.set_values("x", vec![0.0, 3.5, 1e6]); // in-domain rows
        let mut full = batch.clone();
        full.set_scalar("w", 0.0);
        assert_eq!(outputs(&spec, &batch), outputs(&program, &full));
    }

    #[test]
    fn zero_product_collapse_rejects_unproven_factors() {
        let finite = SlotRange {
            lo: 0.0,
            hi: 10.0,
            finite: true,
        };
        let facts = |r: SlotRange| SweepFacts::new(Vec::new(), vec![r, finite]);
        let slots = [0u32, 1];
        let args = [Val::Slot(0), Val::Known(0.0)];
        assert!(mul_collapses_to_zero(&slots, &args, &facts(finite)));
        // A possibly negative factor would flip the zero's sign.
        let maybe_neg = SlotRange { lo: -1.0, ..finite };
        assert!(!mul_collapses_to_zero(&slots, &args, &facts(maybe_neg)));
        // A possibly non-finite factor could make the product NaN.
        let maybe_inf = SlotRange {
            finite: false,
            ..finite
        };
        assert!(!mul_collapses_to_zero(&slots, &args, &facts(maybe_inf)));
        // A slot with no range at all is unproven.
        assert!(!mul_collapses_to_zero(
            &slots,
            &args,
            &SweepFacts::default()
        ));
        // A known -0.0 factor never triggers the collapse.
        assert!(!mul_collapses_to_zero(
            &slots,
            &[Val::Slot(0), Val::Known(-0.0)],
            &facts(finite)
        ));
        // Partial products *before* the zero must not overflow to inf…
        let big = SlotRange {
            lo: 0.0,
            hi: 1e300,
            finite: true,
        };
        let facts3 = SweepFacts::new(Vec::new(), vec![big, big, finite]);
        assert!(!mul_collapses_to_zero(
            &[0, 1, 2],
            &[Val::Slot(0), Val::Slot(1), Val::Known(0.0)],
            &facts3
        ));
        // …but the same magnitudes after the zero are fine: the partial
        // product is already exactly +0.0.
        assert!(mul_collapses_to_zero(
            &[2, 0, 1],
            &[Val::Known(0.0), Val::Slot(0), Val::Slot(1)],
            &facts3
        ));
    }

    #[test]
    fn known_prefix_folds_without_reassociation() {
        let ctx = Context::new();
        let x = ctx.symbol("x");
        let a = ctx.symbol("a");
        let b = ctx.symbol("b");
        // Sorted n-ary operands put the symbols in deterministic order;
        // freezing a and b leaves a known prefix and an interior hole.
        let e = a + b + x + 0.1 + 0.2;
        let program = ctx.compile_program(&[("e", e)]);
        let frozen = FrozenSymbols::new([("a", 0.1), ("b", 0.2)]);
        let spec = specialize(&program, &frozen, &SweepFacts::default());

        let mut batch = BatchBindings::new(2);
        batch.set_values("x", vec![1e-17, 3.25]);
        let mut full = batch.clone();
        full.set_scalar("a", 0.1);
        full.set_scalar("b", 0.2);
        assert_eq!(outputs(&spec, &batch), outputs(&program, &full));
    }

    #[test]
    fn guard_facts_delete_selects_without_frozen_condition() {
        let ctx = Context::new();
        let x = ctx.symbol("x");
        let z = ctx.symbol("z");
        let guard = ctx.cmp(CmpOp::Ge, z, ctx.constant(2.0));
        let e = ctx.select(guard, x * 3.0, x * 5.0);
        let program = ctx.compile_program(&[("e", e)]);
        let select_slot = (0..program.len())
            .find(|&s| matches!(program.instr(s), crate::Instr::Select(..)))
            .unwrap() as u32;

        // An external analysis proved z < 2 over the sweep domain.
        let spec = specialize(
            &program,
            &FrozenSymbols::default(),
            &SweepFacts::from_guards(vec![GuardFact {
                slot: select_slot,
                taken: false,
            }]),
        );
        assert!(!spec.instrs().any(|i| matches!(i, crate::Instr::Select(..))));
        let mut batch = BatchBindings::new(2);
        batch.set_values("x", vec![1.0, 2.0]);
        batch.set_values("z", vec![0.0, 1.0]); // in-domain rows
        assert_eq!(outputs(&spec, &batch), outputs(&program, &batch));
    }

    #[test]
    fn all_known_roots_materialize_as_constants() {
        let ctx = Context::new();
        let z = ctx.symbol("z");
        let program = ctx.compile_program(&[("a", z * 2.0 + 1.0), ("b", z.floor())]);
        let spec = specialize(
            &program,
            &FrozenSymbols::new([("z", 3.5)]),
            &SweepFacts::default(),
        );
        assert_eq!(spec.len(), 2);
        assert!(spec.symbols().is_empty());

        let batch = BatchBindings::new(3);
        let got = outputs(&spec, &batch);
        assert_eq!(got[0], vec![8.0; 3]);
        assert_eq!(got[1], vec![3.0; 3]);
    }

    #[test]
    fn residual_table_only_requires_surviving_symbols() {
        let ctx = Context::new();
        let x = ctx.symbol("x");
        let y = ctx.symbol("y");
        let z = ctx.symbol("z");
        let guard = ctx.cmp(CmpOp::Gt, z, ctx.constant(0.0));
        // y is only read in the untaken branch.
        let e = ctx.select(guard, x + 1.0, y * 2.0);
        let program = ctx.compile_program(&[("e", e)]);
        let spec = specialize(
            &program,
            &FrozenSymbols::new([("z", 1.0)]),
            &SweepFacts::default(),
        );
        assert_eq!(spec.symbols().names(), &["x".to_string()]);

        // Binding only x works; the original would demand y and z too.
        let mut batch = BatchBindings::new(2);
        batch.set_values("x", vec![1.0, 2.0]);
        assert_eq!(outputs(&spec, &batch)[0], vec![2.0, 3.0]);
    }

    #[test]
    fn fingerprint_is_order_independent_and_value_sensitive() {
        let a = FrozenSymbols::new([("x", 1.0), ("y", 2.0)]);
        let b = FrozenSymbols::new([("y", 2.0), ("x", 1.0)]);
        let c = FrozenSymbols::new([("x", 1.0), ("y", 2.5)]);
        assert_eq!(a.fingerprint(), b.fingerprint());
        assert_ne!(a.fingerprint(), c.fingerprint());
    }

    #[test]
    fn restriction_drops_unread_symbols() {
        let ctx = Context::new();
        let x = ctx.symbol("x");
        let program = ctx.compile_program(&[("e", x + 1.0)]);
        let frozen = FrozenSymbols::new([("x", 1.0), ("unrelated", 9.0)]);
        let restricted = frozen.restricted_to(program.symbols());
        assert_eq!(restricted.pairs(), &[("x".to_string(), 1.0)]);
    }

    #[test]
    fn specialized_ids_are_fresh() {
        let ctx = Context::new();
        let x = ctx.symbol("x");
        let program = ctx.compile_program(&[("e", x + 1.0)]);
        let spec = specialize(&program, &FrozenSymbols::default(), &SweepFacts::default());
        assert_ne!(program.id(), spec.id());
        assert_ne!(spec.id(), 0);
    }
}
