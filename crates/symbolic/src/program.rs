//! Fused multi-root evaluation programs with register allocation and
//! broadcast lanes.
//!
//! A [`Program`] compiles *many* expression roots from one [`Context`]
//! into a single SSA instruction stream. Compared to evaluating each
//! root through its own [`Tape`](crate::Tape), a fused program:
//!
//! * shares work across roots — hash-consing means structurally equal
//!   sub-expressions across all roots land in the same SSA slot and are
//!   computed exactly once per batch (cross-root CSE);
//! * allocates *registers* instead of one column per instruction — a
//!   compile-time liveness pass assigns each slot a register from a free
//!   list, and an [`EvalWorkspace`] keeps the register columns alive
//!   between calls, so steady-state batched evaluation performs **zero**
//!   per-instruction column allocations;
//! * computes *broadcast lanes* — any slot whose inputs are all uniform
//!   across the batch (constants, symbols bound to
//!   [`Column::Scalar`](crate::tape::Column)) is computed once as a
//!   single `f64` rather than `n` times, and uniformity propagates
//!   through the instruction stream at evaluation time;
//! * stores variadic operands in one flat arena (`Vec<u32>` plus
//!   `(start, len)` ranges) rather than a heap `Vec` per instruction;
//! * interns symbols in a [`SymbolTable`] so a
//!   [`BatchBindings`](crate::BatchBindings) is resolved to columns once
//!   per evaluation, not once per root per symbol.
//!
//! Numerical behavior is bit-identical to per-root [`Tape`] evaluation:
//! kernels fold operands in the same order, and batch rows that evaluate
//! non-finite are mapped to `f64::INFINITY` exactly as
//! [`Tape::eval_batch`](crate::Tape::eval_batch) does.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

use crate::error::SymbolicError;
use crate::node::{CmpOp, ExprId, Node, SymbolId};
use crate::tape::{BatchBindings, Column};

/// Process-wide program id source. Ids start at 1 so that a fresh
/// [`EvalWorkspace`] (`prepared == 0`) is never considered prepared.
static NEXT_PROGRAM_ID: AtomicU64 = AtomicU64::new(1);

pub(crate) fn next_program_id() -> u64 {
    NEXT_PROGRAM_ID.fetch_add(1, Ordering::Relaxed)
}

/// Interned symbol names with O(1) name→input-slot lookup.
#[derive(Debug, Clone, Default)]
pub struct SymbolTable {
    names: Vec<String>,
    index: HashMap<String, u32>,
}

impl SymbolTable {
    /// Interns `name`, returning its input slot.
    pub(crate) fn intern(&mut self, name: &str) -> u32 {
        if let Some(&i) = self.index.get(name) {
            return i;
        }
        let i = self.names.len() as u32;
        self.names.push(name.to_owned());
        self.index.insert(name.to_owned(), i);
        i
    }

    /// Symbol names in input-slot order.
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// Number of interned symbols.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True when no symbols are interned.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Input slot of `name`, if interned.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.index.get(name).map(|&i| i as usize)
    }

    /// Resolves scalar `(name, value)` bindings into input-slot order in
    /// one pass over `bindings`.
    ///
    /// Every binding must name a symbol the program actually reads, and
    /// a symbol may be bound more than once only with the same value —
    /// a binding that silently went nowhere (or silently lost to an
    /// earlier conflicting one) is almost always a caller bug.
    ///
    /// # Errors
    ///
    /// [`SymbolicError::UnboundSymbol`] if any interned symbol has no
    /// binding; [`SymbolicError::UnknownBinding`] if a binding names a
    /// symbol that is not interned; [`SymbolicError::ConflictingBinding`]
    /// if a symbol is bound twice with different values.
    pub fn resolve_scalars(&self, bindings: &[(&str, f64)]) -> Result<Vec<f64>, SymbolicError> {
        let mut inputs = vec![f64::NAN; self.names.len()];
        let mut filled = vec![false; self.names.len()];
        let mut remaining = self.names.len();
        for (name, v) in bindings {
            let Some(&i) = self.index.get(*name) else {
                return Err(SymbolicError::UnknownBinding((*name).to_owned()));
            };
            let i = i as usize;
            if filled[i] {
                // Duplicate bindings are tolerated only when they agree
                // (NaN agreeing with NaN, so a repeat never conflicts
                // with itself).
                let same = inputs[i] == *v || (inputs[i].is_nan() && v.is_nan());
                if !same {
                    return Err(SymbolicError::ConflictingBinding {
                        name: (*name).to_owned(),
                        first: inputs[i],
                        second: *v,
                    });
                }
                continue;
            }
            filled[i] = true;
            remaining -= 1;
            inputs[i] = *v;
        }
        if remaining > 0 {
            let missing = self
                .names
                .iter()
                .zip(&filled)
                .find(|(_, done)| !**done)
                .map(|(name, _)| name.clone())
                .expect("remaining > 0 implies an unfilled slot");
            return Err(SymbolicError::UnboundSymbol(missing));
        }
        Ok(inputs)
    }

    /// Resolves batch bindings to columns in input-slot order, validating
    /// column lengths against the batch length.
    pub(crate) fn resolve_batch<'b>(
        &self,
        bindings: &'b BatchBindings,
    ) -> Result<Vec<&'b Column>, SymbolicError> {
        let n = bindings.len();
        let mut cols = Vec::with_capacity(self.names.len());
        for name in &self.names {
            let col = bindings
                .column(name)
                .ok_or_else(|| SymbolicError::UnboundSymbol(name.clone()))?;
            if let Column::Values(v) = col {
                if v.len() != n {
                    return Err(SymbolicError::BatchLengthMismatch {
                        expected: n,
                        got: v.len(),
                    });
                }
            }
            cols.push(col);
        }
        Ok(cols)
    }
}

/// One SSA instruction. Operands are *slot* indices (the instruction's
/// position in the stream); variadic operands live in the program's flat
/// arena as a `(start, len)` range.
#[derive(Debug, Clone, Copy)]
pub(crate) enum Op {
    Const(f64),
    /// Reads input slot `u32` of the [`SymbolTable`].
    Sym(u32),
    Add {
        start: u32,
        len: u32,
    },
    Mul {
        start: u32,
        len: u32,
    },
    Min {
        start: u32,
        len: u32,
    },
    Max {
        start: u32,
        len: u32,
    },
    Div(u32, u32),
    Floor(u32),
    Ceil(u32),
    Cmp(CmpOp, u32, u32),
    Select(u32, u32, u32),
    /// Fused `(a * b) + c` with *two* roundings — the peephole pass
    /// never emits hardware FMA, so results stay bit-identical to the
    /// unfused `Mul` + `Add` pair.
    MulAdd(u32, u32, u32),
    /// Fused `if cmp(a, b) { t } else { f }` (guarded select). Exact
    /// because `Cmp` only ever produces `1.0`/`0.0` and `Select` tests
    /// `!= 0.0`.
    SelectCmp(CmpOp, u32, u32, u32, u32),
    /// Fused `(a / b).floor()` (integer division pattern).
    DivFloor(u32, u32),
    /// Fused `(a / b).ceil()` (rounding-up division pattern).
    DivCeil(u32, u32),
}

/// A read-only view of one SSA instruction of a [`Program`], for
/// analysis passes (e.g. the `mist-irlint` static analyzer).
///
/// Scalar `u32` operands and the borrowed slices hold *slot* indices
/// into the instruction stream; [`Instr::Sym`] holds an input slot of
/// the program's [`SymbolTable`]. The variants mirror the evaluation
/// semantics documented on [`crate::Node`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Instr<'p> {
    /// A finite constant.
    Const(f64),
    /// Reads input slot `u32` of the symbol table.
    Sym(u32),
    /// N-ary sum over the operand slots.
    Add(&'p [u32]),
    /// N-ary product over the operand slots.
    Mul(&'p [u32]),
    /// N-ary minimum over the operand slots.
    Min(&'p [u32]),
    /// N-ary maximum over the operand slots.
    Max(&'p [u32]),
    /// `lhs / rhs`.
    Div(u32, u32),
    /// `floor(x)`.
    Floor(u32),
    /// `ceil(x)`.
    Ceil(u32),
    /// Comparison producing `1.0` / `0.0`.
    Cmp(CmpOp, u32, u32),
    /// `if cond != 0 { then } else { other }` as `Select(cond, then, other)`.
    Select(u32, u32, u32),
    /// Fused `(a * b) + c` as `MulAdd(a, b, c)`, rounded twice exactly
    /// like the separate `Mul` and `Add` (never a hardware FMA).
    MulAdd(u32, u32, u32),
    /// Fused `if cmp(a, b) { t } else { f }` as
    /// `SelectCmp(op, a, b, t, f)`.
    SelectCmp(CmpOp, u32, u32, u32, u32),
    /// Fused `(a / b).floor()` as `DivFloor(a, b)`.
    DivFloor(u32, u32),
    /// Fused `(a / b).ceil()` as `DivCeil(a, b)`.
    DivCeil(u32, u32),
}

impl Instr<'_> {
    /// Calls `f` for every operand slot, in evaluation order.
    pub fn for_each_operand(&self, mut f: impl FnMut(u32)) {
        match *self {
            Instr::Const(_) | Instr::Sym(_) => {}
            Instr::Add(v) | Instr::Mul(v) | Instr::Min(v) | Instr::Max(v) => {
                v.iter().copied().for_each(&mut f)
            }
            Instr::Div(a, b) | Instr::Cmp(_, a, b) => {
                f(a);
                f(b);
            }
            Instr::Floor(a) | Instr::Ceil(a) => f(a),
            Instr::Select(c, a, b) => {
                f(c);
                f(a);
                f(b);
            }
            Instr::MulAdd(a, b, c) => {
                f(a);
                f(b);
                f(c);
            }
            Instr::SelectCmp(_, a, b, t, e) => {
                f(a);
                f(b);
                f(t);
                f(e);
            }
            Instr::DivFloor(a, b) | Instr::DivCeil(a, b) => {
                f(a);
                f(b);
            }
        }
    }
}

/// A fused, immutable multi-root evaluation program.
///
/// Build one with [`Context::compile_program`](crate::Context::compile_program);
/// evaluate batches with [`Program::eval_batch`] against a reusable
/// [`EvalWorkspace`], then read each root's output column from the
/// workspace by root index.
#[derive(Debug, Clone)]
pub struct Program {
    /// Process-unique identity (clones share it — they are the same
    /// program). Keys the tuner's specialization cache and the
    /// workspace's prepared-state check.
    pub(crate) id: u64,
    pub(crate) ops: Vec<Op>,
    /// Flat operand arena for `Add`/`Mul`/`Min`/`Max` (slot indices).
    pub(crate) operands: Vec<u32>,
    /// Destination register per slot (parallel to `ops`).
    pub(crate) regs: Vec<u32>,
    pub(crate) num_regs: usize,
    pub(crate) table: SymbolTable,
    /// Output slot per root.
    pub(crate) roots: Vec<u32>,
    /// Human-readable root labels (for errors and lookup).
    pub(crate) labels: Vec<String>,
}

impl Program {
    /// Compiles `roots` against the arena (called by
    /// `Context::compile_program`).
    pub(crate) fn build(
        nodes: &[Node],
        symbol_names: &[String],
        roots: &[(&str, ExprId)],
    ) -> Program {
        assert!(!roots.is_empty(), "a program needs at least one root");

        let mut slot_of: HashMap<ExprId, u32> = HashMap::new();
        let mut sym_slot: HashMap<SymbolId, u32> = HashMap::new();
        let mut table = SymbolTable::default();
        let mut ops: Vec<Op> = Vec::new();
        let mut operands: Vec<u32> = Vec::new();

        // Iterative post-order DFS, shared across roots: a sub-expression
        // reached from a later root that was already emitted for an
        // earlier one reuses its slot (cross-root CSE).
        enum Frame {
            Visit(ExprId),
            Emit(ExprId),
        }
        for &(_, root) in roots {
            let mut stack = vec![Frame::Visit(root)];
            while let Some(frame) = stack.pop() {
                match frame {
                    Frame::Visit(id) => {
                        if slot_of.contains_key(&id) {
                            continue;
                        }
                        stack.push(Frame::Emit(id));
                        for child in nodes[id.0 as usize].children() {
                            stack.push(Frame::Visit(child));
                        }
                    }
                    Frame::Emit(id) => {
                        if slot_of.contains_key(&id) {
                            continue;
                        }
                        let s = |eid: ExprId| slot_of[&eid];
                        let fold = |v: &Vec<ExprId>, operands: &mut Vec<u32>| {
                            let start = operands.len() as u32;
                            operands.extend(v.iter().map(|e| s(*e)));
                            (start, v.len() as u32)
                        };
                        let op = match &nodes[id.0 as usize] {
                            Node::Const(c) => Op::Const(c.to_f64()),
                            Node::Sym(sid) => {
                                let slot = *sym_slot
                                    .entry(*sid)
                                    .or_insert_with(|| table.intern(&symbol_names[sid.0 as usize]));
                                Op::Sym(slot)
                            }
                            Node::Add(v) => {
                                let (start, len) = fold(v, &mut operands);
                                Op::Add { start, len }
                            }
                            Node::Mul(v) => {
                                let (start, len) = fold(v, &mut operands);
                                Op::Mul { start, len }
                            }
                            Node::Min(v) => {
                                let (start, len) = fold(v, &mut operands);
                                Op::Min { start, len }
                            }
                            Node::Max(v) => {
                                let (start, len) = fold(v, &mut operands);
                                Op::Max { start, len }
                            }
                            Node::Div(a, b) => Op::Div(s(*a), s(*b)),
                            Node::Floor(a) => Op::Floor(s(*a)),
                            Node::Ceil(a) => Op::Ceil(s(*a)),
                            Node::Cmp(op, a, b) => Op::Cmp(*op, s(*a), s(*b)),
                            Node::Select(c, a, b) => Op::Select(s(*c), s(*a), s(*b)),
                        };
                        slot_of.insert(id, ops.len() as u32);
                        ops.push(op);
                    }
                }
            }
        }

        let root_slots: Vec<u32> = roots.iter().map(|&(_, id)| slot_of[&id]).collect();
        let labels: Vec<String> = roots.iter().map(|&(name, _)| name.to_owned()).collect();
        let (regs, num_regs) = allocate_registers(&ops, &operands, &root_slots);

        mist_telemetry::gauge_max("symbolic.program.instrs", ops.len() as f64);
        mist_telemetry::gauge_max("symbolic.program.regs", num_regs as f64);
        Program {
            id: next_program_id(),
            ops,
            operands,
            regs,
            num_regs,
            table,
            roots: root_slots,
            labels,
        }
    }

    /// Process-unique program identity. Clones share the id (they are
    /// the same program); every compile or specialization produces a
    /// fresh one. Suitable as a cache key together with a
    /// frozen-symbol fingerprint.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The interned symbol table (names in input-slot order).
    pub fn symbols(&self) -> &SymbolTable {
        &self.table
    }

    /// Number of SSA instructions (a proxy for evaluation cost).
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True when the program has no instructions (never the case for
    /// compiled programs; provided for `len()` symmetry).
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Number of register columns a workspace materializes at most.
    pub fn num_regs(&self) -> usize {
        self.num_regs
    }

    /// Number of roots.
    pub fn num_roots(&self) -> usize {
        self.roots.len()
    }

    /// Root labels, in root-index order.
    pub fn root_labels(&self) -> &[String] {
        &self.labels
    }

    /// Root index of the root labeled `name`.
    pub fn root_index(&self, name: &str) -> Option<usize> {
        self.labels.iter().position(|l| l == name)
    }

    /// Output slot per root, in root-index order.
    pub fn root_slots(&self) -> &[u32] {
        &self.roots
    }

    /// Read-only view of the instruction at `slot` (analysis passes).
    ///
    /// # Panics
    ///
    /// Panics if `slot >= self.len()`.
    pub fn instr(&self, slot: usize) -> Instr<'_> {
        let arena = |start: u32, len: u32| &self.operands[start as usize..(start + len) as usize];
        match self.ops[slot] {
            Op::Const(c) => Instr::Const(c),
            Op::Sym(s) => Instr::Sym(s),
            Op::Add { start, len } => Instr::Add(arena(start, len)),
            Op::Mul { start, len } => Instr::Mul(arena(start, len)),
            Op::Min { start, len } => Instr::Min(arena(start, len)),
            Op::Max { start, len } => Instr::Max(arena(start, len)),
            Op::Div(a, b) => Instr::Div(a, b),
            Op::Floor(a) => Instr::Floor(a),
            Op::Ceil(a) => Instr::Ceil(a),
            Op::Cmp(op, a, b) => Instr::Cmp(op, a, b),
            Op::Select(c, a, b) => Instr::Select(c, a, b),
            Op::MulAdd(a, b, c) => Instr::MulAdd(a, b, c),
            Op::SelectCmp(op, a, b, t, e) => Instr::SelectCmp(op, a, b, t, e),
            Op::DivFloor(a, b) => Instr::DivFloor(a, b),
            Op::DivCeil(a, b) => Instr::DivCeil(a, b),
        }
    }

    /// Iterates over every instruction in stream (slot) order.
    pub fn instrs(&self) -> impl ExactSizeIterator<Item = Instr<'_>> + '_ {
        (0..self.ops.len()).map(|i| self.instr(i))
    }

    /// Instruction stream (crate-internal introspection for tests).
    #[cfg(test)]
    pub(crate) fn ops(&self) -> &[Op] {
        &self.ops
    }

    /// Evaluates every root over a batch, writing one output column per
    /// root into `ws` (read them back with [`EvalWorkspace::output`]).
    ///
    /// Rows that evaluate non-finite become `f64::INFINITY`, matching
    /// [`Tape::eval_batch`](crate::Tape::eval_batch). The workspace's
    /// register and output columns are reused across calls: after the
    /// first call with a given batch size, evaluation allocates nothing.
    ///
    /// # Errors
    ///
    /// [`SymbolicError::UnboundSymbol`] if a program symbol is missing
    /// from `bindings`; [`SymbolicError::BatchLengthMismatch`] if a bound
    /// column's length differs from the batch length.
    pub fn eval_batch(
        &self,
        bindings: &BatchBindings,
        ws: &mut EvalWorkspace,
    ) -> Result<(), SymbolicError> {
        let n = bindings.len();
        let cols = self.table.resolve_batch(bindings)?;

        // Steady state (same program as last call): the workspace is
        // already sized, so only the per-slot lane tags reset.
        if ws.prepared != self.id {
            ws.prepare(self);
        } else {
            ws.lanes.clear();
        }

        for (slot, op) in self.ops.iter().enumerate() {
            let lane = self.eval_op(*op, slot, n, &cols, ws);
            ws.lanes.push(lane);
        }

        // Materialize root outputs with the non-finite → INFINITY mapping.
        for (i, &root) in self.roots.iter().enumerate() {
            let lane = ws.lanes[root as usize];
            let out = &mut ws.outputs[i];
            out.clear();
            match lane {
                Lane::Uniform(v) => {
                    let v = if v.is_finite() { v } else { f64::INFINITY };
                    out.resize(n, v);
                }
                Lane::Sym(s) => {
                    let Column::Values(src) = cols[s as usize] else {
                        unreachable!("Sym lane always references a Values column")
                    };
                    out.extend(src.iter().map(|&v| finite_or_inf(v)));
                }
                Lane::Reg(r) => {
                    // `out` is borrowed from ws.outputs, src from ws.regs.
                    let src = std::mem::take(&mut ws.regs[r as usize]);
                    out.extend(src.iter().map(|&v| finite_or_inf(v)));
                    ws.regs[r as usize] = src;
                }
            }
        }
        mist_telemetry::gauge_max(
            "symbolic.workspace.columns",
            (ws.regs.len() + ws.outputs.len()) as f64,
        );
        Ok(())
    }

    /// Evaluates every root at a single scalar point, appending one value
    /// per root to `out` (cleared first).
    ///
    /// `inputs[i]` binds symbol `self.symbols().names()[i]`. Unlike
    /// batched evaluation, a non-finite root is an error, matching
    /// [`Tape::eval_slots`](crate::Tape::eval_slots).
    ///
    /// # Errors
    ///
    /// [`SymbolicError::NonFinite`] naming the offending root.
    pub fn eval_scalar(&self, inputs: &[f64], out: &mut Vec<f64>) -> Result<(), SymbolicError> {
        let slots = self.scalar_slots(inputs);
        out.clear();
        for (i, &root) in self.roots.iter().enumerate() {
            let v = slots[root as usize];
            if !v.is_finite() {
                return Err(SymbolicError::NonFinite {
                    detail: format!("root `{}` of fused program", self.labels[i]),
                });
            }
            out.push(v);
        }
        Ok(())
    }

    /// Evaluates a single root at a scalar point.
    ///
    /// All slots feeding any root are computed (the stream is fused), so
    /// prefer [`Program::eval_scalar`] when more than one root is needed.
    ///
    /// # Errors
    ///
    /// [`SymbolicError::NonFinite`] if the requested root's value is not
    /// finite.
    pub fn eval_scalar_root(&self, root: usize, inputs: &[f64]) -> Result<f64, SymbolicError> {
        let slots = self.scalar_slots(inputs);
        let v = slots[self.roots[root] as usize];
        if !v.is_finite() {
            return Err(SymbolicError::NonFinite {
                detail: format!("root `{}` evaluation result", self.labels[root]),
            });
        }
        Ok(v)
    }

    /// Computes every slot's scalar value in stream order.
    fn scalar_slots(&self, inputs: &[f64]) -> Vec<f64> {
        debug_assert_eq!(inputs.len(), self.table.len());
        let mut slots: Vec<f64> = Vec::with_capacity(self.ops.len());
        for op in &self.ops {
            let v = self.scalar_op(*op, &slots, inputs);
            slots.push(v);
        }
        slots
    }

    /// Scalar semantics of one op (identical to `Tape::eval_slots`).
    fn scalar_op(&self, op: Op, slots: &[f64], inputs: &[f64]) -> f64 {
        let arena = |start: u32, len: u32| {
            self.operands[start as usize..(start + len) as usize]
                .iter()
                .map(|&s| slots[s as usize])
        };
        match op {
            Op::Const(c) => c,
            Op::Sym(i) => inputs[i as usize],
            Op::Add { start, len } => arena(start, len).sum(),
            Op::Mul { start, len } => arena(start, len).product(),
            Op::Min { start, len } => arena(start, len).fold(f64::INFINITY, f64::min),
            Op::Max { start, len } => arena(start, len).fold(f64::NEG_INFINITY, f64::max),
            Op::Div(a, b) => slots[a as usize] / slots[b as usize],
            Op::Floor(a) => slots[a as usize].floor(),
            Op::Ceil(a) => slots[a as usize].ceil(),
            Op::Cmp(op, a, b) => op.apply(slots[a as usize], slots[b as usize]),
            Op::Select(c, a, b) => {
                if slots[c as usize] != 0.0 {
                    slots[a as usize]
                } else {
                    slots[b as usize]
                }
            }
            Op::MulAdd(a, b, c) => slots[a as usize] * slots[b as usize] + slots[c as usize],
            Op::SelectCmp(op, a, b, t, e) => {
                if op.apply(slots[a as usize], slots[b as usize]) != 0.0 {
                    slots[t as usize]
                } else {
                    slots[e as usize]
                }
            }
            Op::DivFloor(a, b) => (slots[a as usize] / slots[b as usize]).floor(),
            Op::DivCeil(a, b) => (slots[a as usize] / slots[b as usize]).ceil(),
        }
    }

    /// Computes one op's lane over the batch, materializing into the
    /// slot's register only when the result varies across rows.
    fn eval_op(
        &self,
        op: Op,
        slot: usize,
        n: usize,
        cols: &[&Column],
        ws: &mut EvalWorkspace,
    ) -> Lane {
        // Symbols never materialize: a scalar binding is a broadcast
        // lane, a column binding is read in place.
        if let Op::Sym(s) = op {
            return match cols[s as usize] {
                Column::Scalar(v) => Lane::Uniform(*v),
                Column::Values(_) => Lane::Sym(s),
            };
        }
        // Uniform fast path: when every operand is uniform, run the
        // scalar kernel once — the broadcast lane.
        if let Some(v) = self.uniform_value(op, &ws.lanes) {
            return Lane::Uniform(v);
        }

        let dst = self.regs[slot] as usize;
        // The register allocator guarantees `dst` is not a register of
        // any live operand, so taking the buffer out cannot invalidate
        // an operand view.
        let mut buf = std::mem::take(&mut ws.regs[dst]);
        // Every kernel overwrites the full destination, so stale
        // contents from the previous batch never leak; only a batch-size
        // change pays the resize.
        if buf.len() != n {
            buf.clear();
            buf.resize(n, 0.0);
        }
        {
            let view = |s: u32| lane_view(ws.lanes[s as usize], cols, &ws.regs);
            match op {
                Op::Const(_) | Op::Sym(_) => {
                    unreachable!("consts and bound symbols never materialize")
                }
                Op::Add { start, len } => {
                    fold_kernel(&mut buf, &self.operands, start, len, view, |x, y| x + y)
                }
                Op::Mul { start, len } => {
                    fold_kernel(&mut buf, &self.operands, start, len, view, |x, y| x * y)
                }
                Op::Min { start, len } => {
                    fold_kernel(&mut buf, &self.operands, start, len, view, f64::min)
                }
                Op::Max { start, len } => {
                    fold_kernel(&mut buf, &self.operands, start, len, view, f64::max)
                }
                Op::Div(a, b) => bin_kernel(&mut buf, view(a), view(b), |x, y| x / y),
                Op::Floor(a) => unary_kernel(&mut buf, view(a), f64::floor),
                Op::Ceil(a) => unary_kernel(&mut buf, view(a), f64::ceil),
                // The comparison operator is dispatched once per
                // instruction, not once per row: each arm monomorphizes
                // a branchless chunked kernel (`bool as f64` produces
                // exactly the 1.0/0.0 of `CmpOp::apply`).
                Op::Cmp(cmp, a, b) => {
                    let (va, vb) = (view(a), view(b));
                    match cmp {
                        CmpOp::Le => bin_kernel(&mut buf, va, vb, |x, y| f64::from(x <= y)),
                        CmpOp::Lt => bin_kernel(&mut buf, va, vb, |x, y| f64::from(x < y)),
                        CmpOp::Ge => bin_kernel(&mut buf, va, vb, |x, y| f64::from(x >= y)),
                        CmpOp::Gt => bin_kernel(&mut buf, va, vb, |x, y| f64::from(x > y)),
                        CmpOp::Eq => bin_kernel(&mut buf, va, vb, |x, y| f64::from(x == y)),
                    }
                }
                Op::Select(c, a, b) => select_kernel(&mut buf, view(c), view(a), view(b)),
                // Superinstructions only appear in peephole-fused
                // programs, which the compiled backend executes; these
                // interpreter arms exist for the bit-identity tests and
                // keep the same two-pass rounding as the unfused pair.
                Op::MulAdd(a, b, c) => {
                    bin_kernel(&mut buf, view(a), view(b), |x, y| x * y);
                    match view(c) {
                        ArgView::Uniform(v) => fold_uniform(&mut buf, v, |x, y| x + y),
                        ArgView::Col(col) => fold_col(&mut buf, col, |x, y| x + y),
                    }
                }
                Op::SelectCmp(cmp, a, b, t, e) => {
                    let (va, vb, vt, ve) = (view(a), view(b), view(t), view(e));
                    let at = |v: ArgView<'_>, i: usize| match v {
                        ArgView::Uniform(x) => x,
                        ArgView::Col(c) => c[i],
                    };
                    for (i, x) in buf.iter_mut().enumerate() {
                        *x = if cmp.apply(at(va, i), at(vb, i)) != 0.0 {
                            at(vt, i)
                        } else {
                            at(ve, i)
                        };
                    }
                }
                Op::DivFloor(a, b) => {
                    bin_kernel(&mut buf, view(a), view(b), |x, y| (x / y).floor())
                }
                Op::DivCeil(a, b) => bin_kernel(&mut buf, view(a), view(b), |x, y| (x / y).ceil()),
            }
        }
        ws.regs[dst] = buf;
        Lane::Reg(self.regs[slot])
    }

    /// When all operands of `op` are uniform, the uniform result.
    fn uniform_value(&self, op: Op, lanes: &[Lane]) -> Option<f64> {
        let u = |s: u32| match lanes[s as usize] {
            Lane::Uniform(v) => Some(v),
            _ => None,
        };
        // Fold from the first operand (no synthetic identity element), in
        // operand order — the exact fold the batched column kernels use,
        // so uniform and materialized results are bit-identical.
        let fold_u = |start: u32, len: u32, f: fn(f64, f64) -> f64| {
            let args = &self.operands[start as usize..(start + len) as usize];
            let mut acc = u(args[0])?;
            for &s in &args[1..] {
                acc = f(acc, u(s)?);
            }
            Some(acc)
        };
        match op {
            Op::Const(c) => Some(c),
            // Symbols are classified by the caller from their binding.
            Op::Sym(_) => None,
            Op::Add { start, len } => fold_u(start, len, |x, y| x + y),
            Op::Mul { start, len } => fold_u(start, len, |x, y| x * y),
            Op::Min { start, len } => fold_u(start, len, f64::min),
            Op::Max { start, len } => fold_u(start, len, f64::max),
            Op::Div(a, b) => Some(u(a)? / u(b)?),
            Op::Floor(a) => Some(u(a)?.floor()),
            Op::Ceil(a) => Some(u(a)?.ceil()),
            Op::Cmp(cmp, a, b) => Some(cmp.apply(u(a)?, u(b)?)),
            Op::Select(c, a, b) => {
                // A uniform condition picks one branch for the whole
                // batch; the result is uniform only if that branch is.
                let cv = u(c)?;
                if cv != 0.0 {
                    u(a)
                } else {
                    u(b)
                }
            }
            Op::MulAdd(a, b, c) => Some(u(a)? * u(b)? + u(c)?),
            Op::SelectCmp(cmp, a, b, t, e) => {
                if cmp.apply(u(a)?, u(b)?) != 0.0 {
                    u(t)
                } else {
                    u(e)
                }
            }
            Op::DivFloor(a, b) => Some((u(a)? / u(b)?).floor()),
            Op::DivCeil(a, b) => Some((u(a)? / u(b)?).ceil()),
        }
    }
}

fn finite_or_inf(v: f64) -> f64 {
    if v.is_finite() {
        v
    } else {
        f64::INFINITY
    }
}

/// Compile-time slot liveness + linear-scan register allocation.
///
/// Returns `(dst register per slot, register count)`. Registers are
/// reused once the last reader of a slot has executed; root slots stay
/// live to the end. The destination register of an instruction is
/// allocated *before* its operands' registers are freed, so a
/// destination never aliases a same-instruction operand — which keeps
/// the evaluation kernels free to write the destination while reading
/// operand views.
pub(crate) fn allocate_registers(ops: &[Op], operands: &[u32], roots: &[u32]) -> (Vec<u32>, usize) {
    let num = ops.len();
    let mut last_use: Vec<u32> = (0..num as u32).collect();
    let each_operand = |op: &Op, f: &mut dyn FnMut(u32)| match *op {
        Op::Const(_) | Op::Sym(_) => {}
        Op::Add { start, len }
        | Op::Mul { start, len }
        | Op::Min { start, len }
        | Op::Max { start, len } => {
            for &s in &operands[start as usize..(start + len) as usize] {
                f(s);
            }
        }
        Op::Div(a, b) | Op::Cmp(_, a, b) => {
            f(a);
            f(b);
        }
        Op::Floor(a) | Op::Ceil(a) => f(a),
        Op::Select(c, a, b) => {
            f(c);
            f(a);
            f(b);
        }
        Op::MulAdd(a, b, c) => {
            f(a);
            f(b);
            f(c);
        }
        Op::SelectCmp(_, a, b, t, e) => {
            f(a);
            f(b);
            f(t);
            f(e);
        }
        Op::DivFloor(a, b) | Op::DivCeil(a, b) => {
            f(a);
            f(b);
        }
    };
    for (i, op) in ops.iter().enumerate() {
        each_operand(op, &mut |s| last_use[s as usize] = i as u32);
    }
    for &r in roots {
        last_use[r as usize] = u32::MAX;
    }

    let mut regs = vec![0u32; num];
    let mut free: Vec<u32> = Vec::new();
    let mut freed = vec![false; num];
    let mut num_regs = 0usize;
    for (i, op) in ops.iter().enumerate() {
        regs[i] = free.pop().unwrap_or_else(|| {
            num_regs += 1;
            (num_regs - 1) as u32
        });
        each_operand(op, &mut |s| {
            let s = s as usize;
            if last_use[s] == i as u32 && !freed[s] {
                freed[s] = true;
                free.push(regs[s]);
            }
        });
    }
    (regs, num_regs)
}

/// An operand's view over the batch: one value for all rows, or a column.
#[derive(Clone, Copy)]
enum ArgView<'a> {
    Uniform(f64),
    Col(&'a [f64]),
}

/// Evaluation-time classification of a slot's value across the batch.
#[derive(Debug, Clone, Copy)]
enum Lane {
    /// Same value in every row (broadcast lane); never materialized.
    Uniform(f64),
    /// Borrows the column bound to input slot `u32` — symbol columns are
    /// read in place, never copied into a register.
    Sym(u32),
    /// Materialized in workspace register `u32`.
    Reg(u32),
}

fn lane_view<'a>(lane: Lane, cols: &[&'a Column], regs: &'a [Vec<f64>]) -> ArgView<'a> {
    match lane {
        Lane::Uniform(v) => ArgView::Uniform(v),
        Lane::Sym(s) => match cols[s as usize] {
            Column::Values(v) => ArgView::Col(v),
            Column::Scalar(_) => unreachable!("scalar-bound symbols become uniform lanes"),
        },
        Lane::Reg(r) => ArgView::Col(&regs[r as usize]),
    }
}

/// Row-chunk width of the columnar kernels. Eight `f64`s span one or
/// two SIMD registers on every target we care about, and a fixed-width
/// inner loop over a `chunks_exact` window is what the autovectorizer
/// turns into straight-line vector code.
const CHUNK: usize = 8;

/// `dst[i] = f(src[i])`, chunked with a scalar tail.
#[inline]
fn map1(dst: &mut [f64], src: &[f64], f: impl Fn(f64) -> f64 + Copy) {
    let mut d = dst.chunks_exact_mut(CHUNK);
    let mut s = src.chunks_exact(CHUNK);
    for (dc, sc) in (&mut d).zip(&mut s) {
        for (x, y) in dc.iter_mut().zip(sc) {
            *x = f(*y);
        }
    }
    for (x, y) in d.into_remainder().iter_mut().zip(s.remainder()) {
        *x = f(*y);
    }
}

/// `dst[i] = f(a[i], b[i])`, chunked with a scalar tail.
#[inline]
fn map2(dst: &mut [f64], a: &[f64], b: &[f64], f: impl Fn(f64, f64) -> f64 + Copy) {
    let mut d = dst.chunks_exact_mut(CHUNK);
    let mut sa = a.chunks_exact(CHUNK);
    let mut sb = b.chunks_exact(CHUNK);
    for ((dc, ac), bc) in (&mut d).zip(&mut sa).zip(&mut sb) {
        for ((x, p), q) in dc.iter_mut().zip(ac).zip(bc) {
            *x = f(*p, *q);
        }
    }
    let tail = d
        .into_remainder()
        .iter_mut()
        .zip(sa.remainder())
        .zip(sb.remainder());
    for ((x, p), q) in tail {
        *x = f(*p, *q);
    }
}

/// `dst[i] = f(a[i], b[i], c[i])`, chunked with a scalar tail.
#[inline]
fn map3(dst: &mut [f64], a: &[f64], b: &[f64], c: &[f64], f: impl Fn(f64, f64, f64) -> f64 + Copy) {
    let mut d = dst.chunks_exact_mut(CHUNK);
    let mut sa = a.chunks_exact(CHUNK);
    let mut sb = b.chunks_exact(CHUNK);
    let mut sc = c.chunks_exact(CHUNK);
    for (((dc, ac), bc), cc) in (&mut d).zip(&mut sa).zip(&mut sb).zip(&mut sc) {
        for (((x, p), q), r) in dc.iter_mut().zip(ac).zip(bc).zip(cc) {
            *x = f(*p, *q, *r);
        }
    }
    let tail = d
        .into_remainder()
        .iter_mut()
        .zip(sa.remainder())
        .zip(sb.remainder())
        .zip(sc.remainder());
    for (((x, p), q), r) in tail {
        *x = f(*p, *q, *r);
    }
}

/// In-place `dst[i] = f(dst[i], v)`, chunked with a scalar tail.
#[inline]
fn fold_uniform(dst: &mut [f64], v: f64, f: impl Fn(f64, f64) -> f64 + Copy) {
    let mut d = dst.chunks_exact_mut(CHUNK);
    for dc in &mut d {
        for x in dc {
            *x = f(*x, v);
        }
    }
    for x in d.into_remainder() {
        *x = f(*x, v);
    }
}

/// In-place `dst[i] = f(dst[i], src[i])`, chunked with a scalar tail.
#[inline]
fn fold_col(dst: &mut [f64], src: &[f64], f: impl Fn(f64, f64) -> f64 + Copy) {
    let mut d = dst.chunks_exact_mut(CHUNK);
    let mut s = src.chunks_exact(CHUNK);
    for (dc, sc) in (&mut d).zip(&mut s) {
        for (x, y) in dc.iter_mut().zip(sc) {
            *x = f(*x, *y);
        }
    }
    for (x, y) in d.into_remainder().iter_mut().zip(s.remainder()) {
        *x = f(*x, *y);
    }
}

/// `dst = fold(f, operands)` in operand order, exactly as the per-tape
/// batched evaluator folds: initialize from the first operand, then fold
/// the rest left to right. Each operand's lane is resolved to a
/// uniform/column view *once*, outside the row loop, so the inner loops
/// are tight chunked passes over raw slices.
fn fold_kernel<'a>(
    dst: &mut [f64],
    arena: &[u32],
    start: u32,
    len: u32,
    view: impl Fn(u32) -> ArgView<'a>,
    f: impl Fn(f64, f64) -> f64 + Copy,
) {
    let args = &arena[start as usize..(start + len) as usize];
    match view(args[0]) {
        ArgView::Uniform(v) => dst.fill(v),
        ArgView::Col(c) => dst.copy_from_slice(c),
    }
    for &s in &args[1..] {
        match view(s) {
            ArgView::Uniform(v) => fold_uniform(dst, v, f),
            ArgView::Col(c) => fold_col(dst, c, f),
        }
    }
}

fn unary_kernel(dst: &mut [f64], a: ArgView<'_>, f: impl Fn(f64) -> f64 + Copy) {
    match a {
        ArgView::Uniform(v) => dst.fill(f(v)),
        ArgView::Col(c) => map1(dst, c, f),
    }
}

fn bin_kernel(dst: &mut [f64], a: ArgView<'_>, b: ArgView<'_>, f: impl Fn(f64, f64) -> f64 + Copy) {
    match (a, b) {
        (ArgView::Uniform(p), ArgView::Uniform(q)) => dst.fill(f(p, q)),
        (ArgView::Uniform(p), ArgView::Col(cb)) => map1(dst, cb, move |y| f(p, y)),
        (ArgView::Col(ca), ArgView::Uniform(q)) => map1(dst, ca, move |x| f(x, q)),
        (ArgView::Col(ca), ArgView::Col(cb)) => map2(dst, ca, cb, f),
    }
}

fn select_kernel(dst: &mut [f64], c: ArgView<'_>, a: ArgView<'_>, b: ArgView<'_>) {
    match c {
        // Uniform condition: the whole batch takes one branch.
        ArgView::Uniform(cv) => {
            let chosen = if cv != 0.0 { a } else { b };
            match chosen {
                ArgView::Uniform(v) => dst.fill(v),
                ArgView::Col(col) => dst.copy_from_slice(col),
            }
        }
        // Varying condition: dispatch on the branch shapes once, then
        // run a branch-shape-specific chunked select (the old path
        // re-matched both branch views on every row).
        ArgView::Col(cc) => match (a, b) {
            (ArgView::Uniform(av), ArgView::Uniform(bv)) => {
                map1(dst, cc, move |c| if c != 0.0 { av } else { bv })
            }
            (ArgView::Uniform(av), ArgView::Col(cb)) => {
                map2(dst, cc, cb, move |c, y| if c != 0.0 { av } else { y })
            }
            (ArgView::Col(ca), ArgView::Uniform(bv)) => {
                map2(dst, cc, ca, move |c, x| if c != 0.0 { x } else { bv })
            }
            (ArgView::Col(ca), ArgView::Col(cb)) => {
                map3(dst, cc, ca, cb, |c, x, y| if c != 0.0 { x } else { y })
            }
        },
    }
}

/// Reusable evaluation scratch for a [`Program`].
///
/// Holds the register column pool, per-slot lane tags, and per-root
/// output columns. Create one per evaluating thread and pass it to every
/// [`Program::eval_batch`] call: after the first call, evaluation reuses
/// all columns and performs no per-instruction allocation.
#[derive(Debug, Default)]
pub struct EvalWorkspace {
    regs: Vec<Vec<f64>>,
    lanes: Vec<Lane>,
    outputs: Vec<Vec<f64>>,
    /// Id of the program this workspace was last prepared for (0 =
    /// none). While it matches, `eval_batch` skips all sizing checks.
    prepared: u64,
}

impl EvalWorkspace {
    /// Creates an empty workspace.
    pub fn new() -> Self {
        Self::default()
    }

    /// One-time sizing for `program`: reserves the lane tags and grows
    /// the register/output column pools. [`Program::eval_batch`] calls
    /// this automatically when it sees a new program; calling it ahead
    /// of time moves the (already small) bookkeeping cost out of the
    /// first evaluation, and repeated calls for the same program are
    /// no-ops. The steady-state eval path does no capacity checks at
    /// all.
    pub fn prepare(&mut self, program: &Program) {
        self.lanes.clear();
        self.lanes.reserve(program.ops.len());
        if self.regs.len() < program.num_regs {
            self.regs.resize_with(program.num_regs, Vec::new);
        }
        if self.outputs.len() < program.roots.len() {
            self.outputs.resize_with(program.roots.len(), Vec::new);
        }
        self.prepared = program.id;
    }

    /// Output column of root `i` from the most recent
    /// [`Program::eval_batch`] call.
    ///
    /// # Panics
    ///
    /// Panics if no evaluation has populated root `i` yet.
    pub fn output(&self, i: usize) -> &[f64] {
        &self.outputs[i]
    }

    /// Moves root `i`'s output column out of the workspace (the caller
    /// owns the allocation; the workspace reallocates it on next use).
    pub fn take_output(&mut self, i: usize) -> Vec<f64> {
        std::mem::take(&mut self.outputs[i])
    }

    /// Register columns that have been materialized (test introspection).
    #[cfg(test)]
    fn materialized_registers(&self) -> usize {
        self.regs.iter().filter(|r| !r.is_empty()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Context;

    #[test]
    fn fused_roots_match_individual_tapes() {
        let ctx = Context::new();
        let x = ctx.symbol("x");
        let y = ctx.symbol("y");
        let shared = (x + 1.0) * (y + 2.0);
        let r0 = shared.max(x / y);
        let r1 = shared + y.ceil();
        let r2 = ctx.constant(7.0) * 6.0;

        let program = ctx.compile_program(&[("r0", r0), ("r1", r1), ("r2", r2)]);
        let tapes = [ctx.compile(r0), ctx.compile(r1), ctx.compile(r2)];

        let xs = vec![1.0, 2.5, -3.0, 0.0];
        let ys = vec![2.0, 0.5, 4.0, 0.0];
        let mut batch = BatchBindings::new(xs.len());
        batch.set_values("x", xs.clone());
        batch.set_values("y", ys.clone());

        let mut ws = EvalWorkspace::new();
        program.eval_batch(&batch, &mut ws).unwrap();
        for (i, tape) in tapes.iter().enumerate() {
            let want = tape.eval_batch(&batch).unwrap();
            assert_eq!(ws.output(i), &want[..], "root {i}");
        }
    }

    #[test]
    fn cross_root_cse_shares_slots() {
        let ctx = Context::new();
        let x = ctx.symbol("x");
        let shared = (x + 1.0) * (x + 2.0);
        let r0 = shared + 3.0;
        let r1 = shared * 4.0;

        let program = ctx.compile_program(&[("r0", r0), ("r1", r1)]);
        let separate = ctx.compile(r0).len() + ctx.compile(r1).len();
        assert!(
            program.len() < separate,
            "fused {} should beat separate {}",
            program.len(),
            separate
        );
    }

    #[test]
    fn register_allocation_reuses_registers() {
        let ctx = Context::new();
        let x = ctx.symbol("x");
        // A long dependency chain: each step's input dies immediately, so
        // a handful of registers must suffice for many slots.
        let mut e = x;
        for i in 0..40 {
            e = e * 1.5 + (i as f64);
        }
        let program = ctx.compile_program(&[("chain", e)]);
        assert!(
            program.num_regs() < program.len() / 2,
            "regs {} vs slots {}",
            program.num_regs(),
            program.len()
        );

        let mut batch = BatchBindings::new(3);
        batch.set_values("x", vec![0.0, 1.0, 2.0]);
        let mut ws = EvalWorkspace::new();
        program.eval_batch(&batch, &mut ws).unwrap();
        let tape = ctx.compile(e);
        assert_eq!(ws.output(0), &tape.eval_batch(&batch).unwrap()[..]);
    }

    #[test]
    fn broadcast_lanes_avoid_materialization() {
        let ctx = Context::new();
        let x = ctx.symbol("x");
        let y = ctx.symbol("y");
        let e = (x * 3.0 + y).max(x - y) / 2.0;
        let program = ctx.compile_program(&[("e", e)]);

        // Every symbol bound to a scalar: the whole batch is uniform and
        // no register column is ever materialized.
        let mut batch = BatchBindings::new(1000);
        batch.set_scalar("x", 4.0);
        batch.set_scalar("y", 1.0);
        let mut ws = EvalWorkspace::new();
        program.eval_batch(&batch, &mut ws).unwrap();
        assert_eq!(ws.materialized_registers(), 0);
        assert_eq!(ws.output(0).len(), 1000);
        assert!(ws.output(0).iter().all(|&v| v == 6.5));
    }

    #[test]
    fn mixed_lanes_match_all_column_evaluation() {
        let ctx = Context::new();
        let x = ctx.symbol("x");
        let y = ctx.symbol("y");
        let cond = ctx.cmp(CmpOp::Gt, x + y, ctx.constant(2.0));
        let e = ctx.select(cond, x * y, x - y) + (y + 0.5).floor();
        let program = ctx.compile_program(&[("e", e)]);

        let xs = vec![0.5, 1.5, 2.5, 3.5];
        let yv = 1.25;
        // Scalar-bound y (broadcast lane)...
        let mut mixed = BatchBindings::new(xs.len());
        mixed.set_values("x", xs.clone());
        mixed.set_scalar("y", yv);
        // ...must equal a fully materialized column binding.
        let mut full = BatchBindings::new(xs.len());
        full.set_values("x", xs.clone());
        full.set_values("y", vec![yv; xs.len()]);

        let mut ws = EvalWorkspace::new();
        program.eval_batch(&mixed, &mut ws).unwrap();
        let got = ws.take_output(0);
        program.eval_batch(&full, &mut ws).unwrap();
        assert_eq!(got, ws.output(0));
    }

    #[test]
    fn workspace_reuse_across_batch_sizes() {
        let ctx = Context::new();
        let x = ctx.symbol("x");
        let e = (x + 1.0) * (x + 2.0);
        let program = ctx.compile_program(&[("e", e)]);
        let mut ws = EvalWorkspace::new();

        for n in [5usize, 3, 8, 1] {
            let xs: Vec<f64> = (0..n).map(|i| i as f64).collect();
            let mut batch = BatchBindings::new(n);
            batch.set_values("x", xs.clone());
            program.eval_batch(&batch, &mut ws).unwrap();
            let want: Vec<f64> = xs.iter().map(|&v| (v + 1.0) * (v + 2.0)).collect();
            assert_eq!(ws.output(0), &want[..], "batch size {n}");
        }
    }

    #[test]
    fn scalar_eval_reports_nonfinite_root_by_label() {
        let ctx = Context::new();
        let x = ctx.symbol("x");
        let program = ctx.compile_program(&[("ok", x + 1.0), ("bad", x / ctx.constant(0.0))]);
        let mut out = Vec::new();
        let err = program.eval_scalar(&[3.0], &mut out).unwrap_err();
        assert!(matches!(
            err,
            SymbolicError::NonFinite { ref detail } if detail.contains("bad")
        ));
        assert_eq!(program.eval_scalar_root(0, &[3.0]).unwrap(), 4.0);
    }

    #[test]
    fn root_lookup_by_label() {
        let ctx = Context::new();
        let x = ctx.symbol("x");
        let program = ctx.compile_program(&[("a", x + 1.0), ("b", x * 2.0)]);
        assert_eq!(program.root_index("b"), Some(1));
        assert_eq!(program.root_index("missing"), None);
        assert_eq!(program.root_labels(), &["a".to_string(), "b".to_string()]);
        assert_eq!(program.num_roots(), 2);
    }

    #[test]
    fn duplicate_roots_share_one_slot() {
        let ctx = Context::new();
        let x = ctx.symbol("x");
        let e = x + 1.0;
        let program = ctx.compile_program(&[("a", e), ("b", e)]);
        let mut batch = BatchBindings::new(2);
        batch.set_values("x", vec![1.0, 2.0]);
        let mut ws = EvalWorkspace::new();
        program.eval_batch(&batch, &mut ws).unwrap();
        assert_eq!(ws.output(0), ws.output(1));
        assert_eq!(program.len(), ctx.compile(e).len());
    }

    #[test]
    fn resolve_scalars_rejects_unknown_and_conflicting_bindings() {
        let ctx = Context::new();
        let x = ctx.symbol("x");
        let y = ctx.symbol("y");
        let program = ctx.compile_program(&[("r", x + y)]);
        let table = program.symbols();

        let ok = table.resolve_scalars(&[("y", 2.0), ("x", 1.0)]).unwrap();
        assert_eq!(ok[table.index_of("x").unwrap()], 1.0);
        assert_eq!(ok[table.index_of("y").unwrap()], 2.0);

        assert!(matches!(
            table.resolve_scalars(&[("x", 1.0), ("y", 2.0), ("z", 3.0)]),
            Err(SymbolicError::UnknownBinding(name)) if name == "z"
        ));
        assert!(matches!(
            table.resolve_scalars(&[("x", 1.0), ("x", 4.0), ("y", 2.0)]),
            Err(SymbolicError::ConflictingBinding { ref name, first, second })
                if name == "x" && first == 1.0 && second == 4.0
        ));
        // Agreeing duplicates (including NaN with NaN) are accepted.
        assert!(table
            .resolve_scalars(&[("x", 1.0), ("x", 1.0), ("y", 2.0)])
            .is_ok());
        assert!(table
            .resolve_scalars(&[("x", f64::NAN), ("x", f64::NAN), ("y", 2.0)])
            .is_ok());
    }

    #[test]
    fn instr_view_exposes_the_stream() {
        let ctx = Context::new();
        let x = ctx.symbol("x");
        let y = ctx.symbol("y");
        let cond = ctx.cmp(CmpOp::Gt, x, y);
        let e = ctx.select(cond, x + y, x / y).floor();
        let program = ctx.compile_program(&[("e", e)]);

        assert_eq!(program.instrs().len(), program.len());
        assert_eq!(program.root_slots().len(), 1);
        let root = program.root_slots()[0] as usize;
        assert!(matches!(program.instr(root), Instr::Floor(_)));

        // Every operand referenced by any instruction is an earlier slot
        // (SSA stream order), and each opcode appears as expected.
        let mut saw_select = false;
        for (slot, instr) in program.instrs().enumerate() {
            instr.for_each_operand(|s| assert!((s as usize) < slot));
            if let Instr::Select(c, a, b) = instr {
                saw_select = true;
                assert!(matches!(program.instr(c as usize), Instr::Cmp(..)));
                assert!(matches!(program.instr(a as usize), Instr::Add(_)));
                assert!(matches!(program.instr(b as usize), Instr::Div(..)));
            }
        }
        assert!(saw_select);
    }

    #[test]
    fn program_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Program>();
        assert_send_sync::<EvalWorkspace>();
    }
}
