//! Pareto-frontier extraction and sampling.
//!
//! Intra-stage tuning produces many `(t, d)` pairs per candidate; only the
//! non-dominated ones can appear in an optimal pipeline (paper §5.3). The
//! frontier is extracted exactly, then down-sampled to `K` points spread
//! along the trade-off — the equivalent of the paper's uniform `α`
//! sampling of `α·G·t + (1−α)·d`.

/// Returns the indices of the Pareto-optimal `(t, d)` points (minimizing
/// both), sorted by increasing `t`.
///
/// Duplicate-coordinate points keep only the first occurrence.
pub fn pareto_frontier(points: &[(f64, f64)]) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..points.len()).collect();
    idx.sort_by(|&a, &b| {
        points[a]
            .0
            .total_cmp(&points[b].0)
            .then(points[a].1.total_cmp(&points[b].1))
    });
    let mut out: Vec<usize> = Vec::new();
    let mut best_d = f64::INFINITY;
    let mut last_t = f64::NAN;
    for &i in &idx {
        let (t, d) = points[i];
        if t == last_t {
            continue; // Same t: the earlier (smaller-d) one dominates.
        }
        if d < best_d {
            out.push(i);
            best_d = d;
            last_t = t;
        }
    }
    out
}

/// Down-samples a frontier (indices into `points`, sorted by `t`) to at
/// most `k` entries: always keeps both endpoints, fills the middle with
/// evenly spaced picks.
pub fn sample_frontier(frontier: &[usize], k: usize) -> Vec<usize> {
    assert!(k >= 1);
    if frontier.len() <= k {
        return frontier.to_vec();
    }
    if k == 1 {
        return vec![frontier[0]];
    }
    let mut out = Vec::with_capacity(k);
    let n = frontier.len();
    for j in 0..k {
        let pos = j * (n - 1) / (k - 1);
        out.push(frontier[pos]);
    }
    out.dedup();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dominated_points_are_dropped() {
        let pts = vec![(1.0, 5.0), (2.0, 3.0), (3.0, 4.0), (4.0, 1.0), (2.5, 3.5)];
        let f = pareto_frontier(&pts);
        assert_eq!(f, vec![0, 1, 3]);
    }

    #[test]
    fn single_point_is_its_own_frontier() {
        assert_eq!(pareto_frontier(&[(1.0, 1.0)]), vec![0]);
        assert!(pareto_frontier(&[]).is_empty());
    }

    #[test]
    fn all_nondominated_survive_in_t_order() {
        let pts = vec![(3.0, 1.0), (1.0, 3.0), (2.0, 2.0)];
        let f = pareto_frontier(&pts);
        assert_eq!(f, vec![1, 2, 0]);
    }

    #[test]
    fn duplicates_keep_one() {
        let pts = vec![(1.0, 2.0), (1.0, 2.0), (1.0, 1.0)];
        let f = pareto_frontier(&pts);
        assert_eq!(f.len(), 1);
        assert_eq!(pts[f[0]], (1.0, 1.0));
    }

    #[test]
    fn sampling_keeps_endpoints() {
        let frontier: Vec<usize> = (0..20).collect();
        let s = sample_frontier(&frontier, 5);
        assert_eq!(s.len(), 5);
        assert_eq!(*s.first().unwrap(), 0);
        assert_eq!(*s.last().unwrap(), 19);
    }

    #[test]
    fn sampling_never_exceeds_k_or_input() {
        let frontier: Vec<usize> = (0..3).collect();
        assert_eq!(sample_frontier(&frontier, 10), vec![0, 1, 2]);
        assert_eq!(sample_frontier(&frontier, 1), vec![0]);
    }

    #[test]
    fn infinite_t_points_never_dominate() {
        let pts = vec![(f64::INFINITY, 0.0), (1.0, 1.0)];
        let f = pareto_frontier(&pts);
        assert!(f.contains(&1));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn frontier_is_mutually_nondominated(
            pts in prop::collection::vec((0.1f64..100.0, 0.0f64..100.0), 1..60)
        ) {
            let f = pareto_frontier(&pts);
            prop_assert!(!f.is_empty());
            for &i in &f {
                for &j in &f {
                    if i != j {
                        let dominated = pts[j].0 <= pts[i].0
                            && pts[j].1 <= pts[i].1
                            && (pts[j].0 < pts[i].0 || pts[j].1 < pts[i].1);
                        prop_assert!(!dominated, "{i} dominated by {j}");
                    }
                }
            }
            // The frontier contains the global minima of both axes.
            let min_t = pts.iter().map(|p| p.0).fold(f64::INFINITY, f64::min);
            let min_d = pts.iter().map(|p| p.1).fold(f64::INFINITY, f64::min);
            prop_assert!(f.iter().any(|&i| pts[i].0 == min_t));
            prop_assert!(f.iter().any(|&i| pts[i].1 == min_d));
        }

        #[test]
        fn every_point_is_dominated_by_some_frontier_point(
            pts in prop::collection::vec((0.1f64..100.0, 0.0f64..100.0), 1..60)
        ) {
            let f = pareto_frontier(&pts);
            for (k, p) in pts.iter().enumerate() {
                let covered = f.iter().any(|&i| pts[i].0 <= p.0 && pts[i].1 <= p.1);
                prop_assert!(covered, "point {k} uncovered");
            }
        }

        #[test]
        fn sampling_is_a_subsequence(k in 1usize..10, n in 1usize..40) {
            let frontier: Vec<usize> = (0..n).map(|i| i * 3).collect();
            let s = sample_frontier(&frontier, k);
            prop_assert!(s.len() <= k.max(1).min(n));
            // Subsequence check.
            let mut it = frontier.iter();
            for v in &s {
                prop_assert!(it.any(|x| x == v));
            }
        }
    }
}
