//! Intra-stage tuning (paper §5.3, Eq. 4).
//!
//! For one pipeline-stage candidate — a device mesh, its role in the
//! pipeline, its in-flight microbatch count and the iteration's `G` —
//! this module finds, for *every* possible layer count at once, the
//! Pareto frontier of `(t, d)` over:
//!
//! * `(dp, tp)` factorizations of the mesh (micro-batch size follows from
//!   `b = B / (dp · G)`),
//! * ZeRO levels and the offloading-ratio grid of the [`SearchSpace`],
//! * the recomputed-layer count `ckpt`.
//!
//! Everything is evaluated through the compiled symbolic tapes in large
//! batches (key idea #2). Two search-space reductions keep the batch
//! tractable, both justified by monotonicity:
//!
//! * `ckpt` only increases `t` (recompute time) and only decreases peak
//!   memory, and it never touches `d`, so for every other knob setting the
//!   *minimal feasible* `ckpt` dominates. It is resolved analytically from
//!   the memory tapes' linearity in `ckpt` instead of being enumerated.
//!   (The second-order effect that recomputing layers also shrinks
//!   activation-offload traffic is deliberately ignored.)
//! * Layer count `l` enters the tapes as a plain symbol, so all layer
//!   counts share one batch — the frontier for every `l` falls out of a
//!   single evaluation pass.

use std::collections::HashMap;
use std::sync::Arc;

use mist_graph::{
    sweep_frozen_symbols, StageAnalyzer, StageCandidate, StageConfigValues, StagePoint, StageRole,
    StageTapes,
};
use mist_hardware::{ClusterSpec, DeviceMesh, OpCostDb};
use mist_interference::InterferenceModel;
use mist_irlint::{monotonicity, root_intervals, DomainMap, SymbolDomain};
use mist_models::ModelSpec;
use mist_pool::ThreadPool;
use mist_schedule::stage_times;
use mist_symbolic::{BatchBindings, CompiledWorkspace, EvalWorkspace};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

use crate::pareto::{pareto_frontier, sample_frontier};
use crate::seed::{role_rank, BudgetProof, FrontierExport, FrontierRecord, SeedCandidate};
use crate::space::{CkptMode, SearchSpace};
use crate::specialize::Specializer;

/// One sampled point of an intra-stage Pareto frontier: the `(t, d)`
/// value plus everything needed to reconstruct and execute the plan.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ParetoPoint {
    /// Stable microbatch time (seconds).
    pub t: f64,
    /// First/last microbatch delta (seconds).
    pub d: f64,
    /// Peak memory of the configuration (bytes).
    pub mem_peak: f64,
    /// The parallelism candidate.
    pub candidate: StageCandidate,
    /// The full optimization configuration (including `layers`).
    pub config: StageConfigValues,
    /// Evaluated stream/memory decomposition (for simulation lowering).
    pub point: StagePoint,
}

/// Cache key of one frontier family.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct FrontierKey {
    /// Stage device mesh.
    pub mesh: DeviceMesh,
    /// Pipeline role.
    pub role: StageRole,
    /// In-flight microbatches (`min(G, S − i)`).
    pub inflight: u32,
    /// Gradient-accumulation steps.
    pub grad_accum: u32,
}

type TapeKey = (DeviceMesh, u32, u32, u64, StageRole);

/// Per-sweep rejection tally, accumulated while a candidate's rows are
/// evaluated and merged across candidates. Plain sums (and an
/// order-independent max for `mem_hi`), so merging is order-independent
/// and the totals are deterministic at any thread count.
#[derive(Debug, Clone, Copy)]
pub(crate) struct SweepTally {
    /// `(layers, zero, offload)` rows enumerated.
    pub enumerated: u64,
    /// Rows rejected because no checkpoint count fits the memory budget
    /// (including the conservative post-evaluation recheck).
    pub oom: u64,
    /// Rows rejected because the predicted time was not finite.
    pub nonfinite: u64,
    /// Rows skipped without evaluation because a monotonicity proof
    /// extrapolated an all-OOM outcome from a smaller in-flight count.
    pub mono_pruned: u64,
    /// Whether the memory budget influenced any row: an OOM rejection
    /// (including mono-pruned rows, which are extrapolated OOMs), or
    /// (under tuned checkpointing) a nonzero resolved `ckpt`. Drives
    /// [`BudgetProof::Sensitive`] for warm-start reuse.
    pub budget_bound: bool,
    /// Interval-proven upper bound on peak memory across all candidates
    /// of the sweep (`-∞` before any candidate merges in). When finite
    /// and at most the budget, licenses [`BudgetProof::StaticFit`].
    pub mem_hi: f64,
}

impl Default for SweepTally {
    fn default() -> Self {
        SweepTally {
            enumerated: 0,
            oom: 0,
            nonfinite: 0,
            mono_pruned: 0,
            budget_bound: false,
            mem_hi: f64::NEG_INFINITY,
        }
    }
}

impl SweepTally {
    fn merge(&mut self, other: &SweepTally) {
        self.enumerated += other.enumerated;
        self.oom += other.oom;
        self.nonfinite += other.nonfinite;
        self.mono_pruned += other.mono_pruned;
        self.budget_bound |= other.budget_bound;
        self.mem_hi = self.mem_hi.max(other.mem_hi);
    }
}

/// Always-on rejection counters (satellite provenance: journal-off runs
/// still get aggregate attribution through `TuneOutcome.telemetry`).
/// Per-instance like `configs_evaluated`, so counts never leak across
/// tuner instances.
pub(crate) struct RejectionCounters {
    /// Rows with no memory-feasible checkpointing choice.
    pub oom: mist_telemetry::Counter,
    /// Rows whose predicted time was NaN/∞.
    pub nonfinite: mist_telemetry::Counter,
    /// Feasible points dominated away by Pareto reduction + sampling.
    pub dominated: mist_telemetry::Counter,
    /// Rows skipped by proof-licensed monotone pruning.
    pub mono_pruned: mist_telemetry::Counter,
}

impl RejectionCounters {
    fn new() -> Self {
        RejectionCounters {
            oom: mist_telemetry::Counter::new(),
            nonfinite: mist_telemetry::Counter::new(),
            dominated: mist_telemetry::Counter::new(),
            mono_pruned: mist_telemetry::Counter::new(),
        }
    }
}

/// Intra-stage tuner with tape and frontier caches.
///
/// The type is `Sync`: frontier computations fan out over the pool, so
/// caches sit behind mutexes, shared compiled artifacts are `Arc`s, and
/// evaluation scratch lives in a pool of per-worker workspaces.
pub struct IntraStageTuner<'a> {
    model: &'a ModelSpec,
    cluster: &'a ClusterSpec,
    db: &'a OpCostDb,
    space: &'a SearchSpace,
    interference: &'a InterferenceModel,
    global_batch: u64,
    budget: f64,
    pool: Arc<ThreadPool>,
    tape_cache: Mutex<HashMap<TapeKey, Arc<StageTapes>>>,
    frontier_cache: Mutex<HashMap<FrontierKey, Arc<Vec<Vec<ParetoPoint>>>>>,
    // Warm-start seed: frontiers exported by an earlier, provably
    // compatible tune. Consulted on frontier-cache misses only.
    seed: Option<Arc<FrontierExport>>,
    // Per-key budget proof of the sweep that produced (or seeded) each
    // cached frontier — exported for warm-start reuse decisions.
    budget_proofs: Mutex<HashMap<FrontierKey, BudgetProof>>,
    // Frontier families taken from the seed instead of being swept.
    seeded: mist_telemetry::Counter,
    // Proof-licensed monotone pruning of provably-OOM sweep rows.
    mono_prune: bool,
    // Committed all-OOM floors: (tape key, layer count) → smallest
    // in-flight count at which every sweep row for that layer count was
    // out of memory. Sound to consult only where `mono_proofs` holds
    // (peak memory non-decreasing in `inflight`), and only committed
    // between in-flight levels by `frontiers_batch` so results never
    // depend on thread interleaving.
    oom_floors: Mutex<HashMap<(TapeKey, u32), u32>>,
    // Floors observed during the current in-flight level, merged into
    // `oom_floors` by `commit_floors` (min-merge: order-independent).
    pending_floors: Mutex<Vec<((TapeKey, u32), u32)>>,
    // Per-tapes monotonicity verdict: whether both memory roots of both
    // the full stage program and the two-root `mem_pair` are provably
    // non-decreasing in `inflight` over the sweep domain. Keyed by the
    // `StageTapes` address — tape Arcs live in `tape_cache` for the
    // tuner's lifetime, so addresses are stable.
    mono_proofs: Mutex<HashMap<usize, bool>>,
    // Interval-proven peak-memory upper bound per (tapes address,
    // inflight) — the `BudgetProof::StaticFit` derivation, cached
    // because candidates recur across frontier keys.
    mem_hi_cache: Mutex<HashMap<(usize, u32), f64>>,
    // Per-sweep program specialization: residual programs per
    // (program, frozen-group) pair plus the sweep-domain guard facts.
    specializer: Specializer,
    // The exact symbol ranges this tuner's space sweeps — the soundness
    // domain of the specializer's guard facts.
    domains: DomainMap,
    // Per-instance telemetry counter (not the global registry): cache-hit
    // semantics are part of this type's contract and tests compare exact
    // counts, so the count must not leak across tuner instances.
    configs_evaluated: mist_telemetry::Counter,
    // Rejection attribution for `TuneOutcome.telemetry` (same
    // per-instance rationale).
    rejections: RejectionCounters,
    // High-water sampled frontier size across all (key, layer) families.
    frontier_size: mist_telemetry::Gauge,
    // Direct-threaded evaluation through the compiled backend, with the
    // memory-first filtered sweep (default on). Bit-identical to the
    // interpreter, so this toggle exists for A/B studies and the
    // byte-identity tests — mirroring `mono_prune`.
    compiled_eval: bool,
    // Reused across batch evaluations: register and output columns are
    // allocated once per concurrent evaluator and recycled for the whole
    // search. Tasks check a workspace out, use it, and return it.
    workspaces: Mutex<Vec<EvalWorkspace>>,
    // Same pooling for the compiled backend's block-register scratch.
    compiled_workspaces: Mutex<Vec<CompiledWorkspace>>,
}

impl<'a> IntraStageTuner<'a> {
    /// Creates a tuner for one workload. `budget` defaults to the GPU's
    /// usable memory.
    pub fn new(
        model: &'a ModelSpec,
        cluster: &'a ClusterSpec,
        db: &'a OpCostDb,
        space: &'a SearchSpace,
        interference: &'a InterferenceModel,
        global_batch: u64,
    ) -> Self {
        IntraStageTuner {
            model,
            cluster,
            db,
            space,
            interference,
            global_batch,
            budget: cluster.gpu.memory_bytes,
            pool: mist_pool::global(),
            tape_cache: Mutex::new(HashMap::new()),
            frontier_cache: Mutex::new(HashMap::new()),
            seed: None,
            budget_proofs: Mutex::new(HashMap::new()),
            seeded: mist_telemetry::Counter::new(),
            mono_prune: true,
            oom_floors: Mutex::new(HashMap::new()),
            pending_floors: Mutex::new(Vec::new()),
            mono_proofs: Mutex::new(HashMap::new()),
            mem_hi_cache: Mutex::new(HashMap::new()),
            specializer: Specializer::new(),
            domains: space.symbol_domains(model),
            configs_evaluated: mist_telemetry::Counter::new(),
            rejections: RejectionCounters::new(),
            frontier_size: mist_telemetry::Gauge::new(),
            compiled_eval: true,
            workspaces: Mutex::new(Vec::new()),
            compiled_workspaces: Mutex::new(Vec::new()),
        }
    }

    /// Overrides the per-GPU memory budget (tests, what-if studies).
    pub fn with_budget(mut self, budget: f64) -> Self {
        self.budget = budget;
        self
    }

    /// Enables or disables proof-licensed monotone pruning (default on).
    /// Pruning never changes any frontier — it only skips evaluating
    /// rows proven out-of-memory — so this toggle exists for A/B
    /// studies and the byte-identity tests.
    pub fn with_monotone_prune(mut self, enabled: bool) -> Self {
        self.mono_prune = enabled;
        self
    }

    /// Enables or disables the compiled evaluation backend (default on):
    /// superinstruction-fused, direct-threaded kernels plus the
    /// memory-first filtered sweep. The backend is bit-identical to the
    /// interpreter on every root and row, so frontiers, accounting and
    /// journal order never change — the toggle exists for A/B studies
    /// and the byte-identity tests.
    pub fn with_compiled_eval(mut self, enabled: bool) -> Self {
        self.compiled_eval = enabled;
        self
    }

    /// Overrides the thread pool (defaults to the process-global one).
    pub fn with_pool(mut self, pool: Arc<ThreadPool>) -> Self {
        self.pool = pool;
        self
    }

    /// Installs a warm-start seed. The caller must guarantee the seed
    /// was exported under an identical tape context — same model,
    /// search space, interference model, and a tape-equivalent cluster
    /// (see [`crate::seed`] module docs); candidate-list equality and
    /// budget compatibility are then checked per lookup.
    pub fn with_seed(mut self, seed: Arc<FrontierExport>) -> Self {
        self.seed = Some(seed);
        self
    }

    /// The pool frontier computations fan out on.
    pub fn pool(&self) -> &Arc<ThreadPool> {
        &self.pool
    }

    /// Checks a reusable evaluation workspace out of the pool.
    fn take_workspace(&self) -> EvalWorkspace {
        self.workspaces.lock().pop().unwrap_or_default()
    }

    /// Returns a workspace for the next task to reuse.
    fn put_workspace(&self, ws: EvalWorkspace) {
        self.workspaces.lock().push(ws);
    }

    /// Checks a compiled-backend workspace out of the pool.
    fn take_compiled_workspace(&self) -> CompiledWorkspace {
        self.compiled_workspaces.lock().pop().unwrap_or_default()
    }

    /// Returns a compiled-backend workspace for the next task to reuse.
    fn put_compiled_workspace(&self, ws: CompiledWorkspace) {
        self.compiled_workspaces.lock().push(ws);
    }

    /// Number of configurations evaluated so far (tuning-time studies).
    pub fn configs_evaluated(&self) -> u64 {
        self.configs_evaluated.value()
    }

    /// Number of frontier families taken from the warm-start seed.
    pub fn seeded_frontiers(&self) -> u64 {
        self.seeded.value()
    }

    /// The per-sweep program specialization cache (telemetry surfacing).
    pub fn specializer(&self) -> &Specializer {
        &self.specializer
    }

    /// Rejection attribution counters (driver publication).
    pub(crate) fn rejections(&self) -> &RejectionCounters {
        &self.rejections
    }

    /// Largest sampled per-layer frontier seen so far.
    pub(crate) fn frontier_size_high_water(&self) -> f64 {
        self.frontier_size.value()
    }

    /// The memory budget in use.
    pub fn budget(&self) -> f64 {
        self.budget
    }

    /// Computes the frontier families of several keys at once, returning
    /// results in input order.
    ///
    /// This is the entry point that activates monotone pruning across
    /// keys: keys are grouped by in-flight count and the levels are
    /// processed in ascending order, committing the all-OOM floors each
    /// level discovered before the next level starts. A later level may
    /// then skip `(candidate, layer-count)` groups whose rows are proven
    /// out-of-memory — peak memory is non-decreasing in `inflight`
    /// (checked per tapes by the monotonicity analysis, never assumed)
    /// and every row already OOMed at a smaller in-flight count.
    /// Because floors only ever cover all-OOM groups, the returned
    /// frontiers are byte-identical to pruning disabled; only the
    /// number of evaluated rows changes. Level-sequential commits make
    /// that count deterministic at any thread count.
    pub fn frontiers_batch(
        &self,
        keys: &[FrontierKey],
        max_layers: u32,
    ) -> Vec<Arc<Vec<Vec<ParetoPoint>>>> {
        if !self.mono_prune {
            return self
                .pool
                .map_ordered(keys.to_vec(), |k| self.frontiers(k, max_layers));
        }
        // Group by in-flight level, ascending; first-seen order within a
        // level preserves the caller's submission order.
        let mut levels: Vec<(u32, Vec<usize>)> = Vec::new();
        for (i, key) in keys.iter().enumerate() {
            match levels
                .iter_mut()
                .find(|(inflight, _)| *inflight == key.inflight)
            {
                Some((_, idxs)) => idxs.push(i),
                None => levels.push((key.inflight, vec![i])),
            }
        }
        levels.sort_by_key(|&(inflight, _)| inflight);
        let mut results: Vec<Option<Arc<Vec<Vec<ParetoPoint>>>>> = vec![None; keys.len()];
        for (_, idxs) in levels {
            let level_keys: Vec<FrontierKey> = idxs.iter().map(|&i| keys[i]).collect();
            let outs = self
                .pool
                .map_ordered(level_keys, |k| self.frontiers(k, max_layers));
            for (i, out) in idxs.into_iter().zip(outs) {
                results[i] = Some(out);
            }
            self.commit_floors();
        }
        results
            .into_iter()
            .map(|r| r.expect("every key belongs to exactly one level"))
            .collect()
    }

    /// Merges the floors the current level recorded into the committed
    /// memo. Min-merge per `(tape key, layer count)`: commit order never
    /// affects the surviving floor.
    fn commit_floors(&self) {
        let pending: Vec<((TapeKey, u32), u32)> = std::mem::take(&mut *self.pending_floors.lock());
        let mut floors = self.oom_floors.lock();
        for (key, inflight) in pending {
            let entry = floors.entry(key).or_insert(inflight);
            *entry = (*entry).min(inflight);
        }
    }

    /// Whether both memory roots of both stage programs are provably
    /// non-decreasing in `inflight` over the whole sweep domain — the
    /// license for extrapolating an all-OOM outcome to larger in-flight
    /// counts. Derived by the monotonicity analysis, cached per tapes.
    fn mono_licensed(&self, tapes: &StageTapes) -> bool {
        let ptr = tapes as *const StageTapes as usize;
        if let Some(&hit) = self.mono_proofs.lock().get(&ptr) {
            return hit;
        }
        let non_decreasing = |program| {
            let report = monotonicity(program, &self.domains);
            report.verdict("mem_fwd", "inflight").non_decreasing()
                && report.verdict("mem_bwd", "inflight").non_decreasing()
        };
        let proven = non_decreasing(&tapes.program) && non_decreasing(&tapes.mem_pair);
        self.mono_proofs.lock().insert(ptr, proven);
        proven
    }

    /// Interval-proven upper bound (bytes) on one candidate's peak
    /// memory over the whole sweep domain at a fixed in-flight count;
    /// `+∞` when the analysis cannot bound it. Cached per
    /// `(tapes, inflight)` — candidates recur across frontier keys.
    fn static_mem_hi(&self, tapes: &StageTapes, inflight: u32) -> f64 {
        let ptr = tapes as *const StageTapes as usize;
        if let Some(&hit) = self.mem_hi_cache.lock().get(&(ptr, inflight)) {
            return hit;
        }
        let domains = self
            .domains
            .clone()
            .declare("inflight", SymbolDomain::point(f64::from(inflight), true));
        let mem_hi = root_intervals(&tapes.program, &domains)
            .iter()
            .filter(|rb| rb.label == "mem_fwd" || rb.label == "mem_bwd")
            .map(|rb| {
                if rb.may_nonfinite {
                    f64::INFINITY
                } else {
                    rb.hi
                }
            })
            .fold(f64::NEG_INFINITY, f64::max);
        self.mem_hi_cache.lock().insert((ptr, inflight), mem_hi);
        mem_hi
    }

    /// Returns `frontiers[l − 1]` = sampled Pareto points for a stage of
    /// `l` layers, for `l ∈ 1..=max_layers`. Results are cached per key.
    ///
    /// Single-key entry point: records pending all-OOM floors but never
    /// commits them — only [`Self::frontiers_batch`] commits, between
    /// in-flight levels, so pruning stays deterministic.
    pub fn frontiers(&self, key: FrontierKey, max_layers: u32) -> Arc<Vec<Vec<ParetoPoint>>> {
        if let Some(hit) = self.frontier_cache.lock().get(&key) {
            if hit.len() >= max_layers as usize {
                mist_telemetry::counter_add("intra.frontier_cache_hits", 1);
                return hit.clone();
            }
        }
        if let Some(seeded) = self.seeded_frontier(key, max_layers) {
            let arc = Arc::new(seeded);
            self.frontier_cache.lock().insert(key, arc.clone());
            return arc;
        }
        let computed = Arc::new(self.compute_frontiers(key, max_layers));
        self.frontier_cache.lock().insert(key, computed.clone());
        computed
    }

    /// Consults the warm-start seed for a frontier family whose sweep
    /// would be row-identical to the one about to run. On a hit, the
    /// record is truncated to exactly `max_layers` families — the same
    /// shape a cold sweep would produce — so downstream inter-stage
    /// selection sees byte-identical input.
    fn seeded_frontier(&self, key: FrontierKey, max_layers: u32) -> Option<Vec<Vec<ParetoPoint>>> {
        let seed = self.seed.as_ref()?;
        let cands: Vec<SeedCandidate> = self
            .parallelism_candidates(key.mesh, key.grad_accum)
            .into_iter()
            .map(|(dp, tp, b)| SeedCandidate {
                dp,
                tp,
                micro_batch: b,
            })
            .collect();
        let record = seed.lookup(
            key.mesh,
            key.role,
            key.inflight,
            &cands,
            self.budget,
            max_layers,
        )?;
        self.seeded.inc();
        // The proof that licensed reuse keeps holding for the reused
        // family: a `StaticFit` bound is budget-independent, and a
        // `Witness` reused upward stays a witness under the larger
        // budget; at equal budgets the proof carries over verbatim.
        self.budget_proofs.lock().insert(key, record.proof);
        Some(record.per_l[..max_layers as usize].to_vec())
    }

    /// Exports every cached frontier family as a [`FrontierExport`]:
    /// canonically sorted, deduplicated on the seed identity
    /// `(mesh, role, inflight, candidates)` (two grad-accum steps that
    /// enumerate the same candidate list share one record).
    pub fn export_frontiers(&self) -> FrontierExport {
        let cache = self.frontier_cache.lock();
        let proofs = self.budget_proofs.lock();
        let mut keys: Vec<FrontierKey> = cache.keys().copied().collect();
        keys.sort_by_key(|k| {
            (
                k.mesh.nodes,
                k.mesh.gpus_per_node,
                role_rank(k.role),
                k.inflight,
                k.grad_accum,
            )
        });
        let mut records: Vec<FrontierRecord> = Vec::new();
        for key in keys {
            let per_l = &cache[&key];
            let candidates: Vec<SeedCandidate> = self
                .parallelism_candidates(key.mesh, key.grad_accum)
                .into_iter()
                .map(|(dp, tp, b)| SeedCandidate {
                    dp,
                    tp,
                    micro_batch: b,
                })
                .collect();
            if records.iter().any(|r| {
                r.mesh == key.mesh
                    && r.role == key.role
                    && r.inflight == key.inflight
                    && r.candidates == candidates
            }) {
                continue;
            }
            records.push(FrontierRecord {
                mesh: key.mesh,
                role: key.role,
                inflight: key.inflight,
                candidates,
                budget: self.budget,
                // Conservative default: a family with no recorded proof
                // (e.g. produced by `evaluate_config`-style paths) is
                // treated as budget-sensitive.
                proof: proofs.get(&key).copied().unwrap_or(BudgetProof::Sensitive),
                per_l: per_l.as_ref().clone(),
            });
        }
        FrontierExport { records }
    }

    /// Evaluates one explicit configuration on one candidate (used by the
    /// uniform-stages heuristic and by enumeration-style experiments).
    /// No feasibility filtering — inspect `mem_peak` yourself.
    pub fn evaluate_config(&self, cand: &StageCandidate, cfg: &StageConfigValues) -> ParetoPoint {
        self.configs_evaluated.inc();
        let tapes = self.tapes(cand);
        let point = tapes.eval_point(cfg);
        let (t, d) = if self.space.overlap_aware {
            let st = stage_times(&point, self.interference);
            (st.t, st.d)
        } else {
            let sum = |s: [f64; 4]| s.iter().sum::<f64>();
            (
                sum(point.fwd) + sum(point.bwd),
                sum(point.first_extra) + sum(point.last_extra),
            )
        };
        ParetoPoint {
            t,
            d,
            mem_peak: point.mem_fwd.max(point.mem_bwd),
            candidate: *cand,
            config: *cfg,
            point,
        }
    }

    /// Public access to the valid `(dp, tp, b)` parallelism candidates of
    /// a mesh under gradient accumulation `g`.
    pub fn parallelism_options(&self, mesh: DeviceMesh, g: u32) -> Vec<(u32, u32, u64)> {
        self.parallelism_candidates(mesh, g)
    }

    fn tapes(&self, cand: &StageCandidate) -> Arc<StageTapes> {
        let key: TapeKey = (cand.mesh, cand.dp, cand.tp, cand.micro_batch, cand.role);
        if let Some(hit) = self.tape_cache.lock().get(&key) {
            return hit.clone();
        }
        mist_telemetry::counter_add("intra.tape_compiles", 1);
        let analyzer = StageAnalyzer::new(self.model, self.cluster, self.db);
        let tapes = Arc::new(analyzer.analyze(cand));
        // Two tasks can race to compile the same key; the first insert
        // wins so every caller shares one allocation (`Arc::ptr_eq`).
        self.tape_cache.lock().entry(key).or_insert(tapes).clone()
    }

    /// Valid `(dp, tp, b)` candidates for a mesh under `G`.
    fn parallelism_candidates(&self, mesh: DeviceMesh, g: u32) -> Vec<(u32, u32, u64)> {
        let mut out = Vec::new();
        for (dp, tp) in mesh.dp_tp_choices() {
            let denom = dp as u64 * g as u64;
            if !self.global_batch.is_multiple_of(denom) {
                continue;
            }
            let b = self.global_batch / denom;
            if b == 0 || b > 512 {
                continue;
            }
            if !self.model.heads.is_multiple_of(tp as u64)
                || !self.model.hidden.is_multiple_of(tp as u64)
            {
                continue;
            }
            out.push((dp, tp, b));
        }
        out
    }

    fn compute_frontiers(&self, key: FrontierKey, max_layers: u32) -> Vec<Vec<ParetoPoint>> {
        assert!(max_layers >= 1);
        let _span = mist_telemetry::span!(
            "intra.frontier",
            layers = max_layers,
            inflight = key.inflight,
            grad_accum = key.grad_accum
        );
        let cands: Vec<StageCandidate> = self
            .parallelism_candidates(key.mesh, key.grad_accum)
            .into_iter()
            .map(|(dp, tp, b)| StageCandidate {
                mesh: key.mesh,
                dp,
                tp,
                micro_batch: b,
                role: key.role,
            })
            .collect();

        // Fan the candidates out over the pool. Merging the per-candidate
        // partials in submission order keeps the pareto input sequence —
        // and therefore the sampled frontier — byte-identical to a
        // sequential sweep at any thread count.
        let partials = self.pool.map_ordered(cands, |cand| {
            let tapes = self.tapes(&cand);
            let mut ws = self.take_workspace();
            let mut cws = self.take_compiled_workspace();
            let mut partial: Vec<Vec<ParetoPoint>> = vec![Vec::new(); max_layers as usize];
            let mut tally = SweepTally {
                mem_hi: self.static_mem_hi(&tapes, key.inflight),
                ..SweepTally::default()
            };
            self.evaluate_candidate(
                &cand,
                &tapes,
                key,
                max_layers,
                &mut partial,
                &mut ws,
                &mut cws,
                &mut tally,
            );
            self.put_workspace(ws);
            self.put_compiled_workspace(cws);
            (partial, tally)
        });
        let mut per_l: Vec<Vec<ParetoPoint>> = vec![Vec::new(); max_layers as usize];
        let mut tally = SweepTally::default();
        for (partial, part_tally) in partials {
            tally.merge(&part_tally);
            for (dst, src) in per_l.iter_mut().zip(partial) {
                dst.extend(src);
            }
        }
        let feasible: u64 = per_l.iter().map(|p| p.len() as u64).sum();
        debug_assert_eq!(
            tally.enumerated,
            tally.oom + tally.nonfinite + feasible + tally.mono_pruned,
            "every enumerated row must be attributed to exactly one outcome"
        );

        // Pareto-reduce and sample each layer count.
        for points in per_l.iter_mut() {
            if points.is_empty() {
                continue;
            }
            let td: Vec<(f64, f64)> = points.iter().map(|p| (p.t, p.d)).collect();
            let frontier = pareto_frontier(&td);
            let sampled = sample_frontier(&frontier, self.space.pareto_samples);
            let mut kept: Vec<ParetoPoint> = sampled.iter().map(|&i| points[i].clone()).collect();
            kept.sort_by(|a, b| a.t.total_cmp(&b.t));
            *points = kept;
        }

        let sizes: Vec<u32> = per_l.iter().map(|p| p.len() as u32).collect();
        let survived: u64 = sizes.iter().map(|&s| s as u64).sum();
        let dominated = feasible - survived;
        // Strongest proof first: a static interval bound beats the
        // sweep's own witness because it licenses downward budget reuse
        // (and, unlike the witness, is derived rather than observed).
        let proof = if tally.budget_bound {
            BudgetProof::Sensitive
        } else if tally.mem_hi.is_finite() && tally.mem_hi <= self.budget {
            BudgetProof::StaticFit {
                mem_hi: tally.mem_hi,
            }
        } else {
            BudgetProof::Witness
        };
        self.budget_proofs.lock().insert(key, proof);
        self.rejections.oom.add(tally.oom);
        self.rejections.nonfinite.add(tally.nonfinite);
        self.rejections.dominated.add(dominated);
        self.rejections.mono_pruned.add(tally.mono_pruned);
        self.frontier_size
            .set_max(sizes.iter().copied().max().unwrap_or(0) as f64);
        mist_telemetry::journal_event(|| mist_telemetry::JournalEvent::FrontierSummary {
            mesh_nodes: key.mesh.nodes,
            mesh_gpus: key.mesh.gpus_per_node,
            role: format!("{:?}", key.role),
            inflight: key.inflight,
            grad_accum: key.grad_accum,
            max_layers,
            enumerated: tally.enumerated,
            oom: tally.oom,
            nonfinite: tally.nonfinite,
            feasible,
            survived,
            dominated,
            mono_pruned: tally.mono_pruned,
            sizes: sizes.clone(),
        });
        per_l
    }

    /// Batch-evaluates one `(dp, tp, b)` candidate over all layer counts,
    /// ZeRO levels and offload combos, appending feasible points.
    ///
    /// The sweep is grouped by `(zero, offload)`: within a group those
    /// knobs — plus `inflight`, and `ckpt` under [`CkptMode::None`] — are
    /// constant and the batch only varies `L`/`ckpt`. Groups iterate
    /// ZeRO-outer/offload-inner, which appends points to each `per_l[l]`
    /// in exactly the order the ungrouped `(l, zero, offload)` row sweep
    /// produced — downstream Pareto reduction sees a byte-identical
    /// input sequence.
    ///
    /// Under the interpreter (`--no-compiled-eval`) the 22-root stage
    /// program is specialized once per group via the shared
    /// [`Specializer`] cache and the group knobs vanish from the
    /// residual. Under the compiled backend (default on) the *generic*
    /// programs are compiled once per candidate instead — group knobs
    /// stay bound as batch scalars — and each group runs as a
    /// *memory-first filtered sweep*: the two-root `mem_pair` is
    /// evaluated over every row, rows that fail the budget check are
    /// rejected without ever running the 22-root program, and the
    /// survivors are compacted into a smaller batch. Both backends are
    /// bit-identical per row and the survivor compaction preserves row
    /// order, so frontiers, tallies and journal order never differ.
    #[allow(clippy::too_many_arguments)]
    fn evaluate_candidate(
        &self,
        cand: &StageCandidate,
        tapes: &StageTapes,
        key: FrontierKey,
        max_layers: u32,
        per_l: &mut [Vec<ParetoPoint>],
        ws: &mut EvalWorkspace,
        cws: &mut CompiledWorkspace,
        tally: &mut SweepTally,
    ) {
        let combos = self.space.offload_combos();
        let zeros = self.space.zero_levels();
        let rows_per_l = (zeros.len() * combos.len()) as u64;
        let nl = max_layers as usize;
        tally.enumerated += nl as u64 * rows_per_l;

        // Proof-licensed monotone pruning: a layer count whose rows
        // *all* ran out of memory at a smaller in-flight count is
        // skipped outright when the monotonicity analysis proved peak
        // memory non-decreasing in `inflight` — the rows would OOM
        // again and contribute nothing. The frontier is unchanged by
        // construction; only the evaluated-row count shrinks.
        let tape_key: TapeKey = (cand.mesh, cand.dp, cand.tp, cand.micro_batch, cand.role);
        let licensed = self.mono_prune && rows_per_l > 0 && self.mono_licensed(tapes);
        let mut retained: Vec<u32> = Vec::with_capacity(nl);
        let mut skipped: Vec<u32> = Vec::new();
        let mut skip_floor = 0u32;
        if licensed {
            let floors = self.oom_floors.lock();
            for l in 1..=max_layers {
                match floors.get(&(tape_key, l)) {
                    Some(&fl) if fl < key.inflight => {
                        skipped.push(l);
                        skip_floor = skip_floor.max(fl);
                    }
                    _ => retained.push(l),
                }
            }
        } else {
            retained.extend(1..=max_layers);
        }
        if !skipped.is_empty() {
            tally.mono_pruned += skipped.len() as u64 * rows_per_l;
            // Extrapolated OOMs: the budget shaped the sweep outcome.
            tally.budget_bound = true;
            mist_telemetry::journal_event(|| mist_telemetry::JournalEvent::MonotonePrune {
                mesh_nodes: key.mesh.nodes,
                mesh_gpus: key.mesh.gpus_per_node,
                role: format!("{:?}", key.role),
                inflight: key.inflight,
                floor: skip_floor,
                layers: skipped.clone(),
                rows: skipped.len() as u64 * rows_per_l,
            });
        }
        if retained.is_empty() {
            return;
        }
        self.configs_evaluated
            .add(retained.len() as u64 * rows_per_l);

        let nr = retained.len();
        let ls: Vec<f64> = retained.iter().map(|&l| f64::from(l)).collect();
        // Per retained layer count, across all (zero, offload) groups:
        // whether any row was feasible or non-finite, and whether any
        // OOM came from the conservative post-evaluation recheck rather
        // than the analytic `ckpt = ∞` path. An all-OOM layer count
        // becomes a floor for larger in-flight counts — except under
        // tuned checkpointing with a recheck OOM, where the resolved
        // `ckpt` changes with `inflight` and the outcome is not
        // directly extrapolatable.
        let mut any_feasible = vec![false; nr];
        let mut any_nonfinite = vec![false; nr];
        let mut recheck_oom = vec![false; nr];
        let frozen_ckpt = match self.space.ckpt {
            CkptMode::None => Some(0),
            CkptMode::Full | CkptMode::Tuned => None,
        };

        // The compiled backend lowers the *generic* stage programs —
        // not the per-group residuals. A group's batch is ~30 rows, far
        // too small to amortize a fresh specialize + compile (the
        // residual is used exactly once), while `tapes.program` and
        // `tapes.mem_pair` are shared by every `(zero, offload)` group
        // of this candidate and by every frontier key that reuses its
        // tapes — so the content-addressed compile cache hits almost
        // always. The frozen knobs are bound as batch scalars instead,
        // which the specializer's own contract proves byte-identical to
        // evaluating the residual.
        let compiled = self.compiled_eval.then(|| {
            (
                self.specializer.compiled(&tapes.program),
                self.specializer.compiled(&tapes.mem_pair),
            )
        });

        for &z in zeros {
            for &off in &combos {
                let frozen = sweep_frozen_symbols(z, off, key.inflight, frozen_ckpt);
                // One row per retained layer count. The frozen symbols
                // are bound too: specialization removes them from the
                // residual table, but an extra binding is free and
                // keeps the batch valid for any residual shape.
                let mut batch = BatchBindings::new(nr);
                batch.set_values("L", ls.clone());
                batch.set_scalar("zero", f64::from(z));
                batch.set_scalar("wo", off[0]);
                batch.set_scalar("go", off[1]);
                batch.set_scalar("oo", off[2]);
                batch.set_scalar("ao", off[3]);
                batch.set_scalar("inflight", f64::from(key.inflight));

                // The two-root `mem_pair` residual backing the
                // interpreter's tuned-checkpoint probes. The compiled
                // backend uses the generic compiled `mem_pair` instead
                // (hoisted above), so it never pays the per-group
                // specialization pass.
                let mem = (!self.compiled_eval && self.space.ckpt == CkptMode::Tuned).then(|| {
                    self.specializer
                        .specialized(&tapes.mem_pair, &frozen, &self.domains)
                });

                // Resolve the checkpoint count per row through the
                // two-root `mem_pair` program (peak memory only — no
                // need to evaluate all 22 roots for the feasibility
                // probes).
                let ckpt_col: Vec<f64> = match self.space.ckpt {
                    CkptMode::None => vec![0.0; nr],
                    CkptMode::Full => ls.clone(),
                    CkptMode::Tuned => {
                        let mut mem_at = |ckpt_of: &dyn Fn(f64) -> f64| -> Vec<f64> {
                            batch.set_values("ckpt", ls.iter().map(|&l| ckpt_of(l)).collect());
                            match &compiled {
                                Some((_, cmem)) => {
                                    cmem.eval_batch(&batch, cws).expect("mem_pair program");
                                    cws.output(0)
                                        .iter()
                                        .zip(cws.output(1))
                                        .map(|(&f, &b)| f.max(b))
                                        .collect()
                                }
                                None => {
                                    let mem =
                                        mem.as_ref().expect("mem_pair residual exists under Tuned");
                                    mem.eval_batch(&batch, ws).expect("mem_pair program");
                                    ws.output(0)
                                        .iter()
                                        .zip(ws.output(1))
                                        .map(|(&f, &b)| f.max(b))
                                        .collect()
                                }
                            }
                        };
                        let m0 = mem_at(&|_| 0.0);
                        let m1 = mem_at(&|_| 1.0);
                        let ml = mem_at(&|l| l);
                        retained
                            .iter()
                            .enumerate()
                            .map(|(i, &l)| minimal_ckpt(m0[i], m1[i], ml[i], l, self.budget))
                            .collect()
                    }
                };
                // A nonzero tuned checkpoint count (incl. the `∞`
                // infeasibility marker) means the budget shaped this
                // row — the sweep is not reusable under other budgets.
                if self.space.ckpt == CkptMode::Tuned && ckpt_col.iter().any(|&c| c != 0.0) {
                    tally.budget_bound = true;
                }
                batch.set_values("ckpt", ckpt_col.clone());

                // One pass over all 22 roots at the resolved checkpoint
                // counts. Rows whose `ckpt` is the `∞` infeasibility
                // marker are out of the guard-fact domain; they are
                // discarded below, never read back.
                if let Some((cprog, cmem)) = &compiled {
                    // Memory-first filtered sweep: the two-root
                    // `mem_pair` runs over every row first; rows whose
                    // resolved `ckpt` is `∞` or whose peak memory busts
                    // the budget are rejected without ever paying for
                    // the 22-root program. Survivors keep their sweep
                    // order, so the compacted outputs read back in
                    // exactly the order the unfiltered loop visits them.
                    cmem.eval_batch(&batch, cws).expect("mem_pair program");
                    let mem_peaks: Vec<f64> = cws
                        .output(0)
                        .iter()
                        .zip(cws.output(1))
                        .map(|(&f, &b)| f.max(b))
                        .collect();
                    // The survivor predicate must be the exact
                    // complement of the rejection tests in the walk
                    // below, or a NaN peak (never > budget, never
                    // <= budget) would desynchronize the cursor.
                    let mut surv_ls: Vec<f64> = Vec::with_capacity(nr);
                    let mut surv_ckpts: Vec<f64> = Vec::with_capacity(nr);
                    for (i, &l) in retained.iter().enumerate() {
                        // `!(a > b)` rather than `a <= b`: the walk
                        // rejects on `> budget`, and a NaN peak must
                        // land on the same side here.
                        #[allow(clippy::neg_cmp_op_on_partial_ord)]
                        if !ckpt_col[i].is_infinite() && !(mem_peaks[i] > self.budget) {
                            surv_ls.push(f64::from(l));
                            surv_ckpts.push(ckpt_col[i]);
                        }
                    }
                    if !surv_ls.is_empty() {
                        let mut surv = BatchBindings::new(surv_ls.len());
                        surv.set_values("L", surv_ls);
                        surv.set_values("ckpt", surv_ckpts);
                        surv.set_scalar("zero", f64::from(z));
                        surv.set_scalar("wo", off[0]);
                        surv.set_scalar("go", off[1]);
                        surv.set_scalar("oo", off[2]);
                        surv.set_scalar("ao", off[3]);
                        surv.set_scalar("inflight", f64::from(key.inflight));
                        cprog
                            .eval_batch(&surv, cws)
                            .expect("compiled stage program");
                    }
                    // Walk the ORIGINAL row order; `cursor` tracks the
                    // next survivor column in the compacted outputs.
                    let mut cursor = 0usize;
                    for (i, &l) in retained.iter().enumerate() {
                        let ckpt = ckpt_col[i];
                        if ckpt.is_infinite() {
                            tally.oom += 1;
                            continue; // No feasible checkpoint count.
                        }
                        if mem_peaks[i] > self.budget {
                            tally.oom += 1;
                            tally.budget_bound = true;
                            recheck_oom[i] = true;
                            continue; // Rejected by the mem-first pre-pass.
                        }
                        let point = tapes.point_at_compiled(cws, cursor);
                        cursor += 1;
                        self.classify_row(
                            cand,
                            key,
                            i,
                            l,
                            z,
                            off,
                            ckpt,
                            point,
                            per_l,
                            tally,
                            &mut any_feasible,
                            &mut any_nonfinite,
                            &mut recheck_oom,
                        );
                    }
                } else {
                    let spec = self
                        .specializer
                        .specialized(&tapes.program, &frozen, &self.domains);
                    spec.eval_batch(&batch, ws)
                        .expect("specialized stage program");
                    for (i, &l) in retained.iter().enumerate() {
                        let ckpt = ckpt_col[i];
                        if ckpt.is_infinite() {
                            tally.oom += 1;
                            continue; // No feasible checkpoint count.
                        }
                        let point = tapes.point_at(ws, i);
                        self.classify_row(
                            cand,
                            key,
                            i,
                            l,
                            z,
                            off,
                            ckpt,
                            point,
                            per_l,
                            tally,
                            &mut any_feasible,
                            &mut any_nonfinite,
                            &mut recheck_oom,
                        );
                    }
                }
            }
        }

        // Record new all-OOM floors for larger in-flight counts. Only
        // pending here — `frontiers_batch` commits between levels so
        // concurrent sweeps of the same level never observe each other.
        if licensed {
            let mut pending = self.pending_floors.lock();
            for (i, &l) in retained.iter().enumerate() {
                let extrapolatable = self.space.ckpt != CkptMode::Tuned || !recheck_oom[i];
                if !any_feasible[i] && !any_nonfinite[i] && extrapolatable {
                    pending.push(((tape_key, l), key.inflight));
                }
            }
        }
    }

    /// The shared tail of both evaluation backends for one evaluated
    /// sweep row: the conservative budget re-check, the time/imbalance
    /// predictor, and the feasible-point append. `i` indexes the
    /// retained layer counts (for the per-layer outcome flags), `l` is
    /// the layer count itself.
    #[allow(clippy::too_many_arguments)]
    fn classify_row(
        &self,
        cand: &StageCandidate,
        key: FrontierKey,
        i: usize,
        l: u32,
        z: u8,
        off: [f64; 4],
        ckpt: f64,
        point: StagePoint,
        per_l: &mut [Vec<ParetoPoint>],
        tally: &mut SweepTally,
        any_feasible: &mut [bool],
        any_nonfinite: &mut [bool],
        recheck_oom: &mut [bool],
    ) {
        let mem_peak = point.mem_fwd.max(point.mem_bwd);
        if mem_peak > self.budget {
            tally.oom += 1;
            tally.budget_bound = true;
            recheck_oom[i] = true;
            return; // Conservative re-check of the linear solve.
        }
        let (t, d) = if self.space.overlap_aware {
            let st = stage_times(&point, self.interference);
            (st.t, st.d)
        } else {
            // Shortcoming #1: serial predictor.
            let sum = |s: [f64; 4]| s.iter().sum::<f64>();
            let t = sum(point.fwd) + sum(point.bwd);
            (t, sum(point.first_extra) + sum(point.last_extra))
        };
        if !t.is_finite() {
            tally.nonfinite += 1;
            any_nonfinite[i] = true;
            return;
        }
        any_feasible[i] = true;
        let config = StageConfigValues {
            layers: l,
            ckpt: ckpt as u32,
            zero: z,
            wo: off[0],
            go: off[1],
            oo: off[2],
            ao: off[3],
            inflight: key.inflight,
        };
        per_l[(l - 1) as usize].push(ParetoPoint {
            t,
            d,
            mem_peak,
            candidate: *cand,
            config,
            point,
        });
    }
}

/// Smallest `ckpt ∈ [0, l]` whose (linear-in-ckpt) peak memory fits the
/// budget; `f64::INFINITY` when even full recomputation does not fit.
fn minimal_ckpt(m0: f64, m1: f64, ml: f64, l: u32, budget: f64) -> f64 {
    if m0 <= budget {
        return 0.0;
    }
    if ml > budget {
        return f64::INFINITY;
    }
    if m1 <= budget || l == 1 {
        return 1.0;
    }
    // Memory falls linearly from m1 (ckpt=1) to ml (ckpt=l).
    let slope = (m1 - ml) / (l as f64 - 1.0);
    debug_assert!(slope >= 0.0, "checkpointing must not increase memory");
    if slope <= 0.0 {
        return l as f64;
    }
    let need = ((m1 - budget) / slope).ceil() + 1.0;
    need.clamp(1.0, l as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mist_hardware::{GpuSpec, Platform};
    use mist_models::{gpt3, AttentionImpl, ModelSize};

    struct Ctx {
        model: ModelSpec,
        cluster: ClusterSpec,
        db: OpCostDb,
        interference: InterferenceModel,
    }

    fn ctx() -> Ctx {
        Ctx {
            model: gpt3(ModelSize::B2_6, 2048, AttentionImpl::Flash),
            cluster: ClusterSpec::for_gpu_count(Platform::GcpL4, 4),
            db: OpCostDb::new(GpuSpec::l4()),
            interference: InterferenceModel::pcie_defaults(),
        }
    }

    fn key(mesh: DeviceMesh, g: u32) -> FrontierKey {
        FrontierKey {
            mesh,
            role: StageRole::Only,
            inflight: 1,
            grad_accum: g,
        }
    }

    #[test]
    fn minimal_ckpt_logic() {
        // Budget already met at ckpt=0.
        assert_eq!(minimal_ckpt(10.0, 9.0, 5.0, 8, 12.0), 0.0);
        // Infeasible even at full recompute.
        assert_eq!(minimal_ckpt(10.0, 9.0, 5.0, 8, 4.0), f64::INFINITY);
        // One layer of recompute suffices.
        assert_eq!(minimal_ckpt(10.0, 7.0, 5.0, 8, 8.0), 1.0);
        // Interior solve: m1=10, ml=3 over l=8 → slope=1; budget 6.5 →
        // need = ceil(3.5) + 1 = 5.
        assert_eq!(minimal_ckpt(12.0, 10.0, 3.0, 8, 6.5), 5.0);
        // Full recompute exactly fits.
        assert_eq!(minimal_ckpt(12.0, 10.0, 3.0, 8, 3.0), 8.0);
    }

    #[test]
    fn frontier_points_respect_budget_and_sorting() {
        let c = ctx();
        let space = SearchSpace::mist();
        let tuner = IntraStageTuner::new(&c.model, &c.cluster, &c.db, &space, &c.interference, 8);
        let fr = tuner.frontiers(key(DeviceMesh::new(1, 4), 4), c.model.num_layers);
        assert_eq!(fr.len(), 32);
        let full = &fr[31]; // All 32 layers in one stage.
        assert!(
            !full.is_empty(),
            "32-layer stage must have feasible configs"
        );
        for p in full.iter() {
            assert!(p.mem_peak <= tuner.budget());
            assert_eq!(p.config.layers, 32);
        }
        for w in full.windows(2) {
            assert!(w[0].t <= w[1].t, "frontier must be t-sorted");
            assert!(w[0].d >= w[1].d, "frontier must be d-antitone");
        }
    }

    #[test]
    fn bigger_budget_never_hurts() {
        let c = ctx();
        let space = SearchSpace::mist();
        let small = IntraStageTuner::new(&c.model, &c.cluster, &c.db, &space, &c.interference, 8)
            .with_budget(16e9);
        let large = IntraStageTuner::new(&c.model, &c.cluster, &c.db, &space, &c.interference, 8)
            .with_budget(64e9);
        let mesh = DeviceMesh::new(1, 4);
        let fs = small.frontiers(key(mesh, 4), 32);
        let fl = large.frontiers(key(mesh, 4), 32);
        let best = |f: &Vec<Vec<ParetoPoint>>| f[31].first().map(|p| p.t).unwrap_or(f64::INFINITY);
        assert!(best(&fl) <= best(&fs) + 1e-12);
    }

    #[test]
    fn zero_and_offload_unlock_memory_constrained_configs() {
        let c = ctx();
        // A tiny budget: without memory optimizations nothing fits.
        let bare = SearchSpace {
            ckpt: CkptMode::None,
            zero_levels: vec![0],
            ..SearchSpace::megatron()
        };
        let mist = SearchSpace::mist();
        let budget = 6e9;
        let mesh = DeviceMesh::new(1, 4);
        let t_bare = IntraStageTuner::new(&c.model, &c.cluster, &c.db, &bare, &c.interference, 8)
            .with_budget(budget);
        let t_mist = IntraStageTuner::new(&c.model, &c.cluster, &c.db, &mist, &c.interference, 8)
            .with_budget(budget);
        let fb = t_bare.frontiers(key(mesh, 4), 32);
        let fm = t_mist.frontiers(key(mesh, 4), 32);
        assert!(fb[31].is_empty(), "parallelism-only must OOM (Fig. 2a)");
        assert!(!fm[31].is_empty(), "the co-optimized space must fit");
    }

    #[test]
    fn frontier_cache_hits() {
        let c = ctx();
        let space = SearchSpace::mist();
        let tuner = IntraStageTuner::new(&c.model, &c.cluster, &c.db, &space, &c.interference, 8);
        let k = key(DeviceMesh::new(1, 2), 2);
        let f1 = tuner.frontiers(k, 32);
        let evals = tuner.configs_evaluated();
        let f2 = tuner.frontiers(k, 32);
        assert_eq!(
            tuner.configs_evaluated(),
            evals,
            "second call must hit cache"
        );
        assert!(Arc::ptr_eq(&f1, &f2));
    }

    /// End-to-end exactness of the specialized grouped sweep: every
    /// frontier point's evaluated [`StagePoint`] must be bit-identical
    /// to re-evaluating its configuration through the *original* fused
    /// program's scalar path.
    #[test]
    fn specialized_sweep_matches_scalar_reference_exactly() {
        let c = ctx();
        for space in [SearchSpace::mist(), SearchSpace::megatron()] {
            let tuner =
                IntraStageTuner::new(&c.model, &c.cluster, &c.db, &space, &c.interference, 8);
            let fr = tuner.frontiers(key(DeviceMesh::new(1, 4), 4), c.model.num_layers);
            let mut checked = 0usize;
            for per_l in fr.iter() {
                for p in per_l {
                    let reference = tuner.tapes(&p.candidate).eval_point(&p.config);
                    assert_eq!(p.point, reference, "space {}: {:?}", space.name, p.config);
                    checked += 1;
                }
            }
            assert!(checked > 0, "space {} produced no points", space.name);
        }
    }

    #[test]
    fn specializer_cache_is_shared_across_frontier_keys() {
        let c = ctx();
        let space = SearchSpace::mist();
        // Residual specialization is the interpreter backend's
        // evaluation strategy (the compiled backend runs the generic
        // programs and never requests residuals), so pin the
        // interpreter to test the residual cache's semantics.
        let tuner = IntraStageTuner::new(&c.model, &c.cluster, &c.db, &space, &c.interference, 8)
            .with_compiled_eval(false);
        let k = key(DeviceMesh::new(1, 4), 4);
        tuner.frontiers(k, 16);
        let misses_one_key = tuner.specializer().cache_misses();
        assert!(
            misses_one_key > 0,
            "frontier sweep must build residual programs"
        );
        assert_eq!(tuner.specializer().cache_hits(), 0);
        // Growing `max_layers` misses the *frontier* cache and re-runs
        // the sweep over the same tapes and the same (zero, offload)
        // groups — every residual program must come out of the
        // specializer cache instead of being rebuilt.
        tuner.frontiers(k, 32);
        assert_eq!(
            tuner.specializer().cache_misses(),
            misses_one_key,
            "recomputation over identical groups must not rebuild residuals"
        );
        assert!(tuner.specializer().cache_hits() >= misses_one_key);
    }

    /// The compiled backend's analog: step tables are content-addressed
    /// by generic program id, so re-sweeping the same tapes — whether
    /// for a larger layer cap or another frontier key — never
    /// recompiles, and the residual cache sees no traffic at all.
    #[test]
    fn compile_cache_is_shared_across_frontier_keys() {
        let c = ctx();
        let space = SearchSpace::mist();
        let tuner = IntraStageTuner::new(&c.model, &c.cluster, &c.db, &space, &c.interference, 8);
        let k = key(DeviceMesh::new(1, 4), 4);
        tuner.frontiers(k, 16);
        let misses_one_key = tuner.specializer().compile_misses();
        assert!(misses_one_key > 0, "compiled sweep must build step tables");
        assert_eq!(
            tuner.specializer().cache_misses(),
            0,
            "the compiled backend must not pay for residual specialization"
        );
        tuner.frontiers(k, 32);
        assert_eq!(
            tuner.specializer().compile_misses(),
            misses_one_key,
            "recomputation over identical tapes must not recompile"
        );
        assert!(tuner.specializer().compile_hits() >= misses_one_key);
    }

    /// Survivor compaction must be invisible: with a budget tight enough
    /// that whole rows OOM (so the memory-first filter actually compacts
    /// the batch), the frontiers, the row-to-bucket attribution and the
    /// `configs_evaluated` accounting are byte-identical across the
    /// compiled and interpreted backends. The `enumerated = oom +
    /// nonfinite + feasible + mono_pruned` balance itself is enforced by
    /// a debug assertion inside `compute_frontiers` on every test run.
    #[test]
    fn survivor_compaction_preserves_row_order_and_buckets() {
        let c = ctx();
        // Tuned ckpt (mist) exercises the `∞`-marker path + the filter;
        // Full ckpt (megatron) exercises the pure filter path.
        for space in [SearchSpace::mist(), SearchSpace::megatron()] {
            let budget = 8e9; // Tight: some rows OOM, some survive.
            let mk = |compiled: bool| {
                IntraStageTuner::new(&c.model, &c.cluster, &c.db, &space, &c.interference, 8)
                    .with_budget(budget)
                    .with_compiled_eval(compiled)
            };
            let t_off = mk(false);
            let t_on = mk(true);
            let k = key(DeviceMesh::new(1, 4), 4);
            let f_off = t_off.frontiers(k, c.model.num_layers);
            let f_on = t_on.frontiers(k, c.model.num_layers);
            assert_eq!(
                serde_json::to_string(f_off.as_ref()).unwrap(),
                serde_json::to_string(f_on.as_ref()).unwrap(),
                "space {}: frontiers must be byte-identical across backends",
                space.name
            );
            assert_eq!(t_off.configs_evaluated(), t_on.configs_evaluated());
            assert_eq!(
                t_off.rejections().oom.value(),
                t_on.rejections().oom.value(),
                "space {}: OOM attribution must not move between buckets",
                space.name
            );
            assert_eq!(
                t_off.rejections().nonfinite.value(),
                t_on.rejections().nonfinite.value()
            );
            assert_eq!(
                t_off.rejections().dominated.value(),
                t_on.rejections().dominated.value()
            );
            assert!(
                t_on.rejections().oom.value() > 0,
                "space {}: the tight budget must make the filter compact rows",
                space.name
            );
            assert!(
                t_on.specializer().compile_misses() > 0,
                "compiled sweeps must build step tables"
            );
            assert_eq!(
                t_off.specializer().compile_misses(),
                0,
                "interpreted sweeps must never touch the compiled backend"
            );
        }
    }

    #[test]
    fn candidates_respect_global_batch_divisibility() {
        let c = ctx();
        let space = SearchSpace::mist();
        let tuner = IntraStageTuner::new(&c.model, &c.cluster, &c.db, &space, &c.interference, 6);
        // B=6, mesh 4 GPUs: dp=4 needs 6 % (4·G) == 0 — fails for G=1; dp=2
        // works (b=3); dp=1 works (b=6).
        let cands = tuner.parallelism_candidates(DeviceMesh::new(1, 4), 1);
        assert!(cands.iter().all(|&(dp, _, b)| dp as u64 * b == 6));
        assert!(cands.iter().any(|&(dp, _, _)| dp == 2));
        assert!(!cands.iter().any(|&(dp, _, _)| dp == 4));
    }

    #[test]
    fn overlap_awareness_reduces_predicted_time() {
        let c = ctx();
        let aware = SearchSpace::mist();
        let unaware = SearchSpace {
            overlap_aware: false,
            ..SearchSpace::mist()
        };
        let mesh = DeviceMesh::new(1, 4);
        let ta = IntraStageTuner::new(&c.model, &c.cluster, &c.db, &aware, &c.interference, 8);
        let tu = IntraStageTuner::new(&c.model, &c.cluster, &c.db, &unaware, &c.interference, 8);
        let fa = ta.frontiers(key(mesh, 4), 32);
        let fu = tu.frontiers(key(mesh, 4), 32);
        let best_a = fa[31].first().map(|p| p.t).unwrap();
        let best_u = fu[31].first().map(|p| p.t).unwrap();
        assert!(
            best_a <= best_u + 1e-12,
            "overlap-aware t must not be worse"
        );
    }
}

#[cfg(test)]
mod pruning_tests {
    use super::*;
    use mist_hardware::{GpuSpec, Platform};
    use mist_models::{gpt3, AttentionImpl, ModelSize};

    /// Validates the minimal-checkpoint pruning: enumerating every ckpt
    /// value exhaustively never finds a feasible configuration with a
    /// better stable time than the analytically resolved minimal ckpt.
    #[test]
    fn minimal_ckpt_pruning_is_lossless() {
        let model = gpt3(ModelSize::B2_6, 2048, AttentionImpl::Flash);
        let cluster = ClusterSpec::for_gpu_count(Platform::GcpL4, 4);
        let db = OpCostDb::new(GpuSpec::l4());
        let intf = InterferenceModel::pcie_defaults();
        let space = SearchSpace {
            // Offloading off so ckpt is the only memory lever (the pruning
            // argument assumes ckpt does not reduce other stream traffic).
            offload_grid: vec![],
            offload_enabled: [false; 4],
            ..SearchSpace::mist()
        };
        let budget = 10e9; // Tight enough to force recomputation.
        let tuner =
            IntraStageTuner::new(&model, &cluster, &db, &space, &intf, 8).with_budget(budget);
        let mesh = DeviceMesh::new(1, 4);
        let key = FrontierKey {
            mesh,
            role: StageRole::Only,
            inflight: 1,
            grad_accum: 4,
        };
        let frontier = tuner.frontiers(key, 32);

        // Exhaustive reference over every (dp, tp, zero, ckpt).
        for l in [16u32, 32] {
            let Some(best_pruned) = frontier[(l - 1) as usize].first() else {
                continue;
            };
            let mut best_exhaustive = f64::INFINITY;
            for (dp, tp, b) in tuner.parallelism_options(mesh, 4) {
                let cand = StageCandidate {
                    mesh,
                    dp,
                    tp,
                    micro_batch: b,
                    role: StageRole::Only,
                };
                for zero in 0..=3u8 {
                    for ckpt in 0..=l {
                        let cfg = StageConfigValues {
                            layers: l,
                            ckpt,
                            zero,
                            wo: 0.0,
                            go: 0.0,
                            oo: 0.0,
                            ao: 0.0,
                            inflight: 1,
                        };
                        let p = tuner.evaluate_config(&cand, &cfg);
                        if p.mem_peak <= budget {
                            best_exhaustive = best_exhaustive.min(p.t);
                        }
                    }
                }
            }
            assert!(
                best_pruned.t <= best_exhaustive + 1e-9,
                "l={l}: pruned best {} vs exhaustive {}",
                best_pruned.t,
                best_exhaustive
            );
        }
    }
}
