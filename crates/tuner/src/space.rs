//! Search-space definition and presets.
//!
//! A [`SearchSpace`] says which optimizations the tuner may vary and which
//! awareness features its predictor has. Mist's full space is the default;
//! the restricted presets reproduce what prior systems can reach (paper
//! Table 1 and the Fig. 13 incremental-space methodology).

use mist_hardware::{ClusterSpec, DeviceMesh};
use mist_irlint::{DomainMap, SymbolDomain};
use mist_models::ModelSpec;
use serde::{Deserialize, Serialize};

/// How activation checkpointing participates in the search.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CkptMode {
    /// Never recompute (OOMs for most large workloads — Fig. 2a).
    None,
    /// All layers recomputed (Megatron-LM/Alpa style — Fig. 2b).
    Full,
    /// Per-stage recomputed-layer count is tuned (Fig. 2c and beyond).
    Tuned,
}

/// The tunable space plus predictor-awareness flags.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SearchSpace {
    /// Human-readable preset name (for reports).
    pub name: String,
    /// Checkpointing mode.
    pub ckpt: CkptMode,
    /// ZeRO levels the tuner may choose from.
    pub zero_levels: Vec<u8>,
    /// Ratio grid for each enabled offloading knob (`0.0` is implied).
    pub offload_grid: Vec<f64>,
    /// Which offloading knobs are tunable: `[wo, go, oo, ao]`.
    pub offload_enabled: [bool; 4],
    /// Predictor folds concurrent streams through the interference model
    /// (true) or serially sums them (false — prior auto systems,
    /// Shortcoming #1).
    pub overlap_aware: bool,
    /// Objective models first/last-microbatch deltas (Eq. 1) instead of
    /// averaging them away (Shortcoming #3).
    pub imbalance_aware: bool,
    /// Force identical configuration across stages (Yuan et al. heuristic,
    /// §3.3).
    pub uniform_stages: bool,
    /// Number of Pareto points sampled per `(layers, mesh)` candidate for
    /// inter-stage tuning.
    pub pareto_samples: usize,
    /// Layer counts considered per stage: `L/S ± layer_window` (search
    /// pruning; `u32::MAX` disables the window).
    pub layer_window: u32,
}

impl SearchSpace {
    /// Mist's full co-optimization space.
    pub fn mist() -> Self {
        SearchSpace {
            name: "mist".into(),
            ckpt: CkptMode::Tuned,
            zero_levels: vec![0, 1, 2, 3],
            offload_grid: vec![0.5, 1.0],
            offload_enabled: [true, true, true, true],
            overlap_aware: true,
            imbalance_aware: true,
            uniform_stages: false,
            pareto_samples: 6,
            layer_window: 6,
        }
    }

    /// Mist with a finer offloading grid (release-mode experiments).
    pub fn mist_fine() -> Self {
        SearchSpace {
            name: "mist-fine".into(),
            offload_grid: vec![0.25, 0.5, 0.75, 1.0],
            ..Self::mist()
        }
    }

    /// Megatron-LM's manual space: parallelism with full recomputation and
    /// the distributed optimizer (ZeRO-1), no offloading; overlap-aware
    /// implementation (its hand-tuned kernels overlap gradient reduction).
    pub fn megatron() -> Self {
        SearchSpace {
            name: "megatron-lm".into(),
            ckpt: CkptMode::Full,
            zero_levels: vec![0, 1],
            offload_grid: vec![],
            offload_enabled: [false; 4],
            overlap_aware: true,
            imbalance_aware: false,
            uniform_stages: true,
            pareto_samples: 2,
            layer_window: 0,
        }
    }

    /// DeepSpeed's space: adds ZeRO-2/3 to parallelism with full
    /// recomputation; uniform stages.
    pub fn deepspeed() -> Self {
        SearchSpace {
            name: "deepspeed".into(),
            ckpt: CkptMode::Full,
            zero_levels: vec![0, 1, 2, 3],
            offload_grid: vec![],
            offload_enabled: [false; 4],
            overlap_aware: true,
            imbalance_aware: false,
            uniform_stages: true,
            pareto_samples: 2,
            layer_window: 0,
        }
    }

    /// Aceso's space: parallelism + per-stage checkpointing tuning, but no
    /// sharded data parallelism (ZeRO-2/3), no offloading, and a predictor
    /// that is neither overlap- nor imbalance-aware (paper §6.2).
    pub fn aceso() -> Self {
        SearchSpace {
            name: "aceso".into(),
            ckpt: CkptMode::Tuned,
            zero_levels: vec![0, 1],
            offload_grid: vec![],
            offload_enabled: [false; 4],
            overlap_aware: false,
            imbalance_aware: false,
            uniform_stages: false,
            pareto_samples: 4,
            layer_window: 4,
        }
    }

    /// Alpa's space: automatic parallelism with full recomputation;
    /// overlap/imbalance-unaware predictor.
    pub fn alpa() -> Self {
        SearchSpace {
            name: "alpa".into(),
            ckpt: CkptMode::Full,
            zero_levels: vec![0, 1],
            offload_grid: vec![],
            offload_enabled: [false; 4],
            overlap_aware: false,
            imbalance_aware: false,
            uniform_stages: false,
            pareto_samples: 2,
            layer_window: 4,
        }
    }

    /// The Fig. 13 incremental spaces, in order: Megatron baseline space,
    /// `+ckpt` tuning, `+offloading`, `+ZeRO`, `+imbalance awareness`
    /// (= full Mist).
    pub fn fig13_ladder() -> Vec<SearchSpace> {
        let base = SearchSpace {
            name: "megatron-space".into(),
            ckpt: CkptMode::Full,
            zero_levels: vec![0, 1],
            offload_grid: vec![],
            offload_enabled: [false; 4],
            overlap_aware: true,
            imbalance_aware: false,
            uniform_stages: false,
            pareto_samples: 4,
            layer_window: 4,
        };
        let ckpt = SearchSpace {
            name: "+ckpt-tuning".into(),
            ckpt: CkptMode::Tuned,
            ..base.clone()
        };
        let offload = SearchSpace {
            name: "+offloading".into(),
            offload_grid: vec![0.5, 1.0],
            offload_enabled: [true, true, true, true],
            ..ckpt.clone()
        };
        let zero = SearchSpace {
            name: "+zero".into(),
            zero_levels: vec![0, 1, 2, 3],
            ..offload.clone()
        };
        let imbalance = SearchSpace {
            name: "+imbalance-aware (mist)".into(),
            imbalance_aware: true,
            pareto_samples: 6,
            layer_window: 6,
            ..zero.clone()
        };
        vec![base, ckpt, offload, zero, imbalance]
    }

    /// All offloading-ratio combinations `[wo, go, oo, ao]` this space
    /// explores (always includes the all-zeros row).
    pub fn offload_combos(&self) -> Vec<[f64; 4]> {
        let values_for = |knob: usize| -> Vec<f64> {
            if self.offload_enabled[knob] {
                let mut v = vec![0.0];
                v.extend(self.offload_grid.iter().copied());
                v
            } else {
                vec![0.0]
            }
        };
        let (w, g, o, a) = (values_for(0), values_for(1), values_for(2), values_for(3));
        let mut out = Vec::with_capacity(w.len() * g.len() * o.len() * a.len());
        for &wv in &w {
            for &gv in &g {
                for &ov in &o {
                    for &av in &a {
                        out.push([wv, gv, ov, av]);
                    }
                }
            }
        }
        out
    }

    /// The ZeRO levels explored.
    pub fn zero_levels(&self) -> &[u8] {
        &self.zero_levels
    }

    /// The exact value ranges this space sweeps for the stage symbols
    /// (`mist_graph::SYMS`), for the `mist-irlint` interval analysis.
    ///
    /// Narrower than the widest-case `mist_graph::stage_domains`:
    /// a space with offloading disabled pins `wo`/`go`/`oo`/`ao` to zero
    /// (so the linter can prove offload `Select` branches dead), a
    /// restricted ZeRO ladder narrows `zero`, and `CkptMode::Full` pins
    /// `ckpt` to at least one layer. Always carries the `ckpt <= L`
    /// ordering fact.
    pub fn symbol_domains(&self, model: &ModelSpec) -> DomainMap {
        let l = f64::from(model.num_layers.max(1));
        let (ckpt_lo, ckpt_hi) = match self.ckpt {
            CkptMode::None => (0.0, 0.0),
            CkptMode::Full => (1.0, l), // every stage recomputes all its layers
            CkptMode::Tuned => (0.0, l),
        };
        let zero_lo = self.zero_levels.iter().copied().min().unwrap_or(0);
        let zero_hi = self.zero_levels.iter().copied().max().unwrap_or(0);
        let grid_hi = self.offload_grid.iter().copied().fold(0.0, f64::max);
        let mut domains = DomainMap::new()
            .declare("L", SymbolDomain::new(1.0, l, true))
            .declare("ckpt", SymbolDomain::new(ckpt_lo, ckpt_hi, true))
            .declare(
                "zero",
                SymbolDomain::new(f64::from(zero_lo), f64::from(zero_hi), true),
            )
            .declare("inflight", SymbolDomain::new(1.0, l, true))
            .declare_le("ckpt", "L");
        for (knob, name) in ["wo", "go", "oo", "ao"].into_iter().enumerate() {
            let hi = if self.offload_enabled[knob] {
                grid_hi
            } else {
                0.0
            };
            domains = domains.declare(name, SymbolDomain::new(0.0, hi, false));
        }
        domains
    }

    /// Rough size of the full configuration space for a workload — the
    /// quantity plotted in Fig. 5. Counted per stage-partitioning
    /// candidate: parallelism choices × per-stage optimization choices,
    /// compounded over stages.
    pub fn config_count(&self, model: &ModelSpec, cluster: &ClusterSpec, global_batch: u64) -> f64 {
        let l = model.num_layers as f64;
        let meshes = DeviceMesh::candidates(cluster);
        let mut parallel_choices = 0.0;
        for mesh in &meshes {
            parallel_choices += mesh.dp_tp_choices().len() as f64;
        }
        // Gradient accumulation / micro-batch choices.
        let g_choices = (global_batch as f64).log2().floor() + 1.0;
        // Per-stage optimization choices.
        let ckpt_choices = match self.ckpt {
            CkptMode::None | CkptMode::Full => 1.0,
            CkptMode::Tuned => l,
        };
        let zero_choices = self.zero_levels.len() as f64;
        let offload_choices = self.offload_combos().len() as f64;
        let per_stage = parallel_choices * ckpt_choices * zero_choices * offload_choices;
        // Pipeline partitioning: stages and layer splits. Stage counts are
        // powers of two up to the GPU count; layer splits within the
        // window per stage.
        let mut total = 0.0;
        let mut s = 1u32;
        while s as u64 <= cluster.total_gpus() as u64 && s as f64 <= l {
            let split_choices = if self.uniform_stages {
                1.0
            } else {
                (2.0 * self.layer_window.min(model.num_layers) as f64 + 1.0).min(l)
            };
            // Per-stage choices compound across stages; the exponent is
            // capped at four representative stages (first/last/two
            // interior) so counts stay comparable to the paper's Fig. 5
            // rather than exploding combinatorially at 32 stages.
            let exponent = if self.uniform_stages {
                1
            } else {
                s.min(4) as i32
            };
            total += g_choices * (per_stage * split_choices).powi(exponent);
            s *= 2;
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mist_hardware::Platform;
    use mist_models::{gpt3, AttentionImpl, ModelSize};

    #[test]
    fn mist_space_is_the_largest() {
        let model = gpt3(ModelSize::B22, 2048, AttentionImpl::Flash);
        let cluster = ClusterSpec::for_gpu_count(Platform::GcpL4, 32);
        let mist = SearchSpace::mist().config_count(&model, &cluster, 256);
        for other in [
            SearchSpace::megatron(),
            SearchSpace::deepspeed(),
            SearchSpace::aceso(),
            SearchSpace::alpa(),
        ] {
            let c = other.config_count(&model, &cluster, 256);
            assert!(mist > c, "{} ({c:.3e}) >= mist ({mist:.3e})", other.name);
        }
    }

    #[test]
    fn fig13_ladder_grows_monotonically() {
        let model = gpt3(ModelSize::B22, 2048, AttentionImpl::Flash);
        let cluster = ClusterSpec::for_gpu_count(Platform::GcpL4, 32);
        let ladder = SearchSpace::fig13_ladder();
        assert_eq!(ladder.len(), 5);
        let counts: Vec<f64> = ladder
            .iter()
            .map(|s| s.config_count(&model, &cluster, 256))
            .collect();
        for w in counts.windows(2) {
            assert!(w[1] >= w[0], "ladder must not shrink: {counts:?}");
        }
        // Adding optimizations explodes the space by many orders.
        assert!(counts[3] / counts[0] > 1e3);
    }

    #[test]
    fn offload_combos_respect_enabled_flags() {
        let mut s = SearchSpace::mist();
        s.offload_grid = vec![0.5, 1.0];
        s.offload_enabled = [false, false, true, false];
        let combos = s.offload_combos();
        assert_eq!(combos.len(), 3); // oo ∈ {0, 0.5, 1}.
        for c in &combos {
            assert_eq!(c[0], 0.0);
            assert_eq!(c[1], 0.0);
            assert_eq!(c[3], 0.0);
        }
    }

    #[test]
    fn disabled_offload_yields_single_zero_combo() {
        let combos = SearchSpace::megatron().offload_combos();
        assert_eq!(combos, vec![[0.0; 4]]);
    }

    #[test]
    fn symbol_domains_narrow_with_the_space() {
        let model = gpt3(ModelSize::B2_6, 2048, AttentionImpl::Flash);
        let mist = SearchSpace::mist().symbol_domains(&model);
        assert_eq!(mist.get("wo").unwrap().hi, 1.0);
        assert_eq!(mist.get("zero").unwrap().hi, 3.0);
        assert_eq!(mist.get("ckpt").unwrap().lo, 0.0);
        assert_eq!(
            mist.le_pairs(),
            &[("ckpt".to_owned(), "L".to_owned())],
            "ordering fact ckpt <= L always declared"
        );

        let megatron = SearchSpace::megatron().symbol_domains(&model);
        assert_eq!(megatron.get("wo").unwrap().hi, 0.0, "offloading disabled");
        assert_eq!(megatron.get("ao").unwrap().hi, 0.0);
        assert_eq!(megatron.get("zero").unwrap().hi, 1.0, "no ZeRO-2/3");
        assert_eq!(megatron.get("ckpt").unwrap().lo, 1.0, "full recomputation");
        let l = f64::from(model.num_layers);
        assert_eq!(megatron.get("L").unwrap().hi, l);
    }

    #[test]
    fn restricted_space_proves_offload_branches_dead() {
        use mist_graph::{stage_unit_registry, StageAnalyzer, StageCandidate, StageRole};
        use mist_hardware::{DeviceMesh, GpuSpec, OpCostDb};

        let model = gpt3(ModelSize::B2_6, 2048, AttentionImpl::Flash);
        let cluster = ClusterSpec::for_gpu_count(Platform::GcpL4, 4);
        let db = OpCostDb::new(GpuSpec::l4());
        let analyzer = StageAnalyzer::new(&model, &cluster, &db);
        let tapes = analyzer.analyze(&StageCandidate {
            mesh: DeviceMesh::new(1, 4),
            dp: 2,
            tp: 2,
            micro_batch: 2,
            role: StageRole::Only,
        });
        let registry = stage_unit_registry();

        // Megatron's space pins every offload ratio to zero, so the
        // offloading Select guards are constant over its sweep and their
        // taken-branch subtrees shrink to dead code.
        let narrow = SearchSpace::megatron().symbol_domains(&model);
        let report =
            mist_irlint::lint_program(&tapes.program, &registry, &narrow, "stage@megatron");
        assert_eq!(report.error_count(), 0, "{report}");
        assert!(
            report.diagnostics.iter().any(|d| d.code == "dead-branch"),
            "expected dead offload branches under a no-offload sweep:\n{report}"
        );

        // Mist's full space keeps every branch live.
        let wide = SearchSpace::mist().symbol_domains(&model);
        let report = mist_irlint::lint_program(&tapes.program, &registry, &wide, "stage@mist");
        assert_eq!(report.error_count(), 0, "{report}");
        assert_eq!(report.warning_count(), 0, "{report}");
    }

    #[test]
    fn presets_have_expected_awareness() {
        assert!(SearchSpace::mist().imbalance_aware);
        assert!(!SearchSpace::aceso().overlap_aware);
        assert!(SearchSpace::megatron().uniform_stages);
        assert_eq!(SearchSpace::alpa().ckpt, CkptMode::Full);
    }
}
